// Live updates: incremental index maintenance and persistence — the
// §7 future-work items ("speed-up the creation and the update of the
// index") in action.
//
// Builds a disk-backed index over the Figure-1 graph, answers a query,
// streams in new triples with PathIndex::AddTriple (watching the answer
// set change), checkpoints, and reopens the index from disk in a
// "second process" without recomputing anything.

#include <cstdio>
#include <filesystem>

#include "core/engine.h"
#include "datasets/govtrack.h"
#include "index/path_index.h"
#include "text/thesaurus.h"

namespace {

sama::Term Gov(const std::string& local) {
  return sama::Term::Iri("http://gov.example.org/" + local);
}

void ShowMaleSponsors(sama::SamaEngine* engine, const char* moment) {
  auto answers = engine->Execute(
      engine->BuildQueryGraph({{sama::Term::Variable("p"), Gov("gender"),
                                sama::Term::Literal("Male")}}),
      20);
  if (!answers.ok()) return;
  std::printf("%s: %zu male legislators:", moment, answers->size());
  for (const sama::Answer& a : *answers) {
    std::printf(" %s", a.binding.Lookup("p")->DisplayLabel().c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::string dir =
      (std::filesystem::temp_directory_path() / "sama_live_updates")
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  std::vector<sama::Triple> triples = sama::GovTrackFigure1Triples();
  sama::DataGraph graph = sama::DataGraph::FromTriples(triples);
  sama::PathIndexOptions options;
  options.dir = dir;
  sama::PathIndex index;
  if (!index.Build(graph, options).ok()) return 1;
  sama::Thesaurus thesaurus = sama::Thesaurus::BuiltinEnglish();
  sama::SamaEngine engine(&graph, &index, &thesaurus);

  ShowMaleSponsors(&engine, "before updates");

  // A new senator is sworn in and sponsors a brand-new bill.
  const sama::Triple updates[] = {
      {Gov("DanaWhitfield"), Gov("gender"), sama::Term::Literal("Male")},
      {Gov("DanaWhitfield"), Gov("sponsor"), Gov("B2001")},
      {Gov("B2001"), Gov("subject"), sama::Term::Literal("Health Care")},
  };
  for (const sama::Triple& t : updates) {
    sama::Status s = index.AddTriple(&graph, t);
    if (!s.ok()) {
      std::fprintf(stderr, "update failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("applied %s  (live paths: %llu)\n", t.ToString().c_str(),
                static_cast<unsigned long long>(index.live_path_count()));
  }

  ShowMaleSponsors(&engine, "after updates");

  // Who sponsors a Health Care bill now? Dana appears without a rebuild.
  auto sponsors = engine.Execute(
      engine.BuildQueryGraph(
          {{sama::Term::Variable("p"), Gov("sponsor"),
            sama::Term::Variable("b")},
           {sama::Term::Variable("b"), Gov("subject"),
            sama::Term::Literal("Health Care")}}),
      20);
  if (sponsors.ok()) {
    std::printf("health-care sponsors:");
    for (const sama::Answer& a : *sponsors) {
      if (a.lambda_total == 0.0) {
        std::printf(" %s", a.binding.Lookup("p")->DisplayLabel().c_str());
      }
    }
    std::printf("\n");
  }

  // Persist the updated index and reopen it as a new process would.
  if (!index.Checkpoint().ok()) return 1;
  std::printf("checkpointed to %s\n", dir.c_str());

  // A "second process": rebuild the BASE graph from the original
  // triples and Open the index — the persisted dictionary image
  // restores the exact TermId space and the update journal replays the
  // three AddTriple calls into the graph automatically.
  sama::DataGraph graph2 = sama::DataGraph::FromTriples(triples);
  sama::PathIndex reopened;
  sama::Status opened = reopened.Open(&graph2, options);
  if (!opened.ok()) {
    std::fprintf(stderr, "reopen failed: %s\n", opened.ToString().c_str());
    return 1;
  }
  std::printf("reopened: %llu live paths, graph has %zu triples\n",
              static_cast<unsigned long long>(reopened.live_path_count()),
              graph2.edge_count());
  sama::SamaEngine engine2(&graph2, &reopened, &thesaurus);
  ShowMaleSponsors(&engine2, "after reopen");
  return 0;
}

// Social network exploration over a scale-free graph (the PBlog
// profile): approximate querying where topology matters — exactly the
// setting §4.1 motivates for the conformity weight e.
//
// Demonstrates:
//   * building an index over a preferential-attachment graph,
//   * a query whose labels only match through the thesaurus,
//   * how raising the conformity weight e reorders answers.

#include <cstdio>

#include "core/engine.h"
#include "datasets/scale_free.h"
#include "index/path_index.h"
#include "query/sparql.h"
#include "text/thesaurus.h"

int main() {
  sama::ScaleFreeProfile profile = sama::PBlogProfile(/*scale=*/0.02);
  profile.attribute_fraction = 0.4;
  sama::DataGraph graph =
      sama::DataGraph::FromTriples(sama::GenerateScaleFree(profile));
  std::printf("PBlog-profile graph: %zu nodes, %zu triples\n",
              graph.node_count(), graph.edge_count());

  sama::PathIndexOptions options;
  options.enumerate.max_length = 6;  // Scale-free graphs have deep DAGs.
  options.enumerate.max_paths = 200000;
  sama::PathIndex index;
  sama::Status built = index.Build(graph, options);
  if (!built.ok()) {
    std::fprintf(stderr, "index build failed: %s\n",
                 built.ToString().c_str());
    return 1;
  }
  std::printf("Indexed %llu paths (max length %zu)\n",
              static_cast<unsigned long long>(index.path_count()),
              options.enumerate.max_length);

  sama::Thesaurus thesaurus = sama::Thesaurus::BuiltinEnglish();
  // Domain-specific synonyms for this dataset's vocabulary.
  thesaurus.AddSynonyms({"linksTo", "references", "pointsTo"});
  thesaurus.AddSynonyms({"topic", "subject", "tag"});

  // Blogs that (transitively) reference a politics-tagged blog. The
  // query uses "references" and "subject", which only the thesaurus
  // maps to the data's linksTo/topic labels.
  auto parsed = sama::ParseSparql(
      "PREFIX r: <http://pblog.example.org/rel#>\n"
      "SELECT ?blog ?hub WHERE {\n"
      "  ?blog r:references ?hub .\n"
      "  ?hub r:subject \"politics\" .\n"
      "}");
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 parsed.status().ToString().c_str());
    return 1;
  }

  for (double e : {1.0, 4.0}) {
    sama::EngineOptions engine_options;
    engine_options.params.e = e;
    sama::SamaEngine engine(&graph, &index, &thesaurus, engine_options);
    auto answers = engine.ExecuteSparql(*parsed, 5);
    if (!answers.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   answers.status().ToString().c_str());
      return 1;
    }
    std::printf("\nTop answers with conformity weight e = %.1f:\n", e);
    for (const sama::Answer& a : *answers) {
      std::vector<sama::Term> tuple = a.BindingTuple({"blog", "hub"});
      std::printf("  ?blog=%-10s ?hub=%-10s score=%.2f (Λ=%.2f Ψ=%.2f)\n",
                  tuple[0].DisplayLabel().c_str(),
                  tuple[1].DisplayLabel().c_str(), a.score,
                  a.lambda_total, a.psi_total);
    }
  }
  return 0;
}

// University search: Sama vs the three competitor systems on a
// generated LUBM-like graph, side by side.
//
// Runs one exact query and one relaxed query (synonym predicates)
// through Sama, SAPPER, BOUNDED and DOGMA and prints what each system
// finds — reproducing in miniature the behaviour behind the paper's
// Figures 6 and 8: the exact systems miss relaxed answers entirely,
// the approximate systems recover them.

#include <cstdio>
#include <memory>

#include "baselines/bounded.h"
#include "baselines/dogma.h"
#include "baselines/exact.h"
#include "baselines/sapper.h"
#include "common/timer.h"
#include "core/engine.h"
#include "datasets/lubm.h"
#include "index/path_index.h"
#include "query/sparql.h"
#include "text/thesaurus.h"

namespace {

constexpr char kExactQuery[] =
    "PREFIX ub: <http://lubm.example.org/univ-bench#>\n"
    "SELECT ?s ?p WHERE { ?s ub:advisor ?p . ?p a ub:FullProfessor . "
    "?s ub:memberOf ?d . ?p ub:worksFor ?d }";

constexpr char kRelaxedQuery[] =
    "PREFIX ub: <http://lubm.example.org/univ-bench#>\n"
    "SELECT ?s ?p WHERE { ?s ub:mentor ?p . ?p a ub:FullProfessor . "
    "?s ub:belongsTo ?d . ?p ub:employedBy ?d }";

void RunMatcher(sama::Matcher* matcher, const sama::QueryGraph& query) {
  sama::WallTimer timer;
  auto matches = matcher->Execute(query, 0);
  double millis = timer.ElapsedMillis();
  if (!matches.ok()) {
    std::printf("  %-8s error: %s\n", matcher->name().c_str(),
                matches.status().ToString().c_str());
    return;
  }
  std::printf("  %-8s %5zu matches   %8.2f ms\n", matcher->name().c_str(),
              matches->size(), millis);
}

void RunAll(const char* title, const char* sparql,
            sama::SamaEngine* engine, sama::DataGraph* graph) {
  std::printf("\n%s\n", title);
  auto parsed = sama::ParseSparql(sparql);
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 parsed.status().ToString().c_str());
    return;
  }

  sama::WallTimer timer;
  auto answers = engine->ExecuteSparql(*parsed, 50);
  double sama_ms = timer.ElapsedMillis();
  if (answers.ok()) {
    std::printf("  %-8s %5zu answers   %8.2f ms", "Sama",
                answers->size(), sama_ms);
    if (!answers->empty()) {
      std::printf("   best: ?s=%s ?p=%s (score %.2f)",
                  (*answers)[0].BindingTuple({"s"})[0].DisplayLabel()
                      .c_str(),
                  (*answers)[0].BindingTuple({"p"})[0].DisplayLabel()
                      .c_str(),
                  (*answers)[0].score);
    }
    std::printf("\n");
  }

  sama::QueryGraph qg = parsed->ToQueryGraph(graph->shared_dict());
  sama::ExactMatcher exact(graph);
  sama::SapperMatcher sapper(graph);
  sama::BoundedMatcher bounded(graph);
  sama::DogmaMatcher dogma(graph);
  RunMatcher(&exact, qg);
  RunMatcher(&sapper, qg);
  RunMatcher(&bounded, qg);
  RunMatcher(&dogma, qg);
}

}  // namespace

int main() {
  sama::LubmConfig config;
  config.universities = 1;
  config.departments_per_university = 3;
  sama::DataGraph graph =
      sama::DataGraph::FromTriples(sama::GenerateLubm(config));
  std::printf("LUBM-like graph: %zu nodes, %zu triples\n",
              graph.node_count(), graph.edge_count());

  sama::PathIndex index;
  sama::Status built = index.Build(graph, sama::PathIndexOptions());
  if (!built.ok()) {
    std::fprintf(stderr, "index build failed: %s\n",
                 built.ToString().c_str());
    return 1;
  }
  sama::Thesaurus thesaurus = sama::Thesaurus::BuiltinEnglish();
  sama::SamaEngine engine(&graph, &index, &thesaurus);

  RunAll("Exact query (advisor/full-professor/same-department):",
         kExactQuery, &engine, &graph);
  RunAll("Relaxed query (mentor/belongsTo/employedBy synonyms):",
         kRelaxedQuery, &engine, &graph);

  std::printf(
      "\nNote how the exact systems (Exact, Dogma) return nothing for\n"
      "the relaxed form, while Sama and Sapper recover the answers —\n"
      "the effect behind the paper's Figure 8.\n");
  return 0;
}

// Index explorer: the disk-oriented side of the system (§6.1).
//
// Builds an on-disk index (page file + buffer pool + hypergraph store)
// for a Berlin-like dataset, prints Table-1-style statistics, and shows
// the cold-cache vs warm-cache difference the paper measures in
// Figure 6 by timing the same lookup before and after the page cache
// warms up.

#include <cstdio>
#include <filesystem>

#include "common/string_util.h"
#include "common/timer.h"
#include "datasets/berlin.h"
#include "index/path_index.h"
#include "text/thesaurus.h"

int main() {
  sama::BerlinConfig config;
  config.products = 400;
  sama::DataGraph graph =
      sama::DataGraph::FromTriples(sama::GenerateBerlin(config));

  std::string dir =
      (std::filesystem::temp_directory_path() / "sama_index_explorer")
          .string();
  std::filesystem::create_directories(dir);

  sama::PathIndexOptions options;
  options.dir = dir;
  options.buffer_pool_pages = 64;  // Small cache: evictions visible.
  sama::PathIndex index;
  sama::Status built = index.Build(graph, options);
  if (!built.ok()) {
    std::fprintf(stderr, "index build failed: %s\n",
                 built.ToString().c_str());
    return 1;
  }

  const sama::IndexStats& stats = index.stats();
  std::printf("Table-1-style statistics for this dataset:\n");
  std::printf("  #Triples  %llu\n",
              static_cast<unsigned long long>(stats.num_triples));
  std::printf("  |HV|      %llu\n",
              static_cast<unsigned long long>(stats.hv));
  std::printf("  |HE|      %llu\n",
              static_cast<unsigned long long>(stats.he));
  std::printf("  paths     %llu\n",
              static_cast<unsigned long long>(stats.num_paths));
  std::printf("  t         %s\n",
              sama::HumanMillis(stats.build_millis).c_str());
  std::printf("  space     %s\n",
              sama::HumanBytes(stats.disk_bytes).c_str());

  // Cold vs warm lookups of every stored path.
  auto scan_all = [&index]() {
    sama::Path p;
    for (sama::PathId id = 0; id < index.path_count(); ++id) {
      if (!index.GetPath(id, &p).ok()) return false;
    }
    return true;
  };

  if (!index.DropCaches().ok()) return 1;
  sama::WallTimer cold;
  if (!scan_all()) return 1;
  double cold_ms = cold.ElapsedMillis();

  sama::WallTimer warm;
  if (!scan_all()) return 1;
  double warm_ms = warm.ElapsedMillis();

  sama::BufferPool::Stats cache = index.cache_stats();
  std::printf("\nScanning %llu paths through the buffer pool:\n",
              static_cast<unsigned long long>(index.path_count()));
  std::printf("  cold cache: %8.2f ms\n", cold_ms);
  std::printf("  warm cache: %8.2f ms\n", warm_ms);
  std::printf("  hit rate  : %5.1f%% (%llu hits / %llu misses)\n",
              100.0 * cache.HitRate(),
              static_cast<unsigned long long>(cache.hits),
              static_cast<unsigned long long>(cache.misses));
  std::printf("\nIndex files live in %s\n", dir.c_str());
  return 0;
}

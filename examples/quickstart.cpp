// Quickstart: the paper's running example end to end.
//
// Builds the Figure-1 GovTrack excerpt, indexes its paths, and runs the
// exact query Q1 and the relaxed query Q2, printing the query path
// decomposition (§4.3), the clusters with their λ scores (Figure 3) and
// the ranked answers (§5).

#include <cstdio>

#include "core/clustering.h"
#include "core/engine.h"
#include "core/intersection_graph.h"
#include "datasets/govtrack.h"
#include "index/path_index.h"
#include "text/thesaurus.h"

namespace {

void PrintAnswers(const sama::DataGraph& graph,
                  const std::vector<sama::Answer>& answers) {
  for (size_t i = 0; i < answers.size(); ++i) {
    const sama::Answer& a = answers[i];
    std::printf("  #%zu score=%.2f (lambda=%.2f psi=%.2f)%s\n", i + 1,
                a.score, a.lambda_total, a.psi_total,
                a.consistent ? "" : "  [relaxed bindings]");
    for (const sama::ScoredPath& part : a.parts) {
      std::printf("      %-70s [%.2f]\n",
                  part.path.ToString(graph.dict()).c_str(),
                  part.lambda());
    }
  }
}

}  // namespace

int main() {
  // 1. Load the data graph Gd of Figure 1(a).
  sama::DataGraph graph =
      sama::DataGraph::FromTriples(sama::GovTrackFigure1Triples());
  std::printf("Data graph: %zu nodes, %zu edges, %zu sources, %zu sinks\n",
              graph.node_count(), graph.edge_count(),
              graph.Sources().size(), graph.Sinks().size());

  // 2. Offline phase: index every source→sink path (§6.1).
  sama::PathIndex index;
  sama::Status built = index.Build(graph, sama::PathIndexOptions());
  if (!built.ok()) {
    std::fprintf(stderr, "index build failed: %s\n",
                 built.ToString().c_str());
    return 1;
  }
  std::printf("Indexed %llu paths\n\n",
              static_cast<unsigned long long>(index.path_count()));

  sama::Thesaurus thesaurus = sama::Thesaurus::BuiltinEnglish();
  sama::SamaEngine engine(&graph, &index, &thesaurus);

  // 3. Query Q1 (Figure 1b): decomposition into q1, q2, q3.
  sama::QueryGraph q1 =
      engine.BuildQueryGraph(sama::GovTrackQuery1Patterns());
  std::printf("Q1 decomposes into %zu paths:\n", q1.paths().size());
  for (const sama::Path& p : q1.paths()) {
    std::printf("  %s\n", p.ToString(q1.dict()).c_str());
  }

  // The clusters of Figure 3.
  auto clusters =
      sama::BuildClusters(q1, index, &thesaurus, sama::ScoreParams(),
                          sama::ClusteringOptions());
  if (clusters.ok()) {
    std::printf("\nClusters (Figure 3):\n");
    for (const sama::Cluster& c : *clusters) {
      std::printf("  cluster for %s\n",
                  q1.paths()[c.query_path_index].ToString(q1.dict())
                      .c_str());
      for (const sama::ScoredPath& sp : c.paths) {
        std::printf("    %-70s [%.2f]\n",
                    sp.path.ToString(graph.dict()).c_str(), sp.lambda());
      }
    }
  }

  // 4. Top-k answers for Q1: the first solution combines p1, p10, p20.
  auto answers1 = engine.Execute(q1, 3);
  if (answers1.ok()) {
    std::printf("\nTop-3 answers for Q1:\n");
    PrintAnswers(graph, *answers1);
  }

  // 5. The relaxed query Q2 (Figure 1c) has no exact answer, yet the
  // approximate engine still returns Q1's entities.
  sama::QueryGraph q2 =
      engine.BuildQueryGraph(sama::GovTrackQuery2Patterns());
  auto answers2 = engine.Execute(q2, 3);
  if (answers2.ok()) {
    std::printf("\nTop-3 answers for the relaxed Q2:\n");
    PrintAnswers(graph, *answers2);
  }
  return 0;
}

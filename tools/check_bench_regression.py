#!/usr/bin/env python3
"""Gate bench results against the committed baseline.

Usage:
    check_bench_regression.py NEW.json BASELINE.json \
        [--mode=fig6|serve|wal|read|shard]

--mode=fig6 (default) gates bench_fig6 artifacts:
  1. Warm-path latency: summary.warm_mean_ms must not exceed the
     baseline by more than --tolerance (default 20%).
  2. Algorithmic speedup: summary.warm_speedup (exhaustive warm mean /
     optimized warm mean over the exact queries) must not fall below
     the baseline by more than --tolerance, and never below
     --min-speedup.
  3. Warm cache health: per-query warm hit rates of the alignment
     memo, record cache and lookup cache must not drop more than
     --hit-rate-slack (absolute) under the baseline. A cold-start or
     invalidation bug shows up here before it shows up as latency.

--mode=serve gates bench_serve artifacts:
  1. Correctness (unconditional, never skipped): protocol_errors and
     mismatches must both be exactly zero — a serving stack that
     returns wrong bytes or malformed frames fails whatever the
     latency numbers say.
  2. Throughput: summary.qps must not fall below the baseline by more
     than --tolerance, and never below --min-qps.
  3. Tail latency: summary.p99_ms must not exceed the baseline by more
     than --tolerance.

--mode=wal gates bench_wal artifacts:
  1. Correctness (unconditional, never skipped): summary.replay_errors
     must be exactly zero — a lost acked LSN or a dirty post-recovery
     verify fails whatever the throughput numbers say.
  2. Append throughput: summary.appends_per_sec (deferred fsync) and
     summary.durable_appends_per_sec (fsync per ack) must not fall
     below the baseline by more than --tolerance; appends_per_sec
     never below --min-appends.
  3. Recovery: summary.recovery_ms must not exceed the baseline by
     more than --tolerance.

--mode=read gates bench_readers artifacts (the lock-free read paths):
  1. Correctness (unconditional, never skipped): summary.mismatches
     must be exactly zero — every lock-free read must have returned
     the exact value its key was published with.
  2. Reader scaling: summary.hit_scaling (combined warm dictionary +
     cache hit throughput, 16 threads vs 1) must not fall below
     --min-read-scaling. A lock on the hot read path flattens this to
     ~1.0 immediately. Enforced only when the NEW artifact's
     summary.hardware_threads >= 8 (scaling cannot physically show on
     fewer cores) and --no-absolute is not set.
  3. Single-thread throughput: the per-path 1-thread ops/s in the
     summary must not fall below the baseline by more than
     --tolerance — lock-freedom must not tax the uncontended case.

--mode=shard gates bench_shard artifacts (sharded scatter-gather):
  1. Correctness (unconditional, never skipped): summary.mismatches
     must be exactly zero — every untruncated query must be
     byte-identical (scores AND tie-break order) to the single-index
     run at every shard count.
  2. Bound liveness (unconditional): summary.bound_exchange_prunes
     must be positive — a zero means the cross-shard k-th-score bound
     never cut anything and the exchange is dead code.
  3. Coverage: summary.queries_compared must not fall below the
     baseline — the identity check must not silently become vacuous
     because more queries started truncating.
  4. Latency: per-shard-count mean_ms must not exceed the baseline by
     more than --tolerance (machine-dependent).

--mode=obs gates bench_obs artifacts (tracing/telemetry overhead):
  1. Correctness (unconditional, never skipped): summary.mismatches
     must be exactly zero — a traced query must return byte-identical
     answers to its untraced twin; tracing is observation, never
     behaviour.
  2. Span liveness (unconditional): summary.spans_per_query must be
     positive — a traced run that recorded no spans measured nothing.
  3. Tracing overhead (unconditional — it is a same-machine ratio):
     summary.traced_over_untraced must not exceed
     1 + --max-trace-overhead (default 5%). This is the PR's headline
     observability contract: always-on tracing must be nearly free.
  4. Sampler cost: summary.sample_mean_us must not exceed the baseline
     by more than --tolerance (machine-dependent).

Latency/throughput are machine-dependent; the correctness and ratio
checks are not. Pass --no-absolute to skip the machine-dependent
checks (fig6 check 1; serve checks 2 and 3, except the --min-qps hard
floor; wal checks 2 and 3, except the --min-appends hard floor; read
checks 2 and 3; shard check 4) on hardware that does not match the
baseline machine.
"""

import argparse
import json
import math
import sys


def die(message):
    print(f"error: {message}", file=sys.stderr)
    sys.exit(2)


def load(path):
    """Parse a bench JSON artifact, rejecting non-finite values.

    The C++ writers clamp every ratio to a finite value; a NaN/Infinity
    in the artifact therefore means a writer bug, and silently letting
    json.load() accept Python's non-standard literals would turn every
    later comparison into a vacuous truth (NaN compares false).
    """
    def reject_nonfinite(literal):
        raise ValueError(f"non-finite JSON value {literal!r}")

    try:
        with open(path) as f:
            return json.load(f, parse_constant=reject_nonfinite)
    except OSError as e:
        die(f"cannot read {path}: {e}")
    except ValueError as e:
        die(f"{path} is not valid bench JSON: {e}")


def get_number(obj, key, where):
    """A required numeric field; exits with the offending key named."""
    if not isinstance(obj, dict) or key not in obj:
        die(f"missing key '{key}' in {where}")
    value = obj[key]
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        die(f"key '{key}' in {where} is not a number (got {value!r})")
    if not math.isfinite(value):
        die(f"key '{key}' in {where} is non-finite ({value!r})")
    return value


def check_serve(new, base, args):
    """The bench_serve gate; returns the list of failure strings."""
    failures = []
    new_sum, base_sum = new["summary"], base["summary"]

    # Correctness first, and never skippable: these two counters are
    # machine-independent by construction.
    for key in ("protocol_errors", "mismatches"):
        value = get_number(new_sum, key, f"{args.new_json} summary")
        if value != 0:
            failures.append(f"{key} is {value:g}; a serving bench must "
                            f"be byte-exact and protocol-clean")

    new_qps = get_number(new_sum, "qps", f"{args.new_json} summary")
    base_qps = get_number(base_sum, "qps", f"{args.baseline_json} summary")
    new_p99 = get_number(new_sum, "p99_ms", f"{args.new_json} summary")
    base_p99 = get_number(base_sum, "p99_ms",
                          f"{args.baseline_json} summary")
    if base_qps <= 0:
        die(f"key 'qps' in {args.baseline_json} summary is {base_qps}; "
            f"a zero/negative baseline cannot gate anything "
            f"(re-record the baseline)")

    if new_qps < args.min_qps:
        failures.append(f"qps {new_qps:.1f} below the hard floor "
                        f"{args.min_qps:.1f}")
    if not args.no_absolute:
        floor = base_qps * (1.0 - args.tolerance)
        if new_qps < floor:
            failures.append(
                f"qps {new_qps:.1f} fell below baseline {base_qps:.1f} "
                f"-{args.tolerance:.0%} (floor {floor:.1f})")
        if base_p99 > 0:
            limit = base_p99 * (1.0 + args.tolerance)
            if new_p99 > limit:
                failures.append(
                    f"p99_ms {new_p99:.3f} exceeds baseline "
                    f"{base_p99:.3f} +{args.tolerance:.0%} "
                    f"(limit {limit:.3f})")

    if not failures:
        print(f"serve bench ok: qps={new_qps:.1f} "
              f"(baseline {base_qps:.1f}), p99={new_p99:.3f}ms "
              f"(baseline {base_p99:.3f}ms), 0 protocol errors, "
              f"0 mismatches")
    return failures


def check_wal(new, base, args):
    """The bench_wal gate; returns the list of failure strings."""
    failures = []
    new_sum, base_sum = new["summary"], base["summary"]

    # Correctness first, and never skippable: a recovery that loses an
    # acked LSN is machine-independently broken.
    errors = get_number(new_sum, "replay_errors",
                        f"{args.new_json} summary")
    if errors != 0:
        failures.append(f"replay_errors is {errors:g}; recovery must "
                        f"replay every acked update and verify clean")

    new_app = get_number(new_sum, "appends_per_sec",
                         f"{args.new_json} summary")
    base_app = get_number(base_sum, "appends_per_sec",
                          f"{args.baseline_json} summary")
    new_dur = get_number(new_sum, "durable_appends_per_sec",
                         f"{args.new_json} summary")
    base_dur = get_number(base_sum, "durable_appends_per_sec",
                          f"{args.baseline_json} summary")
    new_rec = get_number(new_sum, "recovery_ms",
                         f"{args.new_json} summary")
    base_rec = get_number(base_sum, "recovery_ms",
                          f"{args.baseline_json} summary")
    if base_app <= 0 or base_dur <= 0:
        die(f"append throughput in {args.baseline_json} summary is "
            f"zero/negative; a broken baseline cannot gate anything "
            f"(re-record the baseline)")

    if new_app < args.min_appends:
        failures.append(f"appends_per_sec {new_app:.1f} below the hard "
                        f"floor {args.min_appends:.1f}")
    if not args.no_absolute:
        for key, value, baseline in (
                ("appends_per_sec", new_app, base_app),
                ("durable_appends_per_sec", new_dur, base_dur)):
            floor = baseline * (1.0 - args.tolerance)
            if value < floor:
                failures.append(
                    f"{key} {value:.1f} fell below baseline "
                    f"{baseline:.1f} -{args.tolerance:.0%} "
                    f"(floor {floor:.1f})")
        if base_rec > 0:
            limit = base_rec * (1.0 + args.tolerance)
            if new_rec > limit:
                failures.append(
                    f"recovery_ms {new_rec:.3f} exceeds baseline "
                    f"{base_rec:.3f} +{args.tolerance:.0%} "
                    f"(limit {limit:.3f})")

    if not failures:
        print(f"wal bench ok: appends/s={new_app:.1f} "
              f"(baseline {base_app:.1f}), durable appends/s="
              f"{new_dur:.1f} (baseline {base_dur:.1f}), "
              f"recovery={new_rec:.1f}ms (baseline {base_rec:.1f}ms), "
              f"0 replay errors")
    return failures


def check_read(new, base, args):
    """The bench_readers gate; returns the list of failure strings."""
    failures = []
    new_sum, base_sum = new["summary"], base["summary"]

    # Correctness first, and never skippable: a lock-free read that
    # returns the wrong value is machine-independently broken.
    mismatches = get_number(new_sum, "mismatches",
                            f"{args.new_json} summary")
    if mismatches != 0:
        failures.append(f"mismatches is {mismatches:g}; every lock-free "
                        f"read must return exactly the published value")

    scaling = get_number(new_sum, "hit_scaling", f"{args.new_json} summary")
    hw = get_number(new_sum, "hardware_threads", f"{args.new_json} summary")
    scaling_enforced = hw >= 8 and not args.no_absolute
    if scaling_enforced and scaling < args.min_read_scaling:
        failures.append(
            f"hit_scaling {scaling:.2f} below the floor "
            f"{args.min_read_scaling:.2f} on a {hw:g}-thread machine; "
            f"a lock snuck back onto the hot read path")

    one_thread_keys = ("dict_hit_1t_ops", "dict_miss_1t_ops",
                       "cache_hit_1t_ops", "cache_miss_1t_ops",
                       "pool_hit_1t_ops")
    if not args.no_absolute:
        for key in one_thread_keys:
            value = get_number(new_sum, key, f"{args.new_json} summary")
            baseline = get_number(base_sum, key,
                                  f"{args.baseline_json} summary")
            if baseline <= 0:
                die(f"key '{key}' in {args.baseline_json} summary is "
                    f"{baseline}; a zero/negative baseline cannot gate "
                    f"anything (re-record the baseline)")
            floor = baseline * (1.0 - args.tolerance)
            if value < floor:
                failures.append(
                    f"{key} {value:.0f} fell below baseline "
                    f"{baseline:.0f} -{args.tolerance:.0%} "
                    f"(floor {floor:.0f})")

    if not failures:
        scaling_note = (f"hit_scaling={scaling:.2f} "
                        f"(floor {args.min_read_scaling:.2f})"
                        if scaling_enforced else
                        f"hit_scaling={scaling:.2f} (not enforced: "
                        f"{hw:g} hardware thread(s))")
        print(f"read bench ok: 0 mismatches, {scaling_note}")
    return failures


def check_shard(new, base, args):
    """The bench_shard gate; returns the list of failure strings."""
    failures = []
    new_sum, base_sum = new["summary"], base["summary"]

    # Correctness first, and never skippable: identity and bound
    # liveness are machine-independent by construction.
    mismatches = get_number(new_sum, "mismatches",
                            f"{args.new_json} summary")
    if mismatches != 0:
        failures.append(f"mismatches is {mismatches:g}; sharded answers "
                        f"must be byte-identical to the single index")
    prunes = get_number(new_sum, "bound_exchange_prunes",
                        f"{args.new_json} summary")
    if prunes <= 0:
        failures.append("bound_exchange_prunes is 0; the cross-shard "
                        "k-th-score bound never pruned anything "
                        "(dead exchange)")

    compared = get_number(new_sum, "queries_compared",
                          f"{args.new_json} summary")
    base_compared = get_number(base_sum, "queries_compared",
                               f"{args.baseline_json} summary")
    if base_compared <= 0:
        die(f"key 'queries_compared' in {args.baseline_json} summary is "
            f"{base_compared}; a baseline with no byte-compared queries "
            f"cannot gate anything (re-record the baseline)")
    if compared < base_compared:
        failures.append(
            f"queries_compared {compared:g} below baseline "
            f"{base_compared:g}; the identity check lost coverage "
            f"(more queries truncating)")

    new_runs = {int(get_number(r, "shards", f"{args.new_json} shard_runs")):
                r for r in new.get("shard_runs", [])}
    base_runs = {int(get_number(r, "shards",
                                f"{args.baseline_json} shard_runs")):
                 r for r in base.get("shard_runs", [])}
    if not new_runs:
        die(f"missing or empty 'shard_runs' in {args.new_json}")
    if not args.no_absolute:
        for shards, b in base_runs.items():
            n = new_runs.get(shards)
            if n is None:
                failures.append(f"shard count {shards} present in the "
                                f"baseline but missing from the new run")
                continue
            new_ms = get_number(n, "mean_ms",
                                f"{args.new_json} shard_runs[{shards}]")
            base_ms = get_number(
                b, "mean_ms", f"{args.baseline_json} shard_runs[{shards}]")
            if base_ms <= 0:
                die(f"mean_ms for {shards} shard(s) in "
                    f"{args.baseline_json} is {base_ms}; a zero/negative "
                    f"baseline cannot gate anything (re-record the "
                    f"baseline)")
            limit = base_ms * (1.0 + args.tolerance)
            if new_ms > limit:
                failures.append(
                    f"{shards}-shard mean_ms {new_ms:.2f} exceeds "
                    f"baseline {base_ms:.2f} +{args.tolerance:.0%} "
                    f"(limit {limit:.2f})")

    if not failures:
        print(f"shard bench ok: 0 mismatches over {compared:g} "
              f"byte-compared queries, {prunes:.0f} bound-exchange "
              f"prune(s), shard counts "
              f"{sorted(new_runs)} present")
    return failures


def check_obs(new, base, args):
    """The bench_obs gate; returns the list of failure strings."""
    failures = []
    new_sum, base_sum = new["summary"], base["summary"]

    # Correctness first, and never skippable: tracing must not change
    # answers, and a span-free "traced" run measured nothing.
    mismatches = get_number(new_sum, "mismatches",
                            f"{args.new_json} summary")
    if mismatches != 0:
        failures.append(f"mismatches is {mismatches:g}; traced answers "
                        f"must be byte-identical to untraced answers")
    spans = get_number(new_sum, "spans_per_query",
                       f"{args.new_json} summary")
    if spans <= 0:
        failures.append("spans_per_query is 0; the traced run recorded "
                        "no spans, so the overhead ratio is vacuous")

    # The headline contract: a same-machine ratio, so it is NOT skipped
    # by --no-absolute.
    ratio = get_number(new_sum, "traced_over_untraced",
                       f"{args.new_json} summary")
    limit = 1.0 + args.max_trace_overhead
    if ratio > limit:
        failures.append(
            f"traced_over_untraced {ratio:.4f} exceeds "
            f"{limit:.4f} (+{args.max_trace_overhead:.0%}); end-to-end "
            f"tracing must stay nearly free")
    if ratio <= 0:
        failures.append(f"traced_over_untraced is {ratio:g}; a "
                        f"zero/negative ratio means the bench timed "
                        f"nothing")

    new_us = get_number(new_sum, "sample_mean_us",
                        f"{args.new_json} summary")
    base_us = get_number(base_sum, "sample_mean_us",
                         f"{args.baseline_json} summary")
    if base_us <= 0:
        die(f"key 'sample_mean_us' in {args.baseline_json} summary is "
            f"{base_us}; a zero/negative baseline cannot gate anything "
            f"(re-record the baseline)")
    if not args.no_absolute:
        us_limit = base_us * (1.0 + args.tolerance)
        if new_us > us_limit:
            failures.append(
                f"sample_mean_us {new_us:.2f} exceeds baseline "
                f"{base_us:.2f} +{args.tolerance:.0%} "
                f"(limit {us_limit:.2f})")

    if not failures:
        print(f"obs bench ok: 0 mismatches, "
              f"traced/untraced={ratio:.4f} (limit {limit:.4f}), "
              f"{spans:.1f} spans/query, "
              f"sampler {new_us:.2f}us (baseline {base_us:.2f}us)")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("new_json")
    parser.add_argument("baseline_json")
    parser.add_argument("--mode",
                        choices=("fig6", "serve", "wal", "read", "shard",
                                 "obs"),
                        default="fig6",
                        help="which bench artifact schema to gate")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="relative slack for latency/speedup (0.20 = 20%%)")
    parser.add_argument("--min-speedup", type=float, default=3.0,
                        help="hard floor for summary.warm_speedup (fig6)")
    parser.add_argument("--min-qps", type=float, default=1000.0,
                        help="hard floor for summary.qps (serve)")
    parser.add_argument("--min-appends", type=float, default=500.0,
                        help="hard floor for summary.appends_per_sec (wal)")
    parser.add_argument("--min-read-scaling", type=float, default=3.0,
                        help="hard floor for summary.hit_scaling (read), "
                             "enforced when hardware_threads >= 8")
    parser.add_argument("--max-trace-overhead", type=float, default=0.05,
                        help="ceiling for summary.traced_over_untraced "
                             "above 1.0 (obs; 0.05 = 5%%)")
    parser.add_argument("--hit-rate-slack", type=float, default=0.05,
                        help="absolute slack for warm cache hit rates")
    parser.add_argument("--no-absolute", action="store_true",
                        help="skip the machine-dependent checks")
    args = parser.parse_args()

    new = load(args.new_json)
    base = load(args.baseline_json)
    failures = []

    for artifact, path in ((new, args.new_json), (base, args.baseline_json)):
        if "summary" not in artifact:
            die(f"missing key 'summary' in {path}")
        if "queries" not in artifact:
            die(f"missing key 'queries' in {path}")
    new_sum, base_sum = new["summary"], base["summary"]

    if args.mode in ("serve", "wal", "read", "shard", "obs"):
        check = {"serve": check_serve, "wal": check_wal,
                 "read": check_read, "shard": check_shard,
                 "obs": check_obs}[args.mode]
        failures = check(new, base, args)
        if failures:
            print("BENCH REGRESSION:", file=sys.stderr)
            for f in failures:
                print(f"  - {f}", file=sys.stderr)
            return 1
        return 0

    new_warm = get_number(new_sum, "warm_mean_ms",
                          f"{args.new_json} summary")
    base_warm = get_number(base_sum, "warm_mean_ms",
                           f"{args.baseline_json} summary")
    new_speedup = get_number(new_sum, "warm_speedup",
                             f"{args.new_json} summary")
    base_speedup = get_number(base_sum, "warm_speedup",
                              f"{args.baseline_json} summary")
    # A zero baseline makes both the relative-latency and the speedup
    # comparison vacuous — every run would "pass". That is a broken or
    # truncated baseline artifact, not a healthy bench, so refuse it.
    if base_warm <= 0:
        die(f"key 'warm_mean_ms' in {args.baseline_json} summary is "
            f"{base_warm}; a zero/negative baseline cannot gate anything "
            f"(re-record the baseline)")
    if base_speedup <= 0:
        die(f"key 'warm_speedup' in {args.baseline_json} summary is "
            f"{base_speedup}; a zero/negative baseline cannot gate "
            f"anything (re-record the baseline)")

    if not args.no_absolute:
        limit = base_warm * (1.0 + args.tolerance)
        if new_warm > limit:
            failures.append(
                f"warm_mean_ms {new_warm:.2f} exceeds "
                f"baseline {base_warm:.2f} "
                f"+{args.tolerance:.0%} (limit {limit:.2f})")

    floor = max(base_speedup * (1.0 - args.tolerance), args.min_speedup)
    if new_speedup < floor:
        failures.append(
            f"warm_speedup {new_speedup:.2f} below floor "
            f"{floor:.2f} (baseline {base_speedup:.2f}, "
            f"min {args.min_speedup:.2f})")

    base_rows = {q.get("name"): q for q in base["queries"]}
    for q in new["queries"]:
        name = q.get("name")
        if name is None:
            die(f"a row in {args.new_json} queries has no 'name' key")
        b = base_rows.get(name)
        if b is None:
            continue
        for key in ("alignment_memo_hit_rate", "record_cache_hit_rate",
                    "lookup_cache_hit_rate"):
            new_rate = get_number(q, key, f"{args.new_json} query '{name}'")
            base_rate = get_number(b, key,
                                   f"{args.baseline_json} query '{name}'")
            if new_rate < base_rate - args.hit_rate_slack:
                failures.append(
                    f"{name} {key} {new_rate:.3f} fell below baseline "
                    f"{base_rate:.3f} - {args.hit_rate_slack}")

    if failures:
        print("BENCH REGRESSION:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print(f"bench ok: warm_mean={new_warm:.2f}ms "
          f"(baseline {base_warm:.2f}ms), "
          f"warm_speedup={new_speedup:.2f}x "
          f"(baseline {base_speedup:.2f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

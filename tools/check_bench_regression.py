#!/usr/bin/env python3
"""Gate bench_fig6 results against the committed baseline.

Usage:
    check_bench_regression.py NEW.json BASELINE.json [options]

Checks, in order of importance:
  1. Warm-path latency: summary.warm_mean_ms must not exceed the
     baseline by more than --tolerance (default 20%).
  2. Algorithmic speedup: summary.warm_speedup (exhaustive warm mean /
     optimized warm mean over the exact queries) must not fall below
     the baseline by more than --tolerance, and never below
     --min-speedup.
  3. Warm cache health: per-query warm hit rates of the alignment
     memo, record cache and lookup cache must not drop more than
     --hit-rate-slack (absolute) under the baseline. A cold-start or
     invalidation bug shows up here before it shows up as latency.

Latency is machine-dependent; the ratio checks (2, 3) are not. Pass
--no-absolute to skip check 1 on hardware that does not match the
baseline machine.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("new_json")
    parser.add_argument("baseline_json")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="relative slack for latency/speedup (0.20 = 20%%)")
    parser.add_argument("--min-speedup", type=float, default=3.0,
                        help="hard floor for summary.warm_speedup")
    parser.add_argument("--hit-rate-slack", type=float, default=0.05,
                        help="absolute slack for warm cache hit rates")
    parser.add_argument("--no-absolute", action="store_true",
                        help="skip the absolute warm-latency check")
    args = parser.parse_args()

    new = load(args.new_json)
    base = load(args.baseline_json)
    failures = []

    new_sum, base_sum = new["summary"], base["summary"]

    if not args.no_absolute:
        limit = base_sum["warm_mean_ms"] * (1.0 + args.tolerance)
        if new_sum["warm_mean_ms"] > limit:
            failures.append(
                f"warm_mean_ms {new_sum['warm_mean_ms']:.2f} exceeds "
                f"baseline {base_sum['warm_mean_ms']:.2f} "
                f"+{args.tolerance:.0%} (limit {limit:.2f})")

    floor = max(base_sum["warm_speedup"] * (1.0 - args.tolerance),
                args.min_speedup)
    if new_sum["warm_speedup"] < floor:
        failures.append(
            f"warm_speedup {new_sum['warm_speedup']:.2f} below floor "
            f"{floor:.2f} (baseline {base_sum['warm_speedup']:.2f}, "
            f"min {args.min_speedup:.2f})")

    base_rows = {q["name"]: q for q in base["queries"]}
    for q in new["queries"]:
        b = base_rows.get(q["name"])
        if b is None:
            continue
        for key in ("alignment_memo_hit_rate", "record_cache_hit_rate",
                    "lookup_cache_hit_rate"):
            if q[key] < b[key] - args.hit_rate_slack:
                failures.append(
                    f"{q['name']} {key} {q[key]:.3f} fell below baseline "
                    f"{b[key]:.3f} - {args.hit_rate_slack}")

    if failures:
        print("BENCH REGRESSION:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print(f"bench ok: warm_mean={new_sum['warm_mean_ms']:.2f}ms "
          f"(baseline {base_sum['warm_mean_ms']:.2f}ms), "
          f"warm_speedup={new_sum['warm_speedup']:.2f}x "
          f"(baseline {base_sum['warm_speedup']:.2f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env bash
# Fails when the current branch does not add at least one line to
# CHANGES.md relative to the merge base with the target branch
# (default origin/main), or when any committed bench baseline artifact
# that check_bench_regression.py gates against is missing or not the
# JSON shape the gate expects ('summary' + 'queries' keys). Run from
# anywhere inside the repository.
#
# Usage: tools/check_changes_entry.sh [BASE_REF]
set -euo pipefail

cd "$(git rev-parse --show-toplevel)"
base_ref="${1:-origin/main}"

# The committed baselines CI feeds to check_bench_regression.py. A
# missing or malformed one would fail every future PR at the gate step,
# so catch it at lint time, in the PR that broke it.
baselines=(
  benchmarks/BENCH_pr5_baseline.json
  benchmarks/BENCH_pr6_baseline.json
  benchmarks/BENCH_pr7_baseline.json
  benchmarks/BENCH_pr8_baseline.json
  benchmarks/BENCH_pr9_baseline.json
  benchmarks/BENCH_pr10_baseline.json
)
for artifact in "${baselines[@]}"; do
  if [ ! -f "$artifact" ]; then
    echo "check_changes_entry: committed baseline '$artifact' is missing" >&2
    exit 1
  fi
  if ! python3 - "$artifact" <<'EOF'
import json, sys
path = sys.argv[1]
def reject(literal):
    raise ValueError(f"non-finite JSON value {literal!r}")
with open(path) as f:
    artifact = json.load(f, parse_constant=reject)
for key in ("summary", "queries"):
    if key not in artifact:
        raise SystemExit(f"{path}: missing key '{key}'")
EOF
  then
    echo "check_changes_entry: '$artifact' is not a valid bench baseline" >&2
    exit 1
  fi
done
echo "check_changes_entry: ${#baselines[@]} bench baseline(s) present and valid"

if ! git rev-parse --verify --quiet "$base_ref^{commit}" > /dev/null; then
  # Shallow clone or missing remote: lenient skip rather than a false
  # failure — the check still runs on full-clone CI.
  echo "check_changes_entry: base ref '$base_ref' not found; skipping" >&2
  exit 0
fi

merge_base="$(git merge-base "$base_ref" HEAD)"
if [ "$merge_base" = "$(git rev-parse HEAD)" ]; then
  echo "check_changes_entry: HEAD is the merge base; nothing to check"
  exit 0
fi

added="$(git diff --numstat "$merge_base"..HEAD -- CHANGES.md \
         | awk '{print $1}')"
if [ -z "${added:-}" ] || [ "$added" = "-" ] || [ "$added" -lt 1 ]; then
  echo "check_changes_entry: CHANGES.md gained no lines since $merge_base." >&2
  echo "Append a one-line summary of this change to CHANGES.md." >&2
  exit 1
fi
echo "check_changes_entry: CHANGES.md gained $added line(s)"

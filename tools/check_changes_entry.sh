#!/usr/bin/env bash
# Fails when the current branch does not add at least one line to
# CHANGES.md relative to the merge base with the target branch
# (default origin/main). Run from anywhere inside the repository.
#
# Usage: tools/check_changes_entry.sh [BASE_REF]
set -euo pipefail

cd "$(git rev-parse --show-toplevel)"
base_ref="${1:-origin/main}"

if ! git rev-parse --verify --quiet "$base_ref^{commit}" > /dev/null; then
  # Shallow clone or missing remote: lenient skip rather than a false
  # failure — the check still runs on full-clone CI.
  echo "check_changes_entry: base ref '$base_ref' not found; skipping" >&2
  exit 0
fi

merge_base="$(git merge-base "$base_ref" HEAD)"
if [ "$merge_base" = "$(git rev-parse HEAD)" ]; then
  echo "check_changes_entry: HEAD is the merge base; nothing to check"
  exit 0
fi

added="$(git diff --numstat "$merge_base"..HEAD -- CHANGES.md \
         | awk '{print $1}')"
if [ -z "${added:-}" ] || [ "$added" = "-" ] || [ "$added" -lt 1 ]; then
  echo "check_changes_entry: CHANGES.md gained no lines since $merge_base." >&2
  echo "Append a one-line summary of this change to CHANGES.md." >&2
  exit 1
fi
echo "check_changes_entry: CHANGES.md gained $added line(s)"

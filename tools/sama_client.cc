// Scripted client for the binary query protocol, used by the CI
// serve-smoke job and handy for poking a live server:
//
//   sama_client --port N [--host ADDR] COMMAND...
//
// Commands run left to right over one connection (except `malformed`,
// which uses a throwaway connection, since a framing error closes it):
//   ping TEXT        round-trip TEXT, verify the echo
//   stats            print the server's stats text
//   query SPARQL     run a query, print status/answers
//   insert STMT      insert one N-Triples statement ('<s> <p> "o" .')
//   delete STMT      delete one N-Triples statement
//   malformed        send garbage bytes, expect an ERROR frame + close
//   shutdown         ask the server to exit (flushes pending updates
//                    before the ack)
//
// Exits non-zero the moment any command's outcome is not the expected
// one, so a smoke script is just: sama_client ... && echo ok.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "server/client.h"

namespace {

void PrintUsage() {
  std::fprintf(stderr,
               "usage: sama_client --port N [--host ADDR] [--k N]"
               " [--deadline-ms N]\n"
               "                   [--trace-id HEX]\n"
               "                   (ping TEXT | stats | query SPARQL |"
               " insert STMT |\n"
               "                    delete STMT | malformed |"
               " shutdown)...\n"
               "  --trace-id HEX   propagate a distributed-trace id"
               " (1..32 hex digits)\n"
               "                   on every frame; fetch the tree from"
               " /debug/trace?id=HEX\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  uint32_t k = 0;
  uint32_t deadline_ms = 0;
  sama::TraceContext trace_ctx;
  int i = 1;
  for (; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      port = static_cast<uint16_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--k" && i + 1 < argc) {
      k = static_cast<uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--deadline-ms" && i + 1 < argc) {
      deadline_ms =
          static_cast<uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--trace-id" && i + 1 < argc) {
      if (!sama::TraceContext::ParseTraceId(argv[++i], &trace_ctx)) {
        std::fprintf(stderr,
                     "invalid --trace-id '%s' (want 1..32 hex digits,"
                     " nonzero)\n",
                     argv[i]);
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else {
      break;  // First command.
    }
  }
  if (port == 0 || i >= argc) {
    PrintUsage();
    return 2;
  }

  sama::BinaryClient client;
  if (trace_ctx.valid()) {
    client.set_trace(trace_ctx);
    std::printf("trace id %s\n", trace_ctx.TraceIdHex().c_str());
  }
  sama::Status connected = client.Connect(host, port);
  if (!connected.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 connected.ToString().c_str());
    return 1;
  }

  uint64_t request_id = 1;
  for (; i < argc; ++i) {
    std::string command = argv[i];
    if (command == "ping") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "ping needs a payload\n");
        return 2;
      }
      std::string payload = argv[++i];
      auto echo = client.Ping(payload, request_id++);
      if (!echo.ok() || *echo != payload) {
        std::fprintf(stderr, "ping failed: %s\n",
                     echo.ok() ? "echo mismatch"
                               : echo.status().ToString().c_str());
        return 1;
      }
      std::printf("ping ok (%zu bytes echoed)\n", payload.size());
    } else if (command == "stats") {
      auto text = client.StatsText(request_id++);
      if (!text.ok()) {
        std::fprintf(stderr, "stats failed: %s\n",
                     text.status().ToString().c_str());
        return 1;
      }
      std::printf("%s", text->c_str());
    } else if (command == "query") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "query needs SPARQL text\n");
        return 2;
      }
      sama::QueryRequest request;
      request.sparql = argv[++i];
      request.k = k;
      request.deadline_ms = deadline_ms;
      auto result = client.Query(request, request_id++);
      if (!result.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      if (result->status != sama::WireStatus::kOk) {
        std::fprintf(stderr, "query rejected: %s\n",
                     sama::WireStatusName(result->status));
        return 1;
      }
      std::printf("query ok: %zu answer(s)%s\n", result->answers.size(),
                  result->truncated ? " (truncated)" : "");
      for (const auto& answer : result->answers) {
        std::printf("  score=%.4f", answer.score);
        for (const auto& binding : answer.bindings) {
          std::printf(" %s=%s", binding.var.c_str(),
                      binding.value.c_str());
        }
        std::printf("\n");
      }
    } else if (command == "insert" || command == "delete") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs an N-Triples statement\n",
                     command.c_str());
        return 2;
      }
      sama::UpdateRequest request;
      request.op = command == "insert" ? sama::UpdateRequest::kOpInsert
                                       : sama::UpdateRequest::kOpDelete;
      request.statement = argv[++i];
      auto result = client.Update(request, request_id++);
      if (!result.ok()) {
        std::fprintf(stderr, "%s failed: %s\n", command.c_str(),
                     result.status().ToString().c_str());
        return 1;
      }
      if (result->status != sama::WireStatus::kOk) {
        std::fprintf(stderr, "%s rejected: %s\n", command.c_str(),
                     sama::WireStatusName(result->status));
        return 1;
      }
      std::printf("%s ok: lsn=%llu%s\n", command.c_str(),
                  static_cast<unsigned long long>(result->lsn),
                  result->durable ? " (durable)" : "");
    } else if (command == "malformed") {
      // A framing error poisons the connection, so use a throwaway one
      // and expect exactly: one ERROR frame, then EOF.
      sama::BinaryClient bad;
      sama::Status ok = bad.Connect(host, port);
      if (!ok.ok()) {
        std::fprintf(stderr, "malformed: connect failed: %s\n",
                     ok.ToString().c_str());
        return 1;
      }
      ok = bad.SendRaw("this is definitely not a SAMA frame........");
      if (!ok.ok()) {
        std::fprintf(stderr, "malformed: send failed: %s\n",
                     ok.ToString().c_str());
        return 1;
      }
      auto reply = bad.ReadFrame();
      if (!reply.ok() || reply->type != sama::FrameType::kError) {
        std::fprintf(stderr,
                     "malformed: expected an ERROR frame, got %s\n",
                     reply.ok() ? "another frame type"
                                : reply.status().ToString().c_str());
        return 1;
      }
      auto eof = bad.ReadFrame();  // Server closes after the error.
      if (eof.ok()) {
        std::fprintf(stderr,
                     "malformed: connection stayed open after a framing"
                     " error\n");
        return 1;
      }
      std::printf("malformed ok (error frame + close)\n");
    } else if (command == "shutdown") {
      sama::Status ok = client.Shutdown(request_id++);
      if (!ok.ok()) {
        std::fprintf(stderr, "shutdown failed: %s\n",
                     ok.ToString().c_str());
        return 1;
      }
      std::printf("shutdown acknowledged\n");
    } else {
      std::fprintf(stderr, "unknown command: %s\n", command.c_str());
      PrintUsage();
      return 2;
    }
  }
  return 0;
}

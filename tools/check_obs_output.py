#!/usr/bin/env python3
"""Validate sama_cli observability output (the CI obs smoke steps).

Usage:
    check_obs_output.py OUTPUT_FILE
    check_obs_output.py --perfetto TRACE_JSON
    check_obs_output.py --metrics METRICS_TXT
    check_obs_output.py --queries QUERIES_JSON
    check_obs_output.py --trace TRACE_JSON
    check_obs_output.py --timeseries SERIES_JSON
    check_obs_output.py --slo SLO_JSON

Default mode reads a capture of `sama_cli --trace --stats --metrics
--slow-query-ms ...` and checks the three inline observability
surfaces:

  1. `-- trace:` — well-formed span JSON: unique 1-based ids, parents
     that reference earlier spans (or 0 for the root), exactly one root
     named "query", every phase span parented under it, durations
     finite and non-negative.
  2. `-- slow:` — each slow-query JSONL record parses, carries the
     required keys, and every numeric value is finite.
  3. `-- metrics:` — the Prometheus exposition parses line by line,
     sama_queries_total counted at least one query, and every
     histogram's cumulative buckets are monotonically non-decreasing
     and consistent with its _count.

The flag modes validate the profiler/HTTP surfaces:

  --perfetto  A Chrome trace-event file (sama_cli --profile-out or
              GET /debug/profile): loadable JSON with the trace-event
              envelope, thread_name metadata covering every tid, unique
              span ids, resolvable parents, one root "query" span
              carrying the query-level args, finite microsecond
              timestamps.
  --metrics   A GET /metrics capture (bare exposition, no "-- metrics:"
              header), plus the scrape-time quantile gauges when the
              latency histogram has observations.
  --queries   A GET /debug/queries capture: {"queries": [...]} where
              every record passes the slow-query key/finiteness checks.
  --trace     A GET /debug/trace?id= capture (the distributed trace
              tree): the same Perfetto envelope checks, but rooted at
              one or more "request" spans (a client can stitch several
              requests into one trace) with no query-summary args
              required on the roots.
  --timeseries  A GET /debug/timeseries capture — either the index
              shape ({"interval_seconds",...,"metrics":[...]}) or one
              series ({"metric","kind","points":[{"t","v"},...]}) with
              kind-specific keys: counters carry non-negative
              rate_per_sec/increase, gauges carry "last", histograms
              carry rate_per_sec/count and p50/p90/p99 (null allowed
              when the window has no observations).
  --slo       A GET /debug/slo capture: status ok|degraded consistent
              with the violations list, three objectives each carrying
              a finite non-negative burn_rate.

Structure only, never timings: the checker must pass on any machine.
"""

import argparse
import json
import math
import re
import sys

SERIES_RE = re.compile(
    r'^([A-Za-z_:][A-Za-z0-9_:]*)(\{[^}]*\})?\s+(-?[0-9.eE+]+|NaN|[+-]Inf)$')

SLOW_RECORD_KEYS = ("unix_ms", "label", "total_ms", "preprocess_ms",
                    "clustering_ms", "search_ms", "query_paths",
                    "candidate_paths", "answers", "expansions", "truncated",
                    "corrupt_skipped", "io_retries", "threads")


def fail(message):
    print(f"obs check FAILED: {message}", file=sys.stderr)
    sys.exit(1)


def check_trace(line):
    payload = line.split("-- trace:", 1)[1].strip()
    try:
        doc = json.loads(payload)
    except ValueError as e:
        fail(f"trace line is not valid JSON: {e}\n  {payload[:200]}")
    spans = doc.get("spans")
    if not isinstance(spans, list) or not spans:
        fail("trace JSON has no spans array")
    seen = set()
    roots = []
    by_id = {}
    for s in spans:
        for key in ("id", "parent", "name", "thread", "start_ms", "dur_ms"):
            if key not in s:
                fail(f"span missing key '{key}': {s}")
        if s["id"] in seen:
            fail(f"duplicate span id {s['id']}")
        if s["id"] < 1:
            fail(f"span id {s['id']} is not 1-based")
        seen.add(s["id"])
        by_id[s["id"]] = s
        if s["parent"] == 0:
            roots.append(s)
        for num_key in ("start_ms", "dur_ms"):
            v = s[num_key]
            if not isinstance(v, (int, float)) or not math.isfinite(v):
                fail(f"span {s['id']} {num_key} is not finite: {v!r}")
        if s["dur_ms"] < 0:
            fail(f"span {s['id']} ({s['name']}) was never closed")
    for s in spans:
        if s["parent"] != 0 and s["parent"] not in seen:
            fail(f"span {s['id']} has dangling parent {s['parent']}")
    if len(roots) != 1 or roots[0]["name"] != "query":
        fail(f"expected exactly one root span named 'query', got "
             f"{[r['name'] for r in roots]}")
    root_id = roots[0]["id"]
    names = {s["name"] for s in spans}
    for phase in ("preprocess", "clustering", "search"):
        if phase not in names:
            fail(f"trace is missing the '{phase}' phase span")
        for s in spans:
            if s["name"] == phase and s["parent"] != root_id:
                fail(f"phase span '{phase}' is not parented under the "
                     f"root query span")
    return len(spans)


def check_slow_record(record, source):
    for key in SLOW_RECORD_KEYS:
        if key not in record:
            fail(f"{source} record missing key '{key}': "
                 f"{json.dumps(record)[:200]}")
    for key, value in record.items():
        if isinstance(value, float) and not math.isfinite(value):
            fail(f"{source} key '{key}' is non-finite: {value!r}")
    if record["total_ms"] < 0:
        fail(f"{source} total_ms is negative: {record['total_ms']}")


def check_slow(line):
    payload = line.split("-- slow:", 1)[1].strip()
    try:
        record = json.loads(payload)
    except ValueError as e:
        fail(f"slow-query record is not valid JSON: {e}\n  {payload[:200]}")
    check_slow_record(record, "slow-query")


def check_metrics(lines):
    values = {}
    histogram_buckets = {}
    for line in lines:
        if not line or line.startswith("# HELP") or line.startswith("# TYPE"):
            continue
        m = SERIES_RE.match(line)
        if m is None:
            fail(f"unparseable exposition line: {line!r}")
        name, labels, raw = m.group(1), m.group(2) or "", m.group(3)
        if raw in ("NaN", "+Inf", "-Inf"):
            fail(f"non-finite exposition value on: {line!r}")
        value = float(raw)
        values[name + labels] = value
        if name.endswith("_bucket"):
            base = name[: -len("_bucket")]
            le = re.search(r'le="([^"]*)"', labels)
            if le is None:
                fail(f"histogram bucket without le label: {line!r}")
            # Group by base name + the labels other than le, so
            # sama_query_phase_millis{phase="search"} and
            # {phase="clustering"} stay separate series.
            rest = re.sub(r'le="[^"]*",?', "", labels).replace(
                "{,", "{").replace(",}", "}").replace("{}", "")
            histogram_buckets.setdefault((base, rest), []).append(
                (le.group(1), value))
    if not values:
        fail("no metrics series found")

    queries = values.get("sama_queries_total", 0)
    if queries < 1:
        fail(f"sama_queries_total is {queries}; the smoke run executed "
             f"at least one query")

    for (base, rest), buckets in histogram_buckets.items():
        # Exposition order is the registration order of the bounds:
        # ascending with +Inf last, so cumulative counts must be
        # non-decreasing and end at _count.
        series = base + rest
        counts = [v for _, v in buckets]
        if counts != sorted(counts):
            fail(f"{series} cumulative buckets are not monotonic: "
                 f"{counts}")
        if buckets[-1][0] != "+Inf":
            fail(f"{series} is missing its +Inf bucket")
        count_key = base + "_count" + rest
        if count_key not in values:
            fail(f"{series} has buckets but no _count series")
        if counts[-1] != values[count_key]:
            fail(f"{series} +Inf bucket {counts[-1]} != _count "
                 f"{values[count_key]}")
    return values


def check_metrics_file(path):
    with open(path) as f:
        values = check_metrics(f.read().splitlines())
    # A /metrics scrape goes through RefreshLatencyQuantiles, so once
    # the latency histogram has observations the interpolated quantile
    # gauges must be published alongside it.
    if values.get("sama_query_latency_millis_count", 0) >= 1:
        for q in ("0.5", "0.95", "0.99"):
            key = f'sama_query_latency_seconds{{quantile="{q}"}}'
            if key not in values:
                fail(f"latency histogram has observations but {key} "
                     f"is missing (RefreshLatencyQuantiles not run?)")
            if values[key] < 0:
                fail(f"{key} is negative: {values[key]}")
    return len(values)


def load_json(path):
    with open(path) as f:
        try:
            return json.load(f)
        except ValueError as e:
            fail(f"{path} is not valid JSON: {e}")


def check_trace_events(path, root_name, allow_multiple_roots,
                       require_summary_args):
    """Shared Perfetto/trace-event walker.

    The profiler export (--perfetto) has exactly one root "query" event
    carrying the query-level summary args; the distributed-trace export
    (--trace) is rooted at one or more "request" events — a client that
    reuses a trace id across requests stitches several roots into one
    tree.
    """
    doc = load_json(path)
    if not isinstance(doc, dict):
        fail("trace-event file is not a JSON object")
    if doc.get("displayTimeUnit") != "ms":
        fail(f"displayTimeUnit is {doc.get('displayTimeUnit')!r}, not 'ms'")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("traceEvents is missing or empty")

    span_ids = set()
    named_tids = set()
    used_tids = set()
    roots = []
    complete = []
    for e in events:
        ph = e.get("ph")
        if ph == "M":
            if e.get("name") not in ("process_name", "thread_name"):
                fail(f"unexpected metadata event: {e}")
            if not isinstance(e.get("args", {}).get("name"), str):
                fail(f"metadata event without args.name: {e}")
            if e["name"] == "thread_name":
                named_tids.add(e.get("tid"))
        elif ph == "X":
            for key in ("name", "cat", "ts", "dur", "pid", "tid", "args"):
                if key not in e:
                    fail(f"complete event missing '{key}': {e}")
            for num_key in ("ts", "dur"):
                v = e[num_key]
                if not isinstance(v, (int, float)) or not math.isfinite(v):
                    fail(f"event {e['name']} {num_key} not finite: {v!r}")
            if e["dur"] < 0:
                fail(f"event {e['name']} has negative dur {e['dur']}")
            span_id = e["args"].get("span_id")
            if not isinstance(span_id, int) or span_id < 1:
                fail(f"event {e['name']} without a 1-based span_id: {e}")
            if span_id in span_ids:
                fail(f"duplicate span_id {span_id}")
            span_ids.add(span_id)
            used_tids.add(e["tid"])
            if "parent" not in e["args"]:
                roots.append(e)
            complete.append(e)
        else:
            fail(f"unexpected event phase {ph!r}: {e}")

    for e in complete:
        parent = e["args"].get("parent")
        if parent is not None and parent not in span_ids:
            fail(f"event {e['name']} has dangling parent {parent}")
    if not roots:
        fail(f"no root event (every event has a parent)")
    if not allow_multiple_roots and len(roots) != 1:
        fail(f"expected one root '{root_name}' event, got "
             f"{[r['name'] for r in roots]}")
    for r in roots:
        if r["name"] != root_name:
            fail(f"expected root event(s) named '{root_name}', got "
                 f"{[x['name'] for x in roots]}")
    if require_summary_args:
        for key in ("answers", "query_paths", "candidate_paths",
                    "truncated"):
            if key not in roots[0]["args"]:
                fail(f"root {root_name} event missing summary arg "
                     f"'{key}'")
    missing = used_tids - named_tids
    if missing:
        fail(f"tids without thread_name metadata: {sorted(missing)}")
    return len(complete), len(roots)


def check_perfetto(path):
    events, _ = check_trace_events(path, "query",
                                   allow_multiple_roots=False,
                                   require_summary_args=True)
    return events


def finite_number(doc, key, source, allow_null=False):
    if key not in doc:
        fail(f"{source} missing key '{key}'")
    value = doc[key]
    if value is None and allow_null:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        fail(f"{source} key '{key}' is not a number: {value!r}")
    if not math.isfinite(value):
        fail(f"{source} key '{key}' is non-finite: {value!r}")
    return value


def check_timeseries_file(path):
    doc = load_json(path)
    if not isinstance(doc, dict):
        fail("/debug/timeseries payload is not a JSON object")
    if "error" in doc:
        fail(f"/debug/timeseries answered an error: {doc['error']!r} "
             f"(metric {doc.get('metric')!r})")

    # The no-metric index shape.
    if "metrics" in doc and "metric" not in doc:
        for key in ("interval_seconds", "capacity", "samples"):
            finite_number(doc, key, "/debug/timeseries index")
        metrics = doc["metrics"]
        if not isinstance(metrics, list) or not metrics:
            fail("/debug/timeseries index has no metrics")
        for m in metrics:
            if not isinstance(m, str):
                fail(f"/debug/timeseries index metric is not a string: "
                     f"{m!r}")
        return f"index of {len(metrics)} metric(s)"

    kind = doc.get("kind")
    if kind not in ("counter", "gauge", "histogram"):
        fail(f"/debug/timeseries kind is {kind!r}")
    source = f"/debug/timeseries {doc.get('metric')!r}"
    finite_number(doc, "window_seconds", source)
    samples = finite_number(doc, "samples", source)
    if samples < 1:
        fail(f"{source} retained no samples")
    if kind == "counter":
        for key in ("rate_per_sec", "increase"):
            if finite_number(doc, key, source) < 0:
                fail(f"{source} {key} is negative (the reset clamp "
                     f"must floor it at 0)")
    elif kind == "gauge":
        finite_number(doc, "last", source)
    else:
        if finite_number(doc, "rate_per_sec", source) < 0:
            fail(f"{source} rate_per_sec is negative")
        if finite_number(doc, "count", source) < 0:
            fail(f"{source} count is negative")
        for key in ("p50", "p90", "p99"):
            v = finite_number(doc, key, source, allow_null=True)
            if v is not None and v < 0:
                fail(f"{source} {key} is negative: {v}")
        # Histogram series render windowed quantiles, not raw points.
        return f"histogram series over {samples:g} sample(s)"
    points = doc.get("points")
    if not isinstance(points, list) or not points:
        fail(f"{source} has no points array")
    last_t = None
    for p in points:
        t = finite_number(p, "t", f"{source} point")
        finite_number(p, "v", f"{source} point")
        if last_t is not None and t < last_t:
            fail(f"{source} points are not time-ordered")
        last_t = t
    return f"{kind} series with {len(points)} point(s)"


def check_slo_file(path):
    doc = load_json(path)
    if not isinstance(doc, dict):
        fail("/debug/slo payload is not a JSON object")
    status = doc.get("status")
    if status not in ("ok", "degraded"):
        fail(f"/debug/slo status is {status!r}")
    if not isinstance(doc.get("evaluated"), bool):
        fail(f"/debug/slo evaluated is not a bool: "
             f"{doc.get('evaluated')!r}")
    finite_number(doc, "window_seconds", "/debug/slo")
    finite_number(doc, "burn_threshold", "/debug/slo")
    objectives = doc.get("objectives")
    if not isinstance(objectives, dict):
        fail("/debug/slo has no objectives object")
    for name in ("latency", "errors", "shed"):
        obj = objectives.get(name)
        if not isinstance(obj, dict):
            fail(f"/debug/slo objective '{name}' is missing")
        if finite_number(obj, "burn_rate", f"/debug/slo {name}") < 0:
            fail(f"/debug/slo {name} burn_rate is negative")
        finite_number(obj, "allowed_bad_ratio", f"/debug/slo {name}")
    violations = doc.get("violations")
    if not isinstance(violations, list):
        fail("/debug/slo has no violations array")
    for v in violations:
        if v not in ("latency", "errors", "shed"):
            fail(f"/debug/slo unknown violation {v!r}")
    if status == "degraded" and not violations:
        fail("/debug/slo is degraded with an empty violations list")
    if status == "ok" and violations:
        fail(f"/debug/slo is ok but lists violations: {violations}")
    return status, violations


def check_queries_file(path):
    with open(path) as f:
        try:
            doc = json.load(f)
        except ValueError as e:
            fail(f"{path} is not valid JSON: {e}")
    records = doc.get("queries") if isinstance(doc, dict) else None
    if not isinstance(records, list):
        fail("/debug/queries payload has no 'queries' array")
    for record in records:
        check_slow_record(record, "/debug/queries")
    return len(records)


def check_default(path):
    with open(path) as f:
        lines = f.read().splitlines()

    trace_lines = [l for l in lines if l.startswith("-- trace:")]
    if not trace_lines:
        fail("no '-- trace:' line in the output (was --trace passed?)")
    spans = sum(check_trace(l) for l in trace_lines)

    slow_lines = [l for l in lines if l.startswith("-- slow:")]
    for l in slow_lines:
        check_slow(l)

    try:
        metrics_at = lines.index("-- metrics:")
    except ValueError:
        fail("no '-- metrics:' section in the output (was --metrics "
             "passed?)")
    series = check_metrics(lines[metrics_at + 1:])

    print(f"obs ok: {len(trace_lines)} trace(s) with {spans} span(s), "
          f"{len(slow_lines)} slow-query record(s), {len(series)} metric "
          f"series")


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--perfetto", metavar="TRACE_JSON",
                      help="validate a Chrome trace-event file")
    mode.add_argument("--metrics", metavar="METRICS_TXT",
                      help="validate a bare /metrics exposition capture")
    mode.add_argument("--queries", metavar="QUERIES_JSON",
                      help="validate a /debug/queries capture")
    mode.add_argument("--trace", metavar="TRACE_JSON",
                      help="validate a /debug/trace?id= distributed "
                           "trace capture")
    mode.add_argument("--timeseries", metavar="SERIES_JSON",
                      help="validate a /debug/timeseries capture")
    mode.add_argument("--slo", metavar="SLO_JSON",
                      help="validate a /debug/slo capture")
    parser.add_argument("output", nargs="?",
                        help="combined CLI capture (default mode)")
    args = parser.parse_args()

    if args.perfetto:
        events = check_perfetto(args.perfetto)
        print(f"obs ok: perfetto trace with {events} span event(s)")
    elif args.metrics:
        series = check_metrics_file(args.metrics)
        print(f"obs ok: /metrics exposition with {series} series")
    elif args.queries:
        records = check_queries_file(args.queries)
        print(f"obs ok: /debug/queries with {records} record(s)")
    elif args.trace:
        events, roots = check_trace_events(args.trace, "request",
                                           allow_multiple_roots=True,
                                           require_summary_args=False)
        print(f"obs ok: distributed trace with {events} span event(s) "
              f"under {roots} request root(s)")
    elif args.timeseries:
        what = check_timeseries_file(args.timeseries)
        print(f"obs ok: /debug/timeseries {what}")
    elif args.slo:
        status, violations = check_slo_file(args.slo)
        print(f"obs ok: /debug/slo status={status} "
              f"violations={violations}")
    elif args.output:
        check_default(args.output)
    else:
        parser.print_usage(sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())

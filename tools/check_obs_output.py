#!/usr/bin/env python3
"""Validate sama_cli observability output (the CI obs smoke step).

Usage:
    check_obs_output.py OUTPUT_FILE

Reads a capture of `sama_cli --trace --stats --metrics
--slow-query-ms ...` and checks the three observability surfaces:

  1. `-- trace:` — well-formed span JSON: unique 1-based ids, parents
     that reference earlier spans (or 0 for the root), exactly one root
     named "query", every phase span parented under it, durations
     finite and non-negative.
  2. `-- slow:` — each slow-query JSONL record parses, carries the
     required keys, and every numeric value is finite.
  3. `-- metrics:` — the Prometheus exposition parses line by line,
     sama_queries_total counted at least one query, and every
     histogram's cumulative buckets are monotonically non-decreasing
     and consistent with its _count.

Structure only, never timings: the checker must pass on any machine.
"""

import json
import math
import re
import sys

SERIES_RE = re.compile(
    r'^([A-Za-z_:][A-Za-z0-9_:]*)(\{[^}]*\})?\s+(-?[0-9.eE+]+|NaN|[+-]Inf)$')


def fail(message):
    print(f"obs check FAILED: {message}", file=sys.stderr)
    sys.exit(1)


def check_trace(line):
    payload = line.split("-- trace:", 1)[1].strip()
    try:
        doc = json.loads(payload)
    except ValueError as e:
        fail(f"trace line is not valid JSON: {e}\n  {payload[:200]}")
    spans = doc.get("spans")
    if not isinstance(spans, list) or not spans:
        fail("trace JSON has no spans array")
    seen = set()
    roots = []
    by_id = {}
    for s in spans:
        for key in ("id", "parent", "name", "thread", "start_ms", "dur_ms"):
            if key not in s:
                fail(f"span missing key '{key}': {s}")
        if s["id"] in seen:
            fail(f"duplicate span id {s['id']}")
        if s["id"] < 1:
            fail(f"span id {s['id']} is not 1-based")
        seen.add(s["id"])
        by_id[s["id"]] = s
        if s["parent"] == 0:
            roots.append(s)
        for num_key in ("start_ms", "dur_ms"):
            v = s[num_key]
            if not isinstance(v, (int, float)) or not math.isfinite(v):
                fail(f"span {s['id']} {num_key} is not finite: {v!r}")
        if s["dur_ms"] < 0:
            fail(f"span {s['id']} ({s['name']}) was never closed")
    for s in spans:
        if s["parent"] != 0 and s["parent"] not in seen:
            fail(f"span {s['id']} has dangling parent {s['parent']}")
    if len(roots) != 1 or roots[0]["name"] != "query":
        fail(f"expected exactly one root span named 'query', got "
             f"{[r['name'] for r in roots]}")
    root_id = roots[0]["id"]
    names = {s["name"] for s in spans}
    for phase in ("preprocess", "clustering", "search"):
        if phase not in names:
            fail(f"trace is missing the '{phase}' phase span")
        for s in spans:
            if s["name"] == phase and s["parent"] != root_id:
                fail(f"phase span '{phase}' is not parented under the "
                     f"root query span")
    return len(spans)


def check_slow(line):
    payload = line.split("-- slow:", 1)[1].strip()
    try:
        record = json.loads(payload)
    except ValueError as e:
        fail(f"slow-query record is not valid JSON: {e}\n  {payload[:200]}")
    required = ("unix_ms", "label", "total_ms", "preprocess_ms",
                "clustering_ms", "search_ms", "query_paths",
                "candidate_paths", "answers", "expansions", "truncated",
                "corrupt_skipped", "io_retries", "threads")
    for key in required:
        if key not in record:
            fail(f"slow-query record missing key '{key}': {payload[:200]}")
    for key, value in record.items():
        if isinstance(value, float) and not math.isfinite(value):
            fail(f"slow-query key '{key}' is non-finite: {value!r}")
    if record["total_ms"] < 0:
        fail(f"slow-query total_ms is negative: {record['total_ms']}")


def check_metrics(lines):
    values = {}
    histogram_buckets = {}
    for line in lines:
        if not line or line.startswith("# HELP") or line.startswith("# TYPE"):
            continue
        m = SERIES_RE.match(line)
        if m is None:
            fail(f"unparseable exposition line: {line!r}")
        name, labels, raw = m.group(1), m.group(2) or "", m.group(3)
        if raw in ("NaN", "+Inf", "-Inf"):
            fail(f"non-finite exposition value on: {line!r}")
        value = float(raw)
        values[name + labels] = value
        if name.endswith("_bucket"):
            base = name[: -len("_bucket")]
            le = re.search(r'le="([^"]*)"', labels)
            if le is None:
                fail(f"histogram bucket without le label: {line!r}")
            # Group by base name + the labels other than le, so
            # sama_query_phase_millis{phase="search"} and
            # {phase="clustering"} stay separate series.
            rest = re.sub(r'le="[^"]*",?', "", labels).replace(
                "{,", "{").replace(",}", "}").replace("{}", "")
            histogram_buckets.setdefault((base, rest), []).append(
                (le.group(1), value))
    if not values:
        fail("no metrics series found after '-- metrics:'")

    queries = values.get("sama_queries_total", 0)
    if queries < 1:
        fail(f"sama_queries_total is {queries}; the smoke run executed "
             f"at least one query")

    for (base, rest), buckets in histogram_buckets.items():
        # Exposition order is the registration order of the bounds:
        # ascending with +Inf last, so cumulative counts must be
        # non-decreasing and end at _count.
        series = base + rest
        counts = [v for _, v in buckets]
        if counts != sorted(counts):
            fail(f"{series} cumulative buckets are not monotonic: "
                 f"{counts}")
        if buckets[-1][0] != "+Inf":
            fail(f"{series} is missing its +Inf bucket")
        count_key = base + "_count" + rest
        if count_key not in values:
            fail(f"{series} has buckets but no _count series")
        if counts[-1] != values[count_key]:
            fail(f"{series} +Inf bucket {counts[-1]} != _count "
                 f"{values[count_key]}")
    return len(values)


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        text = f.read()
    lines = text.splitlines()

    trace_lines = [l for l in lines if l.startswith("-- trace:")]
    if not trace_lines:
        fail("no '-- trace:' line in the output (was --trace passed?)")
    spans = sum(check_trace(l) for l in trace_lines)

    slow_lines = [l for l in lines if l.startswith("-- slow:")]
    for l in slow_lines:
        check_slow(l)

    try:
        metrics_at = lines.index("-- metrics:")
    except ValueError:
        fail("no '-- metrics:' section in the output (was --metrics "
             "passed?)")
    series = check_metrics(lines[metrics_at + 1:])

    print(f"obs ok: {len(trace_lines)} trace(s) with {spans} span(s), "
          f"{len(slow_lines)} slow-query record(s), {series} metric "
          f"series")
    return 0


if __name__ == "__main__":
    sys.exit(main())

// sama_cli — load an RDF file, build the path index, and answer SPARQL
// queries approximately.
//
// Usage:
//   sama_cli --data graph.nt --query query.sparql [--k 10]
//   sama_cli --data graph.ttl --sparql 'SELECT ?x WHERE { ... }'
//   sama_cli --data graph.nt --interactive
//   sama_cli verify --index-dir DIR
//   sama_cli update --data graph.nt --index-dir DIR --apply updates.txt
//   sama_cli build --data graph.nt --index-dir DIR --shards 4
//   sama_cli serve --demo --port 8080
//
// Subcommands:
//   build              Partition the graph and build a sharded index
//                      under --index-dir: N per-shard PathIndex dirs
//                      plus the sharding sidecars (DESIGN.md §14).
//                      Querying that directory later (--index-dir
//                      pointing at it) automatically runs the sharded
//                      scatter-gather engine; answers are byte-identical
//                      to a single-index run. --shards 1 is a valid
//                      degenerate build.
//   verify             Scan a persisted index directory: checksum every
//                      page of every store, check the manifests and the
//                      commit record, and print a corruption report.
//                      WAL segments are scanned too (per-record CRCs,
//                      LSN continuity, checkpoint consistency).
//                      Exits non-zero if any damage is found.
//   update             Apply live triple updates to a persisted index.
//                      --data must name the ORIGINAL base file the index
//                      was built over (updates live in the WAL + index,
//                      never in the data file). Update lines come from
//                      --apply FILE (or stdin): one statement per line,
//                      '+' to insert, '-' to delete —
//                        + <s> <p> "o" .
//                        - <s> <p> "o" .
//                      '#' comments and blank lines are skipped. Every
//                      line is WAL-journalled before it is applied, and
//                      a checkpoint runs at the end, so a crash at any
//                      point loses nothing that was acked. --no-fsync
//                      defers per-line fsyncs to the final checkpoint
//                      (bulk loads); a torn tail is then possible but is
//                      truncated, never half-applied.
//   serve              Load the data, run an optional warmup query, and
//                      serve diagnostics over HTTP until killed:
//                        GET  /metrics         Prometheus text format
//                        GET  /healthz         liveness probe; 503 +
//                             "degraded" once an SLO burn rate crosses
//                             its threshold, ?verbose=1 for the full
//                             SLO JSON (DESIGN.md §15)
//                        GET  /debug/queries   slow-query ring as JSON
//                             (?limit=N caps the rows, newest kept)
//                        GET  /debug/profile   retained query profiles
//                             ?id=N (default latest), ?format=text for
//                             EXPLAIN ANALYZE instead of trace JSON
//                        GET  /debug/timeseries telemetry history:
//                             ?metric=NAME&window=S windowed series,
//                             no params for the metric listing
//                        GET  /debug/top       the `sama_cli top` rollup
//                        GET  /debug/trace     propagated traces:
//                             ?id=HEX Perfetto trace-event JSON
//                             (?format=raw for the span tree), no
//                             params for the known-id listing
//                        POST /query           SPARQL body -> answers
//                      Profiling, metrics, the 1s telemetry sampler and
//                      the SLO tracker are always on under serve;
//                      --slow-query-ms defaults to 100 so /debug/queries
//                      has a live ring. `serve --binary` accepts a
//                      sharded --index-dir (read-only scatter-gather
//                      serving) and co-hosts the same diagnostics
//                      endpoints when --http-port is given.
//   top                Live terminal view of a serving process: QPS,
//                      P50/P99, shed/error rates, cache hit ratio,
//                      epoch pins and WAL lag, polled from
//                      /debug/top every --interval seconds.
//
// Options:
//   --data FILE        N-Triples (.nt) or Turtle (.ttl) input (required).
//   --query FILE       File containing one SPARQL query.
//   --sparql TEXT      Inline SPARQL query.
//   --interactive      Read queries from stdin (terminate each with a
//                      blank line; EOF exits).
//   --k N              Number of answers (default 10).
//   --threads N        Threads for index building and query execution
//                      (default 1; 0 = all hardware threads). Answers
//                      are identical for every value.
//   --index-dir DIR    Persist the index under DIR (default: in-memory).
//                      A directory holding a `build --shards` output is
//                      detected and served by the sharded engine.
//   --shards N         `build`: number of shards to partition into.
//   --no-thesaurus     Disable semantic (synonym) matching.
//   --thesaurus FILE   Merge a user thesaurus ("syn:"/"isa:" lines)
//                      on top of the builtin vocabulary.
//   --export FILE      Write the loaded graph back out as N-Triples
//                      (.nt) or Turtle (.ttl) and exit.
//   --baseline NAME    Run a competitor instead of Sama:
//                      exact | sapper | bounded | dogma.
//   --strict-io        Fail queries on the first corrupt or unreadable
//                      record instead of skipping damaged candidates
//                      (the default degrades gracefully and reports the
//                      skip count under --stats).
//   --no-prune         Disable score-bounded forest-search pruning and
//                      run the exhaustive enumeration (ablation; the
//                      answers are identical, only slower).
//   --no-cache         Disable the query-side caches (postings,
//                      candidate lists, path records, label matches,
//                      alignment memo). Answers are identical.
//   --stats            Print index and per-query statistics, including
//                      cache hit rates and the search pruning ratio.
//   --trace            Record a span trace per query and print it as a
//                      single `-- trace: {...}` JSON line.
//   --metrics          After the queries run, dump the process metrics
//                      registry in Prometheus text format to stdout.
//   --slow-query-ms N  Record queries slower than N ms in the slow-query
//                      log (printed after the run; see DESIGN.md
//                      "Observability").
//   --slow-query-log F Also append slow-query records to F as JSONL.
//   --explain          Print a postgres-style EXPLAIN ANALYZE tree per
//                      query (phase wall/self time, cache and page
//                      counters). Implies profiling.
//   --profile-out F    Write the last query's profile as Chrome
//                      trace-event JSON to F (open in Perfetto or
//                      chrome://tracing). Implies profiling.
//   --trace-id HEX     Stamp queries with this 1..32-hex-digit trace id
//                      (the trace JSON then carries it, and a server
//                      joins spans under it; see --trace-id on
//                      sama_client for the wire side).
//   --port N           Port for `serve` (default 8080; 0 = ephemeral).
//   --host ADDR        Listen address for `serve` (default 127.0.0.1).
//   --http-port N      `serve --binary`: also serve the diagnostics
//                      HTTP endpoints on this port (0 = ephemeral;
//                      omitted = no HTTP listener).
//   --interval S       `top`: refresh period in seconds (default 2).
//   --window S         `top` / SLO evaluation window (default 60).
//   --iterations N     `top`: stop after N refreshes (0 = forever).
//   --slo-latency-ms N     SLO: latency objective threshold (250).
//   --slo-latency-ratio R  SLO: allowed slow fraction (0.01).
//   --slo-error-ratio R    SLO: allowed error fraction (0.01).
//   --slo-shed-ratio R     SLO: allowed shed fraction (0.05).
//   --slo-burn R           SLO: degraded at burn rate >= R (1.0).
//   --no-slo               Disable SLO evaluation (healthz always ok).
//   --apply FILE       Update statements for `update` ("-" = stdin).
//   --no-fsync         `update`: defer fsyncs to the final checkpoint.
//   --updates          `serve --binary`: enable the UPDATE opcode
//                      (requires --index-dir; opens the WAL, replays
//                      anything a previous run left unapplied).
//   --checkpoint-every N  Checkpoint the index every N updates
//                      (default 1024; 0 = only at exit/shutdown).
//
// Flags accept both `--flag value` and `--flag=value`.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "baselines/bounded.h"
#include "baselines/dogma.h"
#include "baselines/exact.h"
#include "baselines/sapper.h"
#include "common/string_util.h"
#include "core/engine.h"
#include "obs/exporter.h"
#include "obs/http_server.h"
#include "server/binary_server.h"
#include "datasets/govtrack.h"
#include "graph/graph_stats.h"
#include "index/index_verify.h"
#include "index/path_index.h"
#include "query/sparql.h"
#include "graph/loader.h"
#include "rdf/ntriples.h"
#include "rdf/turtle.h"
#include "shard/sharded_engine.h"
#include "shard/sharded_index.h"
#include "text/thesaurus.h"

namespace {

struct CliOptions {
  std::string data_path;
  std::string query_path;
  std::string sparql;
  std::string index_dir;
  std::string baseline;
  std::string thesaurus_path;
  std::string export_path;
  size_t k = 10;
  size_t threads = 1;  // 0 = hardware concurrency.
  bool interactive = false;
  bool use_thesaurus = true;
  bool stats = false;
  bool demo = false;
  bool strict_io = false;
  bool verify = false;
  bool prune_search = true;
  bool use_cache = true;
  bool trace = false;
  bool metrics = false;
  double slow_query_ms = 0;
  std::string slow_query_log_path;
  bool explain = false;
  std::string profile_out;
  bool serve = false;
  size_t port = 8080;
  std::string host = "127.0.0.1";
  // serve --binary: the framed binary protocol instead of HTTP.
  bool binary = false;
  // serve --binary: co-hosted diagnostics HTTP port (-1 = none).
  long http_port = -1;
  // Propagated trace id (--trace-id), empty = none.
  std::string trace_id;
  // top subcommand.
  bool top = false;
  double top_interval = 2.0;
  double window_seconds = 60.0;
  size_t top_iterations = 0;  // 0 = until killed.
  // SLO objectives (serve).
  bool slo_enabled = true;
  double slo_latency_ms = 250.0;
  double slo_latency_ratio = 0.01;
  double slo_error_ratio = 0.01;
  double slo_shed_ratio = 0.05;
  double slo_burn = 1.0;
  size_t workers = 1;
  size_t max_conns = 64;
  size_t max_queue = 128;
  size_t deadline_ms = 0;  // Default per-query deadline; 0 = none.
  // build subcommand (sharded index).
  bool build = false;
  size_t shards = 0;
  // update subcommand / serve --updates.
  bool update = false;
  std::string apply_path;  // "" or "-" = stdin.
  bool fsync_updates = true;
  bool serve_updates = false;
  size_t checkpoint_every = 1024;
};

void PrintUsage() {
  std::fprintf(stderr,
               "usage: sama_cli --data FILE (--query FILE | --sparql TEXT |"
               " --interactive)\n"
               "               [--k N] [--threads N] [--index-dir DIR]"
               " [--no-thesaurus]\n"
               "               [--baseline exact|sapper|bounded|dogma]"
               " [--strict-io] [--no-prune]\n"
               "               [--no-cache] [--stats] [--trace]"
               " [--metrics]\n"
               "               [--slow-query-ms N] [--slow-query-log FILE]\n"
               "               [--explain] [--profile-out FILE]\n"
               "       sama_cli verify --index-dir DIR   (checksum an"
               " index + WAL, non-zero exit on damage)\n"
               "       sama_cli update --data FILE --index-dir DIR"
               " [--apply FILE] [--no-fsync]\n"
               "                       [--checkpoint-every N]   (apply"
               " '+'/'-' statement lines through the WAL)\n"
               "       sama_cli build --data FILE --index-dir DIR"
               " --shards N [--threads N]\n"
               "                      (partitioned sharded index; querying"
               " DIR later scatter-gathers)\n"
               "       sama_cli serve (--data FILE | --demo)"
               " [--port N] [--host ADDR]\n"
               "                      [--binary [--workers N] [--max-conns N]"
               " [--max-queue N]\n"
               "                       [--deadline-ms N] [--http-port N]]"
               "   (framed binary\n"
               "                      protocol; --http-port co-hosts the"
               " diagnostics endpoints)\n"
               "       sama_cli top [--host ADDR] [--port N] [--interval S]"
               " [--window S]\n"
               "                    [--iterations N]   (live QPS/P99/shed"
               " view of a serving process)\n"
               "       sama_cli --demo   (built-in Figure-1 walkthrough)\n");
}

bool ParseArgs(int argc, char** argv, CliOptions* options) {
  int first = 1;
  if (argc > 1 && std::strcmp(argv[1], "verify") == 0) {
    options->verify = true;
    first = 2;
  } else if (argc > 1 && std::strcmp(argv[1], "serve") == 0) {
    options->serve = true;
    first = 2;
  } else if (argc > 1 && std::strcmp(argv[1], "update") == 0) {
    options->update = true;
    first = 2;
  } else if (argc > 1 && std::strcmp(argv[1], "build") == 0) {
    options->build = true;
    first = 2;
  } else if (argc > 1 && std::strcmp(argv[1], "top") == 0) {
    options->top = true;
    first = 2;
  }
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    // Accept --flag=value alongside --flag value.
    std::string inline_value;
    bool has_inline = false;
    if (arg.size() > 2 && arg[0] == '-' && arg[1] == '-') {
      size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        inline_value = arg.substr(eq + 1);
        arg = arg.substr(0, eq);
        has_inline = true;
      }
    }
    auto next = [&](std::string* out) {
      if (has_inline) {
        *out = inline_value;
        return true;
      }
      if (i + 1 >= argc) return false;
      *out = argv[++i];
      return true;
    };
    std::string value;
    if (arg == "--data" && next(&value)) {
      options->data_path = value;
    } else if (arg == "--query" && next(&value)) {
      options->query_path = value;
    } else if (arg == "--sparql" && next(&value)) {
      options->sparql = value;
    } else if (arg == "--index-dir" && next(&value)) {
      options->index_dir = value;
    } else if (arg == "--baseline" && next(&value)) {
      options->baseline = value;
    } else if (arg == "--thesaurus" && next(&value)) {
      options->thesaurus_path = value;
    } else if (arg == "--export" && next(&value)) {
      options->export_path = value;
    } else if (arg == "--k" && next(&value)) {
      options->k = static_cast<size_t>(std::strtoul(value.c_str(),
                                                    nullptr, 10));
    } else if (arg == "--threads" && next(&value)) {
      options->threads = static_cast<size_t>(std::strtoul(value.c_str(),
                                                          nullptr, 10));
    } else if (arg == "--interactive") {
      options->interactive = true;
    } else if (arg == "--no-thesaurus") {
      options->use_thesaurus = false;
    } else if (arg == "--strict-io") {
      options->strict_io = true;
    } else if (arg == "--no-prune") {
      options->prune_search = false;
    } else if (arg == "--no-cache") {
      options->use_cache = false;
    } else if (arg == "--stats") {
      options->stats = true;
    } else if (arg == "--trace") {
      options->trace = true;
    } else if (arg == "--metrics") {
      options->metrics = true;
    } else if (arg == "--slow-query-ms" && next(&value)) {
      options->slow_query_ms = std::strtod(value.c_str(), nullptr);
    } else if (arg == "--slow-query-log" && next(&value)) {
      options->slow_query_log_path = value;
    } else if (arg == "--explain") {
      options->explain = true;
    } else if (arg == "--profile-out" && next(&value)) {
      options->profile_out = value;
    } else if (arg == "--port" && next(&value)) {
      options->port = static_cast<size_t>(std::strtoul(value.c_str(),
                                                       nullptr, 10));
    } else if (arg == "--host" && next(&value)) {
      options->host = value;
    } else if (arg == "--http-port" && next(&value)) {
      options->http_port = std::strtol(value.c_str(), nullptr, 10);
    } else if (arg == "--trace-id" && next(&value)) {
      options->trace_id = value;
    } else if (arg == "--interval" && next(&value)) {
      options->top_interval = std::strtod(value.c_str(), nullptr);
    } else if (arg == "--window" && next(&value)) {
      options->window_seconds = std::strtod(value.c_str(), nullptr);
    } else if (arg == "--iterations" && next(&value)) {
      options->top_iterations = static_cast<size_t>(
          std::strtoul(value.c_str(), nullptr, 10));
    } else if (arg == "--slo-latency-ms" && next(&value)) {
      options->slo_latency_ms = std::strtod(value.c_str(), nullptr);
    } else if (arg == "--slo-latency-ratio" && next(&value)) {
      options->slo_latency_ratio = std::strtod(value.c_str(), nullptr);
    } else if (arg == "--slo-error-ratio" && next(&value)) {
      options->slo_error_ratio = std::strtod(value.c_str(), nullptr);
    } else if (arg == "--slo-shed-ratio" && next(&value)) {
      options->slo_shed_ratio = std::strtod(value.c_str(), nullptr);
    } else if (arg == "--slo-burn" && next(&value)) {
      options->slo_burn = std::strtod(value.c_str(), nullptr);
    } else if (arg == "--no-slo") {
      options->slo_enabled = false;
    } else if (arg == "--binary") {
      options->binary = true;
    } else if (arg == "--workers" && next(&value)) {
      options->workers = static_cast<size_t>(std::strtoul(value.c_str(),
                                                          nullptr, 10));
    } else if (arg == "--max-conns" && next(&value)) {
      options->max_conns = static_cast<size_t>(std::strtoul(value.c_str(),
                                                            nullptr, 10));
    } else if (arg == "--max-queue" && next(&value)) {
      options->max_queue = static_cast<size_t>(std::strtoul(value.c_str(),
                                                            nullptr, 10));
    } else if (arg == "--deadline-ms" && next(&value)) {
      options->deadline_ms = static_cast<size_t>(std::strtoul(value.c_str(),
                                                              nullptr, 10));
    } else if (arg == "--shards" && next(&value)) {
      options->shards = static_cast<size_t>(std::strtoul(value.c_str(),
                                                         nullptr, 10));
    } else if (arg == "--apply" && next(&value)) {
      options->apply_path = value;
    } else if (arg == "--no-fsync") {
      options->fsync_updates = false;
    } else if (arg == "--updates") {
      options->serve_updates = true;
    } else if (arg == "--checkpoint-every" && next(&value)) {
      options->checkpoint_every = static_cast<size_t>(
          std::strtoul(value.c_str(), nullptr, 10));
    } else if (arg == "--demo") {
      options->demo = true;
    } else if (arg == "--help" || arg == "-h") {
      return false;
    } else {
      std::fprintf(stderr, "unknown or incomplete option: %s\n",
                   arg.c_str());
      return false;
    }
  }
  if (options->top) {
    if (options->port > 65535) {
      std::fprintf(stderr, "--port must be in [0, 65535]\n");
      return false;
    }
    if (options->top_interval <= 0) options->top_interval = 2.0;
    if (options->window_seconds <= 0) options->window_seconds = 60.0;
    return true;
  }
  if (options->verify) {
    if (options->index_dir.empty()) {
      std::fprintf(stderr, "verify requires --index-dir\n");
      return false;
    }
    return true;
  }
  if (options->build) {
    if (options->index_dir.empty() || options->data_path.empty()) {
      std::fprintf(stderr, "build requires --data and --index-dir\n");
      return false;
    }
    if (options->shards == 0) {
      std::fprintf(stderr, "build requires --shards N (N >= 1)\n");
      return false;
    }
    return true;
  }
  if (options->update) {
    if (options->index_dir.empty()) {
      std::fprintf(stderr, "update requires --index-dir\n");
      return false;
    }
    if (options->data_path.empty()) {
      std::fprintf(stderr,
                   "update requires --data (the base file the index was "
                   "built over)\n");
      return false;
    }
    return true;
  }
  if (options->serve) {
    if (options->port > 65535) {
      std::fprintf(stderr, "--port must be in [0, 65535]\n");
      return false;
    }
    if (options->http_port > 65535) {
      std::fprintf(stderr, "--http-port must be in [0, 65535]\n");
      return false;
    }
    if (options->http_port >= 0 && !options->binary) {
      std::fprintf(stderr,
                   "--http-port applies to serve --binary (plain serve "
                   "already listens on --port)\n");
      return false;
    }
    if (!options->demo && options->data_path.empty()) {
      std::fprintf(stderr, "serve requires --data or --demo\n");
      return false;
    }
    if (options->serve_updates &&
        (options->index_dir.empty() || !options->binary)) {
      std::fprintf(stderr,
                   "--updates requires serve --binary with --index-dir "
                   "(the WAL lives in the index directory)\n");
      return false;
    }
    return true;
  }
  if (options->demo) return true;
  if (options->data_path.empty()) {
    std::fprintf(stderr, "--data is required\n");
    return false;
  }
  if (!options->export_path.empty()) return true;
  if (options->query_path.empty() && options->sparql.empty() &&
      !options->interactive) {
    std::fprintf(stderr,
                 "one of --query, --sparql or --interactive is required\n");
    return false;
  }
  return true;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

sama::Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return sama::Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// ---- Shared diagnostics endpoints (DESIGN.md §15). One registration
// helper serves both the plain `serve` HTTP listener and the --http-port
// co-host next to `serve --binary`; the struct carries whichever
// sources the serving mode has (null members answer 404/empty).
struct ObsState {
  const sama::SlowQueryLog* slow = nullptr;
  const sama::ProfileLog* profiles = nullptr;
  const sama::TimeSeriesRing* ring = nullptr;
  sama::SloTracker* slo = nullptr;
  const sama::TraceStore* traces = nullptr;
  double window_seconds = 60.0;  // Default window for top/timeseries.
};

void RegisterObsEndpoints(sama::ObsHttpServer* server, ObsState state) {
  server->Handle("/healthz", [state](const sama::HttpRequest& req) {
    sama::HttpResponse r;
    if (state.slo == nullptr) {
      r.body = "ok\n";
      return r;
    }
    state.slo->Evaluate();
    sama::SloTracker::Health health = state.slo->Snapshot();
    if (health.degraded) r.status = 503;
    auto verbose = req.params.find("verbose");
    if (verbose != req.params.end() && verbose->second != "0") {
      r.content_type = "application/json";
      r.body = state.slo->RenderJson();
    } else {
      r.body = health.degraded ? "degraded\n" : "ok\n";
    }
    return r;
  });
  server->Handle("/metrics", [](const sama::HttpRequest&) {
    sama::MetricsRegistry* reg = sama::MetricsRegistry::Global();
    sama::RefreshLatencyQuantiles(reg);
    sama::RefreshEpochMetrics(reg);
    sama::HttpResponse r;
    r.content_type = "text/plain; version=0.0.4; charset=utf-8";
    r.body = reg->RenderText();
    return r;
  });
  server->Handle("/debug/queries", [state](const sama::HttpRequest& req) {
    sama::HttpResponse r;
    r.content_type = "application/json";
    std::vector<sama::SlowQueryRecord> records;
    if (state.slow != nullptr) records = state.slow->Snapshot();
    // ?limit=N keeps the newest N rows — the ring is oldest-first, so
    // a bounded scrape still sees the most recent slow queries.
    size_t limit = records.size();
    auto it = req.params.find("limit");
    if (it != req.params.end()) {
      limit = static_cast<size_t>(
          std::strtoul(it->second.c_str(), nullptr, 10));
      if (limit > records.size()) limit = records.size();
    }
    r.body = "{\"total\":" + std::to_string(records.size()) +
             ",\"returned\":" + std::to_string(limit) + ",\"queries\":[";
    for (size_t i = records.size() - limit; i < records.size(); ++i) {
      if (i != records.size() - limit) r.body += ",";
      r.body += "\n";
      r.body += sama::SlowQueryLog::ToJsonLine(records[i]);
    }
    r.body += "\n]}\n";
    return r;
  });
  server->Handle("/debug/profile", [state](const sama::HttpRequest& req) {
    std::shared_ptr<const sama::QueryProfile> profile;
    if (state.profiles != nullptr) {
      auto it = req.params.find("id");
      profile = it == req.params.end()
                    ? state.profiles->Latest()
                    : state.profiles->Get(std::strtoull(it->second.c_str(),
                                                        nullptr, 10));
    }
    sama::HttpResponse r;
    if (profile == nullptr) {
      r.status = 404;
      r.body = "no such profile\n";
      return r;
    }
    auto fmt = req.params.find("format");
    if (fmt != req.params.end() && fmt->second == "text") {
      r.body = sama::RenderExplainAnalyze(*profile);
    } else {
      r.content_type = "application/json";
      r.body = sama::RenderChromeTrace(*profile);
    }
    return r;
  });
  server->Handle("/debug/timeseries", [state](const sama::HttpRequest& req) {
    sama::HttpResponse r;
    r.content_type = "application/json";
    if (state.ring == nullptr) {
      r.status = 503;
      r.body = "{\"error\":\"telemetry sampler not running\"}\n";
      return r;
    }
    double window = state.window_seconds;
    auto w = req.params.find("window");
    if (w != req.params.end()) window = std::strtod(w->second.c_str(),
                                                    nullptr);
    auto metric = req.params.find("metric");
    r.body = metric == req.params.end()
                 ? state.ring->RenderIndexJson()
                 : state.ring->RenderJson(metric->second, window);
    return r;
  });
  server->Handle("/debug/top", [state](const sama::HttpRequest& req) {
    sama::HttpResponse r;
    r.content_type = "application/json";
    if (state.ring == nullptr) {
      r.status = 503;
      r.body = "{\"error\":\"telemetry sampler not running\"}\n";
      return r;
    }
    double window = state.window_seconds;
    auto w = req.params.find("window");
    if (w != req.params.end()) window = std::strtod(w->second.c_str(),
                                                    nullptr);
    r.body = state.ring->RenderTopJson(window);
    return r;
  });
  server->Handle("/debug/trace", [state](const sama::HttpRequest& req) {
    sama::HttpResponse r;
    r.content_type = "application/json";
    if (state.traces == nullptr) {
      r.status = 404;
      r.body = "{\"error\":\"trace store only exists under serve "
               "--binary\"}\n";
      return r;
    }
    auto it = req.params.find("id");
    if (it == req.params.end()) {
      r.body = "{\"traces\":[";
      std::vector<std::string> ids = state.traces->Ids();
      for (size_t i = 0; i < ids.size(); ++i) {
        if (i) r.body += ",";
        r.body += "\"" + ids[i] + "\"";
      }
      r.body += "]}\n";
      return r;
    }
    // Accept short ids too (the store keys on the full 32-hex form):
    // parse and re-render so "?id=beef" finds "000...beef".
    std::string id = it->second;
    sama::TraceContext parsed;
    if (sama::TraceContext::ParseTraceId(id, &parsed)) {
      id = parsed.TraceIdHex();
    }
    std::shared_ptr<sama::QueryTrace> trace = state.traces->Find(id);
    if (trace == nullptr) {
      r.status = 404;
      r.body = "{\"error\":\"no such trace\",\"id\":\"" +
               JsonEscape(it->second) + "\"}\n";
      return r;
    }
    auto fmt = req.params.find("format");
    if (fmt != req.params.end() && fmt->second == "raw") {
      r.body = trace->ToJson();
      r.body += "\n";
    } else {
      // Perfetto/chrome://tracing loadable trace-event JSON.
      r.body = sama::RenderSpansChromeTrace(trace->Snapshot(), id);
    }
    return r;
  });
}

// ---- `sama_cli top`: poll /debug/top and redraw.

// Minimal one-shot HTTP GET (Connection: close). Returns the body
// whatever the status code — a degraded /healthz is still an answer.
sama::Result<std::string> HttpGet(const std::string& host, uint16_t port,
                                  const std::string& target) {
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return sama::Status::IoError("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return sama::Status::InvalidArgument("unparseable host: " + host);
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return sama::Status::IoError("cannot connect to " + host + ":" +
                                 std::to_string(port));
  }
  std::string request = "GET " + target + " HTTP/1.1\r\nHost: " + host +
                        "\r\nConnection: close\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = write(fd, request.data() + sent, request.size() - sent);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      close(fd);
      return sama::Status::IoError("write failed");
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[8192];
  while (true) {
    ssize_t n = read(fd, buf, sizeof(buf));
    if (n > 0) {
      response.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;
  }
  close(fd);
  size_t split = response.find("\r\n\r\n");
  if (split == std::string::npos) {
    return sama::Status::IoError("malformed HTTP response");
  }
  return response.substr(split + 4);
}

// Pulls `"key":<number>` out of a flat JSON object; NaN when absent.
double FindJsonNumber(const std::string& json, const std::string& key) {
  std::string needle = "\"" + key + "\":";
  size_t at = json.find(needle);
  if (at == std::string::npos) return std::nan("");
  return std::strtod(json.c_str() + at + needle.size(), nullptr);
}

int RunTop(const CliOptions& options) {
  uint16_t port = static_cast<uint16_t>(options.port);
  const bool redraw = isatty(STDOUT_FILENO) != 0;
  char window_arg[64];
  std::snprintf(window_arg, sizeof(window_arg), "/debug/top?window=%g",
                options.window_seconds);
  for (size_t iter = 0;; ++iter) {
    auto body = HttpGet(options.host, port, window_arg);
    if (!body.ok()) {
      std::fprintf(stderr, "top: %s\n", body.status().ToString().c_str());
      return 1;
    }
    std::string health = "unknown";
    auto health_body = HttpGet(options.host, port, "/healthz");
    if (health_body.ok()) {
      health = *health_body;
      while (!health.empty() &&
             (health.back() == '\n' || health.back() == '\r')) {
        health.pop_back();
      }
    }
    double qps = FindJsonNumber(*body, "qps");
    double p50 = FindJsonNumber(*body, "p50_ms");
    double p99 = FindJsonNumber(*body, "p99_ms");
    double shed = FindJsonNumber(*body, "shed_per_sec");
    double errors = FindJsonNumber(*body, "error_per_sec");
    double shed_ratio = FindJsonNumber(*body, "shed_ratio");
    double error_ratio = FindJsonNumber(*body, "error_ratio");
    double cache = FindJsonNumber(*body, "cache_hit_ratio");
    double pins = FindJsonNumber(*body, "epoch_pins");
    double wal_lag = FindJsonNumber(*body, "wal_unsynced_appends");
    double samples = FindJsonNumber(*body, "samples");
    if (redraw && iter > 0) std::printf("\x1b[H\x1b[2J");
    std::printf("sama top — %s:%u  window %gs  samples %.0f  health %s\n",
                options.host.c_str(), static_cast<unsigned>(port),
                options.window_seconds, samples, health.c_str());
    std::printf("  qps %8.1f    p50 %8.2f ms    p99 %8.2f ms\n", qps, p50,
                p99);
    std::printf("  shed %6.1f/s (%5.2f%%)    errors %6.1f/s (%5.2f%%)\n",
                shed, 100.0 * shed_ratio, errors, 100.0 * error_ratio);
    std::printf("  cache hit %5.1f%%    epoch pins %.0f    "
                "wal unsynced %.0f\n",
                100.0 * cache, pins, wal_lag);
    std::fflush(stdout);
    if (options.top_iterations != 0 && iter + 1 >= options.top_iterations) {
      return 0;
    }
    std::this_thread::sleep_for(
        std::chrono::duration<double>(options.top_interval));
  }
}

sama::SloOptions MakeSloOptions(const CliOptions& options) {
  sama::SloOptions slo;
  slo.enabled = options.slo_enabled;
  slo.window_seconds = options.window_seconds;
  slo.burn_threshold = options.slo_burn;
  slo.latency_millis = options.slo_latency_ms;
  slo.latency_bad_ratio = options.slo_latency_ratio;
  slo.error_ratio = options.slo_error_ratio;
  slo.shed_ratio = options.slo_shed_ratio;
  return slo;
}

// Runs a constructed binary-protocol server until a SHUTDOWN frame:
// starts the 1s telemetry sampler and the SLO tracker it feeds,
// optionally co-hosts the diagnostics HTTP endpoints on --http-port
// (sharing the same ring/SLO/trace-store state), and tears everything
// down once the server drains. `state.slow`/`state.profiles` come
// from the caller, which knows which engine flavour is serving.
int RunBinaryServer(const CliOptions& options,
                    sama::BinaryQueryServer* server, ObsState state,
                    bool updates_enabled,
                    const sama::SloOptions& slo_options) {
  sama::TimeSeriesRing ring{sama::TimeSeriesRing::Options()};
  sama::SloTracker slo(slo_options, &ring);
  if (slo_options.enabled) {
    ring.SetOnSample(
        [&slo](const sama::TimeSeriesRing&) { slo.Evaluate(); });
  }
  ring.Start();
  state.ring = &ring;
  state.slo = slo_options.enabled ? &slo : nullptr;
  state.traces = &server->trace_store();
  state.window_seconds = options.window_seconds;

  std::unique_ptr<sama::ObsHttpServer> http;
  if (options.http_port >= 0) {
    sama::ObsHttpServer::Options http_options;
    http_options.host = options.host;
    http_options.port = static_cast<uint16_t>(options.http_port);
    http = std::make_unique<sama::ObsHttpServer>(http_options);
    RegisterObsEndpoints(http.get(), state);
    sama::Status started = http->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "diagnostics server failed: %s\n",
                   started.ToString().c_str());
      ring.Stop();
      return 1;
    }
  }
  sama::Status started = server->Start();
  if (!started.ok()) {
    std::fprintf(stderr, "serve failed: %s\n", started.ToString().c_str());
    if (http != nullptr) http->Stop();
    ring.Stop();
    return 1;
  }
  std::printf("serving binary protocol on %s:%u"
              " (workers=%zu max-conns=%zu max-queue=%zu deadline-ms=%zu"
              " updates=%s)\n",
              server->host().c_str(),
              static_cast<unsigned>(server->port()), options.workers,
              options.max_conns, options.max_queue, options.deadline_ms,
              updates_enabled ? "on" : "off");
  if (http != nullptr) {
    std::printf("diagnostics on http://%s:%u — /metrics /healthz"
                " /debug/queries /debug/profile /debug/timeseries"
                " /debug/top /debug/trace\n",
                http->host().c_str(),
                static_cast<unsigned>(http->port()));
  }
  std::fflush(stdout);
  server->WaitForShutdown();  // A SHUTDOWN frame ends the process.
  server->Stop();             // Flushes journalled updates too.
  if (http != nullptr) http->Stop();
  ring.Stop();
  std::printf("shutdown requested; server drained\n");
  return 0;
}

void PrintAnswer(const sama::DataGraph& graph, size_t rank,
                 const sama::Answer& answer,
                 const std::vector<std::string>& vars) {
  std::printf("#%zu  score=%.3f (lambda=%.3f psi=%.3f)%s\n", rank,
              answer.score, answer.lambda_total, answer.psi_total,
              answer.consistent ? "" : "  [relaxed bindings]");
  for (const std::string& var : vars) {
    const sama::Term* bound = answer.binding.Lookup(var);
    std::printf("    ?%s = %s\n", var.c_str(),
                bound != nullptr ? bound->ToString().c_str() : "(unbound)");
  }
  for (const sama::ScoredPath& part : answer.parts) {
    std::printf("    %s [%.2f]\n",
                part.path.ToString(graph.dict()).c_str(), part.lambda());
  }
}

int RunBaseline(const CliOptions& options, sama::DataGraph* graph,
                const sama::SparqlQuery& query) {
  std::unique_ptr<sama::Matcher> matcher;
  if (options.baseline == "exact") {
    matcher = std::make_unique<sama::ExactMatcher>(graph);
  } else if (options.baseline == "sapper") {
    matcher = std::make_unique<sama::SapperMatcher>(graph);
  } else if (options.baseline == "bounded") {
    matcher = std::make_unique<sama::BoundedMatcher>(graph);
  } else if (options.baseline == "dogma") {
    matcher = std::make_unique<sama::DogmaMatcher>(graph);
  } else {
    std::fprintf(stderr, "unknown baseline '%s'\n",
                 options.baseline.c_str());
    return 1;
  }
  sama::QueryGraph qg = query.ToQueryGraph(graph->shared_dict());
  auto matches = matcher->Execute(qg, options.k);
  if (!matches.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", matcher->name().c_str(),
                 matches.status().ToString().c_str());
    return 1;
  }
  std::printf("%s: %zu matches\n", matcher->name().c_str(),
              matches->size());
  for (size_t i = 0; i < matches->size(); ++i) {
    std::printf("#%zu  cost=%.2f\n", i + 1, (*matches)[i].cost);
    for (const std::string& var : query.select_vars) {
      const sama::Term* bound = (*matches)[i].binding.Lookup(var);
      std::printf("    ?%s = %s\n", var.c_str(),
                  bound != nullptr ? bound->ToString().c_str()
                                   : "(unbound)");
    }
  }
  return 0;
}

// Works for both SamaEngine and ShardedEngine — the execute surface
// and QueryStats are shared, only the type differs.
template <typename Engine>
int RunOneQuery(const CliOptions& options, sama::DataGraph* graph,
                Engine* engine, const std::string& sparql) {
  auto query = sama::ParseSparql(sparql);
  if (!query.ok()) {
    std::fprintf(stderr, "query parse error: %s\n",
                 query.status().ToString().c_str());
    return 1;
  }
  if (!options.baseline.empty()) {
    return RunBaseline(options, graph, *query);
  }
  sama::QueryStats stats;
  auto answers = engine->ExecuteSparql(*query, options.k, &stats);
  if (!answers.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 answers.status().ToString().c_str());
    return 1;
  }
  std::printf("%zu answer(s)\n", answers->size());
  for (size_t i = 0; i < answers->size(); ++i) {
    PrintAnswer(*graph, i + 1, (*answers)[i], query->select_vars);
  }
  if (options.trace && stats.trace != nullptr) {
    std::printf("-- trace: %s\n", stats.trace->ToJson().c_str());
  }
  if (options.explain && stats.profile != nullptr) {
    std::printf("-- explain:\n%s",
                sama::RenderExplainAnalyze(*stats.profile).c_str());
  }
  if (!options.profile_out.empty() && stats.profile != nullptr) {
    std::ofstream out(options.profile_out,
                      std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", options.profile_out.c_str());
      return 1;
    }
    out << sama::RenderChromeTrace(*stats.profile);
    std::printf("-- profile written to %s\n", options.profile_out.c_str());
  }
  if (options.stats) {
    std::printf(
        "-- query stats: %zu query paths, %zu candidate paths, "
        "%.2f ms total (%.2f clustering, %.2f search)\n",
        stats.num_query_paths, stats.num_candidate_paths,
        stats.total_millis, stats.clustering_millis, stats.search_millis);
    if (stats.threads_used > 1) {
      std::printf(
          "-- parallel: %zu threads, speedup %.2fx clustering, "
          "%.2fx search\n",
          stats.threads_used, stats.ClusteringSpeedup(),
          stats.SearchSpeedup());
    }
    std::printf(
        "-- search: %llu expansion(s), %llu bound-pruned, "
        "%llu root(s) pruned (pruning ratio %.1f%%)%s\n",
        static_cast<unsigned long long>(stats.search_expansions),
        static_cast<unsigned long long>(stats.search_bound_pruned),
        static_cast<unsigned long long>(stats.search_roots_pruned),
        100.0 * stats.SearchPruningRatio(),
        stats.search_truncated ? ", TRUNCATED by the anytime budget" : "");
    if (stats.search_shared_bound_pruned > 0 || stats.shards_degraded > 0) {
      std::printf(
          "-- shards: %llu cross-shard bound-exchange prune(s), "
          "%llu degraded shard(s)\n",
          static_cast<unsigned long long>(stats.search_shared_bound_pruned),
          static_cast<unsigned long long>(stats.shards_degraded));
    }
    auto print_cache = [](const char* name,
                          const sama::CacheCounters& counters) {
      if (counters.lookups() == 0) return;
      std::printf("-- cache %-12s %s\n", name,
                  counters.ToString().c_str());
    };
    print_cache("postings:", stats.posting_cache);
    print_cache("lookups:", stats.path_lookup_cache);
    print_cache("records:", stats.path_record_cache);
    print_cache("labels:", stats.label_match_cache);
    print_cache("alignments:", stats.alignment_memo);
    print_cache("thesaurus:", stats.thesaurus_cache);
    if (stats.corrupt_records_skipped > 0 || stats.io_retries > 0) {
      std::printf(
          "-- degraded reads: %llu corrupt record(s) skipped, "
          "%llu transient retry(ies) — run `sama_cli verify` on the "
          "index directory\n",
          static_cast<unsigned long long>(stats.corrupt_records_skipped),
          static_cast<unsigned long long>(stats.io_retries));
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  if (!ParseArgs(argc, argv, &options)) {
    PrintUsage();
    return 2;
  }

  if (options.top) return RunTop(options);

  // A propagated trace identity (--trace-id) forces tracing on and is
  // stamped into every trace the run produces, so client-side output
  // and server-side /debug/trace agree on the id.
  sama::TraceContext trace_ctx;
  if (!options.trace_id.empty()) {
    if (!sama::TraceContext::ParseTraceId(options.trace_id, &trace_ctx)) {
      std::fprintf(stderr,
                   "invalid --trace-id '%s' (want 1..32 hex digits, "
                   "nonzero)\n",
                   options.trace_id.c_str());
      return 2;
    }
    options.trace = true;
  }

  if (options.verify) {
    auto report = sama::VerifyIndexDir(options.index_dir);
    if (!report.ok()) {
      std::fprintf(stderr, "verify failed: %s\n",
                   report.status().ToString().c_str());
      return 2;
    }
    std::printf("%s", report->ToString().c_str());
    return report->clean() ? 0 : 1;
  }

  sama::DataGraph graph;
  if (options.demo) {
    graph = sama::DataGraph::FromTriples(sama::GovTrackFigure1Triples());
    if (options.sparql.empty() && options.query_path.empty() &&
        !options.interactive) {
      options.sparql =
          "PREFIX gov: <http://gov.example.org/>\n"
          "SELECT ?v1 ?v2 ?v3 WHERE {\n"
          "  gov:CarlaBunes gov:sponsor ?v1 . ?v1 gov:aTo ?v2 .\n"
          "  ?v2 gov:subject \"Health Care\" . ?v3 gov:sponsor ?v2 .\n"
          "  ?v3 gov:gender \"Male\" }";
    }
  } else {
    // Stream the file in constant memory, reporting progress on large
    // inputs.
    auto loaded = sama::LoadGraphFromFile(
        options.data_path, &graph,
        options.stats
            ? [](const sama::LoadStats& p) {
                std::fprintf(stderr, "-- loaded %llu triples...\r",
                             static_cast<unsigned long long>(p.triples));
              }
            : std::function<void(const sama::LoadStats&)>());
    if (!loaded.ok()) {
      std::fprintf(stderr, "failed to load %s: %s\n",
                   options.data_path.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    if (options.stats) {
      std::printf("-- loaded %llu triples in %.0f ms\n",
                  static_cast<unsigned long long>(loaded->triples),
                  loaded->millis);
    }
  }
  if (options.stats) {
    std::printf("-- graph:\n%s",
                sama::FormatGraphStats(sama::ComputeGraphStats(graph))
                    .c_str());
  }
  if (!options.export_path.empty()) {
    // Re-serialise the loaded graph and exit.
    std::vector<sama::Triple> triples;
    for (sama::EdgeId e = 0; e < graph.edge_count(); ++e) {
      const sama::DataGraph::Edge& edge = graph.edge(e);
      triples.push_back(sama::Triple{graph.node_term(edge.from),
                                     graph.edge_term(e),
                                     graph.node_term(edge.to)});
    }
    std::string text = sama::EndsWith(options.export_path, ".ttl")
                           ? sama::WriteTurtle(triples)
                           : sama::WriteNTriples(triples);
    std::ofstream out(options.export_path,
                      std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n",
                   options.export_path.c_str());
      return 1;
    }
    out << text;
    std::printf("exported %zu triples to %s\n", triples.size(),
                options.export_path.c_str());
    return 0;
  }

  if (options.build) {
    sama::ShardedIndexOptions shard_options;
    shard_options.num_shards = options.shards;
    shard_options.num_threads = options.threads == 0
                                    ? sama::ThreadPool::HardwareThreads()
                                    : options.threads;
    sama::ShardBuildReport report;
    sama::Status built = sama::BuildShardedIndex(graph, options.index_dir,
                                                 shard_options, &report);
    if (!built.ok()) {
      std::fprintf(stderr, "sharded build failed: %s\n",
                   built.ToString().c_str());
      return 1;
    }
    std::printf("built %zu shard(s) in %s: %llu paths, "
                "%zu partition component(s), %llu cut edge(s)\n",
                report.num_shards, options.index_dir.c_str(),
                static_cast<unsigned long long>(report.total_paths),
                report.num_components,
                static_cast<unsigned long long>(report.cut_edges));
    for (size_t s = 0; s < report.shard_paths.size(); ++s) {
      std::printf("  shard-%04zu: %llu path(s)\n", s,
                  static_cast<unsigned long long>(report.shard_paths[s]));
    }
    return 0;
  }

  // A directory produced by `build --shards` answers through the
  // scatter-gather engine; everything else follows the single-index
  // path below. Binary serving works over shards (read-only — UPDATE
  // frames are refused with kReadOnly); plain-HTTP serving and live
  // updates remain single-index features.
  if (!options.index_dir.empty() &&
      sama::IsShardedIndexDir(options.index_dir)) {
    if ((options.serve && !options.binary) || options.update) {
      std::fprintf(stderr,
                   "%s is a sharded index; plain `serve` and `update` "
                   "require a single-index directory (rebuild without "
                   "--shards, or use `serve --binary`)\n",
                   options.index_dir.c_str());
      return 2;
    }
    if (options.serve && options.serve_updates) {
      std::fprintf(stderr,
                   "--updates is not available over a sharded index "
                   "(sharded serving is read-only)\n");
      return 2;
    }
    sama::ShardedIndex sharded_index;
    sama::Status opened = sharded_index.Open(&graph, options.index_dir,
                                             /*strict=*/options.strict_io);
    if (!opened.ok()) {
      std::fprintf(stderr, "cannot open sharded index %s: %s\n",
                   options.index_dir.c_str(), opened.ToString().c_str());
      return 1;
    }
    if (sharded_index.degraded_shards() > 0) {
      std::fprintf(stderr,
                   "note: %zu of %zu shard(s) damaged; answering from the "
                   "survivors (run `sama_cli verify` per shard dir)\n",
                   sharded_index.degraded_shards(),
                   sharded_index.num_shards());
    }
    if (options.stats) {
      std::printf("-- sharded index: %zu shard(s), %llu paths, "
                  "%llu cut edge(s)\n",
                  sharded_index.num_shards(),
                  static_cast<unsigned long long>(
                      sharded_index.total_paths()),
                  static_cast<unsigned long long>(
                      sharded_index.cut_edges()));
    }
    sama::Thesaurus thesaurus = sama::Thesaurus::BuiltinEnglish();
    if (!options.thesaurus_path.empty()) {
      sama::Status loaded = thesaurus.LoadFromFile(options.thesaurus_path);
      if (!loaded.ok()) {
        std::fprintf(stderr, "failed to load thesaurus: %s\n",
                     loaded.ToString().c_str());
        return 1;
      }
    }
    sama::EngineOptions engine_options;
    engine_options.num_threads = options.threads;
    engine_options.strict_io = options.strict_io;
    engine_options.params.prune_search = options.prune_search;
    engine_options.cache.enabled = options.use_cache;
    engine_options.obs.trace = options.trace;
    engine_options.obs.metrics = options.metrics || options.serve;
    engine_options.obs.trace_context = trace_ctx;
    engine_options.obs.slo = MakeSloOptions(options);
    engine_options.obs.profile =
        options.explain || !options.profile_out.empty() || options.serve;
    sama::ShardedEngine engine(&graph, &sharded_index,
                               options.use_thesaurus ? &thesaurus : nullptr,
                               engine_options);
    if (options.serve) {
      // Warmup so /metrics and the telemetry ring have content from
      // the start, matching the single-index serve path.
      std::string warmup = options.sparql;
      if (!options.query_path.empty()) {
        auto text = ReadFile(options.query_path);
        if (!text.ok()) {
          std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
          return 1;
        }
        warmup = *text;
      }
      if (!warmup.empty()) RunOneQuery(options, &graph, &engine, warmup);
      sama::BinaryQueryServer::Options server_options;
      server_options.host = options.host;
      server_options.port = static_cast<uint16_t>(options.port);
      server_options.num_workers = options.workers;
      server_options.max_connections = options.max_conns;
      server_options.max_queue = options.max_queue;
      server_options.default_k = options.k;
      server_options.default_deadline_ms =
          static_cast<uint32_t>(options.deadline_ms);
      server_options.trace_requests = options.trace;
      sama::BinaryQueryServer server(&engine, server_options);
      ObsState state;
      state.profiles = engine.profile_log();
      return RunBinaryServer(options, &server, state,
                             /*updates_enabled=*/false,
                             engine.options().obs.slo);
    }
    if (options.interactive) {
      std::printf("Enter SPARQL queries, blank line to run, EOF to quit.\n");
      std::string buffer, line;
      while (std::getline(std::cin, line)) {
        if (!line.empty()) {
          buffer += line;
          buffer += '\n';
          continue;
        }
        if (buffer.empty()) continue;
        RunOneQuery(options, &graph, &engine, buffer);
        buffer.clear();
      }
      if (!buffer.empty()) RunOneQuery(options, &graph, &engine, buffer);
      return 0;
    }
    std::string sparql = options.sparql;
    if (!options.query_path.empty()) {
      auto text = ReadFile(options.query_path);
      if (!text.ok()) {
        std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
        return 1;
      }
      sparql = *text;
    }
    int rc = RunOneQuery(options, &graph, &engine, sparql);
    if (options.metrics) {
      sama::RefreshEpochMetrics(sama::MetricsRegistry::Global());
      std::printf("-- metrics:\n%s",
                  sama::MetricsRegistry::Global()->RenderText().c_str());
    }
    return rc;
  }

  sama::PathIndexOptions index_options;
  index_options.dir = options.index_dir;
  index_options.num_threads = options.threads == 0
                                  ? sama::ThreadPool::HardwareThreads()
                                  : options.threads;
  sama::PathIndex index;
  bool reused = false;
  // Attempt a reuse whenever the directory holds a committed index OR
  // leftovers of a crashed build — Open() also performs the recovery
  // sweep that discards partial artifacts. kNotFound afterwards is the
  // clean empty state (nothing committed), so the rebuild is silent;
  // anything else (corruption, version mismatch) is worth a note.
  if (!options.index_dir.empty() &&
      (std::filesystem::exists(options.index_dir + "/index.meta") ||
       std::filesystem::exists(options.index_dir + "/build.tmp"))) {
    sama::Status opened = index.Open(&graph, index_options);
    if (opened.ok()) {
      reused = true;
      if (options.stats) {
        std::printf("-- reusing persisted index in %s\n",
                    options.index_dir.c_str());
      }
    } else if (opened.code() != sama::Status::Code::kNotFound) {
      std::fprintf(stderr,
                   "note: could not reuse index in %s (%s); rebuilding\n",
                   options.index_dir.c_str(),
                   opened.ToString().c_str());
    }
  }
  if (!reused) {
    sama::Status built = index.Build(graph, index_options);
    if (!built.ok()) {
      std::fprintf(stderr, "index build failed: %s\n",
                   built.ToString().c_str());
      return 1;
    }
  }
  if (options.stats) {
    const sama::IndexStats& s = index.stats();
    std::printf(
        "-- index: %llu triples, %llu paths, |HV|=%llu, |HE|=%llu, "
        "built in %s, %s on disk\n",
        static_cast<unsigned long long>(s.num_triples),
        static_cast<unsigned long long>(s.num_paths),
        static_cast<unsigned long long>(s.hv),
        static_cast<unsigned long long>(s.he),
        sama::HumanMillis(s.build_millis).c_str(),
        sama::HumanBytes(s.disk_bytes).c_str());
  }

  sama::Thesaurus thesaurus = sama::Thesaurus::BuiltinEnglish();
  if (!options.thesaurus_path.empty()) {
    sama::Status loaded = thesaurus.LoadFromFile(options.thesaurus_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "failed to load thesaurus: %s\n",
                   loaded.ToString().c_str());
      return 1;
    }
  }
  sama::EngineOptions engine_options;
  engine_options.num_threads = options.threads;
  engine_options.strict_io = options.strict_io;
  engine_options.params.prune_search = options.prune_search;
  engine_options.cache.enabled = options.use_cache;
  engine_options.obs.trace = options.trace;
  engine_options.obs.trace_context = trace_ctx;
  engine_options.obs.slo = MakeSloOptions(options);
  engine_options.obs.slow_query_millis = options.slow_query_ms;
  engine_options.obs.slow_query_path = options.slow_query_log_path;
  engine_options.obs.profile =
      options.explain || !options.profile_out.empty() || options.serve;
  if (options.serve && options.slow_query_ms <= 0) {
    // /debug/queries needs a live ring; 100ms is a serving-friendly
    // default the operator can still override.
    engine_options.obs.slow_query_millis = 100;
  }
  sama::SamaEngine engine(&graph, &index,
                          options.use_thesaurus ? &thesaurus : nullptr,
                          engine_options);

  // Post-run observability dumps, shared by the batch and interactive
  // paths.
  auto dump_obs = [&]() {
    const sama::SlowQueryLog* slow = engine.slow_query_log();
    if (slow != nullptr) {
      auto records = slow->Snapshot();
      std::printf("-- slow queries (>= %.1f ms): %llu recorded\n",
                  options.slow_query_ms,
                  static_cast<unsigned long long>(slow->total_recorded()));
      for (const auto& r : records) {
        std::printf("-- slow: %s\n",
                    sama::SlowQueryLog::ToJsonLine(r).c_str());
      }
      if (slow->sink_failures() > 0) {
        std::fprintf(stderr,
                     "note: %llu slow-query sink write(s) failed (%s)\n",
                     static_cast<unsigned long long>(slow->sink_failures()),
                     slow->last_sink_status().ToString().c_str());
      }
    }
    if (options.metrics) {
      sama::RefreshEpochMetrics(sama::MetricsRegistry::Global());
      std::printf("-- metrics:\n%s",
                  sama::MetricsRegistry::Global()->RenderText().c_str());
    }
  };

  if (options.update) {
    sama::UpdateOptions update_options;
    update_options.checkpoint_every = options.checkpoint_every;
    update_options.durable = options.fsync_updates;
    sama::Status enabled = engine.EnableUpdates(&graph, &index,
                                                update_options);
    if (!enabled.ok()) {
      std::fprintf(stderr, "cannot enable updates: %s\n",
                   enabled.ToString().c_str());
      return 1;
    }
    std::ifstream file;
    std::istream* in = &std::cin;
    if (!options.apply_path.empty() && options.apply_path != "-") {
      file.open(options.apply_path);
      if (!file) {
        std::fprintf(stderr, "cannot open %s\n",
                     options.apply_path.c_str());
        return 1;
      }
      in = &file;
    }
    unsigned long long inserts = 0, deletes = 0, line_no = 0;
    std::string line;
    while (std::getline(*in, line)) {
      ++line_no;
      size_t at = line.find_first_not_of(" \t");
      if (at == std::string::npos || line[at] == '#') continue;
      char op = line[at];
      if (op != '+' && op != '-') {
        std::fprintf(stderr,
                     "line %llu: expected '+ <statement> .' or "
                     "'- <statement> .'\n",
                     line_no);
        return 1;
      }
      auto triple = sama::NTriplesParser::ParseLine(line.substr(at + 1));
      if (!triple.ok()) {
        std::fprintf(stderr, "line %llu: %s\n", line_no,
                     triple.status().ToString().c_str());
        return 1;
      }
      auto lsn = op == '+' ? engine.InsertTriple(*triple)
                           : engine.DeleteTriple(*triple);
      if (!lsn.ok()) {
        // Everything acked so far is journalled; the next open replays
        // it. Report the failing line and stop.
        std::fprintf(stderr, "line %llu: update failed: %s\n", line_no,
                     lsn.status().ToString().c_str());
        return 1;
      }
      op == '+' ? ++inserts : ++deletes;
    }
    sama::Status checkpointed = engine.CheckpointUpdates();
    if (!checkpointed.ok()) {
      std::fprintf(stderr,
                   "checkpoint failed: %s (every applied update is still "
                   "in the WAL and replays on the next open)\n",
                   checkpointed.ToString().c_str());
      return 1;
    }
    std::printf("applied %llu insert(s), %llu delete(s); "
                "checkpoint at lsn %llu\n",
                inserts, deletes,
                static_cast<unsigned long long>(engine.last_update_lsn()));
    return 0;
  }

  if (options.serve) {
    // Warmup query (the --sparql/--query text, or the demo default)
    // so /debug/profile and /metrics have content from the start.
    std::string warmup = options.sparql;
    if (!options.query_path.empty()) {
      auto text = ReadFile(options.query_path);
      if (!text.ok()) {
        std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
        return 1;
      }
      warmup = *text;
    }
    if (!warmup.empty()) RunOneQuery(options, &graph, &engine, warmup);

    if (options.binary) {
      if (options.serve_updates) {
        sama::UpdateOptions update_options;
        update_options.checkpoint_every = options.checkpoint_every;
        update_options.durable = options.fsync_updates;
        sama::Status enabled = engine.EnableUpdates(&graph, &index,
                                                    update_options);
        if (!enabled.ok()) {
          std::fprintf(stderr, "cannot enable updates: %s\n",
                       enabled.ToString().c_str());
          return 1;
        }
      }
      sama::BinaryQueryServer::Options server_options;
      server_options.host = options.host;
      server_options.port = static_cast<uint16_t>(options.port);
      server_options.num_workers = options.workers;
      server_options.max_connections = options.max_conns;
      server_options.max_queue = options.max_queue;
      server_options.default_k = options.k;
      server_options.default_deadline_ms =
          static_cast<uint32_t>(options.deadline_ms);
      server_options.trace_requests = options.trace;
      sama::BinaryQueryServer server(&engine, server_options);
      ObsState state;
      state.slow = engine.slow_query_log();
      state.profiles = engine.profile_log();
      int rc = RunBinaryServer(options, &server, state,
                               engine.updates_enabled(),
                               engine.options().obs.slo);
      if (rc != 0) return rc;
      if (engine.updates_enabled()) {
        // Fold the WAL into the index so the next open skips replay.
        // Failure is not fatal: the flushed WAL already holds
        // everything, recovery just has more to do.
        sama::Status checkpointed = engine.CheckpointUpdates();
        if (!checkpointed.ok()) {
          std::fprintf(stderr,
                       "note: final checkpoint failed (%s); the WAL "
                       "replays on the next open\n",
                       checkpointed.ToString().c_str());
        }
      }
      dump_obs();
      return 0;
    }

    // Plain-HTTP serving: the shared diagnostics endpoints plus POST
    // /query. The 1s sampler and SLO tracker run for the lifetime of
    // the server, so /debug/timeseries and the SLO-aware /healthz work
    // here exactly as they do under `serve --binary --http-port`.
    sama::TimeSeriesRing ring{sama::TimeSeriesRing::Options()};
    sama::SloTracker slo(engine.options().obs.slo, &ring);
    if (engine.options().obs.slo.enabled) {
      ring.SetOnSample(
          [&slo](const sama::TimeSeriesRing&) { slo.Evaluate(); });
    }
    ring.Start();
    sama::ObsHttpServer::Options server_options;
    server_options.host = options.host;
    server_options.port = static_cast<uint16_t>(options.port);
    sama::ObsHttpServer server(server_options);
    ObsState state;
    state.slow = engine.slow_query_log();
    state.profiles = engine.profile_log();
    state.ring = &ring;
    state.slo = engine.options().obs.slo.enabled ? &slo : nullptr;
    state.window_seconds = options.window_seconds;
    RegisterObsEndpoints(&server, state);
    server.Handle("/query", [&engine, &options](const sama::HttpRequest& req) {
      sama::HttpResponse r;
      r.content_type = "application/json";
      if (req.method != "POST") {
        r.status = 405;
        r.body = "{\"error\":\"POST a SPARQL query as the body\"}\n";
        return r;
      }
      auto query = sama::ParseSparql(req.body);
      if (!query.ok()) {
        r.status = 400;
        r.body = "{\"error\":\"" + JsonEscape(query.status().ToString()) +
                 "\"}\n";
        return r;
      }
      sama::QueryStats stats;
      auto answers = engine.ExecuteSparql(*query, options.k, &stats);
      if (!answers.ok()) {
        r.status = 500;
        r.body = "{\"error\":\"" + JsonEscape(answers.status().ToString()) +
                 "\"}\n";
        return r;
      }
      char num[64];
      r.body = "{\"answers\":[";
      for (size_t i = 0; i < answers->size(); ++i) {
        const sama::Answer& a = (*answers)[i];
        if (i) r.body += ",";
        std::snprintf(num, sizeof(num), "%.4f", a.score);
        r.body += "\n{\"score\":";
        r.body += num;
        r.body += ",\"bindings\":{";
        for (size_t v = 0; v < query->select_vars.size(); ++v) {
          const std::string& var = query->select_vars[v];
          const sama::Term* bound = a.binding.Lookup(var);
          if (v) r.body += ",";
          r.body += "\"" + JsonEscape(var) + "\":\"" +
                    JsonEscape(bound != nullptr ? bound->ToString()
                                                : "") +
                    "\"";
        }
        r.body += "}}";
      }
      std::snprintf(num, sizeof(num), "%.3f", stats.total_millis);
      r.body += "\n],\"total_ms\":";
      r.body += num;
      if (stats.profile != nullptr) {
        r.body += ",\"profile_id\":" +
                  std::to_string(stats.profile->id());
      }
      r.body += "}\n";
      return r;
    });
    sama::Status started = server.Start();
    if (!started.ok()) {
      std::fprintf(stderr, "serve failed: %s\n",
                   started.ToString().c_str());
      return 1;
    }
    std::printf("serving on http://%s:%u — endpoints: /metrics /healthz"
                " /debug/queries /debug/profile /debug/timeseries"
                " /debug/top /debug/trace, POST /query\n",
                server.host().c_str(),
                static_cast<unsigned>(server.port()));
    std::fflush(stdout);
    for (;;) pause();  // Until SIGINT/SIGTERM.
  }

  if (options.interactive) {
    std::printf("Enter SPARQL queries, blank line to run, EOF to quit.\n");
    std::string buffer, line;
    while (std::getline(std::cin, line)) {
      if (!line.empty()) {
        buffer += line;
        buffer += '\n';
        continue;
      }
      if (buffer.empty()) continue;
      RunOneQuery(options, &graph, &engine, buffer);
      buffer.clear();
    }
    if (!buffer.empty()) RunOneQuery(options, &graph, &engine, buffer);
    dump_obs();
    return 0;
  }

  std::string sparql = options.sparql;
  if (!options.query_path.empty()) {
    auto text = ReadFile(options.query_path);
    if (!text.ok()) {
      std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
      return 1;
    }
    sparql = *text;
  }
  int rc = RunOneQuery(options, &graph, &engine, sparql);
  dump_obs();
  return rc;
}

// Regenerates the renderer golden files locked by
// tests/obs/exporter_test.cc. The synthetic profile here MUST stay in
// sync with MakeGoldenProfile() in that test — same spans, summary, and
// phase counters — or the freshly written goldens will not match what
// the test renders.
//
//   ./build/tools/gen_obs_goldens tests/data
//
// writes obs_explain.golden and obs_profile_trace.golden into the given
// directory. Run it only when a renderer format change is deliberate,
// and review the diff like any other contract change.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "obs/exporter.h"
#include "obs/profile.h"

namespace {

sama::QueryProfile MakeGoldenProfile() {
  std::vector<sama::TraceSpan> spans = {
      {1, 0, "query", 0.0, 10.0, 0},
      {2, 1, "preprocess", 0.1, 1.0, 0},
      {3, 1, "clustering", 1.2, 5.0, 0},
      {4, 3, "score_chunk", 1.3, 2.0, 0},
      {5, 3, "score_chunk", 1.4, 2.5, 1},
      {6, 1, "search", 6.3, 3.5, 0},
  };
  sama::ProfileSummary summary;
  summary.label = "demo";
  summary.total_millis = 10.2;
  summary.num_query_paths = 3;
  summary.num_candidate_paths = 24;
  summary.num_answers = 10;
  summary.threads_used = 2;
  summary.search_expansions = 78;

  std::vector<sama::QueryProfile::PhaseCounters> phases(2);
  phases[0].phase = "clustering";
  phases[0].counters.cache_hits = 11;
  phases[0].counters.cache_misses = 50;
  phases[0].counters.pages_fetched = 12;
  phases[0].counters.pages_read = 2;
  phases[0].counters.pages_evicted = 1;
  phases[0].counters.bytes_read = 8192;
  phases[0].counters.io_retries = 1;
  phases[1].phase = "search";
  phases[1].counters.search_expansions = 78;

  return sama::QueryProfile::Build(std::move(spans), std::move(summary),
                                   phases);
}

bool WriteFile(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << body;
  return out.good();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <tests/data directory>\n", argv[0]);
    return 2;
  }
  const std::string dir = argv[1];
  sama::QueryProfile profile = MakeGoldenProfile();
  if (!WriteFile(dir + "/obs_explain.golden",
                 sama::RenderExplainAnalyze(profile)) ||
      !WriteFile(dir + "/obs_profile_trace.golden",
                 sama::RenderChromeTrace(profile))) {
    return 1;
  }
  std::printf("wrote %s/obs_explain.golden and %s/obs_profile_trace.golden\n",
              dir.c_str(), dir.c_str());
  return 0;
}

// Contended-read benchmark for the lock-free read paths (DESIGN.md
// §13): dictionary Find, sharded-cache Get and buffer-pool Fetch
// throughput at 1/4/16 threads, hit and miss mixes, plus dictionary
// reads raced against a live-update writer (the PR 7 ApplyUpdate
// path). The scaling claim under test: on a machine with >=8 hardware
// threads the warm hit paths must scale (16-thread throughput >= 3x
// single-thread), because no reader ever takes a lock.
//
// Every scenario is gated on correctness before timing is believed:
// each read must return the exact value its key was published with
// (mismatches land in the summary and fail the run). --json=FILE
// writes the artifact gated by tools/check_bench_regression.py
// --mode=read.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/sharded_cache.h"
#include "core/engine.h"
#include "datasets/govtrack.h"
#include "index/path_index.h"
#include "rdf/dictionary.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"
#include "text/thesaurus.h"

namespace sama {
namespace bench {
namespace {

using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

struct Options {
  size_t ops_per_thread = 200000;  // Reads per thread per scenario.
  size_t dict_terms = 50000;       // Interned population.
  size_t cache_entries = 4096;     // Resident cache population.
  size_t pool_pages = 256;         // Resident page population.
  size_t update_inserts = 300;     // Live-update writer workload.
  uint64_t seed = 42;
  std::string json_path;
};

uint64_t NextRand(uint64_t* state) {
  *state = *state * 6364136223846793005ULL + 1442695040888963407ULL;
  return *state >> 33;
}

Term Gov(const std::string& local) {
  return Term::Iri("http://gov.example.org/" + local);
}

struct ScenarioResult {
  std::string name;
  size_t threads = 0;
  uint64_t ops = 0;
  double millis = 0;
  double ops_per_sec = 0;
  uint64_t mismatches = 0;
};

// Runs `fn(thread_ordinal, &mismatches)` on `threads` threads, each
// doing `ops_per_thread` reads, and times the whole storm.
ScenarioResult RunScenario(
    const std::string& name, size_t threads, size_t ops_per_thread,
    const std::function<void(int, size_t, std::atomic<uint64_t>*)>& fn) {
  ScenarioResult r;
  r.name = name;
  r.threads = threads;
  r.ops = static_cast<uint64_t>(threads) * ops_per_thread;
  std::atomic<uint64_t> mismatches{0};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  Clock::time_point t0 = Clock::now();
  for (size_t t = 0; t < threads; ++t) {
    workers.emplace_back(
        [&, t] { fn(static_cast<int>(t), ops_per_thread, &mismatches); });
  }
  for (auto& w : workers) w.join();
  r.millis = MillisSince(t0);
  r.ops_per_sec = r.millis > 0 ? r.ops / (r.millis / 1000.0) : 0;
  r.mismatches = mismatches.load();
  std::fprintf(stderr, "  %-18s %2zu thread(s): %10.0f ops/s%s\n",
               name.c_str(), threads, r.ops_per_sec,
               r.mismatches ? "  MISMATCHES" : "");
  return r;
}

void WriteJson(const std::string& path, const Options& options,
               const std::vector<ScenarioResult>& results,
               double hit_scaling, uint64_t total_mismatches) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  auto one_thread_ops = [&](const char* name) {
    for (const ScenarioResult& r : results) {
      if (r.name == name && r.threads == 1) return r.ops_per_sec;
    }
    return 0.0;
  };
  std::fprintf(f,
               "{\n  \"bench\": \"readers\",\n  \"seed\": %llu,\n"
               "  \"summary\": {\n"
               "    \"hardware_threads\": %u,\n"
               "    \"mismatches\": %llu,\n"
               "    \"hit_scaling\": %.4f,\n"
               "    \"dict_hit_1t_ops\": %.2f,\n"
               "    \"dict_miss_1t_ops\": %.2f,\n"
               "    \"cache_hit_1t_ops\": %.2f,\n"
               "    \"cache_miss_1t_ops\": %.2f,\n"
               "    \"pool_hit_1t_ops\": %.2f,\n"
               "    \"dict_hit_with_updates_ops\": %.2f\n  },\n"
               "  \"queries\": [\n",
               static_cast<unsigned long long>(options.seed),
               std::thread::hardware_concurrency(),
               static_cast<unsigned long long>(total_mismatches),
               FiniteOr(hit_scaling), FiniteOr(one_thread_ops("dict_hit")),
               FiniteOr(one_thread_ops("dict_miss")),
               FiniteOr(one_thread_ops("cache_hit")),
               FiniteOr(one_thread_ops("cache_miss")),
               FiniteOr(one_thread_ops("pool_hit")),
               FiniteOr([&] {
                 for (const ScenarioResult& r : results) {
                   if (r.name == "dict_hit_with_updates") return r.ops_per_sec;
                 }
                 return 0.0;
               }()));
  for (size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& r = results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"threads\": %zu, \"ops\": %llu, "
                 "\"millis\": %.3f, \"ops_per_sec\": %.2f, "
                 "\"mismatches\": %llu}%s\n",
                 r.name.c_str(), r.threads,
                 static_cast<unsigned long long>(r.ops), FiniteOr(r.millis),
                 FiniteOr(r.ops_per_sec),
                 static_cast<unsigned long long>(r.mismatches),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

int Run(const Options& options) {
  const std::vector<size_t> kThreadCounts = {1, 4, 16};
  std::vector<ScenarioResult> results;

  // --- Dictionary: interned population, hit and miss probes. ---
  std::fprintf(stderr, "dictionary: interning %zu terms...\n",
               options.dict_terms);
  TermDictionary dict;
  for (size_t i = 0; i < options.dict_terms; ++i) {
    dict.Intern(Gov("t" + std::to_string(i)));
  }
  // Pre-built Term keys so the benchmark times Find, not string
  // concatenation. A shared read-only pool of 4096 probes per mix.
  std::vector<Term> hit_terms;
  std::vector<Term> miss_terms;
  std::vector<TermId> hit_ids;
  uint64_t state = options.seed;
  for (size_t i = 0; i < 4096; ++i) {
    size_t pick = NextRand(&state) % options.dict_terms;
    hit_terms.push_back(Gov("t" + std::to_string(pick)));
    hit_ids.push_back(static_cast<TermId>(pick));
    miss_terms.push_back(Gov("absent-" + std::to_string(NextRand(&state))));
  }
  for (size_t threads : kThreadCounts) {
    results.push_back(RunScenario(
        "dict_hit", threads, options.ops_per_thread,
        [&](int t, size_t ops, std::atomic<uint64_t>* bad) {
          uint64_t rng = options.seed + static_cast<uint64_t>(t) * 7919;
          uint64_t local_bad = 0;
          for (size_t i = 0; i < ops; ++i) {
            size_t k = NextRand(&rng) & 4095;
            if (dict.Find(hit_terms[k]) != hit_ids[k]) ++local_bad;
          }
          if (local_bad) bad->fetch_add(local_bad);
        }));
  }
  for (size_t threads : kThreadCounts) {
    results.push_back(RunScenario(
        "dict_miss", threads, options.ops_per_thread,
        [&](int t, size_t ops, std::atomic<uint64_t>* bad) {
          uint64_t rng = options.seed + static_cast<uint64_t>(t) * 104729;
          uint64_t local_bad = 0;
          for (size_t i = 0; i < ops; ++i) {
            size_t k = NextRand(&rng) & 4095;
            if (dict.Find(miss_terms[k]) != kInvalidTermId) ++local_bad;
          }
          if (local_bad) bad->fetch_add(local_bad);
        }));
  }

  // --- Sharded cache: resident population, hit and miss probes. ---
  std::fprintf(stderr, "cache: %zu resident entries...\n",
               options.cache_entries);
  ShardedLruCache<uint64_t, uint64_t> cache(options.cache_entries, 8);
  for (uint64_t k = 0; k < options.cache_entries; ++k) {
    cache.Put(k, k * 2654435761ULL);
  }
  // Shard hashing skews the prefill, so some of the first
  // `cache_entries` keys were evicted by later ones. No Puts run during
  // the storm, so residency is frozen: probe only keys still resident.
  std::vector<uint64_t> resident;
  {
    uint64_t value = 0;
    for (uint64_t k = 0; k < options.cache_entries; ++k) {
      if (cache.Get(k, &value)) resident.push_back(k);
    }
  }
  if (resident.size() < options.cache_entries / 2) {
    std::fprintf(stderr, "cache prefill retained too little (%zu/%zu)\n",
                 resident.size(), options.cache_entries);
    return 1;
  }
  for (size_t threads : kThreadCounts) {
    results.push_back(RunScenario(
        "cache_hit", threads, options.ops_per_thread,
        [&](int t, size_t ops, std::atomic<uint64_t>* bad) {
          uint64_t rng = options.seed + static_cast<uint64_t>(t) * 7919;
          uint64_t local_bad = 0;
          uint64_t value = 0;
          for (size_t i = 0; i < ops; ++i) {
            uint64_t k = resident[NextRand(&rng) % resident.size()];
            if (!cache.Get(k, &value) || value != k * 2654435761ULL) {
              ++local_bad;
            }
          }
          if (local_bad) bad->fetch_add(local_bad);
        }));
  }
  for (size_t threads : kThreadCounts) {
    results.push_back(RunScenario(
        "cache_miss", threads, options.ops_per_thread,
        [&](int t, size_t ops, std::atomic<uint64_t>* bad) {
          uint64_t rng = options.seed + static_cast<uint64_t>(t) * 104729;
          uint64_t local_bad = 0;
          uint64_t value = 0;
          for (size_t i = 0; i < ops; ++i) {
            uint64_t k =
                options.cache_entries + NextRand(&rng);  // Never resident.
            if (cache.Get(k, &value)) ++local_bad;
          }
          if (local_bad) bad->fetch_add(local_bad);
        }));
  }

  // --- Buffer pool: all pages resident (warm hit path). ---
  std::fprintf(stderr, "pool: %zu resident pages...\n", options.pool_pages);
  std::string pool_dir = (std::filesystem::temp_directory_path() /
                          "sama_bench_readers")
                             .string();
  std::filesystem::remove_all(pool_dir);
  std::filesystem::create_directories(pool_dir);
  {
    PageFile file;
    Status opened = file.Open(pool_dir + "/pages.dat", true);
    if (!opened.ok()) {
      std::fprintf(stderr, "page file open failed: %s\n",
                   opened.ToString().c_str());
      return 1;
    }
    for (size_t i = 0; i < options.pool_pages; ++i) {
      auto page = file.AllocatePage();
      if (!page.ok()) return 1;
      uint8_t buf[kPageDataSize];
      std::memset(buf, static_cast<int>(i & 0xff), sizeof(buf));
      if (!file.WritePage(static_cast<PageId>(i), buf).ok()) return 1;
    }
    BufferPool pool(&file, options.pool_pages);
    for (size_t i = 0; i < options.pool_pages; ++i) {
      auto guard = pool.Fetch(static_cast<PageId>(i));  // Warm every frame.
      if (!guard.ok()) return 1;
    }
    for (size_t threads : kThreadCounts) {
      results.push_back(RunScenario(
          "pool_hit", threads, options.ops_per_thread / 4,
          [&](int t, size_t ops, std::atomic<uint64_t>* bad) {
            uint64_t rng = options.seed + static_cast<uint64_t>(t) * 7919;
            uint64_t local_bad = 0;
            for (size_t i = 0; i < ops; ++i) {
              PageId page =
                  static_cast<PageId>(NextRand(&rng) % options.pool_pages);
              auto guard = pool.Fetch(page);
              if (!guard.ok() ||
                  guard->data()[0] != static_cast<uint8_t>(page & 0xff)) {
                ++local_bad;
              }
            }
            if (local_bad) bad->fetch_add(local_bad);
          }));
    }
  }
  std::filesystem::remove_all(pool_dir);

  // --- Dictionary reads raced against the live-update writer. ---
  std::fprintf(stderr, "updates: %zu inserts under 4 readers...\n",
               options.update_inserts);
  {
    std::string dir = (std::filesystem::temp_directory_path() /
                       "sama_bench_readers_upd")
                          .string();
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    DataGraph graph = DataGraph::FromTriples(GovTrackFigure1Triples());
    PathIndexOptions po;
    po.dir = dir;
    PathIndex index;
    Status built = index.Build(graph, po);
    if (!built.ok()) {
      std::fprintf(stderr, "index build failed: %s\n",
                   built.ToString().c_str());
      return 1;
    }
    Thesaurus thesaurus = Thesaurus::BuiltinEnglish();
    SamaEngine engine(&graph, &index, &thesaurus);
    UpdateOptions uo;
    uo.checkpoint_every = 0;
    Status enabled = engine.EnableUpdates(&graph, &index, uo);
    if (!enabled.ok()) {
      std::fprintf(stderr, "EnableUpdates failed: %s\n",
                   enabled.ToString().c_str());
      return 1;
    }
    const TermDictionary& live_dict = graph.dict();
    std::atomic<size_t> published{0};
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> reader_ops{0};
    std::atomic<uint64_t> bad{0};
    const size_t kUpdateReaders = 4;
    std::vector<std::thread> readers;
    Clock::time_point t0 = Clock::now();
    for (size_t r = 0; r < kUpdateReaders; ++r) {
      readers.emplace_back([&, r] {
        uint64_t rng = options.seed + r * 7919;
        uint64_t ops = 0;
        uint64_t local_bad = 0;
        while (!stop.load(std::memory_order_acquire)) {
          size_t n = published.load(std::memory_order_acquire);
          if (n == 0) continue;
          Term t = Gov("Live" + std::to_string(NextRand(&rng) % n));
          if (live_dict.Find(t) == kInvalidTermId) ++local_bad;
          ++ops;
        }
        reader_ops.fetch_add(ops);
        if (local_bad) bad.fetch_add(local_bad);
      });
    }
    for (size_t i = 0; i < options.update_inserts; ++i) {
      Triple triple{Gov("Live" + std::to_string(i)), Gov("gender"),
                    Term::Literal(i % 2 == 0 ? "Male" : "Female")};
      auto lsn = engine.InsertTriple(triple);
      if (!lsn.ok()) {
        std::fprintf(stderr, "update failed: %s\n",
                     lsn.status().ToString().c_str());
        return 1;
      }
      published.store(i + 1, std::memory_order_release);
    }
    stop.store(true, std::memory_order_release);
    for (auto& t : readers) t.join();
    ScenarioResult r;
    r.name = "dict_hit_with_updates";
    r.threads = kUpdateReaders;
    r.ops = reader_ops.load();
    r.millis = MillisSince(t0);
    r.ops_per_sec = r.millis > 0 ? r.ops / (r.millis / 1000.0) : 0;
    r.mismatches = bad.load();
    std::fprintf(stderr, "  %-18s %2zu thread(s): %10.0f ops/s%s\n",
                 r.name.c_str(), r.threads, r.ops_per_sec,
                 r.mismatches ? "  MISMATCHES" : "");
    results.push_back(r);
    std::filesystem::remove_all(dir);
  }

  // --- Summary: warm-hit scaling (16t vs 1t, dict + cache combined). ---
  auto ops_at = [&](const char* name, size_t threads) {
    for (const ScenarioResult& r : results) {
      if (r.name == name && r.threads == threads) return r.ops_per_sec;
    }
    return 0.0;
  };
  double one = ops_at("dict_hit", 1) + ops_at("cache_hit", 1);
  double sixteen = ops_at("dict_hit", 16) + ops_at("cache_hit", 16);
  double hit_scaling = one > 0 ? sixteen / one : 0;
  uint64_t total_mismatches = 0;
  for (const ScenarioResult& r : results) total_mismatches += r.mismatches;

  std::printf("hardware_threads=%u\n", std::thread::hardware_concurrency());
  std::printf("hit_scaling(16t/1t)=%.2f  mismatches=%llu\n", hit_scaling,
              static_cast<unsigned long long>(total_mismatches));
  for (const ScenarioResult& r : results) {
    std::printf("%s threads=%zu ops/s=%.0f\n", r.name.c_str(), r.threads,
                r.ops_per_sec);
  }

  if (!options.json_path.empty()) {
    WriteJson(options.json_path, options, results, hit_scaling,
              total_mismatches);
    std::printf("wrote %s\n", options.json_path.c_str());
  }
  return total_mismatches == 0 ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace sama

int main(int argc, char** argv) {
  sama::bench::Options options;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      size_t n = std::strlen(prefix);
      return std::strncmp(arg, prefix, n) == 0 ? arg + n : nullptr;
    };
    if (const char* v = value("--ops-per-thread=")) {
      options.ops_per_thread = std::strtoul(v, nullptr, 10);
    } else if (const char* v = value("--dict-terms=")) {
      options.dict_terms = std::strtoul(v, nullptr, 10);
    } else if (const char* v = value("--cache-entries=")) {
      options.cache_entries = std::strtoul(v, nullptr, 10);
    } else if (const char* v = value("--pool-pages=")) {
      options.pool_pages = std::strtoul(v, nullptr, 10);
    } else if (const char* v = value("--update-inserts=")) {
      options.update_inserts = std::strtoul(v, nullptr, 10);
    } else if (const char* v = value("--seed=")) {
      options.seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--json=")) {
      options.json_path = v;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--ops-per-thread=N] [--dict-terms=N] "
                   "[--cache-entries=N] [--pool-pages=N] "
                   "[--update-inserts=N] [--seed=N] [--json=FILE]\n",
                   argv[0]);
      return 2;
    }
  }
  if (options.ops_per_thread == 0 || options.dict_terms == 0 ||
      options.cache_entries == 0 || options.pool_pages == 0) {
    std::fprintf(stderr, "invalid sizes\n");
    return 2;
  }
  return sama::bench::Run(options);
}

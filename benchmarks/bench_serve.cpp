// Closed- and open-loop load harness for the binary query server
// (DESIGN.md "Serving"). An in-process BinaryQueryServer is driven over
// real sockets by C client connections issuing a Zipfian query mix, and
// every response payload is compared byte-for-byte against a direct
// SamaEngine::Execute of the same query — the serving determinism
// contract, enforced under load rather than in a unit test.
//
//   closed loop (default): each client sends the next request the
//     moment the previous response arrives. Reported throughput is the
//     server's sustainable QPS at that concurrency.
//   open loop: requests are launched on a fixed schedule (--rate=QPS
//     split across clients) regardless of response progress, and
//     latency is measured from the *scheduled* send time, so queueing
//     delay under overload is charged to the server, not silently
//     absorbed (no coordinated omission).
//
// Latency percentiles (P50/P95/P99) come from the full per-request
// sample set. --json=FILE writes the artifact gated by
// tools/check_bench_regression.py --mode=serve.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "common/zipf.h"
#include "core/engine.h"
#include "datasets/berlin.h"
#include "datasets/govtrack.h"
#include "datasets/queries.h"
#include "datasets/scale_free.h"
#include "obs/metrics.h"
#include "query/sparql.h"
#include "server/binary_server.h"
#include "server/client.h"

namespace sama {
namespace bench {
namespace {

using Clock = std::chrono::steady_clock;

double MillisBetween(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

struct Options {
  std::string mode = "closed";   // closed | open
  std::string dataset = "lubm";  // demo | lubm | berlin | scale-free
  size_t clients = 4;
  size_t workers = 1;
  double duration_s = 5.0;
  size_t requests = 0;   // 0 = duration-bounded.
  double rate = 2000.0;  // Open loop: total scheduled QPS.
  uint32_t k = 5;
  double zipf_s = 1.1;
  // Drops workload queries whose |Q| group exceeds this (the Figure-9
  // [5,10] and [11,17] groups run for seconds per query — a serving
  // mix is dominated by the cheap ones; 0 keeps everything).
  int max_group = 4;
  uint64_t seed = 42;
  // Comma-separated query names restricting the mix. Selection is a
  // set: listing the same names in a different order runs the exact
  // same workload (weights follow canonical name rank, not list order).
  std::string mix;
  std::string json_path;
};

// One distinct query in the mix, with the byte-exact response payload a
// conforming server must produce for it.
struct MixEntry {
  std::string name;
  QueryRequest request;
  double weight = 0;
  std::string expected_payload;
};

// A served dataset: the engine plus the SPARQL workload over it.
struct ServeEnv {
  std::unique_ptr<DataGraph> graph;
  std::unique_ptr<PathIndex> index;
  Thesaurus thesaurus;
  std::unique_ptr<SamaEngine> engine;
  std::vector<MixEntry> mix;
  ZipfSampler sampler;
};

void AddQuery(ServeEnv* env, const std::string& name,
              const std::string& sparql) {
  MixEntry entry;
  entry.name = name;
  entry.request.sparql = sparql;
  env->mix.push_back(std::move(entry));
}

void BuildEngine(ServeEnv* env, std::vector<Triple> triples) {
  env->graph = std::make_unique<DataGraph>(
      DataGraph::FromTriples(std::move(triples)));
  env->index = std::make_unique<PathIndex>();
  PathIndexOptions options;  // In-memory.
  Status s = env->index->Build(*env->graph, options);
  if (!s.ok()) {
    std::fprintf(stderr, "index build failed: %s\n", s.ToString().c_str());
    std::exit(1);
  }
  env->thesaurus = Thesaurus::BuiltinEnglish();
  EngineOptions engine_options;
  engine_options.num_threads = 1;
  env->engine = std::make_unique<SamaEngine>(
      env->graph.get(), env->index.get(), &env->thesaurus, engine_options);
}

void AddBenchmarkQueries(ServeEnv* env,
                         const std::vector<BenchmarkQuery>& queries,
                         int max_group) {
  for (const BenchmarkQuery& q : queries) {
    if (max_group > 0 && q.group_high > max_group) continue;
    AddQuery(env, q.name, q.sparql);
  }
}

// Restricts env->mix to the comma-separated query names in `spec`
// (empty keeps everything). Unknown names are a hard error — a typo
// silently running the full mix would invalidate the measurement.
void ApplyMixFilter(ServeEnv* env, const std::string& spec) {
  if (spec.empty()) return;
  std::vector<std::string> want;
  for (size_t pos = 0; pos <= spec.size();) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    if (comma > pos) want.push_back(spec.substr(pos, comma - pos));
    pos = comma + 1;
  }
  std::vector<MixEntry> kept;
  for (const std::string& name : want) {
    bool known = false;
    for (const MixEntry& entry : env->mix) {
      if (entry.name == name) {
        known = true;
        break;
      }
    }
    if (!known) {
      std::fprintf(stderr, "--mix names unknown query '%s'\n", name.c_str());
      std::exit(2);
    }
  }
  // Keep catalogue order regardless of the order names were listed in;
  // weights are order-independent anyway, but this keeps reports stable.
  for (MixEntry& entry : env->mix) {
    if (std::find(want.begin(), want.end(), entry.name) != want.end()) {
      kept.push_back(std::move(entry));
    }
  }
  env->mix = std::move(kept);
}

ServeEnv MakeEnv(const Options& options) {
  ServeEnv env;
  if (options.dataset == "demo") {
    BuildEngine(&env, GovTrackFigure1Triples());
    AddQuery(&env, "D1",
             "PREFIX gov: <http://gov.example.org/>\n"
             "SELECT ?b WHERE { ?b gov:subject \"Health Care\" }");
    AddQuery(&env, "D2",
             "PREFIX gov: <http://gov.example.org/>\n"
             "SELECT ?a ?b WHERE { ?a gov:aTo ?b }");
    AddQuery(&env, "D3",
             "PREFIX gov: <http://gov.example.org/>\n"
             "SELECT ?v1 ?v2 WHERE { gov:CarlaBunes gov:sponsor ?v1 . "
             "?v1 gov:aTo ?v2 }");
    AddQuery(&env, "D4",
             "PREFIX gov: <http://gov.example.org/>\n"
             "SELECT ?p ?a WHERE { ?p gov:sponsor ?a . "
             "?a gov:aTo gov:B0045 }");
  } else if (options.dataset == "lubm") {
    LubmConfig config;
    config.universities = 1;
    BuildEngine(&env, GenerateLubm(config));
    AddBenchmarkQueries(&env, MakeLubmQueries(), options.max_group);
  } else if (options.dataset == "berlin") {
    BuildEngine(&env, GenerateBerlin(BerlinConfig{}));
    AddBenchmarkQueries(&env, MakeBerlinQueries(), options.max_group);
  } else if (options.dataset == "scale-free") {
    BuildEngine(&env, GenerateScaleFree(PBlogProfile(0.02 * EnvScale())));
    AddQuery(&env, "S1",
             "PREFIX rel: <http://pblog.example.org/rel#>\n"
             "SELECT ?a WHERE { ?a rel:topic \"politics\" }");
    AddQuery(&env, "S2",
             "PREFIX rel: <http://pblog.example.org/rel#>\n"
             "SELECT ?a WHERE { ?a rel:linksTo "
             "<http://pblog.example.org/Blog0> }");
    AddQuery(&env, "S3",
             "PREFIX rel: <http://pblog.example.org/rel#>\n"
             "SELECT ?a ?b WHERE { ?a rel:linksTo ?b . "
             "?b rel:topic \"tech\" }");
  } else {
    std::fprintf(stderr, "unknown dataset '%s'\n", options.dataset.c_str());
    std::exit(1);
  }
  ApplyMixFilter(&env, options.mix);
  if (env.mix.empty()) {
    std::fprintf(stderr, "query mix is empty (max-group too low?)\n");
    std::exit(1);
  }
  return env;
}

// Zipfian popularity over the mix: with s≈1 the head query dominates
// the way a real serving workload's hot queries do. Weights follow the
// CANONICAL rank of a query (names sorted lexicographically), so
// reordering --mix or the catalogue declaration cannot silently
// reshape the distribution, and draws go through ZipfSampler's clamped
// cumulative walk so floating-point round-off at the top of the
// distribution cannot index off the end.
void AssignZipfWeights(ServeEnv* env, double s) {
  std::vector<std::string> names;
  names.reserve(env->mix.size());
  for (const MixEntry& entry : env->mix) names.push_back(entry.name);
  std::vector<double> weights = ZipfWeights(names, s);
  for (size_t i = 0; i < env->mix.size(); ++i) {
    env->mix[i].weight = weights[i];
  }
  env->sampler = ZipfSampler(weights);
}

// The byte-exact payload a conforming server must return: the same
// shared wire encoder over a direct engine run. Also warms the engine
// caches so the timed phase measures steady state.
void PrecomputeExpected(ServeEnv* env, uint32_t k) {
  for (MixEntry& entry : env->mix) {
    auto parsed = ParseSparql(entry.request.sparql);
    if (!parsed.ok()) {
      std::fprintf(stderr, "query %s does not parse: %s\n",
                   entry.name.c_str(),
                   parsed.status().ToString().c_str());
      std::exit(1);
    }
    entry.request.k = k;
    QueryStats stats;
    auto answers = env->engine->ExecuteSparql(*parsed, k, &stats);
    if (!answers.ok()) {
      std::fprintf(stderr, "query %s failed directly: %s\n",
                   entry.name.c_str(),
                   answers.status().ToString().c_str());
      std::exit(1);
    }
    entry.expected_payload = EncodeQueryResult(MakeQueryResultWire(
        *answers, parsed->select_vars, stats.search_truncated));
  }
}

// Per-client tallies, merged after the run.
struct ClientResult {
  std::vector<double> latencies_ms;
  std::vector<size_t> per_query_requests;
  size_t ok = 0;
  size_t shed = 0;
  size_t mismatches = 0;
  size_t protocol_errors = 0;
};

// Classifies one response frame against the expectation for query
// `qi`. Returns false on a protocol-level error (the connection is no
// longer trustworthy).
bool RecordResponse(const ServeEnv& env, const Frame& frame,
                    uint64_t want_id, size_t qi, ClientResult* result) {
  if (frame.request_id != want_id) {
    ++result->protocol_errors;
    return false;
  }
  if (frame.type == FrameType::kError) {
    ErrorBody error;
    if (DecodeErrorBody(frame.payload, &error) &&
        error.code == WireStatus::kShed) {
      ++result->shed;
      return true;
    }
    ++result->protocol_errors;
    return false;
  }
  if (frame.type != FrameType::kResult) {
    ++result->protocol_errors;
    return false;
  }
  if (frame.payload != env.mix[qi].expected_payload) {
    ++result->mismatches;
    return true;  // Wrong answer, but the protocol itself is intact.
  }
  ++result->ok;
  return true;
}

// ---- Closed loop: send, block for the response, repeat.
ClientResult RunClosedClient(const ServeEnv& env, const Options& options,
                             const std::string& host, uint16_t port,
                             size_t client_index, Clock::time_point end,
                             std::atomic<size_t>* budget) {
  ClientResult result;
  result.per_query_requests.assign(env.mix.size(), 0);
  Random rng(options.seed + 1000003 * (client_index + 1));
  BinaryClient client;
  Status s = client.Connect(host, port);
  if (!s.ok()) {
    ++result.protocol_errors;
    return result;
  }
  uint64_t id = client_index << 32;
  while (Clock::now() < end) {
    if (options.requests > 0 &&
        budget->fetch_add(1, std::memory_order_relaxed) >=
            options.requests) {
      break;
    }
    size_t qi = env.sampler.Sample(&rng);
    ++result.per_query_requests[qi];
    ++id;
    Clock::time_point t0 = Clock::now();
    if (!client.SendQuery(env.mix[qi].request, id).ok()) {
      ++result.protocol_errors;
      break;
    }
    auto frame = client.ReadFrame();
    if (!frame.ok()) {
      ++result.protocol_errors;
      break;
    }
    result.latencies_ms.push_back(MillisBetween(t0, Clock::now()));
    if (!RecordResponse(env, *frame, id, qi, &result)) break;
  }
  return result;
}

// ---- Open loop: a sender thread launches requests on the fixed
// schedule while a receiver thread drains responses from the same
// socket (full-duplex: one writer, one reader). Latency runs from the
// *scheduled* send time.
ClientResult RunOpenClient(const ServeEnv& env, const Options& options,
                           const std::string& host, uint16_t port,
                           size_t client_index, Clock::time_point start,
                           Clock::time_point end) {
  ClientResult result;
  result.per_query_requests.assign(env.mix.size(), 0);
  Random rng(options.seed + 1000003 * (client_index + 1));
  BinaryClient client;
  Status s = client.Connect(host, port);
  if (!s.ok()) {
    ++result.protocol_errors;
    return result;
  }

  struct Pending {
    uint64_t id;
    size_t qi;
    Clock::time_point scheduled;
  };
  std::mutex mu;
  std::deque<Pending> pending;
  std::atomic<bool> sender_done{false};
  std::atomic<bool> receiver_dead{false};

  const double per_client_rate = options.rate / options.clients;
  const auto period = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(1.0 / per_client_rate));

  std::thread receiver([&] {
    while (true) {
      Pending head;
      {
        std::lock_guard<std::mutex> lock(mu);
        if (pending.empty()) {
          if (sender_done.load(std::memory_order_acquire)) return;
          head.id = 0;
        } else {
          head = pending.front();
          pending.pop_front();
        }
      }
      if (head.id == 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        continue;
      }
      auto frame = client.ReadFrame();
      if (!frame.ok()) {
        ++result.protocol_errors;
        receiver_dead.store(true, std::memory_order_release);
        return;
      }
      result.latencies_ms.push_back(
          MillisBetween(head.scheduled, Clock::now()));
      if (!RecordResponse(env, *frame, head.id, head.qi, &result)) {
        receiver_dead.store(true, std::memory_order_release);
        return;
      }
    }
  });

  uint64_t id = client_index << 32;
  size_t send_failures = 0;
  Clock::time_point next = start;
  while (next < end && !receiver_dead.load(std::memory_order_acquire)) {
    std::this_thread::sleep_until(next);
    size_t qi = env.sampler.Sample(&rng);
    ++result.per_query_requests[qi];
    ++id;
    {
      std::lock_guard<std::mutex> lock(mu);
      pending.push_back({id, qi, next});
    }
    if (!client.SendQuery(env.mix[qi].request, id).ok()) {
      // Retract the entry unless the receiver raced us to it.
      std::lock_guard<std::mutex> lock(mu);
      if (!pending.empty() && pending.back().id == id) pending.pop_back();
      ++send_failures;
      break;
    }
    next += period;
  }
  sender_done.store(true, std::memory_order_release);
  receiver.join();
  result.protocol_errors += send_failures;
  return result;
}

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  size_t rank = static_cast<size_t>(p * (sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

struct Summary {
  double elapsed_s = 0;
  size_t requests = 0;
  size_t ok = 0;
  size_t shed = 0;
  size_t mismatches = 0;
  size_t protocol_errors = 0;
  double qps = 0;
  double mean_ms = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
};

void WriteJson(const std::string& path, const Options& options,
               const ServeEnv& env, const Summary& summary,
               const std::vector<size_t>& per_query_requests) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f,
               "{\n  \"bench\": \"serve\",\n"
               "  \"mode\": \"%s\",\n  \"dataset\": \"%s\",\n"
               "  \"clients\": %zu,\n  \"workers\": %zu,\n"
               "  \"summary\": {\n"
               "    \"elapsed_s\": %.3f,\n    \"requests\": %zu,\n"
               "    \"ok\": %zu,\n    \"shed\": %zu,\n"
               "    \"mismatches\": %zu,\n    \"protocol_errors\": %zu,\n"
               "    \"qps\": %.2f,\n    \"mean_ms\": %.4f,\n"
               "    \"p50_ms\": %.4f,\n    \"p95_ms\": %.4f,\n"
               "    \"p99_ms\": %.4f\n  },\n",
               options.mode.c_str(), options.dataset.c_str(),
               options.clients, options.workers, summary.elapsed_s,
               summary.requests, summary.ok, summary.shed,
               summary.mismatches, summary.protocol_errors,
               FiniteOr(summary.qps), FiniteOr(summary.mean_ms),
               FiniteOr(summary.p50_ms), FiniteOr(summary.p95_ms),
               FiniteOr(summary.p99_ms));
  std::fprintf(f, "  \"queries\": [\n");
  for (size_t i = 0; i < env.mix.size(); ++i) {
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"weight\": %.4f, "
                 "\"requests\": %zu}%s\n",
                 env.mix[i].name.c_str(), FiniteOr(env.mix[i].weight),
                 per_query_requests[i],
                 i + 1 < env.mix.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

int Run(const Options& options) {
  std::fprintf(stderr, "building %s dataset...\n", options.dataset.c_str());
  ServeEnv env = MakeEnv(options);
  AssignZipfWeights(&env, options.zipf_s);
  PrecomputeExpected(&env, options.k);

  MetricsRegistry registry;
  BinaryQueryServer::Options server_options;
  server_options.num_workers = options.workers;
  server_options.max_connections = options.clients + 8;
  server_options.max_queue =
      std::max<size_t>(128, 4 * options.clients);
  server_options.registry = &registry;
  BinaryQueryServer server(env.engine.get(), server_options);
  Status s = server.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 s.ToString().c_str());
    return 1;
  }

  // One warm round trip per distinct query through the real socket
  // path before the clock starts.
  {
    BinaryClient warm;
    if (!warm.Connect(server.host(), server.port()).ok()) {
      std::fprintf(stderr, "warmup connect failed\n");
      return 1;
    }
    for (size_t i = 0; i < env.mix.size(); ++i) {
      auto r = warm.Query(env.mix[i].request, i + 1);
      if (!r.ok() || r->status != WireStatus::kOk) {
        std::fprintf(stderr, "warmup query %s failed\n",
                     env.mix[i].name.c_str());
        return 1;
      }
    }
  }

  std::fprintf(stderr, "running %s loop: clients=%zu workers=%zu "
               "duration=%.1fs...\n",
               options.mode.c_str(), options.clients, options.workers,
               options.duration_s);
  std::atomic<size_t> budget{0};
  std::vector<ClientResult> results(options.clients);
  Clock::time_point start = Clock::now();
  Clock::time_point end =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(options.duration_s));
  {
    std::vector<std::thread> threads;
    for (size_t c = 0; c < options.clients; ++c) {
      threads.emplace_back([&, c] {
        results[c] =
            options.mode == "open"
                ? RunOpenClient(env, options, server.host(),
                                server.port(), c, start, end)
                : RunClosedClient(env, options, server.host(),
                                  server.port(), c, end, &budget);
      });
    }
    for (std::thread& t : threads) t.join();
  }
  double elapsed_s =
      std::chrono::duration<double>(Clock::now() - start).count();
  server.Stop();

  Summary summary;
  summary.elapsed_s = elapsed_s;
  std::vector<double> latencies;
  std::vector<size_t> per_query_requests(env.mix.size(), 0);
  for (const ClientResult& r : results) {
    latencies.insert(latencies.end(), r.latencies_ms.begin(),
                     r.latencies_ms.end());
    summary.ok += r.ok;
    summary.shed += r.shed;
    summary.mismatches += r.mismatches;
    summary.protocol_errors += r.protocol_errors;
    for (size_t i = 0; i < env.mix.size(); ++i) {
      per_query_requests[i] += r.per_query_requests[i];
    }
  }
  summary.requests =
      summary.ok + summary.shed + summary.mismatches;
  std::sort(latencies.begin(), latencies.end());
  double total_ms = 0;
  for (double v : latencies) total_ms += v;
  summary.mean_ms =
      latencies.empty() ? 0 : total_ms / latencies.size();
  summary.p50_ms = Percentile(latencies, 0.50);
  summary.p95_ms = Percentile(latencies, 0.95);
  summary.p99_ms = Percentile(latencies, 0.99);
  summary.qps = elapsed_s > 0 ? summary.ok / elapsed_s : 0;

  std::printf("mode=%s dataset=%s clients=%zu workers=%zu\n",
              options.mode.c_str(), options.dataset.c_str(),
              options.clients, options.workers);
  std::printf("requests=%zu ok=%zu shed=%zu mismatches=%zu "
              "protocol_errors=%zu\n",
              summary.requests, summary.ok, summary.shed,
              summary.mismatches, summary.protocol_errors);
  std::printf("qps=%.1f mean=%.3fms p50=%.3fms p95=%.3fms p99=%.3fms\n",
              summary.qps, summary.mean_ms, summary.p50_ms,
              summary.p95_ms, summary.p99_ms);
  for (size_t i = 0; i < env.mix.size(); ++i) {
    std::printf("  %-4s weight=%.3f requests=%zu\n",
                env.mix[i].name.c_str(), env.mix[i].weight,
                per_query_requests[i]);
  }

  if (!options.json_path.empty()) {
    WriteJson(options.json_path, options, env, summary,
              per_query_requests);
    std::printf("wrote %s\n", options.json_path.c_str());
  }
  // Correctness failures are a non-zero exit even without the JSON
  // gate: a load test that returns wrong bytes must not look green.
  return (summary.mismatches == 0 && summary.protocol_errors == 0) ? 0
                                                                   : 1;
}

}  // namespace
}  // namespace bench
}  // namespace sama

int main(int argc, char** argv) {
  sama::bench::Options options;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      size_t n = std::strlen(prefix);
      return std::strncmp(arg, prefix, n) == 0 ? arg + n : nullptr;
    };
    if (const char* v = value("--mode=")) {
      options.mode = v;
    } else if (const char* v = value("--dataset=")) {
      options.dataset = v;
    } else if (const char* v = value("--clients=")) {
      options.clients = std::strtoul(v, nullptr, 10);
    } else if (const char* v = value("--workers=")) {
      options.workers = std::strtoul(v, nullptr, 10);
    } else if (const char* v = value("--duration-s=")) {
      options.duration_s = std::atof(v);
    } else if (const char* v = value("--requests=")) {
      options.requests = std::strtoul(v, nullptr, 10);
    } else if (const char* v = value("--rate=")) {
      options.rate = std::atof(v);
    } else if (const char* v = value("--k=")) {
      options.k = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = value("--zipf-s=")) {
      options.zipf_s = std::atof(v);
    } else if (const char* v = value("--max-group=")) {
      options.max_group = std::atoi(v);
    } else if (const char* v = value("--seed=")) {
      options.seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--mix=")) {
      options.mix = v;
    } else if (const char* v = value("--json=")) {
      options.json_path = v;
    } else {
      std::fprintf(
          stderr,
          "usage: %s [--mode=closed|open] "
          "[--dataset=demo|lubm|berlin|scale-free] [--clients=N] "
          "[--workers=N] [--duration-s=S] [--requests=N] [--rate=QPS] "
          "[--k=N] [--zipf-s=S] [--max-group=N] [--seed=N] "
          "[--mix=NAME,NAME,...] [--json=FILE]\n",
          argv[0]);
      return 2;
    }
  }
  if (options.clients == 0 || options.mode.empty() ||
      (options.mode != "closed" && options.mode != "open")) {
    std::fprintf(stderr, "invalid --mode/--clients\n");
    return 2;
  }
  return sama::bench::Run(options);
}

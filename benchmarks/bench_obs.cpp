// Observability-overhead benchmark (DESIGN.md §15):
//
//   BM_QueryTracedCrossShard — the same LUBM workload runs through one
//     sharded engine twice per iteration, untraced (plain
//     ExecuteSparql) and traced (ExecuteSparqlTraced adopting a
//     TraceStore trace under a request span, the exact shape
//     `sama_cli serve --binary` produces for a propagated trace id).
//     Answers must be byte-identical between the two modes — tracing
//     is observation, never behaviour — and the headline number is
//     summary.traced_over_untraced, the total-time ratio the
//     regression gate holds within 5%. Span liveness is gated too: a
//     traced run that records no spans measured nothing.
//
//   BM_TimeSeriesSample — one TimeSeriesRing::SampleOnce over a
//     registry with a serving-sized instrument census, reported as
//     mean microseconds per snapshot. This is the always-on sampler's
//     steady-state cost (1 Hz in production), so it must stay in the
//     tens-of-microseconds range.
//
// --json=FILE writes the artifact gated by
// tools/check_bench_regression.py --mode=obs.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/engine.h"
#include "datasets/lubm.h"
#include "datasets/queries.h"
#include "graph/data_graph.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "obs/trace_context.h"
#include "query/sparql.h"
#include "shard/sharded_engine.h"
#include "shard/sharded_index.h"
#include "text/thesaurus.h"

namespace sama {
namespace bench {
namespace {

using Clock = std::chrono::steady_clock;

struct Options {
  size_t universities = 2;
  size_t shards = 4;
  size_t k = 5;
  size_t iterations = 3;
  uint64_t max_expansions = 500000;
  size_t samples = 2000;
  std::string json_path;
};

// Same lossless signature bench_shard uses: any score or tie-break
// divergence between the traced and untraced runs changes the bytes.
std::string Signature(const std::vector<Answer>& answers) {
  std::string out;
  char buf[96];
  for (const Answer& a : answers) {
    std::snprintf(buf, sizeof(buf), "%.17g|%.17g|%.17g|", a.score,
                  a.lambda_total, a.psi_total);
    out += buf;
    for (size_t i = 0; i < a.parts.size(); ++i) {
      out += std::to_string(a.query_path_index[i]);
      out += ':';
      out += std::to_string(a.parts[i].id);
      out += ',';
    }
    out += a.consistent ? ";ok\n" : ";inconsistent\n";
  }
  return out;
}

struct QueryRow {
  std::string name;
  double untraced_ms = 0;  // Mean over iterations.
  double traced_ms = 0;
  uint64_t spans = 0;  // Spans recorded per traced execution.
  bool match = true;
};

double MillisSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

int Run(const Options& options) {
  LubmConfig config;
  config.universities = options.universities;
  std::fprintf(stderr, "generating LUBM (%zu universities)...\n",
               options.universities);
  DataGraph graph = DataGraph::FromTriples(GenerateLubm(config));
  Thesaurus thesaurus = Thesaurus::BuiltinEnglish();

  std::string dir = (std::filesystem::temp_directory_path() /
                     "sama_bench_obs_shards")
                        .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  ShardedIndexOptions sopts;
  sopts.num_shards = options.shards;
  std::fprintf(stderr, "building %zu-shard index...\n", options.shards);
  Status built = BuildShardedIndex(graph, dir, sopts);
  if (!built.ok()) {
    std::fprintf(stderr, "sharded build failed: %s\n",
                 built.ToString().c_str());
    return 1;
  }
  ShardedIndex index;
  Status opened = index.Open(&graph, dir, /*strict=*/true);
  if (!opened.ok()) {
    std::fprintf(stderr, "sharded open failed: %s\n",
                 opened.ToString().c_str());
    return 1;
  }
  EngineOptions engine_options;
  engine_options.search.max_expansions = options.max_expansions;
  ShardedEngine engine(&graph, &index, &thesaurus, engine_options);

  std::vector<BenchmarkQuery> queries = MakeLubmQueries();
  std::vector<QueryRow> rows(queries.size());
  TraceStore store(1024);
  uint64_t mismatches = 0;
  uint64_t total_spans = 0;
  double untraced_total_ms = 0, traced_total_ms = 0;

  for (size_t iter = 0; iter <= options.iterations; ++iter) {
    const bool warmup = iter == 0;
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      const BenchmarkQuery& q = queries[qi];
      auto parsed = ParseSparql(q.sparql);
      if (!parsed.ok()) {
        std::fprintf(stderr, "query %s does not parse: %s\n",
                     q.name.c_str(),
                     parsed.status().ToString().c_str());
        return 1;
      }
      rows[qi].name = q.name;

      Clock::time_point t0 = Clock::now();
      auto plain = engine.ExecuteSparql(*parsed, options.k, nullptr);
      double plain_ms = MillisSince(t0);
      if (!plain.ok()) {
        std::fprintf(stderr, "query %s failed: %s\n", q.name.c_str(),
                     plain.status().ToString().c_str());
        return 1;
      }

      // The serving shape: a per-request trace adopted under a request
      // span, exactly what BinaryQueryServer does for a propagated id.
      TraceContext ctx = TraceContext::Generate();
      std::shared_ptr<QueryTrace> trace = store.GetOrCreate(ctx);
      ShardedEngine::RequestObs robs;
      robs.adopt_trace = trace;
      t0 = Clock::now();
      robs.adopt_parent = trace->BeginSpan("request", 0);
      auto traced =
          engine.ExecuteSparqlTraced(*parsed, options.k, robs, nullptr);
      trace->EndSpan(robs.adopt_parent);
      double traced_ms = MillisSince(t0);
      if (!traced.ok()) {
        std::fprintf(stderr, "traced query %s failed: %s\n",
                     q.name.c_str(),
                     traced.status().ToString().c_str());
        return 1;
      }

      if (warmup) continue;
      rows[qi].untraced_ms += plain_ms / options.iterations;
      rows[qi].traced_ms += traced_ms / options.iterations;
      rows[qi].spans = trace->size();
      total_spans += trace->size();
      untraced_total_ms += plain_ms;
      traced_total_ms += traced_ms;
      if (Signature(*plain) != Signature(*traced)) {
        if (rows[qi].match) {
          std::fprintf(stderr, "MISMATCH: %s diverges under tracing\n",
                       q.name.c_str());
        }
        rows[qi].match = false;
        ++mismatches;
      }
    }
  }
  const size_t executions = queries.size() * options.iterations;
  const double traced_over_untraced =
      untraced_total_ms > 0 ? traced_total_ms / untraced_total_ms : 0;
  const double spans_per_query =
      executions > 0 ? static_cast<double>(total_spans) / executions : 0;

  std::printf("obs bench: %zu queries x %zu iteration(s), %llu "
              "mismatch(es)\n",
              queries.size(), options.iterations,
              static_cast<unsigned long long>(mismatches));
  std::printf("  untraced total %.2f ms, traced total %.2f ms, "
              "ratio %.4f, %.1f spans/query\n",
              untraced_total_ms, traced_total_ms, traced_over_untraced,
              spans_per_query);

  // --- BM_TimeSeriesSample: the sampler's per-snapshot cost over a
  // serving-sized census (the binary server + engine + SLO tracker
  // register a few dozen instruments).
  MetricsRegistry registry;
  std::vector<Counter*> counters;
  std::vector<Gauge*> gauges;
  std::vector<Histogram*> histograms;
  for (int i = 0; i < 24; ++i) {
    counters.push_back(registry.GetCounter(
        "bench_counter_" + std::to_string(i) + "_total", "bench"));
  }
  for (int i = 0; i < 8; ++i) {
    gauges.push_back(
        registry.GetGauge("bench_gauge_" + std::to_string(i), "bench"));
  }
  for (int i = 0; i < 8; ++i) {
    histograms.push_back(registry.GetHistogram(
        "bench_millis_" + std::to_string(i), "bench",
        Histogram::LatencyBucketsMillis()));
  }
  TimeSeriesRing::Options ring_options;
  ring_options.registry = &registry;
  TimeSeriesRing ring(ring_options);
  Clock::time_point t0 = Clock::now();
  for (size_t i = 0; i < options.samples; ++i) {
    // Keep the instruments moving so every snapshot copies live state.
    counters[i % counters.size()]->Increment();
    gauges[i % gauges.size()]->Set(static_cast<double>(i));
    histograms[i % histograms.size()]->Observe(1.5);
    ring.SampleOnce();
  }
  const double sample_mean_us =
      options.samples > 0
          ? MillisSince(t0) * 1000.0 / static_cast<double>(options.samples)
          : 0;
  std::printf("  timeseries: %zu snapshots over %zu instruments, "
              "%.2f us/sample\n",
              options.samples,
              counters.size() + gauges.size() + histograms.size(),
              sample_mean_us);

  if (!options.json_path.empty()) {
    std::FILE* f = std::fopen(options.json_path.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", options.json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"obs\",\n");
    std::fprintf(f, "  \"universities\": %zu,\n  \"shards\": %zu,\n",
                 options.universities, options.shards);
    std::fprintf(f, "  \"k\": %zu,\n  \"iterations\": %zu,\n", options.k,
                 options.iterations);
    std::fprintf(
        f,
        "  \"summary\": {\"mismatches\": %llu, "
        "\"untraced_total_ms\": %.4f, \"traced_total_ms\": %.4f, "
        "\"traced_over_untraced\": %.6f, \"spans_per_query\": %.2f, "
        "\"timeseries_samples\": %zu, \"timeseries_instruments\": %zu, "
        "\"sample_mean_us\": %.4f},\n",
        static_cast<unsigned long long>(mismatches),
        FiniteOr(untraced_total_ms), FiniteOr(traced_total_ms),
        FiniteOr(traced_over_untraced), FiniteOr(spans_per_query),
        options.samples,
        counters.size() + gauges.size() + histograms.size(),
        FiniteOr(sample_mean_us));
    std::fprintf(f, "  \"queries\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      const QueryRow& row = rows[i];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"untraced_ms\": %.4f, "
                   "\"traced_ms\": %.4f, \"spans\": %llu, "
                   "\"match\": %s}%s\n",
                   row.name.c_str(), FiniteOr(row.untraced_ms),
                   FiniteOr(row.traced_ms),
                   static_cast<unsigned long long>(row.spans),
                   row.match ? "true" : "false",
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", options.json_path.c_str());
  }
  return mismatches == 0 && total_spans > 0 ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace sama

int main(int argc, char** argv) {
  sama::bench::Options options;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      size_t n = std::strlen(prefix);
      return std::strncmp(arg, prefix, n) == 0 ? arg + n : nullptr;
    };
    if (const char* v = value("--universities=")) {
      options.universities = std::strtoul(v, nullptr, 10);
    } else if (const char* v = value("--shards=")) {
      options.shards = std::strtoul(v, nullptr, 10);
    } else if (const char* v = value("--k=")) {
      options.k = std::strtoul(v, nullptr, 10);
    } else if (const char* v = value("--iterations=")) {
      options.iterations = std::strtoul(v, nullptr, 10);
    } else if (const char* v = value("--max-expansions=")) {
      options.max_expansions = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--samples=")) {
      options.samples = std::strtoul(v, nullptr, 10);
    } else if (const char* v = value("--json=")) {
      options.json_path = v;
    } else {
      std::fprintf(stderr,
                   "usage: bench_obs [--universities=N] [--shards=N] "
                   "[--k=N] [--iterations=N] [--max-expansions=N] "
                   "[--samples=N] [--json=FILE]\n");
      return 2;
    }
  }
  return sama::bench::Run(options);
}

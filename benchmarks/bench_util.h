#ifndef SAMA_BENCH_BENCH_UTIL_H_
#define SAMA_BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "datasets/lubm.h"
#include "index/path_index.h"
#include "text/thesaurus.h"

namespace sama {
namespace bench {

// JSON has no literal for inf/nan; fprintf would happily emit "inf"
// and break every downstream consumer (json.load in the regression
// checker rejects it). Clamp every ratio before it reaches a %.4f.
// Trivial queries make this real: a near-zero denominator pushes the
// raw ratio to inf even when both operands are "guarded" against 0.
inline double FiniteOr(double v, double fallback = 0.0) {
  return std::isfinite(v) ? v : fallback;
}

// Global size multiplier: SAMA_BENCH_SCALE=1 approximates the paper's
// dataset sizes (hours of indexing); the default keeps every harness
// within a few minutes on one machine while preserving the *shapes* the
// paper reports.
inline double EnvScale() {
  const char* s = std::getenv("SAMA_BENCH_SCALE");
  if (s == nullptr) return 1.0;
  double v = std::atof(s);
  return v > 0 ? v : 1.0;
}

// A ready-to-query LUBM environment with a disk-backed index.
struct LubmEnv {
  std::unique_ptr<DataGraph> graph;
  std::unique_ptr<PathIndex> index;
  Thesaurus thesaurus;
  std::unique_ptr<SamaEngine> engine;
  std::string dir;
};

// `num_threads` configures intra-query parallelism (0 = hardware
// concurrency); answers are identical for every value.
inline LubmEnv MakeLubmEnv(size_t universities, bool on_disk,
                           const std::string& tag, size_t num_threads = 1) {
  LubmEnv env;
  LubmConfig config;
  config.universities = universities;
  env.graph = std::make_unique<DataGraph>(
      DataGraph::FromTriples(GenerateLubm(config)));
  env.index = std::make_unique<PathIndex>();
  PathIndexOptions options;
  if (on_disk) {
    env.dir = (std::filesystem::temp_directory_path() /
               ("sama_bench_" + tag))
                  .string();
    std::filesystem::create_directories(env.dir);
    options.dir = env.dir;
  }
  Status s = env.index->Build(*env.graph, options);
  if (!s.ok()) {
    std::fprintf(stderr, "index build failed: %s\n", s.ToString().c_str());
    std::exit(1);
  }
  env.thesaurus = Thesaurus::BuiltinEnglish();
  EngineOptions engine_options;
  engine_options.num_threads = num_threads;
  env.engine = std::make_unique<SamaEngine>(env.graph.get(),
                                            env.index.get(),
                                            &env.thesaurus,
                                            engine_options);
  return env;
}

// Least-squares fit of y = a·x² + b·x + c (the Figure-7 trendlines).
struct QuadraticFit {
  double a = 0;
  double b = 0;
  double c = 0;
};

inline QuadraticFit FitQuadratic(const std::vector<double>& x,
                                 const std::vector<double>& y) {
  // Normal equations for the 3-parameter least-squares system.
  double s0 = static_cast<double>(x.size());
  double s1 = 0, s2 = 0, s3 = 0, s4 = 0;
  double t0 = 0, t1 = 0, t2 = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    double xi = x[i], xi2 = xi * xi;
    s1 += xi;
    s2 += xi2;
    s3 += xi2 * xi;
    s4 += xi2 * xi2;
    t0 += y[i];
    t1 += y[i] * xi;
    t2 += y[i] * xi2;
  }
  // Solve the symmetric 3x3 system by Cramer's rule.
  double m[3][3] = {{s4, s3, s2}, {s3, s2, s1}, {s2, s1, s0}};
  double rhs[3] = {t2, t1, t0};
  auto det3 = [](double a[3][3]) {
    return a[0][0] * (a[1][1] * a[2][2] - a[1][2] * a[2][1]) -
           a[0][1] * (a[1][0] * a[2][2] - a[1][2] * a[2][0]) +
           a[0][2] * (a[1][0] * a[2][1] - a[1][1] * a[2][0]);
  };
  double d = det3(m);
  QuadraticFit fit;
  if (d == 0) return fit;
  for (int col = 0; col < 3; ++col) {
    double mm[3][3];
    for (int r = 0; r < 3; ++r) {
      for (int cc = 0; cc < 3; ++cc) mm[r][cc] = m[r][cc];
    }
    for (int r = 0; r < 3; ++r) mm[r][col] = rhs[r];
    double value = det3(mm) / d;
    if (col == 0) fit.a = value;
    if (col == 1) fit.b = value;
    if (col == 2) fit.c = value;
  }
  return fit;
}

}  // namespace bench
}  // namespace sama

#endif  // SAMA_BENCH_BENCH_UTIL_H_

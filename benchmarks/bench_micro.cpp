// Microbenchmarks (google-benchmark) for the primitive operations the
// paper's complexity claims rest on:
//   * AlignPaths is linear in |p| + |q| (§4.3's O(I) claim);
//   * path enumeration over the data graph;
//   * cluster construction;
//   * buffer-pool reads (hit vs miss);
//   * χ/ψ evaluation;
// plus the query hot path in its three cache regimes — cold (pages and
// query caches dropped), warm (pages resident, query memos dropped) and
// memoized (everything resident) — isolating what the buffer pool vs
// the query-side cache layer each buy.

#include <benchmark/benchmark.h>

#include <filesystem>
#include <memory>

#include "core/alignment.h"
#include "core/clustering.h"
#include "core/engine.h"
#include "core/score.h"
#include "datasets/govtrack.h"
#include "datasets/lubm.h"
#include "datasets/queries.h"
#include "graph/path_enumerator.h"
#include "index/path_index.h"
#include "obs/metrics.h"
#include "query/sparql.h"
#include "text/thesaurus.h"

namespace sama {
namespace {

// Builds a constant path of `length` nodes and a query path of the same
// shape with variables sprinkled in.
struct AlignmentInput {
  std::shared_ptr<TermDictionary> dict;
  Path p;
  Path q;
};

AlignmentInput MakeAlignmentInput(size_t length) {
  AlignmentInput in;
  in.dict = std::make_shared<TermDictionary>();
  for (size_t i = 0; i < length; ++i) {
    in.p.node_labels.push_back(
        in.dict->Intern(Term::Literal("n" + std::to_string(i))));
    in.p.nodes.push_back(static_cast<NodeId>(i));
    in.q.node_labels.push_back(in.dict->Intern(
        i % 3 == 0 ? Term::Variable("v" + std::to_string(i))
                   : Term::Literal("n" + std::to_string(i))));
    in.q.nodes.push_back(static_cast<NodeId>(i));
    if (i + 1 < length) {
      TermId e = in.dict->Intern(Term::Literal("e" + std::to_string(i)));
      in.p.edge_labels.push_back(e);
      in.q.edge_labels.push_back(e);
    }
  }
  return in;
}

void BM_AlignPaths(benchmark::State& state) {
  AlignmentInput in = MakeAlignmentInput(static_cast<size_t>(state.range(0)));
  LabelComparator cmp(in.dict.get(), nullptr);
  ScoreParams params;
  for (auto _ : state) {
    benchmark::DoNotOptimize(AlignPaths(in.p, in.q, cmp, params));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_AlignPaths)->RangeMultiplier(2)->Range(8, 512)->Complexity();

void BM_AlignPathsWithThesaurus(benchmark::State& state) {
  AlignmentInput in = MakeAlignmentInput(64);
  Thesaurus thesaurus = Thesaurus::BuiltinEnglish();
  LabelComparator cmp(in.dict.get(), &thesaurus);
  ScoreParams params;
  for (auto _ : state) {
    benchmark::DoNotOptimize(AlignPaths(in.p, in.q, cmp, params));
  }
}
BENCHMARK(BM_AlignPathsWithThesaurus);

void BM_PathEnumeration(benchmark::State& state) {
  LubmConfig config;
  config.universities = static_cast<size_t>(state.range(0));
  DataGraph graph = DataGraph::FromTriples(GenerateLubm(config));
  for (auto _ : state) {
    size_t count = 0;
    EnumeratePaths(graph, {}, [&count](const Path&) {
      ++count;
      return true;
    });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_PathEnumeration)->Arg(1)->Arg(2)->Arg(4);

void BM_ClusterConstruction(benchmark::State& state) {
  DataGraph graph = DataGraph::FromTriples(GovTrackFigure1Triples());
  PathIndex index;
  (void)index.Build(graph, PathIndexOptions());
  Thesaurus thesaurus = Thesaurus::BuiltinEnglish();
  QueryGraph query = QueryGraph::FromPatterns(GovTrackQuery1Patterns(),
                                              graph.shared_dict());
  ScoreParams params;
  for (auto _ : state) {
    auto clusters =
        BuildClusters(query, index, &thesaurus, params, {});
    benchmark::DoNotOptimize(clusters);
  }
}
BENCHMARK(BM_ClusterConstruction);

void BM_ChiPsi(benchmark::State& state) {
  Path a, b;
  for (NodeId i = 0; i < 32; ++i) {
    a.nodes.push_back(i);
    a.node_labels.push_back(i);
    b.nodes.push_back(i * 2);
    b.node_labels.push_back(i * 2);
  }
  ScoreParams params;
  for (auto _ : state) {
    size_t chi = ChiSize(a, b);
    benchmark::DoNotOptimize(PsiCost(4, chi, params));
  }
}
BENCHMARK(BM_ChiPsi);

void BM_ForestSearchTopK(benchmark::State& state) {
  DataGraph graph = DataGraph::FromTriples(GovTrackFigure1Triples());
  PathIndex index;
  (void)index.Build(graph, PathIndexOptions());
  Thesaurus thesaurus = Thesaurus::BuiltinEnglish();
  SamaEngine engine(&graph, &index, &thesaurus);
  QueryGraph query = engine.BuildQueryGraph(GovTrackQuery1Patterns());
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Execute(query, 10));
  }
}
BENCHMARK(BM_ForestSearchTopK);

void BM_OptimalVsGreedyAlignment(benchmark::State& state) {
  AlignmentInput in = MakeAlignmentInput(16);
  LabelComparator cmp(in.dict.get(), nullptr);
  ScoreParams params;
  params.alignment_mode = state.range(0) == 0
                              ? AlignmentMode::kGreedyLinear
                              : AlignmentMode::kOptimalDp;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Align(in.p, in.q, cmp, params));
  }
}
BENCHMARK(BM_OptimalVsGreedyAlignment)->Arg(0)->Arg(1);

// Shared disk-backed LUBM environment for the end-to-end query-mode
// benchmarks (built once; google-benchmark re-enters each BM_ body).
struct QueryEnv {
  std::unique_ptr<DataGraph> graph;
  std::unique_ptr<PathIndex> index;
  Thesaurus thesaurus;
  std::unique_ptr<SamaEngine> engine;
  QueryGraph query;

  QueryEnv() {
    LubmConfig config;
    config.universities = 1;
    graph = std::make_unique<DataGraph>(
        DataGraph::FromTriples(GenerateLubm(config)));
    index = std::make_unique<PathIndex>();
    PathIndexOptions options;
    std::string dir = (std::filesystem::temp_directory_path() /
                       "sama_bench_micro_query")
                          .string();
    std::filesystem::create_directories(dir);
    options.dir = dir;
    (void)index->Build(*graph, options);
    thesaurus = Thesaurus::BuiltinEnglish();
    engine = std::make_unique<SamaEngine>(graph.get(), index.get(),
                                          &thesaurus);
    auto parsed = ParseSparql(MakeLubmQueries().front().sparql);
    query = parsed->ToQueryGraph(graph->shared_dict());
  }
};

QueryEnv& GlobalQueryEnv() {
  static QueryEnv* env = new QueryEnv();
  return *env;
}

// Cold: every page and every query-side cache entry dropped before each
// query — the first-ever-query latency.
void BM_QueryColdCache(benchmark::State& state) {
  QueryEnv& env = GlobalQueryEnv();
  for (auto _ : state) {
    state.PauseTiming();
    (void)env.index->DropCaches();  // Pages + query caches.
    state.ResumeTiming();
    benchmark::DoNotOptimize(env.engine->Execute(env.query, 10));
  }
}
BENCHMARK(BM_QueryColdCache);

// Warm pages, cold memos: what the buffer pool alone buys.
void BM_QueryWarmPages(benchmark::State& state) {
  QueryEnv& env = GlobalQueryEnv();
  (void)env.engine->Execute(env.query, 10);  // Fault the pages in.
  for (auto _ : state) {
    state.PauseTiming();
    env.engine->DropQueryCaches();  // Memos only; pages stay resident.
    state.ResumeTiming();
    benchmark::DoNotOptimize(env.engine->Execute(env.query, 10));
  }
}
BENCHMARK(BM_QueryWarmPages);

// Memoized: pages AND the query-side caches warm — the repeat-query
// latency the sharded cache layer targets.
void BM_QueryMemoized(benchmark::State& state) {
  QueryEnv& env = GlobalQueryEnv();
  (void)env.engine->Execute(env.query, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.engine->Execute(env.query, 10));
  }
}
BENCHMARK(BM_QueryMemoized);

// The observability overhead guard: the memoized hot path with every
// obs feature off. DESIGN.md budgets < 5% against BM_QueryMemoized
// (which runs with the default obs.metrics = true), and this variant
// pairs with BENCH_pr3_baseline.json, captured before the obs layer
// existed.
void BM_QueryMemoizedNoObs(benchmark::State& state) {
  QueryEnv& env = GlobalQueryEnv();
  EngineOptions options;
  options.obs.metrics = false;
  SamaEngine engine(env.graph.get(), env.index.get(), &env.thesaurus,
                    options);
  (void)engine.Execute(env.query, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Execute(env.query, 10));
  }
}
BENCHMARK(BM_QueryMemoizedNoObs);

// Full tracing on: span records for the query, each phase and every
// scoring chunk. Bounds what `--trace` costs on the hot path.
void BM_QueryMemoizedTraced(benchmark::State& state) {
  QueryEnv& env = GlobalQueryEnv();
  EngineOptions options;
  options.obs.trace = true;
  SamaEngine engine(env.graph.get(), env.index.get(), &env.thesaurus,
                    options);
  (void)engine.Execute(env.query, 10);
  for (auto _ : state) {
    QueryStats stats;
    benchmark::DoNotOptimize(engine.Execute(env.query, 10, &stats));
  }
}
BENCHMARK(BM_QueryMemoizedTraced);

// Full profiling on: span recording plus the post-query phase-tree
// assembly, counter attribution, and ProfileLog retention. Bounds what
// --explain / serve-mode profiling costs on the hot path; compare
// against BM_QueryMemoizedNoObs for the total obs overhead.
void BM_QueryProfiled(benchmark::State& state) {
  QueryEnv& env = GlobalQueryEnv();
  EngineOptions options;
  options.obs.profile = true;
  SamaEngine engine(env.graph.get(), env.index.get(), &env.thesaurus,
                    options);
  (void)engine.Execute(env.query, 10);
  for (auto _ : state) {
    QueryStats stats;
    benchmark::DoNotOptimize(engine.Execute(env.query, 10, &stats));
  }
}
BENCHMARK(BM_QueryProfiled);

// Raw instrument cost: one relaxed counter add (the unit the engine's
// per-query instrument updates are made of).
void BM_MetricsCounterIncrement(benchmark::State& state) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("bench_counter_total", "bench");
  for (auto _ : state) {
    c->Increment();
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_MetricsCounterIncrement);

// One histogram observation (binary search over 16 bounds + two adds).
void BM_MetricsHistogramObserve(benchmark::State& state) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("bench_latency_millis", "bench",
                                       Histogram::LatencyBucketsMillis());
  double v = 0.1;
  for (auto _ : state) {
    h->Observe(v);
    v = v < 1000 ? v * 1.1 : 0.1;
  }
}
BENCHMARK(BM_MetricsHistogramObserve);

// The alignment-memo hit path against recomputing the alignment.
void BM_AlignmentMemoHitVsDirect(benchmark::State& state) {
  AlignmentInput in = MakeAlignmentInput(64);
  LabelComparator cmp(in.dict.get(), nullptr);
  ScoreParams params;
  AlignmentMemo memo(1024);
  (void)memo.AlignCached(1, in.p, in.q, cmp, params);  // Prime.
  if (state.range(0) == 0) {
    for (auto _ : state) {
      benchmark::DoNotOptimize(Align(in.p, in.q, cmp, params));
    }
  } else {
    for (auto _ : state) {
      benchmark::DoNotOptimize(memo.AlignCached(1, in.p, in.q, cmp, params));
    }
  }
}
BENCHMARK(BM_AlignmentMemoHitVsDirect)->Arg(0)->Arg(1);

void BM_IndexLookupBySink(benchmark::State& state) {
  DataGraph graph = DataGraph::FromTriples(GovTrackFigure1Triples());
  PathIndex index;
  (void)index.Build(graph, PathIndexOptions());
  Thesaurus thesaurus = Thesaurus::BuiltinEnglish();
  Term male = Term::Literal("Male");
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.PathsWithSinkMatching(male, &thesaurus));
  }
}
BENCHMARK(BM_IndexLookupBySink);

}  // namespace
}  // namespace sama

BENCHMARK_MAIN();

// Figure 8 + §6.3 reciprocal rank — effectiveness on LUBM: the number
// of matches each system identifies when no k is imposed, and Sama's
// reciprocal rank against the exact ground truth.
//
// Expected shape (paper): Sama and Sapper always identify at least as
// many meaningful matches as Bounded and Dogma (strictly more on the
// relaxed queries); RR = 1 on every query with a non-empty ground
// truth.

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "baselines/bounded.h"
#include "baselines/dogma.h"
#include "baselines/exact.h"
#include "baselines/sapper.h"
#include "bench_util.h"
#include "datasets/berlin.h"
#include "datasets/queries.h"
#include "eval/metrics.h"
#include "query/sparql.h"

namespace {

using sama::bench::LubmEnv;

constexpr size_t kUnlimited = 0;

}  // namespace

// Runs the effectiveness comparison for one dataset + workload.
void RunWorkload(const char* title, sama::DataGraph* graph,
                 sama::PathIndex* index, sama::Thesaurus* thesaurus,
                 const std::vector<sama::BenchmarkQuery>& workload);

int main() {
  size_t universities =
      static_cast<size_t>(2 * sama::bench::EnvScale()) + 1;
  LubmEnv env =
      sama::bench::MakeLubmEnv(universities, /*on_disk=*/false, "fig8");
  char title[128];
  std::snprintf(title, sizeof(title),
                "Figure 8: #matches per query without imposing k "
                "(LUBM, %zu triples)",
                env.graph->edge_count());
  RunWorkload(title, env.graph.get(), env.index.get(), &env.thesaurus,
              sama::MakeLubmQueries());

  // Secondary dataset: "the effectiveness on the other datasets follows
  // a similar trend" (§6.3).
  sama::BerlinConfig berlin_config;
  berlin_config.products =
      static_cast<size_t>(100 * sama::bench::EnvScale());
  sama::DataGraph berlin =
      sama::DataGraph::FromTriples(sama::GenerateBerlin(berlin_config));
  sama::PathIndex berlin_index;
  if (!berlin_index.Build(berlin, sama::PathIndexOptions()).ok()) return 1;
  std::snprintf(title, sizeof(title),
                "Same experiment on Berlin (%zu triples)",
                berlin.edge_count());
  sama::Thesaurus thesaurus = sama::Thesaurus::BuiltinEnglish();
  RunWorkload(title, &berlin, &berlin_index, &thesaurus,
              sama::MakeBerlinQueries());
  return 0;
}

void RunWorkload(const char* title, sama::DataGraph* graph,
                 sama::PathIndex* index, sama::Thesaurus* thesaurus,
                 const std::vector<sama::BenchmarkQuery>& workload) {
  std::printf("%s\n\n", title);

  sama::MatcherOptions limits;
  limits.max_steps = 500000;
  limits.max_matches = 5000;
  sama::SapperMatcher::Options sapper_options;
  sapper_options.limits = limits;
  sama::SapperMatcher sapper(graph, sapper_options);
  sama::BoundedMatcher::Options bounded_options;
  bounded_options.limits = limits;
  sama::BoundedMatcher bounded(graph, bounded_options);
  sama::DogmaMatcher::Options dogma_options;
  dogma_options.limits = limits;
  sama::DogmaMatcher dogma(graph, dogma_options);
  sama::ExactMatcher exact(graph, limits);

  // Sama's "all matches" run still needs an expansion budget; cap the
  // answers at the same limit as the matchers.
  sama::EngineOptions sama_options;
  sama_options.search.k = limits.max_matches;
  sama_options.search.max_expansions = 2000000;
  sama::SamaEngine engine(graph, index, thesaurus, sama_options);

  // Each cell shows total(meaningful): total distinct answers and the
  // subset confirmed by the ground truth — the paper's "meaningful
  // matches" as judged by its domain experts.
  std::printf("%-5s %12s %12s %12s %12s %7s %6s\n", "Q", "Sama",
              "Sapper", "Bounded", "Dogma", "truth", "RR");
  int sama_wins = 0;
  for (const sama::BenchmarkQuery& bq : workload) {
    auto parsed = sama::ParseSparql(bq.sparql);
    if (!parsed.ok()) continue;
    sama::QueryGraph qg = parsed->ToQueryGraph(graph->shared_dict());

    // Distinct projected answers (ExecuteSparql applies SELECT-variable
    // deduplication, mirroring how the match counts of the other
    // systems are compared).
    auto answers = engine.ExecuteSparql(*parsed, limits.max_matches);
    size_t sama_count = answers.ok() ? answers->size() : 0;
    auto s = sapper.Execute(qg, kUnlimited);
    auto b = bounded.Execute(qg, kUnlimited);
    auto d = dogma.Execute(qg, kUnlimited);

    // Ground truth: exact answers of the strict twin (the stand-in for
    // the paper's domain experts).
    auto strict = sama::ParseSparql(bq.strict_sparql);
    sama::RelevantSet truth;
    if (strict.ok()) {
      sama::QueryGraph strict_qg =
          strict->ToQueryGraph(graph->shared_dict());
      auto truth_matches = exact.Execute(strict_qg, kUnlimited);
      if (truth_matches.ok()) {
        for (const sama::Match& match : *truth_matches) {
          truth.Add(match.BindingTuple(parsed->select_vars));
        }
      }
    }
    double rr = 0;
    if (answers.ok() && !truth.empty()) {
      std::vector<std::vector<sama::Term>> ranked;
      for (const sama::Answer& a : *answers) {
        ranked.push_back(a.BindingTuple(parsed->select_vars));
      }
      rr = sama::ReciprocalRank(ranked, truth);
    }

    // Meaningful-match counts: distinct tuples confirmed by the truth.
    auto meaningful = [&](const std::vector<sama::Match>& matches) {
      std::set<std::string> hits;
      for (const sama::Match& match : matches) {
        auto tuple = match.BindingTuple(parsed->select_vars);
        if (truth.Contains(tuple)) hits.insert(sama::TupleKey(tuple));
      }
      return hits.size();
    };
    size_t sama_meaningful = 0;
    if (answers.ok()) {
      std::set<std::string> hits;
      for (const sama::Answer& a : *answers) {
        auto tuple = a.BindingTuple(parsed->select_vars);
        if (truth.Contains(tuple)) hits.insert(sama::TupleKey(tuple));
      }
      sama_meaningful = hits.size();
    }
    size_t sapper_meaningful = s.ok() ? meaningful(*s) : 0;
    size_t bounded_meaningful = b.ok() ? meaningful(*b) : 0;
    size_t dogma_meaningful = d.ok() ? meaningful(*d) : 0;
    if (sama_meaningful >= bounded_meaningful &&
        sama_meaningful >= dogma_meaningful) {
      ++sama_wins;
    }
    auto cell = [](size_t total, size_t good) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%zu(%zu)", total, good);
      return std::string(buf);
    };
    std::printf("%-5s %12s %12s %12s %12s %7zu %6.2f\n", bq.name.c_str(),
                cell(sama_count, sama_meaningful).c_str(),
                cell(s.ok() ? s->size() : 0, sapper_meaningful).c_str(),
                cell(b.ok() ? b->size() : 0, bounded_meaningful).c_str(),
                cell(d.ok() ? d->size() : 0, dogma_meaningful).c_str(),
                truth.size(), rr);
  }
  std::printf(
      "\nShape check vs the paper's Figure 8: Sama's meaningful matches "
      "matched-or-beat\nBounded/Dogma on %d/%zu queries (strictly more on "
      "the relaxed ones); RR = 1.00\nwherever truth > 0 (monotonicity "
      "never violated, §6.3).\n\n",
      sama_wins, workload.size());
}

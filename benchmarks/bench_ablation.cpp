// Ablations for the design choices DESIGN.md calls out:
//   1. Path-store compression (varint vs fixed32): space and read time
//      — the §7 "compression mechanisms" future-work item.
//   2. Thesaurus on/off: answers found on synonym-relaxed queries.
//   3. require_connected on/off: answer quality (consistent fraction)
//      vs count.
//   4. Buffer-pool size sweep: cold-scan time as the cache shrinks.
//   5. Early-exit alignment on/off: clustering time with a top-n cap.
//   6. Incremental AddTriple vs full index rebuild (§7's "speed-up the
//      update of the index").
//   7. Greedy linear alignment vs optimal DP alignment: clustering time
//      and best-λ quality across the 12-query workload.

#include <cstdio>
#include <filesystem>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "datasets/queries.h"
#include "query/sparql.h"
#include "core/clustering.h"
#include "storage/path_store.h"

namespace {

using sama::bench::LubmEnv;

void CompressionAblation(const sama::DataGraph& graph) {
  std::printf("1) Path-store compression (same LUBM paths)\n");
  std::vector<sama::Path> paths = sama::AllPaths(graph);
  for (bool compress : {false, true}) {
    std::string dir = (std::filesystem::temp_directory_path() /
                       (compress ? "sama_abl_varint" : "sama_abl_fixed"))
                          .string();
    std::filesystem::create_directories(dir);
    sama::PathStore store;
    sama::PathStore::Options options;
    options.path = dir + "/paths.dat";
    options.compress = compress;
    if (!store.Open(options).ok()) return;
    sama::WallTimer write_timer;
    for (const sama::Path& p : paths) {
      if (!store.Put(p).ok()) return;
    }
    (void)store.Flush();
    double write_ms = write_timer.ElapsedMillis();
    (void)store.DropCaches();
    sama::WallTimer read_timer;
    sama::Path loaded;
    for (sama::PathId id = 0; id < store.path_count(); ++id) {
      (void)store.Get(id, &loaded);
    }
    double read_ms = read_timer.ElapsedMillis();
    std::printf("   %-8s %8s on disk   write %7.2f ms   scan %7.2f ms\n",
                compress ? "varint" : "fixed32",
                sama::HumanBytes(store.size_bytes()).c_str(), write_ms,
                read_ms);
    (void)store.Close();
    std::filesystem::remove_all(dir);
  }
  std::printf("\n");
}

void ThesaurusAblation(LubmEnv* env) {
  std::printf("2) Thesaurus on/off (synonym query Q11)\n");
  auto queries = sama::MakeLubmQueries();
  auto parsed = sama::ParseSparql(queries[10].sparql);  // Q11.
  if (!parsed.ok()) return;
  sama::QueryGraph qg = parsed->ToQueryGraph(env->graph->shared_dict());
  for (bool with : {true, false}) {
    sama::SamaEngine engine(env->graph.get(), env->index.get(),
                            with ? &env->thesaurus : nullptr);
    auto answers = engine.Execute(qg, 50);
    size_t exactish = 0;
    if (answers.ok()) {
      for (const sama::Answer& a : *answers) {
        if (a.lambda_total == 0.0) ++exactish;
      }
    }
    std::printf("   thesaurus %-3s  %3zu answers (%zu with lambda 0)\n",
                with ? "on" : "off",
                answers.ok() ? answers->size() : 0, exactish);
  }
  std::printf("\n");
}

void ConnectivityAblation(LubmEnv* env) {
  std::printf("3) require_connected on/off (Q9)\n");
  auto queries = sama::MakeLubmQueries();
  auto parsed = sama::ParseSparql(queries[8].sparql);  // Q9.
  if (!parsed.ok()) return;
  sama::QueryGraph qg = parsed->ToQueryGraph(env->graph->shared_dict());
  for (bool connected : {true, false}) {
    sama::EngineOptions options;
    options.search.require_connected = connected;
    sama::SamaEngine engine(env->graph.get(), env->index.get(),
                            &env->thesaurus, options);
    auto answers = engine.Execute(qg, 100);
    size_t consistent = 0;
    if (answers.ok()) {
      for (const sama::Answer& a : *answers) {
        if (a.consistent) ++consistent;
      }
    }
    std::printf(
        "   require_connected %-3s  %3zu answers, %3zu consistent\n",
        connected ? "on" : "off", answers.ok() ? answers->size() : 0,
        consistent);
  }
  std::printf("\n");
}

void BufferPoolAblation() {
  std::printf(
      "4) Buffer-pool size sweep (random-order reads of a disk index)\n");
  sama::LubmConfig config;
  config.universities = 8;
  sama::DataGraph graph =
      sama::DataGraph::FromTriples(sama::GenerateLubm(config));
  for (size_t pages : {1, 2, 8, 64, 1024}) {
    std::string dir = (std::filesystem::temp_directory_path() /
                       ("sama_abl_bp" + std::to_string(pages)))
                          .string();
    std::filesystem::create_directories(dir);
    sama::PathIndexOptions options;
    options.dir = dir;
    options.buffer_pool_pages = pages;
    sama::PathIndex index;
    if (!index.Build(graph, options).ok()) return;
    (void)index.DropCaches();
    // Random-order access defeats sequential locality, so the cache
    // size is what determines the hit rate.
    sama::Random rng(99);
    std::vector<sama::PathId> ids(index.path_count());
    for (sama::PathId i = 0; i < ids.size(); ++i) ids[i] = i;
    for (size_t i = ids.size(); i > 1; --i) {
      std::swap(ids[i - 1], ids[rng.Uniform(i)]);
    }
    sama::WallTimer timer;
    sama::Path p;
    for (int round = 0; round < 3; ++round) {
      for (sama::PathId id : ids) (void)index.GetPath(id, &p);
    }
    double ms = timer.ElapsedMillis();
    sama::BufferPool::Stats stats = index.cache_stats();
    std::printf("   %5zu pages: scan %7.2f ms, hit rate %5.1f%%\n", pages,
                ms, 100.0 * stats.HitRate());
    std::filesystem::remove_all(dir);
  }
}

}  // namespace

void EarlyExitAblation(LubmEnv* env) {
  std::printf("5) Early-exit alignment (clustering with top-10 cap, Q10)\n");
  auto queries = sama::MakeLubmQueries();
  auto parsed = sama::ParseSparql(queries[9].sparql);  // Q10.
  if (!parsed.ok()) return;
  sama::QueryGraph qg = parsed->ToQueryGraph(env->graph->shared_dict());
  for (bool early : {false, true}) {
    sama::ClusteringOptions options;
    options.max_candidates_per_cluster = 10;
    options.early_exit_alignment = early;
    sama::WallTimer timer;
    size_t kept = 0;
    for (int round = 0; round < 50; ++round) {
      auto clusters = sama::BuildClusters(qg, *env->index,
                                          &env->thesaurus,
                                          sama::ScoreParams(), options);
      if (!clusters.ok()) return;
      kept = 0;
      for (const sama::Cluster& c : *clusters) kept += c.size();
    }
    std::printf("   early_exit %-3s  %7.2f ms / 50 rounds (%zu kept)\n",
                early ? "on" : "off", timer.ElapsedMillis(), kept);
  }
}

void IncrementalUpdateAblation() {
  std::printf(
      "6) Incremental AddTriple vs full rebuild (100 new triples)\n");
  sama::LubmConfig config;
  config.universities = 2;
  std::vector<sama::Triple> base = sama::GenerateLubm(config);
  auto extra_triple = [](int i) {
    return sama::Triple{
        sama::Term::Iri("http://lubm.example.org/data/NewStudent" +
                        std::to_string(i)),
        sama::Term::Iri("http://lubm.example.org/univ-bench#memberOf"),
        sama::Term::Iri(
            "http://lubm.example.org/data/Department0_Univ0")};
  };

  // Incremental: one AddTriple per new triple.
  {
    sama::DataGraph graph = sama::DataGraph::FromTriples(base);
    sama::PathIndex index;
    sama::PathIndexOptions options;
    options.build_hypergraph = false;
    if (!index.Build(graph, options).ok()) return;
    sama::WallTimer timer;
    for (int i = 0; i < 100; ++i) {
      if (!index.AddTriple(&graph, extra_triple(i)).ok()) return;
    }
    std::printf("   incremental: %8.2f ms  (%llu live paths)\n",
                timer.ElapsedMillis(),
                static_cast<unsigned long long>(index.live_path_count()));
  }
  // Rebuild: one full Build per new triple (the naive alternative);
  // measured for 10 rebuilds and scaled, to keep the bench short.
  {
    std::vector<sama::Triple> triples = base;
    sama::WallTimer timer;
    for (int i = 0; i < 10; ++i) {
      triples.push_back(extra_triple(i));
      sama::DataGraph graph = sama::DataGraph::FromTriples(triples);
      sama::PathIndex index;
      sama::PathIndexOptions options;
      options.build_hypergraph = false;
      if (!index.Build(graph, options).ok()) return;
    }
    std::printf("   rebuild    : %8.2f ms  (x10 extrapolated from 10 "
                "rebuilds)\n",
                timer.ElapsedMillis() * 10.0);
  }
}

void AlignmentModeAblation(LubmEnv* env) {
  std::printf(
      "7) Greedy O(|p|+|q|) vs optimal O(|p|*|q|) alignment "
      "(12-query workload)\n");
  for (sama::AlignmentMode mode :
       {sama::AlignmentMode::kGreedyLinear,
        sama::AlignmentMode::kOptimalDp}) {
    sama::ScoreParams params;
    params.alignment_mode = mode;
    sama::WallTimer timer;
    double lambda_sum = 0;
    size_t candidates = 0;
    for (const sama::BenchmarkQuery& bq : sama::MakeLubmQueries()) {
      auto parsed = sama::ParseSparql(bq.sparql);
      if (!parsed.ok()) continue;
      sama::QueryGraph qg =
          parsed->ToQueryGraph(env->graph->shared_dict());
      auto clusters = sama::BuildClusters(qg, *env->index,
                                          &env->thesaurus, params, {});
      if (!clusters.ok()) continue;
      for (const sama::Cluster& c : *clusters) {
        candidates += c.size();
        if (!c.empty()) lambda_sum += c.paths[0].lambda();
      }
    }
    std::printf(
        "   %-7s %8.2f ms, %zu candidates aligned, sum of best "
        "lambdas %.2f\n",
        mode == sama::AlignmentMode::kGreedyLinear ? "greedy" : "optimal",
        timer.ElapsedMillis(), candidates, lambda_sum);
  }
  std::printf(
      "   (equal best-lambda sums mean the greedy scan found the "
      "optimum here)\n");
}

int main() {
  std::printf("Ablation study\n\n");
  LubmEnv env = sama::bench::MakeLubmEnv(
      static_cast<size_t>(sama::bench::EnvScale()) + 1,
      /*on_disk=*/false, "ablation");
  CompressionAblation(*env.graph);
  ThesaurusAblation(&env);
  ConnectivityAblation(&env);
  BufferPoolAblation();
  EarlyExitAblation(&env);
  IncrementalUpdateAblation();
  AlignmentModeAblation(&env);
  return 0;
}

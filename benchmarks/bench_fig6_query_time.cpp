// Figure 6 — average response time of the 12 benchmark queries on the
// LUBM-like dataset for Sama, Sapper, Bounded and Dogma, cold-cache
// (6a) and warm-cache (6b). Each query computes its top-10 answers and
// is averaged over several runs, as in §6.2.
//
// Expected shape (paper): Sama fastest on most queries; Bounded beats
// Dogma; Sapper is the least efficient. Cold-cache times exceed
// warm-cache times for the disk-backed Sama index.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "baselines/bounded.h"
#include "baselines/dogma.h"
#include "baselines/sapper.h"
#include "bench_util.h"
#include "common/timer.h"
#include "datasets/queries.h"
#include "query/sparql.h"

namespace {

constexpr size_t kTopK = 10;
constexpr int kRuns = 5;

using sama::bench::LubmEnv;

// Per-query measurements feeding the table, the per-phase breakdown
// and the --json artifact (tools/check_bench_regression.py).
struct QueryRow {
  std::string name;
  double cold_ms = 0;
  double warm_ms = 0;           // Pruning + caches on (the hot path).
  double warm_noprune_ms = 0;   // Exhaustive search ablation.
  double clustering_ms = 0;     // Warm, pruning on.
  double search_ms = 0;
  double noprune_search_ms = 0;
  double pruning_ratio = 0;
  double alignment_hit_rate = 0;
  double record_hit_rate = 0;
  double lookup_hit_rate = 0;
  uint64_t search_expansions = 0;          // Pruned engine, warm.
  uint64_t noprune_search_expansions = 0;  // Exhaustive ablation.
  bool search_truncated = false;
  bool noprune_search_truncated = false;
};

// Averaged warm-path phase timings; the hit rates and pruning ratio
// come from the last run (they are deterministic per query once warm).
void AveragePhases(sama::SamaEngine& engine, const sama::QueryGraph& qg,
                   int runs, double* total_ms, double* clustering_ms,
                   double* search_ms, sama::QueryStats* last) {
  *total_ms = *clustering_ms = *search_ms = 0;
  for (int r = 0; r < runs; ++r) {
    (void)engine.Execute(qg, kTopK, last);
    *total_ms += last->total_millis;
    *clustering_ms += last->clustering_millis;
    *search_ms += last->search_millis;
  }
  *total_ms /= runs;
  *clustering_ms /= runs;
  *search_ms /= runs;
}

void WriteJson(const std::string& path, size_t threads, size_t triples,
               size_t max_expansions, const std::vector<QueryRow>& rows) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  double cold_mean = 0, warm_mean = 0, noprune_mean = 0;
  // Exact subset: queries whose optimized search was NOT cut by the
  // anytime budget, i.e. the ranked answers are provably exact. On
  // these the exhaustive ablation (same budget) either completed too —
  // identical answers, enforced at runtime — or was truncated, making
  // the measured ratio a LOWER bound on the true speedup.
  double exact_warm_sum = 0, exact_noprune_sum = 0;
  size_t exact_queries = 0;
  for (const QueryRow& r : rows) {
    cold_mean += r.cold_ms;
    warm_mean += r.warm_ms;
    noprune_mean += r.warm_noprune_ms;
    if (!r.search_truncated) {
      exact_warm_sum += r.warm_ms;
      exact_noprune_sum += r.warm_noprune_ms;
      ++exact_queries;
    }
  }
  if (!rows.empty()) {
    cold_mean /= rows.size();
    warm_mean /= rows.size();
    noprune_mean /= rows.size();
  }
  std::fprintf(f, "{\n  \"bench\": \"fig6\",\n  \"threads\": %zu,\n"
               "  \"triples\": %zu,\n  \"top_k\": %zu,\n  \"runs\": %d,\n"
               "  \"max_expansions\": %zu,\n",
               threads, triples, kTopK, kRuns, max_expansions);
  std::fprintf(f, "  \"queries\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const QueryRow& r = rows[i];
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"cold_ms\": %.4f, \"warm_ms\": %.4f, "
        "\"warm_noprune_ms\": %.4f, \"clustering_ms\": %.4f, "
        "\"search_ms\": %.4f, \"noprune_search_ms\": %.4f, "
        "\"pruning_ratio\": %.4f, \"alignment_memo_hit_rate\": %.4f, "
        "\"record_cache_hit_rate\": %.4f, \"lookup_cache_hit_rate\": %.4f, "
        "\"search_expansions\": %llu, \"noprune_search_expansions\": %llu, "
        "\"search_truncated\": %s, \"noprune_search_truncated\": %s}%s\n",
        r.name.c_str(), r.cold_ms, r.warm_ms, r.warm_noprune_ms,
        r.clustering_ms, r.search_ms, r.noprune_search_ms, r.pruning_ratio,
        r.alignment_hit_rate, r.record_hit_rate, r.lookup_hit_rate,
        static_cast<unsigned long long>(r.search_expansions),
        static_cast<unsigned long long>(r.noprune_search_expansions),
        r.search_truncated ? "true" : "false",
        r.noprune_search_truncated ? "true" : "false",
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  // warm_speedup is the algorithmic win this PR claims: the exhaustive
  // warm path (no score bound, no query-side caches) over the optimized
  // warm path, both single-threaded and under the same anytime budget,
  // summed over the exact (non-truncated) queries. warm_speedup_all
  // includes the anytime queries, where both engines burn the same
  // budget and roughly tie. cold_warm_ratio tracks disk/page + memo
  // warm-up.
  std::fprintf(f,
               "  \"summary\": {\"cold_mean_ms\": %.4f, \"warm_mean_ms\": "
               "%.4f, \"warm_noprune_mean_ms\": %.4f, \"warm_speedup\": "
               "%.2f, \"warm_speedup_all\": %.2f, \"exact_queries\": %zu, "
               "\"cold_warm_ratio\": %.2f}\n}\n",
               cold_mean, warm_mean, noprune_mean,
               sama::bench::FiniteOr(
                   exact_warm_sum > 0 ? exact_noprune_sum / exact_warm_sum
                                      : 0.0),
               sama::bench::FiniteOr(
                   warm_mean > 0 ? noprune_mean / warm_mean : 0.0),
               exact_queries,
               sama::bench::FiniteOr(
                   warm_mean > 0 ? cold_mean / warm_mean : 0.0));
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

double AverageMillis(const std::function<void()>& body, int runs) {
  double total = 0;
  for (int r = 0; r < runs; ++r) {
    sama::WallTimer timer;
    body();
    total += timer.ElapsedMillis();
  }
  return total / runs;
}

// Answers must not depend on the thread count: collapse each answer to
// its (score, binding) signature for comparison against the serial run.
std::vector<std::pair<double, std::string>> AnswerSignature(
    const std::vector<sama::Answer>& answers) {
  std::vector<std::pair<double, std::string>> sig;
  sig.reserve(answers.size());
  for (const sama::Answer& a : answers) {
    std::string parts;
    for (const sama::ScoredPath& sp : a.parts) {
      parts += std::to_string(sp.id);
      parts += ',';
    }
    sig.emplace_back(a.score, parts);
  }
  return sig;
}

}  // namespace

int main(int argc, char** argv) {
  size_t threads = 1;
  // Default anytime budget: high enough that the score-bounded search
  // completes Q1–Q9 (Q10–Q12 are genuinely anytime: their pruned
  // search needs >10M expansions). The exhaustive ablation gets the
  // same budget, so on queries it cannot finish the comparison is
  // equal-budget, equal-or-worse-quality — never unfair to the
  // ablation, and the reported speedup is a lower bound on the true
  // algorithmic win.
  size_t max_expansions = 500000;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = static_cast<size_t>(std::strtoul(argv[i] + 10, nullptr, 10));
    } else if (std::strncmp(argv[i], "--max-expansions=", 17) == 0) {
      max_expansions =
          static_cast<size_t>(std::strtoul(argv[i] + 17, nullptr, 10));
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr,
                   "usage: bench_fig6_query_time [--threads=N] "
                   "[--max-expansions=N] [--json=FILE]  "
                   "(N=0 means all hardware threads)\n");
      return 1;
    }
  }
  size_t universities =
      static_cast<size_t>(2 * sama::bench::EnvScale()) + 1;
  LubmEnv env =
      sama::bench::MakeLubmEnv(universities, /*on_disk=*/true, "fig6");
  // Interactive top-k configuration: a bounded anytime search budget
  // (the returned 10 answers are the greedily best; §5 likewise
  // generates the top-k heuristically).
  sama::EngineOptions engine_options;
  engine_options.search.max_expansions = max_expansions;
  engine_options.num_threads = threads;
  sama::SamaEngine engine(env.graph.get(), env.index.get(),
                          &env.thesaurus, engine_options);
  // The exhaustive path: no score bound, no query-side caches — every
  // alignment, lookup and record read recomputed. The answers are
  // byte-identical to the optimized engine's; the gap is this PR's
  // algorithmic win (summary.optimization_speedup). It gets its OWN
  // index (in memory — strictly in its favor) because
  // ConfigureQueryCache installs the index-side caches per index, and
  // this engine must run without them.
  sama::PathIndex noprune_index;
  if (!noprune_index.Build(*env.graph, sama::PathIndexOptions()).ok()) {
    std::fprintf(stderr, "exhaustive-path index build failed\n");
    return 1;
  }
  sama::EngineOptions noprune_options = engine_options;
  noprune_options.params.prune_search = false;
  noprune_options.cache.enabled = false;
  sama::SamaEngine noprune_engine(env.graph.get(), &noprune_index,
                                  &env.thesaurus, noprune_options);
  // Reference serial engine for the identical-answers check.
  sama::EngineOptions serial_options = engine_options;
  serial_options.num_threads = 1;
  sama::SamaEngine serial_engine(env.graph.get(), env.index.get(),
                                 &env.thesaurus, serial_options);
  const bool check_determinism = threads != 1;
  std::printf("Figure 6: avg response time (ms) on LUBM (%zu triples), "
              "top-%zu answers, %d runs, %zu thread(s)\n\n",
              env.graph->edge_count(), kTopK, kRuns,
              threads == 0 ? sama::ThreadPool::HardwareThreads() : threads);

  sama::MatcherOptions limits;
  limits.max_steps = 500000;
  limits.max_matches = 10000;
  sama::SapperMatcher::Options sapper_options;
  sapper_options.limits = limits;
  sama::SapperMatcher sapper(env.graph.get(), sapper_options);
  sama::BoundedMatcher::Options bounded_options;
  bounded_options.limits = limits;
  sama::BoundedMatcher bounded(env.graph.get(), bounded_options);
  sama::DogmaMatcher::Options dogma_options;
  dogma_options.limits = limits;
  sama::DogmaMatcher dogma(env.graph.get(), dogma_options);

  std::vector<QueryRow> rows;
  for (bool cold : {true, false}) {
    size_t row_index = 0;
    std::printf("--- %s-cache ---\n", cold ? "cold" : "warm");
    std::printf("%-5s %10s %10s %10s %10s\n", "Q", "Sama", "Sapper",
                "Bounded", "Dogma");
    for (const sama::BenchmarkQuery& bq : sama::MakeLubmQueries()) {
      auto parsed = sama::ParseSparql(bq.sparql);
      if (!parsed.ok()) continue;
      sama::QueryGraph qg =
          parsed->ToQueryGraph(env.graph->shared_dict());
      if (cold) {
        rows.emplace_back();
        rows.back().name = bq.name;
      }
      QueryRow& row = rows[row_index++];

      // Warm the cache once for the warm condition.
      if (!cold) (void)engine.Execute(qg, kTopK);

      if (check_determinism && !cold) {
        auto parallel_answers = engine.Execute(qg, kTopK);
        auto serial_answers = serial_engine.Execute(qg, kTopK);
        if (parallel_answers.ok() && serial_answers.ok() &&
            AnswerSignature(*parallel_answers) !=
                AnswerSignature(*serial_answers)) {
          std::fprintf(stderr,
                       "DETERMINISM VIOLATION on %s: parallel answers "
                       "differ from serial\n",
                       bq.name.c_str());
          return 1;
        }
      }

      double sama_ms = AverageMillis(
          [&] {
            // Cold = nothing resident: pages, index-side caches AND the
            // engine-side memos (alignment/label) all dropped.
            if (cold) {
              (void)env.index->DropCaches();
              engine.DropQueryCaches();
            }
            (void)engine.Execute(qg, kTopK);
          },
          kRuns);
      if (cold) {
        row.cold_ms = sama_ms;
      } else {
        row.warm_ms = sama_ms;
      }
      // The competitor systems run in memory: the cache condition only
      // distinguishes the disk-backed Sama index (their cold ≈ warm).
      double sapper_ms =
          AverageMillis([&] { (void)sapper.Execute(qg, kTopK); }, kRuns);
      double bounded_ms =
          AverageMillis([&] { (void)bounded.Execute(qg, kTopK); }, kRuns);
      double dogma_ms =
          AverageMillis([&] { (void)dogma.Execute(qg, kTopK); }, kRuns);
      std::printf("%-5s %10.2f %10.2f %10.2f %10.2f\n", bq.name.c_str(),
                  sama_ms, sapper_ms, bounded_ms, dogma_ms);
    }
    std::printf("\n");
  }
  // Warm per-phase breakdown, score-bounded search vs the exhaustive
  // ablation. Answers are identical (the bound is admissible); only the
  // work differs, quantified by the pruning ratio.
  std::printf("--- per-phase (warm): pruning on vs off ---\n");
  std::printf("%-5s %9s %9s %9s | %9s %9s | %6s %6s %6s %6s\n", "Q",
              "total", "cluster", "search", "total*", "search*", "prune%",
              "align%", "rec%", "look%");
  {
    size_t row_index = 0;
    for (const sama::BenchmarkQuery& bq : sama::MakeLubmQueries()) {
      auto parsed = sama::ParseSparql(bq.sparql);
      if (!parsed.ok()) continue;
      sama::QueryGraph qg = parsed->ToQueryGraph(env.graph->shared_dict());
      QueryRow& row = rows[row_index++];
      sama::QueryStats stats;
      double total = 0;
      AveragePhases(engine, qg, kRuns, &total, &row.clustering_ms,
                    &row.search_ms, &stats);
      row.pruning_ratio = stats.SearchPruningRatio();
      row.alignment_hit_rate = stats.alignment_memo.HitRate();
      row.record_hit_rate = stats.path_record_cache.HitRate();
      row.lookup_hit_rate = stats.path_lookup_cache.HitRate();
      row.search_expansions = stats.search_expansions;
      row.search_truncated = stats.search_truncated;
      sama::QueryStats noprune_stats;
      double noprune_clustering = 0;
      AveragePhases(noprune_engine, qg, kRuns, &row.warm_noprune_ms,
                    &noprune_clustering, &row.noprune_search_ms,
                    &noprune_stats);
      row.noprune_search_expansions = noprune_stats.search_expansions;
      row.noprune_search_truncated = noprune_stats.search_truncated;
      // The identical-answers contract: whenever NEITHER path was cut
      // short by the anytime budget, the optimized engine must return
      // the exact same ranked answers. (A truncated exhaustive run is
      // not an oracle: pruning saves budget, so under the same budget
      // the optimized path legitimately reaches better answers.)
      if (!noprune_stats.search_truncated && !stats.search_truncated) {
        auto pruned_answers = engine.Execute(qg, kTopK);
        auto exhaustive_answers = noprune_engine.Execute(qg, kTopK);
        if (pruned_answers.ok() && exhaustive_answers.ok() &&
            AnswerSignature(*pruned_answers) !=
                AnswerSignature(*exhaustive_answers)) {
          std::fprintf(stderr,
                       "PRUNING VIOLATION on %s: optimized answers differ "
                       "from the exhaustive path\n",
                       bq.name.c_str());
          return 1;
        }
      }
      std::printf(
          "%-5s %9.3f %9.3f %9.3f | %9.3f %9.3f | %5.1f%% %5.1f%% %5.1f%% "
          "%5.1f%%\n",
          bq.name.c_str(), total, row.clustering_ms, row.search_ms,
          row.warm_noprune_ms, row.noprune_search_ms,
          100 * row.pruning_ratio, 100 * row.alignment_hit_rate,
          100 * row.record_hit_rate, 100 * row.lookup_hit_rate);
    }
  }
  std::printf("(* = exhaustive search ablation; prune%% = combinations "
              "skipped by the score bound; align/rec/look = warm hit rates "
              "of the alignment memo, record and lookup caches)\n\n");

  if (!json_path.empty()) {
    WriteJson(json_path, threads == 0 ? sama::ThreadPool::HardwareThreads()
                                      : threads,
              env.graph->edge_count(), max_expansions, rows);
  }

  std::printf(
      "Shape check vs the paper's Figure 6: among the approximate systems\n"
      "Sama stays in low single-digit ms while Sapper degrades by orders of\n"
      "magnitude on match-heavy queries (Q5, Q8, Q9, Q11). The exact\n"
      "in-memory matchers (Dogma, and Bounded's pruned search) terminate\n"
      "almost instantly at this scale — often because relaxed queries give\n"
      "them nothing to enumerate; see EXPERIMENTS.md for the scale\n"
      "discussion.\n");
  return 0;
}

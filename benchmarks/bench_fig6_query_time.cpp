// Figure 6 — average response time of the 12 benchmark queries on the
// LUBM-like dataset for Sama, Sapper, Bounded and Dogma, cold-cache
// (6a) and warm-cache (6b). Each query computes its top-10 answers and
// is averaged over several runs, as in §6.2.
//
// Expected shape (paper): Sama fastest on most queries; Bounded beats
// Dogma; Sapper is the least efficient. Cold-cache times exceed
// warm-cache times for the disk-backed Sama index.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "baselines/bounded.h"
#include "baselines/dogma.h"
#include "baselines/sapper.h"
#include "bench_util.h"
#include "common/timer.h"
#include "datasets/queries.h"
#include "query/sparql.h"

namespace {

constexpr size_t kTopK = 10;
constexpr int kRuns = 5;

using sama::bench::LubmEnv;

double AverageMillis(const std::function<void()>& body, int runs) {
  double total = 0;
  for (int r = 0; r < runs; ++r) {
    sama::WallTimer timer;
    body();
    total += timer.ElapsedMillis();
  }
  return total / runs;
}

// Answers must not depend on the thread count: collapse each answer to
// its (score, binding) signature for comparison against the serial run.
std::vector<std::pair<double, std::string>> AnswerSignature(
    const std::vector<sama::Answer>& answers) {
  std::vector<std::pair<double, std::string>> sig;
  sig.reserve(answers.size());
  for (const sama::Answer& a : answers) {
    std::string parts;
    for (const sama::ScoredPath& sp : a.parts) {
      parts += std::to_string(sp.id);
      parts += ',';
    }
    sig.emplace_back(a.score, parts);
  }
  return sig;
}

}  // namespace

int main(int argc, char** argv) {
  size_t threads = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = static_cast<size_t>(std::strtoul(argv[i] + 10, nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: bench_fig6_query_time [--threads=N]  "
                   "(N=0 means all hardware threads)\n");
      return 1;
    }
  }
  size_t universities =
      static_cast<size_t>(2 * sama::bench::EnvScale()) + 1;
  LubmEnv env =
      sama::bench::MakeLubmEnv(universities, /*on_disk=*/true, "fig6");
  // Interactive top-k configuration: a bounded anytime search budget
  // (the returned 10 answers are the greedily best; §5 likewise
  // generates the top-k heuristically).
  sama::EngineOptions engine_options;
  engine_options.search.max_expansions = 10000;
  engine_options.num_threads = threads;
  sama::SamaEngine engine(env.graph.get(), env.index.get(),
                          &env.thesaurus, engine_options);
  // Reference serial engine for the identical-answers check.
  sama::EngineOptions serial_options = engine_options;
  serial_options.num_threads = 1;
  sama::SamaEngine serial_engine(env.graph.get(), env.index.get(),
                                 &env.thesaurus, serial_options);
  const bool check_determinism = threads != 1;
  std::printf("Figure 6: avg response time (ms) on LUBM (%zu triples), "
              "top-%zu answers, %d runs, %zu thread(s)\n\n",
              env.graph->edge_count(), kTopK, kRuns,
              threads == 0 ? sama::ThreadPool::HardwareThreads() : threads);

  sama::MatcherOptions limits;
  limits.max_steps = 500000;
  limits.max_matches = 10000;
  sama::SapperMatcher::Options sapper_options;
  sapper_options.limits = limits;
  sama::SapperMatcher sapper(env.graph.get(), sapper_options);
  sama::BoundedMatcher::Options bounded_options;
  bounded_options.limits = limits;
  sama::BoundedMatcher bounded(env.graph.get(), bounded_options);
  sama::DogmaMatcher::Options dogma_options;
  dogma_options.limits = limits;
  sama::DogmaMatcher dogma(env.graph.get(), dogma_options);

  for (bool cold : {true, false}) {
    std::printf("--- %s-cache ---\n", cold ? "cold" : "warm");
    std::printf("%-5s %10s %10s %10s %10s\n", "Q", "Sama", "Sapper",
                "Bounded", "Dogma");
    for (const sama::BenchmarkQuery& bq : sama::MakeLubmQueries()) {
      auto parsed = sama::ParseSparql(bq.sparql);
      if (!parsed.ok()) continue;
      sama::QueryGraph qg =
          parsed->ToQueryGraph(env.graph->shared_dict());

      // Warm the cache once for the warm condition.
      if (!cold) (void)engine.Execute(qg, kTopK);

      if (check_determinism && !cold) {
        auto parallel_answers = engine.Execute(qg, kTopK);
        auto serial_answers = serial_engine.Execute(qg, kTopK);
        if (parallel_answers.ok() && serial_answers.ok() &&
            AnswerSignature(*parallel_answers) !=
                AnswerSignature(*serial_answers)) {
          std::fprintf(stderr,
                       "DETERMINISM VIOLATION on %s: parallel answers "
                       "differ from serial\n",
                       bq.name.c_str());
          return 1;
        }
      }

      double sama_ms = AverageMillis(
          [&] {
            if (cold) (void)env.index->DropCaches();
            (void)engine.Execute(qg, kTopK);
          },
          kRuns);
      // The competitor systems run in memory: the cache condition only
      // distinguishes the disk-backed Sama index (their cold ≈ warm).
      double sapper_ms =
          AverageMillis([&] { (void)sapper.Execute(qg, kTopK); }, kRuns);
      double bounded_ms =
          AverageMillis([&] { (void)bounded.Execute(qg, kTopK); }, kRuns);
      double dogma_ms =
          AverageMillis([&] { (void)dogma.Execute(qg, kTopK); }, kRuns);
      std::printf("%-5s %10.2f %10.2f %10.2f %10.2f\n", bq.name.c_str(),
                  sama_ms, sapper_ms, bounded_ms, dogma_ms);
    }
    std::printf("\n");
  }
  std::printf(
      "Shape check vs the paper's Figure 6: among the approximate systems\n"
      "Sama stays in low single-digit ms while Sapper degrades by orders of\n"
      "magnitude on match-heavy queries (Q5, Q8, Q9, Q11). The exact\n"
      "in-memory matchers (Dogma, and Bounded's pruned search) terminate\n"
      "almost instantly at this scale — often because relaxed queries give\n"
      "them nothing to enumerate; see EXPERIMENTS.md for the scale\n"
      "discussion.\n");
  return 0;
}

// Sharded scatter-gather benchmark (DESIGN.md §14, ROADMAP item 4):
// builds one single PathIndex and N-shard ShardedIndex builds over the
// same LUBM graph, runs the benchmark workload through both, and
// gates two claims before any timing is believed:
//
//   1. Byte-identity: for every query the single engine answers
//      without tripping the anytime budget, every shard count must
//      return the same answers — same scores, same tie-break order.
//      Divergence lands in summary.mismatches and fails the run.
//   2. The cross-shard bound exchange does real work: the total
//      sama_shard bound-exchange prune counter must be positive, or
//      the SharedScoreBound plumbing is dead code.
//
// Timings (per-shard-count mean latency, expansions) are reported for
// the regression gate's machine-dependent checks. --json=FILE writes
// the artifact gated by tools/check_bench_regression.py --mode=shard.
//
// Scale: --universities=N drives the LUBM generator (each university
// is a few hundred triples; N≈30000 crosses 10M triples for cluster-
// scale runs). The committed baseline uses a laptop-sized N so CI
// stays in seconds.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/engine.h"
#include "datasets/lubm.h"
#include "datasets/queries.h"
#include "graph/data_graph.h"
#include "index/path_index.h"
#include "query/sparql.h"
#include "shard/sharded_engine.h"
#include "shard/sharded_index.h"
#include "text/thesaurus.h"

namespace sama {
namespace bench {
namespace {

using Clock = std::chrono::steady_clock;

struct Options {
  size_t universities = 5;
  std::vector<size_t> shard_counts = {2, 4};
  size_t k = 5;
  size_t threads = 1;
  // Ample so the workload's exact queries finish untruncated and the
  // identity check is contractual, not vacuous (the carve-out below
  // skips queries even this budget cannot finish).
  uint64_t max_expansions = 2000000;
  std::string json_path;
};

// Lossless answer-list signature: scores via %.17g round-trip exactly,
// order preserved, so any tie-break divergence changes the bytes.
std::string Signature(const std::vector<Answer>& answers) {
  std::string out;
  char buf[96];
  for (const Answer& a : answers) {
    std::snprintf(buf, sizeof(buf), "%.17g|%.17g|%.17g|", a.score,
                  a.lambda_total, a.psi_total);
    out += buf;
    for (size_t i = 0; i < a.parts.size(); ++i) {
      out += std::to_string(a.query_path_index[i]);
      out += ':';
      out += std::to_string(a.parts[i].id);
      out += ',';
    }
    out += a.consistent ? ";ok\n" : ";inconsistent\n";
  }
  return out;
}

struct QueryRow {
  std::string name;
  bool truncated_skipped = false;
  double single_ms = 0;
  std::vector<uint8_t> match;      // Parallel to shard_counts.
  std::vector<double> sharded_ms;  // Parallel to shard_counts.
};

struct ShardRun {
  size_t shards = 0;
  double mean_ms = 0;
  uint64_t expansions = 0;
  uint64_t bound_exchange_prunes = 0;
  uint64_t degraded = 0;
};

std::string TempDir(const std::string& tag) {
  std::string dir = (std::filesystem::temp_directory_path() /
                     ("sama_bench_shard_" + tag))
                        .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

int Run(const Options& options) {
  LubmConfig config;
  config.universities = options.universities;
  std::fprintf(stderr, "generating LUBM (%zu universities)...\n",
               options.universities);
  DataGraph graph = DataGraph::FromTriples(GenerateLubm(config));
  Thesaurus thesaurus = Thesaurus::BuiltinEnglish();

  std::fprintf(stderr, "building single index...\n");
  PathIndex single_index;
  Status built = single_index.Build(graph, PathIndexOptions());
  if (!built.ok()) {
    std::fprintf(stderr, "index build failed: %s\n",
                 built.ToString().c_str());
    return 1;
  }

  EngineOptions engine_options;
  engine_options.num_threads = options.threads;
  engine_options.search.max_expansions = options.max_expansions;
  SamaEngine single(&graph, &single_index, &thesaurus, engine_options);

  // One sharded build + engine per shard count, over temp dirs the
  // process cleans on the next run.
  std::vector<std::unique_ptr<ShardedIndex>> indexes;
  std::vector<std::unique_ptr<ShardedEngine>> engines;
  for (size_t shards : options.shard_counts) {
    std::string dir = TempDir(std::to_string(shards));
    ShardedIndexOptions sopts;
    sopts.num_shards = shards;
    sopts.num_threads = options.threads == 0 ? 0 : options.threads;
    std::fprintf(stderr, "building %zu-shard index in %s...\n", shards,
                 dir.c_str());
    Status s = BuildShardedIndex(graph, dir, sopts);
    if (!s.ok()) {
      std::fprintf(stderr, "sharded build failed: %s\n",
                   s.ToString().c_str());
      return 1;
    }
    auto index = std::make_unique<ShardedIndex>();
    s = index->Open(&graph, dir, /*strict=*/true);
    if (!s.ok()) {
      std::fprintf(stderr, "sharded open failed: %s\n",
                   s.ToString().c_str());
      return 1;
    }
    engines.push_back(std::make_unique<ShardedEngine>(
        &graph, index.get(), &thesaurus, engine_options));
    indexes.push_back(std::move(index));
  }

  std::vector<BenchmarkQuery> queries = MakeLubmQueries();
  std::vector<QueryRow> rows;
  std::vector<ShardRun> runs(options.shard_counts.size());
  for (size_t i = 0; i < runs.size(); ++i) {
    runs[i].shards = options.shard_counts[i];
  }
  uint64_t mismatches = 0;
  size_t compared = 0, skipped = 0;
  double single_total_ms = 0;

  for (const BenchmarkQuery& q : queries) {
    auto parsed = ParseSparql(q.sparql);
    if (!parsed.ok()) {
      std::fprintf(stderr, "query %s does not parse: %s\n", q.name.c_str(),
                   parsed.status().ToString().c_str());
      return 1;
    }
    QueryRow row;
    row.name = q.name;

    QueryStats serial_stats;
    Clock::time_point t0 = Clock::now();
    auto serial = single.ExecuteSparql(*parsed, options.k, &serial_stats);
    row.single_ms = std::chrono::duration<double, std::milli>(
                        Clock::now() - t0)
                        .count();
    if (!serial.ok()) {
      std::fprintf(stderr, "query %s failed: %s\n", q.name.c_str(),
                   serial.status().ToString().c_str());
      return 1;
    }
    single_total_ms += row.single_ms;
    // Anytime carve-out: when the single engine truncates, its answer
    // set is an artifact of ITS budget spend; N shards have N budgets,
    // so byte-identity is not contractual (DESIGN.md §14). The query
    // still runs and is timed on every engine.
    row.truncated_skipped = serial_stats.search_truncated;
    const std::string want = Signature(*serial);

    for (size_t e = 0; e < engines.size(); ++e) {
      QueryStats stats;
      t0 = Clock::now();
      auto got = engines[e]->ExecuteSparql(*parsed, options.k, &stats);
      double ms = std::chrono::duration<double, std::milli>(
                      Clock::now() - t0)
                      .count();
      if (!got.ok()) {
        std::fprintf(stderr, "query %s (%zu shards) failed: %s\n",
                     q.name.c_str(), runs[e].shards,
                     got.status().ToString().c_str());
        return 1;
      }
      runs[e].mean_ms += ms;
      runs[e].expansions += stats.search_expansions;
      runs[e].bound_exchange_prunes += stats.search_shared_bound_pruned;
      runs[e].degraded += stats.shards_degraded;
      row.sharded_ms.push_back(ms);
      bool match = true;
      if (!row.truncated_skipped) {
        match = Signature(*got) == want;
        if (!match) {
          ++mismatches;
          std::fprintf(stderr,
                       "MISMATCH: %s diverges at %zu shard(s)\n",
                       q.name.c_str(), runs[e].shards);
        }
      }
      row.match.push_back(match ? 1 : 0);
    }
    row.truncated_skipped ? ++skipped : ++compared;
    rows.push_back(std::move(row));
  }
  uint64_t total_prunes = 0;
  for (ShardRun& run : runs) {
    run.mean_ms /= static_cast<double>(queries.size());
    total_prunes += run.bound_exchange_prunes;
  }
  const double single_mean_ms =
      single_total_ms / static_cast<double>(queries.size());

  std::printf("shard bench: %zu queries (%zu byte-compared, %zu truncated-"
              "skipped), %llu mismatch(es)\n",
              queries.size(), compared, skipped,
              static_cast<unsigned long long>(mismatches));
  std::printf("  single index: mean %.2f ms\n", single_mean_ms);
  for (const ShardRun& run : runs) {
    std::printf("  %zu shard(s): mean %.2f ms, %llu expansion(s), "
                "%llu bound-exchange prune(s), %llu degraded\n",
                run.shards, run.mean_ms,
                static_cast<unsigned long long>(run.expansions),
                static_cast<unsigned long long>(run.bound_exchange_prunes),
                static_cast<unsigned long long>(run.degraded));
  }
  if (total_prunes == 0) {
    std::fprintf(stderr, "bound-exchange pruning never fired; the "
                 "cross-shard bound is dead code\n");
  }

  if (!options.json_path.empty()) {
    std::FILE* f = std::fopen(options.json_path.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", options.json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"shard\",\n");
    std::fprintf(f, "  \"universities\": %zu,\n", options.universities);
    std::fprintf(f, "  \"k\": %zu,\n  \"threads\": %zu,\n", options.k,
                 options.threads);
    std::fprintf(f,
                 "  \"summary\": {\"mismatches\": %llu, "
                 "\"bound_exchange_prunes\": %llu, "
                 "\"queries_compared\": %zu, "
                 "\"queries_truncated_skipped\": %zu, "
                 "\"single_mean_ms\": %.4f},\n",
                 static_cast<unsigned long long>(mismatches),
                 static_cast<unsigned long long>(total_prunes), compared,
                 skipped, FiniteOr(single_mean_ms));
    std::fprintf(f, "  \"shard_runs\": [\n");
    for (size_t i = 0; i < runs.size(); ++i) {
      std::fprintf(f,
                   "    {\"shards\": %zu, \"mean_ms\": %.4f, "
                   "\"expansions\": %llu, \"bound_exchange_prunes\": %llu, "
                   "\"degraded\": %llu}%s\n",
                   runs[i].shards, FiniteOr(runs[i].mean_ms),
                   static_cast<unsigned long long>(runs[i].expansions),
                   static_cast<unsigned long long>(
                       runs[i].bound_exchange_prunes),
                   static_cast<unsigned long long>(runs[i].degraded),
                   i + 1 < runs.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"queries\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      const QueryRow& row = rows[i];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"truncated_skipped\": %s, "
                   "\"single_ms\": %.4f, \"matches\": [",
                   row.name.c_str(),
                   row.truncated_skipped ? "true" : "false",
                   FiniteOr(row.single_ms));
      for (size_t j = 0; j < row.match.size(); ++j) {
        std::fprintf(f, "%s%s", j ? ", " : "",
                     row.match[j] ? "true" : "false");
      }
      std::fprintf(f, "]}%s\n", i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", options.json_path.c_str());
  }
  return mismatches == 0 && total_prunes > 0 ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace sama

int main(int argc, char** argv) {
  sama::bench::Options options;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      size_t n = std::strlen(prefix);
      return std::strncmp(arg, prefix, n) == 0 ? arg + n : nullptr;
    };
    if (const char* v = value("--universities=")) {
      options.universities = std::strtoul(v, nullptr, 10);
    } else if (const char* v = value("--shards=")) {
      options.shard_counts.clear();
      std::string spec = v;
      for (size_t pos = 0; pos <= spec.size();) {
        size_t comma = spec.find(',', pos);
        if (comma == std::string::npos) comma = spec.size();
        if (comma > pos) {
          options.shard_counts.push_back(
              std::strtoul(spec.substr(pos, comma - pos).c_str(), nullptr,
                           10));
        }
        pos = comma + 1;
      }
    } else if (const char* v = value("--k=")) {
      options.k = std::strtoul(v, nullptr, 10);
    } else if (const char* v = value("--threads=")) {
      options.threads = std::strtoul(v, nullptr, 10);
    } else if (const char* v = value("--max-expansions=")) {
      options.max_expansions = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--json=")) {
      options.json_path = v;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--universities=N] [--shards=N,N,...] "
                   "[--k=N] [--threads=N] [--max-expansions=N] "
                   "[--json=FILE]\n",
                   argv[0]);
      return 2;
    }
  }
  if (options.universities == 0 || options.shard_counts.empty()) {
    std::fprintf(stderr, "invalid --universities/--shards\n");
    return 2;
  }
  for (size_t s : options.shard_counts) {
    if (s == 0) {
      std::fprintf(stderr, "--shards entries must be >= 1\n");
      return 2;
    }
  }
  return sama::bench::Run(options);
}

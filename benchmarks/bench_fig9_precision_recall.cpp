// Figure 9 — interpolated precision/recall on LUBM: Sama split by |Q|
// group ([1,4], [5,10], [11,17]) against DOGMA, BOUNDED and SAPPER.
//
// Ground truth per query = exact answers of its strict twin (DESIGN.md
// substitution for the paper's domain experts). Each system's ranked
// answer tuples produce a P/R curve; curves are 11-point interpolated
// and averaged per series.
//
// Expected shape (paper): small-|Q| Sama has the highest precision band
// (~0.5–0.8); precision decreases as |Q| grows but stays usable; the
// competitors' precision collapses at high recall (Bounded/Dogma find
// nothing relaxed, Sapper is noisy).

#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "baselines/bounded.h"
#include "baselines/dogma.h"
#include "baselines/exact.h"
#include "baselines/sapper.h"
#include "bench_util.h"
#include "datasets/queries.h"
#include "eval/metrics.h"
#include "query/sparql.h"

namespace {

using sama::PrecisionRecallPoint;
using sama::bench::LubmEnv;

// Averages several 11-point curves pointwise.
std::vector<PrecisionRecallPoint> AverageCurves(
    const std::vector<std::vector<PrecisionRecallPoint>>& curves) {
  std::vector<PrecisionRecallPoint> out(11);
  for (int i = 0; i < 11; ++i) {
    out[i].recall = i / 10.0;
    double sum = 0;
    for (const auto& c : curves) sum += c[i].precision;
    out[i].precision = curves.empty() ? 0 : sum / curves.size();
  }
  return out;
}

void PrintCurve(const std::string& name,
                const std::vector<PrecisionRecallPoint>& curve) {
  std::printf("%-16s", name.c_str());
  for (const PrecisionRecallPoint& p : curve) {
    std::printf(" %5.2f", p.precision);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  size_t universities =
      static_cast<size_t>(2 * sama::bench::EnvScale()) + 1;
  LubmEnv env =
      sama::bench::MakeLubmEnv(universities, /*on_disk=*/false, "fig9");
  std::printf("Figure 9: 11-point interpolated precision at recall "
              "0.0..1.0 (LUBM, %zu triples)\n\n",
              env.graph->edge_count());

  sama::MatcherOptions limits;
  limits.max_steps = 500000;
  limits.max_matches = 2000;
  sama::SapperMatcher::Options sapper_options;
  sapper_options.limits = limits;
  sama::SapperMatcher sapper(env.graph.get(), sapper_options);
  sama::BoundedMatcher::Options bounded_options;
  bounded_options.limits = limits;
  sama::BoundedMatcher bounded(env.graph.get(), bounded_options);
  sama::DogmaMatcher::Options dogma_options;
  dogma_options.limits = limits;
  sama::DogmaMatcher dogma(env.graph.get(), dogma_options);
  sama::ExactMatcher exact(env.graph.get(), limits);

  sama::EngineOptions sama_options;
  sama_options.search.k = 2000;
  sama_options.search.max_expansions = 2000000;
  sama::SamaEngine engine(env.graph.get(), env.index.get(),
                          &env.thesaurus, sama_options);

  // Per-series curve collections.
  std::map<std::string, std::vector<std::vector<PrecisionRecallPoint>>>
      series;

  for (const sama::BenchmarkQuery& bq : sama::MakeLubmQueries()) {
    auto parsed = sama::ParseSparql(bq.sparql);
    auto strict = sama::ParseSparql(bq.strict_sparql);
    if (!parsed.ok() || !strict.ok()) continue;
    sama::QueryGraph qg = parsed->ToQueryGraph(env.graph->shared_dict());
    sama::QueryGraph strict_qg =
        strict->ToQueryGraph(env.graph->shared_dict());

    sama::RelevantSet truth;
    auto truth_matches = exact.Execute(strict_qg, 0);
    if (truth_matches.ok()) {
      for (const sama::Match& m : *truth_matches) {
        truth.Add(m.BindingTuple(parsed->select_vars));
      }
    }
    if (truth.empty()) continue;  // Nothing to measure against.

    // Duplicate binding tuples (several combinations yielding the same
    // variable assignment) are collapsed to their best-ranked
    // occurrence before scoring the curve.
    auto to_curve =
        [&truth](const std::vector<std::vector<sama::Term>>& ranked) {
          std::vector<std::vector<sama::Term>> deduped;
          std::set<std::string> seen;
          for (const auto& tuple : ranked) {
            if (seen.insert(sama::TupleKey(tuple)).second) {
              deduped.push_back(tuple);
            }
          }
          return sama::InterpolateElevenPoints(
              sama::PrecisionRecallCurve(deduped, truth));
        };

    // Sama (ranked by score, deduplicated on the SELECT variables),
    // bucketed by the query's |Q| group.
    auto answers = engine.ExecuteSparql(*parsed, 2000);
    if (answers.ok()) {
      std::vector<std::vector<sama::Term>> ranked;
      for (const sama::Answer& a : *answers) {
        ranked.push_back(a.BindingTuple(parsed->select_vars));
      }
      std::string bucket = "Sama |Q| in [" +
                           std::to_string(bq.group_low) + "," +
                           std::to_string(bq.group_high) + "]";
      series[bucket].push_back(to_curve(ranked));
    }

    // The competitors (ranked by their own cost / discovery order).
    auto add_matches = [&](const char* name, auto& matcher) {
      auto matches = matcher.Execute(qg, 0);
      if (!matches.ok()) return;
      std::vector<std::vector<sama::Term>> ranked;
      for (const sama::Match& m : *matches) {
        ranked.push_back(m.BindingTuple(parsed->select_vars));
      }
      series[name].push_back(to_curve(ranked));
    };
    add_matches("Sapper", sapper);
    add_matches("Bounded", bounded);
    add_matches("Dogma", dogma);
  }

  std::printf("%-16s", "recall ->");
  for (int i = 0; i <= 10; ++i) std::printf(" %5.1f", i / 10.0);
  std::printf("\n");
  for (const auto& [name, curves] : series) {
    PrintCurve(name + " (" + std::to_string(curves.size()) + "q)",
               AverageCurves(curves));
  }
  std::printf(
      "\nShape check vs the paper's Figure 9: the small-|Q| Sama band "
      "dominates;\nlarger |Q| lowers Sama's precision but it remains "
      "above the competitors\nat high recall, where Bounded/Dogma drop "
      "to zero on relaxed queries.\n");
  return 0;
}

// Durable-update path benchmark (DESIGN.md §12): WAL append throughput
// in both fsync regimes, group-commit flush cost, checkpoint cost, and
// cold recovery (journal replay) speed — the numbers that bound how
// fast a writable serving node can ingest and how long it is offline
// after a crash.
//
// Phases over a disk-backed GovTrack index:
//   1. deferred appends:  --updates inserts with durable=false (the
//      group-commit regime; one FlushUpdates pays the single fsync)
//   2. durable appends:   --durable-updates inserts with durable=true
//      (an fsync per ack — the floor a per-request durability client
//      sees)
//   3. checkpoint:        one CheckpointUpdates over the applied state
//   4. recovery:          more deferred appends (so the journal has a
//      tail past the checkpoint), tear the engine down, reopen + replay
//
// Every phase is gated on correctness before timing is believed: the
// recovered LSN must equal the number of appends, and the verifier
// must report the store clean after recovery. --json=FILE writes the
// artifact gated by tools/check_bench_regression.py --mode=wal.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/engine.h"
#include "datasets/govtrack.h"
#include "index/index_verify.h"
#include "index/path_index.h"
#include "text/thesaurus.h"

namespace sama {
namespace bench {
namespace {

using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

struct Options {
  size_t updates = 2000;          // Deferred-fsync appends (phase 1).
  size_t durable_updates = 128;   // Fsync-per-ack appends (phase 2).
  size_t recovery_updates = 512;  // Journal tail replayed in phase 4.
  size_t segment_bytes = 1 << 20;
  uint64_t seed = 42;
  std::string json_path;
};

Term Gov(const std::string& local) {
  return Term::Iri("http://gov.example.org/" + local);
}

// Insert-only workload: brand-new persons attached to the base bills
// (new sources, so every append exercises real incremental index
// maintenance, not no-ops). Deletes are covered by the torture tests;
// a throughput bench wants a uniform op.
std::vector<TripleUpdate> MakeWorkload(uint64_t seed, size_t n,
                                       const char* tag) {
  const std::vector<Term> bills = {Gov("B1432"), Gov("B0532"),
                                   Gov("B0045")};
  std::vector<TripleUpdate> ops;
  ops.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    uint64_t r = seed * 6364136223846793005ull + i;
    Triple t{Gov(std::string(tag) + std::to_string(i)),
             r % 2 == 0 ? Gov("sponsor") : Gov("gender"), Term()};
    t.object = t.predicate == Gov("gender") ? Term::Literal("Male")
                                            : bills[r % bills.size()];
    ops.push_back({TripleUpdate::Op::kInsert, t});
  }
  return ops;
}

uint64_t WalDirBytes(const std::string& index_dir) {
  uint64_t total = 0;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(index_dir + "/wal", ec)) {
    if (entry.is_regular_file()) total += entry.file_size();
  }
  return total;
}

// Applies `ops` with the given durability, dying on the first failure
// (a failed append invalidates every number downstream of it).
void ApplyAll(const SamaEngine& engine, std::vector<TripleUpdate> ops,
              bool durable, const char* phase) {
  for (TripleUpdate& op : ops) {
    op.durable = durable;
    auto lsn = engine.ApplyUpdate(op);
    if (!lsn.ok()) {
      std::fprintf(stderr, "%s append failed: %s\n", phase,
                   lsn.status().ToString().c_str());
      std::exit(1);
    }
  }
}

struct Summary {
  size_t updates = 0;            // Total appends across all phases.
  double appends_per_sec = 0;    // Phase 1 (deferred fsync).
  double flush_ms = 0;           // The one group-commit fsync.
  double durable_appends_per_sec = 0;  // Phase 2 (fsync per ack).
  double checkpoint_ms = 0;
  double recovery_ms = 0;        // Cold Open + EnableUpdates replay.
  double replay_mb_per_sec = 0;  // Journal-tail bytes over recovery.
  uint64_t wal_tail_bytes = 0;   // Bytes the recovery had to replay.
  size_t replay_errors = 0;      // Lost/extra LSNs + verify findings.
};

void WriteJson(const std::string& path, const Options& options,
               const Summary& s) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f,
               "{\n  \"bench\": \"wal\",\n"
               "  \"segment_bytes\": %zu,\n  \"seed\": %llu,\n"
               "  \"summary\": {\n"
               "    \"updates\": %zu,\n"
               "    \"appends_per_sec\": %.2f,\n"
               "    \"flush_ms\": %.4f,\n"
               "    \"durable_appends_per_sec\": %.2f,\n"
               "    \"checkpoint_ms\": %.4f,\n"
               "    \"recovery_ms\": %.4f,\n"
               "    \"replay_mb_per_sec\": %.2f,\n"
               "    \"wal_tail_bytes\": %llu,\n"
               "    \"replay_errors\": %zu\n  },\n"
               "  \"queries\": []\n}\n",
               options.segment_bytes,
               static_cast<unsigned long long>(options.seed),
               s.updates, FiniteOr(s.appends_per_sec),
               FiniteOr(s.flush_ms),
               FiniteOr(s.durable_appends_per_sec),
               FiniteOr(s.checkpoint_ms), FiniteOr(s.recovery_ms),
               FiniteOr(s.replay_mb_per_sec),
               static_cast<unsigned long long>(s.wal_tail_bytes),
               s.replay_errors);
  std::fclose(f);
}

int Run(const Options& options) {
  std::string dir = (std::filesystem::temp_directory_path() /
                     "sama_bench_wal")
                        .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  DataGraph graph = DataGraph::FromTriples(GovTrackFigure1Triples());
  PathIndexOptions po;
  po.dir = dir;
  auto index = std::make_unique<PathIndex>();
  Status built = index->Build(graph, po);
  if (!built.ok()) {
    std::fprintf(stderr, "index build failed: %s\n",
                 built.ToString().c_str());
    return 1;
  }
  Thesaurus thesaurus = Thesaurus::BuiltinEnglish();
  auto engine = std::make_unique<SamaEngine>(&graph, index.get(),
                                             &thesaurus);
  UpdateOptions uo;
  uo.segment_bytes = options.segment_bytes;
  uo.checkpoint_every = 0;  // Checkpoints are timed explicitly.
  Status enabled = engine->EnableUpdates(&graph, index.get(), uo);
  if (!enabled.ok()) {
    std::fprintf(stderr, "EnableUpdates failed: %s\n",
                 enabled.ToString().c_str());
    return 1;
  }

  Summary summary;

  // Phase 1: deferred-fsync appends, then the one group-commit flush.
  std::fprintf(stderr, "phase 1: %zu deferred appends...\n",
               options.updates);
  {
    auto ops = MakeWorkload(options.seed, options.updates, "Pd");
    Clock::time_point t0 = Clock::now();
    ApplyAll(*engine, std::move(ops), /*durable=*/false, "deferred");
    double ms = MillisSince(t0);
    summary.appends_per_sec =
        ms > 0 ? options.updates / (ms / 1000.0) : 0;
    t0 = Clock::now();
    Status flushed = engine->FlushUpdates();
    summary.flush_ms = MillisSince(t0);
    if (!flushed.ok()) {
      std::fprintf(stderr, "flush failed: %s\n",
                   flushed.ToString().c_str());
      return 1;
    }
  }

  // Phase 2: fsync-per-ack appends.
  std::fprintf(stderr, "phase 2: %zu durable appends...\n",
               options.durable_updates);
  {
    auto ops =
        MakeWorkload(options.seed + 1, options.durable_updates, "Ps");
    Clock::time_point t0 = Clock::now();
    ApplyAll(*engine, std::move(ops), /*durable=*/true, "durable");
    double ms = MillisSince(t0);
    summary.durable_appends_per_sec =
        ms > 0 ? options.durable_updates / (ms / 1000.0) : 0;
  }

  // Phase 3: checkpoint everything applied so far, so the recovery
  // phase replays exactly the tail written after it.
  std::fprintf(stderr, "phase 3: checkpoint...\n");
  {
    Clock::time_point t0 = Clock::now();
    Status ck = engine->CheckpointUpdates();
    summary.checkpoint_ms = MillisSince(t0);
    if (!ck.ok()) {
      std::fprintf(stderr, "checkpoint failed: %s\n",
                   ck.ToString().c_str());
      return 1;
    }
  }

  // Phase 4: a journal tail past the checkpoint, teardown, cold reopen.
  std::fprintf(stderr, "phase 4: recovery over %zu-record tail...\n",
               options.recovery_updates);
  uint64_t bytes_before_tail = WalDirBytes(dir);
  {
    auto ops = MakeWorkload(options.seed + 2, options.recovery_updates,
                            "Pr");
    ApplyAll(*engine, std::move(ops), /*durable=*/false, "tail");
    Status flushed = engine->FlushUpdates();
    if (!flushed.ok()) {
      std::fprintf(stderr, "tail flush failed: %s\n",
                   flushed.ToString().c_str());
      return 1;
    }
  }
  summary.wal_tail_bytes = WalDirBytes(dir) - bytes_before_tail;
  const uint64_t want_lsn = engine->last_update_lsn();
  summary.updates =
      options.updates + options.durable_updates + options.recovery_updates;
  engine.reset();
  index.reset();

  DataGraph recovered_graph =
      DataGraph::FromTriples(GovTrackFigure1Triples());
  auto recovered = std::make_unique<PathIndex>();
  SamaEngine recovered_engine(&recovered_graph, recovered.get(),
                              &thesaurus);
  {
    Clock::time_point t0 = Clock::now();
    Status opened = recovered->Open(&recovered_graph, po);
    Status replayed =
        opened.ok()
            ? recovered_engine.EnableUpdates(&recovered_graph,
                                             recovered.get(), uo)
            : opened;
    summary.recovery_ms = MillisSince(t0);
    if (!replayed.ok()) {
      std::fprintf(stderr, "recovery failed: %s\n",
                   replayed.ToString().c_str());
      return 1;
    }
  }
  summary.replay_mb_per_sec =
      summary.recovery_ms > 0
          ? (summary.wal_tail_bytes / (1024.0 * 1024.0)) /
                (summary.recovery_ms / 1000.0)
          : 0;

  // Correctness gate: no acked LSN may be missing, and the verifier
  // must find the recovered store clean.
  if (recovered_engine.last_update_lsn() != want_lsn) {
    std::fprintf(stderr, "recovered lsn %llu != acked %llu\n",
                 static_cast<unsigned long long>(
                     recovered_engine.last_update_lsn()),
                 static_cast<unsigned long long>(want_lsn));
    ++summary.replay_errors;
  }
  auto report = VerifyIndexDir(dir);
  if (!report.ok()) {
    std::fprintf(stderr, "verify failed to scan: %s\n",
                 report.status().ToString().c_str());
    ++summary.replay_errors;
  } else if (!report->clean()) {
    std::fprintf(stderr, "verify found %llu error(s) after recovery:\n%s",
                 static_cast<unsigned long long>(report->error_count()),
                 report->ToString().c_str());
    summary.replay_errors +=
        static_cast<size_t>(report->error_count()) + 1;
  }

  std::printf("updates=%zu segment_bytes=%zu\n", summary.updates,
              options.segment_bytes);
  std::printf("appends/s=%.1f (deferred, flush=%.3fms)  "
              "durable appends/s=%.1f\n",
              summary.appends_per_sec, summary.flush_ms,
              summary.durable_appends_per_sec);
  std::printf("checkpoint=%.3fms  recovery=%.3fms over %llu tail bytes "
              "(%.2f MB/s)\n",
              summary.checkpoint_ms, summary.recovery_ms,
              static_cast<unsigned long long>(summary.wal_tail_bytes),
              summary.replay_mb_per_sec);
  std::printf("replay_errors=%zu\n", summary.replay_errors);

  if (!options.json_path.empty()) {
    WriteJson(options.json_path, options, summary);
    std::printf("wrote %s\n", options.json_path.c_str());
  }
  std::filesystem::remove_all(dir);
  return summary.replay_errors == 0 ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace sama

int main(int argc, char** argv) {
  sama::bench::Options options;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      size_t n = std::strlen(prefix);
      return std::strncmp(arg, prefix, n) == 0 ? arg + n : nullptr;
    };
    if (const char* v = value("--updates=")) {
      options.updates = std::strtoul(v, nullptr, 10);
    } else if (const char* v = value("--durable-updates=")) {
      options.durable_updates = std::strtoul(v, nullptr, 10);
    } else if (const char* v = value("--recovery-updates=")) {
      options.recovery_updates = std::strtoul(v, nullptr, 10);
    } else if (const char* v = value("--segment-bytes=")) {
      options.segment_bytes = std::strtoul(v, nullptr, 10);
    } else if (const char* v = value("--seed=")) {
      options.seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--json=")) {
      options.json_path = v;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--updates=N] [--durable-updates=N] "
                   "[--recovery-updates=N] [--segment-bytes=N] "
                   "[--seed=N] [--json=FILE]\n",
                   argv[0]);
      return 2;
    }
  }
  if (options.updates == 0 || options.recovery_updates == 0) {
    std::fprintf(stderr, "invalid --updates/--recovery-updates\n");
    return 2;
  }
  return sama::bench::Run(options);
}

// Figure 7 — scalability of Sama with quadratic trendlines:
//   (a) response time vs I, the number of paths extracted from G
//       (data scale sweep);
//   (b) response time vs the number of nodes in Q (growing star/chain
//       queries, 3–23 nodes);
//   (c) response time vs the number of variables in Q (1–7, constants
//       progressively replaced by variables).
//
// Each series prints its measured points and the least-squares fit
// y = a·x² + b·x + c, mirroring the trendline equations the paper
// displays. Expected shape: mild (sub)quadratic growth in all three.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "query/sparql.h"

namespace {

using sama::bench::FitQuadratic;
using sama::bench::LubmEnv;
using sama::bench::QuadraticFit;

constexpr char kPrefix[] =
    "PREFIX ub: <http://lubm.example.org/univ-bench#>\n"
    "PREFIX d: <http://lubm.example.org/data/>\n";

// Median total latency; `stats` (optional) receives the per-phase
// breakdown of the last run — the counters are deterministic per query,
// only the wall times jitter.
double MedianQueryMillis(sama::SamaEngine* engine,
                         const sama::QueryGraph& query, int runs,
                         sama::QueryStats* stats = nullptr) {
  std::vector<double> times;
  for (int r = 0; r < runs; ++r) {
    sama::WallTimer timer;
    (void)engine->Execute(query, 10, stats);
    times.push_back(timer.ElapsedMillis());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

// Per-point phase breakdown: score-bounded search vs the exhaustive
// ablation (identical answers, different work).
struct PhasePoint {
  double cluster_ms = 0;
  double search_ms = 0;
  double noprune_ms = 0;         // Total with prune_search = false.
  double noprune_search_ms = 0;
  double pruning_ratio = 0;
};

PhasePoint MeasurePhases(sama::SamaEngine* pruned, sama::SamaEngine* noprune,
                         const sama::QueryGraph& query, int runs) {
  PhasePoint point;
  sama::QueryStats stats;
  (void)MedianQueryMillis(pruned, query, runs, &stats);
  point.cluster_ms = stats.clustering_millis;
  point.search_ms = stats.search_millis;
  point.pruning_ratio = stats.SearchPruningRatio();
  sama::QueryStats noprune_stats;
  point.noprune_ms = MedianQueryMillis(noprune, query, runs, &noprune_stats);
  point.noprune_search_ms = noprune_stats.search_millis;
  return point;
}

void PrintSeries(const char* title, const char* x_name,
                 const std::vector<double>& xs,
                 const std::vector<double>& ys,
                 const std::vector<PhasePoint>& phases) {
  std::printf("%s\n", title);
  std::printf("  %-14s %10s %10s %10s | %10s %10s %7s\n", x_name, "ms",
              "cluster", "search", "ms*", "search*", "prune%");
  for (size_t i = 0; i < xs.size(); ++i) {
    std::printf("  %-14.0f %10.3f %10.3f %10.3f | %10.3f %10.3f %6.1f%%\n",
                xs[i], ys[i], phases[i].cluster_ms, phases[i].search_ms,
                phases[i].noprune_ms, phases[i].noprune_search_ms,
                100 * phases[i].pruning_ratio);
  }
  QuadraticFit fit = FitQuadratic(xs, ys);
  std::printf("  trendline: y = %.3e*x^2 + %.3e*x + %.3e\n"
              "  (* = exhaustive-search ablation, prune_search off)\n\n",
              fit.a, fit.b, fit.c);
}

// The ablation engine: identical options except the score bound.
std::unique_ptr<sama::SamaEngine> MakeNoPruneEngine(const LubmEnv& env,
                                                    size_t threads) {
  sama::EngineOptions options;
  options.num_threads = threads;
  options.params.prune_search = false;
  return std::make_unique<sama::SamaEngine>(env.graph.get(), env.index.get(),
                                            &env.thesaurus, options);
}

// A star query around one student with `nodes` total query nodes.
std::string StarQuery(size_t nodes) {
  std::string q = std::string(kPrefix) + "SELECT ?s WHERE { ";
  q += "?s ub:memberOf ?d . ";
  size_t have = 2;
  size_t i = 0;
  while (have < nodes) {
    q += "?s ub:takesCourse ?c" + std::to_string(i) + " . ";
    ++have;
    ++i;
    if (have >= nodes) break;
    q += "?c" + std::to_string(i - 1) + " ub:x ?z" + std::to_string(i) +
         " . ";
    ++have;
  }
  q += "}";
  return q;
}

// Q5 with `vars` of its constants turned into variables (1..7).
std::string VariableQuery(size_t vars) {
  // Base: every position constant except ?s.
  std::vector<std::string> subjects = {
      "?s ub:takesCourse ?c",      // 2 vars baseline (s, c).
      "?s ub:memberOf ?d",         // +d
      "?s ub:advisor ?p",          // +p
      "?p ub:worksFor ?d2",        // +d2
      "?p ub:teacherOf ?c2",       // +c2
      "?pub ub:publicationAuthor ?p",  // +pub
  };
  std::string q = std::string(kPrefix) + "SELECT ?s WHERE { ";
  size_t have = 1;  // ?s.
  for (const std::string& pattern : subjects) {
    if (have >= vars) break;
    q += pattern + " . ";
    ++have;
  }
  if (have < 2) q += "?s a ub:FullProfessor . ";
  q += "}";
  return q;
}

}  // namespace

int main(int argc, char** argv) {
  size_t threads = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = static_cast<size_t>(std::strtoul(argv[i] + 10, nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: bench_fig7_scalability [--threads=N]  "
                   "(N=0 means all hardware threads)\n");
      return 1;
    }
  }
  std::printf("Figure 7: Sama scalability (cold numbers, median of 3, "
              "%zu thread(s))\n\n",
              threads == 0 ? sama::ThreadPool::HardwareThreads() : threads);

  // (a) time vs I = number of extracted paths: sweep the data size.
  {
    std::vector<double> xs, ys;
    std::vector<PhasePoint> phases;
    size_t base = static_cast<size_t>(sama::bench::EnvScale());
    for (size_t u : {1 * (base + 1), 2 * (base + 1), 4 * (base + 1),
                     8 * (base + 1)}) {
      LubmEnv env = sama::bench::MakeLubmEnv(u, /*on_disk=*/false,
                                             "fig7a", threads);
      auto noprune = MakeNoPruneEngine(env, threads);
      auto parsed = sama::ParseSparql(
          std::string(kPrefix) +
          "SELECT ?s WHERE { ?s ub:takesCourse ?c . ?s ub:memberOf ?d . "
          "?s ub:advisor ?p . ?p a ub:FullProfessor }");
      sama::QueryGraph qg =
          parsed->ToQueryGraph(env.graph->shared_dict());
      sama::QueryStats stats;
      (void)env.engine->Execute(qg, 10, &stats);
      double ms = MedianQueryMillis(env.engine.get(), qg, 3);
      xs.push_back(static_cast<double>(stats.num_candidate_paths));
      ys.push_back(ms);
      phases.push_back(MeasurePhases(env.engine.get(), noprune.get(), qg, 3));
    }
    PrintSeries("(a) time vs I (#extracted paths)", "I", xs, ys, phases);
  }

  // Fixed environment for (b) and (c).
  size_t universities =
      static_cast<size_t>(2 * sama::bench::EnvScale()) + 1;
  LubmEnv env = sama::bench::MakeLubmEnv(universities, /*on_disk=*/false,
                                         "fig7bc", threads);
  auto noprune = MakeNoPruneEngine(env, threads);

  // (b) time vs #nodes in Q (3..23).
  {
    std::vector<double> xs, ys;
    std::vector<PhasePoint> phases;
    for (size_t nodes = 3; nodes <= 23; nodes += 4) {
      auto parsed = sama::ParseSparql(StarQuery(nodes));
      if (!parsed.ok()) continue;
      sama::QueryGraph qg =
          parsed->ToQueryGraph(env.graph->shared_dict());
      xs.push_back(static_cast<double>(qg.num_nodes()));
      ys.push_back(MedianQueryMillis(env.engine.get(), qg, 3));
      phases.push_back(MeasurePhases(env.engine.get(), noprune.get(), qg, 3));
    }
    PrintSeries("(b) time vs #nodes in Q", "#nodes", xs, ys, phases);
  }

  // (c) time vs #variables in Q (1..7).
  {
    std::vector<double> xs, ys;
    std::vector<PhasePoint> phases;
    for (size_t vars = 1; vars <= 7; ++vars) {
      auto parsed = sama::ParseSparql(VariableQuery(vars));
      if (!parsed.ok()) continue;
      sama::QueryGraph qg =
          parsed->ToQueryGraph(env.graph->shared_dict());
      xs.push_back(static_cast<double>(qg.num_variables()));
      ys.push_back(MedianQueryMillis(env.engine.get(), qg, 3));
      phases.push_back(MeasurePhases(env.engine.get(), noprune.get(), qg, 3));
    }
    PrintSeries("(c) time vs #variables in Q", "#vars", xs, ys, phases);
  }

  std::printf(
      "Shape check vs the paper's Figure 7: time grows smoothly and at\n"
      "most quadratically along all three axes (the paper fits\n"
      "y = -6e-8x^2+0.011x+173 (a), y = -0.69x^2+29.6x+325 (b),\n"
      "y = -7.18x^2+92.7x+346 (c) at its much larger scale).\n");
  return 0;
}

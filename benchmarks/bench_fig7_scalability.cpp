// Figure 7 — scalability of Sama with quadratic trendlines:
//   (a) response time vs I, the number of paths extracted from G
//       (data scale sweep);
//   (b) response time vs the number of nodes in Q (growing star/chain
//       queries, 3–23 nodes);
//   (c) response time vs the number of variables in Q (1–7, constants
//       progressively replaced by variables).
//
// Each series prints its measured points and the least-squares fit
// y = a·x² + b·x + c, mirroring the trendline equations the paper
// displays. Expected shape: mild (sub)quadratic growth in all three.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "query/sparql.h"

namespace {

using sama::bench::FitQuadratic;
using sama::bench::LubmEnv;
using sama::bench::QuadraticFit;

constexpr char kPrefix[] =
    "PREFIX ub: <http://lubm.example.org/univ-bench#>\n"
    "PREFIX d: <http://lubm.example.org/data/>\n";

double MedianQueryMillis(sama::SamaEngine* engine,
                         const sama::QueryGraph& query, int runs) {
  std::vector<double> times;
  for (int r = 0; r < runs; ++r) {
    sama::WallTimer timer;
    (void)engine->Execute(query, 10);
    times.push_back(timer.ElapsedMillis());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

void PrintSeries(const char* title, const char* x_name,
                 const std::vector<double>& xs,
                 const std::vector<double>& ys) {
  std::printf("%s\n", title);
  std::printf("  %-14s %10s\n", x_name, "ms");
  for (size_t i = 0; i < xs.size(); ++i) {
    std::printf("  %-14.0f %10.3f\n", xs[i], ys[i]);
  }
  QuadraticFit fit = FitQuadratic(xs, ys);
  std::printf("  trendline: y = %.3e*x^2 + %.3e*x + %.3e\n\n", fit.a,
              fit.b, fit.c);
}

// A star query around one student with `nodes` total query nodes.
std::string StarQuery(size_t nodes) {
  std::string q = std::string(kPrefix) + "SELECT ?s WHERE { ";
  q += "?s ub:memberOf ?d . ";
  size_t have = 2;
  size_t i = 0;
  while (have < nodes) {
    q += "?s ub:takesCourse ?c" + std::to_string(i) + " . ";
    ++have;
    ++i;
    if (have >= nodes) break;
    q += "?c" + std::to_string(i - 1) + " ub:x ?z" + std::to_string(i) +
         " . ";
    ++have;
  }
  q += "}";
  return q;
}

// Q5 with `vars` of its constants turned into variables (1..7).
std::string VariableQuery(size_t vars) {
  // Base: every position constant except ?s.
  std::vector<std::string> subjects = {
      "?s ub:takesCourse ?c",      // 2 vars baseline (s, c).
      "?s ub:memberOf ?d",         // +d
      "?s ub:advisor ?p",          // +p
      "?p ub:worksFor ?d2",        // +d2
      "?p ub:teacherOf ?c2",       // +c2
      "?pub ub:publicationAuthor ?p",  // +pub
  };
  std::string q = std::string(kPrefix) + "SELECT ?s WHERE { ";
  size_t have = 1;  // ?s.
  for (const std::string& pattern : subjects) {
    if (have >= vars) break;
    q += pattern + " . ";
    ++have;
  }
  if (have < 2) q += "?s a ub:FullProfessor . ";
  q += "}";
  return q;
}

}  // namespace

int main(int argc, char** argv) {
  size_t threads = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = static_cast<size_t>(std::strtoul(argv[i] + 10, nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: bench_fig7_scalability [--threads=N]  "
                   "(N=0 means all hardware threads)\n");
      return 1;
    }
  }
  std::printf("Figure 7: Sama scalability (cold numbers, median of 3, "
              "%zu thread(s))\n\n",
              threads == 0 ? sama::ThreadPool::HardwareThreads() : threads);

  // (a) time vs I = number of extracted paths: sweep the data size.
  {
    std::vector<double> xs, ys;
    size_t base = static_cast<size_t>(sama::bench::EnvScale());
    for (size_t u : {1 * (base + 1), 2 * (base + 1), 4 * (base + 1),
                     8 * (base + 1)}) {
      LubmEnv env = sama::bench::MakeLubmEnv(u, /*on_disk=*/false,
                                             "fig7a", threads);
      auto parsed = sama::ParseSparql(
          std::string(kPrefix) +
          "SELECT ?s WHERE { ?s ub:takesCourse ?c . ?s ub:memberOf ?d . "
          "?s ub:advisor ?p . ?p a ub:FullProfessor }");
      sama::QueryGraph qg =
          parsed->ToQueryGraph(env.graph->shared_dict());
      sama::QueryStats stats;
      (void)env.engine->Execute(qg, 10, &stats);
      double ms = MedianQueryMillis(env.engine.get(), qg, 3);
      xs.push_back(static_cast<double>(stats.num_candidate_paths));
      ys.push_back(ms);
    }
    PrintSeries("(a) time vs I (#extracted paths)", "I", xs, ys);
  }

  // Fixed environment for (b) and (c).
  size_t universities =
      static_cast<size_t>(2 * sama::bench::EnvScale()) + 1;
  LubmEnv env = sama::bench::MakeLubmEnv(universities, /*on_disk=*/false,
                                         "fig7bc", threads);

  // (b) time vs #nodes in Q (3..23).
  {
    std::vector<double> xs, ys;
    for (size_t nodes = 3; nodes <= 23; nodes += 4) {
      auto parsed = sama::ParseSparql(StarQuery(nodes));
      if (!parsed.ok()) continue;
      sama::QueryGraph qg =
          parsed->ToQueryGraph(env.graph->shared_dict());
      xs.push_back(static_cast<double>(qg.num_nodes()));
      ys.push_back(MedianQueryMillis(env.engine.get(), qg, 3));
    }
    PrintSeries("(b) time vs #nodes in Q", "#nodes", xs, ys);
  }

  // (c) time vs #variables in Q (1..7).
  {
    std::vector<double> xs, ys;
    for (size_t vars = 1; vars <= 7; ++vars) {
      auto parsed = sama::ParseSparql(VariableQuery(vars));
      if (!parsed.ok()) continue;
      sama::QueryGraph qg =
          parsed->ToQueryGraph(env.graph->shared_dict());
      xs.push_back(static_cast<double>(qg.num_variables()));
      ys.push_back(MedianQueryMillis(env.engine.get(), qg, 3));
    }
    PrintSeries("(c) time vs #variables in Q", "#vars", xs, ys);
  }

  std::printf(
      "Shape check vs the paper's Figure 7: time grows smoothly and at\n"
      "most quadratically along all three axes (the paper fits\n"
      "y = -6e-8x^2+0.011x+173 (a), y = -0.69x^2+29.6x+325 (b),\n"
      "y = -7.18x^2+92.7x+346 (c) at its much larger scale).\n");
  return 0;
}

#ifndef SAMA_TESTS_TESTING_FIXTURES_H_
#define SAMA_TESTS_TESTING_FIXTURES_H_

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/engine.h"
#include "datasets/govtrack.h"
#include "index/path_index.h"
#include "text/thesaurus.h"

namespace sama {
namespace testing_util {

// The paper's Figure-1 environment: graph Gd, an in-memory path index,
// the builtin thesaurus, and a Sama engine — shared by the core and
// integration tests.
class GovTrackEnv {
 public:
  GovTrackEnv() {
    graph_ = std::make_unique<DataGraph>(
        DataGraph::FromTriples(GovTrackFigure1Triples()));
    index_ = std::make_unique<PathIndex>();
    PathIndexOptions options;  // In-memory.
    Status s = index_->Build(*graph_, options);
    if (!s.ok()) ADD_FAILURE() << "index build failed: " << s;
    thesaurus_ = Thesaurus::BuiltinEnglish();
    engine_ = std::make_unique<SamaEngine>(graph_.get(), index_.get(),
                                           &thesaurus_);
  }

  DataGraph& graph() { return *graph_; }
  PathIndex& index() { return *index_; }
  SamaEngine& engine() { return *engine_; }
  const Thesaurus& thesaurus() { return thesaurus_; }

  QueryGraph Query1() {
    return engine_->BuildQueryGraph(GovTrackQuery1Patterns());
  }
  QueryGraph Query2() {
    return engine_->BuildQueryGraph(GovTrackQuery2Patterns());
  }

  // Renders a stored path (e.g. "CarlaBunes-sponsor-A0056-...").
  std::string Render(const Path& p) { return p.ToString(graph_->dict()); }

 private:
  std::unique_ptr<DataGraph> graph_;
  std::unique_ptr<PathIndex> index_;
  Thesaurus thesaurus_;
  std::unique_ptr<SamaEngine> engine_;
};

}  // namespace testing_util
}  // namespace sama

#endif  // SAMA_TESTS_TESTING_FIXTURES_H_

#include "text/tokenizer.h"

#include <gtest/gtest.h>

namespace sama {
namespace {

using testing::TestWithParam;

TEST(TokenizerTest, SplitsOnNonAlnum) {
  EXPECT_EQ(TokenizeLabel("Health Care"),
            (std::vector<std::string>{"health", "care"}));
  EXPECT_EQ(TokenizeLabel("a_b-c.d"),
            (std::vector<std::string>{"a", "b", "c", "d"}));
}

TEST(TokenizerTest, SplitsCamelCase) {
  EXPECT_EQ(TokenizeLabel("AssociateProfessor"),
            (std::vector<std::string>{"associate", "professor"}));
  EXPECT_EQ(TokenizeLabel("takesCourse"),
            (std::vector<std::string>{"takes", "course"}));
  EXPECT_EQ(TokenizeLabel("subOrganizationOf"),
            (std::vector<std::string>{"sub", "organization", "of"}));
}

TEST(TokenizerTest, DigitsStayWithWord) {
  EXPECT_EQ(TokenizeLabel("A1589"), (std::vector<std::string>{"a1589"}));
  EXPECT_EQ(TokenizeLabel("Course3Dept"),
            (std::vector<std::string>{"course3", "dept"}));
}

TEST(TokenizerTest, EmptyAndSymbolOnly) {
  EXPECT_TRUE(TokenizeLabel("").empty());
  EXPECT_TRUE(TokenizeLabel("---").empty());
}

TEST(TokenizerTest, AllCapsStaysTogether) {
  EXPECT_EQ(TokenizeLabel("KEGG"), (std::vector<std::string>{"kegg"}));
}

TEST(TokenizerTest, NormalizeLabelLowercasesOnly) {
  EXPECT_EQ(NormalizeLabel("Health Care"), "health care");
  EXPECT_EQ(NormalizeLabel("A1589"), "a1589");
}

}  // namespace
}  // namespace sama

#include "text/inverted_index.h"

#include <gtest/gtest.h>

namespace sama {
namespace {

InvertedLabelIndex BuildSmall() {
  InvertedLabelIndex index;
  index.Add("Health Care", 1);
  index.Add("Health Care", 5);
  index.Add("Care Home", 2);
  index.Add("Male", 3);
  index.Add("AssociateProfessor", 4);
  index.Finish();
  return index;
}

std::vector<uint64_t> Drain(InvertedLabelIndex::Cursor c) {
  std::vector<uint64_t> out;
  for (; !c.Done(); c.Next()) out.push_back(c.Value());
  return out;
}

TEST(InvertedIndexTest, ExactLookupIsCaseInsensitive) {
  InvertedLabelIndex index = BuildSmall();
  EXPECT_EQ(Drain(index.LookupExact("health care")),
            (std::vector<uint64_t>{1, 5}));
  EXPECT_EQ(Drain(index.LookupExact("MALE")), (std::vector<uint64_t>{3}));
  EXPECT_TRUE(Drain(index.LookupExact("absent")).empty());
}

TEST(InvertedIndexTest, TokenLookupIntersects) {
  InvertedLabelIndex index = BuildSmall();
  // "care" appears in both labels; "health care" only in ids 1 and 5.
  EXPECT_EQ(index.LookupTokens("care"), (std::vector<uint64_t>{1, 2, 5}));
  EXPECT_EQ(index.LookupTokens("health care"),
            (std::vector<uint64_t>{1, 5}));
  EXPECT_TRUE(index.LookupTokens("health home").empty());
  EXPECT_TRUE(index.LookupTokens("unknown").empty());
}

TEST(InvertedIndexTest, CamelCaseTokensSearchable) {
  InvertedLabelIndex index = BuildSmall();
  EXPECT_EQ(index.LookupTokens("professor"), (std::vector<uint64_t>{4}));
  EXPECT_EQ(index.LookupTokens("associate professor"),
            (std::vector<uint64_t>{4}));
}

TEST(InvertedIndexTest, PostingsSortedAndDeduped) {
  InvertedLabelIndex index;
  index.Add("x", 9);
  index.Add("x", 3);
  index.Add("x", 9);
  index.Add("x", 1);
  index.Finish();
  EXPECT_EQ(Drain(index.LookupExact("x")), (std::vector<uint64_t>{1, 3, 9}));
}

TEST(InvertedIndexTest, CursorSeekTo) {
  InvertedLabelIndex index;
  for (uint64_t id = 0; id < 100; id += 7) index.Add("k", id);
  index.Finish();
  InvertedLabelIndex::Cursor c = index.LookupExact("k");
  c.SeekTo(50);
  ASSERT_FALSE(c.Done());
  EXPECT_EQ(c.Value(), 56u);  // First multiple of 7 >= 50.
  c.SeekTo(98);
  ASSERT_FALSE(c.Done());
  EXPECT_EQ(c.Value(), 98u);
  c.SeekTo(99);
  EXPECT_TRUE(c.Done());
}

TEST(InvertedIndexTest, SemanticLookupUsesThesaurus) {
  Thesaurus t;
  t.AddSynonyms({"male", "man"});
  InvertedLabelIndex index;
  index.Add("Man", 10);
  index.Add("Male", 11);
  index.Finish();
  EXPECT_EQ(index.LookupSemantic("male", &t),
            (std::vector<uint64_t>{10, 11}));
  EXPECT_EQ(index.LookupSemantic("male", nullptr),
            (std::vector<uint64_t>{11}));
}

TEST(InvertedIndexTest, SemanticFallsBackToTokens) {
  InvertedLabelIndex index;
  index.Add("Department3 Univ0", 7);
  index.Finish();
  // No exact label "univ0", but the token matches.
  EXPECT_EQ(index.LookupSemantic("Univ0", nullptr),
            (std::vector<uint64_t>{7}));
}

TEST(InvertedIndexTest, StatsAndMemory) {
  InvertedLabelIndex index = BuildSmall();
  EXPECT_EQ(index.distinct_labels(), 4u);
  EXPECT_GT(index.distinct_tokens(), 4u);
  EXPECT_GT(index.MemoryBytes(), 0u);
}

}  // namespace
}  // namespace sama

#include "text/thesaurus.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>

namespace sama {
namespace {

TEST(ThesaurusTest, SynonymsAreSymmetric) {
  Thesaurus t;
  t.AddSynonyms({"car", "automobile", "auto"});
  EXPECT_TRUE(t.AreSynonyms("car", "automobile"));
  EXPECT_TRUE(t.AreSynonyms("automobile", "car"));
  EXPECT_TRUE(t.AreSynonyms("auto", "automobile"));
  EXPECT_FALSE(t.AreSynonyms("car", "truck"));
}

TEST(ThesaurusTest, CaseInsensitive) {
  Thesaurus t;
  t.AddSynonyms({"Male", "Man"});
  EXPECT_TRUE(t.AreSynonyms("MALE", "man"));
}

TEST(ThesaurusTest, MergingSynsets) {
  Thesaurus t;
  t.AddSynonyms({"a", "b"});
  t.AddSynonyms({"c", "d"});
  EXPECT_FALSE(t.AreSynonyms("a", "c"));
  t.AddSynonyms({"b", "c"});  // Merges both rings.
  EXPECT_TRUE(t.AreSynonyms("a", "d"));
}

TEST(ThesaurusTest, HypernymsAreRelatedNotSynonyms) {
  Thesaurus t;
  t.AddHypernym("dog", "animal");
  EXPECT_FALSE(t.AreSynonyms("dog", "animal"));
  EXPECT_TRUE(t.AreRelated("dog", "animal"));
  EXPECT_TRUE(t.AreRelated("animal", "dog"));  // Hyponym direction too.
}

TEST(ThesaurusTest, RelatednessRespectsHopLimit) {
  Thesaurus t;
  t.AddHypernym("poodle", "dog");
  t.AddHypernym("dog", "animal");
  EXPECT_FALSE(t.AreRelated("poodle", "animal", 1));
  EXPECT_TRUE(t.AreRelated("poodle", "animal", 2));
}

TEST(ThesaurusTest, SiblingsRelatedThroughParent) {
  Thesaurus t;
  t.AddHypernym("dog", "animal");
  t.AddHypernym("cat", "animal");
  EXPECT_FALSE(t.AreRelated("dog", "cat", 1));
  EXPECT_TRUE(t.AreRelated("dog", "cat", 2));
}

TEST(ThesaurusTest, UnknownWordsNeverRelate) {
  Thesaurus t;
  t.AddSynonyms({"x", "y"});
  EXPECT_FALSE(t.AreSynonyms("x", "unknown"));
  EXPECT_FALSE(t.AreRelated("unknown", "alien"));
  EXPECT_FALSE(t.AreSynonyms("unknown", "unknown2"));
}

TEST(ThesaurusTest, SameWordIsItsOwnSynonym) {
  Thesaurus t;
  t.AddSynonyms({"solo"});
  EXPECT_TRUE(t.AreSynonyms("solo", "SOLO"));
}

TEST(ThesaurusTest, ExpandIncludesSynonymsAndNeighbours) {
  Thesaurus t;
  t.AddSynonyms({"prof", "professor"});
  t.AddHypernym("professor", "teacher");
  std::vector<std::string> expanded = t.Expand("prof");
  EXPECT_NE(std::find(expanded.begin(), expanded.end(), "professor"),
            expanded.end());
  EXPECT_NE(std::find(expanded.begin(), expanded.end(), "teacher"),
            expanded.end());
}

TEST(ThesaurusTest, ExpandUnknownWordReturnsItself) {
  Thesaurus t;
  std::vector<std::string> expanded = t.Expand("Mystery");
  ASSERT_EQ(expanded.size(), 1u);
  EXPECT_EQ(expanded[0], "mystery");
}

TEST(ThesaurusTest, LoadFromStringParsesEntries) {
  Thesaurus t;
  Status s = t.LoadFromString(
      "# my domain vocabulary\n"
      "syn: car, automobile, auto\n"
      "isa: suv, car\n"
      "\n"
      "syn: bike, bicycle\n");
  ASSERT_TRUE(s.ok()) << s;
  EXPECT_TRUE(t.AreSynonyms("car", "auto"));
  EXPECT_TRUE(t.AreRelated("suv", "automobile"));
  EXPECT_TRUE(t.AreSynonyms("bike", "bicycle"));
  EXPECT_FALSE(t.AreSynonyms("car", "bike"));
}

TEST(ThesaurusTest, LoadFromStringRejectsMalformed) {
  Thesaurus t;
  EXPECT_FALSE(t.LoadFromString("syn: onlyone\n").ok());
  EXPECT_FALSE(t.LoadFromString("isa: a, b, c\n").ok());
  EXPECT_FALSE(t.LoadFromString("whatis: a, b\n").ok());
  EXPECT_FALSE(t.LoadFromString("no colon here\n").ok());
  Status s = t.LoadFromString("syn: a, b\nbroken\n");
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("line 2"), std::string::npos);
}

TEST(ThesaurusTest, LoadFromFileRoundTrip) {
  std::string path = testing::TempDir() + "/thesaurus.txt";
  {
    std::ofstream out(path);
    out << "syn: kitten, kitty\nisa: kitten, cat\n";
  }
  Thesaurus t;
  ASSERT_TRUE(t.LoadFromFile(path).ok());
  EXPECT_TRUE(t.AreSynonyms("kitten", "kitty"));
  EXPECT_TRUE(t.AreRelated("kitty", "cat"));
  EXPECT_EQ(t.LoadFromFile("/nonexistent/thesaurus.txt").code(),
            Status::Code::kIoError);
}

TEST(ThesaurusTest, BuiltinCoversPaperVocabulary) {
  Thesaurus t = Thesaurus::BuiltinEnglish();
  EXPECT_TRUE(t.AreSynonyms("male", "man"));
  EXPECT_TRUE(t.AreSynonyms("sponsor", "backer"));
  EXPECT_TRUE(t.AreSynonyms("teacherOf", "instructs"));
  EXPECT_TRUE(t.AreSynonyms("worksFor", "employedBy"));
  EXPECT_TRUE(t.AreSynonyms("takesCourse", "attends"));
  EXPECT_TRUE(t.AreSynonyms("memberOf", "belongsTo"));
  EXPECT_TRUE(t.AreSynonyms("publicationAuthor", "authoredBy"));
  EXPECT_TRUE(t.AreRelated("professor", "teacher"));
  EXPECT_GT(t.word_count(), 50u);
}

}  // namespace
}  // namespace sama

#include <gtest/gtest.h>

#include "text/inverted_index.h"

namespace sama {
namespace {

TEST(InvertedIndexSerializeTest, RoundTripPreservesLookups) {
  InvertedLabelIndex index;
  index.Add("Health Care", 3);
  index.Add("Health Care", 1);
  index.Add("AssociateProfessor", 42);
  index.Add("Male", 7);
  index.Finish();

  std::vector<uint8_t> blob;
  index.Serialize(&blob);

  InvertedLabelIndex restored;
  size_t pos = 0;
  ASSERT_TRUE(restored.Deserialize(blob, &pos));
  EXPECT_EQ(pos, blob.size());

  EXPECT_EQ(restored.distinct_labels(), index.distinct_labels());
  EXPECT_EQ(restored.distinct_tokens(), index.distinct_tokens());
  auto drain = [](InvertedLabelIndex::Cursor c) {
    std::vector<uint64_t> out;
    for (; !c.Done(); c.Next()) out.push_back(c.Value());
    return out;
  };
  EXPECT_EQ(drain(restored.LookupExact("health care")),
            (std::vector<uint64_t>{1, 3}));
  EXPECT_EQ(restored.LookupTokens("associate professor"),
            (std::vector<uint64_t>{42}));
  EXPECT_EQ(drain(restored.LookupExact("male")),
            (std::vector<uint64_t>{7}));
}

TEST(InvertedIndexSerializeTest, EmptyIndexRoundTrips) {
  InvertedLabelIndex index;
  index.Finish();
  std::vector<uint8_t> blob;
  index.Serialize(&blob);
  InvertedLabelIndex restored;
  size_t pos = 0;
  ASSERT_TRUE(restored.Deserialize(blob, &pos));
  EXPECT_EQ(restored.distinct_labels(), 0u);
}

TEST(InvertedIndexSerializeTest, TwoIndexesShareOneBuffer) {
  InvertedLabelIndex a, b;
  a.Add("alpha", 1);
  b.Add("beta", 2);
  a.Finish();
  b.Finish();
  std::vector<uint8_t> blob;
  a.Serialize(&blob);
  b.Serialize(&blob);
  InvertedLabelIndex ra, rb;
  size_t pos = 0;
  ASSERT_TRUE(ra.Deserialize(blob, &pos));
  ASSERT_TRUE(rb.Deserialize(blob, &pos));
  EXPECT_FALSE(ra.LookupExact("alpha").Done());
  EXPECT_TRUE(ra.LookupExact("beta").Done());
  EXPECT_FALSE(rb.LookupExact("beta").Done());
}

TEST(InvertedIndexSerializeTest, TruncatedBlobFails) {
  InvertedLabelIndex index;
  index.Add("some label here", 123456);
  index.Finish();
  std::vector<uint8_t> blob;
  index.Serialize(&blob);
  blob.resize(blob.size() / 2);
  InvertedLabelIndex restored;
  size_t pos = 0;
  EXPECT_FALSE(restored.Deserialize(blob, &pos));
}

TEST(InvertedIndexSerializeTest, DeterministicImage) {
  auto build = [] {
    InvertedLabelIndex index;
    index.Add("zebra", 9);
    index.Add("apple pie", 2);
    index.Add("apple", 5);
    index.Finish();
    std::vector<uint8_t> blob;
    index.Serialize(&blob);
    return blob;
  };
  EXPECT_EQ(build(), build());
}

}  // namespace
}  // namespace sama

#include "common/zipf.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/random.h"

namespace sama {
namespace {

// The bug this guards against: weights assigned by declaration
// position meant reordering a query catalogue silently reshaped the
// sampled workload. Canonical (sorted-name) rank makes the weight a
// function of the name alone.
TEST(ZipfTest, WeightsFollowCanonicalRankNotDeclarationOrder) {
  std::vector<std::string> declared = {"Q1", "Q2", "Q3", "Q4"};
  std::vector<std::string> shuffled = {"Q3", "Q1", "Q4", "Q2"};
  std::vector<double> w_declared = ZipfWeights(declared, 1.1);
  std::vector<double> w_shuffled = ZipfWeights(shuffled, 1.1);
  for (size_t i = 0; i < declared.size(); ++i) {
    for (size_t j = 0; j < shuffled.size(); ++j) {
      if (declared[i] == shuffled[j]) {
        EXPECT_DOUBLE_EQ(w_declared[i], w_shuffled[j]) << declared[i];
      }
    }
  }
  // Canonical head gets the most mass, strictly decreasing with rank,
  // and the weights normalize.
  EXPECT_GT(w_declared[0], w_declared[1]);
  EXPECT_GT(w_declared[1], w_declared[2]);
  EXPECT_GT(w_declared[2], w_declared[3]);
  double total = 0;
  for (double w : w_declared) total += w;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(ZipfTest, WeightsMatchClosedForm) {
  std::vector<std::string> names = {"a", "b", "c"};
  double s = 0.8;
  std::vector<double> w = ZipfWeights(names, s);
  double z = 1.0 + 1.0 / std::pow(2.0, s) + 1.0 / std::pow(3.0, s);
  EXPECT_DOUBLE_EQ(w[0], 1.0 / z);
  EXPECT_DOUBLE_EQ(w[1], (1.0 / std::pow(2.0, s)) / z);
  EXPECT_DOUBLE_EQ(w[2], (1.0 / std::pow(3.0, s)) / z);
}

TEST(ZipfTest, IndexForClampsAndNeverFallsOffTheEnd) {
  // Weights whose cumulative sum falls short of 1 by round-off: a draw
  // above the last cumulative value must land in the LAST bucket. The
  // linear walk this replaced fell through to the same answer only by
  // an explicit fallback; here the clamp is the contract under test.
  ZipfSampler sampler({0.3, 0.3, 0.4 - 1e-12});
  EXPECT_EQ(sampler.IndexFor(0.0), 0u);
  EXPECT_EQ(sampler.IndexFor(0.3), 1u);  // Boundary goes to the next bucket.
  EXPECT_EQ(sampler.IndexFor(0.95), 2u);
  EXPECT_EQ(sampler.IndexFor(1.0 - 1e-13), 2u);   // Inside the shortfall gap.
  EXPECT_EQ(sampler.IndexFor(std::nextafter(1.0, 0.0)), 2u);
}

TEST(ZipfTest, ZeroWeightEntriesAreNeverSampled) {
  ZipfSampler sampler({0.5, 0.0, 0.5});
  Random rng(7);
  for (int i = 0; i < 2000; ++i) {
    size_t qi = sampler.Sample(&rng);
    EXPECT_NE(qi, 1u);
    EXPECT_LT(qi, 3u);
  }
}

TEST(ZipfTest, SeededSamplingMatchesWeights) {
  std::vector<std::string> names = {"Q1", "Q2", "Q3", "Q4", "Q5"};
  std::vector<double> w = ZipfWeights(names, 1.0);
  ZipfSampler sampler(w);
  Random rng(1234);
  const int kDraws = 200000;
  std::vector<int> counts(names.size(), 0);
  for (int i = 0; i < kDraws; ++i) {
    size_t qi = sampler.Sample(&rng);
    ASSERT_LT(qi, names.size());
    ++counts[qi];
  }
  for (size_t i = 0; i < names.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / kDraws, w[i], 0.01)
        << "index " << i;
  }
  // Same seed, same stream: the draw sequence is reproducible.
  Random rng_a(99), rng_b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(sampler.Sample(&rng_a), sampler.Sample(&rng_b));
  }
}

}  // namespace
}  // namespace sama

#include "common/epoch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

namespace sama {
namespace {

// Most tests use their own manager so the global one's state (shared
// with every other test in the binary) never leaks into assertions.

TEST(EpochManagerTest, StartsAtEpochOneWithNoPins) {
  EpochManager mgr;
  EXPECT_EQ(mgr.epoch(), 1u);
  EXPECT_EQ(mgr.stats().pins, 0u);
  EXPECT_EQ(mgr.stats().pending(), 0u);
}

TEST(EpochManagerTest, GuardPinsAndUnpins) {
  EpochManager mgr;
  {
    EpochGuard guard(&mgr);
    EXPECT_EQ(mgr.stats().pins, 1u);
    // A pinned thread in the current epoch does not block advancing.
    EXPECT_TRUE(mgr.TryAdvance());
    EXPECT_EQ(mgr.epoch(), 2u);
  }
  // After unpinning the thread no longer holds any epoch.
  EXPECT_EQ(mgr.MinActiveEpoch(), mgr.epoch());
}

TEST(EpochManagerTest, NestedGuardsCountOnePin) {
  EpochManager mgr;
  {
    EpochGuard outer(&mgr);
    {
      EpochGuard inner(&mgr);
      EpochGuard deeper(&mgr);
      EXPECT_EQ(mgr.stats().pins, 1u);  // Inner guards are free.
    }
    // Still pinned: the outer guard is live.
    EXPECT_EQ(mgr.MinActiveEpoch(), 1u);
  }
  EXPECT_EQ(mgr.MinActiveEpoch(), mgr.epoch());
}

TEST(EpochManagerTest, AdvanceBlockedByStragglerThread) {
  EpochManager mgr;
  std::atomic<bool> pinned{false};
  std::atomic<bool> release{false};
  std::thread straggler([&] {
    EpochGuard guard(&mgr);
    pinned.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!pinned.load()) std::this_thread::yield();
  // The straggler pinned in epoch 1; one advance moves to 2, but a
  // second advance must wait for it to re-pin or unpin.
  EXPECT_TRUE(mgr.TryAdvance());
  EXPECT_EQ(mgr.epoch(), 2u);
  EXPECT_FALSE(mgr.TryAdvance());
  EXPECT_EQ(mgr.MinActiveEpoch(), 1u);
  release.store(true);
  straggler.join();
  EXPECT_TRUE(mgr.TryAdvance());
  EXPECT_EQ(mgr.epoch(), 3u);
}

struct CountingTarget {
  explicit CountingTarget(std::atomic<int>* counter) : counter(counter) {}
  ~CountingTarget() { counter->fetch_add(1); }
  std::atomic<int>* counter;
};

TEST(RetireListTest, DoesNotReclaimWhileReaderPinned) {
  EpochManager mgr;
  RetireList list(&mgr);
  std::atomic<int> freed{0};

  std::atomic<bool> pinned{false};
  std::atomic<bool> release{false};
  std::thread reader([&] {
    EpochGuard guard(&mgr);
    pinned.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!pinned.load()) std::this_thread::yield();

  list.Retire(new CountingTarget(&freed));
  // Hammer Reclaim: the pinned reader (epoch 1) caps MinActiveEpoch,
  // so the grace period can never pass while it is pinned.
  for (int i = 0; i < 100; ++i) list.Reclaim();
  EXPECT_EQ(freed.load(), 0);
  EXPECT_EQ(list.pending(), 1u);

  release.store(true);
  reader.join();
  // With the reader gone, a few Reclaim calls (each nudging the epoch)
  // pass the e+2 grace period and free the object.
  for (int i = 0; i < 4 && freed.load() == 0; ++i) list.Reclaim();
  EXPECT_EQ(freed.load(), 1);
  EXPECT_EQ(list.pending(), 0u);
}

TEST(RetireListTest, ReclaimRespectsGracePeriodWithoutReaders) {
  EpochManager mgr;
  RetireList list(&mgr);
  std::atomic<int> freed{0};
  list.Retire(new CountingTarget(&freed));
  // Retired at epoch e: freeing requires the epoch to pass e + 1, so
  // the first Reclaim (one advance) must keep the object alive and the
  // second (two advances) must free it.
  list.Reclaim();
  EXPECT_EQ(freed.load(), 0);
  list.Reclaim();
  EXPECT_EQ(freed.load(), 1);
}

TEST(RetireListTest, DrainAllFreesEverythingImmediately) {
  EpochManager mgr;
  std::atomic<int> freed{0};
  {
    RetireList list(&mgr);
    for (int i = 0; i < 10; ++i) list.Retire(new CountingTarget(&freed));
    EXPECT_EQ(list.DrainAll(), 10u);
    EXPECT_EQ(freed.load(), 10);
  }
  EXPECT_EQ(mgr.stats().pending(), 0u);
}

TEST(RetireListTest, DestructorDrainsPending) {
  EpochManager mgr;
  std::atomic<int> freed{0};
  {
    RetireList list(&mgr);
    list.Retire(new CountingTarget(&freed));
  }
  EXPECT_EQ(freed.load(), 1);
}

TEST(RetireListTest, InlineReclamationBoundsGarbage) {
  // No reader ever pins: the amortized TryAdvance + Reclaim inside
  // RetireRaw must keep pending garbage bounded on its own, without
  // any explicit Reclaim() call.
  EpochManager mgr;
  RetireList list(&mgr);
  std::atomic<int> freed{0};
  for (int i = 0; i < 1000; ++i) list.Retire(new CountingTarget(&freed));
  EXPECT_GT(freed.load(), 900);
  EXPECT_LT(list.pending(), 64u);
}

TEST(EpochTest, SlotsReleasedAtThreadExit) {
  EpochManager mgr;
  // Sequential short-lived threads far beyond the slot budget: if
  // thread exit leaked slots, ClaimSlot would abort the process.
  for (int round = 0; round < 600; ++round) {
    std::thread t([&] { EpochGuard guard(&mgr); });
    t.join();
  }
  EXPECT_LE(mgr.active_slots(), 1u);
}

TEST(EpochTest, ThreadExitAfterManagerDestructionIsSafe) {
  // A thread that pinned against a test-scoped manager and outlives it
  // must not touch the dead manager's slots on exit.
  std::atomic<bool> pinned{false};
  std::atomic<bool> release{false};
  auto* mgr = new EpochManager();
  std::thread t([&] {
    { EpochGuard guard(mgr); }
    pinned.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!pinned.load()) std::this_thread::yield();
  delete mgr;  // Thread still alive, TLS still caches the slot.
  release.store(true);
  t.join();  // Must not crash or write to freed memory (ASan-checked).
}

// RCU-style pointer-swap torture: readers chase an atomic pointer to
// an immutable payload under epoch guards while a writer keeps
// swapping and retiring payloads. Every read must see a payload whose
// invariant holds (a == ~b) — a use-after-free or torn publication
// breaks it (and TSan/ASan scream).
TEST(EpochTest, PointerSwapTortureNeverReadsFreedMemory) {
  struct Payload {
    uint64_t a;
    uint64_t b;  // Always ~a.
  };
  EpochManager mgr;
  RetireList list(&mgr);
  std::atomic<Payload*> current{new Payload{1, ~uint64_t{1}}};

  unsigned seed = 1234;
  if (const char* env = std::getenv("SAMA_TORTURE_SEED")) {
    seed = static_cast<unsigned>(std::stoul(env));
  }
  const int kReaders = 4;
  const int kSwaps = 2000;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> bad{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        EpochGuard guard(&mgr);
        Payload* p = current.load(std::memory_order_acquire);
        if (p->b != ~p->a) bad.fetch_add(1);
      }
    });
  }
  uint64_t value = seed;
  for (int i = 0; i < kSwaps; ++i) {
    value = value * 6364136223846793005ULL + 1442695040888963407ULL;
    Payload* fresh = new Payload{value, ~value};
    Payload* old = current.exchange(fresh, std::memory_order_acq_rel);
    list.Retire(old);
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_EQ(bad.load(), 0u);
  delete current.load();
  // The amortized inline sweep may never have succeeded while readers
  // held pins (on a single core a reader can stay pinned across every
  // 8th-retire advance attempt), so force the grace period now that no
  // pins remain: two advances age every retired payload out, and an
  // explicit Reclaim must then free them.
  mgr.TryAdvance();
  mgr.TryAdvance();
  list.Reclaim();
  EXPECT_GT(mgr.stats().reclaimed, 0u);  // Reclamation actually ran.
}

TEST(EpochTest, ConcurrentPinHammerKeepsAccounting) {
  EpochManager mgr;
  const int kThreads = 8;
  const int kPinsPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPinsPerThread; ++i) {
        EpochGuard guard(&mgr);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mgr.stats().pins,
            static_cast<uint64_t>(kThreads) * kPinsPerThread);
  EXPECT_EQ(mgr.MinActiveEpoch(), mgr.epoch());
  EXPECT_TRUE(mgr.TryAdvance());
}

}  // namespace
}  // namespace sama

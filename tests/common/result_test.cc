#include "common/result.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace sama {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r = std::vector<int>{1, 2, 3};
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto producer = [](bool fail) -> Result<int> {
    if (fail) return Status::Internal("boom");
    return 7;
  };
  auto consumer = [&](bool fail) -> Result<int> {
    SAMA_ASSIGN_OR_RETURN(int v, producer(fail));
    return v + 1;
  };
  EXPECT_EQ(consumer(false).value(), 8);
  EXPECT_EQ(consumer(true).status().code(), Status::Code::kInternal);
}

}  // namespace
}  // namespace sama

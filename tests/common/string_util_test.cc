#include "common/string_util.h"

#include <gtest/gtest.h>

namespace sama {
namespace {

TEST(StringUtilTest, TrimWhitespace) {
  EXPECT_EQ(TrimWhitespace("  hi  "), "hi");
  EXPECT_EQ(TrimWhitespace("\t\nx\r "), "x");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace("   "), "");
  EXPECT_EQ(TrimWhitespace("no-trim"), "no-trim");
}

TEST(StringUtilTest, SplitString) {
  auto parts = SplitString("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
  EXPECT_EQ(SplitString("", ',').size(), 1u);
}

TEST(StringUtilTest, JoinStrings) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ","), "");
  EXPECT_EQ(JoinStrings({"one"}, ","), "one");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("http://x", "http://"));
  EXPECT_FALSE(StartsWith("x", "http://"));
  EXPECT_TRUE(EndsWith("file.nt", ".nt"));
  EXPECT_FALSE(EndsWith("nt", "file.nt"));
}

TEST(StringUtilTest, ToLowerAscii) {
  EXPECT_EQ(ToLowerAscii("HeLLo42"), "hello42");
}

TEST(StringUtilTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512.0 B");
  EXPECT_EQ(HumanBytes(2048), "2.0 KB");
  EXPECT_EQ(HumanBytes(uint64_t{3} << 20), "3.0 MB");
  EXPECT_EQ(HumanBytes(uint64_t{5} << 30), "5.0 GB");
}

TEST(StringUtilTest, HumanMillis) {
  EXPECT_EQ(HumanMillis(250), "250 ms");
  EXPECT_EQ(HumanMillis(2500), "2.5 sec");
  EXPECT_EQ(HumanMillis(120000), "2.0 min");
}

}  // namespace
}  // namespace sama

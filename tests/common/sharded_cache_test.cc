// ShardedLruCache: hit/miss behaviour, per-shard LRU eviction, counter
// accounting (lifetime totals survive Clear — QueryStats reports
// per-query deltas of them), and a concurrent smoke test, since every
// query-side cache in the engine is an instance of this template.

#include "common/sharded_cache.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace sama {
namespace {

TEST(ShardedCacheTest, GetReturnsWhatPutStored) {
  ShardedLruCache<int, std::string> cache(/*capacity=*/16, /*shards=*/4);
  std::string value;
  EXPECT_FALSE(cache.Get(1, &value));
  cache.Put(1, "one");
  cache.Put(2, "two");
  ASSERT_TRUE(cache.Get(1, &value));
  EXPECT_EQ(value, "one");
  ASSERT_TRUE(cache.Get(2, &value));
  EXPECT_EQ(value, "two");
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ShardedCacheTest, PutOverwritesExistingKey) {
  ShardedLruCache<int, int> cache(8, 1);
  cache.Put(7, 1);
  cache.Put(7, 2);
  int value = 0;
  ASSERT_TRUE(cache.Get(7, &value));
  EXPECT_EQ(value, 2);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ShardedCacheTest, EvictsLeastRecentlyUsedWithinShard) {
  // One shard makes the LRU order global and the test deterministic.
  ShardedLruCache<int, int> cache(/*capacity=*/3, /*shards=*/1);
  cache.Put(1, 10);
  cache.Put(2, 20);
  cache.Put(3, 30);
  // Touch 1 so 2 becomes the eviction victim.
  int value = 0;
  ASSERT_TRUE(cache.Get(1, &value));
  cache.Put(4, 40);
  EXPECT_FALSE(cache.Get(2, &value));  // Evicted.
  EXPECT_TRUE(cache.Get(1, &value));
  EXPECT_TRUE(cache.Get(3, &value));
  EXPECT_TRUE(cache.Get(4, &value));
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.counters().evictions, 1u);
}

TEST(ShardedCacheTest, CountersTrackHitsMissesInsertions) {
  ShardedLruCache<int, int> cache(8, 2);
  int value = 0;
  (void)cache.Get(1, &value);  // Miss.
  cache.Put(1, 1);
  (void)cache.Get(1, &value);  // Hit.
  (void)cache.Get(2, &value);  // Miss.
  CacheCounters c = cache.counters();
  EXPECT_EQ(c.hits, 1u);
  EXPECT_EQ(c.misses, 2u);
  EXPECT_EQ(c.insertions, 1u);
  EXPECT_EQ(c.lookups(), 3u);
  EXPECT_DOUBLE_EQ(c.HitRate(), 1.0 / 3.0);
}

TEST(ShardedCacheTest, ClearEmptiesEntriesButKeepsLifetimeCounters) {
  ShardedLruCache<int, int> cache(8, 2);
  cache.Put(1, 1);
  int value = 0;
  (void)cache.Get(1, &value);
  CacheCounters before = cache.counters();
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Get(1, &value));  // Entries gone...
  CacheCounters after = cache.counters();
  EXPECT_EQ(after.hits, before.hits);  // ...counters kept (+1 miss).
  EXPECT_EQ(after.misses, before.misses + 1);
  // Delta arithmetic used by QueryStats.
  CacheCounters delta = after - before;
  EXPECT_EQ(delta.hits, 0u);
  EXPECT_EQ(delta.misses, 1u);
}

TEST(ShardedCacheTest, CapacityClampsToOneEntryPerShard) {
  ShardedLruCache<int, int> cache(0, 4);
  EXPECT_EQ(cache.capacity(), 4u);  // Minimum one slot per shard.
  cache.Put(1, 1);
  int value = 0;
  EXPECT_TRUE(cache.Get(1, &value));
  EXPECT_EQ(value, 1);
}

TEST(ShardedCacheTest, ConcurrentMixedWorkloadStaysConsistent) {
  // 8 threads hammer a small cache with overlapping key ranges; the
  // assertion is that every Get that succeeds returns the value the key
  // was stored with (never a torn/other entry) and counters balance.
  ShardedLruCache<uint64_t, uint64_t> cache(128, 8);
  constexpr int kThreads = 8;
  constexpr uint64_t kOpsPerThread = 20000;
  std::vector<std::thread> workers;
  std::atomic<uint64_t> bad_reads{0};
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, &bad_reads, t] {
      uint64_t state = 0x9e3779b97f4a7c15ULL * (t + 1);
      for (uint64_t i = 0; i < kOpsPerThread; ++i) {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        uint64_t key = (state >> 33) % 256;
        if (state & 1) {
          cache.Put(key, key * 3 + 1);
        } else {
          uint64_t value = 0;
          if (cache.Get(key, &value) && value != key * 3 + 1) {
            bad_reads.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(bad_reads.load(), 0u);
  EXPECT_LE(cache.size(), cache.capacity());
  CacheCounters c = cache.counters();
  EXPECT_EQ(c.hits + c.misses, c.lookups());
}

TEST(ShardedCacheTest, StatsAreExactUnderMultithreadedHammer) {
  // The lifetime counters are relaxed atomics updated outside any
  // lock — relaxed ordering must not cost a single increment. Readers
  // hammer a pre-filled, never-mutated cache so hit/miss outcomes are
  // deterministic: every Get of a resident key hits, every Get of an
  // absent key misses, and the totals must balance EXACTLY.
  ShardedLruCache<uint64_t, uint64_t> cache(1024, 8);
  constexpr uint64_t kResident = 256;
  for (uint64_t k = 0; k < kResident; ++k) cache.Put(k, k + 7);
  CacheCounters before = cache.counters();
  EXPECT_EQ(before.insertions, kResident);

  constexpr int kThreads = 8;
  constexpr uint64_t kOpsPerThread = 25000;
  std::atomic<uint64_t> expected_hits{0};
  std::atomic<uint64_t> bad_reads{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      uint64_t state = 0x9e3779b97f4a7c15ULL * (t + 1);
      uint64_t hits = 0;
      for (uint64_t i = 0; i < kOpsPerThread; ++i) {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        // Half the key range is resident, half can never be.
        uint64_t key = (state >> 33) % (2 * kResident);
        uint64_t value = 0;
        bool found = cache.Get(key, &value);
        if (key < kResident) {
          ++hits;
          if (!found || value != key + 7) bad_reads.fetch_add(1);
        } else if (found) {
          bad_reads.fetch_add(1);
        }
      }
      expected_hits.fetch_add(hits);
    });
  }
  for (std::thread& w : workers) w.join();

  EXPECT_EQ(bad_reads.load(), 0u);
  CacheCounters delta = cache.counters() - before;
  constexpr uint64_t kTotalGets = kThreads * kOpsPerThread;
  EXPECT_EQ(delta.lookups(), kTotalGets);  // Not one Get lost.
  EXPECT_EQ(delta.hits, expected_hits.load());
  EXPECT_EQ(delta.misses, kTotalGets - expected_hits.load());
  EXPECT_EQ(delta.insertions, 0u);
  EXPECT_EQ(delta.evictions, 0u);
}

TEST(ShardedCacheTest, LruLockSkipsCountsContendedTouches) {
  // Single-threaded the try_lock always succeeds: exact LRU, no skips.
  ShardedLruCache<int, int> cache(8, 1);
  cache.Put(1, 1);
  int value = 0;
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(cache.Get(1, &value));
  EXPECT_EQ(cache.lru_lock_skips(), 0u);

  // Under writer contention hits may skip the LRU touch, but a skip is
  // only ever a bookkeeping concession — the Gets themselves succeed.
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    int spin = 0;
    while (!stop.load(std::memory_order_acquire)) {
      cache.Put(2 + (spin++ % 4), spin);
    }
  });
  uint64_t failed_hits = 0;
  for (int i = 0; i < 50000; ++i) {
    if (!cache.Get(1, &value) || value != 1) ++failed_hits;
  }
  stop.store(true, std::memory_order_release);
  writer.join();
  EXPECT_EQ(failed_hits, 0u);  // Skips never turn hits into misses.
}

}  // namespace
}  // namespace sama

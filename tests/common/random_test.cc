#include "common/random.h"

#include <gtest/gtest.h>

#include <set>

namespace sama {
namespace {

TEST(RandomTest, DeterministicForSameSeed) {
  Random a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, DifferentSeedsDiverge) {
  Random a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RandomTest, UniformInRange) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
  }
}

TEST(RandomTest, UniformIntCoversBounds) {
  Random rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.UniformInt(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  // Mean should be near 0.5.
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.03);
}

TEST(RandomTest, BernoulliRate) {
  Random rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

}  // namespace
}  // namespace sama

#include "common/hash.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace sama {
namespace {

TEST(HashTest, Fnv1aKnownValues) {
  // Standard FNV-1a 64-bit vectors.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(Fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(HashTest, DistinctStringsDistinctHashes) {
  std::set<uint64_t> hashes;
  for (int i = 0; i < 1000; ++i) {
    hashes.insert(Fnv1a64("label" + std::to_string(i)));
  }
  EXPECT_EQ(hashes.size(), 1000u);
}

TEST(HashTest, HashCombineOrderSensitive) {
  uint64_t ab = HashCombine(HashCombine(0, 1), 2);
  uint64_t ba = HashCombine(HashCombine(0, 2), 1);
  EXPECT_NE(ab, ba);
}

}  // namespace
}  // namespace sama

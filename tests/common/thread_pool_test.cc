#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <set>
#include <stdexcept>
#include <vector>

namespace sama {
namespace {

TEST(ThreadPoolTest, HardwareThreadsIsAtLeastOne) {
  EXPECT_GE(ThreadPool::HardwareThreads(), 1u);
}

TEST(ThreadPoolTest, WorkerCountClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 1u);
}

TEST(ThreadPoolTest, SubmitRunsTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::mutex mu;
  std::condition_variable cv;
  constexpr int kTasks = 100;
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&] {
      if (counter.fetch_add(1) + 1 == kTasks) {
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30),
                          [&] { return counter.load() == kTasks; }));
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasksAndJoins) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&] { counter.fetch_add(1); });
    }
    // No wait: the destructor must run every queued task before the
    // workers exit, then join them.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelForTest, EmptyRangeIsOk) {
  ThreadPool pool(2);
  bool ran = false;
  Status s = ParallelFor(&pool, 0, [&](size_t) -> Status {
    ran = true;
    return Status::Ok();
  });
  EXPECT_TRUE(s.ok());
  EXPECT_FALSE(ran);
  // Null pool, empty range.
  EXPECT_TRUE(
      ParallelFor(nullptr, 0, [&](size_t) { return Status::Ok(); }).ok());
}

TEST(ParallelForTest, NullPoolRunsInline) {
  std::vector<int> hits(100, 0);
  Status s = ParallelFor(nullptr, hits.size(), [&](size_t i) -> Status {
    ++hits[i];
    return Status::Ok();
  });
  ASSERT_TRUE(s.ok());
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelForTest, EveryIndexRunsExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  Status s = ParallelFor(&pool, kN, [&](size_t i) -> Status {
    hits[i].fetch_add(1);
    return Status::Ok();
  });
  ASSERT_TRUE(s.ok());
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelForTest, ErrorOfLowestIndexWins) {
  ThreadPool pool(4);
  // Several indices fail; the reported error must deterministically be
  // index 3's, the lowest, regardless of which thread hit it first.
  Status s = ParallelFor(&pool, 100, [&](size_t i) -> Status {
    if (i == 3 || i == 50 || i == 99) {
      return Status::Internal("fail " + std::to_string(i));
    }
    return Status::Ok();
  });
  EXPECT_EQ(s.code(), Status::Code::kInternal);
  EXPECT_EQ(s.message(), "fail 3");
}

TEST(ParallelForTest, ExceptionsBecomeInternalStatus) {
  ThreadPool pool(2);
  Status s = ParallelFor(&pool, 10, [&](size_t i) -> Status {
    if (i == 0) throw std::runtime_error("boom");
    return Status::Ok();
  });
  EXPECT_EQ(s.code(), Status::Code::kInternal);
  EXPECT_NE(s.message().find("boom"), std::string::npos);
}

TEST(ParallelForTest, NestedParallelForDoesNotDeadlock) {
  // Inner ParallelFor calls run from worker threads while every worker
  // is already busy — the caller-participates design must make progress
  // anyway (the nested caller drains its own range).
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  Status s = ParallelFor(&pool, 8, [&](size_t) -> Status {
    return ParallelFor(&pool, 8, [&](size_t) -> Status {
      inner_total.fetch_add(1);
      return Status::Ok();
    });
  });
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(inner_total.load(), 64);
}

TEST(ParallelForTest, BusyNanosAccumulates) {
  ThreadPool pool(2);
  std::atomic<uint64_t> busy{0};
  Status s = ParallelFor(
      &pool, 16,
      [&](size_t) -> Status {
        // Spin briefly so the accumulated busy time is visibly nonzero.
        auto until =
            std::chrono::steady_clock::now() + std::chrono::milliseconds(1);
        while (std::chrono::steady_clock::now() < until) {
        }
        return Status::Ok();
      },
      &busy);
  ASSERT_TRUE(s.ok());
  // 16 iterations of >= 1ms each.
  EXPECT_GE(busy.load(), 16ull * 1000 * 1000);
}

}  // namespace
}  // namespace sama

#include "common/status.h"

#include <gtest/gtest.h>

namespace sama {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing thing");
}

TEST(StatusTest, EqualityComparesCodesOnly) {
  EXPECT_EQ(Status::IoError("a"), Status::IoError("b"));
  EXPECT_FALSE(Status::IoError("a") == Status::Corruption("a"));
}

TEST(StatusTest, AllCodesHaveDistinctNames) {
  const Status statuses[] = {
      Status::InvalidArgument(""), Status::NotFound(""),
      Status::AlreadyExists(""),   Status::OutOfRange(""),
      Status::IoError(""),         Status::Corruption(""),
      Status::ParseError(""),      Status::Unimplemented(""),
      Status::Internal(""),
  };
  std::set<std::string> names;
  for (const Status& s : statuses) names.insert(s.ToString());
  EXPECT_EQ(names.size(), std::size(statuses));
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = [] { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    SAMA_RETURN_IF_ERROR(fails());
    return Status::Ok();
  };
  EXPECT_EQ(wrapper().code(), Status::Code::kInternal);

  auto succeeds = [] { return Status::Ok(); };
  auto wrapper2 = [&]() -> Status {
    SAMA_RETURN_IF_ERROR(succeeds());
    return Status::AlreadyExists("reached end");
  };
  EXPECT_EQ(wrapper2().code(), Status::Code::kAlreadyExists);
}

}  // namespace
}  // namespace sama

#include "datasets/berlin.h"

#include <gtest/gtest.h>

#include "graph/data_graph.h"
#include "graph/path_enumerator.h"

namespace sama {
namespace {

TEST(BerlinTest, Deterministic) {
  BerlinConfig config;
  std::vector<Triple> a = GenerateBerlin(config);
  std::vector<Triple> b = GenerateBerlin(config);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(BerlinTest, OffersAndReviewsAreSources) {
  DataGraph g = DataGraph::FromTriples(GenerateBerlin(BerlinConfig()));
  size_t offers = 0, reviews = 0;
  for (NodeId n : g.Sources()) {
    std::string label = g.node_term(n).DisplayLabel();
    if (label.find("Offer") == 0) ++offers;
    if (label.find("Review") == 0) ++reviews;
  }
  BerlinConfig config;
  EXPECT_EQ(offers, config.products * config.offers_per_product);
  EXPECT_EQ(reviews, config.products * config.reviews_per_product);
}

TEST(BerlinTest, EveryProductHasTypeAndProducer) {
  BerlinConfig config;
  config.products = 20;
  std::vector<Triple> triples = GenerateBerlin(config);
  size_t type_edges = 0, producer_edges = 0;
  for (const Triple& t : triples) {
    std::string p = t.predicate.DisplayLabel();
    if (p == "productType") ++type_edges;
    if (p == "producer") ++producer_edges;
  }
  EXPECT_EQ(type_edges, 20u);
  EXPECT_EQ(producer_edges, 20u);
}

TEST(BerlinTest, PathsFlowToTypeAndCountrySinks) {
  DataGraph g = DataGraph::FromTriples(GenerateBerlin(BerlinConfig()));
  bool to_country = false, to_type = false;
  for (const Path& p : AllPaths(g)) {
    std::string sink = g.dict().term(p.sink_label()).DisplayLabel();
    if (sink.find("ProductType") == 0) to_type = true;
    if (sink.size() == 2) to_country = true;  // "DE", "US", ...
  }
  EXPECT_TRUE(to_type);
  EXPECT_TRUE(to_country);
}

TEST(BerlinTest, SizeScalesWithProducts) {
  BerlinConfig small, large;
  large.products = small.products * 4;
  EXPECT_GT(GenerateBerlin(large).size(),
            3 * GenerateBerlin(small).size());
}

}  // namespace
}  // namespace sama

#include "datasets/scale_free.h"

#include <gtest/gtest.h>

#include <map>

#include "graph/data_graph.h"

namespace sama {
namespace {

TEST(ScaleFreeTest, Deterministic) {
  ScaleFreeProfile p;
  p.num_entities = 200;
  std::vector<Triple> a = GenerateScaleFree(p);
  std::vector<Triple> b = GenerateScaleFree(p);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(ScaleFreeTest, EdgesPointOldward) {
  // The generator keeps a DAG by always linking new → old entities.
  ScaleFreeProfile p;
  p.num_entities = 300;
  p.classes.clear();
  p.attribute_fraction = 0;
  for (const Triple& t : GenerateScaleFree(p)) {
    std::string s = t.subject.DisplayLabel().substr(p.entity_prefix.size());
    std::string o = t.object.DisplayLabel().substr(p.entity_prefix.size());
    EXPECT_GT(std::stoul(s), std::stoul(o));
  }
}

TEST(ScaleFreeTest, DegreeDistributionIsSkewed) {
  ScaleFreeProfile p;
  p.num_entities = 2000;
  p.classes.clear();
  p.attribute_fraction = 0;
  DataGraph g = DataGraph::FromTriples(GenerateScaleFree(p));
  size_t max_in = 0;
  size_t nodes_with_high_in = 0;
  for (NodeId n = 0; n < g.node_count(); ++n) {
    max_in = std::max(max_in, g.in_degree(n));
    if (g.in_degree(n) > 20) ++nodes_with_high_in;
  }
  // Preferential attachment: a few heavy hubs, most nodes light.
  EXPECT_GT(max_in, 40u);
  EXPECT_LT(nodes_with_high_in, g.node_count() / 20);
}

TEST(ScaleFreeTest, ClassAndAttributeTriples) {
  ScaleFreeProfile p;
  p.num_entities = 500;
  p.classes = {"Movie", "Actor"};
  p.attribute_fraction = 0.5;
  size_t types = 0, attrs = 0;
  for (const Triple& t : GenerateScaleFree(p)) {
    if (t.predicate.DisplayLabel() == "type") ++types;
    if (t.predicate.DisplayLabel() == p.attribute_label) ++attrs;
  }
  EXPECT_EQ(types, 500u);
  EXPECT_NEAR(static_cast<double>(attrs), 250.0, 60.0);
}

struct ProfileCase {
  const char* name;
  ScaleFreeProfile (*make)(double);
  double paper_triples;
};

class ProfileTest : public testing::TestWithParam<ProfileCase> {};

TEST_P(ProfileTest, HitsScaledTripleTarget) {
  const ProfileCase& c = GetParam();
  const double scale = 0.002;
  ScaleFreeProfile profile = c.make(scale);
  std::vector<Triple> triples = GenerateScaleFree(profile);
  double target = c.paper_triples * scale;
  EXPECT_GT(static_cast<double>(triples.size()), target * 0.5);
  EXPECT_LT(static_cast<double>(triples.size()), target * 1.5);
}

INSTANTIATE_TEST_SUITE_P(
    PaperProfiles, ProfileTest,
    testing::Values(ProfileCase{"pblog", &PBlogProfile, 50e3},
                    ProfileCase{"gov", &GovTrackProfile, 1e6},
                    ProfileCase{"kegg", &KeggProfile, 1e6},
                    ProfileCase{"imdb", &ImdbProfile, 6e6},
                    ProfileCase{"dblp", &DblpProfile, 26e6}),
    [](const testing::TestParamInfo<ProfileCase>& info) {
      return std::string(info.param.name);
    });

}  // namespace
}  // namespace sama

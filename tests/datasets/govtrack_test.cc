#include "datasets/govtrack.h"

#include <gtest/gtest.h>

#include "graph/data_graph.h"

namespace sama {
namespace {

TEST(GovTrackTest, TripleCountsAndShape) {
  std::vector<Triple> triples = GovTrackFigure1Triples();
  EXPECT_EQ(triples.size(), 29u);
  DataGraph g = DataGraph::FromTriples(triples);
  EXPECT_EQ(g.node_count(), 21u);
  EXPECT_EQ(g.edge_count(), 29u);
}

TEST(GovTrackTest, SevenSourcesArePeople) {
  DataGraph g = DataGraph::FromTriples(GovTrackFigure1Triples());
  for (NodeId n : g.Sources()) {
    std::string label = g.node_term(n).DisplayLabel();
    // All sources are person entities (no digits in their names).
    EXPECT_EQ(label.find_first_of("0123456789"), std::string::npos)
        << label;
  }
  EXPECT_EQ(g.Sources().size(), 7u);
}

TEST(GovTrackTest, ThreeBillsOnHealthCare) {
  DataGraph g = DataGraph::FromTriples(GovTrackFigure1Triples());
  NodeId hc = g.FindNode(Term::Literal("Health Care"));
  ASSERT_NE(hc, kInvalidNodeId);
  EXPECT_EQ(g.in_degree(hc), 3u);
}

TEST(GovTrackTest, FourMaleSponsors) {
  DataGraph g = DataGraph::FromTriples(GovTrackFigure1Triples());
  NodeId male = g.FindNode(Term::Literal("Male"));
  ASSERT_NE(male, kInvalidNodeId);
  EXPECT_EQ(g.in_degree(male), 4u);
}

TEST(GovTrackTest, Query1PatternsWellFormed) {
  std::vector<Triple> patterns = GovTrackQuery1Patterns();
  EXPECT_EQ(patterns.size(), 5u);
  // All predicates are constant in Q1.
  for (const Triple& t : patterns) {
    EXPECT_TRUE(t.predicate.is_iri());
  }
}

TEST(GovTrackTest, Query2HasVariableEdge) {
  std::vector<Triple> patterns = GovTrackQuery2Patterns();
  EXPECT_EQ(patterns.size(), 4u);
  bool has_edge_var = false;
  for (const Triple& t : patterns) {
    if (t.predicate.is_variable()) has_edge_var = true;
  }
  EXPECT_TRUE(has_edge_var);
}

}  // namespace
}  // namespace sama

#include "datasets/lubm.h"

#include <gtest/gtest.h>

#include "graph/data_graph.h"
#include "graph/path_enumerator.h"
#include "rdf/ntriples.h"

namespace sama {
namespace {

TEST(LubmTest, DeterministicForSeed) {
  LubmConfig config;
  std::vector<Triple> a = GenerateLubm(config);
  std::vector<Triple> b = GenerateLubm(config);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(LubmTest, DifferentSeedsDiffer) {
  LubmConfig a_config, b_config;
  b_config.seed = 99;
  std::vector<Triple> a = GenerateLubm(a_config);
  std::vector<Triple> b = GenerateLubm(b_config);
  EXPECT_NE(WriteNTriples(a), WriteNTriples(b));
}

TEST(LubmTest, ScalesWithUniversities) {
  LubmConfig small, large;
  large.universities = 3;
  EXPECT_GT(GenerateLubm(large).size(), 2 * GenerateLubm(small).size());
}

TEST(LubmTest, GraphHasSourcesAndSinks) {
  DataGraph g = DataGraph::FromTriples(GenerateLubm(LubmConfig()));
  EXPECT_FALSE(g.Sources().empty());
  EXPECT_FALSE(g.Sinks().empty());
  // Students and publications are sources; universities/courses/ranks
  // are sinks.
  bool student_source = false;
  for (NodeId n : g.Sources()) {
    if (g.node_term(n).DisplayLabel().find("Student") == 0) {
      student_source = true;
    }
  }
  EXPECT_TRUE(student_source);
}

TEST(LubmTest, PathEnumerationStaysBounded) {
  LubmConfig config;
  config.universities = 2;
  DataGraph g = DataGraph::FromTriples(GenerateLubm(config));
  size_t paths = AllPaths(g).size();
  // The schema bounds the paths to a small multiple of the entities.
  EXPECT_GT(paths, g.node_count() / 2);
  EXPECT_LT(paths, g.edge_count() * 4);
}

TEST(LubmTest, VocabularyUsesLubmNamespace) {
  std::vector<Triple> triples = GenerateLubm(LubmConfig());
  bool teacher_of = false;
  for (const Triple& t : triples) {
    if (t.predicate.value() ==
        std::string(kLubmNamespace) + "teacherOf") {
      teacher_of = true;
    }
  }
  EXPECT_TRUE(teacher_of);
}

TEST(UobmTest, AddsCrossLinksOverLubm) {
  LubmConfig config;
  config.universities = 2;
  std::vector<Triple> lubm = GenerateLubm(config);
  std::vector<Triple> uobm = GenerateUobm(config);
  EXPECT_GT(uobm.size(), lubm.size());
  bool friendship = false;
  for (const Triple& t : uobm) {
    if (t.predicate.value() ==
        std::string(kLubmNamespace) + "isFriendOf") {
      friendship = true;
    }
  }
  EXPECT_TRUE(friendship);
}

}  // namespace
}  // namespace sama

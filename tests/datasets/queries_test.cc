#include "datasets/queries.h"

#include <gtest/gtest.h>

#include <set>

#include "query/sparql.h"

namespace sama {
namespace {

TEST(QueriesTest, TwelveQueries) {
  std::vector<BenchmarkQuery> queries = MakeLubmQueries();
  ASSERT_EQ(queries.size(), 12u);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(queries[i].name, "Q" + std::to_string(i + 1));
  }
}

TEST(QueriesTest, AllParseAsSparql) {
  for (const BenchmarkQuery& q : MakeLubmQueries()) {
    auto parsed = ParseSparql(q.sparql);
    EXPECT_TRUE(parsed.ok()) << q.name << ": " << parsed.status();
  }
}

TEST(QueriesTest, PathCountsMatchDeclaredGroups) {
  // Figure 9 buckets queries by |Q| (the number of query paths):
  // [1,4], [5,10] and [11,17].
  for (const BenchmarkQuery& q : MakeLubmQueries()) {
    auto parsed = ParseSparql(q.sparql);
    ASSERT_TRUE(parsed.ok()) << q.name;
    QueryGraph graph = parsed->ToQueryGraph();
    int paths = static_cast<int>(graph.paths().size());
    EXPECT_GE(paths, q.group_low) << q.name;
    EXPECT_LE(paths, q.group_high) << q.name;
  }
}

TEST(QueriesTest, AllThreeGroupsCovered) {
  std::set<std::pair<int, int>> groups;
  for (const BenchmarkQuery& q : MakeLubmQueries()) {
    groups.insert({q.group_low, q.group_high});
  }
  EXPECT_EQ(groups, (std::set<std::pair<int, int>>{
                        {1, 4}, {5, 10}, {11, 17}}));
}

TEST(QueriesTest, ComplexityIncreases) {
  std::vector<BenchmarkQuery> queries = MakeLubmQueries();
  auto parsed_first = ParseSparql(queries.front().sparql);
  auto parsed_last = ParseSparql(queries.back().sparql);
  ASSERT_TRUE(parsed_first.ok());
  ASSERT_TRUE(parsed_last.ok());
  EXPECT_GT(parsed_last->patterns.size(), parsed_first->patterns.size());
  QueryGraph g_first = parsed_first->ToQueryGraph();
  QueryGraph g_last = parsed_last->ToQueryGraph();
  EXPECT_GT(g_last.num_variables(), g_first.num_variables());
  EXPECT_GT(g_last.num_nodes(), g_first.num_nodes());
}

TEST(QueriesTest, RelaxedQueriesFlagged) {
  size_t relaxed = 0;
  for (const BenchmarkQuery& q : MakeLubmQueries()) {
    if (q.relaxed) ++relaxed;
  }
  // Q6, Q7 and Q11 use synonyms or structural relaxation.
  EXPECT_EQ(relaxed, 3u);
}

TEST(QueriesTest, VariableCountsSpanFigure7cRange) {
  // Figure 7(c) sweeps 1..7 variables; the workload must cover a wide
  // range.
  size_t max_vars = 0, min_vars = 100;
  for (const BenchmarkQuery& q : MakeLubmQueries()) {
    auto parsed = ParseSparql(q.sparql);
    ASSERT_TRUE(parsed.ok());
    QueryGraph graph = parsed->ToQueryGraph();
    max_vars = std::max(max_vars, graph.num_variables());
    min_vars = std::min(min_vars, graph.num_variables());
  }
  EXPECT_LE(min_vars, 2u);
  EXPECT_GE(max_vars, 7u);
}

TEST(BerlinQueriesTest, SixQueriesParseAndDecompose) {
  std::vector<BenchmarkQuery> queries = MakeBerlinQueries();
  ASSERT_EQ(queries.size(), 6u);
  for (const BenchmarkQuery& q : queries) {
    auto parsed = ParseSparql(q.sparql);
    ASSERT_TRUE(parsed.ok()) << q.name << ": " << parsed.status();
    auto strict = ParseSparql(q.strict_sparql);
    ASSERT_TRUE(strict.ok()) << q.name;
    QueryGraph graph = parsed->ToQueryGraph();
    EXPECT_GE(static_cast<int>(graph.paths().size()), q.group_low)
        << q.name;
    EXPECT_LE(static_cast<int>(graph.paths().size()), q.group_high)
        << q.name;
  }
}

TEST(BerlinQueriesTest, RelaxedQueriesHaveDistinctStrictTwins) {
  size_t relaxed = 0;
  for (const BenchmarkQuery& q : MakeBerlinQueries()) {
    if (q.relaxed) {
      ++relaxed;
      EXPECT_NE(q.sparql, q.strict_sparql) << q.name;
    } else {
      EXPECT_EQ(q.sparql, q.strict_sparql) << q.name;
    }
  }
  EXPECT_EQ(relaxed, 2u);
}

}  // namespace
}  // namespace sama

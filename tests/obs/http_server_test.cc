// ObsHttpServer: a raw-socket client (no HTTP library in the build, by
// design) exercises routing, query-param decoding, POST bodies, the
// 400/404/405-style error paths, ephemeral-port binding, and idempotent
// Stop. The server is deliberately minimal — serial connections,
// Connection: close — so these tests also pin that simplicity.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

#include "obs/http_server.h"

namespace sama {
namespace {

// Sends `raw` to the server and returns the full response (the server
// closes the connection after one exchange, so read-to-EOF is exact).
std::string RawRequest(const ObsHttpServer& server, const std::string& raw) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  EXPECT_EQ(::inet_pton(AF_INET, server.host().c_str(), &addr.sin_addr), 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0)
      << strerror(errno);
  size_t sent = 0;
  while (sent < raw.size()) {
    ssize_t n = ::send(fd, raw.data() + sent, raw.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Get(const ObsHttpServer& server, const std::string& target) {
  return RawRequest(server, "GET " + target +
                                " HTTP/1.1\r\nHost: test\r\n\r\n");
}

class HttpServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_.Handle("/ping", [](const HttpRequest&) {
      HttpResponse response;
      response.body = "pong\n";
      return response;
    });
    server_.Handle("/echo", [](const HttpRequest& request) {
      HttpResponse response;
      response.body = request.method + " " + request.path;
      for (const auto& [key, value] : request.params) {
        response.body += "\n" + key + "=" + value;
      }
      if (!request.body.empty()) response.body += "\nbody:" + request.body;
      return response;
    });
    server_.Handle("/teapot", [](const HttpRequest&) {
      HttpResponse response;
      response.status = 418;
      response.body = "short and stout\n";
      return response;
    });
    ASSERT_TRUE(server_.Start().ok());
    ASSERT_NE(server_.port(), 0) << "ephemeral port not resolved";
  }

  void TearDown() override { server_.Stop(); }

  // Default options: 127.0.0.1, port 0 (ephemeral).
  ObsHttpServer server_{ObsHttpServer::Options{}};
};

TEST_F(HttpServerTest, ServesRegisteredHandler) {
  std::string response = Get(server_, "/ping");
  EXPECT_EQ(response.rfind("HTTP/1.1 200 OK\r\n", 0), 0u) << response;
  EXPECT_NE(response.find("Content-Type: text/plain; charset=utf-8"),
            std::string::npos);
  EXPECT_NE(response.find("Content-Length: 5"), std::string::npos);
  EXPECT_NE(response.find("Connection: close"), std::string::npos);
  EXPECT_EQ(response.substr(response.size() - 5), "pong\n");
}

TEST_F(HttpServerTest, UnknownPathIs404) {
  EXPECT_EQ(Get(server_, "/nowhere").rfind("HTTP/1.1 404 Not Found\r\n", 0),
            0u);
}

TEST_F(HttpServerTest, HandlerChoosesStatus) {
  EXPECT_EQ(Get(server_, "/teapot").rfind("HTTP/1.1 418", 0), 0u);
}

TEST_F(HttpServerTest, QueryParamsAreSplitAndDecoded) {
  std::string response =
      Get(server_, "/echo?id=42&format=text&q=a%20b%2Bc+d");
  EXPECT_NE(response.find("GET /echo"), std::string::npos) << response;
  EXPECT_NE(response.find("id=42"), std::string::npos);
  EXPECT_NE(response.find("format=text"), std::string::npos);
  // %20 → space, %2B → '+', '+' → space.
  EXPECT_NE(response.find("q=a b+c d"), std::string::npos) << response;
}

TEST_F(HttpServerTest, PostBodyIsDeliveredByContentLength) {
  std::string body = "SELECT ?x WHERE { ?x :p ?y }";
  std::string raw = "POST /echo HTTP/1.1\r\nHost: test\r\nContent-Length: " +
                    std::to_string(body.size()) + "\r\n\r\n" + body;
  std::string response = RawRequest(server_, raw);
  EXPECT_NE(response.find("POST /echo"), std::string::npos) << response;
  EXPECT_NE(response.find("body:" + body), std::string::npos);
}

TEST_F(HttpServerTest, OversizedBodyIsRejected) {
  // Claims 2 MiB (over the 1 MiB cap); the server answers 413 without
  // waiting for the body.
  std::string raw =
      "POST /echo HTTP/1.1\r\nHost: test\r\nContent-Length: 2097152\r\n\r\n";
  EXPECT_EQ(RawRequest(server_, raw).rfind("HTTP/1.1 413", 0), 0u);
}

TEST_F(HttpServerTest, GarbageRequestLineIs400) {
  // No METHOD/target/version triple to split on → unparseable.
  EXPECT_EQ(RawRequest(server_, "garbage\r\n\r\n").rfind("HTTP/1.1 400", 0),
            0u);
}

TEST_F(HttpServerTest, HeadOmitsTheBody) {
  std::string response =
      RawRequest(server_, "HEAD /ping HTTP/1.1\r\nHost: test\r\n\r\n");
  EXPECT_EQ(response.rfind("HTTP/1.1 200 OK\r\n", 0), 0u) << response;
  EXPECT_NE(response.find("Content-Length: 5"), std::string::npos);
  EXPECT_EQ(response.find("pong"), std::string::npos);
}

TEST_F(HttpServerTest, CountsRequestsAcrossSerialConnections) {
  uint64_t before = server_.requests_served();
  Get(server_, "/ping");
  Get(server_, "/nowhere");  // Errors count too — the connection was served.
  Get(server_, "/ping");
  EXPECT_EQ(server_.requests_served(), before + 3);
}

TEST_F(HttpServerTest, StopIsIdempotentAndAllowsRestart) {
  server_.Stop();
  server_.Stop();  // Second stop is a no-op.
  ASSERT_TRUE(server_.Start().ok());
  EXPECT_NE(Get(server_, "/ping").find("pong"), std::string::npos);
}

TEST(ObsHttpServerTest, StartFailsOnUnresolvableHost) {
  ObsHttpServer::Options options;
  options.host = "definitely not an address";
  ObsHttpServer server(options);
  EXPECT_FALSE(server.Start().ok());
}

TEST(UrlDecodeTest, DecodesPercentAndPlus) {
  EXPECT_EQ(UrlDecode("a%20b"), "a b");
  EXPECT_EQ(UrlDecode("a+b"), "a b");
  EXPECT_EQ(UrlDecode("%2Fdebug%2fprofile"), "/debug/profile");
  EXPECT_EQ(UrlDecode("plain"), "plain");
  // Malformed escapes pass through literally rather than truncating.
  EXPECT_EQ(UrlDecode("bad%2"), "bad%2");
  EXPECT_EQ(UrlDecode("bad%zz"), "bad%zz");
  EXPECT_EQ(UrlDecode(""), "");
}

}  // namespace
}  // namespace sama

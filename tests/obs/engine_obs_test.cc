// Engine-level observability: per-query cache attribution under
// concurrency (the PR-4 stats bugfix), trace attachment, the
// slow-query log fed by real queries through the Env seam, registry
// instruments, and ForestSearchStats::truncated propagation on the
// single-thread and degraded paths.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "core/engine.h"
#include "datasets/govtrack.h"
#include "graph/data_graph.h"
#include "index/path_index.h"
#include "obs/exporter.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "query/sparql.h"
#include "text/thesaurus.h"

namespace sama {
namespace {

// A self-contained GovTrack Figure-1 environment. Each test gets its
// own index because engine construction configures the index-side
// caches.
struct ObsEnv {
  std::unique_ptr<DataGraph> graph;
  std::unique_ptr<PathIndex> index;
  Thesaurus thesaurus;
  std::unique_ptr<SamaEngine> engine;

  explicit ObsEnv(EngineOptions options = {}) {
    graph = std::make_unique<DataGraph>(
        DataGraph::FromTriples(GovTrackFigure1Triples()));
    index = std::make_unique<PathIndex>();
    Status s = index->Build(*graph, PathIndexOptions());
    EXPECT_TRUE(s.ok()) << s.ToString();
    thesaurus = Thesaurus::BuiltinEnglish();
    engine = std::make_unique<SamaEngine>(graph.get(), index.get(),
                                          &thesaurus, options);
  }

  QueryGraph Query1() const {
    return engine->BuildQueryGraph(GovTrackQuery1Patterns());
  }
};

uint64_t TotalMisses(const QueryStats& s) {
  return s.posting_cache.misses + s.path_lookup_cache.misses +
         s.path_record_cache.misses + s.label_match_cache.misses +
         s.alignment_memo.misses + s.thesaurus_cache.misses;
}

uint64_t TotalInsertions(const QueryStats& s) {
  return s.posting_cache.insertions + s.path_lookup_cache.insertions +
         s.path_record_cache.insertions + s.label_match_cache.insertions +
         s.alignment_memo.insertions + s.thesaurus_cache.insertions;
}

uint64_t TotalLookups(const QueryStats& s) {
  return s.posting_cache.lookups() + s.path_lookup_cache.lookups() +
         s.path_record_cache.lookups() + s.label_match_cache.lookups() +
         s.alignment_memo.lookups() + s.thesaurus_cache.lookups();
}

// THE attribution regression test. Two queries run concurrently on one
// engine: thread 1 re-runs a fully warmed query A (its own traffic is
// all hits — zero misses, zero insertions), thread 2 hammers
// never-seen-before queries that miss every index cache on every
// iteration. A's per-query stats must show exactly A's traffic.
//
// Before the scoped-sink fix the engine diffed the SHARED lifetime
// counters around each query, so thread 2's misses/insertions landing
// inside thread 1's window were attributed to A — this test fails on
// that implementation (A reports nonzero misses) and passes on the
// per-query sinks.
TEST(EngineObsTest, ConcurrentQueriesAttributeCacheTrafficDisjointly) {
  ObsEnv env;
  QueryGraph warm_query = env.Query1();

  // Warm every layer, then verify the warm premise sequentially: a
  // re-run of A is all hits.
  ASSERT_TRUE(env.engine->Execute(warm_query, 10).ok());
  QueryStats warm_stats;
  ASSERT_TRUE(env.engine->Execute(warm_query, 10, &warm_stats).ok());
  ASSERT_EQ(TotalMisses(warm_stats), 0u)
      << "warm re-run premise broken; the concurrent assertion below "
         "would be vacuous";
  ASSERT_GT(TotalLookups(warm_stats), 0u);

  // Thread 2's queries: a fresh, never-indexed sink literal each
  // iteration, so every iteration misses (and inserts into) the index
  // caches no matter how long the threads run. Built upfront so the
  // shared dictionary is not mutated concurrently.
  constexpr int kIterations = 40;
  std::vector<QueryGraph> fresh_queries;
  fresh_queries.reserve(kIterations);
  for (int i = 0; i < kIterations; ++i) {
    auto parsed = ParseSparql(
        "PREFIX gov: <http://gov.example.org/>\n"
        "SELECT ?x WHERE { ?x gov:subject \"never_indexed_" +
        std::to_string(i) + "\" }");
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    fresh_queries.push_back(
        parsed->ToQueryGraph(env.graph->shared_dict()));
  }

  std::atomic<bool> start{false};
  std::atomic<uint64_t> contaminating_misses{0};
  uint64_t leaked_misses = 0, leaked_insertions = 0;

  std::thread warm_thread([&] {
    while (!start.load()) {
    }
    for (int i = 0; i < kIterations; ++i) {
      QueryStats stats;
      auto answers = env.engine->Execute(warm_query, 10, &stats);
      ASSERT_TRUE(answers.ok());
      leaked_misses += TotalMisses(stats);
      leaked_insertions += TotalInsertions(stats);
    }
  });
  std::thread fresh_thread([&] {
    while (!start.load()) {
    }
    for (int i = 0; i < kIterations; ++i) {
      QueryStats stats;
      auto answers = env.engine->Execute(fresh_queries[i], 10, &stats);
      ASSERT_TRUE(answers.ok());
      contaminating_misses += TotalMisses(stats);
    }
  });
  start.store(true);
  warm_thread.join();
  fresh_thread.join();

  // The other thread really was missing caches the whole time...
  EXPECT_GE(contaminating_misses.load(),
            static_cast<uint64_t>(kIterations));
  // ...and none of that traffic leaked into the warm query's stats.
  EXPECT_EQ(leaked_misses, 0u);
  EXPECT_EQ(leaked_insertions, 0u);
}

TEST(EngineObsTest, TraceAttachedToStatsWhenEnabled) {
  EngineOptions options;
  options.obs.trace = true;
  ObsEnv env(options);
  QueryStats stats;
  auto answers = env.engine->Execute(env.Query1(), 10, &stats);
  ASSERT_TRUE(answers.ok());
  ASSERT_NE(stats.trace, nullptr);

  uint64_t query_id = 0;
  bool saw_preprocess = false, saw_clustering = false, saw_search = false;
  uint64_t clustering_id = 0;
  for (const TraceSpan& s : stats.trace->Snapshot()) {
    EXPECT_GE(s.duration_millis, 0.0) << s.name << " left open";
    if (s.name == "query") {
      query_id = s.id;
      EXPECT_EQ(s.parent, 0u);
    }
    if (s.name == "clustering") clustering_id = s.id;
  }
  ASSERT_NE(query_id, 0u);
  ASSERT_NE(clustering_id, 0u);
  for (const TraceSpan& s : stats.trace->Snapshot()) {
    if (s.name == "preprocess" || s.name == "clustering" ||
        s.name == "search") {
      EXPECT_EQ(s.parent, query_id) << s.name;
      saw_preprocess |= s.name == "preprocess";
      saw_clustering |= s.name == "clustering";
      saw_search |= s.name == "search";
    }
    if (s.name == "score_chunk") {
      EXPECT_EQ(s.parent, clustering_id);
    }
  }
  EXPECT_TRUE(saw_preprocess && saw_clustering && saw_search);
}

TEST(EngineObsTest, NoTraceByDefaultAndAnswersIdentical) {
  ObsEnv plain;
  EngineOptions traced_options;
  traced_options.obs.trace = true;
  ObsEnv traced(traced_options);

  QueryStats plain_stats, traced_stats;
  auto a = plain.engine->Execute(plain.Query1(), 10, &plain_stats);
  auto b = traced.engine->Execute(traced.Query1(), 10, &traced_stats);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(plain_stats.trace, nullptr);
  ASSERT_NE(traced_stats.trace, nullptr);

  // Tracing never alters answers (the determinism contract).
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_DOUBLE_EQ((*a)[i].score, (*b)[i].score);
  }
}

TEST(EngineObsTest, SlowQueryLogRecordsThroughEngine) {
  EngineOptions options;
  options.obs.slow_query_millis = 1e-6;  // Record everything.
  ObsEnv env(options);
  ASSERT_NE(env.engine->slow_query_log(), nullptr);

  QueryStats stats;
  ASSERT_TRUE(env.engine->Execute(env.Query1(), 10, &stats).ok());
  const SlowQueryLog* log = env.engine->slow_query_log();
  EXPECT_EQ(log->total_recorded(), 1u);
  auto records = log->Snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_DOUBLE_EQ(records[0].total_millis, stats.total_millis);
  EXPECT_EQ(records[0].num_answers, stats.num_answers);
  EXPECT_EQ(records[0].threads, 1);
}

TEST(EngineObsTest, SlowQueryLogDisabledByDefault) {
  ObsEnv env;
  EXPECT_EQ(env.engine->slow_query_log(), nullptr);
}

TEST(EngineObsTest, SlowQuerySinkFailureNeverFailsTheQuery) {
  std::string path = (std::filesystem::temp_directory_path() /
                      "sama_engine_obs_sink.jsonl")
                         .string();
  std::remove(path.c_str());
  FaultyEnv faulty(Env::Default());
  FaultSpec spec;
  spec.fail_after = 0;  // Every sink append fails.
  faulty.Arm(IoOp::kWrite, spec);

  EngineOptions options;
  options.obs.slow_query_millis = 1e-6;
  options.obs.slow_query_path = path;
  options.obs.env = &faulty;
  ObsEnv env(options);

  auto answers = env.engine->Execute(env.Query1(), 10);
  ASSERT_TRUE(answers.ok()) << "a broken sink must not fail queries";
  EXPECT_FALSE(answers->empty());
  const SlowQueryLog* log = env.engine->slow_query_log();
  EXPECT_EQ(log->sink_failures(), 1u);
  EXPECT_EQ(log->Snapshot().size(), 1u);  // Ring still recorded.
  std::remove(path.c_str());
}

TEST(EngineObsTest, RegistryInstrumentsFedByQueries) {
  MetricsRegistry registry;
  EngineOptions options;
  options.obs.registry = &registry;
  ObsEnv env(options);

  QueryStats stats;
  ASSERT_TRUE(env.engine->Execute(env.Query1(), 10, &stats).ok());

  Counter* queries = registry.GetCounter("sama_queries_total", "");
  Counter* answers = registry.GetCounter("sama_query_answers_total", "");
  Histogram* latency = registry.GetHistogram(
      "sama_query_latency_millis", "", Histogram::LatencyBucketsMillis());
  ASSERT_NE(queries, nullptr);
  EXPECT_EQ(queries->Value(), 1u);
  EXPECT_EQ(answers->Value(), stats.num_answers);
  EXPECT_EQ(latency->Count(), 1u);

  Counter* record_misses = registry.GetCounter(
      "sama_cache_misses_total", "", {{"cache", "path_records"}});
  EXPECT_EQ(record_misses->Value(), stats.path_record_cache.misses);

  // A second query keeps accumulating.
  ASSERT_TRUE(env.engine->Execute(env.Query1(), 10).ok());
  EXPECT_EQ(queries->Value(), 2u);
  EXPECT_EQ(latency->Count(), 2u);
}

TEST(EngineObsTest, MetricsOffStillFillsQueryStats) {
  EngineOptions options;
  options.obs.metrics = false;
  ObsEnv env(options);
  QueryStats stats;
  ASSERT_TRUE(env.engine->Execute(env.Query1(), 10, &stats).ok());
  // The per-query attribution is unconditional — QueryStats correctness
  // does not depend on the metrics switch.
  EXPECT_GT(TotalLookups(stats), 0u);
  EXPECT_GT(stats.num_answers, 0u);
}

// Satellite 5: a starved anytime budget must surface truncated == true
// through QueryStats on the sequential path and on the degraded
// (strict_io == false) path, and the flag must agree across thread
// counts (the determinism contract covers stats too).
TEST(EngineObsTest, TruncatedPropagatesAtSingleThread) {
  EngineOptions options;
  options.num_threads = 1;
  options.strict_io = false;  // The degraded read policy, explicitly.
  options.search.max_expansions = 1;
  ObsEnv env(options);
  QueryStats stats;
  auto answers = env.engine->Execute(env.Query1(), 10, &stats);
  ASSERT_TRUE(answers.ok());
  EXPECT_TRUE(stats.search_truncated)
      << "a 1-expansion budget cannot complete Query 1";

  // Sanity: with the default budget the same query completes.
  ObsEnv roomy;
  QueryStats roomy_stats;
  ASSERT_TRUE(roomy.engine->Execute(roomy.Query1(), 10, &roomy_stats).ok());
  EXPECT_FALSE(roomy_stats.search_truncated);
}

TEST(EngineObsTest, TruncatedAgreesAcrossThreadCounts) {
  QueryStats serial_stats, parallel_stats;
  {
    EngineOptions options;
    options.num_threads = 1;
    options.search.max_expansions = 1;
    ObsEnv env(options);
    ASSERT_TRUE(env.engine->Execute(env.Query1(), 10, &serial_stats).ok());
  }
  {
    EngineOptions options;
    options.num_threads = 4;
    options.search.max_expansions = 1;
    ObsEnv env(options);
    ASSERT_TRUE(
        env.engine->Execute(env.Query1(), 10, &parallel_stats).ok());
  }
  EXPECT_EQ(serial_stats.search_truncated, parallel_stats.search_truncated);
  EXPECT_TRUE(serial_stats.search_truncated);
}

TEST(EngineObsTest, SpeedupsAreFiniteOnTrivialQueries) {
  ObsEnv env;
  QueryGraph query = env.Query1();
  for (int i = 0; i < 3; ++i) {
    QueryStats stats;
    ASSERT_TRUE(env.engine->Execute(query, 10, &stats).ok());
    double cs = stats.ClusteringSpeedup();
    double ss = stats.SearchSpeedup();
    EXPECT_TRUE(std::isfinite(cs)) << cs;
    EXPECT_TRUE(std::isfinite(ss)) << ss;
    EXPECT_GE(cs, 0.0);
    EXPECT_LE(cs, static_cast<double>(stats.threads_used));
    EXPECT_LE(ss, static_cast<double>(stats.threads_used));
  }
  // The clamp itself, on the pathological inputs that used to leak
  // inf/nan into --stats output and bench JSON.
  EXPECT_DOUBLE_EQ(QueryStats::PhaseSpeedup(1.0, 0.0, 4), 1.0);
  EXPECT_DOUBLE_EQ(QueryStats::PhaseSpeedup(0.0, 0.0, 4), 1.0);
  EXPECT_DOUBLE_EQ(QueryStats::PhaseSpeedup(1.0, 1e-300, 4), 1.0);
  EXPECT_DOUBLE_EQ(QueryStats::PhaseSpeedup(1e300, 1.0, 4), 4.0);
  EXPECT_DOUBLE_EQ(
      QueryStats::PhaseSpeedup(std::nan(""), 1.0, 4), 1.0);
  EXPECT_DOUBLE_EQ(QueryStats::PhaseSpeedup(2.0, 1.0, 4), 2.0);
}

// --- Query profiler (obs.profile) -----------------------------------

const ProfileNode* FindProfileNode(const QueryProfile& profile,
                                   const std::string& name) {
  for (const ProfileNode& node : profile.nodes()) {
    if (node.name == name) return &node;
  }
  return nullptr;
}

TEST(EngineObsTest, ProfileAttachedWithPhaseTreeAndCounters) {
  EngineOptions options;
  options.obs.profile = true;
  ObsEnv env(options);
  QueryStats stats;
  ASSERT_TRUE(env.engine->Execute(env.Query1(), 10, &stats).ok());
  ASSERT_NE(stats.profile, nullptr);
  // Profile-only mode: spans live inside the profile, not on stats.
  EXPECT_EQ(stats.trace, nullptr);

  const QueryProfile& profile = *stats.profile;
  ASSERT_EQ(profile.roots().size(), 1u);
  EXPECT_EQ(profile.nodes()[profile.roots()[0]].name, "query");
  for (const char* phase : {"preprocess", "clustering", "search"}) {
    EXPECT_NE(FindProfileNode(profile, phase), nullptr) << phase;
  }

  // Summary mirrors the query's stats.
  EXPECT_EQ(profile.summary().num_answers, stats.num_answers);
  EXPECT_EQ(profile.summary().num_query_paths, stats.num_query_paths);
  EXPECT_DOUBLE_EQ(profile.summary().total_millis, stats.total_millis);
  EXPECT_EQ(profile.summary().search_truncated, stats.search_truncated);

  // A cold query misses the index caches during clustering, and search
  // expansions land on the search node.
  const ProfileNode* clustering = FindProfileNode(profile, "clustering");
  ASSERT_NE(clustering, nullptr);
  EXPECT_GT(clustering->counters.cache_misses, 0u);
  const ProfileNode* search = FindProfileNode(profile, "search");
  ASSERT_NE(search, nullptr);
  EXPECT_EQ(search->counters.search_expansions, stats.search_expansions);

  // The rendered explain is non-trivially shaped (end-to-end sanity;
  // the format itself is golden-locked in exporter_test).
  std::string explain = RenderExplainAnalyze(profile);
  EXPECT_NE(explain.find("EXPLAIN ANALYZE"), std::string::npos);
  EXPECT_NE(explain.find("└─ search"), std::string::npos) << explain;
}

TEST(EngineObsTest, ProfileLogRetainsRecentQueriesWithMonotonicIds) {
  EngineOptions options;
  options.obs.profile = true;
  options.obs.profile_capacity = 2;
  ObsEnv env(options);
  ASSERT_NE(env.engine->profile_log(), nullptr);

  QueryStats s1, s2, s3;
  ASSERT_TRUE(env.engine->Execute(env.Query1(), 10, &s1).ok());
  ASSERT_TRUE(env.engine->Execute(env.Query1(), 10, &s2).ok());
  ASSERT_TRUE(env.engine->Execute(env.Query1(), 10, &s3).ok());
  EXPECT_EQ(s1.profile->id(), 1u);
  EXPECT_EQ(s2.profile->id(), 2u);
  EXPECT_EQ(s3.profile->id(), 3u);

  const ProfileLog* log = env.engine->profile_log();
  EXPECT_EQ(log->latest_id(), 3u);
  EXPECT_EQ(log->Get(1), nullptr);  // Evicted at capacity 2...
  ASSERT_NE(log->Get(3), nullptr);
  EXPECT_EQ(log->Get(3).get(), s3.profile.get());  // ...shared, not copied.
  // The caller's shared_ptr outlives eviction.
  EXPECT_EQ(s1.profile->summary().num_answers, s1.num_answers);
}

TEST(EngineObsTest, NoProfileByDefault) {
  ObsEnv env;
  EXPECT_EQ(env.engine->profile_log(), nullptr);
  QueryStats stats;
  ASSERT_TRUE(env.engine->Execute(env.Query1(), 10, &stats).ok());
  EXPECT_EQ(stats.profile, nullptr);
}

TEST(EngineObsTest, ProfileAndTraceComposeAndAnswersUnchanged) {
  ObsEnv plain;
  EngineOptions options;
  options.obs.profile = true;
  options.obs.trace = true;
  ObsEnv profiled(options);

  QueryStats plain_stats, profiled_stats;
  auto a = plain.engine->Execute(plain.Query1(), 10, &plain_stats);
  auto b = profiled.engine->Execute(profiled.Query1(), 10, &profiled_stats);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_NE(profiled_stats.trace, nullptr);
  ASSERT_NE(profiled_stats.profile, nullptr);
  // Both views come from the same spans.
  EXPECT_EQ(profiled_stats.trace->Snapshot().size(),
            profiled_stats.profile->spans().size());

  // Profiling never alters answers (the determinism contract).
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_DOUBLE_EQ((*a)[i].score, (*b)[i].score);
  }
}

}  // namespace
}  // namespace sama

// MetricsRegistry: instrument identity and re-registration, counter
// exactness under concurrent writers, histogram bucket-boundary
// semantics (le = inclusive upper bound), and the Prometheus text
// exposition locked against a golden file — the format is an external
// contract (scrapers parse it), so it changes only deliberately.

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace sama {
namespace {

TEST(MetricsRegistryTest, ReRegistrationReturnsSamePointer) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("requests_total", "Requests.");
  Counter* b = registry.GetCounter("requests_total", "ignored");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a, b);

  Counter* labelled =
      registry.GetCounter("requests_total", "Requests.", {{"kind", "x"}});
  ASSERT_NE(labelled, nullptr);
  EXPECT_NE(labelled, a);  // Distinct series, same family.
  EXPECT_EQ(labelled,
            registry.GetCounter("requests_total", "", {{"kind", "x"}}));
}

TEST(MetricsRegistryTest, LabelOrderDoesNotSplitSeries) {
  MetricsRegistry registry;
  Counter* ab = registry.GetCounter("c_total", "h",
                                    {{"a", "1"}, {"b", "2"}});
  Counter* ba = registry.GetCounter("c_total", "h",
                                    {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(ab, ba);
}

TEST(MetricsRegistryTest, TypeMismatchReturnsNull) {
  MetricsRegistry registry;
  ASSERT_NE(registry.GetCounter("thing", "h"), nullptr);
  EXPECT_EQ(registry.GetGauge("thing", "h"), nullptr);
  EXPECT_EQ(registry.GetHistogram("thing", "h", {1.0}), nullptr);
}

TEST(MetricsRegistryTest, CounterExactUnderConcurrentWriters) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("hammered_total", "h");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c->Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->Value(), kThreads * kPerThread);
}

TEST(MetricsRegistryTest, GaugeSetAndAdd) {
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("level", "h");
  g->Set(2.5);
  EXPECT_DOUBLE_EQ(g->Value(), 2.5);
  g->Add(-1.0);
  EXPECT_DOUBLE_EQ(g->Value(), 1.5);
}

TEST(HistogramTest, BucketBoundariesAreInclusiveUpperBounds) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("lat", "h", {1.0, 2.0, 4.0});
  // Prometheus le semantics: an observation equal to a bound belongs to
  // that bound's bucket.
  h->Observe(0.5);   // le=1.
  h->Observe(1.0);   // le=1, exactly on the bound.
  h->Observe(1.001); // le=2.
  h->Observe(4.0);   // le=4, exactly on the last finite bound.
  h->Observe(4.001); // +Inf.
  h->Observe(100.0); // +Inf.
  EXPECT_EQ(h->BucketCount(0), 2u);
  EXPECT_EQ(h->BucketCount(1), 1u);
  EXPECT_EQ(h->BucketCount(2), 1u);
  EXPECT_EQ(h->OverflowCount(), 2u);
  EXPECT_EQ(h->Count(), 6u);
  EXPECT_DOUBLE_EQ(h->Sum(), 0.5 + 1.0 + 1.001 + 4.0 + 4.001 + 100.0);
}

TEST(HistogramTest, UnsortedBoundsAreSortedAtRegistration) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("lat2", "h", {4.0, 1.0, 2.0, 2.0});
  ASSERT_EQ(h->bounds().size(), 3u);  // Deduplicated.
  EXPECT_DOUBLE_EQ(h->bounds()[0], 1.0);
  EXPECT_DOUBLE_EQ(h->bounds()[2], 4.0);
}

TEST(HistogramTest, LatencyBucketsCoverSubMillisecondToSeconds) {
  std::vector<double> bounds = Histogram::LatencyBucketsMillis();
  ASSERT_FALSE(bounds.empty());
  EXPECT_LE(bounds.front(), 0.25);
  EXPECT_GE(bounds.back(), 8000.0);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

TEST(HistogramTest, ObserveExactUnderConcurrentWriters) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("lat3", "h", {10.0, 20.0});
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h] {
      for (uint64_t i = 0; i < kPerThread; ++i) h->Observe(5.0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h->Count(), kThreads * kPerThread);
  EXPECT_EQ(h->BucketCount(0), kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(h->Sum(), 5.0 * kThreads * kPerThread);
}

TEST(HistogramTest, QuantileInterpolatesInsideTheBucket) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("q_lat", "h", {1.0, 2.0, 4.0});
  // 50 observations in (0,1], 30 in (1,2], 20 in (2,4].
  for (int i = 0; i < 50; ++i) h->Observe(0.5);
  for (int i = 0; i < 30; ++i) h->Observe(1.5);
  for (int i = 0; i < 20; ++i) h->Observe(3.0);
  // Rank 50 exhausts the first bucket exactly: 0 + 1.0 * (50/50).
  EXPECT_DOUBLE_EQ(h->Quantile(0.5), 1.0);
  // Rank 80 exhausts the second: 1 + (2-1) * (30/30).
  EXPECT_DOUBLE_EQ(h->Quantile(0.8), 2.0);
  // Rank 95 is 15/20 through the third: 2 + (4-2) * 0.75.
  EXPECT_DOUBLE_EQ(h->Quantile(0.95), 3.5);
  // Rank 100 is the top of the last occupied bucket.
  EXPECT_DOUBLE_EQ(h->Quantile(1.0), 4.0);
  // q clamps to [0,1]; q=0 interpolates to the first bucket's floor.
  EXPECT_DOUBLE_EQ(h->Quantile(-3.0), 0.0);
}

TEST(HistogramTest, QuantileUniformSingleBucket) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("q_uni", "h", {10.0});
  for (int i = 0; i < 100; ++i) h->Observe(4.0);
  // All mass in (0,10]; the median interpolates to the middle.
  EXPECT_DOUBLE_EQ(h->Quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h->Quantile(0.25), 2.5);
}

TEST(HistogramTest, QuantileEdgeCases) {
  MetricsRegistry registry;
  Histogram* empty = registry.GetHistogram("q_empty", "h", {1.0});
  EXPECT_TRUE(std::isnan(empty->Quantile(0.5)));

  // Everything in the +Inf bucket: the largest finite bound is the
  // best defensible estimate (histogram_quantile semantics).
  Histogram* overflow = registry.GetHistogram("q_over", "h", {1.0, 2.0});
  overflow->Observe(50.0);
  overflow->Observe(60.0);
  EXPECT_DOUBLE_EQ(overflow->Quantile(0.5), 2.0);

  // A non-positive first bound returns the bound itself rather than
  // interpolating from an undefined floor.
  Histogram* negative = registry.GetHistogram("q_neg", "h", {-1.0, 1.0});
  negative->Observe(-5.0);
  EXPECT_DOUBLE_EQ(negative->Quantile(0.5), -1.0);
}

TEST(MetricsRegistryTest, ResetValuesKeepsRegistrations) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("r_total", "h");
  Histogram* h = registry.GetHistogram("r_lat", "h", {1.0});
  c->Increment(7);
  h->Observe(0.5);
  registry.ResetValuesForTest();
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_EQ(h->Count(), 0u);
  EXPECT_DOUBLE_EQ(h->Sum(), 0.0);
  // Same pointers still live and usable.
  c->Increment();
  EXPECT_EQ(c->Value(), 1u);
}

// Builds the registry the golden file snapshots: one of each instrument
// kind, labelled series, escaping-hostile label values, and a histogram
// with observations on both sides of its bounds.
std::string GoldenExposition() {
  MetricsRegistry registry;
  registry.GetCounter("sama_queries_total", "Queries executed.")
      ->Increment(3);
  registry
      .GetCounter("sama_cache_hits_total", "Cache hits.",
                  {{"cache", "postings"}})
      ->Increment(11);
  registry
      .GetCounter("sama_cache_hits_total", "Cache hits.",
                  {{"cache", "label_matches"}})
      ->Increment(2);
  registry
      .GetCounter("sama_odd_labels_total", "Escaping check.",
                  {{"path", "a\\b\"c\nd"}})
      ->Increment();
  // HELP text escapes backslash and newline (but NOT the quote —
  // that's a label-value-only escape in the exposition format).
  registry
      .GetCounter("sama_odd_help_total", "Line one\nline \"two\" \\ done.")
      ->Increment(4);
  registry.GetGauge("sama_resident_pages", "Resident pages.")->Set(42.5);
  Histogram* lat = registry.GetHistogram(
      "sama_query_latency_millis", "End-to-end query latency.",
      {0.5, 1.0, 2.0});
  lat->Observe(0.25);
  lat->Observe(1.0);
  lat->Observe(7.5);
  return registry.RenderText();
}

TEST(MetricsRegistryTest, GoldenExposition) {
  std::string golden_path =
      std::string(SAMA_TEST_DATA_DIR) + "/obs_exposition.golden";
  std::ifstream in(golden_path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << golden_path;
  std::ostringstream want;
  want << in.rdbuf();
  EXPECT_EQ(GoldenExposition(), want.str())
      << "Prometheus exposition drifted from the golden. If the change "
         "is deliberate, regenerate tests/data/obs_exposition.golden.";
}

}  // namespace
}  // namespace sama

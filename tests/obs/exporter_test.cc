// The two profile renderers are external contracts — humans read the
// EXPLAIN ANALYZE tree, Perfetto parses the Chrome trace JSON — so both
// are locked against golden files built from a fixed synthetic profile.
// Regenerate with `./build/tools/gen_obs_goldens tests/data` (which
// duplicates MakeGoldenProfile below — keep them in sync) only when the
// format changes deliberately.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/exporter.h"
#include "obs/metrics.h"
#include "obs/profile.h"

namespace sama {
namespace {

// The fixed profile both goldens snapshot: the engine's canonical span
// shape (query → preprocess / clustering{2× score_chunk on 2 threads} /
// search) with hand-picked timings and counters that exercise every
// renderer branch — merged siblings, multi-thread nodes, cache + page +
// byte + io counters on clustering, expansions on search.
QueryProfile MakeGoldenProfile(bool truncated = false) {
  std::vector<TraceSpan> spans = {
      {1, 0, "query", 0.0, 10.0, 0},
      {2, 1, "preprocess", 0.1, 1.0, 0},
      {3, 1, "clustering", 1.2, 5.0, 0},
      {4, 3, "score_chunk", 1.3, 2.0, 0},
      {5, 3, "score_chunk", 1.4, 2.5, 1},
      {6, 1, "search", 6.3, 3.5, 0},
  };
  ProfileSummary summary;
  summary.label = "demo";
  summary.total_millis = 10.2;
  summary.num_query_paths = 3;
  summary.num_candidate_paths = 24;
  summary.num_answers = 10;
  summary.threads_used = 2;
  summary.search_expansions = 78;
  summary.search_truncated = truncated;

  std::vector<QueryProfile::PhaseCounters> phases(2);
  phases[0].phase = "clustering";
  phases[0].counters.cache_hits = 11;
  phases[0].counters.cache_misses = 50;
  phases[0].counters.pages_fetched = 12;
  phases[0].counters.pages_read = 2;
  phases[0].counters.pages_evicted = 1;
  phases[0].counters.bytes_read = 8192;
  phases[0].counters.io_retries = 1;
  phases[1].phase = "search";
  phases[1].counters.search_expansions = 78;

  return QueryProfile::Build(std::move(spans), std::move(summary), phases);
}

std::string ReadGolden(const std::string& name) {
  std::string path = std::string(SAMA_TEST_DATA_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "missing golden file " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(ExporterTest, ExplainAnalyzeMatchesGolden) {
  EXPECT_EQ(RenderExplainAnalyze(MakeGoldenProfile()),
            ReadGolden("obs_explain.golden"))
      << "EXPLAIN ANALYZE format drifted. If deliberate, regenerate "
         "tests/data/obs_explain.golden.";
}

TEST(ExporterTest, ChromeTraceMatchesGolden) {
  EXPECT_EQ(RenderChromeTrace(MakeGoldenProfile()),
            ReadGolden("obs_profile_trace.golden"))
      << "Chrome trace-event format drifted. If deliberate, regenerate "
         "tests/data/obs_profile_trace.golden.";
}

TEST(ExporterTest, ExplainFlagsTruncatedSearch) {
  std::string out = RenderExplainAnalyze(MakeGoldenProfile(true));
  EXPECT_NE(out.find("[TRUNCATED by the anytime budget]"),
            std::string::npos)
      << out;
}

TEST(ExporterTest, ChromeTraceEscapesSpanNames) {
  std::vector<TraceSpan> spans = {{1, 0, "odd\"name\\here", 0.0, 1.0, 0}};
  QueryProfile profile =
      QueryProfile::Build(std::move(spans), ProfileSummary{}, {});
  std::string out = RenderChromeTrace(profile);
  EXPECT_NE(out.find("odd\\\"name\\\\here"), std::string::npos) << out;
}

TEST(ExporterTest, RefreshLatencyQuantilesPublishesSecondsGauges) {
  MetricsRegistry registry;
  auto bounds = Histogram::LatencyBucketsMillis();
  Histogram* lat = registry.GetHistogram("sama_query_latency_millis",
                                         "End-to-end query latency.",
                                         bounds);
  ASSERT_NE(lat, nullptr);
  for (int i = 0; i < 100; ++i) lat->Observe(3.0);
  Histogram* phase = registry.GetHistogram("sama_query_phase_millis",
                                           "Per-phase query latency.",
                                           bounds, {{"phase", "search"}});
  ASSERT_NE(phase, nullptr);
  phase->Observe(1.0);

  RefreshLatencyQuantiles(&registry);

  std::string text = registry.RenderText();
  EXPECT_NE(text.find("sama_query_latency_seconds{quantile=\"0.5\"}"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("sama_query_latency_seconds{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(text.find("sama_query_phase_seconds{phase=\"search\","
                      "quantile=\"0.95\"}"),
            std::string::npos)
      << text;
  // Unobserved phases publish nothing.
  EXPECT_EQ(text.find("phase=\"clustering\",quantile"), std::string::npos);

  // The gauge holds the histogram's interpolated quantile in seconds.
  Gauge* p50 = registry.GetGauge(
      "sama_query_latency_seconds", "", {{"quantile", "0.5"}});
  ASSERT_NE(p50, nullptr);
  EXPECT_DOUBLE_EQ(p50->Value(), lat->Quantile(0.5) / 1000.0);
}

TEST(ExporterTest, RefreshLatencyQuantilesSkipsEmptyHistograms) {
  MetricsRegistry registry;
  RefreshLatencyQuantiles(&registry);
  RefreshLatencyQuantiles(nullptr);  // Null registry is a no-op.
  EXPECT_EQ(registry.RenderText().find("quantile"), std::string::npos);
}

TEST(ExporterTest, QuantileBoundaryRanksMatchPromql) {
  MetricsRegistry registry;
  // Empty leading bucket with a boundary-exact rank (q=0 → rank 0):
  // PromQL selects the FIRST bucket whose cumulative count reaches the
  // rank — the empty (0,1] — and with nothing to interpolate over its
  // lower edge is the answer. The old scan skipped empty buckets and
  // misreported this as the empty bucket's UPPER bound.
  Histogram* lead = registry.GetHistogram("q_lead", "h", {1.0, 2.0, 4.0});
  for (int i = 0; i < 10; ++i) lead->Observe(1.5);  // All mass in (1,2].
  EXPECT_DOUBLE_EQ(lead->Quantile(0.0), 0.0);
  // Interior ranks still interpolate inside the occupied bucket.
  EXPECT_DOUBLE_EQ(lead->Quantile(0.5), 1.5);

  // An empty bucket BETWEEN occupied ones: the boundary-exact rank
  // (q=0.5 → rank 4 = bucket 0's cumulative count) resolves at the top
  // of bucket 0; past the boundary the rank skips the empty (1,2] and
  // interpolates in (2,4].
  Histogram* mid = registry.GetHistogram("q_mid", "h", {1.0, 2.0, 4.0});
  for (int i = 0; i < 4; ++i) mid->Observe(0.5);
  for (int i = 0; i < 4; ++i) mid->Observe(3.0);
  EXPECT_DOUBLE_EQ(mid->Quantile(0.5), 1.0);
  EXPECT_DOUBLE_EQ(mid->Quantile(0.75), 3.0);  // rank 6 → 2 + 2·(2/4).

  // A first bound <= 0 short-circuits to that bound (PromQL rule).
  Histogram* neg = registry.GetHistogram("q_neg", "h", {0.0, 1.0});
  neg->Observe(0.5);
  EXPECT_DOUBLE_EQ(neg->Quantile(0.0), 0.0);

  // A rank in the +Inf bucket clamps to the largest finite bound.
  Histogram* inf = registry.GetHistogram("q_inf", "h", {1.0});
  inf->Observe(50.0);
  EXPECT_DOUBLE_EQ(inf->Quantile(0.99), 1.0);
}

}  // namespace
}  // namespace sama

// Propagated-trace identity tier: TraceContext parsing/rendering (the
// --trace-id surface), random-id generation, and the TraceStore's
// stitching contract — one trace id must map to ONE QueryTrace across
// repeated requests, with FIFO eviction bounding memory (DESIGN.md
// §15).
#include "obs/trace_context.h"

#include <gtest/gtest.h>

#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.h"

namespace sama {
namespace {

TEST(TraceContextTest, ParseAndRenderRoundTrip) {
  TraceContext ctx;
  ASSERT_TRUE(
      TraceContext::ParseTraceId("0123456789abcdef0123456789abcdef", &ctx));
  EXPECT_EQ(ctx.trace_id_hi, 0x0123456789abcdefULL);
  EXPECT_EQ(ctx.trace_id_lo, 0x0123456789abcdefULL);
  EXPECT_EQ(ctx.TraceIdHex(), "0123456789abcdef0123456789abcdef");
}

TEST(TraceContextTest, ShortIdsZeroExtendOnTheLeft) {
  TraceContext ctx;
  ASSERT_TRUE(TraceContext::ParseTraceId("beef", &ctx));
  EXPECT_EQ(ctx.trace_id_hi, 0u);
  EXPECT_EQ(ctx.trace_id_lo, 0xbeefULL);
  EXPECT_EQ(ctx.TraceIdHex(), "000000000000000000000000" "0000beef");

  // 17 digits spill into the hi word.
  ASSERT_TRUE(TraceContext::ParseTraceId("f0000000000000001", &ctx));
  EXPECT_EQ(ctx.trace_id_hi, 0xfULL);
  EXPECT_EQ(ctx.trace_id_lo, 1u);
}

TEST(TraceContextTest, UppercaseHexAccepted) {
  TraceContext ctx;
  ASSERT_TRUE(TraceContext::ParseTraceId("DEADBEEF", &ctx));
  EXPECT_EQ(ctx.trace_id_lo, 0xdeadbeefULL);
  EXPECT_EQ(ctx.TraceIdHex().substr(24), "deadbeef");
}

TEST(TraceContextTest, BadInputsRejectedAndLeaveContextUntouched) {
  TraceContext ctx;
  ctx.trace_id_lo = 7;
  EXPECT_FALSE(TraceContext::ParseTraceId("", &ctx));
  EXPECT_FALSE(TraceContext::ParseTraceId("xyz", &ctx));
  EXPECT_FALSE(TraceContext::ParseTraceId("12 34", &ctx));
  EXPECT_FALSE(TraceContext::ParseTraceId(  // 33 digits: overlong.
      "123456789012345678901234567890123", &ctx));
  EXPECT_FALSE(TraceContext::ParseTraceId("0", &ctx));  // Reserved.
  EXPECT_FALSE(TraceContext::ParseTraceId(
      "00000000000000000000000000000000", &ctx));
  EXPECT_EQ(ctx.trace_id_lo, 7u);  // Untouched by every failure.
}

TEST(TraceContextTest, ValidityIsNonZeroId) {
  TraceContext ctx;
  EXPECT_FALSE(ctx.valid());
  ctx.trace_id_hi = 1;
  EXPECT_TRUE(ctx.valid());
  ctx = TraceContext();
  ctx.trace_id_lo = 1;
  EXPECT_TRUE(ctx.valid());
}

TEST(TraceContextTest, GeneratedIdsAreValidAndDistinct) {
  std::set<std::string> seen;
  for (int i = 0; i < 64; ++i) {
    TraceContext ctx = TraceContext::Generate();
    EXPECT_TRUE(ctx.valid());
    EXPECT_TRUE(ctx.sampled);
    seen.insert(ctx.TraceIdHex());
  }
  EXPECT_EQ(seen.size(), 64u);
}

TEST(TraceStoreTest, SameIdYieldsSameTrace) {
  TraceStore store(8);
  TraceContext ctx;
  ASSERT_TRUE(TraceContext::ParseTraceId("cafe", &ctx));
  std::shared_ptr<QueryTrace> first = store.GetOrCreate(ctx);
  std::shared_ptr<QueryTrace> second = store.GetOrCreate(ctx);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(store.size(), 1u);

  // Spans from "both requests" accumulate in the one trace.
  uint64_t a = first->BeginSpan("request", 0);
  first->EndSpan(a);
  uint64_t b = second->BeginSpan("request", 0);
  second->EndSpan(b);
  EXPECT_EQ(first->size(), 2u);
}

TEST(TraceStoreTest, FindByHexAndIdsNewestFirst) {
  TraceStore store(8);
  TraceContext a, b;
  ASSERT_TRUE(TraceContext::ParseTraceId("aa", &a));
  ASSERT_TRUE(TraceContext::ParseTraceId("bb", &b));
  store.GetOrCreate(a);
  store.GetOrCreate(b);
  EXPECT_NE(store.Find(a.TraceIdHex()), nullptr);
  EXPECT_EQ(store.Find("00ff"), nullptr);
  std::vector<std::string> ids = store.Ids();
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], b.TraceIdHex());  // Newest first.
  EXPECT_EQ(ids[1], a.TraceIdHex());
}

TEST(TraceStoreTest, InvalidContextYieldsFreshUnregisteredTrace) {
  TraceStore store(8);
  TraceContext invalid;
  std::shared_ptr<QueryTrace> one = store.GetOrCreate(invalid);
  std::shared_ptr<QueryTrace> two = store.GetOrCreate(invalid);
  EXPECT_NE(one, nullptr);
  EXPECT_NE(one.get(), two.get());
  EXPECT_EQ(store.size(), 0u);
}

TEST(TraceStoreTest, EvictsOldestBeyondCapacity) {
  TraceStore store(3);
  std::vector<TraceContext> ctxs;
  for (int i = 1; i <= 5; ++i) {
    TraceContext ctx;
    ctx.trace_id_lo = static_cast<uint64_t>(i);
    ctxs.push_back(ctx);
    store.GetOrCreate(ctx);
  }
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.Find(ctxs[0].TraceIdHex()), nullptr);
  EXPECT_EQ(store.Find(ctxs[1].TraceIdHex()), nullptr);
  EXPECT_NE(store.Find(ctxs[2].TraceIdHex()), nullptr);
  EXPECT_NE(store.Find(ctxs[4].TraceIdHex()), nullptr);

  // A holder's shared_ptr keeps an evicted trace readable.
  std::shared_ptr<QueryTrace> held = store.GetOrCreate(ctxs[2]);
  TraceContext extra;
  extra.trace_id_lo = 99;
  store.GetOrCreate(extra);
  extra.trace_id_lo = 100;
  store.GetOrCreate(extra);
  extra.trace_id_lo = 101;
  store.GetOrCreate(extra);
  EXPECT_EQ(store.Find(ctxs[2].TraceIdHex()), nullptr);
  uint64_t span = held->BeginSpan("late", 0);
  held->EndSpan(span);
  EXPECT_GE(held->size(), 1u);
}

TEST(TraceStoreTest, ConcurrentGetOrCreateIsRaceFree) {
  // Hammer one store from several threads over a small id space; TSan
  // (CI's sanitizer matrix runs this binary) verifies the locking, and
  // every thread must observe the same trace object per id.
  TraceStore store(64);
  constexpr int kThreads = 4;
  constexpr int kIters = 500;
  std::vector<std::shared_ptr<QueryTrace>> first_seen(8);
  std::mutex first_mu;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, &first_seen, &first_mu, t] {
      for (int i = 0; i < kIters; ++i) {
        TraceContext ctx;
        ctx.trace_id_lo = 1 + static_cast<uint64_t>((i + t) % 8);
        std::shared_ptr<QueryTrace> trace = store.GetOrCreate(ctx);
        uint64_t span = trace->BeginSpan("op", 0);
        trace->EndSpan(span);
        std::lock_guard<std::mutex> lock(first_mu);
        std::shared_ptr<QueryTrace>& slot =
            first_seen[(i + t) % 8];
        if (slot == nullptr) {
          slot = trace;
        } else {
          EXPECT_EQ(slot.get(), trace.get());
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(store.size(), 8u);
}

}  // namespace
}  // namespace sama

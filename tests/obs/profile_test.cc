// QueryProfile::Build tree assembly — same-name sibling merging, self
// time, dangling parents, open spans, phase-counter attachment — and
// the ProfileLog retention ring backing /debug/profile.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "obs/profile.h"

namespace sama {
namespace {

const ProfileNode* FindNode(const QueryProfile& profile,
                            const std::string& name) {
  for (const ProfileNode& node : profile.nodes()) {
    if (node.name == name) return &node;
  }
  return nullptr;
}

// The canonical engine shape: one query root, three phase children,
// chunk spans from two threads under clustering.
QueryProfile BuildEngineShape() {
  std::vector<TraceSpan> spans = {
      {1, 0, "query", 0.0, 10.0, 0},
      {2, 1, "preprocess", 0.1, 1.0, 0},
      {3, 1, "clustering", 1.2, 5.0, 0},
      {4, 3, "score_chunk", 1.3, 2.0, 0},
      {5, 3, "score_chunk", 1.4, 2.5, 1},
      {6, 1, "search", 6.3, 3.5, 0},
  };
  return QueryProfile::Build(std::move(spans), ProfileSummary{}, {});
}

TEST(QueryProfileTest, MergesSameNameSiblingsIntoOneNode) {
  QueryProfile profile = BuildEngineShape();
  ASSERT_EQ(profile.roots().size(), 1u);
  const ProfileNode& root = profile.nodes()[profile.roots()[0]];
  EXPECT_EQ(root.name, "query");
  ASSERT_EQ(root.children.size(), 3u);  // preprocess, clustering, search.

  const ProfileNode* chunks = FindNode(profile, "score_chunk");
  ASSERT_NE(chunks, nullptr);
  EXPECT_EQ(chunks->spans, 2u);
  EXPECT_EQ(chunks->threads, 2u);
  EXPECT_DOUBLE_EQ(chunks->wall_millis, 4.5);  // Summed across threads.
  EXPECT_DOUBLE_EQ(chunks->start_millis, 1.3);  // Earliest merged start.
}

TEST(QueryProfileTest, SelfTimeIsWallMinusChildren) {
  QueryProfile profile = BuildEngineShape();
  const ProfileNode* query = FindNode(profile, "query");
  const ProfileNode* clustering = FindNode(profile, "clustering");
  const ProfileNode* search = FindNode(profile, "search");
  ASSERT_NE(query, nullptr);
  ASSERT_NE(clustering, nullptr);
  ASSERT_NE(search, nullptr);
  // query: 10 - (1 + 5 + 3.5) = 0.5.
  EXPECT_DOUBLE_EQ(query->self_millis, 0.5);
  // clustering: 5 - 4.5 chunk wall = 0.5.
  EXPECT_DOUBLE_EQ(clustering->self_millis, 0.5);
  // Leaf: self == wall.
  EXPECT_DOUBLE_EQ(search->self_millis, search->wall_millis);
}

TEST(QueryProfileTest, SelfTimeClampsWhenParallelChildrenOverlap) {
  // Two 8ms children of a 10ms parent (they overlapped on different
  // threads): self clamps to 0 instead of going to -6.
  std::vector<TraceSpan> spans = {
      {1, 0, "phase", 0.0, 10.0, 0},
      {2, 1, "work", 0.5, 8.0, 0},
      {3, 1, "work", 0.5, 8.0, 1},
  };
  QueryProfile profile =
      QueryProfile::Build(std::move(spans), ProfileSummary{}, {});
  const ProfileNode* phase = FindNode(profile, "phase");
  ASSERT_NE(phase, nullptr);
  EXPECT_DOUBLE_EQ(phase->self_millis, 0.0);
}

TEST(QueryProfileTest, DanglingParentBecomesRootAndOpenSpanCountsZero) {
  std::vector<TraceSpan> spans = {
      {1, 0, "query", 0.0, 5.0, 0},
      // Parent 99 was never recorded; still rendered, as a root.
      {2, 99, "stray", 1.0, 2.0, 0},
      // Open span (duration < 0) contributes zero wall.
      {3, 1, "open_child", 1.0, -1.0, 0},
  };
  QueryProfile profile =
      QueryProfile::Build(std::move(spans), ProfileSummary{}, {});
  EXPECT_EQ(profile.roots().size(), 2u);
  const ProfileNode* stray = FindNode(profile, "stray");
  ASSERT_NE(stray, nullptr);
  const ProfileNode* open_child = FindNode(profile, "open_child");
  ASSERT_NE(open_child, nullptr);
  EXPECT_DOUBLE_EQ(open_child->wall_millis, 0.0);
  // The open child costs its parent nothing.
  EXPECT_DOUBLE_EQ(FindNode(profile, "query")->self_millis, 5.0);
}

TEST(QueryProfileTest, EmptySpanListYieldsEmptyTree) {
  QueryProfile profile = QueryProfile::Build({}, ProfileSummary{}, {});
  EXPECT_TRUE(profile.roots().empty());
  EXPECT_TRUE(profile.nodes().empty());
}

TEST(QueryProfileTest, PhaseCountersAttachByName) {
  std::vector<QueryProfile::PhaseCounters> phases(2);
  phases[0].phase = "clustering";
  phases[0].counters.cache_hits = 11;
  phases[0].counters.pages_read = 2;
  phases[1].phase = "no_such_phase";  // Silently dropped.
  phases[1].counters.cache_hits = 999;

  std::vector<TraceSpan> spans = {
      {1, 0, "query", 0.0, 10.0, 0},
      {2, 1, "clustering", 1.0, 5.0, 0},
  };
  QueryProfile profile =
      QueryProfile::Build(std::move(spans), ProfileSummary{}, phases);
  const ProfileNode* clustering = FindNode(profile, "clustering");
  ASSERT_NE(clustering, nullptr);
  EXPECT_EQ(clustering->counters.cache_hits, 11u);
  EXPECT_EQ(clustering->counters.pages_read, 2u);
  EXPECT_TRUE(clustering->counters.any());
  EXPECT_FALSE(FindNode(profile, "query")->counters.any());
  uint64_t total_hits = 0;
  for (const ProfileNode& n : profile.nodes()) {
    total_hits += n.counters.cache_hits;
  }
  EXPECT_EQ(total_hits, 11u) << "unknown phase leaked into the tree";
}

TEST(QueryProfileTest, SummaryAndSpansPreserved) {
  ProfileSummary summary;
  summary.label = "q1";
  summary.num_answers = 7;
  std::vector<TraceSpan> spans = {{2, 1, "b", 1.0, 1.0, 0},
                                  {1, 0, "a", 0.0, 2.0, 0}};
  QueryProfile profile =
      QueryProfile::Build(std::move(spans), summary, {});
  EXPECT_EQ(profile.summary().label, "q1");
  EXPECT_EQ(profile.summary().num_answers, 7u);
  // Spans kept verbatim, sorted by id for the trace-event export.
  ASSERT_EQ(profile.spans().size(), 2u);
  EXPECT_EQ(profile.spans()[0].id, 1u);
  EXPECT_EQ(profile.spans()[1].id, 2u);
}

TEST(ProfileLogTest, RetainsBoundedRingWithMonotonicIds) {
  ProfileLog log(2);
  EXPECT_EQ(log.capacity(), 2u);
  EXPECT_EQ(log.latest_id(), 0u);
  EXPECT_EQ(log.Latest(), nullptr);

  auto make = [] {
    return std::make_shared<QueryProfile>(
        QueryProfile::Build({}, ProfileSummary{}, {}));
  };
  auto p1 = make();
  EXPECT_EQ(p1->id(), 0u);  // Unretained profiles carry id 0.
  EXPECT_EQ(log.Add(p1), 1u);
  EXPECT_EQ(p1->id(), 1u);
  EXPECT_EQ(log.Add(make()), 2u);
  EXPECT_EQ(log.Add(make()), 3u);

  // Capacity 2: profile 1 evicted, 2 and 3 retained, ids never reused.
  EXPECT_EQ(log.latest_id(), 3u);
  EXPECT_EQ(log.Get(1), nullptr);
  ASSERT_NE(log.Get(2), nullptr);
  ASSERT_NE(log.Get(3), nullptr);
  EXPECT_EQ(log.Latest()->id(), 3u);
  EXPECT_EQ(log.Get(99), nullptr);  // Never assigned.

  auto snapshot = log.Snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0]->id(), 2u);  // Oldest first.
  EXPECT_EQ(snapshot[1]->id(), 3u);
}

TEST(ProfileLogTest, ZeroCapacityClampsToOne) {
  ProfileLog log(0);
  EXPECT_EQ(log.capacity(), 1u);
  log.Add(std::make_shared<QueryProfile>(
      QueryProfile::Build({}, ProfileSummary{}, {})));
  EXPECT_NE(log.Latest(), nullptr);
}

}  // namespace
}  // namespace sama

// SlowQueryLog: threshold gating, ring wraparound order, the JSONL
// sink through the Env seam, and the contract that a failing sink
// never propagates — it is counted and remembered, the ring still
// records, and (at the engine layer) the query itself succeeds.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "obs/slow_query_log.h"

namespace sama {
namespace {

SlowQueryRecord MakeRecord(const std::string& label, double total_ms) {
  SlowQueryRecord r;
  r.label = label;
  r.total_millis = total_ms;
  r.num_answers = 10;
  r.threads = 1;
  return r;
}

TEST(SlowQueryLogTest, ThresholdGatesRecording) {
  SlowQueryLog::Options options;
  options.threshold_millis = 50.0;
  SlowQueryLog log(options);
  EXPECT_TRUE(log.enabled());
  EXPECT_FALSE(log.ShouldRecord(49.9));
  EXPECT_TRUE(log.ShouldRecord(50.0));
  EXPECT_TRUE(log.ShouldRecord(500.0));
}

TEST(SlowQueryLogTest, NonPositiveThresholdDisables) {
  SlowQueryLog::Options options;
  options.threshold_millis = 0;
  SlowQueryLog log(options);
  EXPECT_FALSE(log.enabled());
  EXPECT_FALSE(log.ShouldRecord(1e9));
}

TEST(SlowQueryLogTest, RingWrapsOldestFirst) {
  SlowQueryLog::Options options;
  options.threshold_millis = 1.0;
  options.capacity = 3;
  SlowQueryLog log(options);
  for (int i = 0; i < 7; ++i) {
    log.Record(MakeRecord("q" + std::to_string(i), 10.0 + i));
  }
  EXPECT_EQ(log.total_recorded(), 7u);
  std::vector<SlowQueryRecord> ring = log.Snapshot();
  ASSERT_EQ(ring.size(), 3u);
  // Oldest-to-newest view of the last `capacity` records.
  EXPECT_EQ(ring[0].label, "q4");
  EXPECT_EQ(ring[1].label, "q5");
  EXPECT_EQ(ring[2].label, "q6");
}

TEST(SlowQueryLogTest, SnapshotBeforeWraparoundKeepsInsertionOrder) {
  SlowQueryLog::Options options;
  options.threshold_millis = 1.0;
  options.capacity = 8;
  SlowQueryLog log(options);
  log.Record(MakeRecord("first", 5.0));
  log.Record(MakeRecord("second", 6.0));
  std::vector<SlowQueryRecord> ring = log.Snapshot();
  ASSERT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring[0].label, "first");
  EXPECT_EQ(ring[1].label, "second");
}

TEST(SlowQueryLogTest, ToJsonLineIsOneEscapedLine) {
  SlowQueryRecord r = MakeRecord("needs\"escape\\and\nnewline", 12.5);
  r.search_truncated = true;
  std::string line = SlowQueryLog::ToJsonLine(r);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_NE(line.find("\"total_ms\":12.5"), std::string::npos) << line;
  EXPECT_NE(line.find("\"truncated\":true"), std::string::npos) << line;
  EXPECT_NE(line.find("needs\\\"escape\\\\and\\nnewline"),
            std::string::npos)
      << line;
}

TEST(SlowQueryLogTest, JsonlSinkAppendsOneLinePerRecord) {
  std::string path = (std::filesystem::temp_directory_path() /
                      "sama_slow_query_sink_test.jsonl")
                         .string();
  std::remove(path.c_str());
  {
    SlowQueryLog::Options options;
    options.threshold_millis = 1.0;
    options.jsonl_path = path;
    SlowQueryLog log(options);
    log.Record(MakeRecord("a", 10.0));
    log.Record(MakeRecord("b", 20.0));
    EXPECT_EQ(log.sink_failures(), 0u);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"label\":\"a\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"label\":\"b\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(SlowQueryLogTest, SinkFailureIsCountedNeverPropagated) {
  std::string path = (std::filesystem::temp_directory_path() /
                      "sama_slow_query_faulty_sink.jsonl")
                         .string();
  std::remove(path.c_str());
  FaultyEnv env(Env::Default());
  FaultSpec spec;
  spec.fail_after = 1;  // First append lands; every later one fails.
  env.Arm(IoOp::kWrite, spec);

  SlowQueryLog::Options options;
  options.threshold_millis = 1.0;
  options.jsonl_path = path;
  options.env = &env;
  SlowQueryLog log(options);
  log.Record(MakeRecord("ok", 10.0));
  log.Record(MakeRecord("dropped1", 20.0));
  log.Record(MakeRecord("dropped2", 30.0));

  EXPECT_EQ(log.sink_failures(), 2u);
  EXPECT_FALSE(log.last_sink_status().ok());
  // The in-memory ring is unaffected by the sink failing.
  EXPECT_EQ(log.Snapshot().size(), 3u);
  EXPECT_EQ(log.total_recorded(), 3u);

  std::ifstream in(path);
  ASSERT_TRUE(in);
  std::string line;
  size_t lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 1u);  // Only the pre-fault record reached disk.
  std::remove(path.c_str());
}

TEST(SlowQueryLogTest, CapacityClampedToAtLeastOne) {
  SlowQueryLog::Options options;
  options.threshold_millis = 1.0;
  options.capacity = 0;
  SlowQueryLog log(options);
  log.Record(MakeRecord("only", 5.0));
  log.Record(MakeRecord("newer", 6.0));
  std::vector<SlowQueryRecord> ring = log.Snapshot();
  ASSERT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring[0].label, "newer");
}

}  // namespace
}  // namespace sama

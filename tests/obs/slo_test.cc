// SLO tier: burn-rate evaluation over a synthetic telemetry ring — a
// healthy window stays "ok", error/shed/latency budget overruns flip
// the tracker to degraded with the right violation list and publish
// the sama_slo_* gauges, and recovery clears the state once the bad
// window ages out.
#include "obs/slo.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "obs/timeseries.h"

namespace sama {
namespace {

// One registry + ring + tracker per test, with the server-shaped
// instruments the rollup math reads.
struct Fixture {
  MetricsRegistry registry;
  Counter* requests;
  Counter* shed;
  Counter* errors;
  Histogram* latency;
  TimeSeriesRing ring;
  SloTracker slo;

  explicit Fixture(SloOptions options)
      : requests(registry.GetCounter("sama_server_requests_total", "r",
                                     {{"type", "query"}})),
        shed(registry.GetCounter("sama_server_shed_total", "s")),
        errors(registry.GetCounter("sama_server_errors_total", "e")),
        latency(registry.GetHistogram("sama_server_request_millis", "l",
                                      Histogram::LatencyBucketsMillis())),
        ring([this] {
          TimeSeriesRing::Options o;
          o.registry = &registry;
          return o;
        }()),
        slo(options, &ring, &registry) {
    ring.SampleOnce();  // Baseline snapshot.
  }

  void Tick() { ring.SampleOnce(); }
};

TEST(SloTrackerTest, UnevaluatedUntilFirstEvaluate) {
  Fixture f{SloOptions{}};
  SloTracker::Health h = f.slo.Snapshot();
  EXPECT_FALSE(h.evaluated);
  EXPECT_FALSE(h.degraded);
  f.slo.Evaluate();
  h = f.slo.Snapshot();
  EXPECT_TRUE(h.evaluated);
  EXPECT_FALSE(h.degraded);
}

TEST(SloTrackerTest, HealthyTrafficStaysOk) {
  Fixture f{SloOptions{}};
  f.requests->Increment(1000);
  for (int i = 0; i < 1000; ++i) f.latency->Observe(1.0);
  f.Tick();
  f.slo.Evaluate();
  SloTracker::Health h = f.slo.Snapshot();
  EXPECT_FALSE(h.degraded);
  EXPECT_EQ(h.violations.size(), 0u);
  EXPECT_LT(h.error_burn, 1.0);
  std::string json = f.slo.RenderJson();
  EXPECT_NE(json.find("\"status\":\"ok\""), std::string::npos) << json;
}

TEST(SloTrackerTest, ErrorBudgetOverrunDegrades) {
  SloOptions options;
  options.error_ratio = 0.01;  // 1% allowed; we push 10%.
  Fixture f{options};
  f.requests->Increment(100);
  f.errors->Increment(10);
  f.Tick();
  f.slo.Evaluate();
  SloTracker::Health h = f.slo.Snapshot();
  EXPECT_TRUE(h.degraded);
  ASSERT_EQ(h.violations.size(), 1u);
  EXPECT_EQ(h.violations[0], "errors");
  EXPECT_NEAR(h.error_burn, 10.0, 1e-6);  // 10% observed / 1% allowed.
  std::string json = f.slo.RenderJson();
  EXPECT_NE(json.find("\"status\":\"degraded\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"violations\":[\"errors\"]"), std::string::npos)
      << json;
}

TEST(SloTrackerTest, ShedBudgetOverrunDegrades) {
  SloOptions options;
  options.shed_ratio = 0.05;
  Fixture f{options};
  f.requests->Increment(80);
  f.shed->Increment(20);  // 20% of offered load shed.
  f.Tick();
  f.slo.Evaluate();
  SloTracker::Health h = f.slo.Snapshot();
  EXPECT_TRUE(h.degraded);
  ASSERT_EQ(h.violations.size(), 1u);
  EXPECT_EQ(h.violations[0], "shed");
  EXPECT_NEAR(h.shed_burn, 4.0, 1e-6);  // 20% observed / 5% allowed.
}

TEST(SloTrackerTest, LatencyBudgetOverrunDegrades) {
  SloOptions options;
  options.latency_millis = 250.0;
  options.latency_bad_ratio = 0.01;
  Fixture f{options};
  f.requests->Increment(100);
  // 5% of requests above the objective: 5x the allowed bad ratio.
  for (int i = 0; i < 100; ++i) f.latency->Observe(i < 95 ? 1.0 : 900.0);
  f.Tick();
  f.slo.Evaluate();
  SloTracker::Health h = f.slo.Snapshot();
  EXPECT_TRUE(h.degraded);
  ASSERT_EQ(h.violations.size(), 1u);
  EXPECT_EQ(h.violations[0], "latency");
  EXPECT_NEAR(h.latency_burn, 5.0, 1e-6);
  EXPECT_GT(h.latency_p99_millis, 250.0);
}

TEST(SloTrackerTest, BurnThresholdScalesSensitivity) {
  SloOptions options;
  options.error_ratio = 0.01;
  options.burn_threshold = 20.0;  // Tolerate up to 20x budget burn.
  Fixture f{options};
  f.requests->Increment(100);
  f.errors->Increment(10);  // Burn 10x: below the 20x threshold.
  f.Tick();
  f.slo.Evaluate();
  EXPECT_FALSE(f.slo.Snapshot().degraded);
}

TEST(SloTrackerTest, DisabledTrackerNeverEvaluates) {
  SloOptions options;
  options.enabled = false;
  Fixture f{options};
  f.requests->Increment(10);
  f.errors->Increment(10);
  f.Tick();
  f.slo.Evaluate();
  EXPECT_FALSE(f.slo.Snapshot().evaluated);
}

TEST(SloTrackerTest, PublishesGaugesToRegistry) {
  SloOptions options;
  options.error_ratio = 0.01;
  Fixture f{options};
  f.requests->Increment(100);
  f.errors->Increment(10);
  f.Tick();
  f.slo.Evaluate();
  std::string text = f.registry.RenderText();
  EXPECT_NE(text.find("sama_slo_degraded 1"), std::string::npos) << text;
  EXPECT_NE(text.find("sama_slo_error_burn_rate 10"), std::string::npos)
      << text;
}

TEST(SloTrackerTest, RecoversOnceTheWindowIsClean) {
  SloOptions options;
  options.error_ratio = 0.01;
  options.window_seconds = 0.05;  // Tiny window so the bad tick ages out.
  Fixture f{options};
  f.requests->Increment(100);
  f.errors->Increment(10);
  f.Tick();
  f.slo.Evaluate();
  EXPECT_TRUE(f.slo.Snapshot().degraded);
  // New clean samples push the bad delta out of the rolling window.
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  f.requests->Increment(100);
  f.Tick();
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  f.requests->Increment(100);
  f.Tick();
  f.slo.Evaluate();
  SloTracker::Health h = f.slo.Snapshot();
  EXPECT_FALSE(h.degraded) << f.slo.RenderJson();
}

}  // namespace
}  // namespace sama

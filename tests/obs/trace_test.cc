// QueryTrace/ObsSpan: same-thread nesting via the thread-local current
// span, explicit parenting across ParallelFor workers (thread-locals do
// not follow work onto the pool), per-trace thread ordinals, and the
// JSON shape the CLI's `-- trace:` line and the CI smoke checker parse.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "obs/trace.h"

namespace sama {
namespace {

std::map<uint64_t, TraceSpan> ById(const QueryTrace& trace) {
  std::map<uint64_t, TraceSpan> out;
  for (const TraceSpan& s : trace.Snapshot()) out[s.id] = s;
  return out;
}

TEST(TraceTest, SameThreadSpansNestUnderCurrent) {
  QueryTrace trace;
  uint64_t root_id, child_id, grandchild_id;
  {
    ObsSpan root(&trace, "query");
    root_id = root.id();
    EXPECT_EQ(ObsSpan::CurrentId(&trace), root_id);
    {
      ObsSpan child(&trace, "clustering");
      child_id = child.id();
      {
        ObsSpan grandchild(&trace, "score");
        grandchild_id = grandchild.id();
      }
      EXPECT_EQ(ObsSpan::CurrentId(&trace), child_id);
    }
    EXPECT_EQ(ObsSpan::CurrentId(&trace), root_id);
  }
  EXPECT_EQ(ObsSpan::CurrentId(&trace), 0u);

  auto spans = ById(trace);
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[root_id].parent, 0u);
  EXPECT_EQ(spans[child_id].parent, root_id);
  EXPECT_EQ(spans[grandchild_id].parent, child_id);
  for (const auto& [id, s] : spans) {
    EXPECT_GE(s.duration_millis, 0.0) << s.name << " left open";
    EXPECT_GE(s.start_millis, 0.0);
  }
}

TEST(TraceTest, SiblingSpansShareAParent) {
  QueryTrace trace;
  ObsSpan root(&trace, "query");
  uint64_t a, b;
  {
    ObsSpan first(&trace, "preprocess");
    a = first.id();
  }
  {
    ObsSpan second(&trace, "search");
    b = second.id();
  }
  auto spans = ById(trace);
  EXPECT_EQ(spans[a].parent, root.id());
  EXPECT_EQ(spans[b].parent, root.id());
  EXPECT_NE(a, b);
}

TEST(TraceTest, ExplicitParentAcrossParallelFor) {
  QueryTrace trace;
  ObsSpan phase(&trace, "clustering");
  const uint64_t parent = phase.id();
  ThreadPool pool(3);
  constexpr size_t kTasks = 64;
  Status s = ParallelFor(&pool, kTasks, [&](size_t) -> Status {
    // A worker's thread-local current span is empty — the phase span
    // lives on the calling thread — so the parent must be explicit.
    ObsSpan span(&trace, "score_chunk", parent);
    EXPECT_EQ(ObsSpan::CurrentId(&trace), span.id());
    return Status::Ok();
  });
  ASSERT_TRUE(s.ok());

  size_t chunk_spans = 0;
  for (const TraceSpan& span : trace.Snapshot()) {
    if (span.name != "score_chunk") continue;
    ++chunk_spans;
    EXPECT_EQ(span.parent, parent);
    EXPECT_GE(span.duration_millis, 0.0);
  }
  EXPECT_EQ(chunk_spans, kTasks);
}

// ParallelFor nested inside a ParallelFor worker (the pool is
// nested-safe: callers participate). Span structure must stay intact:
// inner spans parent under their worker's outer chunk span, nothing is
// orphaned, and thread ordinals stay dense per-trace ids.
void RunNestedParallelFor(size_t threads) {
  QueryTrace trace;
  ObsSpan root(&trace, "query");
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads - 1);
  constexpr size_t kOuter = 8;
  constexpr size_t kInner = 4;
  std::set<uint64_t> outer_ids;
  std::mutex mu;
  Status s = ParallelFor(pool.get(), kOuter, [&](size_t) -> Status {
    ObsSpan outer(&trace, "outer_chunk", root.id());
    const uint64_t outer_id = outer.id();
    {
      std::lock_guard<std::mutex> lock(mu);
      outer_ids.insert(outer_id);
    }
    return ParallelFor(pool.get(), kInner,
                       [&trace, outer_id](size_t) -> Status {
                         ObsSpan inner(&trace, "inner_chunk", outer_id);
                         EXPECT_EQ(ObsSpan::CurrentId(&trace), inner.id());
                         return Status::Ok();
                       });
  });
  ASSERT_TRUE(s.ok());

  auto spans = trace.Snapshot();
  std::set<uint64_t> ids;
  for (const TraceSpan& span : spans) ids.insert(span.id);
  size_t outer_count = 0, inner_count = 0;
  for (const TraceSpan& span : spans) {
    // No orphans: every non-root parent edge points at a recorded span.
    if (span.parent != 0) {
      EXPECT_EQ(ids.count(span.parent), 1u)
          << span.name << " parents dangling id " << span.parent;
    }
    // Ordinals stay dense: workers + the caller, nothing beyond.
    EXPECT_LT(span.thread, threads);
    if (span.name == "outer_chunk") {
      ++outer_count;
      EXPECT_EQ(span.parent, root.id());
    } else if (span.name == "inner_chunk") {
      ++inner_count;
      EXPECT_EQ(outer_ids.count(span.parent), 1u)
          << "inner span parented outside the outer chunks";
    }
  }
  EXPECT_EQ(outer_count, kOuter);
  EXPECT_EQ(inner_count, kOuter * kInner);
}

TEST(TraceTest, NestedParallelForSequential) { RunNestedParallelFor(1); }

TEST(TraceTest, NestedParallelForFourThreads) { RunNestedParallelFor(4); }

TEST(TraceTest, ThreadOrdinalsArePerTraceAndSmall) {
  QueryTrace trace;
  ObsSpan root(&trace, "query");
  ThreadPool pool(3);
  ASSERT_TRUE(ParallelFor(&pool, 32, [&](size_t) -> Status {
                ObsSpan span(&trace, "work", root.id());
                return Status::Ok();
              }).ok());
  // Ordinals are dense per-trace ids, not OS thread ids: with 3 workers
  // + the caller at most 4 distinct values, all < 4.
  for (const TraceSpan& span : trace.Snapshot()) {
    EXPECT_LT(span.thread, 4u);
  }
}

TEST(TraceTest, MoveTransfersOwnership) {
  QueryTrace trace;
  ObsSpan a(&trace, "outer");
  uint64_t id = a.id();
  ObsSpan b = std::move(a);
  EXPECT_EQ(b.id(), id);
  b = ObsSpan();  // Closes the span.
  auto spans = ById(trace);
  EXPECT_GE(spans[id].duration_millis, 0.0);
}

TEST(TraceTest, SnapshotMarksOpenSpans) {
  QueryTrace trace;
  ObsSpan open(&trace, "still_running");
  auto spans = ById(trace);
  EXPECT_LT(spans[open.id()].duration_millis, 0.0);
}

TEST(TraceTest, NullTraceIsANoOp) {
  ObsSpan span(nullptr, "nothing");
  EXPECT_EQ(span.id(), 0u);
  EXPECT_EQ(ObsSpan::CurrentId(nullptr), 0u);
}

TEST(TraceTest, ToJsonShape) {
  QueryTrace trace;
  {
    ObsSpan root(&trace, "query");
    ObsSpan child(&trace, "needs\"escaping\\here");
  }
  std::string json = trace.ToJson();
  // Shape, not timings: starts with the spans array, ids in order,
  // special characters escaped.
  EXPECT_EQ(json.rfind("{\"spans\":[", 0), 0u) << json;
  EXPECT_NE(json.find("\"id\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"id\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"parent\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("needs\\\"escaping\\\\here"), std::string::npos)
      << json;
  EXPECT_EQ(json.find('\n'), std::string::npos) << "must be one line";
  // Balanced braces/brackets (cheap well-formedness proxy).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

}  // namespace
}  // namespace sama

// Telemetry-history tier: the TimeSeriesRing sampler against a private
// registry — ring wraparound, counter-rate math including the
// reset-clamps-to-zero rule, histogram quantiles over windowed bucket
// deltas, the /debug/top rollup, and sampler-vs-mutator concurrency
// (CI runs this binary under TSan via SAMA_SANITIZE).
#include "obs/timeseries.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/slo.h"

namespace sama {
namespace {

TEST(TimeSeriesRingTest, SampleOnceCapturesRegistryInstruments) {
  MetricsRegistry registry;
  Counter* hits = registry.GetCounter("test_hits_total", "hits");
  registry.GetGauge("test_depth", "depth")->Set(3.5);
  TimeSeriesRing::Options options;
  options.registry = &registry;
  TimeSeriesRing ring(options);
  EXPECT_EQ(ring.num_samples(), 0u);
  hits->Increment(4);
  ring.SampleOnce();
  EXPECT_EQ(ring.num_samples(), 1u);
  std::vector<std::string> keys = ring.MetricKeys();
  ASSERT_EQ(keys.size(), 2u);  // Registry order: sorted by name.
  EXPECT_EQ(keys[0], "test_depth");
  EXPECT_EQ(keys[1], "test_hits_total");
}

TEST(TimeSeriesRingTest, RingWrapsAtCapacity) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("test_total", "t");
  TimeSeriesRing::Options options;
  options.registry = &registry;
  options.capacity = 5;
  TimeSeriesRing ring(options);
  for (int i = 0; i < 17; ++i) {
    c->Increment();
    ring.SampleOnce();
    EXPECT_LE(ring.num_samples(), 5u);
  }
  EXPECT_EQ(ring.num_samples(), 5u);
  // The retained window still renders and sees only the newest
  // samples: the counter moved 4 times across the 5 retained
  // snapshots (17-Increment total, values 13..17).
  std::string json = ring.RenderJson("test_total", /*window_seconds=*/0);
  EXPECT_NE(json.find("\"kind\":\"counter\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"samples\":5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"v\":17"), std::string::npos) << json;
  EXPECT_EQ(json.find("\"v\":12"), std::string::npos) << json;
}

TEST(TimeSeriesRingTest, CounterResetClampsRateToZero) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("test_total", "t");
  TimeSeriesRing::Options options;
  options.registry = &registry;
  TimeSeriesRing ring(options);
  c->Increment(100);
  ring.SampleOnce();
  registry.ResetValuesForTest();  // The "process restarted" shape.
  c->Increment(2);
  ring.SampleOnce();
  std::string json = ring.RenderJson("test_total", 0);
  // 2 < 100: the windowed increase must clamp to zero, never go
  // negative.
  EXPECT_NE(json.find("\"increase\":0,"), std::string::npos) << json;
  EXPECT_NE(json.find("\"rate_per_sec\":0,"), std::string::npos) << json;
}

TEST(TimeSeriesRingTest, HistogramQuantilesOverWindowDeltas) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("test_latency_millis", "l",
                                       Histogram::LatencyBucketsMillis());
  TimeSeriesRing::Options options;
  options.registry = &registry;
  TimeSeriesRing ring(options);
  // Old mass the window math must subtract out.
  for (int i = 0; i < 50; ++i) h->Observe(4000.0);
  ring.SampleOnce();
  // New mass: all fast.
  for (int i = 0; i < 100; ++i) h->Observe(0.2);
  ring.SampleOnce();
  std::string json = ring.RenderJson("test_latency_millis", 0);
  EXPECT_NE(json.find("\"kind\":\"histogram\""), std::string::npos) << json;
  // p99 over the delta must reflect only the fast observations — the
  // 4-second tail predates the window's first sample.
  size_t at = json.find("\"p99\":");
  ASSERT_NE(at, std::string::npos) << json;
  double p99 = std::strtod(json.c_str() + at + 6, nullptr);
  EXPECT_LE(p99, 1.0) << json;
}

TEST(TimeSeriesRingTest, UnknownMetricListsAlternatives) {
  MetricsRegistry registry;
  registry.GetCounter("test_total", "t");
  TimeSeriesRing::Options options;
  options.registry = &registry;
  TimeSeriesRing ring(options);
  ring.SampleOnce();
  std::string json = ring.RenderJson("nope", 0);
  EXPECT_NE(json.find("unknown metric"), std::string::npos);
  EXPECT_NE(json.find("test_total"), std::string::npos);
}

TEST(TimeSeriesRingTest, TopSummaryComputesServerRollup) {
  MetricsRegistry registry;
  Counter* requests =
      registry.GetCounter("sama_server_requests_total", "r",
                          {{"type", "query"}});
  Counter* shed = registry.GetCounter("sama_server_shed_total", "s");
  Counter* errors = registry.GetCounter("sama_server_errors_total", "e");
  Histogram* latency =
      registry.GetHistogram("sama_server_request_millis", "l",
                            Histogram::LatencyBucketsMillis());
  Counter* cache_hits = registry.GetCounter("sama_cache_hits_total", "h");
  Counter* cache_misses =
      registry.GetCounter("sama_cache_misses_total", "m");
  TimeSeriesRing::Options options;
  options.registry = &registry;
  TimeSeriesRing ring(options);
  ring.SampleOnce();
  requests->Increment(80);
  shed->Increment(10);
  errors->Increment(10);
  for (int i = 0; i < 80; ++i) latency->Observe(i < 72 ? 1.0 : 400.0);
  cache_hits->Increment(30);
  cache_misses->Increment(10);
  ring.SampleOnce();
  TimeSeriesRing::TopSummary top =
      ring.Summarize(/*window_seconds=*/0, /*slow_threshold_millis=*/250);
  EXPECT_EQ(top.requests_in_window, 80u);
  EXPECT_GT(top.qps, 0.0);
  EXPECT_NEAR(top.shed_ratio, 10.0 / 90.0, 1e-9);
  EXPECT_NEAR(top.error_ratio, 10.0 / 80.0, 1e-9);
  EXPECT_NEAR(top.cache_hit_ratio, 0.75, 1e-9);
  EXPECT_NEAR(top.slow_ratio, 0.1, 1e-9);  // 8 of 80 above 250ms.
  EXPECT_GT(top.p99_millis, 250.0);
  EXPECT_LT(top.p50_millis, 10.0);
}

TEST(TimeSeriesRingTest, OnSampleHookFiresPerSnapshot) {
  MetricsRegistry registry;
  TimeSeriesRing::Options options;
  options.registry = &registry;
  TimeSeriesRing ring(options);
  int fired = 0;
  ring.SetOnSample([&fired](const TimeSeriesRing& r) {
    ++fired;
    EXPECT_GE(r.num_samples(), 1u);
  });
  ring.SampleOnce();
  ring.SampleOnce();
  EXPECT_EQ(fired, 2);
}

TEST(TimeSeriesRingTest, SamplerThreadRacedAgainstMutators) {
  // A fast sampler raced against four instrument-mutating threads plus
  // a reader thread: no torn state, no crashes, and the ring keeps
  // accumulating. TSan validates the memory discipline.
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("race_total", "r");
  Gauge* g = registry.GetGauge("race_gauge", "g");
  Histogram* h = registry.GetHistogram("race_millis", "h",
                                       Histogram::LatencyBucketsMillis());
  TimeSeriesRing::Options options;
  options.registry = &registry;
  options.interval_seconds = 0.001;
  options.capacity = 32;
  TimeSeriesRing ring(options);
  SloTracker slo(SloOptions{}, &ring, &registry);
  ring.SetOnSample([&slo](const TimeSeriesRing&) { slo.Evaluate(); });
  ring.Start();
  ring.Start();  // Idempotent.
  std::atomic<bool> stop{false};
  std::vector<std::thread> mutators;
  for (int t = 0; t < 4; ++t) {
    mutators.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        c->Increment();
        g->Add(1.0);
        h->Observe(1.5);
      }
    });
  }
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)ring.RenderTopJson(1.0);
      (void)ring.RenderJson("race_total", 1.0);
      (void)slo.Snapshot();
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true);
  for (std::thread& t : mutators) t.join();
  reader.join();
  ring.Stop();
  ring.Stop();  // Idempotent.
  EXPECT_GE(ring.num_samples(), 2u);
  EXPECT_LE(ring.num_samples(), 32u);
}

}  // namespace
}  // namespace sama

// PathIndex persistence: Build() into a directory, Open() it back
// without recomputing anything, and get identical query behaviour.

#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "core/engine.h"
#include "datasets/govtrack.h"
#include "datasets/lubm.h"
#include "index/path_index.h"
#include "text/thesaurus.h"

namespace sama {
namespace {

std::string FreshDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/pidx_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

TEST(PathIndexPersistenceTest, ReopenedIndexAnswersIdentically) {
  std::string dir = FreshDir("roundtrip");
  std::vector<Triple> triples = GovTrackFigure1Triples();
  DataGraph graph = DataGraph::FromTriples(triples);
  PathIndexOptions options;
  options.dir = dir;
  IndexStats built_stats;
  {
    PathIndex index;
    ASSERT_TRUE(index.Build(graph, options).ok());
    built_stats = index.stats();
  }  // Index object destroyed; files remain.

  // Same triples -> same graph -> same term ids.
  DataGraph graph2 = DataGraph::FromTriples(triples);
  PathIndex reopened;
  ASSERT_TRUE(reopened.Open(&graph2, options).ok());

  EXPECT_EQ(reopened.path_count(), built_stats.num_paths);
  EXPECT_EQ(reopened.stats().hv, built_stats.hv);
  EXPECT_EQ(reopened.stats().he, built_stats.he);
  EXPECT_EQ(reopened.sources().size(), 7u);
  EXPECT_EQ(reopened.sinks().size(), 4u);

  TermId hc = graph2.dict().Find(Term::Literal("Health Care"));
  EXPECT_EQ(reopened.PathsWithSinkLabel(hc).size(), 10u);

  Thesaurus thesaurus = Thesaurus::BuiltinEnglish();
  EXPECT_EQ(
      reopened.PathsWithSinkMatching(Term::Literal("Man"), &thesaurus)
          .size(),
      4u);
  Path p;
  ASSERT_TRUE(reopened.GetPath(0, &p).ok());
  EXPECT_GE(p.length(), 2u);
}

TEST(PathIndexPersistenceTest, FullEngineOverReopenedIndex) {
  std::string dir = FreshDir("engine");
  std::vector<Triple> triples = GovTrackFigure1Triples();
  DataGraph graph = DataGraph::FromTriples(triples);
  PathIndexOptions options;
  options.dir = dir;
  {
    PathIndex index;
    ASSERT_TRUE(index.Build(graph, options).ok());
  }
  DataGraph graph2 = DataGraph::FromTriples(triples);
  PathIndex index;
  ASSERT_TRUE(index.Open(&graph2, options).ok());
  Thesaurus thesaurus = Thesaurus::BuiltinEnglish();
  SamaEngine engine(&graph2, &index, &thesaurus);
  QueryGraph q1 = engine.BuildQueryGraph(GovTrackQuery1Patterns());
  auto answers = engine.Execute(q1, 3);
  ASSERT_TRUE(answers.ok()) << answers.status();
  ASSERT_FALSE(answers->empty());
  EXPECT_DOUBLE_EQ((*answers)[0].lambda_total, 0.0);
  EXPECT_EQ((*answers)[0].binding.Lookup("v3")->DisplayLabel(),
            "PierceDickes");
}

TEST(PathIndexPersistenceTest, MismatchedGraphRejected) {
  std::string dir = FreshDir("mismatch");
  DataGraph graph = DataGraph::FromTriples(GovTrackFigure1Triples());
  PathIndexOptions options;
  options.dir = dir;
  {
    PathIndex index;
    ASSERT_TRUE(index.Build(graph, options).ok());
  }
  DataGraph other = DataGraph::FromTriples(GenerateLubm(LubmConfig()));
  PathIndex index;
  Status s = index.Open(&other, options);
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument) << s;
}

TEST(PathIndexPersistenceTest, OpenRequiresDir) {
  DataGraph graph = DataGraph::FromTriples(GovTrackFigure1Triples());
  PathIndex index;
  EXPECT_EQ(index.Open(&graph, PathIndexOptions()).code(),
            Status::Code::kInvalidArgument);
}

TEST(PathIndexPersistenceTest, MissingMetaIsError) {
  std::string dir = FreshDir("missingmeta");
  DataGraph graph = DataGraph::FromTriples(GovTrackFigure1Triples());
  PathIndexOptions options;
  options.dir = dir;
  PathIndex index;
  Status s = index.Open(&graph, options);
  EXPECT_FALSE(s.ok());
}

TEST(PathIndexPersistenceTest, OpenWithoutHypergraph) {
  std::string dir = FreshDir("nohyper");
  DataGraph graph = DataGraph::FromTriples(GovTrackFigure1Triples());
  PathIndexOptions options;
  options.dir = dir;
  options.build_hypergraph = false;
  {
    PathIndex index;
    ASSERT_TRUE(index.Build(graph, options).ok());
  }
  PathIndex index;
  ASSERT_TRUE(index.Open(&graph, options).ok());
  EXPECT_EQ(index.path_count(), 19u);
}

TEST(PathIndexPersistenceTest, UpdatesAndQueriesSurviveReopen) {
  // The regression scenario: a query interns terms (the variable, a
  // novel literal) into the shared dictionary BEFORE updates are
  // applied, shifting later TermIds; the persisted dictionary image
  // must restore the exact id space and the journal must replay the
  // updates into the base graph.
  std::string dir = FreshDir("journal");
  std::vector<Triple> triples = GovTrackFigure1Triples();
  PathIndexOptions options;
  options.dir = dir;
  {
    DataGraph graph = DataGraph::FromTriples(triples);
    PathIndex index;
    ASSERT_TRUE(index.Build(graph, options).ok());
    Thesaurus thesaurus = Thesaurus::BuiltinEnglish();
    SamaEngine engine(&graph, &index, &thesaurus);
    // Pollute the dictionary with query-only terms.
    (void)engine.Execute(
        engine.BuildQueryGraph(
            {{Term::Variable("who"),
              Term::Iri("http://gov.example.org/gender"),
              Term::Literal("NeverSeenValue")}}),
        5);
    // Incremental updates, including one that extends a former sink
    // (tombstoning old paths).
    ASSERT_TRUE(index
                    .AddTriple(&graph,
                               {Term::Iri("http://gov.example.org/Dana"),
                                Term::Iri("http://gov.example.org/gender"),
                                Term::Literal("Male")})
                    .ok());
    ASSERT_TRUE(
        index
            .AddTriple(&graph,
                       {Term::Literal("Health Care"),
                        Term::Iri("http://gov.example.org/category"),
                        Term::Literal("Domestic Policy")})
            .ok());
    ASSERT_TRUE(index.Checkpoint().ok());
  }

  DataGraph base = DataGraph::FromTriples(triples);
  PathIndex reopened;
  ASSERT_TRUE(reopened.Open(&base, options).ok());
  // The journal replay extended the graph.
  EXPECT_EQ(base.edge_count(), triples.size() + 2);
  // Tombstones survived: the Health Care sink paths were replaced.
  TermId hc = base.dict().Find(Term::Literal("Health Care"));
  EXPECT_TRUE(reopened.PathsWithSinkLabel(hc).empty());
  TermId dp = base.dict().Find(Term::Literal("Domestic Policy"));
  ASSERT_NE(dp, kInvalidTermId);
  EXPECT_FALSE(reopened.PathsWithSinkLabel(dp).empty());
  // The new person answers queries with correct labels.
  Thesaurus thesaurus = Thesaurus::BuiltinEnglish();
  SamaEngine engine(&base, &reopened, &thesaurus);
  auto answers = engine.Execute(
      engine.BuildQueryGraph({{Term::Variable("p"),
                               Term::Iri("http://gov.example.org/gender"),
                               Term::Literal("Male")}}),
      10);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->size(), 5u);
  std::set<std::string> names;
  for (const Answer& a : *answers) {
    names.insert(a.binding.Lookup("p")->DisplayLabel());
  }
  EXPECT_TRUE(names.count("Dana")) << "journal replay lost the update";
  EXPECT_TRUE(names.count("PierceDickes"));
}

TEST(PathIndexPersistenceTest, DictionaryDriftRejected) {
  std::string dir = FreshDir("drift");
  std::vector<Triple> triples = GovTrackFigure1Triples();
  {
    DataGraph graph = DataGraph::FromTriples(triples);
    PathIndexOptions options;
    options.dir = dir;
    PathIndex index;
    ASSERT_TRUE(index.Build(graph, options).ok());
  }
  // A graph over the same triples but with an extra term interned in a
  // conflicting slot.
  DataGraph drifted = DataGraph::FromTriples(triples);
  drifted.dict().Intern(Term::Literal("intruder"));
  PathIndexOptions options;
  options.dir = dir;
  PathIndex index;
  // Build saved no extra terms, so the intruder slot never collides …
  // unless updates/queries had claimed it. Opening still succeeds here
  // because the saved dictionary is a prefix of the drifted one.
  EXPECT_TRUE(index.Open(&drifted, options).ok());

  // Now the conflicting case: the saved image has terms the drifted
  // graph assigned differently.
  std::string dir2 = FreshDir("drift2");
  {
    DataGraph graph = DataGraph::FromTriples(triples);
    PathIndexOptions options2;
    options2.dir = dir2;
    PathIndex building;
    ASSERT_TRUE(building.Build(graph, options2).ok());
    ASSERT_TRUE(building
                    .AddTriple(&graph,
                               {Term::Iri("http://gov.example.org/X"),
                                Term::Iri("http://gov.example.org/gender"),
                                Term::Literal("Male")})
                    .ok());
    ASSERT_TRUE(building.Checkpoint().ok());
  }
  DataGraph conflicting = DataGraph::FromTriples(triples);
  conflicting.dict().Intern(Term::Literal("intruder"));  // Steals X's id.
  PathIndexOptions options2;
  options2.dir = dir2;
  PathIndex index2;
  EXPECT_EQ(index2.Open(&conflicting, options2).code(),
            Status::Code::kInvalidArgument);
}

}  // namespace
}  // namespace sama

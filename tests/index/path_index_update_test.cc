// Incremental index maintenance (§7 future work): AddTriple must leave
// the index equivalent to a full rebuild over the extended graph.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/engine.h"
#include "datasets/govtrack.h"
#include "index/path_index.h"
#include "text/thesaurus.h"

namespace sama {
namespace {

Term Gov(const std::string& local) {
  return Term::Iri("http://gov.example.org/" + local);
}

// Renders the live paths of an index as a sorted set of strings.
std::set<std::string> LivePaths(const PathIndex& index,
                                const DataGraph& graph) {
  std::set<std::string> out;
  for (PathId id = 0; id < index.path_count(); ++id) {
    Path p;
    if (index.GetPath(id, &p).ok()) out.insert(p.ToString(graph.dict()));
  }
  return out;
}

class PathIndexUpdateTest : public testing::Test {
 protected:
  PathIndexUpdateTest()
      : graph_(DataGraph::FromTriples(GovTrackFigure1Triples())) {
    Status s = index_.Build(graph_, PathIndexOptions());
    EXPECT_TRUE(s.ok()) << s;
  }

  // Reference: full rebuild over the same extended triples.
  std::set<std::string> RebuildPaths(const std::vector<Triple>& extra) {
    std::vector<Triple> triples = GovTrackFigure1Triples();
    triples.insert(triples.end(), extra.begin(), extra.end());
    DataGraph graph = DataGraph::FromTriples(triples);
    PathIndex index;
    PathIndexOptions options;
    options.build_hypergraph = false;
    EXPECT_TRUE(index.Build(graph, options).ok());
    return LivePaths(index, graph);
  }

  DataGraph graph_;
  PathIndex index_;
};

TEST_F(PathIndexUpdateTest, DuplicateTripleIsNoOp) {
  uint64_t before = index_.path_count();
  Triple existing{Gov("CarlaBunes"), Gov("sponsor"), Gov("A0056")};
  ASSERT_TRUE(index_.AddTriple(&graph_, existing).ok());
  EXPECT_EQ(index_.path_count(), before);
  EXPECT_EQ(index_.live_path_count(), before);
}

TEST_F(PathIndexUpdateTest, NewAmendmentChainMatchesRebuild) {
  // Alice Nimber also sponsors a new amendment to B0532.
  std::vector<Triple> extra = {
      {Gov("AliceNimber"), Gov("sponsor"), Gov("A9999")},
      {Gov("A9999"), Gov("aTo"), Gov("B0532")},
  };
  for (const Triple& t : extra) {
    ASSERT_TRUE(index_.AddTriple(&graph_, t).ok());
  }
  EXPECT_EQ(LivePaths(index_, graph_), RebuildPaths(extra));
}

TEST_F(PathIndexUpdateTest, ExtendingASinkTombstonesOldPaths) {
  // Give Health Care an outgoing edge: it stops being a sink, so the
  // 10 old ...-subject-HealthCare paths must be replaced by extended
  // ones.
  Triple extension{Term::Literal("Health Care"), Gov("category"),
                   Term::Literal("Domestic Policy")};
  uint64_t live_before = index_.live_path_count();
  ASSERT_TRUE(index_.AddTriple(&graph_, extension).ok());
  EXPECT_LT(index_.live_path_count(),
            live_before + 20);  // Sanity: no blow-up.
  EXPECT_EQ(LivePaths(index_, graph_), RebuildPaths({extension}));
  // Old sink postings are gone.
  TermId hc = graph_.dict().Find(Term::Literal("Health Care"));
  EXPECT_TRUE(index_.PathsWithSinkLabel(hc).empty());
  // The new sink has the extended paths.
  TermId dp = graph_.dict().Find(Term::Literal("Domestic Policy"));
  ASSERT_NE(dp, kInvalidTermId);
  EXPECT_EQ(index_.PathsWithSinkLabel(dp).size(), 10u);
}

TEST_F(PathIndexUpdateTest, ExtendingASourceTombstonesOldPaths) {
  // Give Carla Bunes an incoming edge: she stops being a source, so her
  // old paths are replaced by longer ones starting at the new source.
  Triple extension{Gov("Committee7"), Gov("hasMember"),
                   Gov("CarlaBunes")};
  ASSERT_TRUE(index_.AddTriple(&graph_, extension).ok());
  EXPECT_EQ(LivePaths(index_, graph_), RebuildPaths({extension}));
  // Queries now see the extended paths.
  std::vector<PathId> via_cb =
      index_.PathsContaining(Gov("CarlaBunes"), nullptr);
  ASSERT_FALSE(via_cb.empty());
  for (PathId id : via_cb) {
    Path p;
    ASSERT_TRUE(index_.GetPath(id, &p).ok());
    EXPECT_EQ(graph_.node_term(p.nodes.front()).DisplayLabel(),
              "Committee7");
  }
}

TEST_F(PathIndexUpdateTest, BrandNewEntitiesWork) {
  std::vector<Triple> extra = {
      {Gov("NewPerson"), Gov("sponsor"), Gov("B1432")},
      {Gov("NewPerson"), Gov("gender"), Term::Literal("Female")},
  };
  for (const Triple& t : extra) {
    ASSERT_TRUE(index_.AddTriple(&graph_, t).ok());
  }
  EXPECT_EQ(LivePaths(index_, graph_), RebuildPaths(extra));
  // The new person's paths are retrievable by label.
  EXPECT_EQ(index_.PathsContaining(Gov("NewPerson"), nullptr).size(), 2u);
}

TEST_F(PathIndexUpdateTest, QueriesReflectUpdates) {
  // Before: 4 male sponsors. Add a fifth.
  Thesaurus thesaurus = Thesaurus::BuiltinEnglish();
  SamaEngine engine(&graph_, &index_, &thesaurus);
  std::vector<Triple> patterns = {
      {Term::Variable("p"), Gov("gender"), Term::Literal("Male")}};
  auto before = engine.Execute(engine.BuildQueryGraph(patterns), 10);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->size(), 4u);

  ASSERT_TRUE(index_
                  .AddTriple(&graph_, {Gov("NewSenator"), Gov("gender"),
                                       Term::Literal("Male")})
                  .ok());
  auto after = engine.Execute(engine.BuildQueryGraph(patterns), 10);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->size(), 5u);
}

TEST_F(PathIndexUpdateTest, StatsTrackLiveCounts) {
  uint64_t triples_before = index_.stats().num_triples;
  ASSERT_TRUE(index_
                  .AddTriple(&graph_, {Gov("X"), Gov("rel"), Gov("Y")})
                  .ok());
  EXPECT_EQ(index_.stats().num_triples, triples_before + 1);
  EXPECT_EQ(index_.stats().num_paths, index_.live_path_count());
}

TEST_F(PathIndexUpdateTest, WrongGraphRejected) {
  DataGraph other = DataGraph::FromTriples(GovTrackFigure1Triples());
  EXPECT_EQ(index_
                .AddTriple(&other, {Gov("X"), Gov("rel"), Gov("Y")})
                .code(),
            Status::Code::kInvalidArgument);
}

TEST_F(PathIndexUpdateTest, ManySequentialUpdatesStayConsistent) {
  std::vector<Triple> extra;
  for (int i = 0; i < 10; ++i) {
    Triple t{Gov("Person" + std::to_string(i)), Gov("sponsor"),
             Gov("B1432")};
    extra.push_back(t);
    ASSERT_TRUE(index_.AddTriple(&graph_, t).ok());
  }
  EXPECT_EQ(LivePaths(index_, graph_), RebuildPaths(extra));
}

}  // namespace
}  // namespace sama

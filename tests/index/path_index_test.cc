#include "index/path_index.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "datasets/govtrack.h"
#include "datasets/lubm.h"

namespace sama {
namespace {

class PathIndexTest : public testing::TestWithParam<bool> {
 protected:
  PathIndexOptions Opts() {
    PathIndexOptions o;
    if (GetParam()) {
      std::string name =
          testing::UnitTest::GetInstance()->current_test_info()->name();
      for (char& c : name) {
        if (c == '/') c = '-';
      }
      dir_ = testing::TempDir() + "/idx_" + name;
      std::filesystem::create_directories(dir_);
      o.dir = dir_;
    }
    return o;
  }

  std::string dir_;
};

TEST_P(PathIndexTest, BuildsFigure1Index) {
  DataGraph g = DataGraph::FromTriples(GovTrackFigure1Triples());
  PathIndex index;
  ASSERT_TRUE(index.Build(g, Opts()).ok());
  EXPECT_EQ(index.path_count(), 19u);
  EXPECT_EQ(index.sources().size(), 7u);
  EXPECT_EQ(index.sinks().size(), 4u);
  const IndexStats& stats = index.stats();
  EXPECT_EQ(stats.num_triples, g.edge_count());
  EXPECT_EQ(stats.num_paths, 19u);
  // Hypergraph: one vertex per node, one hyperedge per triple + path.
  EXPECT_EQ(stats.hv, g.node_count());
  EXPECT_EQ(stats.he, g.edge_count() + 19u);
  EXPECT_GT(stats.disk_bytes, 0u);
  EXPECT_GE(stats.build_millis, 0.0);
}

TEST_P(PathIndexTest, PathsRetrievableBySinkLabel) {
  DataGraph g = DataGraph::FromTriples(GovTrackFigure1Triples());
  PathIndex index;
  ASSERT_TRUE(index.Build(g, Opts()).ok());
  TermId hc = g.dict().Find(Term::Literal("Health Care"));
  ASSERT_NE(hc, kInvalidTermId);
  EXPECT_EQ(index.PathsWithSinkLabel(hc).size(), 10u);
  TermId male = g.dict().Find(Term::Literal("Male"));
  EXPECT_EQ(index.PathsWithSinkLabel(male).size(), 4u);
  EXPECT_TRUE(index.PathsWithSinkLabel(kInvalidTermId - 1).empty());
}

TEST_P(PathIndexTest, SemanticSinkMatching) {
  DataGraph g = DataGraph::FromTriples(GovTrackFigure1Triples());
  PathIndex index;
  ASSERT_TRUE(index.Build(g, Opts()).ok());
  Thesaurus t = Thesaurus::BuiltinEnglish();
  // "Man" resolves to the Male sinks through the thesaurus.
  EXPECT_EQ(index.PathsWithSinkMatching(Term::Literal("Man"), &t).size(),
            4u);
  EXPECT_TRUE(
      index.PathsWithSinkMatching(Term::Literal("Man"), nullptr).empty());
}

TEST_P(PathIndexTest, PathsContainingLabel) {
  DataGraph g = DataGraph::FromTriples(GovTrackFigure1Triples());
  PathIndex index;
  ASSERT_TRUE(index.Build(g, Opts()).ok());
  // B1432 occurs in p1 (CB chain), p9, p10.
  std::vector<PathId> ids = index.PathsContaining(
      Term::Iri("http://gov.example.org/B1432"), nullptr);
  EXPECT_EQ(ids.size(), 3u);
  // Edge label "sponsor" occurs in all 10 sponsorship chains.
  EXPECT_EQ(index
                .PathsContaining(Term::Iri("http://gov.example.org/sponsor"),
                                 nullptr)
                .size(),
            10u);
}

TEST_P(PathIndexTest, GetPathRoundTrips) {
  DataGraph g = DataGraph::FromTriples(GovTrackFigure1Triples());
  PathIndex index;
  ASSERT_TRUE(index.Build(g, Opts()).ok());
  std::set<std::string> rendered;
  for (PathId id = 0; id < index.path_count(); ++id) {
    Path p;
    ASSERT_TRUE(index.GetPath(id, &p).ok());
    rendered.insert(p.ToString(g.dict()));
  }
  EXPECT_EQ(rendered.size(), 19u);
  EXPECT_TRUE(rendered.count(
      "CarlaBunes-sponsor-A0056-aTo-B1432-subject-Health Care"));
}

TEST_P(PathIndexTest, ElementMappingFindsNodesAndEdges) {
  DataGraph g = DataGraph::FromTriples(GovTrackFigure1Triples());
  PathIndex index;
  ASSERT_TRUE(index.Build(g, Opts()).ok());
  std::vector<NodeId> nodes =
      index.NodesMatching(Term::Literal("Health Care"), nullptr);
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_EQ(g.node_term(nodes[0]).value(), "Health Care");
  std::vector<EdgeId> edges = index.EdgesMatching(
      Term::Iri("http://gov.example.org/gender"), nullptr);
  EXPECT_EQ(edges.size(), 7u);
}

TEST_P(PathIndexTest, DropCachesKeepsDataReadable) {
  DataGraph g = DataGraph::FromTriples(GovTrackFigure1Triples());
  PathIndex index;
  ASSERT_TRUE(index.Build(g, Opts()).ok());
  ASSERT_TRUE(index.DropCaches().ok());
  Path p;
  ASSERT_TRUE(index.GetPath(0, &p).ok());
  EXPECT_GE(p.length(), 2u);
}

TEST_P(PathIndexTest, EnumerationCapsRespected) {
  DataGraph g = DataGraph::FromTriples(GovTrackFigure1Triples());
  PathIndex index;
  PathIndexOptions o = Opts();
  o.enumerate.max_paths = 7;
  ASSERT_TRUE(index.Build(g, o).ok());
  EXPECT_EQ(index.path_count(), 7u);
}

INSTANTIATE_TEST_SUITE_P(DiskAndMemory, PathIndexTest, testing::Bool(),
                         [](const testing::TestParamInfo<bool>& info) {
                           return info.param ? "Disk" : "Memory";
                         });

TEST(PathIndexThreadsTest, ConcurrentBuildMatchesSequential) {
  LubmConfig config;
  config.universities = 1;
  std::vector<Triple> triples = GenerateLubm(config);
  DataGraph g1 = DataGraph::FromTriples(triples);
  DataGraph g2 = DataGraph::FromTriples(triples);

  PathIndex seq, par;
  PathIndexOptions o;
  o.build_hypergraph = false;
  ASSERT_TRUE(seq.Build(g1, o).ok());
  o.num_threads = 4;
  ASSERT_TRUE(par.Build(g2, o).ok());
  ASSERT_EQ(seq.path_count(), par.path_count());
  // Same multiset of paths regardless of worker interleaving.
  std::multiset<std::string> a, b;
  for (PathId id = 0; id < seq.path_count(); ++id) {
    Path p;
    ASSERT_TRUE(seq.GetPath(id, &p).ok());
    a.insert(p.ToString(g1.dict()));
    ASSERT_TRUE(par.GetPath(id, &p).ok());
    b.insert(p.ToString(g2.dict()));
  }
  EXPECT_EQ(a, b);
}

TEST(PathIndexStatsTest, HypergraphOptional) {
  DataGraph g = DataGraph::FromTriples(GovTrackFigure1Triples());
  PathIndex index;
  PathIndexOptions o;
  o.build_hypergraph = false;
  ASSERT_TRUE(index.Build(g, o).ok());
  EXPECT_EQ(index.stats().hv, 0u);
  EXPECT_EQ(index.stats().he, 0u);
  EXPECT_EQ(index.stats().num_paths, 19u);
}

}  // namespace
}  // namespace sama

// Incremental deletes: RemoveTriple must leave the index equivalent to
// a full rebuild over the reduced graph — tombstoned traversing paths,
// re-materialised prefixes/suffixes when an endpoint becomes terminal,
// and query answers that match the rebuilt index.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/engine.h"
#include "datasets/govtrack.h"
#include "index/path_index.h"
#include "text/thesaurus.h"

namespace sama {
namespace {

Term Gov(const std::string& local) {
  return Term::Iri("http://gov.example.org/" + local);
}

std::set<std::string> LivePaths(const PathIndex& index,
                                const DataGraph& graph) {
  std::set<std::string> out;
  for (PathId id = 0; id < index.path_count(); ++id) {
    Path p;
    if (index.GetPath(id, &p).ok()) out.insert(p.ToString(graph.dict()));
  }
  return out;
}

bool SameTriple(const Triple& a, const Triple& b) {
  return a.subject == b.subject && a.predicate == b.predicate &&
         a.object == b.object;
}

class PathIndexRemoveTest : public testing::Test {
 protected:
  PathIndexRemoveTest()
      : graph_(DataGraph::FromTriples(GovTrackFigure1Triples())) {
    Status s = index_.Build(graph_, PathIndexOptions());
    EXPECT_TRUE(s.ok()) << s;
  }

  // Reference: a full rebuild over the base triples, plus `added`,
  // minus `removed` (applied in that order, duplicates collapsed the
  // same way the live graph collapses them).
  std::set<std::string> RebuildPaths(const std::vector<Triple>& added,
                                     const std::vector<Triple>& removed) {
    std::vector<Triple> triples = GovTrackFigure1Triples();
    triples.insert(triples.end(), added.begin(), added.end());
    for (const Triple& gone : removed) {
      for (auto it = triples.begin(); it != triples.end(); ++it) {
        if (SameTriple(*it, gone)) {
          triples.erase(it);
          break;
        }
      }
    }
    DataGraph graph = DataGraph::FromTriples(triples);
    PathIndex index;
    PathIndexOptions options;
    options.build_hypergraph = false;
    EXPECT_TRUE(index.Build(graph, options).ok());
    return LivePaths(index, graph);
  }

  DataGraph graph_;
  PathIndex index_;
};

TEST_F(PathIndexRemoveTest, AbsentDeleteIsNoOp) {
  uint64_t live_before = index_.live_path_count();
  // Unknown subject, unknown predicate, and a never-connected pair all
  // no-op without touching the index.
  ASSERT_TRUE(index_
                  .RemoveTriple(&graph_, {Gov("Nobody"), Gov("sponsor"),
                                          Gov("A0056")})
                  .ok());
  ASSERT_TRUE(index_
                  .RemoveTriple(&graph_, {Gov("CarlaBunes"),
                                          Gov("neverUsed"), Gov("A0056")})
                  .ok());
  ASSERT_TRUE(index_
                  .RemoveTriple(&graph_, {Gov("CarlaBunes"), Gov("gender"),
                                          Gov("A0056")})
                  .ok());
  EXPECT_EQ(index_.live_path_count(), live_before);
  EXPECT_EQ(LivePaths(index_, graph_), RebuildPaths({}, {}));
}

TEST_F(PathIndexRemoveTest, InsertThenDeleteRestoresOriginal) {
  std::set<std::string> original = LivePaths(index_, graph_);
  Triple extra{Gov("AliceNimber"), Gov("sponsor"), Gov("A9999")};
  ASSERT_TRUE(index_.AddTriple(&graph_, extra).ok());
  EXPECT_NE(LivePaths(index_, graph_), original);
  ASSERT_TRUE(index_.RemoveTriple(&graph_, extra).ok());
  EXPECT_EQ(LivePaths(index_, graph_), original);
  EXPECT_EQ(index_.stats().num_triples, graph_.live_edge_count());
}

TEST_F(PathIndexRemoveTest, DeleteBaseEdgeMatchesRebuild) {
  // A mid-chain edge: paths traversing it split, the subject may become
  // a sink and the object a source — the oracle is the rebuild.
  Triple gone{Gov("CarlaBunes"), Gov("sponsor"), Gov("A0056")};
  ASSERT_TRUE(index_.RemoveTriple(&graph_, gone).ok());
  EXPECT_EQ(LivePaths(index_, graph_), RebuildPaths({}, {gone}));
}

TEST_F(PathIndexRemoveTest, EverySingleBaseEdgeDeletesToRebuild) {
  // Exhaustive: deleting ANY one base triple must match its rebuild.
  // Each iteration uses fresh graph+index (deletes don't compose here).
  for (const Triple& gone : GovTrackFigure1Triples()) {
    SCOPED_TRACE(gone.subject.ToString() + " " + gone.predicate.ToString() +
                 " " + gone.object.ToString());
    DataGraph graph = DataGraph::FromTriples(GovTrackFigure1Triples());
    PathIndex index;
    PathIndexOptions options;
    options.build_hypergraph = false;
    ASSERT_TRUE(index.Build(graph, options).ok());
    ASSERT_TRUE(index.RemoveTriple(&graph, gone).ok());
    EXPECT_EQ(LivePaths(index, graph), RebuildPaths({}, {gone}));
  }
}

TEST_F(PathIndexRemoveTest, ReAddAfterDeleteMatchesRebuild) {
  // Tombstoned paths must never be resurrected: the re-added edge gets
  // a fresh slot and fresh path ids, and the live set still matches the
  // rebuild over the (unchanged) logical triple set.
  Triple edge{Gov("CarlaBunes"), Gov("sponsor"), Gov("A0056")};
  ASSERT_TRUE(index_.RemoveTriple(&graph_, edge).ok());
  ASSERT_TRUE(index_.AddTriple(&graph_, edge).ok());
  EXPECT_EQ(LivePaths(index_, graph_), RebuildPaths({}, {}));
  ASSERT_TRUE(index_.RemoveTriple(&graph_, edge).ok());
  EXPECT_EQ(LivePaths(index_, graph_), RebuildPaths({}, {edge}));
}

TEST_F(PathIndexRemoveTest, InterleavedAddRemoveSequenceMatchesRebuild) {
  std::vector<Triple> added = {
      {Gov("NewPerson"), Gov("sponsor"), Gov("B1432")},
      {Gov("NewPerson"), Gov("gender"), Term::Literal("Female")},
      {Gov("AliceNimber"), Gov("sponsor"), Gov("A9999")},
      {Gov("A9999"), Gov("aTo"), Gov("B0532")},
  };
  std::vector<Triple> removed = {
      {Gov("NewPerson"), Gov("sponsor"), Gov("B1432")},
      {Gov("CarlaBunes"), Gov("sponsor"), Gov("A0056")},
  };
  ASSERT_TRUE(index_.AddTriple(&graph_, added[0]).ok());
  ASSERT_TRUE(index_.AddTriple(&graph_, added[1]).ok());
  ASSERT_TRUE(index_.RemoveTriple(&graph_, removed[0]).ok());
  ASSERT_TRUE(index_.AddTriple(&graph_, added[2]).ok());
  ASSERT_TRUE(index_.RemoveTriple(&graph_, removed[1]).ok());
  ASSERT_TRUE(index_.AddTriple(&graph_, added[3]).ok());
  EXPECT_EQ(LivePaths(index_, graph_), RebuildPaths(added, removed));
}

TEST_F(PathIndexRemoveTest, QueriesReflectDeletes) {
  Thesaurus thesaurus = Thesaurus::BuiltinEnglish();
  SamaEngine engine(&graph_, &index_, &thesaurus);
  std::vector<Triple> patterns = {
      {Term::Variable("p"), Gov("gender"), Term::Literal("Male")}};
  auto before = engine.Execute(engine.BuildQueryGraph(patterns), 10);
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(before->size(), 4u);

  ASSERT_TRUE(index_
                  .RemoveTriple(&graph_, {Gov("JeffRyser"), Gov("gender"),
                                          Term::Literal("Male")})
                  .ok());
  auto after = engine.Execute(engine.BuildQueryGraph(patterns), 10);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->size(), 3u);
}

TEST_F(PathIndexRemoveTest, SinkLookupCacheStaysPreciseAcrossDeletes) {
  index_.ConfigureQueryCache(IndexCacheConfig());  // Off until enabled.
  Thesaurus thesaurus = Thesaurus::BuiltinEnglish();
  Term health_care = Term::Literal("Health Care");
  Term male = Term::Literal("Male");

  // Prime the lookup cache for both labels.
  IndexCacheCounters warm;
  index_.PathsWithSinkMatching(health_care, &thesaurus, &warm);
  index_.PathsWithSinkMatching(male, &thesaurus, &warm);
  IndexCacheCounters primed;
  index_.PathsWithSinkMatching(health_care, &thesaurus, &primed);
  ASSERT_GT(primed.lookups.hits, 0u) << "cache never primed";

  // Delete a gender edge: "Male" lookups are stale, "Health Care" is
  // untouched — precise invalidation must keep the latter cached.
  // Passing the query thesaurus scopes the sweep (nullptr would drop
  // thesaurus-cached entries conservatively).
  ASSERT_TRUE(index_
                  .RemoveTriple(&graph_, {Gov("JeffRyser"), Gov("gender"),
                                          male},
                                &thesaurus)
                  .ok());
  IndexCacheCounters unrelated;
  size_t health_paths =
      index_.PathsWithSinkMatching(health_care, &thesaurus, &unrelated)
          .size();
  EXPECT_GT(unrelated.lookups.hits, 0u)
      << "an update to an unrelated label evicted this entry";
  IndexCacheCounters stale;
  std::vector<PathId> male_paths =
      index_.PathsWithSinkMatching(male, &thesaurus, &stale);
  EXPECT_EQ(stale.lookups.hits, 0u)
      << "the changed label's entry survived and served stale paths";

  // Both answers are correct (fresh rebuild agrees on counts).
  DataGraph rebuilt_graph;
  {
    std::vector<Triple> triples = GovTrackFigure1Triples();
    for (auto it = triples.begin(); it != triples.end(); ++it) {
      if (SameTriple(*it, {Gov("JeffRyser"), Gov("gender"), male})) {
        triples.erase(it);
        break;
      }
    }
    rebuilt_graph = DataGraph::FromTriples(triples);
  }
  PathIndex rebuilt;
  PathIndexOptions options;
  options.build_hypergraph = false;
  ASSERT_TRUE(rebuilt.Build(rebuilt_graph, options).ok());
  EXPECT_EQ(male_paths.size(),
            rebuilt.PathsWithSinkMatching(male, &thesaurus).size());
  EXPECT_EQ(health_paths,
            rebuilt.PathsWithSinkMatching(health_care, &thesaurus).size());
}

TEST_F(PathIndexRemoveTest, WrongGraphRejected) {
  DataGraph other = DataGraph::FromTriples(GovTrackFigure1Triples());
  EXPECT_EQ(index_
                .RemoveTriple(&other, {Gov("CarlaBunes"), Gov("sponsor"),
                                       Gov("A0056")})
                .code(),
            Status::Code::kInvalidArgument);
}

}  // namespace
}  // namespace sama

#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace sama {
namespace {

std::vector<Term> Tuple(const std::string& a, const std::string& b = "") {
  std::vector<Term> t{Term::Iri(a)};
  if (!b.empty()) t.push_back(Term::Iri(b));
  return t;
}

TEST(TupleKeyTest, DistinguishesOrderAndContent) {
  EXPECT_EQ(TupleKey(Tuple("a", "b")), TupleKey(Tuple("a", "b")));
  EXPECT_NE(TupleKey(Tuple("a", "b")), TupleKey(Tuple("b", "a")));
  EXPECT_NE(TupleKey(Tuple("a")), TupleKey(Tuple("a", "a")));
  EXPECT_NE(TupleKey({Term::Iri("x")}), TupleKey({Term::Literal("x")}));
}

TEST(ReciprocalRankTest, FirstHitWins) {
  RelevantSet relevant;
  relevant.Add(Tuple("good"));
  EXPECT_DOUBLE_EQ(ReciprocalRank({Tuple("good")}, relevant), 1.0);
  EXPECT_DOUBLE_EQ(
      ReciprocalRank({Tuple("bad"), Tuple("good")}, relevant), 0.5);
  EXPECT_DOUBLE_EQ(
      ReciprocalRank({Tuple("x"), Tuple("y"), Tuple("good")}, relevant),
      1.0 / 3);
  EXPECT_DOUBLE_EQ(ReciprocalRank({Tuple("x")}, relevant), 0.0);
  EXPECT_DOUBLE_EQ(ReciprocalRank({}, relevant), 0.0);
}

TEST(PrecisionRecallCurveTest, PerfectRanking) {
  RelevantSet relevant;
  relevant.Add(Tuple("a"));
  relevant.Add(Tuple("b"));
  auto curve = PrecisionRecallCurve({Tuple("a"), Tuple("b")}, relevant);
  ASSERT_EQ(curve.size(), 2u);
  EXPECT_DOUBLE_EQ(curve[0].precision, 1.0);
  EXPECT_DOUBLE_EQ(curve[0].recall, 0.5);
  EXPECT_DOUBLE_EQ(curve[1].precision, 1.0);
  EXPECT_DOUBLE_EQ(curve[1].recall, 1.0);
}

TEST(PrecisionRecallCurveTest, NoiseLowersPrecision) {
  RelevantSet relevant;
  relevant.Add(Tuple("a"));
  auto curve =
      PrecisionRecallCurve({Tuple("junk"), Tuple("a")}, relevant);
  ASSERT_EQ(curve.size(), 2u);
  EXPECT_DOUBLE_EQ(curve[0].precision, 0.0);
  EXPECT_DOUBLE_EQ(curve[1].precision, 0.5);
  EXPECT_DOUBLE_EQ(curve[1].recall, 1.0);
}

TEST(PrecisionRecallCurveTest, DuplicatesCountOnceForRecall) {
  RelevantSet relevant;
  relevant.Add(Tuple("a"));
  relevant.Add(Tuple("b"));
  auto curve = PrecisionRecallCurve({Tuple("a"), Tuple("a")}, relevant);
  EXPECT_DOUBLE_EQ(curve[1].recall, 0.5);  // Still only one of two found.
}

TEST(PrecisionRecallCurveTest, EmptyTruthYieldsEmptyCurve) {
  RelevantSet relevant;
  EXPECT_TRUE(PrecisionRecallCurve({Tuple("a")}, relevant).empty());
}

TEST(InterpolationTest, ElevenMonotoneLevels) {
  RelevantSet relevant;
  relevant.Add(Tuple("a"));
  relevant.Add(Tuple("b"));
  auto curve = PrecisionRecallCurve(
      {Tuple("a"), Tuple("x"), Tuple("b"), Tuple("y")}, relevant);
  auto interp = InterpolateElevenPoints(curve);
  ASSERT_EQ(interp.size(), 11u);
  EXPECT_DOUBLE_EQ(interp[0].recall, 0.0);
  EXPECT_DOUBLE_EQ(interp[10].recall, 1.0);
  // Interpolated precision is non-increasing in recall.
  for (size_t i = 1; i < interp.size(); ++i) {
    EXPECT_LE(interp[i].precision, interp[i - 1].precision);
  }
  // Precision at recall 0.5 (one of two found at rank 1) is 1.0.
  EXPECT_DOUBLE_EQ(interp[5].precision, 1.0);
  // Precision at recall 1.0: 2 relevant out of 3 ranked = 2/3.
  EXPECT_NEAR(interp[10].precision, 2.0 / 3, 1e-9);
}

TEST(SetMetricsTest, PrecisionAndRecall) {
  RelevantSet relevant;
  relevant.Add(Tuple("a"));
  relevant.Add(Tuple("b"));
  relevant.Add(Tuple("c"));
  std::vector<std::vector<Term>> results = {Tuple("a"), Tuple("junk"),
                                            Tuple("b")};
  EXPECT_NEAR(Precision(results, relevant), 2.0 / 3, 1e-9);
  EXPECT_NEAR(Recall(results, relevant), 2.0 / 3, 1e-9);
  EXPECT_DOUBLE_EQ(Precision({}, relevant), 0.0);
  EXPECT_DOUBLE_EQ(Recall({Tuple("a")}, RelevantSet()), 0.0);
}

}  // namespace
}  // namespace sama

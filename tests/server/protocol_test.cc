// Conformance and fuzz tier for the binary wire protocol: golden-byte
// pins (the format is an external contract), seeded round-trip
// property tests over >1k random frames with arbitrary chunking, and
// the malformed-input catalogue — truncated, oversized, bad-magic and
// wrong-version frames plus pure garbage must produce error verdicts,
// never crashes, hangs or out-of-bounds reads (CI runs this binary
// under ASan/UBSan and TSan).
#include "server/protocol.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"

namespace sama {
namespace {

Frame MakeFrame(FrameType type, uint64_t request_id, std::string payload) {
  Frame frame;
  frame.type = type;
  frame.request_id = request_id;
  frame.payload = std::move(payload);
  return frame;
}

// Pops exactly one good frame or fails the test.
Frame MustPop(FrameDecoder* decoder) {
  Frame frame;
  WireStatus code = WireStatus::kOk;
  std::string message;
  EXPECT_EQ(decoder->Pop(&frame, &code, &message), FrameDecoder::Next::kFrame)
      << message;
  return frame;
}

TEST(ProtocolTest, GoldenFrameBytes) {
  // The wire format is an external contract: these exact bytes must
  // never change within protocol version 1.
  Frame frame = MakeFrame(FrameType::kPing, 0x0123456789abcdefULL, "hi");
  std::string wire = EncodeFrame(frame);
  const unsigned char expected[] = {
      'S',  'A',  'M',  'A',         // magic
      0x01,                          // version
      0x02,                          // type = kPing
      0x00, 0x00,                    // flags
      0xef, 0xcd, 0xab, 0x89, 0x67, 0x45, 0x23, 0x01,  // request id LE
      0x02, 0x00, 0x00, 0x00,        // payload length
      'h',  'i',
  };
  ASSERT_EQ(wire.size(), sizeof(expected));
  for (size_t i = 0; i < sizeof(expected); ++i) {
    EXPECT_EQ(static_cast<unsigned char>(wire[i]), expected[i])
        << "byte " << i;
  }
}

TEST(ProtocolTest, PrimitiveRoundTrips) {
  Random rng(7);
  for (int i = 0; i < 200; ++i) {
    std::string buf;
    uint16_t a = static_cast<uint16_t>(rng.Next());
    uint32_t b = static_cast<uint32_t>(rng.Next());
    uint64_t c = rng.Next();
    double d = rng.NextDouble() * 1e12 - 5e11;
    AppendU16(&buf, a);
    AppendU32(&buf, b);
    AppendU64(&buf, c);
    AppendF64(&buf, d);
    size_t pos = 0;
    uint16_t ra = 0;
    uint32_t rb = 0;
    uint64_t rc = 0;
    double rd = 0;
    ASSERT_TRUE(ReadU16(buf, &pos, &ra));
    ASSERT_TRUE(ReadU32(buf, &pos, &rb));
    ASSERT_TRUE(ReadU64(buf, &pos, &rc));
    ASSERT_TRUE(ReadF64(buf, &pos, &rd));
    EXPECT_EQ(ra, a);
    EXPECT_EQ(rb, b);
    EXPECT_EQ(rc, c);
    EXPECT_EQ(rd, d);  // Bit-exact, not approximate.
    EXPECT_EQ(pos, buf.size());
  }
}

// The core property test: >1k random frames, encoded, concatenated and
// fed to the decoder in random-size chunks, must come back identical.
TEST(ProtocolTest, RandomFramesSurviveChunkedRoundTrip) {
  constexpr FrameType kTypes[] = {
      FrameType::kQuery, FrameType::kPing,   FrameType::kStats,
      FrameType::kShutdown, FrameType::kResult, FrameType::kPong,
      FrameType::kStatsResult, FrameType::kError, FrameType::kShutdownAck,
  };
  Random rng(20260808);
  constexpr size_t kFrames = 1200;
  std::vector<Frame> sent;
  std::string wire;
  sent.reserve(kFrames);
  for (size_t i = 0; i < kFrames; ++i) {
    std::string payload(rng.Uniform(2048), '\0');
    for (char& c : payload) c = static_cast<char>(rng.Next());
    sent.push_back(MakeFrame(kTypes[rng.Uniform(std::size(kTypes))],
                             rng.Next(), std::move(payload)));
    wire += EncodeFrame(sent.back());
  }

  FrameDecoder decoder;
  size_t fed = 0;
  size_t popped = 0;
  while (popped < sent.size()) {
    if (fed < wire.size()) {
      size_t chunk = 1 + rng.Uniform(4096);
      chunk = std::min(chunk, wire.size() - fed);
      decoder.Feed(std::string_view(wire).substr(fed, chunk));
      fed += chunk;
    }
    while (true) {
      Frame frame;
      WireStatus code = WireStatus::kOk;
      std::string message;
      FrameDecoder::Next next = decoder.Pop(&frame, &code, &message);
      if (next == FrameDecoder::Next::kNeedMore) break;
      ASSERT_EQ(next, FrameDecoder::Next::kFrame) << message;
      ASSERT_LT(popped, sent.size());
      EXPECT_EQ(frame.type, sent[popped].type);
      EXPECT_EQ(frame.request_id, sent[popped].request_id);
      EXPECT_EQ(frame.payload, sent[popped].payload);
      ++popped;
    }
  }
  EXPECT_EQ(popped, sent.size());
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(ProtocolTest, TruncatedFrameNeedsMoreNeverErrors) {
  std::string wire = EncodeFrame(
      MakeFrame(FrameType::kQuery, 42, std::string(100, 'x')));
  // Every proper prefix is just "need more", not an error.
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    FrameDecoder decoder;
    decoder.Feed(std::string_view(wire).substr(0, cut));
    Frame frame;
    WireStatus code = WireStatus::kOk;
    std::string message;
    EXPECT_EQ(decoder.Pop(&frame, &code, &message),
              FrameDecoder::Next::kNeedMore)
        << "prefix of " << cut << " bytes";
  }
}

TEST(ProtocolTest, GarbageHeaderPoisonsDecoder) {
  FrameDecoder decoder;
  decoder.Feed("XXXXGARBAGEGARBAGEGARBAGE");
  Frame frame;
  WireStatus code = WireStatus::kOk;
  std::string message;
  ASSERT_EQ(decoder.Pop(&frame, &code, &message), FrameDecoder::Next::kBad);
  EXPECT_EQ(code, WireStatus::kBadFrame);
  // Poisoned: even valid bytes afterwards keep reporting the error.
  decoder.Feed(EncodeFrame(MakeFrame(FrameType::kPing, 1, "ok")));
  EXPECT_EQ(decoder.Pop(&frame, &code, &message), FrameDecoder::Next::kBad);
  EXPECT_EQ(code, WireStatus::kBadFrame);
}

TEST(ProtocolTest, VersionMismatchRejected) {
  std::string wire = EncodeFrame(MakeFrame(FrameType::kPing, 1, "hello"));
  wire[4] = 2;  // Future version.
  FrameDecoder decoder;
  decoder.Feed(wire);
  Frame frame;
  WireStatus code = WireStatus::kOk;
  std::string message;
  ASSERT_EQ(decoder.Pop(&frame, &code, &message), FrameDecoder::Next::kBad);
  EXPECT_EQ(code, WireStatus::kVersionMismatch);
}

TEST(ProtocolTest, OversizedPayloadRejectedFromHeaderAlone) {
  // The decoder must reject from the header, before any payload bytes
  // arrive — a tiny cap proves no buffering of the oversized body.
  FrameDecoder decoder(/*max_payload=*/64);
  Frame big = MakeFrame(FrameType::kQuery, 9, std::string(65, 'p'));
  std::string wire = EncodeFrame(big);
  decoder.Feed(std::string_view(wire).substr(0, kFrameHeaderBytes));
  Frame frame;
  WireStatus code = WireStatus::kOk;
  std::string message;
  ASSERT_EQ(decoder.Pop(&frame, &code, &message), FrameDecoder::Next::kBad);
  EXPECT_EQ(code, WireStatus::kTooLarge);
}

// Pure fuzz: random byte soup must terminate in kNeedMore or kBad —
// never crash, hang or read out of bounds (sanitizers enforce the
// latter).
TEST(ProtocolTest, GarbageBytesNeverCrash) {
  Random rng(99);
  for (int round = 0; round < 300; ++round) {
    FrameDecoder decoder;
    size_t chunks = 1 + rng.Uniform(8);
    for (size_t c = 0; c < chunks; ++c) {
      std::string garbage(rng.Uniform(512), '\0');
      for (char& b : garbage) b = static_cast<char>(rng.Next());
      // Occasionally lead with real magic so parsing goes deeper.
      if (rng.Bernoulli(0.3) && garbage.size() >= 4) {
        garbage.replace(0, 4, kFrameMagic, 4);
      }
      decoder.Feed(garbage);
      for (int pops = 0; pops < 64; ++pops) {
        Frame frame;
        WireStatus code = WireStatus::kOk;
        std::string message;
        FrameDecoder::Next next = decoder.Pop(&frame, &code, &message);
        if (next != FrameDecoder::Next::kFrame) break;
      }
    }
  }
}

TEST(ProtocolTest, QueryRequestRoundTrip) {
  Random rng(5);
  for (int i = 0; i < 300; ++i) {
    QueryRequest request;
    request.k = static_cast<uint32_t>(rng.Uniform(1000));
    request.deadline_ms = static_cast<uint32_t>(rng.Uniform(100000));
    request.sparql.assign(rng.Uniform(512), '\0');
    for (char& c : request.sparql) c = static_cast<char>(rng.Next());
    QueryRequest decoded;
    ASSERT_TRUE(DecodeQueryRequest(EncodeQueryRequest(request), &decoded));
    EXPECT_EQ(decoded.sparql, request.sparql);
    EXPECT_EQ(decoded.k, request.k);
    EXPECT_EQ(decoded.deadline_ms, request.deadline_ms);
  }
}

TEST(ProtocolTest, QueryRequestRejectsTrailingBytes) {
  std::string payload = EncodeQueryRequest(QueryRequest{"SELECT", 1, 2});
  payload.push_back('\0');
  QueryRequest decoded;
  EXPECT_FALSE(DecodeQueryRequest(payload, &decoded));
}

TEST(ProtocolTest, QueryResultRoundTrip) {
  Random rng(11);
  for (int i = 0; i < 200; ++i) {
    QueryResultWire result;
    result.status = WireStatus::kOk;
    result.truncated = rng.Bernoulli(0.5);
    size_t answers = rng.Uniform(8);
    for (size_t a = 0; a < answers; ++a) {
      WireAnswer answer;
      answer.score = rng.NextDouble() * 100;
      answer.lambda = rng.NextDouble() * 50;
      answer.psi = answer.score - answer.lambda;
      answer.consistent = rng.Bernoulli(0.8);
      size_t bindings = rng.Uniform(5);
      for (size_t b = 0; b < bindings; ++b) {
        WireBinding binding;
        binding.var = "v" + std::to_string(b);
        binding.value.assign(rng.Uniform(64), '\0');
        for (char& c : binding.value) c = static_cast<char>(rng.Next());
        answer.bindings.push_back(std::move(binding));
      }
      result.answers.push_back(std::move(answer));
    }
    QueryResultWire decoded;
    ASSERT_TRUE(DecodeQueryResult(EncodeQueryResult(result), &decoded));
    ASSERT_EQ(decoded.answers.size(), result.answers.size());
    EXPECT_EQ(decoded.truncated, result.truncated);
    for (size_t a = 0; a < result.answers.size(); ++a) {
      EXPECT_EQ(decoded.answers[a].score, result.answers[a].score);
      EXPECT_EQ(decoded.answers[a].lambda, result.answers[a].lambda);
      EXPECT_EQ(decoded.answers[a].psi, result.answers[a].psi);
      EXPECT_EQ(decoded.answers[a].consistent,
                result.answers[a].consistent);
      ASSERT_EQ(decoded.answers[a].bindings.size(),
                result.answers[a].bindings.size());
      for (size_t b = 0; b < result.answers[a].bindings.size(); ++b) {
        EXPECT_EQ(decoded.answers[a].bindings[b].var,
                  result.answers[a].bindings[b].var);
        EXPECT_EQ(decoded.answers[a].bindings[b].value,
                  result.answers[a].bindings[b].value);
      }
    }
  }
}

TEST(ProtocolTest, TruncatedStructuredPayloadsRejected) {
  // Chopping a valid structured payload anywhere must fail the decode,
  // not read past the end.
  QueryResultWire result;
  WireAnswer answer;
  answer.score = 1.5;
  answer.bindings.push_back({"x", "<http://example.org/a>"});
  result.answers.push_back(answer);
  std::string payload = EncodeQueryResult(result);
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    QueryResultWire decoded;
    EXPECT_FALSE(DecodeQueryResult(
        std::string_view(payload).substr(0, cut), &decoded))
        << "prefix of " << cut << " bytes decoded";
  }
}

TEST(ProtocolTest, UpdateRequestRoundTrip) {
  Random rng(23);
  for (int i = 0; i < 300; ++i) {
    UpdateRequest request;
    request.op = rng.Bernoulli(0.5) ? UpdateRequest::kOpDelete
                                    : UpdateRequest::kOpInsert;
    request.flags = static_cast<uint16_t>(rng.Uniform(1 << 16));
    request.statement.assign(rng.Uniform(256), '\0');
    for (char& c : request.statement) c = static_cast<char>(rng.Next());
    UpdateRequest decoded;
    ASSERT_TRUE(
        DecodeUpdateRequest(EncodeUpdateRequest(request), &decoded));
    EXPECT_EQ(decoded.op, request.op);
    EXPECT_EQ(decoded.flags, request.flags);
    EXPECT_EQ(decoded.statement, request.statement);
  }
}

TEST(ProtocolTest, UpdateRequestRejectsBadOpAndTrailingBytes) {
  UpdateRequest request;
  request.statement = "<s> <p> <o> .";
  std::string payload = EncodeUpdateRequest(request);
  UpdateRequest decoded;
  ASSERT_TRUE(DecodeUpdateRequest(payload, &decoded));

  std::string trailing = payload + '\0';
  EXPECT_FALSE(DecodeUpdateRequest(trailing, &decoded));

  std::string bad_op = payload;
  bad_op[0] = 2;  // Only insert (0) and delete (1) exist.
  EXPECT_FALSE(DecodeUpdateRequest(bad_op, &decoded));
}

TEST(ProtocolTest, UpdateResultRoundTrip) {
  UpdateResultWire result;
  result.status = WireStatus::kOk;
  result.lsn = 0x1122334455667788ULL;
  result.durable = 1;
  UpdateResultWire decoded;
  ASSERT_TRUE(DecodeUpdateResult(EncodeUpdateResult(result), &decoded));
  EXPECT_EQ(decoded.status, result.status);
  EXPECT_EQ(decoded.lsn, result.lsn);
  EXPECT_EQ(decoded.durable, result.durable);
}

TEST(ProtocolTest, TruncatedUpdatePayloadsRejected) {
  UpdateRequest request;
  request.op = UpdateRequest::kOpDelete;
  request.flags = UpdateRequest::kFlagNonDurable;
  request.statement = "<s> <p> \"o\" .";
  std::string req_payload = EncodeUpdateRequest(request);
  for (size_t cut = 0; cut < req_payload.size(); ++cut) {
    UpdateRequest decoded;
    EXPECT_FALSE(DecodeUpdateRequest(
        std::string_view(req_payload).substr(0, cut), &decoded))
        << "request prefix of " << cut << " bytes decoded";
  }
  UpdateResultWire result;
  result.lsn = 42;
  std::string res_payload = EncodeUpdateResult(result);
  for (size_t cut = 0; cut < res_payload.size(); ++cut) {
    UpdateResultWire decoded;
    EXPECT_FALSE(DecodeUpdateResult(
        std::string_view(res_payload).substr(0, cut), &decoded))
        << "result prefix of " << cut << " bytes decoded";
  }
}

TEST(ProtocolTest, ErrorBodyRoundTrip) {
  ErrorBody error{WireStatus::kShed, "queue full"};
  ErrorBody decoded;
  ASSERT_TRUE(DecodeErrorBody(EncodeErrorBody(error), &decoded));
  EXPECT_EQ(decoded.code, WireStatus::kShed);
  EXPECT_EQ(decoded.message, "queue full");

  // EncodeErrorFrame is the same body wrapped in a kError frame.
  FrameDecoder decoder;
  decoder.Feed(EncodeErrorFrame(77, WireStatus::kParseError, "bad sparql"));
  Frame frame = MustPop(&decoder);
  EXPECT_EQ(frame.type, FrameType::kError);
  EXPECT_EQ(frame.request_id, 77u);
  ASSERT_TRUE(DecodeErrorBody(frame.payload, &decoded));
  EXPECT_EQ(decoded.code, WireStatus::kParseError);
  EXPECT_EQ(decoded.message, "bad sparql");
}

TEST(ProtocolTest, WireStatusNamesAreDistinct) {
  // Names feed logs and smoke scripts; catch accidental merges.
  const WireStatus all[] = {
      WireStatus::kOk, WireStatus::kBadFrame, WireStatus::kVersionMismatch,
      WireStatus::kTooLarge, WireStatus::kBadRequest,
      WireStatus::kParseError, WireStatus::kShed,
      WireStatus::kShuttingDown, WireStatus::kInternal,
      WireStatus::kUnknownType, WireStatus::kReadOnly,
  };
  for (size_t i = 0; i < std::size(all); ++i) {
    for (size_t j = i + 1; j < std::size(all); ++j) {
      EXPECT_STRNE(WireStatusName(all[i]), WireStatusName(all[j]));
    }
  }
}

}  // namespace
}  // namespace sama

// Conformance and fuzz tier for the binary wire protocol: golden-byte
// pins (the format is an external contract), seeded round-trip
// property tests over >1k random frames with arbitrary chunking, and
// the malformed-input catalogue — truncated, oversized, bad-magic and
// wrong-version frames plus pure garbage must produce error verdicts,
// never crashes, hangs or out-of-bounds reads (CI runs this binary
// under ASan/UBSan and TSan).
#include "server/protocol.h"

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "common/random.h"

namespace sama {
namespace {

Frame MakeFrame(FrameType type, uint64_t request_id, std::string payload) {
  Frame frame;
  frame.type = type;
  frame.request_id = request_id;
  frame.payload = std::move(payload);
  return frame;
}

// Pops exactly one good frame or fails the test.
Frame MustPop(FrameDecoder* decoder) {
  Frame frame;
  WireStatus code = WireStatus::kOk;
  std::string message;
  EXPECT_EQ(decoder->Pop(&frame, &code, &message), FrameDecoder::Next::kFrame)
      << message;
  return frame;
}

TEST(ProtocolTest, GoldenFrameBytes) {
  // The wire format is an external contract: these exact bytes must
  // never change within protocol version 2. An untraced frame carries
  // no extension — only the version byte differs from the v1 wire.
  Frame frame = MakeFrame(FrameType::kPing, 0x0123456789abcdefULL, "hi");
  std::string wire = EncodeFrame(frame);
  const unsigned char expected[] = {
      'S',  'A',  'M',  'A',         // magic
      0x02,                          // version
      0x02,                          // type = kPing
      0x00, 0x00,                    // flags (no extension)
      0xef, 0xcd, 0xab, 0x89, 0x67, 0x45, 0x23, 0x01,  // request id LE
      0x02, 0x00, 0x00, 0x00,        // payload length
      'h',  'i',
  };
  ASSERT_EQ(wire.size(), sizeof(expected));
  for (size_t i = 0; i < sizeof(expected); ++i) {
    EXPECT_EQ(static_cast<unsigned char>(wire[i]), expected[i])
        << "byte " << i;
  }
}

TEST(ProtocolTest, GoldenTracedFrameBytes) {
  // A valid trace context sets the extension flag and prepends one
  // TLV (tag 1, 25 bytes) to the payload. These bytes are the v2
  // contract for trace propagation.
  Frame frame = MakeFrame(FrameType::kPing, 0x0123456789abcdefULL, "hi");
  frame.trace.trace_id_hi = 0x1111222233334444ULL;
  frame.trace.trace_id_lo = 0x5555666677778888ULL;
  frame.trace.parent_span = 0x0000000000000042ULL;
  frame.trace.sampled = true;
  std::string wire = EncodeFrame(frame);
  const unsigned char expected[] = {
      'S',  'A',  'M',  'A',         // magic
      0x02,                          // version
      0x02,                          // type = kPing
      0x01, 0x00,                    // flags: has extension
      0xef, 0xcd, 0xab, 0x89, 0x67, 0x45, 0x23, 0x01,  // request id LE
      0x02, 0x00, 0x00, 0x00,        // payload length (payload only)
      0x1b, 0x00,                    // ext length: 2 TLV bytes + 25
      0x01, 0x19,                    // tag=trace context, len=25
      0x44, 0x44, 0x33, 0x33, 0x22, 0x22, 0x11, 0x11,  // trace id hi LE
      0x88, 0x88, 0x77, 0x77, 0x66, 0x66, 0x55, 0x55,  // trace id lo LE
      0x42, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // parent span LE
      0x01,                          // sampled
      'h',  'i',
  };
  ASSERT_EQ(wire.size(), sizeof(expected));
  for (size_t i = 0; i < sizeof(expected); ++i) {
    EXPECT_EQ(static_cast<unsigned char>(wire[i]), expected[i])
        << "byte " << i;
  }
  // And it round-trips.
  FrameDecoder decoder;
  decoder.Feed(wire);
  Frame back = MustPop(&decoder);
  EXPECT_EQ(back.trace.trace_id_hi, frame.trace.trace_id_hi);
  EXPECT_EQ(back.trace.trace_id_lo, frame.trace.trace_id_lo);
  EXPECT_EQ(back.trace.parent_span, frame.trace.parent_span);
  EXPECT_TRUE(back.trace.sampled);
  EXPECT_EQ(back.payload, "hi");
}

TEST(ProtocolTest, V1FramesStillDecode) {
  // Old clients speak v1: no flags, no extension. The v2 decoder must
  // accept the exact v1 bytes unchanged.
  const unsigned char v1_wire[] = {
      'S',  'A',  'M',  'A',         // magic
      0x01,                          // version 1
      0x02,                          // type = kPing
      0xff, 0xff,                    // v1 flags are reserved noise
      0xef, 0xcd, 0xab, 0x89, 0x67, 0x45, 0x23, 0x01,  // request id LE
      0x02, 0x00, 0x00, 0x00,        // payload length
      'h',  'i',
  };
  FrameDecoder decoder;
  decoder.Feed(std::string_view(reinterpret_cast<const char*>(v1_wire),
                                sizeof(v1_wire)));
  Frame frame = MustPop(&decoder);
  EXPECT_EQ(frame.type, FrameType::kPing);
  EXPECT_EQ(frame.request_id, 0x0123456789abcdefULL);
  EXPECT_EQ(frame.payload, "hi");
  // Even a v1 flags field with the extension bit set reads no
  // extension bytes — the bit is only meaningful from v2 on.
  EXPECT_FALSE(frame.trace.valid());
}

TEST(ProtocolTest, UnknownExtensionTagsSkipped) {
  // Forward compatibility: a v2 frame carrying TLV tags this decoder
  // has never heard of must decode cleanly, keeping any tags it does
  // know. Hand-build ext = [tag 9 len 3 xyz][trace TLV][tag 7 len 0].
  Frame frame = MakeFrame(FrameType::kPing, 7, "ok");
  frame.trace.trace_id_hi = 1;
  frame.trace.trace_id_lo = 2;
  std::string traced = EncodeFrame(frame);
  // Extract the 27 ext bytes EncodeFrame produced (after the 2-byte
  // ext length at offset 20).
  std::string trace_tlv = traced.substr(22, 27);
  std::string ext;
  ext += "\x09\x03xyz";           // unknown tag 9
  ext += trace_tlv;               // known trace TLV
  ext += '\x07';                  // unknown tag 7 ...
  ext += '\x00';                  // ... empty value
  std::string wire = traced.substr(0, 20);
  wire[6] = 0x01;                 // flags: has extension
  wire += static_cast<char>(ext.size());
  wire += '\x00';
  wire += ext;
  wire += "ok";
  FrameDecoder decoder;
  decoder.Feed(wire);
  Frame back = MustPop(&decoder);
  EXPECT_EQ(back.payload, "ok");
  EXPECT_EQ(back.trace.trace_id_hi, 1u);
  EXPECT_EQ(back.trace.trace_id_lo, 2u);
}

TEST(ProtocolTest, MalformedExtensionPoisonsDecoder) {
  struct Case {
    const char* name;
    std::function<void(std::string*)> corrupt;
  };
  Frame frame = MakeFrame(FrameType::kPing, 7, "ok");
  frame.trace.trace_id_hi = 1;
  frame.trace.trace_id_lo = 2;
  const std::string good = EncodeFrame(frame);
  const Case cases[] = {
      {"trace TLV with truncated value",
       [](std::string* w) { (*w)[23] = 0x05; }},  // len 25 -> 5
      {"TLV overrunning the extension",
       [](std::string* w) { (*w)[23] = 0x7f; }},  // len 25 -> 127
      {"extension length above the cap",
       [](std::string* w) {
         (*w)[20] = static_cast<char>(0xff);
         (*w)[21] = static_cast<char>(0xff);
       }},
  };
  for (const Case& c : cases) {
    std::string wire = good;
    c.corrupt(&wire);
    FrameDecoder decoder;
    decoder.Feed(wire);
    Frame out;
    WireStatus code = WireStatus::kOk;
    std::string message;
    // Either the frame is rejected outright or the decoder wants more
    // bytes it will never get (oversized ext length); feeding garbage
    // afterwards must then fail, not fabricate a frame.
    FrameDecoder::Next next = decoder.Pop(&out, &code, &message);
    if (next == FrameDecoder::Next::kNeedMore) {
      decoder.Feed(std::string(512, '\0'));
      next = decoder.Pop(&out, &code, &message);
    }
    EXPECT_EQ(next, FrameDecoder::Next::kBad) << c.name;
    EXPECT_EQ(code, WireStatus::kBadFrame) << c.name;
  }
}

TEST(ProtocolTest, RandomTracedFramesSurviveChunkedRoundTrip) {
  // Fuzz the v2 extension path: random frames, ~half traced, fed in
  // random chunk sizes, must all round-trip with their trace context
  // intact.
  Random rng(4242);
  FrameDecoder decoder;
  std::vector<Frame> sent;
  std::string wire;
  for (int i = 0; i < 500; ++i) {
    Frame frame;
    frame.type = static_cast<FrameType>(1 + rng.Uniform(6));
    frame.request_id = rng.Next();
    frame.payload.assign(rng.Uniform(64), 'x');
    if (rng.Bernoulli(0.5)) {
      frame.trace.trace_id_hi = rng.Next();
      frame.trace.trace_id_lo = rng.Next() | 1;  // Keep it valid.
      frame.trace.parent_span = rng.Next();
      frame.trace.sampled = rng.Bernoulli(0.5);
    }
    wire += EncodeFrame(frame);
    sent.push_back(std::move(frame));
  }
  size_t fed = 0, popped = 0;
  while (popped < sent.size()) {
    if (fed < wire.size()) {
      size_t n = std::min<size_t>(1 + rng.Uniform(97), wire.size() - fed);
      decoder.Feed(std::string_view(wire).substr(fed, n));
      fed += n;
    }
    Frame frame;
    WireStatus code = WireStatus::kOk;
    std::string message;
    while (decoder.Pop(&frame, &code, &message) ==
           FrameDecoder::Next::kFrame) {
      const Frame& want = sent[popped];
      ASSERT_EQ(frame.request_id, want.request_id);
      ASSERT_EQ(frame.payload, want.payload);
      ASSERT_EQ(frame.trace.trace_id_hi, want.trace.trace_id_hi);
      ASSERT_EQ(frame.trace.trace_id_lo, want.trace.trace_id_lo);
      ASSERT_EQ(frame.trace.parent_span, want.trace.parent_span);
      ASSERT_EQ(frame.trace.sampled, want.trace.sampled);
      ++popped;
    }
    ASSERT_NE(code, WireStatus::kBadFrame) << message;
  }
}

TEST(ProtocolTest, PrimitiveRoundTrips) {
  Random rng(7);
  for (int i = 0; i < 200; ++i) {
    std::string buf;
    uint16_t a = static_cast<uint16_t>(rng.Next());
    uint32_t b = static_cast<uint32_t>(rng.Next());
    uint64_t c = rng.Next();
    double d = rng.NextDouble() * 1e12 - 5e11;
    AppendU16(&buf, a);
    AppendU32(&buf, b);
    AppendU64(&buf, c);
    AppendF64(&buf, d);
    size_t pos = 0;
    uint16_t ra = 0;
    uint32_t rb = 0;
    uint64_t rc = 0;
    double rd = 0;
    ASSERT_TRUE(ReadU16(buf, &pos, &ra));
    ASSERT_TRUE(ReadU32(buf, &pos, &rb));
    ASSERT_TRUE(ReadU64(buf, &pos, &rc));
    ASSERT_TRUE(ReadF64(buf, &pos, &rd));
    EXPECT_EQ(ra, a);
    EXPECT_EQ(rb, b);
    EXPECT_EQ(rc, c);
    EXPECT_EQ(rd, d);  // Bit-exact, not approximate.
    EXPECT_EQ(pos, buf.size());
  }
}

// The core property test: >1k random frames, encoded, concatenated and
// fed to the decoder in random-size chunks, must come back identical.
TEST(ProtocolTest, RandomFramesSurviveChunkedRoundTrip) {
  constexpr FrameType kTypes[] = {
      FrameType::kQuery, FrameType::kPing,   FrameType::kStats,
      FrameType::kShutdown, FrameType::kResult, FrameType::kPong,
      FrameType::kStatsResult, FrameType::kError, FrameType::kShutdownAck,
  };
  Random rng(20260808);
  constexpr size_t kFrames = 1200;
  std::vector<Frame> sent;
  std::string wire;
  sent.reserve(kFrames);
  for (size_t i = 0; i < kFrames; ++i) {
    std::string payload(rng.Uniform(2048), '\0');
    for (char& c : payload) c = static_cast<char>(rng.Next());
    sent.push_back(MakeFrame(kTypes[rng.Uniform(std::size(kTypes))],
                             rng.Next(), std::move(payload)));
    wire += EncodeFrame(sent.back());
  }

  FrameDecoder decoder;
  size_t fed = 0;
  size_t popped = 0;
  while (popped < sent.size()) {
    if (fed < wire.size()) {
      size_t chunk = 1 + rng.Uniform(4096);
      chunk = std::min(chunk, wire.size() - fed);
      decoder.Feed(std::string_view(wire).substr(fed, chunk));
      fed += chunk;
    }
    while (true) {
      Frame frame;
      WireStatus code = WireStatus::kOk;
      std::string message;
      FrameDecoder::Next next = decoder.Pop(&frame, &code, &message);
      if (next == FrameDecoder::Next::kNeedMore) break;
      ASSERT_EQ(next, FrameDecoder::Next::kFrame) << message;
      ASSERT_LT(popped, sent.size());
      EXPECT_EQ(frame.type, sent[popped].type);
      EXPECT_EQ(frame.request_id, sent[popped].request_id);
      EXPECT_EQ(frame.payload, sent[popped].payload);
      ++popped;
    }
  }
  EXPECT_EQ(popped, sent.size());
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(ProtocolTest, TruncatedFrameNeedsMoreNeverErrors) {
  std::string wire = EncodeFrame(
      MakeFrame(FrameType::kQuery, 42, std::string(100, 'x')));
  // Every proper prefix is just "need more", not an error.
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    FrameDecoder decoder;
    decoder.Feed(std::string_view(wire).substr(0, cut));
    Frame frame;
    WireStatus code = WireStatus::kOk;
    std::string message;
    EXPECT_EQ(decoder.Pop(&frame, &code, &message),
              FrameDecoder::Next::kNeedMore)
        << "prefix of " << cut << " bytes";
  }
}

TEST(ProtocolTest, GarbageHeaderPoisonsDecoder) {
  FrameDecoder decoder;
  decoder.Feed("XXXXGARBAGEGARBAGEGARBAGE");
  Frame frame;
  WireStatus code = WireStatus::kOk;
  std::string message;
  ASSERT_EQ(decoder.Pop(&frame, &code, &message), FrameDecoder::Next::kBad);
  EXPECT_EQ(code, WireStatus::kBadFrame);
  // Poisoned: even valid bytes afterwards keep reporting the error.
  decoder.Feed(EncodeFrame(MakeFrame(FrameType::kPing, 1, "ok")));
  EXPECT_EQ(decoder.Pop(&frame, &code, &message), FrameDecoder::Next::kBad);
  EXPECT_EQ(code, WireStatus::kBadFrame);
}

TEST(ProtocolTest, VersionMismatchRejected) {
  std::string wire = EncodeFrame(MakeFrame(FrameType::kPing, 1, "hello"));
  wire[4] = 3;  // Future version.
  FrameDecoder decoder;
  decoder.Feed(wire);
  Frame frame;
  WireStatus code = WireStatus::kOk;
  std::string message;
  ASSERT_EQ(decoder.Pop(&frame, &code, &message), FrameDecoder::Next::kBad);
  EXPECT_EQ(code, WireStatus::kVersionMismatch);
}

TEST(ProtocolTest, OversizedPayloadRejectedFromHeaderAlone) {
  // The decoder must reject from the header, before any payload bytes
  // arrive — a tiny cap proves no buffering of the oversized body.
  FrameDecoder decoder(/*max_payload=*/64);
  Frame big = MakeFrame(FrameType::kQuery, 9, std::string(65, 'p'));
  std::string wire = EncodeFrame(big);
  decoder.Feed(std::string_view(wire).substr(0, kFrameHeaderBytes));
  Frame frame;
  WireStatus code = WireStatus::kOk;
  std::string message;
  ASSERT_EQ(decoder.Pop(&frame, &code, &message), FrameDecoder::Next::kBad);
  EXPECT_EQ(code, WireStatus::kTooLarge);
}

// Pure fuzz: random byte soup must terminate in kNeedMore or kBad —
// never crash, hang or read out of bounds (sanitizers enforce the
// latter).
TEST(ProtocolTest, GarbageBytesNeverCrash) {
  Random rng(99);
  for (int round = 0; round < 300; ++round) {
    FrameDecoder decoder;
    size_t chunks = 1 + rng.Uniform(8);
    for (size_t c = 0; c < chunks; ++c) {
      std::string garbage(rng.Uniform(512), '\0');
      for (char& b : garbage) b = static_cast<char>(rng.Next());
      // Occasionally lead with real magic so parsing goes deeper.
      if (rng.Bernoulli(0.3) && garbage.size() >= 4) {
        garbage.replace(0, 4, kFrameMagic, 4);
      }
      decoder.Feed(garbage);
      for (int pops = 0; pops < 64; ++pops) {
        Frame frame;
        WireStatus code = WireStatus::kOk;
        std::string message;
        FrameDecoder::Next next = decoder.Pop(&frame, &code, &message);
        if (next != FrameDecoder::Next::kFrame) break;
      }
    }
  }
}

TEST(ProtocolTest, QueryRequestRoundTrip) {
  Random rng(5);
  for (int i = 0; i < 300; ++i) {
    QueryRequest request;
    request.k = static_cast<uint32_t>(rng.Uniform(1000));
    request.deadline_ms = static_cast<uint32_t>(rng.Uniform(100000));
    request.sparql.assign(rng.Uniform(512), '\0');
    for (char& c : request.sparql) c = static_cast<char>(rng.Next());
    QueryRequest decoded;
    ASSERT_TRUE(DecodeQueryRequest(EncodeQueryRequest(request), &decoded));
    EXPECT_EQ(decoded.sparql, request.sparql);
    EXPECT_EQ(decoded.k, request.k);
    EXPECT_EQ(decoded.deadline_ms, request.deadline_ms);
  }
}

TEST(ProtocolTest, QueryRequestRejectsTrailingBytes) {
  std::string payload = EncodeQueryRequest(QueryRequest{"SELECT", 1, 2});
  payload.push_back('\0');
  QueryRequest decoded;
  EXPECT_FALSE(DecodeQueryRequest(payload, &decoded));
}

TEST(ProtocolTest, QueryResultRoundTrip) {
  Random rng(11);
  for (int i = 0; i < 200; ++i) {
    QueryResultWire result;
    result.status = WireStatus::kOk;
    result.truncated = rng.Bernoulli(0.5);
    size_t answers = rng.Uniform(8);
    for (size_t a = 0; a < answers; ++a) {
      WireAnswer answer;
      answer.score = rng.NextDouble() * 100;
      answer.lambda = rng.NextDouble() * 50;
      answer.psi = answer.score - answer.lambda;
      answer.consistent = rng.Bernoulli(0.8);
      size_t bindings = rng.Uniform(5);
      for (size_t b = 0; b < bindings; ++b) {
        WireBinding binding;
        binding.var = "v" + std::to_string(b);
        binding.value.assign(rng.Uniform(64), '\0');
        for (char& c : binding.value) c = static_cast<char>(rng.Next());
        answer.bindings.push_back(std::move(binding));
      }
      result.answers.push_back(std::move(answer));
    }
    QueryResultWire decoded;
    ASSERT_TRUE(DecodeQueryResult(EncodeQueryResult(result), &decoded));
    ASSERT_EQ(decoded.answers.size(), result.answers.size());
    EXPECT_EQ(decoded.truncated, result.truncated);
    for (size_t a = 0; a < result.answers.size(); ++a) {
      EXPECT_EQ(decoded.answers[a].score, result.answers[a].score);
      EXPECT_EQ(decoded.answers[a].lambda, result.answers[a].lambda);
      EXPECT_EQ(decoded.answers[a].psi, result.answers[a].psi);
      EXPECT_EQ(decoded.answers[a].consistent,
                result.answers[a].consistent);
      ASSERT_EQ(decoded.answers[a].bindings.size(),
                result.answers[a].bindings.size());
      for (size_t b = 0; b < result.answers[a].bindings.size(); ++b) {
        EXPECT_EQ(decoded.answers[a].bindings[b].var,
                  result.answers[a].bindings[b].var);
        EXPECT_EQ(decoded.answers[a].bindings[b].value,
                  result.answers[a].bindings[b].value);
      }
    }
  }
}

TEST(ProtocolTest, TruncatedStructuredPayloadsRejected) {
  // Chopping a valid structured payload anywhere must fail the decode,
  // not read past the end.
  QueryResultWire result;
  WireAnswer answer;
  answer.score = 1.5;
  answer.bindings.push_back({"x", "<http://example.org/a>"});
  result.answers.push_back(answer);
  std::string payload = EncodeQueryResult(result);
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    QueryResultWire decoded;
    EXPECT_FALSE(DecodeQueryResult(
        std::string_view(payload).substr(0, cut), &decoded))
        << "prefix of " << cut << " bytes decoded";
  }
}

TEST(ProtocolTest, UpdateRequestRoundTrip) {
  Random rng(23);
  for (int i = 0; i < 300; ++i) {
    UpdateRequest request;
    request.op = rng.Bernoulli(0.5) ? UpdateRequest::kOpDelete
                                    : UpdateRequest::kOpInsert;
    request.flags = static_cast<uint16_t>(rng.Uniform(1 << 16));
    request.statement.assign(rng.Uniform(256), '\0');
    for (char& c : request.statement) c = static_cast<char>(rng.Next());
    UpdateRequest decoded;
    ASSERT_TRUE(
        DecodeUpdateRequest(EncodeUpdateRequest(request), &decoded));
    EXPECT_EQ(decoded.op, request.op);
    EXPECT_EQ(decoded.flags, request.flags);
    EXPECT_EQ(decoded.statement, request.statement);
  }
}

TEST(ProtocolTest, UpdateRequestRejectsBadOpAndTrailingBytes) {
  UpdateRequest request;
  request.statement = "<s> <p> <o> .";
  std::string payload = EncodeUpdateRequest(request);
  UpdateRequest decoded;
  ASSERT_TRUE(DecodeUpdateRequest(payload, &decoded));

  std::string trailing = payload + '\0';
  EXPECT_FALSE(DecodeUpdateRequest(trailing, &decoded));

  std::string bad_op = payload;
  bad_op[0] = 2;  // Only insert (0) and delete (1) exist.
  EXPECT_FALSE(DecodeUpdateRequest(bad_op, &decoded));
}

TEST(ProtocolTest, UpdateResultRoundTrip) {
  UpdateResultWire result;
  result.status = WireStatus::kOk;
  result.lsn = 0x1122334455667788ULL;
  result.durable = 1;
  UpdateResultWire decoded;
  ASSERT_TRUE(DecodeUpdateResult(EncodeUpdateResult(result), &decoded));
  EXPECT_EQ(decoded.status, result.status);
  EXPECT_EQ(decoded.lsn, result.lsn);
  EXPECT_EQ(decoded.durable, result.durable);
}

TEST(ProtocolTest, TruncatedUpdatePayloadsRejected) {
  UpdateRequest request;
  request.op = UpdateRequest::kOpDelete;
  request.flags = UpdateRequest::kFlagNonDurable;
  request.statement = "<s> <p> \"o\" .";
  std::string req_payload = EncodeUpdateRequest(request);
  for (size_t cut = 0; cut < req_payload.size(); ++cut) {
    UpdateRequest decoded;
    EXPECT_FALSE(DecodeUpdateRequest(
        std::string_view(req_payload).substr(0, cut), &decoded))
        << "request prefix of " << cut << " bytes decoded";
  }
  UpdateResultWire result;
  result.lsn = 42;
  std::string res_payload = EncodeUpdateResult(result);
  for (size_t cut = 0; cut < res_payload.size(); ++cut) {
    UpdateResultWire decoded;
    EXPECT_FALSE(DecodeUpdateResult(
        std::string_view(res_payload).substr(0, cut), &decoded))
        << "result prefix of " << cut << " bytes decoded";
  }
}

TEST(ProtocolTest, ErrorBodyRoundTrip) {
  ErrorBody error{WireStatus::kShed, "queue full"};
  ErrorBody decoded;
  ASSERT_TRUE(DecodeErrorBody(EncodeErrorBody(error), &decoded));
  EXPECT_EQ(decoded.code, WireStatus::kShed);
  EXPECT_EQ(decoded.message, "queue full");

  // EncodeErrorFrame is the same body wrapped in a kError frame.
  FrameDecoder decoder;
  decoder.Feed(EncodeErrorFrame(77, WireStatus::kParseError, "bad sparql"));
  Frame frame = MustPop(&decoder);
  EXPECT_EQ(frame.type, FrameType::kError);
  EXPECT_EQ(frame.request_id, 77u);
  ASSERT_TRUE(DecodeErrorBody(frame.payload, &decoded));
  EXPECT_EQ(decoded.code, WireStatus::kParseError);
  EXPECT_EQ(decoded.message, "bad sparql");
}

TEST(ProtocolTest, WireStatusNamesAreDistinct) {
  // Names feed logs and smoke scripts; catch accidental merges.
  const WireStatus all[] = {
      WireStatus::kOk, WireStatus::kBadFrame, WireStatus::kVersionMismatch,
      WireStatus::kTooLarge, WireStatus::kBadRequest,
      WireStatus::kParseError, WireStatus::kShed,
      WireStatus::kShuttingDown, WireStatus::kInternal,
      WireStatus::kUnknownType, WireStatus::kReadOnly,
  };
  for (size_t i = 0; i < std::size(all); ++i) {
    for (size_t j = i + 1; j < std::size(all); ++j) {
      EXPECT_STRNE(WireStatusName(all[i]), WireStatusName(all[j]));
    }
  }
}

}  // namespace
}  // namespace sama

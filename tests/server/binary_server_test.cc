// Behavioural tier for the binary query server: command round trips,
// the serving determinism contract (pipelined answers byte-identical
// to serial and to direct engine execution, at 1 and 4 workers),
// admission control and load shedding, connection limits, remote
// shutdown, metrics export through a private registry, per-request
// trace spans, and teardown with pipelined requests still in flight
// (the TSan tier runs exactly that scenario).
#include "server/binary_server.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "obs/http_server.h"
#include "obs/metrics.h"
#include "query/sparql.h"
#include "server/client.h"
#include "testing/fixtures.h"

namespace sama {
namespace {

using testing_util::GovTrackEnv;

constexpr char kQuerySparql[] =
    "PREFIX gov: <http://gov.example.org/>\n"
    "SELECT ?v1 WHERE { ?v1 gov:hasSubject gov:HealthCare }";

// A GovTrack engine plus a running server on an ephemeral port, with a
// per-test metrics registry so counter assertions see only this
// server's traffic.
struct ServerFixture {
  explicit ServerFixture(BinaryQueryServer::Options options = {}) {
    options.port = 0;
    options.registry = &registry;
    server = std::make_unique<BinaryQueryServer>(&env.engine(), options);
    Status started = server->Start();
    EXPECT_TRUE(started.ok()) << started;
  }

  BinaryClient Connect() {
    BinaryClient client;
    Status s = client.Connect(server->host(), server->port());
    EXPECT_TRUE(s.ok()) << s;
    return client;
  }

  GovTrackEnv env;
  MetricsRegistry registry;
  std::unique_ptr<BinaryQueryServer> server;
};

// What the server must produce for `sparql`: the direct engine
// execution serialised through the shared result encoder.
std::string DirectWireBytes(SamaEngine& engine, const std::string& sparql,
                            size_t k) {
  auto parsed = ParseSparql(sparql);
  EXPECT_TRUE(parsed.ok()) << parsed.status();
  QueryStats stats;
  auto answers = engine.ExecuteSparql(*parsed, k, &stats);
  EXPECT_TRUE(answers.ok()) << answers.status();
  return EncodeQueryResult(MakeQueryResultWire(
      *answers, parsed->select_vars, stats.search_truncated));
}

TEST(BinaryServerTest, BindsEphemeralPort) {
  ServerFixture fx;
  EXPECT_NE(fx.server->port(), 0);
  EXPECT_EQ(fx.server->host(), "127.0.0.1");
}

// Regression for the shared listener utility: BOTH servers must
// resolve --port 0 to the bound ephemeral port.
TEST(BinaryServerTest, EphemeralPortWorksForBothServers) {
  ServerFixture fx;
  EXPECT_NE(fx.server->port(), 0);

  ObsHttpServer::Options http_options;
  http_options.port = 0;
  ObsHttpServer http(http_options);
  http.Handle("/healthz", [](const HttpRequest&) {
    HttpResponse r;
    r.body = "ok\n";
    return r;
  });
  Status started = http.Start();
  ASSERT_TRUE(started.ok()) << started;
  EXPECT_NE(http.port(), 0);
  EXPECT_NE(http.port(), fx.server->port());
  http.Stop();
}

TEST(BinaryServerTest, PingEchoesPayload) {
  ServerFixture fx;
  BinaryClient client = fx.Connect();
  std::string payload = "hello\0world";
  auto echo = client.Ping(payload, 42);
  ASSERT_TRUE(echo.ok()) << echo.status();
  EXPECT_EQ(*echo, payload);
}

TEST(BinaryServerTest, EchoesRequestIdVerbatim) {
  ServerFixture fx;
  BinaryClient client = fx.Connect();
  Frame frame;
  frame.type = FrameType::kPing;
  frame.request_id = 0xdeadbeefcafef00dULL;
  ASSERT_TRUE(client.SendFrame(frame).ok());
  auto reply = client.ReadFrame();
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->type, FrameType::kPong);
  EXPECT_EQ(reply->request_id, 0xdeadbeefcafef00dULL);
}

TEST(BinaryServerTest, StatsCommandReportsCounters) {
  ServerFixture fx;
  BinaryClient client = fx.Connect();
  ASSERT_TRUE(client.Ping("x").ok());
  auto text = client.StatsText();
  ASSERT_TRUE(text.ok()) << text.status();
  EXPECT_NE(text->find("connections_accepted 1"), std::string::npos)
      << *text;
  EXPECT_NE(text->find("requests 2"), std::string::npos) << *text;
  EXPECT_NE(text->find("queue_depth 0"), std::string::npos) << *text;
}

TEST(BinaryServerTest, QueryAnswersMatchDirectEngineByteForByte) {
  ServerFixture fx;
  BinaryClient client = fx.Connect();
  QueryRequest request;
  request.sparql = kQuerySparql;
  request.k = 5;
  ASSERT_TRUE(client.SendQuery(request, 7).ok());
  auto reply = client.ReadFrame();
  ASSERT_TRUE(reply.ok()) << reply.status();
  ASSERT_EQ(reply->type, FrameType::kResult);
  EXPECT_EQ(reply->request_id, 7u);
  // The serving determinism contract: the wire payload equals the
  // direct engine execution, byte for byte.
  EXPECT_EQ(reply->payload,
            DirectWireBytes(fx.env.engine(), kQuerySparql, 5));

  QueryResultWire result;
  ASSERT_TRUE(DecodeQueryResult(reply->payload, &result));
  EXPECT_EQ(result.status, WireStatus::kOk);
  EXPECT_FALSE(result.truncated);
  EXPECT_FALSE(result.answers.empty());
  for (const auto& answer : result.answers) {
    ASSERT_EQ(answer.bindings.size(), 1u);
    EXPECT_EQ(answer.bindings[0].var, "v1");
    EXPECT_FALSE(answer.bindings[0].value.empty());
  }
}

// N pipelined queries must come back in request order, each
// byte-identical to (a) the same queries issued serially and (b) the
// direct engine execution — at 1 worker and at 4 workers, where
// completion order genuinely races.
void RunPipeliningDeterminism(size_t num_workers) {
  BinaryQueryServer::Options options;
  options.num_workers = num_workers;
  ServerFixture fx(options);

  std::vector<std::string> sparqls;
  std::vector<size_t> ks;
  for (int i = 0; i < 12; ++i) {
    sparqls.push_back(kQuerySparql);
    ks.push_back(static_cast<size_t>(1 + (i % 6)));  // Distinct work.
  }

  // Serial reference over its own connection.
  std::vector<std::string> serial;
  {
    BinaryClient client = fx.Connect();
    for (size_t i = 0; i < sparqls.size(); ++i) {
      QueryRequest request;
      request.sparql = sparqls[i];
      request.k = static_cast<uint32_t>(ks[i]);
      ASSERT_TRUE(client.SendQuery(request, i).ok());
      auto reply = client.ReadFrame();
      ASSERT_TRUE(reply.ok()) << reply.status();
      ASSERT_EQ(reply->type, FrameType::kResult);
      serial.push_back(reply->payload);
    }
  }

  // Pipelined: write everything, then read everything.
  BinaryClient client = fx.Connect();
  for (size_t i = 0; i < sparqls.size(); ++i) {
    QueryRequest request;
    request.sparql = sparqls[i];
    request.k = static_cast<uint32_t>(ks[i]);
    ASSERT_TRUE(client.SendQuery(request, 1000 + i).ok());
  }
  for (size_t i = 0; i < sparqls.size(); ++i) {
    auto reply = client.ReadFrame();
    ASSERT_TRUE(reply.ok()) << reply.status();
    ASSERT_EQ(reply->type, FrameType::kResult) << "response " << i;
    EXPECT_EQ(reply->request_id, 1000 + i) << "responses out of order";
    EXPECT_EQ(reply->payload, serial[i]) << "response " << i;
    EXPECT_EQ(reply->payload,
              DirectWireBytes(fx.env.engine(), sparqls[i], ks[i]))
        << "response " << i;
  }
}

TEST(BinaryServerTest, PipeliningDeterministicOneWorker) {
  RunPipeliningDeterminism(1);
}

TEST(BinaryServerTest, PipeliningDeterministicFourWorkers) {
  RunPipeliningDeterminism(4);
}

TEST(BinaryServerTest, ShedsWhenAdmissionQueueFull) {
  // max_queue = 0 admits nothing: every QUERY is deterministically
  // shed with the distinct SHED status, and the connection stays
  // healthy for non-query traffic.
  BinaryQueryServer::Options options;
  options.max_queue = 0;
  ServerFixture fx(options);
  BinaryClient client = fx.Connect();

  QueryRequest request;
  request.sparql = kQuerySparql;
  auto result = client.Query(request);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->status, WireStatus::kShed);
  EXPECT_TRUE(result->answers.empty());

  EXPECT_EQ(fx.server->stats().shed, 1u);
  Counter* shed = fx.registry.GetCounter("sama_server_shed_total", "");
  ASSERT_NE(shed, nullptr);
  EXPECT_EQ(shed->Value(), 1u);
  // Sheds are backpressure, not errors.
  EXPECT_EQ(fx.server->stats().errors, 0u);
  EXPECT_TRUE(client.Ping("still alive").ok());
}

TEST(BinaryServerTest, FloodPastAdmissionBoundShedsWithoutProtocolErrors) {
  BinaryQueryServer::Options options;
  options.max_queue = 1;
  options.num_workers = 1;
  ServerFixture fx(options);
  BinaryClient client = fx.Connect();

  constexpr size_t kFlood = 32;
  for (size_t i = 0; i < kFlood; ++i) {
    QueryRequest request;
    request.sparql = kQuerySparql;
    ASSERT_TRUE(client.SendQuery(request, i).ok());
  }
  size_t ok = 0, shed = 0;
  for (size_t i = 0; i < kFlood; ++i) {
    auto reply = client.ReadFrame();
    ASSERT_TRUE(reply.ok()) << reply.status();
    EXPECT_EQ(reply->request_id, i) << "responses out of order";
    if (reply->type == FrameType::kResult) {
      QueryResultWire result;
      ASSERT_TRUE(DecodeQueryResult(reply->payload, &result));
      EXPECT_EQ(result.status, WireStatus::kOk);
      ++ok;
    } else {
      ASSERT_EQ(reply->type, FrameType::kError);
      ErrorBody error;
      ASSERT_TRUE(DecodeErrorBody(reply->payload, &error));
      EXPECT_EQ(error.code, WireStatus::kShed);
      ++shed;
    }
  }
  // Every request got exactly one well-formed response; at least the
  // first admitted query succeeded, and the shed counter matches what
  // came back on the wire.
  EXPECT_EQ(ok + shed, kFlood);
  EXPECT_GE(ok, 1u);
  EXPECT_EQ(fx.server->stats().shed, shed);
  EXPECT_EQ(fx.server->stats().queue_depth, 0u);
}

TEST(BinaryServerTest, ConnectionLimitRejectsExtraConnections) {
  BinaryQueryServer::Options options;
  options.max_connections = 2;
  ServerFixture fx(options);
  BinaryClient first = fx.Connect();
  BinaryClient second = fx.Connect();
  // Pings force the accepts to have happened before the third connect.
  ASSERT_TRUE(first.Ping("a").ok());
  ASSERT_TRUE(second.Ping("b").ok());

  BinaryClient third;
  ASSERT_TRUE(third.Connect(fx.server->host(), fx.server->port()).ok());
  // The server accepts and immediately closes: the first round trip
  // fails.
  auto echo = third.Ping("c");
  EXPECT_FALSE(echo.ok());
  EXPECT_GE(fx.server->stats().connections_rejected, 1u);
  // Existing connections are unaffected.
  EXPECT_TRUE(first.Ping("still fine").ok());
}

TEST(BinaryServerTest, MalformedFrameGetsErrorThenClose) {
  ServerFixture fx;
  BinaryClient client = fx.Connect();
  ASSERT_TRUE(client.SendRaw("garbage that is not a frame at all").ok());
  auto reply = client.ReadFrame();
  ASSERT_TRUE(reply.ok()) << reply.status();
  ASSERT_EQ(reply->type, FrameType::kError);
  ErrorBody error;
  ASSERT_TRUE(DecodeErrorBody(reply->payload, &error));
  EXPECT_EQ(error.code, WireStatus::kBadFrame);
  // The stream has no resync point; the server closes.
  EXPECT_FALSE(client.ReadFrame().ok());
  EXPECT_GE(fx.server->stats().errors, 1u);
}

TEST(BinaryServerTest, VersionMismatchGetsErrorThenClose) {
  ServerFixture fx;
  BinaryClient client = fx.Connect();
  Frame frame;
  frame.type = FrameType::kPing;
  std::string wire = EncodeFrame(frame);
  wire[4] = 9;  // Unknown version.
  ASSERT_TRUE(client.SendRaw(wire).ok());
  auto reply = client.ReadFrame();
  ASSERT_TRUE(reply.ok()) << reply.status();
  ASSERT_EQ(reply->type, FrameType::kError);
  ErrorBody error;
  ASSERT_TRUE(DecodeErrorBody(reply->payload, &error));
  EXPECT_EQ(error.code, WireStatus::kVersionMismatch);
  EXPECT_FALSE(client.ReadFrame().ok());
}

TEST(BinaryServerTest, UnknownRequestTypeGetsErrorKeepsConnection) {
  ServerFixture fx;
  BinaryClient client = fx.Connect();
  Frame frame;
  frame.type = FrameType::kResult;  // A response type, as a request.
  frame.request_id = 5;
  ASSERT_TRUE(client.SendFrame(frame).ok());
  auto reply = client.ReadFrame();
  ASSERT_TRUE(reply.ok()) << reply.status();
  ASSERT_EQ(reply->type, FrameType::kError);
  EXPECT_EQ(reply->request_id, 5u);
  ErrorBody error;
  ASSERT_TRUE(DecodeErrorBody(reply->payload, &error));
  EXPECT_EQ(error.code, WireStatus::kUnknownType);
  // The frame itself was well-formed, so the connection survives.
  EXPECT_TRUE(client.Ping("ok").ok());
}

TEST(BinaryServerTest, UndecodableQueryPayloadGetsBadRequest) {
  ServerFixture fx;
  BinaryClient client = fx.Connect();
  Frame frame;
  frame.type = FrameType::kQuery;
  frame.payload = "not a query payload";
  ASSERT_TRUE(client.SendFrame(frame).ok());
  auto reply = client.ReadFrame();
  ASSERT_TRUE(reply.ok()) << reply.status();
  ASSERT_EQ(reply->type, FrameType::kError);
  ErrorBody error;
  ASSERT_TRUE(DecodeErrorBody(reply->payload, &error));
  EXPECT_EQ(error.code, WireStatus::kBadRequest);
  EXPECT_TRUE(client.Ping("ok").ok());
}

TEST(BinaryServerTest, SparqlParseFailureGetsParseError) {
  ServerFixture fx;
  BinaryClient client = fx.Connect();
  QueryRequest request;
  request.sparql = "this is not sparql";
  auto result = client.Query(request);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->status, WireStatus::kParseError);
}

TEST(BinaryServerTest, RemoteShutdownAckedAndFlagged) {
  ServerFixture fx;
  EXPECT_FALSE(fx.server->shutdown_requested());
  BinaryClient client = fx.Connect();
  ASSERT_TRUE(client.Shutdown().ok());
  EXPECT_TRUE(
      fx.server->WaitForShutdown(std::chrono::milliseconds(5000)));
  EXPECT_TRUE(fx.server->shutdown_requested());
}

TEST(BinaryServerTest, RemoteShutdownCanBeDisabled) {
  BinaryQueryServer::Options options;
  options.allow_remote_shutdown = false;
  ServerFixture fx(options);
  BinaryClient client = fx.Connect();
  EXPECT_FALSE(client.Shutdown().ok());
  EXPECT_FALSE(fx.server->shutdown_requested());
  EXPECT_TRUE(client.Ping("still serving").ok());
}

TEST(BinaryServerTest, MetricsExportedThroughPrivateRegistry) {
  ServerFixture fx;
  BinaryClient client = fx.Connect();
  ASSERT_TRUE(client.Ping("x").ok());
  QueryRequest request;
  request.sparql = kQuerySparql;
  ASSERT_TRUE(client.Query(request).ok());

  Counter* pings = fx.registry.GetCounter("sama_server_requests_total", "",
                                          {{"type", "ping"}});
  Counter* queries = fx.registry.GetCounter("sama_server_requests_total",
                                            "", {{"type", "query"}});
  Counter* accepted = fx.registry.GetCounter(
      "sama_server_connections_accepted_total", "");
  ASSERT_NE(pings, nullptr);
  ASSERT_NE(queries, nullptr);
  ASSERT_NE(accepted, nullptr);
  EXPECT_EQ(pings->Value(), 1u);
  EXPECT_EQ(queries->Value(), 1u);
  EXPECT_EQ(accepted->Value(), 1u);

  Histogram* latency = fx.registry.GetHistogram(
      "sama_server_request_millis", "", Histogram::LatencyBucketsMillis());
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->Count(), 1u);

  std::string text = fx.registry.RenderText();
  EXPECT_NE(text.find("sama_server_requests_total"), std::string::npos);
  EXPECT_NE(text.find("sama_server_shed_total"), std::string::npos);
  EXPECT_NE(text.find("sama_server_request_millis_bucket"),
            std::string::npos);
}

TEST(BinaryServerTest, TraceSpansRecordedPerRequest) {
  BinaryQueryServer::Options options;
  options.trace_requests = true;
  options.trace_capacity = 4;
  ServerFixture fx(options);
  BinaryClient client = fx.Connect();
  QueryRequest request;
  request.sparql = kQuerySparql;
  ASSERT_TRUE(client.Query(request).ok());

  auto traces = fx.server->request_traces();
  ASSERT_EQ(traces.size(), 1u);
  std::vector<TraceSpan> spans = traces[0]->Snapshot();
  std::vector<std::string> names;
  for (const auto& span : spans) names.push_back(span.name);
  EXPECT_NE(std::find(names.begin(), names.end(), "request"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "queue"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "execute"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "encode"), names.end());
  for (const auto& span : spans) {
    EXPECT_GE(span.duration_millis, 0.0) << span.name << " left open";
  }

  Counter* recorded = fx.registry.GetCounter(
      "sama_server_request_spans_total", "");
  ASSERT_NE(recorded, nullptr);
  EXPECT_EQ(recorded->Value(), spans.size());
}

TEST(BinaryServerTest, StopWithInFlightPipelinedRequestsIsClean) {
  // Teardown torture, run under TSan in CI: pipeline a burst of
  // queries at 4 workers and Stop without reading a single response.
  // Requires: no crash, no hang, no worker touching a dead socket.
  BinaryQueryServer::Options options;
  options.num_workers = 4;
  ServerFixture fx(options);
  BinaryClient client = fx.Connect();
  for (int i = 0; i < 16; ++i) {
    QueryRequest request;
    request.sparql = kQuerySparql;
    ASSERT_TRUE(client.SendQuery(request, i).ok());
  }
  fx.server->Stop();
  // The client's connection dies sooner or later; either a response
  // that was already in flight or an EOF is acceptable, but the server
  // side must already be fully drained by the time Stop returned.
  EXPECT_EQ(fx.server->stats().connections_active, 0u);
  EXPECT_EQ(fx.server->stats().queue_depth, 0u);
}

TEST(BinaryServerTest, StopIsIdempotentAndRestartable) {
  GovTrackEnv env;
  MetricsRegistry registry;
  BinaryQueryServer::Options options;
  options.port = 0;
  options.registry = &registry;
  BinaryQueryServer server(&env.engine(), options);
  ASSERT_TRUE(server.Start().ok());
  server.Stop();
  server.Stop();  // Second stop is a no-op.
  ASSERT_TRUE(server.Start().ok());  // Fresh ephemeral port.
  BinaryClient client;
  ASSERT_TRUE(client.Connect(server.host(), server.port()).ok());
  EXPECT_TRUE(client.Ping("back").ok());
  server.Stop();
}

}  // namespace
}  // namespace sama

// The UPDATE opcode end to end: wire round trips against a live server
// over a disk-backed index, the read-only rejection, the per-connection
// ordering contract (an UPDATE happens-after every QUERY pipelined
// before it and before every QUERY after it), and the shutdown drain —
// SHUTDOWN_ACK implies every journalled update is fsynced, and a failed
// flush is reported as an error instead of acked.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "core/engine.h"
#include "datasets/govtrack.h"
#include "index/path_index.h"
#include "obs/metrics.h"
#include "server/binary_server.h"
#include "server/client.h"
#include "text/thesaurus.h"

namespace sama {
namespace {

constexpr char kMaleSparql[] =
    "PREFIX gov: <http://gov.example.org/>\n"
    "SELECT ?p WHERE { ?p gov:gender \"Male\" }";

constexpr char kInsertStatement[] =
    "<http://gov.example.org/NewSenator> "
    "<http://gov.example.org/gender> \"Male\" .";

std::string FreshDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/update_server_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// A disk-backed GovTrack index with the update path enabled, plus a
// running server. The engine outlives the server (borrowed pointer).
struct WritableServerFixture {
  explicit WritableServerFixture(const std::string& dir,
                                 UpdateOptions uo = {},
                                 BinaryQueryServer::Options options = {})
      : graph(DataGraph::FromTriples(GovTrackFigure1Triples())),
        thesaurus(Thesaurus::BuiltinEnglish()) {
    PathIndexOptions po;
    po.dir = dir;
    Status built = index.Build(graph, po);
    EXPECT_TRUE(built.ok()) << built;
    engine = std::make_unique<SamaEngine>(&graph, &index, &thesaurus);
    Status enabled = engine->EnableUpdates(&graph, &index, uo);
    EXPECT_TRUE(enabled.ok()) << enabled;
    options.port = 0;
    options.registry = &registry;
    server = std::make_unique<BinaryQueryServer>(engine.get(), options);
    Status started = server->Start();
    EXPECT_TRUE(started.ok()) << started;
  }

  BinaryClient Connect() {
    BinaryClient client;
    Status s = client.Connect(server->host(), server->port());
    EXPECT_TRUE(s.ok()) << s;
    return client;
  }

  DataGraph graph;
  PathIndex index;
  Thesaurus thesaurus;
  MetricsRegistry registry;
  std::unique_ptr<SamaEngine> engine;
  std::unique_ptr<BinaryQueryServer> server;
};

size_t QueryAnswerCount(BinaryClient& client, uint64_t request_id) {
  QueryRequest request;
  request.sparql = kMaleSparql;
  request.k = 10;
  auto result = client.Query(request, request_id);
  EXPECT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->status, WireStatus::kOk);
  return result->answers.size();
}

TEST(UpdateServerTest, InsertAndDeleteRoundTrip) {
  WritableServerFixture fx(FreshDir("roundtrip"));
  BinaryClient client = fx.Connect();
  EXPECT_EQ(QueryAnswerCount(client, 1), 4u);

  UpdateRequest insert;
  insert.op = UpdateRequest::kOpInsert;
  insert.statement = kInsertStatement;
  auto ack = client.Update(insert, 2);
  ASSERT_TRUE(ack.ok()) << ack.status();
  EXPECT_EQ(ack->status, WireStatus::kOk);
  EXPECT_EQ(ack->lsn, 1u);
  EXPECT_EQ(ack->durable, 1);
  EXPECT_EQ(QueryAnswerCount(client, 3), 5u);

  UpdateRequest del;
  del.op = UpdateRequest::kOpDelete;
  del.statement = kInsertStatement;
  auto ack2 = client.Update(del, 4);
  ASSERT_TRUE(ack2.ok()) << ack2.status();
  EXPECT_EQ(ack2->status, WireStatus::kOk);
  EXPECT_EQ(ack2->lsn, 2u);
  EXPECT_EQ(QueryAnswerCount(client, 5), 4u);
  EXPECT_EQ(fx.server->stats().updates_ok, 2u);
}

TEST(UpdateServerTest, ReadOnlyServerRejectsUpdates) {
  // No EnableUpdates: the plain in-memory fixture refuses writes with a
  // distinct wire status so clients can tell "read-only" from "broken".
  DataGraph graph = DataGraph::FromTriples(GovTrackFigure1Triples());
  PathIndex index;
  ASSERT_TRUE(index.Build(graph, PathIndexOptions()).ok());
  Thesaurus thesaurus = Thesaurus::BuiltinEnglish();
  SamaEngine engine(&graph, &index, &thesaurus);
  BinaryQueryServer::Options options;
  options.port = 0;
  BinaryQueryServer server(&engine, options);
  ASSERT_TRUE(server.Start().ok());
  BinaryClient client;
  ASSERT_TRUE(client.Connect(server.host(), server.port()).ok());

  UpdateRequest insert;
  insert.statement = kInsertStatement;
  auto ack = client.Update(insert, 1);
  ASSERT_TRUE(ack.ok()) << ack.status();
  EXPECT_EQ(ack->status, WireStatus::kReadOnly);
  server.Stop();
}

TEST(UpdateServerTest, MalformedStatementIsBadRequest) {
  WritableServerFixture fx(FreshDir("badreq"));
  BinaryClient client = fx.Connect();
  UpdateRequest bad;
  bad.statement = "this is not an N-Triples line";
  auto ack = client.Update(bad, 1);
  ASSERT_TRUE(ack.ok()) << ack.status();
  EXPECT_EQ(ack->status, WireStatus::kBadRequest);
  // The connection survives a rejected update.
  EXPECT_EQ(QueryAnswerCount(client, 2), 4u);
}

// The ordering contract: on one connection, QUERY / UPDATE / QUERY
// pipelined back to back must observe 4 → (applied) → 5 answers even
// though queries run on worker threads.
TEST(UpdateServerTest, PipelinedUpdateOrdersAgainstQueries) {
  WritableServerFixture fx(FreshDir("ordering"));
  BinaryClient client = fx.Connect();

  QueryRequest query;
  query.sparql = kMaleSparql;
  query.k = 10;
  UpdateRequest insert;
  insert.statement = kInsertStatement;
  ASSERT_TRUE(client.SendQuery(query, 1).ok());
  ASSERT_TRUE(client.SendUpdate(insert, 2).ok());
  ASSERT_TRUE(client.SendQuery(query, 3).ok());

  auto before = client.ReadFrame();
  ASSERT_TRUE(before.ok()) << before.status();
  ASSERT_EQ(before->type, FrameType::kResult);
  EXPECT_EQ(before->request_id, 1u);
  QueryResultWire before_result;
  ASSERT_TRUE(DecodeQueryResult(before->payload, &before_result));
  EXPECT_EQ(before_result.answers.size(), 4u);

  auto ack = client.ReadFrame();
  ASSERT_TRUE(ack.ok()) << ack.status();
  ASSERT_EQ(ack->type, FrameType::kUpdateResult);
  EXPECT_EQ(ack->request_id, 2u);
  UpdateResultWire ack_result;
  ASSERT_TRUE(DecodeUpdateResult(ack->payload, &ack_result));
  EXPECT_EQ(ack_result.status, WireStatus::kOk);

  auto after = client.ReadFrame();
  ASSERT_TRUE(after.ok()) << after.status();
  ASSERT_EQ(after->type, FrameType::kResult);
  EXPECT_EQ(after->request_id, 3u);
  QueryResultWire after_result;
  ASSERT_TRUE(DecodeQueryResult(after->payload, &after_result));
  EXPECT_EQ(after_result.answers.size(), 5u);
}

// SHUTDOWN_ACK is a durability barrier: a deferred-fsync update (acked
// durable=0) must be on disk once the shutdown is acknowledged, so a
// reopen replays it.
TEST(UpdateServerTest, ShutdownAckImpliesFlushedUpdates) {
  std::string dir = FreshDir("drain");
  {
    WritableServerFixture fx(dir);
    BinaryClient client = fx.Connect();
    UpdateRequest lazy;
    lazy.statement = kInsertStatement;
    lazy.flags = UpdateRequest::kFlagNonDurable;
    auto ack = client.Update(lazy, 1);
    ASSERT_TRUE(ack.ok()) << ack.status();
    EXPECT_EQ(ack->status, WireStatus::kOk);
    EXPECT_EQ(ack->durable, 0) << "a deferred fsync was acked durable";
    ASSERT_TRUE(client.Shutdown(2).ok());
    fx.server->WaitForShutdown();
    fx.server->Stop();
  }
  DataGraph graph = DataGraph::FromTriples(GovTrackFigure1Triples());
  PathIndexOptions po;
  po.dir = dir;
  PathIndex index;
  ASSERT_TRUE(index.Open(&graph, po).ok());
  Thesaurus thesaurus = Thesaurus::BuiltinEnglish();
  SamaEngine engine(&graph, &index, &thesaurus);
  ASSERT_TRUE(engine.EnableUpdates(&graph, &index).ok());
  EXPECT_EQ(engine.last_update_lsn(), 1u)
      << "the acked-but-unsynced update did not survive the drain";
}

// When the pre-ack flush fails, the client gets an ERROR frame instead
// of SHUTDOWN_ACK — durability is indeterminate and silence would lie —
// but the server still drains.
TEST(UpdateServerTest, ShutdownFlushFailureIsReportedNotAcked) {
  std::string dir = FreshDir("drainfail");
  FaultyEnv env;
  UpdateOptions uo;
  uo.env = &env;
  WritableServerFixture fx(dir, uo);
  BinaryClient client = fx.Connect();
  UpdateRequest lazy;
  lazy.statement = kInsertStatement;
  lazy.flags = UpdateRequest::kFlagNonDurable;
  auto ack = client.Update(lazy, 1);
  ASSERT_TRUE(ack.ok()) << ack.status();
  ASSERT_EQ(ack->status, WireStatus::kOk);

  FaultSpec spec;
  spec.fail_after = 0;  // Every fsync fails from here on.
  env.Arm(IoOp::kSync, spec);
  Status shutdown = client.Shutdown(2);
  EXPECT_FALSE(shutdown.ok())
      << "a failed durability flush was acked as clean shutdown";
  fx.server->WaitForShutdown();
  env.Disarm(IoOp::kSync);
  fx.server->Stop();
}

}  // namespace
}  // namespace sama

// Deadline semantics, engine level and server level: an expired
// deadline deterministically yields a truncated-but-well-formed
// answer; a short per-request deadline on a genuinely slow query
// (exhaustive search over LUBM) cuts the search and flags truncation;
// and a deadline that never fires leaves answers byte-identical to a
// no-deadline run (the determinism contract only bends when the clock
// actually runs out).
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>

#include "core/engine.h"
#include "datasets/lubm.h"
#include "datasets/queries.h"
#include "obs/metrics.h"
#include "query/sparql.h"
#include "server/binary_server.h"
#include "server/client.h"
#include "testing/fixtures.h"

namespace sama {
namespace {

using testing_util::GovTrackEnv;

// Fully deterministic truncation: a deadline already in the past when
// the search starts. No subtree runs, the best-so-far (empty) answer
// set returns, and search_truncated reports the cut — the query result
// is well-formed, never an error.
TEST(DeadlineTest, ExpiredDeadlineTruncatesDeterministically) {
  GovTrackEnv env;
  SamaEngine engine = env.engine();
  engine.mutable_options().search.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  QueryStats stats;
  auto answers = engine.Execute(env.Query1(), 10, &stats);
  ASSERT_TRUE(answers.ok()) << answers.status();
  EXPECT_TRUE(stats.search_truncated);
}

TEST(DeadlineTest, EpochDefaultMeansNoDeadline) {
  GovTrackEnv env;
  QueryStats stats;
  auto answers = env.engine().Execute(env.Query1(), 10, &stats);
  ASSERT_TRUE(answers.ok()) << answers.status();
  EXPECT_FALSE(stats.search_truncated);
  EXPECT_FALSE(answers->empty());
}

TEST(DeadlineTest, FarFutureDeadlineLeavesAnswersIdentical) {
  GovTrackEnv env;
  auto baseline = env.engine().Execute(env.Query1(), 10);
  ASSERT_TRUE(baseline.ok());

  SamaEngine engine = env.engine();
  engine.mutable_options().search.deadline =
      std::chrono::steady_clock::now() + std::chrono::hours(1);
  QueryStats stats;
  auto answers = engine.Execute(env.Query1(), 10, &stats);
  ASSERT_TRUE(answers.ok()) << answers.status();
  EXPECT_FALSE(stats.search_truncated);

  // Byte-level comparison through the shared wire encoder.
  std::vector<std::string> vars{"v1", "v2", "v3"};
  EXPECT_EQ(EncodeQueryResult(MakeQueryResultWire(*answers, vars, false)),
            EncodeQueryResult(
                MakeQueryResultWire(*baseline, vars, false)));
}

// Server level: a slow query (exhaustive branch-and-bound over LUBM —
// minutes of search at full budget) with a 5ms request deadline must
// come back promptly as a well-formed, truncated result.
class SlowServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    LubmConfig config;
    config.universities = 1;
    graph_ = new DataGraph(DataGraph::FromTriples(GenerateLubm(config)));
    index_ = new PathIndex();
    PathIndexOptions options;  // In-memory.
    ASSERT_TRUE(index_->Build(*graph_, options).ok());
    thesaurus_ = new Thesaurus(Thesaurus::BuiltinEnglish());
    EngineOptions engine_options;
    // The exhaustive ablation: no pruning and an effectively unbounded
    // expansion budget, so only the deadline can stop the search.
    engine_options.params.prune_search = false;
    engine_options.search.max_expansions = size_t{1} << 40;
    engine_ = new SamaEngine(graph_, index_, thesaurus_, engine_options);
  }

  static void TearDownTestSuite() {
    delete engine_;
    engine_ = nullptr;
    delete thesaurus_;
    thesaurus_ = nullptr;
    delete index_;
    index_ = nullptr;
    delete graph_;
    graph_ = nullptr;
  }

  static DataGraph* graph_;
  static PathIndex* index_;
  static Thesaurus* thesaurus_;
  static SamaEngine* engine_;
};

DataGraph* SlowServerTest::graph_ = nullptr;
PathIndex* SlowServerTest::index_ = nullptr;
Thesaurus* SlowServerTest::thesaurus_ = nullptr;
SamaEngine* SlowServerTest::engine_ = nullptr;

TEST_F(SlowServerTest, FiveMillisecondDeadlineTruncatesSlowQuery) {
  MetricsRegistry registry;
  BinaryQueryServer::Options options;
  options.registry = &registry;
  BinaryQueryServer server(engine_, options);
  ASSERT_TRUE(server.Start().ok());

  BinaryClient client;
  ASSERT_TRUE(client.Connect(server.host(), server.port()).ok());
  // Q10, the heaviest exact query group: 11+ query paths, an
  // astronomically large exhaustive combination space.
  QueryRequest request;
  request.sparql = MakeLubmQueries()[9].sparql;
  request.k = 5;
  request.deadline_ms = 5;
  auto result = client.Query(request);
  ASSERT_TRUE(result.ok()) << result.status();
  // A deadline cut is a RESULT with the truncated flag, not an error.
  EXPECT_EQ(result->status, WireStatus::kOk);
  EXPECT_TRUE(result->truncated);

  EXPECT_EQ(server.stats().queries_truncated, 1u);
  EXPECT_EQ(server.stats().errors, 0u);
  server.Stop();
}

TEST_F(SlowServerTest, ServerDefaultDeadlineAppliesWhenRequestHasNone) {
  MetricsRegistry registry;
  BinaryQueryServer::Options options;
  options.registry = &registry;
  options.default_deadline_ms = 5;
  BinaryQueryServer server(engine_, options);
  ASSERT_TRUE(server.Start().ok());

  BinaryClient client;
  ASSERT_TRUE(client.Connect(server.host(), server.port()).ok());
  QueryRequest request;
  request.sparql = MakeLubmQueries()[9].sparql;
  request.k = 5;
  request.deadline_ms = 0;  // Falls back to the server default.
  auto result = client.Query(request);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->status, WireStatus::kOk);
  EXPECT_TRUE(result->truncated);
  server.Stop();
}

}  // namespace
}  // namespace sama

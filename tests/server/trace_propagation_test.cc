// End-to-end distributed tracing (DESIGN.md §15): a client-supplied
// trace context rides the v2 header extension, the server adopts it,
// and the one QueryTrace registered in the server's TraceStore ends up
// holding the whole story — request spans, engine execution, per-shard
// searches with shard attributes, and WAL append/fsync/apply for
// updates — across MULTIPLE requests carrying the same trace id.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "datasets/govtrack.h"
#include "index/path_index.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_context.h"
#include "server/binary_server.h"
#include "server/client.h"
#include "shard/sharded_engine.h"
#include "shard/sharded_index.h"
#include "text/thesaurus.h"

namespace sama {
namespace {

constexpr char kMaleSparql[] =
    "PREFIX gov: <http://gov.example.org/>\n"
    "SELECT ?p WHERE { ?p gov:gender \"Male\" }";

std::string FreshDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/trace_prop_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::vector<std::string> SpanNames(const QueryTrace& trace) {
  std::vector<std::string> names;
  for (const TraceSpan& s : trace.Snapshot()) names.push_back(s.name);
  return names;
}

bool HasSpan(const std::vector<std::string>& names, const std::string& want) {
  return std::find(names.begin(), names.end(), want) != names.end();
}

TEST(TracePropagationTest, UpdateAndQueryStitchIntoOneTree) {
  std::string dir = FreshDir("single");
  DataGraph graph = DataGraph::FromTriples(GovTrackFigure1Triples());
  Thesaurus thesaurus = Thesaurus::BuiltinEnglish();
  PathIndex index;
  PathIndexOptions po;
  po.dir = dir;
  ASSERT_TRUE(index.Build(graph, po).ok());
  SamaEngine engine(&graph, &index, &thesaurus);
  ASSERT_TRUE(engine.EnableUpdates(&graph, &index, {}).ok());

  MetricsRegistry registry;
  BinaryQueryServer::Options options;
  options.port = 0;
  options.registry = &registry;
  BinaryQueryServer server(&engine, options);
  ASSERT_TRUE(server.Start().ok());

  TraceContext ctx;
  ASSERT_TRUE(TraceContext::ParseTraceId("deadbeef", &ctx));
  BinaryClient client;
  client.set_trace(ctx);
  ASSERT_TRUE(client.Connect(server.host(), server.port()).ok());

  UpdateRequest update;
  update.op = UpdateRequest::kOpInsert;
  update.statement =
      "<http://gov.example.org/NewSenator> "
      "<http://gov.example.org/gender> \"Male\" .";
  auto applied = client.Update(update, 1);
  ASSERT_TRUE(applied.ok()) << applied.status();
  ASSERT_EQ(applied->status, WireStatus::kOk);

  QueryRequest query;
  query.sparql = kMaleSparql;
  query.k = 10;
  auto result = client.Query(query, 2);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->status, WireStatus::kOk);

  // One registered trace, addressable by the propagated id.
  EXPECT_EQ(server.trace_store().size(), 1u);
  std::shared_ptr<QueryTrace> trace =
      server.trace_store().Find(ctx.TraceIdHex());
  ASSERT_NE(trace, nullptr);

  std::vector<TraceSpan> spans = trace->Snapshot();
  std::vector<std::string> names = SpanNames(*trace);
  // Two request roots (update then query), both parented at the
  // client's span (0 here).
  size_t roots = 0;
  for (const TraceSpan& s : spans) {
    if (s.name == "request" && s.parent == 0) ++roots;
  }
  EXPECT_EQ(roots, 2u);
  // The WAL's contribution.
  EXPECT_TRUE(HasSpan(names, "wal.append"));
  EXPECT_TRUE(HasSpan(names, "wal.fsync"));
  EXPECT_TRUE(HasSpan(names, "wal.apply"));
  // The query's contribution.
  EXPECT_TRUE(HasSpan(names, "execute"));
  EXPECT_TRUE(HasSpan(names, "query"));
  EXPECT_TRUE(HasSpan(names, "search"));
  // Every non-root span is parented inside the tree.
  for (const TraceSpan& s : spans) {
    if (s.parent == 0) continue;
    bool found = false;
    for (const TraceSpan& p : spans) found = found || p.id == s.parent;
    EXPECT_TRUE(found) << s.name << " has dangling parent " << s.parent;
  }
  server.Stop();
}

TEST(TracePropagationTest, UntracedRequestsLeaveTheStoreEmpty) {
  DataGraph graph = DataGraph::FromTriples(GovTrackFigure1Triples());
  Thesaurus thesaurus = Thesaurus::BuiltinEnglish();
  PathIndex index;
  ASSERT_TRUE(index.Build(graph, {}).ok());
  SamaEngine engine(&graph, &index, &thesaurus);
  MetricsRegistry registry;
  BinaryQueryServer::Options options;
  options.port = 0;
  options.registry = &registry;
  BinaryQueryServer server(&engine, options);
  ASSERT_TRUE(server.Start().ok());
  BinaryClient client;
  ASSERT_TRUE(client.Connect(server.host(), server.port()).ok());
  QueryRequest query;
  query.sparql = kMaleSparql;
  auto result = client.Query(query, 1);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->status, WireStatus::kOk);
  EXPECT_EQ(server.trace_store().size(), 0u);
  server.Stop();
}

TEST(TracePropagationTest, ShardedServeTracesPerShardAndRefusesUpdates) {
  std::string dir = FreshDir("sharded");
  DataGraph graph = DataGraph::FromTriples(GovTrackFigure1Triples());
  Thesaurus thesaurus = Thesaurus::BuiltinEnglish();
  ShardedIndexOptions so;
  so.num_shards = 4;
  ShardBuildReport report;
  ASSERT_TRUE(BuildShardedIndex(graph, dir, so, &report).ok());
  ShardedIndex sharded;
  ASSERT_TRUE(sharded.Open(&graph, dir, /*strict=*/false).ok());
  ShardedEngine engine(&graph, &sharded, &thesaurus, {});

  MetricsRegistry registry;
  BinaryQueryServer::Options options;
  options.port = 0;
  options.registry = &registry;
  BinaryQueryServer server(&engine, options);
  ASSERT_TRUE(server.Start().ok());

  TraceContext ctx;
  ASSERT_TRUE(TraceContext::ParseTraceId("cafef00d", &ctx));
  BinaryClient client;
  client.set_trace(ctx);
  ASSERT_TRUE(client.Connect(server.host(), server.port()).ok());

  QueryRequest query;
  query.sparql = kMaleSparql;
  query.k = 10;
  auto result = client.Query(query, 1);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->status, WireStatus::kOk);
  EXPECT_FALSE(result->answers.empty());

  std::shared_ptr<QueryTrace> trace =
      server.trace_store().Find(ctx.TraceIdHex());
  ASSERT_NE(trace, nullptr);
  std::vector<TraceSpan> spans = trace->Snapshot();
  std::vector<std::string> names = SpanNames(*trace);
  EXPECT_TRUE(HasSpan(names, "request"));
  EXPECT_TRUE(HasSpan(names, "scatter"));
  EXPECT_TRUE(HasSpan(names, "merge"));
  // One search span per shard, each stamped with its shard id.
  size_t shard_spans = 0;
  for (const TraceSpan& s : spans) {
    if (s.name.rfind("shard-", 0) != 0 ||
        s.name.find(".search") == std::string::npos) {
      continue;
    }
    ++shard_spans;
    bool has_shard_attr = false;
    for (const auto& kv : s.attrs) {
      has_shard_attr = has_shard_attr || kv.first == "shard";
    }
    EXPECT_TRUE(has_shard_attr) << s.name;
  }
  EXPECT_EQ(shard_spans, 4u);

  // Sharded serving is read-only: UPDATE answers kReadOnly without
  // touching the connection.
  UpdateRequest update;
  update.op = UpdateRequest::kOpInsert;
  update.statement =
      "<http://gov.example.org/X> <http://gov.example.org/gender> "
      "\"Male\" .";
  auto applied = client.Update(update, 2);
  ASSERT_TRUE(applied.ok()) << applied.status();
  EXPECT_EQ(applied->status, WireStatus::kReadOnly);
  // The connection still works.
  auto again = client.Query(query, 3);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->status, WireStatus::kOk);
  server.Stop();
}

}  // namespace
}  // namespace sama

#include "rdf/ntriples.h"

#include <gtest/gtest.h>

namespace sama {
namespace {

TEST(NTriplesTest, ParsesSimpleTriple) {
  auto t = NTriplesParser::ParseLine(
      "<http://a> <http://p> <http://b> .");
  ASSERT_TRUE(t.ok()) << t.status();
  EXPECT_EQ(t->subject, Term::Iri("http://a"));
  EXPECT_EQ(t->predicate, Term::Iri("http://p"));
  EXPECT_EQ(t->object, Term::Iri("http://b"));
}

TEST(NTriplesTest, ParsesLiteralObject) {
  auto t = NTriplesParser::ParseLine("<http://a> <http://p> \"hi\" .");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->object, Term::Literal("hi"));
}

TEST(NTriplesTest, ParsesLangAndDatatype) {
  auto lang =
      NTriplesParser::ParseLine("<http://a> <http://p> \"hi\"@en-GB .");
  ASSERT_TRUE(lang.ok());
  EXPECT_EQ(lang->object, Term::LangLiteral("hi", "en-GB"));

  auto typed = NTriplesParser::ParseLine(
      "<http://a> <http://p> \"5\"^^<http://int> .");
  ASSERT_TRUE(typed.ok());
  EXPECT_EQ(typed->object, Term::TypedLiteral("5", "http://int"));
}

TEST(NTriplesTest, ParsesBlankNodes) {
  auto t = NTriplesParser::ParseLine("_:b1 <http://p> _:b2 .");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->subject, Term::Blank("b1"));
  EXPECT_EQ(t->object, Term::Blank("b2"));
}

TEST(NTriplesTest, DecodesEscapes) {
  auto t = NTriplesParser::ParseLine(
      "<http://a> <http://p> \"line\\nbreak \\\"q\\\" \\u0041\" .");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->object.value(), "line\nbreak \"q\" A");
}

TEST(NTriplesTest, SkipsCommentsAndBlanks) {
  EXPECT_EQ(NTriplesParser::ParseLine("# comment").status().code(),
            Status::Code::kNotFound);
  EXPECT_EQ(NTriplesParser::ParseLine("   ").status().code(),
            Status::Code::kNotFound);
}

TEST(NTriplesTest, RejectsMalformedLines) {
  EXPECT_FALSE(NTriplesParser::ParseLine("<a> <p> <b>").ok());  // No dot.
  EXPECT_FALSE(NTriplesParser::ParseLine("<a> <p> .").ok());
  EXPECT_FALSE(
      NTriplesParser::ParseLine("\"lit\" <http://p> <http://b> .").ok());
  EXPECT_FALSE(
      NTriplesParser::ParseLine("<http://a> \"p\" <http://b> .").ok());
  EXPECT_FALSE(
      NTriplesParser::ParseLine("<http://a> <http://p> <b> . junk").ok());
  EXPECT_FALSE(NTriplesParser::ParseLine("<unterminated").ok());
}

TEST(NTriplesTest, DocumentReportsLineNumbers) {
  auto result = NTriplesParser::ParseDocument(
      "<http://a> <http://p> <http://b> .\nbroken line\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 2"), std::string::npos);
}

TEST(NTriplesTest, DocumentRoundTrip) {
  std::vector<Triple> triples = {
      {Term::Iri("http://a"), Term::Iri("http://p"), Term::Literal("x y")},
      {Term::Blank("z"), Term::Iri("http://q"),
       Term::LangLiteral("täxt", "de")},
  };
  std::string text = WriteNTriples(triples);
  auto parsed = NTriplesParser::ParseDocument(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0], triples[0]);
  EXPECT_EQ((*parsed)[1], triples[1]);
}

TEST(NTriplesTest, DocumentSkipsInterleavedComments) {
  auto parsed = NTriplesParser::ParseDocument(
      "# header\n"
      "<http://a> <http://p> <http://b> .\n"
      "\n"
      "# middle\n"
      "<http://c> <http://p> \"v\" .\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->size(), 2u);
}

}  // namespace
}  // namespace sama

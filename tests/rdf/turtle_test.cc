#include "rdf/turtle.h"

#include <gtest/gtest.h>

namespace sama {
namespace {

TEST(TurtleTest, PrefixedNames) {
  auto r = ParseTurtle(
      "@prefix ex: <http://ex.org/> .\n"
      "ex:a ex:p ex:b .\n");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ((*r)[0].subject, Term::Iri("http://ex.org/a"));
  EXPECT_EQ((*r)[0].predicate, Term::Iri("http://ex.org/p"));
  EXPECT_EQ((*r)[0].object, Term::Iri("http://ex.org/b"));
}

TEST(TurtleTest, AKeywordIsRdfType) {
  auto r = ParseTurtle(
      "@prefix ex: <http://ex.org/> .\n"
      "ex:a a ex:Class .\n");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ((*r)[0].predicate,
            Term::Iri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type"));
}

TEST(TurtleTest, PredicateAndObjectLists) {
  auto r = ParseTurtle(
      "@prefix ex: <http://ex.org/> .\n"
      "ex:a ex:p ex:b , ex:c ;\n"
      "     ex:q \"v\" .\n");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->size(), 3u);
  EXPECT_EQ((*r)[0].object, Term::Iri("http://ex.org/b"));
  EXPECT_EQ((*r)[1].object, Term::Iri("http://ex.org/c"));
  EXPECT_EQ((*r)[2].predicate, Term::Iri("http://ex.org/q"));
  EXPECT_EQ((*r)[2].object, Term::Literal("v"));
}

TEST(TurtleTest, NumericAndBooleanLiterals) {
  auto r = ParseTurtle(
      "@prefix ex: <http://ex.org/> .\n"
      "ex:a ex:count 42 ; ex:score 3.14 ; ex:flag true .\n");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->size(), 3u);
  EXPECT_EQ((*r)[0].object.value(), "42");
  EXPECT_EQ((*r)[0].object.datatype(),
            "http://www.w3.org/2001/XMLSchema#integer");
  EXPECT_EQ((*r)[1].object.value(), "3.14");
  EXPECT_EQ((*r)[1].object.datatype(),
            "http://www.w3.org/2001/XMLSchema#decimal");
  EXPECT_EQ((*r)[2].object.value(), "true");
}

TEST(TurtleTest, LanguageTagsAndDatatypes) {
  auto r = ParseTurtle(
      "@prefix ex: <http://ex.org/> .\n"
      "ex:a ex:label \"hallo\"@de .\n"
      "ex:a ex:len \"5\"^^ex:int .\n");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ((*r)[0].object, Term::LangLiteral("hallo", "de"));
  EXPECT_EQ((*r)[1].object,
            Term::TypedLiteral("5", "http://ex.org/int"));
}

TEST(TurtleTest, BlankNodeLabels) {
  auto r = ParseTurtle(
      "@prefix ex: <http://ex.org/> .\n"
      "_:x ex:p _:y .\n");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ((*r)[0].subject, Term::Blank("x"));
  EXPECT_EQ((*r)[0].object, Term::Blank("y"));
}

TEST(TurtleTest, CommentsIgnored) {
  auto r = ParseTurtle(
      "# top comment\n"
      "@prefix ex: <http://ex.org/> . # trailing\n"
      "ex:a ex:p ex:b . # done\n");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->size(), 1u);
}

TEST(TurtleTest, UndeclaredPrefixFails) {
  auto r = ParseTurtle("nope:a nope:p nope:b .\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("undeclared prefix"),
            std::string::npos);
}

TEST(TurtleTest, UnsupportedConstructsReportError) {
  auto r = ParseTurtle(
      "@prefix ex: <http://ex.org/> .\n"
      "ex:a ex:p [ ex:q ex:b ] .\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("unsupported"), std::string::npos);
}

TEST(TurtleTest, ErrorsCarryLineNumbers) {
  auto r = ParseTurtle(
      "@prefix ex: <http://ex.org/> .\n"
      "ex:a ex:p\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line"), std::string::npos);
}

}  // namespace
}  // namespace sama

// Dictionary RCU read-path torture (DESIGN.md §13): N reader threads
// Find/term() lock-free while a writer keeps interning — directly, and
// through the engine's durable live-update path (PR 7's ApplyUpdate),
// which interns every new term of an inserted triple. The contract
// under race: a reader sees either "absent" (the intern has not been
// published yet) or the correct final id — never a lost entry, a torn
// term, a stale-forever miss, or a read of freed index-table memory
// (the TSan/ASan CI tiers check the latter).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "datasets/govtrack.h"
#include "index/path_index.h"
#include "rdf/dictionary.h"
#include "text/thesaurus.h"

namespace sama {
namespace {

uint64_t TortureSeed() {
  const char* s = std::getenv("SAMA_TORTURE_SEED");
  return s == nullptr ? 1234u : static_cast<uint64_t>(std::atoll(s));
}

uint64_t NextRand(uint64_t* state) {
  *state = *state * 6364136223846793005ULL + 1442695040888963407ULL;
  return *state >> 33;
}

Term Gov(const std::string& local) {
  return Term::Iri("http://gov.example.org/" + local);
}

TEST(DictionaryTortureTest, ConcurrentFindsSeePublishedInternsExactly) {
  // A private manager keeps this test's epoch traffic (and the
  // reclamation assertions below) independent of the global manager.
  EpochManager epochs;
  TermDictionary dict(&epochs);
  const uint64_t seed = TortureSeed();
  // Enough terms to force several index-table growths (1024 initial
  // slots, 75% load): each growth retires a table under the readers.
  const size_t kTerms = 20000;
  const int kReaders = 4;

  std::atomic<size_t> published{0};
  std::atomic<uint64_t> wrong_ids{0};
  std::atomic<uint64_t> torn_terms{0};
  std::atomic<uint64_t> ghost_hits{0};
  std::atomic<bool> stop{false};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      uint64_t rng = seed + static_cast<uint64_t>(r) * 7919;
      while (!stop.load(std::memory_order_acquire)) {
        size_t n = published.load(std::memory_order_acquire);
        if (n == 0) continue;
        size_t i = NextRand(&rng) % n;
        Term t = Gov("torture-" + std::to_string(i));
        // Published before we looked: a miss would be a lost (or
        // stale-forever) read, a different id a corrupted index.
        TermId id = dict.Find(t);
        if (id != static_cast<TermId>(i)) {
          wrong_ids.fetch_add(1);
        } else if (!(dict.term(id) == t)) {
          torn_terms.fetch_add(1);
        }
        // Never interned by anyone: must always miss.
        Term ghost = Gov("ghost-" + std::to_string(NextRand(&rng)));
        if (dict.Find(ghost) != kInvalidTermId) ghost_hits.fetch_add(1);
      }
    });
  }

  for (size_t i = 0; i < kTerms; ++i) {
    TermId id = dict.Intern(Gov("torture-" + std::to_string(i)));
    ASSERT_EQ(id, static_cast<TermId>(i));  // Single writer: dense ids.
    published.store(i + 1, std::memory_order_release);
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_EQ(wrong_ids.load(), 0u);
  EXPECT_EQ(torn_terms.load(), 0u);
  EXPECT_EQ(ghost_hits.load(), 0u);
  // The table grew several times under the readers and reclamation ran.
  EXPECT_GT(epochs.stats().retired, 0u);

  // Quiescent sweep: nothing is lost and every id round-trips.
  EXPECT_EQ(dict.size(), kTerms);
  for (size_t i = 0; i < kTerms; ++i) {
    Term t = Gov("torture-" + std::to_string(i));
    ASSERT_EQ(dict.Find(t), static_cast<TermId>(i));
    ASSERT_TRUE(dict.term(static_cast<TermId>(i)) == t);
  }
}

TEST(DictionaryTortureTest, LiveUpdateWriterNeverBreaksConcurrentFinds) {
  // The PR 7 update path: ApplyUpdate interns the inserted triple's
  // terms into the SHARED dictionary while readers Find concurrently.
  std::string dir =
      testing::TempDir() + "/dict_torture_updates";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  DataGraph graph = DataGraph::FromTriples(GovTrackFigure1Triples());
  PathIndexOptions options;
  options.dir = dir;
  PathIndex index;
  ASSERT_TRUE(index.Build(graph, options).ok());
  Thesaurus thesaurus = Thesaurus::BuiltinEnglish();
  SamaEngine engine(&graph, &index, &thesaurus);
  UpdateOptions uo;
  uo.checkpoint_every = 0;
  ASSERT_TRUE(engine.EnableUpdates(&graph, &index, uo).ok());

  const uint64_t seed = TortureSeed();
  const size_t kInserts = 300;
  const int kReaders = 4;
  const TermDictionary& dict = graph.dict();

  std::atomic<size_t> published{0};
  std::atomic<uint64_t> violations{0};
  std::atomic<bool> stop{false};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      uint64_t rng = seed + static_cast<uint64_t>(r) * 104729;
      while (!stop.load(std::memory_order_acquire)) {
        size_t n = published.load(std::memory_order_acquire);
        if (n == 0) continue;
        size_t i = NextRand(&rng) % n;
        // The inserted subject was durably applied before `published`
        // advanced past it: Find must succeed and round-trip.
        Term t = Gov("LiveSenator" + std::to_string(i));
        TermId id = dict.Find(t);
        if (id == kInvalidTermId || !(dict.term(id) == t)) {
          violations.fetch_add(1);
        }
      }
    });
  }

  for (size_t i = 0; i < kInserts; ++i) {
    Triple triple{Gov("LiveSenator" + std::to_string(i)), Gov("gender"),
                  Term::Literal(i % 2 == 0 ? "Male" : "Female")};
    auto lsn = engine.InsertTriple(triple);
    ASSERT_TRUE(lsn.ok()) << lsn.status();
    published.store(i + 1, std::memory_order_release);
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_EQ(violations.load(), 0u);
  // Quiescent sweep: every inserted subject resolves.
  for (size_t i = 0; i < kInserts; ++i) {
    Term t = Gov("LiveSenator" + std::to_string(i));
    EXPECT_NE(dict.Find(t), kInvalidTermId);
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace sama

#include <gtest/gtest.h>

#include "datasets/govtrack.h"
#include "rdf/ntriples.h"
#include "rdf/turtle.h"

namespace sama {
namespace {

TEST(TurtleWriterTest, RoundTripsSimpleTriples) {
  std::vector<Triple> triples = {
      {Term::Iri("http://ex.org/a"), Term::Iri("http://ex.org/p"),
       Term::Iri("http://ex.org/b")},
      {Term::Iri("http://ex.org/a"), Term::Iri("http://ex.org/q"),
       Term::Literal("hello world")},
      {Term::Blank("x"), Term::Iri("http://ex.org/p"),
       Term::LangLiteral("hallo", "de")},
  };
  std::string text = WriteTurtle(triples);
  auto parsed = ParseTurtle(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << text;
  ASSERT_EQ(parsed->size(), triples.size());
  for (size_t i = 0; i < triples.size(); ++i) {
    EXPECT_EQ((*parsed)[i], triples[i]) << i;
  }
}

TEST(TurtleWriterTest, UsesPrefixes) {
  std::vector<Triple> triples = {
      {Term::Iri("http://ex.org/vocab#a"),
       Term::Iri("http://ex.org/vocab#p"),
       Term::Iri("http://ex.org/vocab#b")},
  };
  std::string text = WriteTurtle(triples);
  EXPECT_NE(text.find("@prefix"), std::string::npos) << text;
  EXPECT_NE(text.find("ns0:a"), std::string::npos) << text;
}

TEST(TurtleWriterTest, FoldsSameSubject) {
  std::vector<Triple> triples = {
      {Term::Iri("http://e/s"), Term::Iri("http://e/p1"),
       Term::Literal("x")},
      {Term::Iri("http://e/s"), Term::Iri("http://e/p2"),
       Term::Literal("y")},
  };
  std::string text = WriteTurtle(triples);
  // One subject occurrence, joined by ';'.
  EXPECT_NE(text.find(";"), std::string::npos) << text;
  size_t first = text.find("ns0:s");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find("ns0:s", first + 1), std::string::npos) << text;
  auto parsed = ParseTurtle(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->size(), 2u);
}

TEST(TurtleWriterTest, EscapesLiterals) {
  std::vector<Triple> triples = {
      {Term::Iri("http://e/s"), Term::Iri("http://e/p"),
       Term::Literal("say \"hi\"\nnew line")},
  };
  std::string text = WriteTurtle(triples);
  auto parsed = ParseTurtle(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << text;
  EXPECT_EQ((*parsed)[0].object.value(), "say \"hi\"\nnew line");
}

TEST(TurtleWriterTest, GovTrackRoundTrip) {
  std::vector<Triple> triples = GovTrackFigure1Triples();
  std::string text = WriteTurtle(triples);
  auto parsed = ParseTurtle(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->size(), triples.size());
  for (size_t i = 0; i < triples.size(); ++i) {
    EXPECT_EQ((*parsed)[i], triples[i]) << i;
  }
}

TEST(TurtleWriterTest, EmptyInput) {
  EXPECT_EQ(WriteTurtle({}), "");
}

TEST(NQuadsTest, GraphLabelAcceptedAndDiscarded) {
  auto t = NTriplesParser::ParseLine(
      "<http://a> <http://p> <http://b> <http://graphs/g1> .");
  ASSERT_TRUE(t.ok()) << t.status();
  EXPECT_EQ(t->subject, Term::Iri("http://a"));
  EXPECT_EQ(t->object, Term::Iri("http://b"));
  auto blank_graph = NTriplesParser::ParseLine(
      "<http://a> <http://p> \"lit\" _:g .");
  ASSERT_TRUE(blank_graph.ok()) << blank_graph.status();
  EXPECT_EQ(blank_graph->object, Term::Literal("lit"));
}

TEST(NQuadsTest, MalformedGraphLabelRejected) {
  EXPECT_FALSE(NTriplesParser::ParseLine(
                   "<http://a> <http://p> <http://b> <unterminated .")
                   .ok());
}

}  // namespace
}  // namespace sama

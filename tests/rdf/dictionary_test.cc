#include "rdf/dictionary.h"

#include <gtest/gtest.h>

namespace sama {
namespace {

TEST(DictionaryTest, InternAssignsDenseIds) {
  TermDictionary dict;
  TermId a = dict.Intern(Term::Iri("a"));
  TermId b = dict.Intern(Term::Iri("b"));
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(dict.size(), 2u);
}

TEST(DictionaryTest, InternIsIdempotent) {
  TermDictionary dict;
  TermId a1 = dict.Intern(Term::Literal("x"));
  TermId a2 = dict.Intern(Term::Literal("x"));
  EXPECT_EQ(a1, a2);
  EXPECT_EQ(dict.size(), 1u);
}

TEST(DictionaryTest, RoundTrip) {
  TermDictionary dict;
  Term original = Term::LangLiteral("hello", "en");
  TermId id = dict.Intern(original);
  EXPECT_EQ(dict.term(id), original);
}

TEST(DictionaryTest, FindAbsentReturnsInvalid) {
  TermDictionary dict;
  dict.Intern(Term::Iri("present"));
  EXPECT_EQ(dict.Find(Term::Iri("absent")), kInvalidTermId);
  EXPECT_NE(dict.Find(Term::Iri("present")), kInvalidTermId);
}

TEST(DictionaryTest, KindsDoNotCollide) {
  TermDictionary dict;
  TermId iri = dict.Intern(Term::Iri("x"));
  TermId lit = dict.Intern(Term::Literal("x"));
  TermId var = dict.Intern(Term::Variable("x"));
  EXPECT_NE(iri, lit);
  EXPECT_NE(lit, var);
  EXPECT_EQ(dict.size(), 3u);
}

TEST(DictionaryTest, ManyTermsStayStable) {
  TermDictionary dict;
  std::vector<TermId> ids;
  for (int i = 0; i < 5000; ++i) {
    ids.push_back(dict.Intern(Term::Iri("e" + std::to_string(i))));
  }
  for (int i = 0; i < 5000; ++i) {
    EXPECT_EQ(dict.term(ids[i]).value(), "e" + std::to_string(i));
  }
  EXPECT_GT(dict.MemoryBytes(), 5000u * 4);
}

}  // namespace
}  // namespace sama

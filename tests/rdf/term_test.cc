#include "rdf/term.h"

#include <gtest/gtest.h>

namespace sama {
namespace {

TEST(TermTest, Kinds) {
  EXPECT_TRUE(Term::Iri("http://x").is_iri());
  EXPECT_TRUE(Term::Literal("v").is_literal());
  EXPECT_TRUE(Term::Blank("b1").is_blank());
  EXPECT_TRUE(Term::Variable("v1").is_variable());
  EXPECT_TRUE(Term::Iri("http://x").is_constant());
  EXPECT_FALSE(Term::Variable("v1").is_constant());
}

TEST(TermTest, ToStringSyntax) {
  EXPECT_EQ(Term::Iri("http://x/y").ToString(), "<http://x/y>");
  EXPECT_EQ(Term::Literal("hi").ToString(), "\"hi\"");
  EXPECT_EQ(Term::LangLiteral("hi", "en").ToString(), "\"hi\"@en");
  EXPECT_EQ(Term::TypedLiteral("5", "http://t").ToString(),
            "\"5\"^^<http://t>");
  EXPECT_EQ(Term::Blank("b").ToString(), "_:b");
  EXPECT_EQ(Term::Variable("x").ToString(), "?x");
}

TEST(TermTest, ToStringEscapesLiterals) {
  EXPECT_EQ(Term::Literal("a\"b\\c\nd").ToString(),
            "\"a\\\"b\\\\c\\nd\"");
}

TEST(TermTest, DisplayLabelUsesFragmentOrLastSegment) {
  EXPECT_EQ(Term::Iri("http://ex.org/vocab#Professor").DisplayLabel(),
            "Professor");
  EXPECT_EQ(Term::Iri("http://ex.org/people/CarlaBunes").DisplayLabel(),
            "CarlaBunes");
  EXPECT_EQ(Term::Iri("urn:opaque").DisplayLabel(), "urn:opaque");
  EXPECT_EQ(Term::Literal("Health Care").DisplayLabel(), "Health Care");
  EXPECT_EQ(Term::Variable("v2").DisplayLabel(), "?v2");
}

TEST(TermTest, EqualityDistinguishesKindAndTags) {
  EXPECT_EQ(Term::Iri("x"), Term::Iri("x"));
  EXPECT_NE(Term::Iri("x"), Term::Literal("x"));
  EXPECT_NE(Term::Literal("x"), Term::LangLiteral("x", "en"));
  EXPECT_NE(Term::LangLiteral("x", "en"), Term::LangLiteral("x", "de"));
  EXPECT_NE(Term::TypedLiteral("1", "int"), Term::TypedLiteral("1", "dec"));
}

TEST(TermTest, HashConsistentWithEquality) {
  EXPECT_EQ(Term::Iri("x").Hash(), Term::Iri("x").Hash());
  EXPECT_NE(Term::Iri("x").Hash(), Term::Literal("x").Hash());
  EXPECT_NE(Term::LangLiteral("x", "en").Hash(),
            Term::LangLiteral("x", "de").Hash());
}

TEST(TermTest, OrderingIsTotal) {
  Term a = Term::Iri("a");
  Term b = Term::Iri("b");
  EXPECT_TRUE(a < b);
  EXPECT_FALSE(b < a);
  EXPECT_FALSE(a < a);
}

}  // namespace
}  // namespace sama

#include "query/transformation.h"

#include <gtest/gtest.h>

namespace sama {
namespace {

TEST(SubstitutionTest, BindAndLookup) {
  Substitution phi;
  EXPECT_TRUE(phi.Bind("v1", Term::Iri("a")));
  ASSERT_NE(phi.Lookup("v1"), nullptr);
  EXPECT_EQ(*phi.Lookup("v1"), Term::Iri("a"));
  EXPECT_EQ(phi.Lookup("v2"), nullptr);
}

TEST(SubstitutionTest, RebindSameValueOk) {
  Substitution phi;
  EXPECT_TRUE(phi.Bind("v", Term::Iri("a")));
  EXPECT_TRUE(phi.Bind("v", Term::Iri("a")));
  EXPECT_FALSE(phi.Bind("v", Term::Iri("b")));  // Conflict.
  EXPECT_EQ(*phi.Lookup("v"), Term::Iri("a"));  // First wins.
}

TEST(SubstitutionTest, Compatibility) {
  Substitution a, b, c;
  a.Bind("x", Term::Iri("1"));
  a.Bind("y", Term::Iri("2"));
  b.Bind("y", Term::Iri("2"));
  b.Bind("z", Term::Iri("3"));
  c.Bind("y", Term::Iri("9"));
  EXPECT_TRUE(a.CompatibleWith(b));
  EXPECT_TRUE(b.CompatibleWith(a));
  EXPECT_FALSE(a.CompatibleWith(c));
  EXPECT_TRUE(Substitution().CompatibleWith(a));  // Empty compatible.
}

TEST(SubstitutionTest, Merge) {
  Substitution a, b;
  a.Bind("x", Term::Iri("1"));
  b.Bind("y", Term::Iri("2"));
  EXPECT_TRUE(a.Merge(b));
  EXPECT_EQ(a.size(), 2u);
  Substitution conflict;
  conflict.Bind("x", Term::Iri("other"));
  EXPECT_FALSE(a.Merge(conflict));
}

TEST(TransformationTest, CostIsWeightedSum) {
  // The §4.3 example: inserting aTo-B1432 into q2 costs b + d = 1.5
  // with the paper's weights.
  Transformation tau;
  tau.Add(BasicOp::kNodeInsert);
  tau.Add(BasicOp::kEdgeInsert);
  OpWeights w;  // Paper defaults a=1, b=0.5, c=2, d=1.
  EXPECT_DOUBLE_EQ(tau.Cost(w), 1.5);
}

TEST(TransformationTest, RelabelingsAreFree) {
  Transformation tau;
  tau.Add(BasicOp::kNodeRelabel);
  tau.Add(BasicOp::kEdgeRelabel);
  EXPECT_DOUBLE_EQ(tau.Cost(OpWeights()), 0.0);
}

TEST(TransformationTest, EmptyTransformationIsExact) {
  Transformation tau;
  EXPECT_TRUE(tau.empty());
  EXPECT_DOUBLE_EQ(tau.Cost(OpWeights()), 0.0);
}

TEST(TransformationTest, MultiplyByLengthVariant) {
  Transformation tau;
  tau.Add(BasicOp::kNodeDelete);  // a = 1.
  tau.Add(BasicOp::kEdgeDelete);  // c = 2.
  OpWeights w;
  EXPECT_DOUBLE_EQ(tau.Cost(w), 3.0);
  // The paper's literal z·Σω formula: z = 2 operations.
  EXPECT_DOUBLE_EQ(tau.Cost(w, /*multiply_by_length=*/true), 6.0);
}

TEST(TransformationTest, CountsPerKind) {
  Transformation tau;
  tau.Add(BasicOp::kNodeInsert);
  tau.Add(BasicOp::kNodeInsert);
  tau.Add(BasicOp::kEdgeDelete);
  EXPECT_EQ(tau.Count(BasicOp::kNodeInsert), 2u);
  EXPECT_EQ(tau.Count(BasicOp::kEdgeDelete), 1u);
  EXPECT_EQ(tau.Count(BasicOp::kNodeDelete), 0u);
}

TEST(OpWeightsTest, PaperDefaults) {
  OpWeights w;
  EXPECT_DOUBLE_EQ(w.Of(BasicOp::kNodeDelete), 1.0);   // a
  EXPECT_DOUBLE_EQ(w.Of(BasicOp::kNodeInsert), 0.5);   // b
  EXPECT_DOUBLE_EQ(w.Of(BasicOp::kEdgeDelete), 2.0);   // c
  EXPECT_DOUBLE_EQ(w.Of(BasicOp::kEdgeInsert), 1.0);   // d
  EXPECT_DOUBLE_EQ(w.Of(BasicOp::kNodeRelabel), 0.0);
  EXPECT_DOUBLE_EQ(w.Of(BasicOp::kEdgeRelabel), 0.0);
}

TEST(OpWeightsTest, NamesAreDistinct) {
  EXPECT_STRNE(BasicOpName(BasicOp::kNodeDelete),
               BasicOpName(BasicOp::kNodeInsert));
  EXPECT_STRNE(BasicOpName(BasicOp::kEdgeDelete),
               BasicOpName(BasicOp::kEdgeRelabel));
}

}  // namespace
}  // namespace sama

#include "query/filter.h"

#include <gtest/gtest.h>

#include "query/sparql.h"

namespace sama {
namespace {

Substitution Bind(const std::string& var, const Term& value) {
  Substitution s;
  s.Bind(var, value);
  return s;
}

TEST(FilterConstraintTest, EqualsAgainstTerm) {
  FilterConstraint f;
  f.kind = FilterConstraint::Kind::kEquals;
  f.left_var = "x";
  f.right_term = Term::Iri("http://e/a");
  EXPECT_TRUE(f.Matches(Bind("x", Term::Iri("http://e/a"))));
  EXPECT_FALSE(f.Matches(Bind("x", Term::Iri("http://e/b"))));
  EXPECT_FALSE(f.Matches(Substitution()));  // Unbound vs constant.
}

TEST(FilterConstraintTest, NotEqualsBetweenVariables) {
  FilterConstraint f;
  f.kind = FilterConstraint::Kind::kNotEquals;
  f.left_var = "x";
  f.right_var = "y";
  Substitution same;
  same.Bind("x", Term::Iri("a"));
  same.Bind("y", Term::Iri("a"));
  EXPECT_FALSE(f.Matches(same));
  Substitution different;
  different.Bind("x", Term::Iri("a"));
  different.Bind("y", Term::Iri("b"));
  EXPECT_TRUE(f.Matches(different));
}

TEST(FilterConstraintTest, RegexIsSubstringCaseInsensitive) {
  FilterConstraint f;
  f.kind = FilterConstraint::Kind::kRegex;
  f.left_var = "x";
  f.pattern = "Professor";
  EXPECT_TRUE(f.Matches(
      Bind("x", Term::Iri("http://x/FullProfessor3"))));
  EXPECT_TRUE(f.Matches(Bind("x", Term::Literal("the professor"))));
  EXPECT_FALSE(f.Matches(Bind("x", Term::Literal("student"))));
  EXPECT_FALSE(f.Matches(Substitution()));  // Unbound fails regex.
}

TEST(FilterConstraintTest, ConjunctionOfFilters) {
  FilterConstraint a;
  a.left_var = "x";
  a.right_term = Term::Literal("v");
  FilterConstraint b;
  b.kind = FilterConstraint::Kind::kNotEquals;
  b.left_var = "y";
  b.right_term = Term::Literal("w");
  Substitution binding;
  binding.Bind("x", Term::Literal("v"));
  binding.Bind("y", Term::Literal("other"));
  EXPECT_TRUE(PassesFilters({a, b}, binding));
  binding = Substitution();
  binding.Bind("x", Term::Literal("v"));
  binding.Bind("y", Term::Literal("w"));
  EXPECT_FALSE(PassesFilters({a, b}, binding));
  EXPECT_TRUE(PassesFilters({}, binding));  // No filters: pass.
}

TEST(SparqlFilterTest, ParsesComparisons) {
  auto q = ParseSparql(
      "SELECT ?x ?y WHERE { ?x <http://p> ?y . FILTER(?x != ?y) . "
      "FILTER(?y = \"target\") }");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ(q->filters.size(), 2u);
  EXPECT_EQ(q->filters[0].kind, FilterConstraint::Kind::kNotEquals);
  EXPECT_EQ(q->filters[0].left_var, "x");
  EXPECT_EQ(q->filters[0].right_var, "y");
  EXPECT_EQ(q->filters[1].kind, FilterConstraint::Kind::kEquals);
  EXPECT_EQ(q->filters[1].right_term, Term::Literal("target"));
}

TEST(SparqlFilterTest, ParsesRegex) {
  auto q = ParseSparql(
      "SELECT ?x WHERE { ?x <http://p> ?y . "
      "FILTER regex(?x, \"prof\") }");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ(q->filters.size(), 1u);
  EXPECT_EQ(q->filters[0].kind, FilterConstraint::Kind::kRegex);
  EXPECT_EQ(q->filters[0].pattern, "prof");
}

TEST(SparqlFilterTest, MalformedFiltersRejected) {
  EXPECT_FALSE(ParseSparql(
                   "SELECT ?x WHERE { ?x <http://p> ?y . FILTER(?x < ?y) }")
                   .ok());
  EXPECT_FALSE(ParseSparql(
                   "SELECT ?x WHERE { ?x <http://p> ?y . "
                   "FILTER(<http://a> = ?y) }")
                   .ok());
  EXPECT_FALSE(ParseSparql(
                   "SELECT ?x WHERE { ?x <http://p> ?y . FILTER(?x = ?y }")
                   .ok());
}

}  // namespace
}  // namespace sama

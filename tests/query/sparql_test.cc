#include "query/sparql.h"

#include <gtest/gtest.h>

namespace sama {
namespace {

TEST(SparqlTest, BasicSelect) {
  auto q = ParseSparql(
      "SELECT ?x WHERE { ?x <http://p> <http://o> . }");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->select_vars, (std::vector<std::string>{"x"}));
  ASSERT_EQ(q->patterns.size(), 1u);
  EXPECT_EQ(q->patterns[0].subject, Term::Variable("x"));
  EXPECT_EQ(q->patterns[0].predicate, Term::Iri("http://p"));
  EXPECT_EQ(q->patterns[0].object, Term::Iri("http://o"));
}

TEST(SparqlTest, PrefixesExpand) {
  auto q = ParseSparql(
      "PREFIX ub: <http://u.org/#>\n"
      "SELECT ?x WHERE { ?x ub:teaches ?c }");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->patterns[0].predicate, Term::Iri("http://u.org/#teaches"));
}

TEST(SparqlTest, SelectStar) {
  auto q = ParseSparql("SELECT * WHERE { ?a ?p ?b }");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(q->select_all);
  EXPECT_TRUE(q->select_vars.empty());
  EXPECT_EQ(q->patterns[0].predicate, Term::Variable("p"));
}

TEST(SparqlTest, AKeyword) {
  auto q = ParseSparql(
      "PREFIX ub: <http://u.org/#>\n"
      "SELECT ?x WHERE { ?x a ub:Professor }");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->patterns[0].predicate,
            Term::Iri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type"));
}

TEST(SparqlTest, PredicateAndObjectLists) {
  auto q = ParseSparql(
      "PREFIX ex: <http://e/>\n"
      "SELECT ?x WHERE { ?x ex:p ex:a , ex:b ; ex:q \"lit\" . }");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ(q->patterns.size(), 3u);
  EXPECT_EQ(q->patterns[1].object, Term::Iri("http://e/b"));
  EXPECT_EQ(q->patterns[2].object, Term::Literal("lit"));
}

TEST(SparqlTest, LiteralsWithTags) {
  auto q = ParseSparql(
      "SELECT ?x WHERE { ?x <http://p> \"hi\"@en . "
      "?x <http://q> \"5\"^^<http://int> }");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->patterns[0].object, Term::LangLiteral("hi", "en"));
  EXPECT_EQ(q->patterns[1].object, Term::TypedLiteral("5", "http://int"));
}

TEST(SparqlTest, Limit) {
  auto q = ParseSparql(
      "SELECT ?x WHERE { ?x <http://p> ?y } LIMIT 25");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->limit, 25u);
}

TEST(SparqlTest, DollarVariables) {
  auto q = ParseSparql("SELECT $x WHERE { $x <http://p> $y }");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->select_vars[0], "x");
}

TEST(SparqlTest, Distinct) {
  auto q = ParseSparql(
      "SELECT DISTINCT ?x WHERE { ?x <http://p> ?y }");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(q->distinct);
  EXPECT_EQ(q->select_vars, (std::vector<std::string>{"x"}));
  auto plain = ParseSparql("SELECT ?x WHERE { ?x <http://p> ?y }");
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(plain->distinct);
}

TEST(SparqlTest, CaseInsensitiveKeywords) {
  auto q = ParseSparql("select ?x where { ?x <http://p> ?y } limit 3");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->limit, 3u);
}

TEST(SparqlTest, CommentsSkipped) {
  auto q = ParseSparql(
      "# find professors\n"
      "SELECT ?x WHERE {\n"
      "  ?x <http://p> ?y . # pattern\n"
      "}");
  ASSERT_TRUE(q.ok()) << q.status();
}

TEST(SparqlTest, ToQueryGraphSharesDictionary) {
  auto q = ParseSparql("SELECT ?x WHERE { ?x <http://p> \"v\" }");
  ASSERT_TRUE(q.ok());
  auto dict = std::make_shared<TermDictionary>();
  TermId v = dict->Intern(Term::Literal("v"));
  QueryGraph graph = q->ToQueryGraph(dict);
  EXPECT_EQ(graph.paths()[0].sink_label(), v);
}

TEST(SparqlTest, ErrorsAreReported) {
  EXPECT_FALSE(ParseSparql("").ok());
  EXPECT_FALSE(ParseSparql("SELECT WHERE { ?a <p> ?b }").ok());
  EXPECT_FALSE(ParseSparql("SELECT ?x { ?x <http://p> ?y }").ok());
  EXPECT_FALSE(
      ParseSparql("SELECT ?x WHERE { ?x <http://p> ?y").ok());
  EXPECT_FALSE(
      ParseSparql("SELECT ?x WHERE { ?x nope:p ?y }").ok());
  EXPECT_FALSE(ParseSparql("SELECT ?x WHERE { }").ok());
  EXPECT_FALSE(
      ParseSparql("SELECT ?x WHERE { ?x <http://p> ?y } garbage").ok());
}

TEST(SparqlTest, GovTrackQ1Shape) {
  auto q = ParseSparql(
      "PREFIX gov: <http://gov.example.org/>\n"
      "SELECT ?v1 ?v2 ?v3 WHERE {\n"
      "  gov:CarlaBunes gov:sponsor ?v1 .\n"
      "  ?v1 gov:aTo ?v2 .\n"
      "  ?v2 gov:subject \"Health Care\" .\n"
      "  ?v3 gov:sponsor ?v2 .\n"
      "  ?v3 gov:gender \"Male\" .\n"
      "}");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->patterns.size(), 5u);
  EXPECT_EQ(q->select_vars.size(), 3u);
  QueryGraph graph = q->ToQueryGraph();
  EXPECT_EQ(graph.paths().size(), 3u);
}

}  // namespace
}  // namespace sama

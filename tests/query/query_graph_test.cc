#include "query/query_graph.h"

#include <gtest/gtest.h>

#include <set>

#include "datasets/govtrack.h"

namespace sama {
namespace {

std::set<std::string> PathStrings(const QueryGraph& q) {
  std::set<std::string> out;
  for (const Path& p : q.paths()) out.insert(p.ToString(q.dict()));
  return out;
}

TEST(QueryGraphTest, Q1DecomposesIntoThreePaths) {
  QueryGraph q = QueryGraph::FromPatterns(GovTrackQuery1Patterns());
  // §4.3: q1 = CB-sponsor-?v1-aTo-?v2-subject-HC,
  //       q2 = ?v3-sponsor-?v2-subject-HC, q3 = ?v3-gender-Male.
  EXPECT_EQ(PathStrings(q),
            (std::set<std::string>{
                "CarlaBunes-sponsor-?v1-aTo-?v2-subject-Health Care",
                "?v3-sponsor-?v2-subject-Health Care",
                "?v3-gender-Male",
            }));
}

TEST(QueryGraphTest, PathsSortedLongestFirst) {
  QueryGraph q = QueryGraph::FromPatterns(GovTrackQuery1Patterns());
  ASSERT_EQ(q.paths().size(), 3u);
  EXPECT_EQ(q.paths()[0].length(), 4u);
  EXPECT_EQ(q.paths()[2].length(), 2u);
}

TEST(QueryGraphTest, VariablesCollected) {
  QueryGraph q = QueryGraph::FromPatterns(GovTrackQuery1Patterns());
  EXPECT_EQ(q.num_variables(), 3u);
  QueryGraph q2 = QueryGraph::FromPatterns(GovTrackQuery2Patterns());
  // ?e1, ?v2, ?v3.
  EXPECT_EQ(q2.num_variables(), 3u);
}

TEST(QueryGraphTest, DepthIsLongestPath) {
  QueryGraph q = QueryGraph::FromPatterns(GovTrackQuery1Patterns());
  EXPECT_EQ(q.depth(), 4u);
}

TEST(QueryGraphTest, SharedDictionaryAlignsTermIds) {
  auto dict = std::make_shared<TermDictionary>();
  TermId hc = dict->Intern(Term::Literal("Health Care"));
  QueryGraph q =
      QueryGraph::FromPatterns(GovTrackQuery1Patterns(), dict);
  // The query's Health Care node must reuse the pre-interned id.
  bool found = false;
  for (const Path& p : q.paths()) {
    if (p.sink_label() == hc) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(QueryGraphTest, IsVariableLabel) {
  QueryGraph q = QueryGraph::FromPatterns(GovTrackQuery1Patterns());
  const Path& q3 = q.paths().back();  // ?v3-gender-Male.
  EXPECT_TRUE(q.IsVariableLabel(q3.source_label()));
  EXPECT_FALSE(q.IsVariableLabel(q3.sink_label()));
}

TEST(QueryGraphTest, LastConstantFromSinkSkipsVariables) {
  // Path ?a -p-> ?b: no constant node; the edge label p is the answer.
  std::vector<Triple> patterns = {
      {Term::Variable("a"), Term::Iri("p"), Term::Variable("b")}};
  QueryGraph q = QueryGraph::FromPatterns(patterns);
  ASSERT_EQ(q.paths().size(), 1u);
  TermId last = q.LastConstantFromSink(q.paths()[0]);
  ASSERT_NE(last, kInvalidTermId);
  EXPECT_EQ(q.dict().term(last), Term::Iri("p"));
}

TEST(QueryGraphTest, LastConstantPrefersClosestToSink) {
  // CB -sponsor-> ?v1 -aTo-> ?v2: scanning backwards the first constant
  // is the edge label aTo.
  std::vector<Triple> patterns = {
      {Term::Iri("CB"), Term::Iri("sponsor"), Term::Variable("v1")},
      {Term::Variable("v1"), Term::Iri("aTo"), Term::Variable("v2")},
  };
  QueryGraph q = QueryGraph::FromPatterns(patterns);
  ASSERT_EQ(q.paths().size(), 1u);
  TermId last = q.LastConstantFromSink(q.paths()[0]);
  EXPECT_EQ(q.dict().term(last), Term::Iri("aTo"));
}

TEST(QueryGraphTest, AllVariablePathHasNoConstant) {
  std::vector<Triple> patterns = {
      {Term::Variable("a"), Term::Variable("p"), Term::Variable("b")}};
  QueryGraph q = QueryGraph::FromPatterns(patterns);
  ASSERT_EQ(q.paths().size(), 1u);
  EXPECT_EQ(q.LastConstantFromSink(q.paths()[0]), kInvalidTermId);
}

TEST(QueryGraphTest, SharedVariableMakesOneNode) {
  // ?v2 appears in two patterns: one query-graph node.
  QueryGraph q = QueryGraph::FromPatterns(GovTrackQuery1Patterns());
  EXPECT_EQ(q.graph().node_count(), 6u);  // CB, ?v1, ?v2, HC, ?v3, Male.
}

}  // namespace
}  // namespace sama

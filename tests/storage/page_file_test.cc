#include "storage/page_file.h"

#include <gtest/gtest.h>

#include <cstring>

namespace sama {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(PageFileTest, AllocateReadWriteRoundTrip) {
  PageFile f;
  ASSERT_TRUE(f.Open(TempPath("pf1.dat"), /*truncate=*/true).ok());
  auto p0 = f.AllocatePage();
  ASSERT_TRUE(p0.ok());
  auto p1 = f.AllocatePage();
  ASSERT_TRUE(p1.ok());
  EXPECT_EQ(*p0, 0u);
  EXPECT_EQ(*p1, 1u);
  EXPECT_EQ(f.page_count(), 2u);

  uint8_t page[kPageDataSize];
  std::memset(page, 0xAB, sizeof(page));
  ASSERT_TRUE(f.WritePage(*p1, page).ok());

  std::vector<uint8_t> read;
  ASSERT_TRUE(f.ReadPage(*p1, &read).ok());
  ASSERT_EQ(read.size(), kPageDataSize);
  EXPECT_EQ(read[0], 0xAB);
  EXPECT_EQ(read[kPageDataSize - 1], 0xAB);

  // Page 0 is still zeroed.
  ASSERT_TRUE(f.ReadPage(*p0, &read).ok());
  EXPECT_EQ(read[0], 0);
  ASSERT_TRUE(f.Close().ok());
}

TEST(PageFileTest, OutOfRangeRead) {
  PageFile f;
  ASSERT_TRUE(f.Open(TempPath("pf2.dat"), true).ok());
  std::vector<uint8_t> buf;
  EXPECT_EQ(f.ReadPage(0, &buf).code(), Status::Code::kOutOfRange);
}

TEST(PageFileTest, OperationsRequireOpenFile) {
  PageFile f;
  std::vector<uint8_t> buf;
  EXPECT_FALSE(f.AllocatePage().ok());
  EXPECT_FALSE(f.ReadPage(0, &buf).ok());
  EXPECT_FALSE(f.Sync().ok());
}

TEST(PageFileTest, SizeBytesTracksPages) {
  PageFile f;
  ASSERT_TRUE(f.Open(TempPath("pf3.dat"), true).ok());
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(f.AllocatePage().ok());
  EXPECT_EQ(f.size_bytes(), 5 * kPageSize);
}

TEST(PageFileTest, CountsReadsAndWrites) {
  PageFile f;
  ASSERT_TRUE(f.Open(TempPath("pf4.dat"), true).ok());
  ASSERT_TRUE(f.AllocatePage().ok());
  uint64_t writes_after_alloc = f.writes();
  EXPECT_GE(writes_after_alloc, 1u);
  std::vector<uint8_t> buf;
  ASSERT_TRUE(f.ReadPage(0, &buf).ok());
  ASSERT_TRUE(f.ReadPage(0, &buf).ok());
  EXPECT_EQ(f.reads(), 2u);
}

TEST(PageFileTest, ReopenWithoutTruncateKeepsPages) {
  std::string path = TempPath("pf5.dat");
  {
    PageFile f;
    ASSERT_TRUE(f.Open(path, true).ok());
    ASSERT_TRUE(f.AllocatePage().ok());
    uint8_t page[kPageDataSize];
    std::memset(page, 0x5C, sizeof(page));
    ASSERT_TRUE(f.WritePage(0, page).ok());
    ASSERT_TRUE(f.Sync().ok());
    ASSERT_TRUE(f.Close().ok());
  }
  PageFile f;
  ASSERT_TRUE(f.Open(path, /*truncate=*/false).ok());
  EXPECT_EQ(f.page_count(), 1u);
  std::vector<uint8_t> buf;
  ASSERT_TRUE(f.ReadPage(0, &buf).ok());
  EXPECT_EQ(buf[100], 0x5C);
}

}  // namespace
}  // namespace sama

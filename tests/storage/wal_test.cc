// Unit tests for the record-framed write-ahead log (DESIGN.md §12):
// append/sync/replay round trips, torn-tail truncation at open,
// segment rotation and checkpoint truncation, LSN continuity, and the
// offline ScanDir integrity scan `sama_cli verify` builds on.

#include "storage/wal.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/fault_injection.h"

namespace sama {
namespace {

std::string FreshDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/wal_" + name;
  std::filesystem::remove_all(dir);
  return dir;  // Wal::Open creates it.
}

std::vector<uint8_t> Payload(const std::string& text) {
  return std::vector<uint8_t>(text.begin(), text.end());
}

std::vector<Wal::Record> ReplayAll(Wal* wal, uint64_t from_lsn = 0) {
  std::vector<Wal::Record> records;
  Status s = wal->Replay(from_lsn, [&](const Wal::Record& r) {
    records.push_back(r);
    return Status::Ok();
  });
  EXPECT_TRUE(s.ok()) << s;
  return records;
}

TEST(WalTest, AppendSyncReplayRoundTrip) {
  std::string dir = FreshDir("roundtrip");
  Wal wal;
  Wal::Options options;
  options.dir = dir;
  ASSERT_TRUE(wal.Open(options).ok());

  auto a = wal.Append(Wal::kInsertTriple, Payload("alpha"));
  auto b = wal.Append(Wal::kDeleteTriple, Payload("beta"));
  auto c = wal.Append(Wal::kInsertTriple, Payload("gamma"));
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(*a, 1u);
  EXPECT_EQ(*b, 2u);
  EXPECT_EQ(*c, 3u);
  ASSERT_TRUE(wal.Sync(*c).ok());
  EXPECT_EQ(wal.synced_lsn(), 3u);
  ASSERT_TRUE(wal.Close().ok());

  Wal reopened;
  ASSERT_TRUE(reopened.Open(options).ok());
  EXPECT_EQ(reopened.next_lsn(), 4u);
  auto records = ReplayAll(&reopened);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].lsn, 1u);
  EXPECT_EQ(records[0].type, Wal::kInsertTriple);
  EXPECT_EQ(records[0].payload, Payload("alpha"));
  EXPECT_EQ(records[1].type, Wal::kDeleteTriple);
  EXPECT_EQ(records[2].payload, Payload("gamma"));
  // Replay from an offset skips applied records.
  EXPECT_EQ(ReplayAll(&reopened, 2).size(), 1u);
}

TEST(WalTest, GroupCommitSyncIsIdempotent) {
  std::string dir = FreshDir("groupcommit");
  Wal wal;
  Wal::Options options;
  options.dir = dir;
  ASSERT_TRUE(wal.Open(options).ok());
  ASSERT_TRUE(wal.Append(Wal::kInsertTriple, Payload("x")).ok());
  ASSERT_TRUE(wal.Append(Wal::kInsertTriple, Payload("y")).ok());
  ASSERT_TRUE(wal.Sync(2).ok());
  // Covered LSNs return without another fsync.
  ASSERT_TRUE(wal.Sync(1).ok());
  ASSERT_TRUE(wal.Sync(2).ok());
  EXPECT_EQ(wal.synced_lsn(), 2u);
}

TEST(WalTest, StartLsnHonouredOnEmptyDir) {
  // A checkpointed-and-fully-truncated log must not restart at LSN 1:
  // records below the checkpoint would be invisible to replay forever.
  std::string dir = FreshDir("startlsn");
  Wal wal;
  Wal::Options options;
  options.dir = dir;
  options.start_lsn = 42;
  ASSERT_TRUE(wal.Open(options).ok());
  auto lsn = wal.Append(Wal::kInsertTriple, Payload("late"));
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 42u);
}

TEST(WalTest, TornTailTruncatedOnOpenNeverReplayed) {
  std::string dir = FreshDir("torntail");
  Wal::Options options;
  options.dir = dir;
  std::string segment;
  {
    Wal wal;
    ASSERT_TRUE(wal.Open(options).ok());
    ASSERT_TRUE(wal.Append(Wal::kInsertTriple, Payload("keep1")).ok());
    ASSERT_TRUE(wal.Append(Wal::kInsertTriple, Payload("keep2")).ok());
    ASSERT_TRUE(wal.Sync(2).ok());
    segment = dir + "/" + Wal::SegmentFileName(1);
    ASSERT_TRUE(wal.Close().ok());
  }
  uint64_t clean_size = std::filesystem::file_size(segment);
  {
    // A torn append: half a record header and some garbage.
    std::ofstream out(segment, std::ios::binary | std::ios::app);
    out << "\x13\x37garbage-torn-append";
  }
  ASSERT_GT(std::filesystem::file_size(segment), clean_size);

  // ScanDir (verify) flags the tear without touching the file.
  auto scans = Wal::ScanDir(dir);
  ASSERT_TRUE(scans.ok());
  ASSERT_EQ(scans->size(), 1u);
  EXPECT_TRUE((*scans)[0].torn_tail);
  EXPECT_EQ((*scans)[0].records, 2u);
  EXPECT_EQ((*scans)[0].valid_bytes, clean_size);

  // Open truncates the tear physically; the valid prefix survives.
  Wal wal;
  ASSERT_TRUE(wal.Open(options).ok());
  EXPECT_EQ(std::filesystem::file_size(segment), clean_size);
  EXPECT_EQ(wal.next_lsn(), 3u);
  auto records = ReplayAll(&wal);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].payload, Payload("keep2"));
  // And the log keeps appending where the valid prefix ended.
  auto lsn = wal.Append(Wal::kInsertTriple, Payload("after"));
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 3u);
}

TEST(WalTest, CorruptRecordDetectedByScan) {
  std::string dir = FreshDir("corrupt");
  Wal::Options options;
  options.dir = dir;
  std::string segment;
  {
    Wal wal;
    ASSERT_TRUE(wal.Open(options).ok());
    ASSERT_TRUE(wal.Append(Wal::kInsertTriple, Payload("one")).ok());
    ASSERT_TRUE(wal.Append(Wal::kInsertTriple, Payload("two")).ok());
    ASSERT_TRUE(wal.Sync(2).ok());
    segment = dir + "/" + Wal::SegmentFileName(1);
    ASSERT_TRUE(wal.Close().ok());
  }
  {
    // Flip one payload byte of the FIRST record; its CRC must catch it.
    std::fstream file(segment,
                      std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(Wal::kRecordHeaderSize);  // First payload byte.
    file.put('X');
  }
  auto scans = Wal::ScanDir(dir);
  ASSERT_TRUE(scans.ok());
  ASSERT_EQ(scans->size(), 1u);
  // Everything from the damaged record on is unusable tail.
  EXPECT_EQ((*scans)[0].records, 0u);
  EXPECT_TRUE((*scans)[0].torn_tail);
}

TEST(WalTest, RotationSplitsSegmentsAndReplaysAcrossThem) {
  std::string dir = FreshDir("rotate");
  Wal::Options options;
  options.dir = dir;
  options.segment_bytes = 64;  // Rotate every couple of records.
  Wal wal;
  ASSERT_TRUE(wal.Open(options).ok());
  constexpr int kRecords = 12;
  for (int i = 0; i < kRecords; ++i) {
    ASSERT_TRUE(
        wal.Append(Wal::kInsertTriple, Payload("r" + std::to_string(i)))
            .ok());
  }
  ASSERT_TRUE(wal.Sync(kRecords).ok());

  auto scans = Wal::ScanDir(dir);
  ASSERT_TRUE(scans.ok());
  ASSERT_GT(scans->size(), 2u) << "64-byte segments must have rotated";
  // Sorted by first LSN, densely covering 1..kRecords.
  uint64_t expected_next = 1;
  for (const auto& seg : *scans) {
    EXPECT_EQ(seg.first_lsn, expected_next);
    EXPECT_TRUE(seg.errors.empty());
    expected_next = seg.last_lsn + 1;
  }
  EXPECT_EQ(expected_next, kRecords + 1u);

  auto records = ReplayAll(&wal);
  ASSERT_EQ(records.size(), static_cast<size_t>(kRecords));
  for (int i = 0; i < kRecords; ++i) {
    EXPECT_EQ(records[i].lsn, static_cast<uint64_t>(i + 1));
    EXPECT_EQ(records[i].payload, Payload("r" + std::to_string(i)));
  }
}

TEST(WalTest, TruncateThroughDeletesOnlyObsoleteSegments) {
  std::string dir = FreshDir("truncate");
  Wal::Options options;
  options.dir = dir;
  options.segment_bytes = 64;
  Wal wal;
  ASSERT_TRUE(wal.Open(options).ok());
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(
        wal.Append(Wal::kInsertTriple, Payload("t" + std::to_string(i)))
            .ok());
  }
  ASSERT_TRUE(wal.Sync(12).ok());
  size_t before = Wal::ScanDir(dir)->size();
  ASSERT_GT(before, 2u);

  // Checkpoint at 6: segments fully covered by it go away, the rest
  // stay, and replay past the checkpoint still works.
  ASSERT_TRUE(wal.TruncateThrough(6).ok());
  auto scans = Wal::ScanDir(dir);
  ASSERT_TRUE(scans.ok());
  EXPECT_LT(scans->size(), before);
  EXPECT_LE((*scans)[0].first_lsn, 7u)
      << "a record recovery needs was deleted";
  auto records = ReplayAll(&wal, 6);
  ASSERT_EQ(records.size(), 6u);
  EXPECT_EQ(records.front().lsn, 7u);

  // Checkpoint at the very tip keeps the active segment (the LSN
  // sequence must survive a restart).
  ASSERT_TRUE(wal.TruncateThrough(12).ok());
  EXPECT_FALSE(Wal::ScanDir(dir)->empty());
  ASSERT_TRUE(wal.Close().ok());
  Wal reopened;
  ASSERT_TRUE(reopened.Open(options).ok());
  EXPECT_EQ(reopened.next_lsn(), 13u);
}

TEST(WalTest, SegmentFileNameRoundTrip) {
  EXPECT_EQ(Wal::SegmentFileName(1), "wal-0000000000000001.log");
  uint64_t lsn = 0;
  EXPECT_TRUE(Wal::ParseSegmentFileName("wal-00000000000000ff.log", &lsn));
  EXPECT_EQ(lsn, 0xffu);
  EXPECT_FALSE(Wal::ParseSegmentFileName("wal-xyz.log", &lsn));
  EXPECT_FALSE(Wal::ParseSegmentFileName("paths.dat", &lsn));
  EXPECT_TRUE(
      Wal::ParseSegmentFileName(Wal::SegmentFileName(123456789), &lsn));
  EXPECT_EQ(lsn, 123456789u);
}

TEST(WalTest, FailedAppendDoesNotAdvanceTheTail) {
  std::string dir = FreshDir("failedappend");
  Wal::Options options;
  options.dir = dir;
  Wal wal;
  ASSERT_TRUE(wal.Open(options).ok());
  ASSERT_TRUE(wal.Append(Wal::kInsertTriple, Payload("ok1")).ok());

  FailPoints::Arm("wal.append", Status::IoError("injected append failure"));
  auto failed = wal.Append(Wal::kInsertTriple, Payload("lost"));
  EXPECT_FALSE(failed.ok());
  FailPoints::ClearAll();

  // The retry takes the SAME LSN — the failed attempt left no hole —
  // and overwrites whatever partial bytes the failure left behind.
  auto retried = wal.Append(Wal::kInsertTriple, Payload("ok2"));
  ASSERT_TRUE(retried.ok());
  EXPECT_EQ(*retried, 2u);
  ASSERT_TRUE(wal.Sync(2).ok());
  auto records = ReplayAll(&wal);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].payload, Payload("ok2"));
}

TEST(WalTest, MissingDirScansEmpty) {
  auto scans = Wal::ScanDir(testing::TempDir() + "/wal_never_created");
  ASSERT_TRUE(scans.ok());
  EXPECT_TRUE(scans->empty());
}

TEST(WalTest, EveryWalCrashPointIsRegistered) {
  // The torture suite iterates CrashPoints(); a point that exists in
  // code but not in the catalogue would never be crash-tested.
  auto points = Wal::CrashPoints();
  for (const char* required :
       {"wal.append", "wal.sync", "wal.rotate", "wal.truncate",
        "wal.replay"}) {
    EXPECT_TRUE(std::find(points.begin(), points.end(), required) !=
                points.end())
        << required;
  }
}

}  // namespace
}  // namespace sama

// Hammers the BufferPool's lock-free probe + seqlock-pin protocol from
// many threads. The assertions here (no lost writes, stats
// consistency, stable guard pointers, no torn page bytes) hold on any
// machine; the full payoff is the CI job that runs this binary under
// ThreadSanitizer (SAMA_SANITIZE=thread), which turns latent
// pin-vs-evict ordering mistakes into hard failures.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/page_file.h"

namespace sama {
namespace {

class BufferPoolConcurrencyTest : public testing::Test {
 protected:
  void SetUp() override {
    path_ = testing::TempDir() + "/bpc_" +
            testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".dat";
    ASSERT_TRUE(file_.Open(path_, true).ok());
  }

  std::string path_;
  PageFile file_;
};

TEST_F(BufferPoolConcurrencyTest, ConcurrentReadersSeeConsistentPages) {
  constexpr size_t kConstPages = 4;
  for (size_t i = 0; i < kConstPages; ++i) {
    ASSERT_TRUE(file_.AllocatePage().ok());
    uint8_t page[kPageDataSize] = {};
    page[0] = static_cast<uint8_t>(0xA0 + i);
    ASSERT_TRUE(file_.WritePage(static_cast<PageId>(i), page).ok());
  }
  // Capacity 2 < pages 4: every reader continuously evicts the others'
  // pages, exercising the miss/eviction path under the exclusive latch.
  BufferPool pool(&file_, 2);
  constexpr int kThreads = 8;
  constexpr int kReadsPerThread = 2000;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([&, t] {
      for (int r = 0; r < kReadsPerThread; ++r) {
        PageId page = static_cast<PageId>((t + r) % kConstPages);
        auto guard = pool.Fetch(page);
        if (!guard.ok()) {
          mismatches.fetch_add(1);
          continue;
        }
        if (guard->data()[0] != static_cast<uint8_t>(0xA0 + page)) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& r : readers) r.join();
  EXPECT_EQ(mismatches.load(), 0);
  BufferPool::Stats s = pool.stats();
  EXPECT_EQ(s.hits + s.misses, s.fetches);
  EXPECT_EQ(s.fetches,
            static_cast<uint64_t>(kThreads) * kReadsPerThread);
  EXPECT_EQ(pool.pinned_pages(), 0u);
}

TEST_F(BufferPoolConcurrencyTest, MixedFetchMutateDropLosesNoWrites) {
  constexpr size_t kConstPages = 2;
  constexpr int kWriters = 4;
  for (size_t i = 0; i < kConstPages + kWriters; ++i) {
    ASSERT_TRUE(file_.AllocatePage().ok());
  }
  for (size_t i = 0; i < kConstPages; ++i) {
    uint8_t page[kPageDataSize] = {};
    page[0] = static_cast<uint8_t>(0xB0 + i);
    ASSERT_TRUE(file_.WritePage(static_cast<PageId>(i), page).ok());
  }
  // Tiny pool: every increment round-trips through eviction write-back
  // and reload with high probability.
  BufferPool pool(&file_, 2);
  constexpr int kIncrements = 500;
  std::atomic<int> errors{0};

  std::vector<std::thread> threads;
  // Writers: each owns one page and repeatedly increments a 32-bit
  // counter in it through MutablePage. Only the owner touches the
  // page's bytes, so any lost increment is the pool's fault (dropped
  // write-back, eviction of a pinned frame, torn reload).
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      PageId page = static_cast<PageId>(kConstPages + w);
      for (int i = 0; i < kIncrements; ++i) {
        auto guard = pool.MutablePage(page);
        if (!guard.ok()) {
          errors.fetch_add(1);
          return;
        }
        uint8_t* data = guard->mutable_data();
        uint32_t value;
        std::memcpy(&value, data, sizeof(value));
        ++value;
        std::memcpy(data, &value, sizeof(value));
      }
    });
  }
  // Readers over the constant pages.
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < 2000; ++r) {
        PageId page = static_cast<PageId>((t + r) % kConstPages);
        auto guard = pool.Fetch(page);
        if (!guard.ok() ||
            guard->data()[0] != static_cast<uint8_t>(0xB0 + page)) {
          errors.fetch_add(1);
        }
      }
    });
  }
  // Chaos: periodic cold-cache drops while everyone else is working.
  threads.emplace_back([&] {
    for (int d = 0; d < 50; ++d) {
      if (!pool.DropAll().ok()) errors.fetch_add(1);
      std::this_thread::yield();
    }
  });
  for (std::thread& t : threads) t.join();
  ASSERT_EQ(errors.load(), 0);

  // Every increment must have survived.
  ASSERT_TRUE(pool.Flush().ok());
  for (int w = 0; w < kWriters; ++w) {
    std::vector<uint8_t> buf;
    ASSERT_TRUE(
        file_.ReadPage(static_cast<PageId>(kConstPages + w), &buf).ok());
    uint32_t value;
    std::memcpy(&value, buf.data(), sizeof(value));
    EXPECT_EQ(value, static_cast<uint32_t>(kIncrements)) << "writer " << w;
  }
  BufferPool::Stats s = pool.stats();
  EXPECT_EQ(s.hits + s.misses, s.fetches);
}

TEST_F(BufferPoolConcurrencyTest, EvictionRaceNeverYieldsTornPages) {
  // The seqlock protocol's worst case: a capacity-1 pool over many
  // pages, so nearly every fetch evicts while other threads are racing
  // lock-free pins against the same frames. Each page carries a
  // distinctive byte pattern; a pin that survives validation must see
  // its page's pattern end to end — a single foreign byte means a pin
  // landed on a frame mid-eviction (or on reused/freed memory; the
  // ASan tier would also flag the latter).
  constexpr size_t kConstPages = 8;
  for (size_t i = 0; i < kConstPages; ++i) {
    ASSERT_TRUE(file_.AllocatePage().ok());
    uint8_t page[kPageDataSize];
    std::memset(page, static_cast<int>(0xC0 + i), sizeof(page));
    ASSERT_TRUE(file_.WritePage(static_cast<PageId>(i), page).ok());
  }
  BufferPool pool(&file_, 1);
  constexpr int kThreads = 8;
  constexpr int kReadsPerThread = 1500;
  std::atomic<int> torn{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([&, t] {
      uint64_t state = 0x9e3779b97f4a7c15ULL * (t + 1);
      for (int r = 0; r < kReadsPerThread; ++r) {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        PageId page = static_cast<PageId>((state >> 33) % kConstPages);
        auto guard = pool.Fetch(page);
        if (!guard.ok()) {
          torn.fetch_add(1);
          continue;
        }
        const uint8_t expected = static_cast<uint8_t>(0xC0 + page);
        const uint8_t* data = guard->data();
        // Sample across the whole page, including both ends.
        for (size_t off : {size_t{0}, size_t{1}, kPageDataSize / 2,
                           kPageDataSize - 1}) {
          if (data[off] != expected) {
            torn.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  for (std::thread& r : readers) r.join();
  EXPECT_EQ(torn.load(), 0);
  BufferPool::Stats s = pool.stats();
  EXPECT_EQ(s.hits + s.misses, s.fetches);
  EXPECT_EQ(s.fetches, static_cast<uint64_t>(kThreads) * kReadsPerThread);
  EXPECT_EQ(pool.pinned_pages(), 0u);
  // Overflow-above-capacity is transient: everything unpinned settles
  // back within the budget after the storm.
  EXPECT_LE(pool.resident_pages(), kConstPages);
}

TEST_F(BufferPoolConcurrencyTest, GuardsKeepFramesAliveAcrossDropAll) {
  ASSERT_TRUE(file_.AllocatePage().ok());
  ASSERT_TRUE(file_.AllocatePage().ok());
  uint8_t page[kPageDataSize] = {};
  page[7] = 0x5A;
  ASSERT_TRUE(file_.WritePage(0, page).ok());
  BufferPool pool(&file_, 2);
  auto guard = pool.Fetch(0);
  ASSERT_TRUE(guard.ok());
  const uint8_t* data = guard->data();
  ASSERT_TRUE(pool.DropAll().ok());  // Must skip the pinned frame.
  ASSERT_TRUE(pool.Fetch(1).ok());
  EXPECT_EQ(guard->data(), data);  // Pointer stable while pinned.
  EXPECT_EQ(data[7], 0x5A);
  guard->Release();
  ASSERT_TRUE(pool.DropAll().ok());
  EXPECT_EQ(pool.resident_pages(), 0u);
}

}  // namespace
}  // namespace sama

#include "storage/record_store.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace sama {
namespace {

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

std::string Str(const std::vector<uint8_t>& v) {
  return std::string(v.begin(), v.end());
}

class RecordStoreTest : public testing::TestWithParam<bool> {
 protected:
  RecordStore::Options Opts() {
    RecordStore::Options o;
    if (GetParam()) {
      // Parameterized test names contain '/'; flatten for the file name.
      std::string name =
          testing::UnitTest::GetInstance()->current_test_info()->name();
      for (char& c : name) {
        if (c == '/') c = '-';
      }
      o.path = testing::TempDir() + "/rs_" + name + ".dat";
    }
    return o;
  }
};

TEST_P(RecordStoreTest, AppendReadRoundTrip) {
  RecordStore store;
  ASSERT_TRUE(store.Open(Opts()).ok());
  auto id1 = store.Append(Bytes("hello"));
  ASSERT_TRUE(id1.ok());
  auto id2 = store.Append(Bytes("world!"));
  ASSERT_TRUE(id2.ok());
  std::vector<uint8_t> out;
  ASSERT_TRUE(store.Read(*id1, &out).ok());
  EXPECT_EQ(Str(out), "hello");
  ASSERT_TRUE(store.Read(*id2, &out).ok());
  EXPECT_EQ(Str(out), "world!");
  EXPECT_EQ(store.record_count(), 2u);
}

TEST_P(RecordStoreTest, ManyRecordsAcrossPages) {
  RecordStore store;
  ASSERT_TRUE(store.Open(Opts()).ok());
  std::vector<RecordId> ids;
  for (int i = 0; i < 2000; ++i) {
    auto id = store.Append(Bytes("record-" + std::to_string(i)));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  std::vector<uint8_t> out;
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(store.Read(ids[i], &out).ok());
    EXPECT_EQ(Str(out), "record-" + std::to_string(i));
  }
}

TEST_P(RecordStoreTest, EmptyRecordSupported) {
  RecordStore store;
  ASSERT_TRUE(store.Open(Opts()).ok());
  auto id = store.Append({});
  ASSERT_TRUE(id.ok());
  std::vector<uint8_t> out{1, 2, 3};
  ASSERT_TRUE(store.Read(*id, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST_P(RecordStoreTest, FlushAndDropCachesPreserveData) {
  RecordStore store;
  ASSERT_TRUE(store.Open(Opts()).ok());
  auto id = store.Append(Bytes("persistent"));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(store.Flush().ok());
  ASSERT_TRUE(store.DropCaches().ok());
  std::vector<uint8_t> out;
  ASSERT_TRUE(store.Read(*id, &out).ok());
  EXPECT_EQ(Str(out), "persistent");
}

INSTANTIATE_TEST_SUITE_P(DiskAndMemory, RecordStoreTest, testing::Bool(),
                         [](const testing::TestParamInfo<bool>& info) {
                           return info.param ? "Disk" : "Memory";
                         });

TEST(RecordStoreDiskTest, RecordTooLargeRejected) {
  RecordStore store;
  RecordStore::Options o;
  o.path = testing::TempDir() + "/rs_big.dat";
  ASSERT_TRUE(store.Open(o).ok());
  std::vector<uint8_t> big(kPageSize, 0x1);
  EXPECT_EQ(store.Append(big).status().code(),
            Status::Code::kInvalidArgument);
  // Memory backend has no page limit.
  RecordStore mem;
  ASSERT_TRUE(mem.Open(RecordStore::Options()).ok());
  EXPECT_TRUE(mem.Append(big).ok());
}

TEST(RecordStoreDiskTest, CacheStatsExposed) {
  RecordStore store;
  RecordStore::Options o;
  o.path = testing::TempDir() + "/rs_stats.dat";
  o.buffer_pool_pages = 2;
  ASSERT_TRUE(store.Open(o).ok());
  auto id = store.Append(Bytes("x"));
  ASSERT_TRUE(id.ok());
  std::vector<uint8_t> out;
  ASSERT_TRUE(store.Read(*id, &out).ok());
  EXPECT_GT(store.cache_stats().hits + store.cache_stats().misses, 0u);
}

TEST(RecordStoreDiskTest, SizeBytesReflectsPages) {
  RecordStore store;
  RecordStore::Options o;
  o.path = testing::TempDir() + "/rs_size.dat";
  ASSERT_TRUE(store.Open(o).ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(store.Append(std::vector<uint8_t>(1000, 0x2)).ok());
  }
  // 100 KB of payload needs at least 25 pages.
  EXPECT_GE(store.size_bytes(), 25 * kPageSize);
}

TEST(RecordStoreMemoryTest, ConcurrentReadersShareTheLockWithOneAppender) {
  // Memory-backend reads take the shared side of the store's
  // shared_mutex: many readers proceed in parallel, serializing only
  // against Append (the backing vector reallocates). Readers chase the
  // appender's published high-water mark; every published record must
  // read back exactly, under ASan/TSan in the sanitizer tiers.
  RecordStore store;
  ASSERT_TRUE(store.Open(RecordStore::Options()).ok());

  constexpr uint64_t kRecords = 2000;
  constexpr int kReaders = 4;
  std::atomic<uint64_t> published{0};
  std::atomic<uint64_t> violations{0};
  std::atomic<bool> stop{false};

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      uint64_t state = 0x9e3779b97f4a7c15ULL * (r + 1);
      std::vector<uint8_t> buf;
      while (!stop.load(std::memory_order_acquire)) {
        uint64_t n = published.load(std::memory_order_acquire);
        if (n == 0) continue;
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        uint64_t id = (state >> 33) % n;
        if (!store.Read(id, &buf).ok() ||
            Str(buf) != "record-" + std::to_string(id)) {
          violations.fetch_add(1);
        }
      }
    });
  }
  for (uint64_t i = 0; i < kRecords; ++i) {
    auto id = store.Append(Bytes("record-" + std::to_string(i)));
    ASSERT_TRUE(id.ok());
    ASSERT_EQ(*id, i);  // Memory backend: ids are dense indices.
    published.store(i + 1, std::memory_order_release);
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(violations.load(), 0u);
  EXPECT_EQ(store.record_count(), kRecords);
}

}  // namespace
}  // namespace sama

// Persistence round-trips: every on-disk store must survive a close and
// reopen with truncate=false.

#include <gtest/gtest.h>

#include "storage/hypergraph_store.h"
#include "storage/path_store.h"
#include "storage/record_store.h"

namespace sama {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

TEST(RecordStoreReopenTest, RecordsSurviveReopen) {
  std::string path = TempPath("reopen_records.dat");
  std::vector<RecordId> ids;
  {
    RecordStore store;
    RecordStore::Options o;
    o.path = path;
    ASSERT_TRUE(store.Open(o).ok());
    for (int i = 0; i < 300; ++i) {
      auto id = store.Append(Bytes("record " + std::to_string(i)));
      ASSERT_TRUE(id.ok());
      ids.push_back(*id);
    }
    ASSERT_TRUE(store.Close().ok());
  }
  RecordStore store;
  RecordStore::Options o;
  o.path = path;
  o.truncate = false;
  ASSERT_TRUE(store.Open(o).ok());
  EXPECT_EQ(store.record_count(), 300u);
  std::vector<uint8_t> out;
  ASSERT_TRUE(store.Read(ids[137], &out).ok());
  EXPECT_EQ(std::string(out.begin(), out.end()), "record 137");
  // Appends continue after the old tail.
  auto id = store.Append(Bytes("after reopen"));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(store.Read(*id, &out).ok());
  EXPECT_EQ(std::string(out.begin(), out.end()), "after reopen");
  // All old records still intact.
  for (size_t i = 0; i < ids.size(); ++i) {
    ASSERT_TRUE(store.Read(ids[i], &out).ok()) << i;
  }
}

TEST(RecordStoreReopenTest, GarbageFileRejected) {
  std::string path = TempPath("reopen_garbage.dat");
  {
    // A page-aligned file with no valid header.
    PageFile f;
    ASSERT_TRUE(f.Open(path, true).ok());
    ASSERT_TRUE(f.AllocatePage().ok());
    ASSERT_TRUE(f.Close().ok());
  }
  RecordStore store;
  RecordStore::Options o;
  o.path = path;
  o.truncate = false;
  EXPECT_EQ(store.Open(o).code(), Status::Code::kCorruption);
}

TEST(PathStoreReopenTest, PathsSurviveReopen) {
  std::string path = TempPath("reopen_paths.dat");
  Path original;
  original.node_labels = {10, 20, 30};
  original.edge_labels = {100, 200};
  original.nodes = {1, 2, 3};
  {
    PathStore store;
    PathStore::Options o;
    o.path = path;
    ASSERT_TRUE(store.Open(o).ok());
    for (int i = 0; i < 50; ++i) {
      Path p = original;
      p.node_labels[0] = static_cast<TermId>(i);
      ASSERT_TRUE(store.Put(p).ok());
    }
    ASSERT_TRUE(store.Close().ok());
  }
  PathStore store;
  PathStore::Options o;
  o.path = path;
  o.truncate = false;
  ASSERT_TRUE(store.Open(o).ok());
  EXPECT_EQ(store.path_count(), 50u);
  Path loaded;
  ASSERT_TRUE(store.Get(31, &loaded).ok());
  EXPECT_EQ(loaded.node_labels[0], 31u);
  EXPECT_EQ(loaded.edge_labels, original.edge_labels);
}

TEST(PathStoreReopenTest, FlushAlsoPersistsManifest) {
  std::string path = TempPath("reopen_flush.dat");
  PathStore writer;
  PathStore::Options o;
  o.path = path;
  ASSERT_TRUE(writer.Open(o).ok());
  Path p;
  p.node_labels = {1, 2};
  p.edge_labels = {3};
  p.nodes = {0, 1};
  ASSERT_TRUE(writer.Put(p).ok());
  ASSERT_TRUE(writer.Flush().ok());  // No Close().

  PathStore reader;
  o.truncate = false;
  ASSERT_TRUE(reader.Open(o).ok());
  EXPECT_EQ(reader.path_count(), 1u);
}

TEST(HypergraphReopenTest, VerticesAndEdgesSurvive) {
  std::string path = TempPath("reopen_hg.dat");
  {
    HypergraphStore store;
    HypergraphStore::Options o;
    o.path = path;
    ASSERT_TRUE(store.Open(o).ok());
    std::vector<VertexId> members;
    for (int i = 0; i < 40; ++i) {
      auto v = store.AddVertex("v" + std::to_string(i));
      ASSERT_TRUE(v.ok());
      members.push_back(*v);
    }
    ASSERT_TRUE(store.AddHyperedge(members).ok());
    ASSERT_TRUE(store.AddHyperedge({members[0], members[39]}).ok());
    ASSERT_TRUE(store.Close().ok());
  }
  HypergraphStore store;
  HypergraphStore::Options o;
  o.path = path;
  o.truncate = false;
  ASSERT_TRUE(store.Open(o).ok());
  EXPECT_EQ(store.vertex_count(), 40u);
  EXPECT_EQ(store.hyperedge_count(), 2u);
  std::string label;
  ASSERT_TRUE(store.GetVertex(17, &label).ok());
  EXPECT_EQ(label, "v17");
  std::vector<VertexId> loaded;
  ASSERT_TRUE(store.GetHyperedge(1, &loaded).ok());
  EXPECT_EQ(loaded, (std::vector<VertexId>{0, 39}));
}

}  // namespace
}  // namespace sama

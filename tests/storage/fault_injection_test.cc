// The injectable-Env seam: deterministic I/O errors, torn writes, sync
// failures and crashes, and the storage stack surfacing each one
// through Status instead of losing data silently.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "storage/buffer_pool.h"
#include "storage/manifest.h"
#include "storage/page_file.h"
#include "storage/record_store.h"

namespace sama {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(FaultyEnvTest, WriteFailsAfterCount) {
  FaultyEnv env;
  PageFile f;
  ASSERT_TRUE(f.Open(TempPath("fe1.dat"), true, &env).ok());
  ASSERT_TRUE(f.AllocatePage().ok());
  env.Arm(IoOp::kWrite, FaultSpec{/*fail_after=*/env.op_count(IoOp::kWrite)});
  uint8_t page[kPageDataSize] = {};
  Status s = f.WritePage(0, page);
  EXPECT_EQ(s.code(), Status::Code::kIoError);
  EXPECT_NE(s.message().find("injected"), std::string::npos) << s;
  EXPECT_FALSE(f.AllocatePage().ok());
  env.Disarm(IoOp::kWrite);
  EXPECT_TRUE(f.WritePage(0, page).ok());
}

TEST(FaultyEnvTest, CrashDownsEveryOperation) {
  FaultyEnv env;
  PageFile f;
  ASSERT_TRUE(f.Open(TempPath("fe2.dat"), true, &env).ok());
  ASSERT_TRUE(f.AllocatePage().ok());
  env.Crash();
  std::vector<uint8_t> buf;
  EXPECT_EQ(f.ReadPage(0, &buf).code(), Status::Code::kIoError);
  EXPECT_EQ(f.Sync().code(), Status::Code::kIoError);
  EXPECT_FALSE(f.AllocatePage().ok());
  env.Reset(/*seed=*/1);
  EXPECT_TRUE(f.ReadPage(0, &buf).ok());
}

TEST(FaultyEnvTest, SeededProbabilityFaultsAreDeterministic) {
  auto failure_pattern = [](uint64_t seed) {
    FaultyEnv env(nullptr, seed);
    PageFile f;
    EXPECT_TRUE(f.Open(TempPath("fe3_" + std::to_string(seed) + ".dat"),
                       true, &env)
                    .ok());
    EXPECT_TRUE(f.AllocatePage().ok());
    // Arm only after the page exists, so every failure below is an
    // injected one rather than fallout of a failed allocation.
    FaultSpec spec;
    spec.probability = 0.5;
    env.Arm(IoOp::kWrite, spec);
    uint8_t page[kPageDataSize] = {};
    std::vector<bool> pattern;
    for (int i = 0; i < 64; ++i) pattern.push_back(f.WritePage(0, page).ok());
    return pattern;
  };
  std::vector<bool> a = failure_pattern(42);
  std::vector<bool> b = failure_pattern(42);
  std::vector<bool> c = failure_pattern(43);
  EXPECT_EQ(a, b) << "same seed must inject the same failure sequence";
  EXPECT_NE(a, c) << "different seeds should differ";
  // Sanity: 0.5 probability actually fired sometimes, not always.
  size_t failures = 0;
  for (bool ok : a) failures += ok ? 0 : 1;
  EXPECT_GT(failures, 0u);
  EXPECT_LT(failures, a.size());
}

TEST(FaultInjectionTest, TornWriteIsDetectedByPageChecksum) {
  std::string path = TempPath("torn.dat");
  std::vector<uint8_t> old_payload(kPageDataSize, 0xAB);
  {
    PageFile f;
    ASSERT_TRUE(f.Open(path, true).ok());
    ASSERT_TRUE(f.AllocatePage().ok());
    ASSERT_TRUE(f.WritePage(0, old_payload.data()).ok());
    ASSERT_TRUE(f.Close().ok());
  }
  {
    FaultyEnv env(nullptr, /*seed=*/7);
    FaultSpec spec;
    spec.fail_after = 0;
    spec.torn = true;
    env.Arm(IoOp::kWrite, spec);
    PageFile f;
    ASSERT_TRUE(f.Open(path, /*truncate=*/false, &env).ok());
    std::vector<uint8_t> new_payload(kPageDataSize, 0xCD);
    EXPECT_EQ(f.WritePage(0, new_payload.data()).code(),
              Status::Code::kIoError);
  }
  // Reopen with a healthy env. The page now mixes new-prefix and
  // old-suffix bytes; the checksum must catch it. (Whatever happens,
  // the reader must never see the new payload as if it committed.)
  PageFile f;
  Status open_status = f.Open(path, /*truncate=*/false);
  if (open_status.ok()) {
    std::vector<uint8_t> buf;
    Status s = f.ReadPage(0, &buf);
    if (s.ok()) {
      EXPECT_EQ(buf, old_payload) << "torn write surfaced silently";
    } else {
      EXPECT_EQ(s.code(), Status::Code::kCorruption) << s;
    }
  } else {
    // Page 0 is validated eagerly at open.
    EXPECT_EQ(open_status.code(), Status::Code::kCorruption) << open_status;
  }
}

TEST(FaultInjectionTest, SyncFailureSurfacesThroughRecordStore) {
  FaultyEnv env;
  RecordStore::Options options;
  options.path = TempPath("syncfail.dat");
  options.env = &env;
  RecordStore store;
  ASSERT_TRUE(store.Open(options).ok());
  ASSERT_TRUE(store.Append({1, 2, 3}).ok());
  env.Arm(IoOp::kSync, FaultSpec{/*fail_after=*/0});
  EXPECT_EQ(store.Flush().code(), Status::Code::kIoError);
  env.Disarm(IoOp::kSync);
  EXPECT_TRUE(store.Flush().ok());
}

// Satellite: a short read (truncated file) and a read() error are
// different failures and must say so — the first is kCorruption with
// byte counts, the second stays kIoError.
TEST(FaultInjectionTest, ShortReadDistinguishedFromReadError) {
  std::string path = TempPath("short.dat");
  FaultyEnv env;
  PageFile f;
  ASSERT_TRUE(f.Open(path, true, &env).ok());
  ASSERT_TRUE(f.AllocatePage().ok());
  ASSERT_TRUE(f.AllocatePage().ok());
  ASSERT_TRUE(f.Sync().ok());

  // Chop half of page 1 off behind the open descriptor's back.
  ASSERT_EQ(::truncate(path.c_str(), kPageSize + kPageSize / 2), 0);
  std::vector<uint8_t> buf;
  Status short_read = f.ReadPage(1, &buf);
  EXPECT_EQ(short_read.code(), Status::Code::kCorruption) << short_read;
  EXPECT_NE(short_read.message().find("short read"), std::string::npos);
  EXPECT_NE(short_read.message().find("got " +
                                      std::to_string(kPageSize / 2) +
                                      " of " + std::to_string(kPageSize)),
            std::string::npos)
      << short_read;

  // An injected read() error on the same page keeps its own identity.
  env.Arm(IoOp::kRead, FaultSpec{/*fail_after=*/0});
  Status read_error = f.ReadPage(1, &buf);
  EXPECT_EQ(read_error.code(), Status::Code::kIoError) << read_error;
  EXPECT_EQ(read_error.message().find("short read"), std::string::npos);
}

TEST(FaultInjectionTest, ManifestTruncationReportsByteCounts) {
  std::string path = TempPath("counts.manifest");
  ASSERT_TRUE(WriteIdManifest(path, {1, 2, 3}).ok());
  auto bytes = Env::Default()->ReadFileBytes(path);
  ASSERT_TRUE(bytes.ok());
  std::vector<uint8_t> half(*bytes);
  half.resize(9);  // Magic survives; payload and checksum do not.
  ASSERT_TRUE(Env::Default()->WriteFileBytes(path, half).ok());
  auto loaded = ReadIdManifest(path);
  EXPECT_EQ(loaded.status().code(), Status::Code::kCorruption);
  EXPECT_NE(loaded.status().message().find("bytes"), std::string::npos)
      << loaded.status();
}

TEST(FaultInjectionTest, PreChecksumManifestMagicRejected) {
  // A v1 manifest ends its magic with '1'; readers must name the
  // version instead of crashing or mis-parsing.
  std::string path = TempPath("v1.manifest");
  std::vector<uint8_t> v1 = {'S', 'A', 'M', 'A', 'I', 'D', 'S', '1',
                             0,   0,   0,   0};
  ASSERT_TRUE(Env::Default()->WriteFileBytes(path, v1).ok());
  auto loaded = ReadIdManifest(path);
  EXPECT_EQ(loaded.status().code(), Status::Code::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("version"), std::string::npos)
      << loaded.status();
}

TEST(FaultInjectionTest, BufferPoolEvictionSurfacesWriteErrors) {
  FaultyEnv env;
  PageFile f;
  ASSERT_TRUE(f.Open(TempPath("evict_w.dat"), true, &env).ok());
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(f.AllocatePage().ok());
  BufferPool pool(&f, 1);
  {
    auto page = pool.MutablePage(0);
    ASSERT_TRUE(page.ok());
    page->mutable_data()[0] = 0x1;
  }  // Unpin so page 0 is an eviction candidate.
  env.Arm(IoOp::kWrite, FaultSpec{/*fail_after=*/env.op_count(IoOp::kWrite)});
  // Fetching another page must evict the dirty one and fail loudly.
  EXPECT_FALSE(pool.Fetch(1).ok());
  env.Disarm(IoOp::kWrite);
  EXPECT_TRUE(pool.Fetch(1).ok());
}

// Satellite: the read half of an eviction. The dirty victim writes
// back fine, then the incoming page's read fails — the error must
// reach the caller and the pool must stay usable, with the victim's
// data already safe on disk.
TEST(FaultInjectionTest, BufferPoolEvictionSurfacesReadErrors) {
  FaultyEnv env;
  PageFile f;
  ASSERT_TRUE(f.Open(TempPath("evict_r.dat"), true, &env).ok());
  for (int i = 0; i < 2; ++i) ASSERT_TRUE(f.AllocatePage().ok());
  BufferPool pool(&f, 1);
  {
    auto page = pool.MutablePage(0);
    ASSERT_TRUE(page.ok());
    page->mutable_data()[0] = 0x77;
  }
  // Every read from here fails; the write-back of dirty page 0 during
  // eviction is unaffected.
  env.Arm(IoOp::kRead, FaultSpec{/*fail_after=*/env.op_count(IoOp::kRead)});
  auto fetch = pool.Fetch(1);
  ASSERT_FALSE(fetch.ok());
  EXPECT_EQ(fetch.status().code(), Status::Code::kIoError) << fetch.status();
  EXPECT_EQ(pool.pinned_pages(), 0u) << "failed fetch leaked a pin";

  // Heal the env: the pool still works and the victim's write-back
  // made it to disk before the read failed.
  env.Disarm(IoOp::kRead);
  auto reread = pool.Fetch(0);
  ASSERT_TRUE(reread.ok()) << reread.status();
  EXPECT_EQ(reread->data()[0], 0x77);
  EXPECT_TRUE(pool.Fetch(1).ok());
}

// Same propagation through the full RecordStore read path.
TEST(FaultInjectionTest, RecordStoreReadFailurePropagates) {
  FaultyEnv env;
  RecordStore::Options options;
  options.path = TempPath("rs_read.dat");
  options.buffer_pool_pages = 1;
  options.env = &env;
  RecordStore store;
  ASSERT_TRUE(store.Open(options).ok());
  std::vector<RecordId> ids;
  // Two pages of records so reading the first evicts the second.
  std::vector<uint8_t> record(2000, 0x11);
  for (int i = 0; i < 4; ++i) {
    auto id = store.Append(record);
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  ASSERT_TRUE(store.Flush().ok());
  env.Arm(IoOp::kRead, FaultSpec{/*fail_after=*/env.op_count(IoOp::kRead)});
  std::vector<uint8_t> out;
  Status s = store.Read(ids.front(), &out);
  EXPECT_EQ(s.code(), Status::Code::kIoError) << s;
  env.Disarm(IoOp::kRead);
  ASSERT_TRUE(store.Read(ids.front(), &out).ok());
  EXPECT_EQ(out, record);
}

TEST(FailPointsTest, ArmedPointFiresOnceArmedAndClears) {
  FailPoints::ClearAll();
  EXPECT_TRUE(FailPoints::Trigger("test.point").ok());
  FaultyEnv env;
  FailPoints::Arm("test.point", Status::IoError("boom"), &env);
  Status s = FailPoints::Trigger("test.point");
  EXPECT_EQ(s.code(), Status::Code::kIoError);
  EXPECT_TRUE(env.crashed());
  FailPoints::ClearAll();
  EXPECT_TRUE(FailPoints::Trigger("test.point").ok());
}

}  // namespace
}  // namespace sama

// Write-failure injection: the storage stack must surface IoError
// through every layer instead of losing data silently.

#include <gtest/gtest.h>

#include "storage/buffer_pool.h"
#include "storage/record_store.h"

namespace sama {
namespace {

TEST(FaultInjectionTest, PageFileWriteFailsOnCue) {
  PageFile f;
  ASSERT_TRUE(f.Open(testing::TempDir() + "/fi1.dat", true).ok());
  ASSERT_TRUE(f.AllocatePage().ok());
  f.InjectWriteFailureAfter(0);
  uint8_t page[kPageSize] = {};
  EXPECT_EQ(f.WritePage(0, page).code(), Status::Code::kIoError);
  EXPECT_FALSE(f.AllocatePage().ok());
  f.InjectWriteFailureAfter(UINT64_MAX);  // Clear.
  EXPECT_TRUE(f.WritePage(0, page).ok());
}

TEST(FaultInjectionTest, BufferPoolEvictionSurfacesWriteErrors) {
  PageFile f;
  ASSERT_TRUE(f.Open(testing::TempDir() + "/fi2.dat", true).ok());
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(f.AllocatePage().ok());
  BufferPool pool(&f, 1);
  {
    auto page = pool.MutablePage(0);
    ASSERT_TRUE(page.ok());
    page->mutable_data()[0] = 0x1;
  }  // Unpin so page 0 is an eviction candidate.
  f.InjectWriteFailureAfter(0);
  // Fetching another page must evict the dirty one and fail loudly.
  EXPECT_FALSE(pool.Fetch(1).ok());
  f.InjectWriteFailureAfter(UINT64_MAX);
  EXPECT_TRUE(pool.Fetch(1).ok());
}

TEST(FaultInjectionTest, BufferPoolFlushSurfacesWriteErrors) {
  PageFile f;
  ASSERT_TRUE(f.Open(testing::TempDir() + "/fi3.dat", true).ok());
  ASSERT_TRUE(f.AllocatePage().ok());
  BufferPool pool(&f, 4);
  {
    auto page = pool.MutablePage(0);
    ASSERT_TRUE(page.ok());
    page->mutable_data()[0] = 0x2;
  }  // Unpin; a write-pinned page would be skipped by Flush.
  f.InjectWriteFailureAfter(0);
  EXPECT_EQ(pool.Flush().code(), Status::Code::kIoError);
  f.InjectWriteFailureAfter(UINT64_MAX);
  EXPECT_TRUE(pool.Flush().ok());
  // The data survived the failed attempt.
  std::vector<uint8_t> buf;
  ASSERT_TRUE(f.ReadPage(0, &buf).ok());
  EXPECT_EQ(buf[0], 0x2);
}

}  // namespace
}  // namespace sama

#include "storage/hypergraph_store.h"

#include <gtest/gtest.h>

namespace sama {
namespace {

class HypergraphStoreTest : public testing::TestWithParam<bool> {
 protected:
  HypergraphStore::Options Opts() {
    HypergraphStore::Options o;
    if (GetParam()) {
      std::string name =
          testing::UnitTest::GetInstance()->current_test_info()->name();
      for (char& c : name) {
        if (c == '/') c = '-';
      }
      o.path = testing::TempDir() + "/hg_" + name + ".dat";
    }
    return o;
  }
};

TEST_P(HypergraphStoreTest, VerticesRoundTrip) {
  HypergraphStore store;
  ASSERT_TRUE(store.Open(Opts()).ok());
  auto v0 = store.AddVertex("JeffRyser");
  auto v1 = store.AddVertex("A1589");
  ASSERT_TRUE(v0.ok());
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(*v0, 0u);
  EXPECT_EQ(*v1, 1u);
  std::string label;
  ASSERT_TRUE(store.GetVertex(*v1, &label).ok());
  EXPECT_EQ(label, "A1589");
  EXPECT_EQ(store.vertex_count(), 2u);
}

TEST_P(HypergraphStoreTest, HyperedgesGroupMultipleVertices) {
  // Figure 5: a hyperedge can connect any number of vertices — here one
  // per path element group.
  HypergraphStore store;
  ASSERT_TRUE(store.Open(Opts()).ok());
  std::vector<VertexId> members;
  for (int i = 0; i < 4; ++i) {
    auto v = store.AddVertex("n" + std::to_string(i));
    ASSERT_TRUE(v.ok());
    members.push_back(*v);
  }
  auto he = store.AddHyperedge(members);
  ASSERT_TRUE(he.ok());
  std::vector<VertexId> loaded;
  ASSERT_TRUE(store.GetHyperedge(*he, &loaded).ok());
  EXPECT_EQ(loaded, members);
  EXPECT_EQ(store.hyperedge_count(), 1u);
}

TEST_P(HypergraphStoreTest, RejectsInvalidHyperedges) {
  HypergraphStore store;
  ASSERT_TRUE(store.Open(Opts()).ok());
  EXPECT_FALSE(store.AddHyperedge({}).ok());           // Empty.
  EXPECT_FALSE(store.AddHyperedge({42}).ok());         // Unknown vertex.
  auto v = store.AddVertex("x");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(store.AddHyperedge({*v}).ok());          // Singleton OK.
}

TEST_P(HypergraphStoreTest, OutOfRangeLookups) {
  HypergraphStore store;
  ASSERT_TRUE(store.Open(Opts()).ok());
  std::string label;
  std::vector<VertexId> members;
  EXPECT_EQ(store.GetVertex(0, &label).code(), Status::Code::kOutOfRange);
  EXPECT_EQ(store.GetHyperedge(0, &members).code(),
            Status::Code::kOutOfRange);
}

TEST_P(HypergraphStoreTest, ManyElements) {
  HypergraphStore store;
  ASSERT_TRUE(store.Open(Opts()).ok());
  std::vector<VertexId> all;
  for (int i = 0; i < 500; ++i) {
    auto v = store.AddVertex("vertex_" + std::to_string(i));
    ASSERT_TRUE(v.ok());
    all.push_back(*v);
  }
  for (int i = 0; i + 1 < 500; ++i) {
    ASSERT_TRUE(store.AddHyperedge({all[i], all[i + 1]}).ok());
  }
  EXPECT_EQ(store.vertex_count(), 500u);
  EXPECT_EQ(store.hyperedge_count(), 499u);
  ASSERT_TRUE(store.Flush().ok());
  ASSERT_TRUE(store.DropCaches().ok());
  std::string label;
  ASSERT_TRUE(store.GetVertex(123, &label).ok());
  EXPECT_EQ(label, "vertex_123");
}

INSTANTIATE_TEST_SUITE_P(DiskAndMemory, HypergraphStoreTest,
                         testing::Bool(),
                         [](const testing::TestParamInfo<bool>& info) {
                           return info.param ? "Disk" : "Memory";
                         });

}  // namespace
}  // namespace sama

#include "storage/manifest.h"

#include <gtest/gtest.h>

#include <fstream>
#include <iterator>

namespace sama {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(ManifestTest, IdRoundTrip) {
  std::string path = TempPath("ids.manifest");
  std::vector<uint64_t> ids = {0, 1, 65536, uint64_t{1} << 40, 7};
  ASSERT_TRUE(WriteIdManifest(path, ids).ok());
  auto loaded = ReadIdManifest(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(*loaded, ids);
}

TEST(ManifestTest, EmptyIdList) {
  std::string path = TempPath("empty.manifest");
  ASSERT_TRUE(WriteIdManifest(path, {}).ok());
  auto loaded = ReadIdManifest(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->empty());
}

TEST(ManifestTest, RewriteReplacesContents) {
  std::string path = TempPath("rewrite.manifest");
  ASSERT_TRUE(WriteIdManifest(path, {1, 2, 3}).ok());
  ASSERT_TRUE(WriteIdManifest(path, {9}).ok());
  auto loaded = ReadIdManifest(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, (std::vector<uint64_t>{9}));
}

TEST(ManifestTest, MissingFileIsIoError) {
  auto loaded = ReadIdManifest(TempPath("nonexistent.manifest"));
  EXPECT_EQ(loaded.status().code(), Status::Code::kIoError);
}

TEST(ManifestTest, WrongMagicIsCorruption) {
  std::string path = TempPath("bad.manifest");
  ASSERT_TRUE(WriteBlobFile(path, {1, 2, 3}).ok());  // Blob magic.
  auto loaded = ReadIdManifest(path);                // Read as ids.
  EXPECT_EQ(loaded.status().code(), Status::Code::kCorruption);
}

TEST(ManifestTest, BlobRoundTrip) {
  std::string path = TempPath("blob.bin");
  std::vector<uint8_t> blob;
  for (int i = 0; i < 10000; ++i) blob.push_back(static_cast<uint8_t>(i));
  ASSERT_TRUE(WriteBlobFile(path, blob).ok());
  auto loaded = ReadBlobFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(*loaded, blob);
}

TEST(ManifestTest, TruncatedBlobIsCorruption) {
  std::string path = TempPath("trunc.bin");
  ASSERT_TRUE(WriteBlobFile(path, std::vector<uint8_t>(100, 0x5)).ok());
  // Chop the file.
  {
    std::vector<uint8_t> raw;
    {
      std::ifstream in(path, std::ios::binary);
      raw.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
    }
    raw.resize(raw.size() / 2);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(raw.data()),
              static_cast<std::streamsize>(raw.size()));
  }
  auto loaded = ReadBlobFile(path);
  EXPECT_EQ(loaded.status().code(), Status::Code::kCorruption);
}

}  // namespace
}  // namespace sama

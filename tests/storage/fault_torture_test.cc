// Crash/corruption torture for the index build commit protocol and the
// engine's degraded read path. The contract under test (DESIGN.md
// "Failure model"): a build that dies at ANY point leaves, after
// reopen-time recovery, either a fully usable index or a clean
// "rebuild me" state — never silent corruption — and a damaged index
// queried in degraded mode returns a deterministic top-k over the
// surviving records.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "common/fault_injection.h"
#include "core/engine.h"
#include "datasets/govtrack.h"
#include "index/index_verify.h"
#include "index/path_index.h"
#include "storage/page_file.h"
#include "text/thesaurus.h"

namespace sama {
namespace {

std::string FreshDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/torture_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

uint64_t TortureSeed() {
  const char* s = std::getenv("SAMA_TORTURE_SEED");
  return s == nullptr ? 1234u : static_cast<uint64_t>(std::atoll(s));
}

// A compact, order-sensitive digest of a result list; two runs agree
// iff their digests agree.
std::string AnswerDigest(const std::vector<Answer>& answers) {
  std::string d;
  for (const Answer& a : answers) {
    d += std::to_string(a.score) + "/" + std::to_string(a.lambda_total);
    for (const ScoredPath& p : a.parts) d += ":" + std::to_string(p.id);
    d += ";";
  }
  return d;
}

class TortureTest : public testing::Test {
 protected:
  void SetUp() override {
    FailPoints::ClearAll();
    triples_ = GovTrackFigure1Triples();
    // The ground truth: an in-memory index over the same graph.
    baseline_graph_ = DataGraph::FromTriples(triples_);
    ASSERT_TRUE(
        baseline_index_.Build(baseline_graph_, PathIndexOptions()).ok());
    thesaurus_ = Thesaurus::BuiltinEnglish();
    SamaEngine engine(&baseline_graph_, &baseline_index_, &thesaurus_);
    auto answers =
        engine.Execute(engine.BuildQueryGraph(GovTrackQuery1Patterns()), 3);
    ASSERT_TRUE(answers.ok());
    baseline_digest_ = AnswerDigest(*answers);
    ASSERT_FALSE(baseline_digest_.empty());
  }

  void TearDown() override { FailPoints::ClearAll(); }

  // Opens (recovering), rebuilding on kNotFound, then checks the index
  // verifies clean and answers the reference query exactly like the
  // pristine in-memory baseline. This is the "zero silent corruption"
  // oracle every crash scenario must pass.
  void RecoverAndCheck(const std::string& dir) {
    PathIndexOptions options;
    options.dir = dir;
    DataGraph graph = DataGraph::FromTriples(triples_);
    PathIndex index;
    Status open_status = index.Open(&graph, options);
    if (!open_status.ok()) {
      ASSERT_EQ(open_status.code(), Status::Code::kNotFound)
          << "recovery must be clean, got: " << open_status;
      DataGraph rebuilt_graph = DataGraph::FromTriples(triples_);
      PathIndex rebuilt;
      ASSERT_TRUE(rebuilt.Build(rebuilt_graph, options).ok());
      auto report = VerifyIndexDir(dir);
      ASSERT_TRUE(report.ok()) << report.status();
      EXPECT_TRUE(report->clean()) << report->ToString();
      CheckAnswers(rebuilt_graph, rebuilt);
      return;
    }
    auto report = VerifyIndexDir(dir);
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_TRUE(report->clean()) << report->ToString();
    CheckAnswers(graph, index);
  }

  void CheckAnswers(DataGraph& graph, PathIndex& index) {
    SamaEngine engine(&graph, &index, &thesaurus_);
    auto answers =
        engine.Execute(engine.BuildQueryGraph(GovTrackQuery1Patterns()), 3);
    ASSERT_TRUE(answers.ok()) << answers.status();
    EXPECT_EQ(AnswerDigest(*answers), baseline_digest_)
        << "recovered index answers differently from a pristine build";
  }

  std::vector<Triple> triples_;
  DataGraph baseline_graph_;
  PathIndex baseline_index_;
  Thesaurus thesaurus_;
  std::string baseline_digest_;
};

// Crash exactly at every registered protocol point, during a REBUILD
// over an existing committed index — the hardest case, because the
// commit protocol must not destroy the old index before the new one is
// complete (or must leave a cleanly recoverable absence).
TEST_F(TortureTest, CrashAtEveryRegisteredPoint) {
  for (const std::string& point : PathIndex::BuildCrashPoints()) {
    SCOPED_TRACE(point);
    std::string dir = FreshDir("point_" + point);
    {
      DataGraph graph = DataGraph::FromTriples(triples_);
      PathIndexOptions options;
      options.dir = dir;
      PathIndex index;
      ASSERT_TRUE(index.Build(graph, options).ok());
    }
    {
      FaultyEnv env;
      FailPoints::Arm(point, Status::IoError("simulated crash at " + point),
                      &env);
      DataGraph graph = DataGraph::FromTriples(triples_);
      PathIndexOptions options;
      options.dir = dir;
      options.env = &env;
      PathIndex index;
      Status s = index.Build(graph, options);
      EXPECT_FALSE(s.ok()) << "armed point '" << point << "' never fired";
      EXPECT_TRUE(env.crashed());
      FailPoints::ClearAll();
    }
    RecoverAndCheck(dir);
  }
}

// Every registered crash point is actually exercised by a real disk
// build — the catalogue cannot rot.
TEST_F(TortureTest, CrashPointCatalogueIsLive) {
  std::string dir = FreshDir("catalogue");
  DataGraph graph = DataGraph::FromTriples(triples_);
  PathIndexOptions options;
  options.dir = dir;
  PathIndex index;
  ASSERT_TRUE(index.Build(graph, options).ok());
  std::vector<std::string> seen = FailPoints::Seen();
  for (const std::string& point : PathIndex::BuildCrashPoints()) {
    EXPECT_TRUE(std::find(seen.begin(), seen.end(), point) != seen.end())
        << "registered crash point '" << point
        << "' was not reached by a disk build";
  }
}

// Randomized kill-the-process torture: crash the env after a varying
// number of write/sync/rename operations, reopen with a healthy env,
// and require clean recovery every single time. Seeded (override with
// SAMA_TORTURE_SEED) and iterated 100+ times; state accumulates in one
// directory across iterations so recovery also faces leftovers of
// earlier crashes.
TEST_F(TortureTest, RandomizedCrashRecoveryLoop) {
  constexpr int kIterations = 102;
  const uint64_t seed = TortureSeed();
  std::string dir = FreshDir("random");
  int crashed_builds = 0;
  for (int i = 0; i < kIterations; ++i) {
    SCOPED_TRACE("iteration " + std::to_string(i) + " seed " +
                 std::to_string(seed));
    FaultyEnv env(nullptr, seed + static_cast<uint64_t>(i));
    // Walk the crash point through each op class's call sequence; tear
    // alternate writes so mixed failure modes meet the same recovery
    // path. The moduli roughly match how often a small build performs
    // each op, so most iterations really do die mid-build.
    FaultSpec spec;
    spec.crash = true;
    spec.torn = (i % 2) == 0;
    IoOp klass;
    switch (i % 3) {
      case 0:
        klass = IoOp::kSync;
        spec.fail_after = static_cast<uint64_t>((i * 5) % 24);
        break;
      case 1:
        klass = IoOp::kWrite;
        spec.fail_after = static_cast<uint64_t>((i * 7) % 60);
        break;
      default:
        klass = IoOp::kRename;
        spec.fail_after = static_cast<uint64_t>((i / 3) % 10);
        break;
    }
    env.Arm(klass, spec);
    {
      DataGraph graph = DataGraph::FromTriples(triples_);
      PathIndexOptions options;
      options.dir = dir;
      options.env = &env;
      PathIndex index;
      Status s = index.Build(graph, options);
      if (!s.ok()) ++crashed_builds;
      // A build whose op count never reached fail_after legitimately
      // succeeds; both outcomes flow into the same oracle.
    }
    RecoverAndCheck(dir);
  }
  // The schedule must actually have killed builds, or the loop proves
  // nothing.
  EXPECT_GT(crashed_builds, kIterations / 3)
      << "fault schedule too lenient — most builds survived";
}

// Acceptance bar: flipping any single byte of a data page must surface
// as a checksum/format error, never as silently different data.
// Exhaustively covers every byte position of one page, plus one flip
// in every page of the store through the real read path.
TEST_F(TortureTest, SingleByteFlipIsAlwaysDetected) {
  std::string dir = FreshDir("bitflip");
  {
    DataGraph graph = DataGraph::FromTriples(triples_);
    PathIndexOptions options;
    options.dir = dir;
    PathIndex index;
    ASSERT_TRUE(index.Build(graph, options).ok());
  }
  std::string path = dir + "/paths.dat";
  Env* env = Env::Default();
  auto fd = env->OpenFile(path, /*truncate=*/false);
  ASSERT_TRUE(fd.ok());
  auto size = env->FileSizeFd(*fd, path);
  ASSERT_TRUE(size.ok());
  uint64_t pages = *size / kPageSize;
  ASSERT_GE(pages, 2u);

  // Exhaustive in-memory sweep over page 1 (a data page): every byte,
  // flipped, must fail verification. A flip of the version byte
  // surfaces as kInvalidArgument rather than kCorruption; both are
  // loud detection, silence is the only failure.
  uint8_t page[kPageSize];
  auto got = env->PRead(*fd, path, kPageSize, page, kPageSize);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(*got, kPageSize);
  for (size_t pos = 0; pos < kPageSize; ++pos) {
    uint8_t flipped[kPageSize];
    std::copy(page, page + kPageSize, flipped);
    flipped[pos] ^= 0xFF;
    Status s = VerifyPageBytes(flipped, 1, path);
    ASSERT_FALSE(s.ok()) << "flip at byte " << pos << " went undetected";
    ASSERT_TRUE(s.code() == Status::Code::kCorruption ||
                s.code() == Status::Code::kInvalidArgument)
        << s;
  }

  // Through the real read path: one flip per page, detected by
  // ReadPage (or, for the eagerly validated page 0, by Open), restored
  // afterwards.
  for (uint64_t id = 0; id < pages; ++id) {
    uint64_t offset = id * kPageSize + 512 + (id * 13) % 3000;
    uint8_t original;
    auto r = env->PRead(*fd, path, offset, &original, 1);
    ASSERT_TRUE(r.ok());
    uint8_t corrupt = original ^ 0x40;
    ASSERT_TRUE(env->PWrite(*fd, path, offset, &corrupt, 1).ok());

    PageFile f;
    Status open_status = f.Open(path, /*truncate=*/false);
    if (id == 0) {
      EXPECT_EQ(open_status.code(), Status::Code::kCorruption)
          << open_status;
    } else {
      ASSERT_TRUE(open_status.ok()) << open_status;
      std::vector<uint8_t> buf;
      EXPECT_EQ(f.ReadPage(static_cast<PageId>(id), &buf).code(),
                Status::Code::kCorruption)
          << "flip in page " << id << " went undetected";
      (void)f.Close();
    }
    ASSERT_TRUE(env->PWrite(*fd, path, offset, &original, 1).ok());
  }

  // The misdirected-write case the id-folded checksum catches: a page's
  // bytes stored verbatim at another page's offset are internally
  // consistent but must still fail.
  uint8_t page1[kPageSize];
  ASSERT_TRUE(env->PRead(*fd, path, kPageSize, page1, kPageSize).ok());
  EXPECT_TRUE(VerifyPageBytes(page1, 1, path).ok());
  EXPECT_EQ(VerifyPageBytes(page1, 0, path).code(),
            Status::Code::kCorruption)
      << "misdirected write not caught by the id-folded checksum";

  // `sama_cli verify` sees the same damage through VerifyIndexDir.
  uint8_t corrupt = page1[100] ^ 0x01;
  ASSERT_TRUE(env->PWrite(*fd, path, kPageSize + 100, &corrupt, 1).ok());
  ASSERT_TRUE(env->CloseFile(*fd, path).ok());
  auto report = VerifyIndexDir(dir);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->clean());
  EXPECT_GE(report->error_count(), 1u);
}

// Degraded reads: with candidate pages destroyed, a non-strict engine
// still answers — deterministically, at any thread count, with the
// damage counted — while a strict engine refuses.
TEST_F(TortureTest, DegradedQueryIsDeterministicAndCounted) {
  std::string dir = FreshDir("degraded");
  DataGraph graph = DataGraph::FromTriples(triples_);
  PathIndexOptions options;
  options.dir = dir;
  PathIndex index;
  ASSERT_TRUE(index.Build(graph, options).ok());

  // Flip one byte in every odd page of the path store, behind the open
  // index's back, then empty its caches so reads hit the damage. Page
  // 0 (the store header, revalidated only at open) stays intact.
  std::string path = dir + "/paths.dat";
  Env* env = Env::Default();
  auto fd = env->OpenFile(path, /*truncate=*/false);
  ASSERT_TRUE(fd.ok());
  auto size = env->FileSizeFd(*fd, path);
  ASSERT_TRUE(size.ok());
  uint64_t pages = *size / kPageSize;
  ASSERT_GE(pages, 2u);
  for (uint64_t id = 1; id < pages; id += 2) {
    uint8_t b;
    ASSERT_TRUE(env->PRead(*fd, path, id * kPageSize + 777, &b, 1).ok());
    b ^= 0x20;
    ASSERT_TRUE(env->PWrite(*fd, path, id * kPageSize + 777, &b, 1).ok());
  }
  ASSERT_TRUE(env->CloseFile(*fd, path).ok());
  ASSERT_TRUE(index.DropCaches().ok());

  auto run = [&](size_t threads, bool strict) {
    EngineOptions eo;
    eo.num_threads = threads;
    eo.strict_io = strict;
    SamaEngine engine(&graph, &index, &thesaurus_, eo);
    QueryStats stats;
    auto answers = engine.Execute(
        engine.BuildQueryGraph(GovTrackQuery1Patterns()), 3, &stats);
    return std::make_pair(std::move(answers), stats);
  };

  auto serial = run(1, /*strict=*/false);
  ASSERT_TRUE(serial.first.ok()) << serial.first.status();
  EXPECT_GT(serial.second.corrupt_records_skipped, 0u)
      << "damaged pages were read without being counted";

  ASSERT_TRUE(index.DropCaches().ok());
  auto parallel = run(3, /*strict=*/false);
  ASSERT_TRUE(parallel.first.ok()) << parallel.first.status();
  EXPECT_EQ(AnswerDigest(*serial.first), AnswerDigest(*parallel.first))
      << "degraded top-k depends on thread count";
  EXPECT_EQ(serial.second.corrupt_records_skipped,
            parallel.second.corrupt_records_skipped);

  ASSERT_TRUE(index.DropCaches().ok());
  auto strict = run(1, /*strict=*/true);
  ASSERT_FALSE(strict.first.ok()) << "strict_io accepted a damaged read";
  EXPECT_EQ(strict.first.status().code(), Status::Code::kCorruption)
      << strict.first.status();
}

}  // namespace
}  // namespace sama

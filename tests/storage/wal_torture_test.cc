// Crash-at-every-point torture for the durable update path (DESIGN.md
// §12). The contract: an update acked with durable semantics survives
// any crash; a torn or unsynced tail is truncated, never applied; and
// after recovery the store answers queries byte-identically to a fresh
// offline build over the same logical triple set — at any query thread
// count. Every registered WAL/checkpoint/replay failpoint is crashed
// at, across several seeded workloads (override with SAMA_TORTURE_SEED,
// as for the build torture in fault_torture_test.cc).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "core/engine.h"
#include "datasets/govtrack.h"
#include "index/index_verify.h"
#include "index/path_index.h"
#include "storage/wal.h"
#include "text/thesaurus.h"

namespace sama {
namespace {

Term Gov(const std::string& local) {
  return Term::Iri("http://gov.example.org/" + local);
}

std::string FreshDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/wal_torture_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

uint64_t TortureSeed() {
  const char* s = std::getenv("SAMA_TORTURE_SEED");
  return s == nullptr ? 1234u : static_cast<uint64_t>(std::atoll(s));
}

// Digest over scores and bound triples only — path ids differ between
// an incrementally maintained index and an offline rebuild, and the
// byte-identical contract is about the answers.
std::string AnswerDigest(const std::vector<Answer>& answers,
                         const TermDictionary& dict) {
  std::string d;
  for (const Answer& a : answers) {
    d += std::to_string(a.score) + "|";
    std::vector<std::string> bound;
    for (const Triple& t : a.ToTriples(dict)) {
      bound.push_back(t.subject.ToString() + " " + t.predicate.ToString() +
                      " " + t.object.ToString());
    }
    std::sort(bound.begin(), bound.end());
    for (const std::string& b : bound) d += b + ";";
    d += "#";
  }
  return d;
}

class WalTortureTest : public testing::Test {
 protected:
  void SetUp() override {
    FailPoints::ClearAll();
    base_ = GovTrackFigure1Triples();
    thesaurus_ = Thesaurus::BuiltinEnglish();
    male_patterns_ = {
        {Term::Variable("p"), Gov("gender"), Term::Literal("Male")}};
  }
  void TearDown() override { FailPoints::ClearAll(); }

  // A seeded workload of `n` updates. Inserts attach brand-new persons
  // (new sources) to existing bills; deletes target base gender edges
  // or earlier inserts. No op ever strips a node of its last out-edge
  // while leaving in-edges dangling from the query's perspective —
  // sources stay sources.
  std::vector<TripleUpdate> MakeWorkload(uint64_t seed, int n) {
    std::mt19937_64 rng(seed);
    std::vector<TripleUpdate> ops;
    std::vector<Triple> inserted;
    const std::vector<Term> bills = {Gov("B1432"), Gov("B0532"),
                                     Gov("B0045")};
    const std::vector<std::string> males = {"JeffRyser", "KeithFarmer",
                                            "JohnMcRie", "PierceDickes"};
    for (int i = 0; i < n; ++i) {
      bool do_delete = !inserted.empty() && rng() % 3 == 0;
      if (do_delete && rng() % 2 == 0) {
        // Delete one of the base gender edges (absent repeats are
        // journalled no-ops, which recovery must also replay benignly).
        std::string who = males[rng() % males.size()];
        ops.push_back({TripleUpdate::Op::kDelete,
                       {Gov(who), Gov("gender"), Term::Literal("Male")}});
      } else if (do_delete) {
        Triple gone = inserted[rng() % inserted.size()];
        ops.push_back({TripleUpdate::Op::kDelete, gone});
      } else {
        std::string who = "P" + std::to_string(i) + "_" +
                          std::to_string(seed % 1000);
        Triple t{Gov(who),
                 rng() % 2 == 0 ? Gov("sponsor") : Gov("gender"),
                 Term()};
        t.object = t.predicate == Gov("gender")
                       ? Term::Literal("Male")
                       : bills[rng() % bills.size()];
        inserted.push_back(t);
        ops.push_back({TripleUpdate::Op::kInsert, t});
      }
    }
    return ops;
  }

  // The logical triple set after the first `n` workload ops.
  std::vector<Triple> Applied(const std::vector<TripleUpdate>& ops,
                              uint64_t n) {
    std::vector<Triple> triples = base_;
    for (uint64_t i = 0; i < n && i < ops.size(); ++i) {
      const TripleUpdate& u = ops[i];
      if (u.op == TripleUpdate::Op::kInsert) {
        triples.push_back(u.triple);
      } else {
        for (auto it = triples.begin(); it != triples.end(); ++it) {
          if (it->subject == u.triple.subject &&
              it->predicate == u.triple.predicate &&
              it->object == u.triple.object) {
            triples.erase(it);
            break;
          }
        }
      }
    }
    return triples;
  }

  std::string OracleDigest(const std::vector<Triple>& triples, size_t k) {
    DataGraph graph = DataGraph::FromTriples(triples);
    PathIndex index;
    EXPECT_TRUE(index.Build(graph, PathIndexOptions()).ok());
    SamaEngine engine(&graph, &index, &thesaurus_);
    auto answers =
        engine.Execute(engine.BuildQueryGraph(male_patterns_), k);
    EXPECT_TRUE(answers.ok()) << answers.status();
    return AnswerDigest(*answers, graph.dict());
  }

  // Builds a committed disk index over the base graph and journals the
  // first `healthy_ops` workload ops with a healthy env, so the WAL has
  // records for the crashed phase to replay through wal.replay.
  void SeedIndexDir(const std::string& dir,
                    const std::vector<TripleUpdate>& ops, int healthy_ops,
                    uint64_t* acked_lsn) {
    DataGraph graph = DataGraph::FromTriples(base_);
    PathIndexOptions options;
    options.dir = dir;
    PathIndex index;
    ASSERT_TRUE(index.Build(graph, options).ok());
    SamaEngine engine(&graph, &index, &thesaurus_);
    UpdateOptions uo;
    uo.checkpoint_every = 0;  // Keep every record in the WAL.
    uo.segment_bytes = 256;
    ASSERT_TRUE(engine.EnableUpdates(&graph, &index, uo).ok());
    for (int i = 0; i < healthy_ops; ++i) {
      auto lsn = engine.ApplyUpdate(ops[static_cast<size_t>(i)]);
      ASSERT_TRUE(lsn.ok()) << lsn.status();
      *acked_lsn = *lsn;
    }
  }

  // Healthy recovery + the full oracle battery: verify must be clean,
  // no acked update may be lost, and answers at 1 and 4 threads must be
  // byte-identical to an offline rebuild over base + the first
  // last_update_lsn() workload ops.
  void RecoverAndCheck(const std::string& dir,
                       const std::vector<TripleUpdate>& ops,
                       uint64_t acked_lsn) {
    DataGraph graph = DataGraph::FromTriples(base_);
    PathIndexOptions options;
    options.dir = dir;
    PathIndex index;
    ASSERT_TRUE(index.Open(&graph, options).ok());
    SamaEngine engine(&graph, &index, &thesaurus_);
    ASSERT_TRUE(engine.EnableUpdates(&graph, &index).ok());

    // Recovery (Open + replay) has truncated any torn tail; the store
    // must now verify clean, WAL included.
    auto report = VerifyIndexDir(dir);
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_TRUE(report->clean()) << report->ToString();

    uint64_t n = engine.last_update_lsn();
    EXPECT_GE(n, acked_lsn) << "an acked update was lost";
    EXPECT_LE(n, ops.size()) << "recovery invented updates";

    std::string oracle = OracleDigest(Applied(ops, n), 10);
    for (size_t threads : {size_t{1}, size_t{4}}) {
      EngineOptions eo;
      eo.num_threads = threads;
      SamaEngine reader(&graph, &index, &thesaurus_, eo);
      auto answers =
          reader.Execute(reader.BuildQueryGraph(male_patterns_), 10);
      ASSERT_TRUE(answers.ok()) << answers.status();
      EXPECT_EQ(AnswerDigest(*answers, graph.dict()), oracle)
          << "recovered answers diverge from the offline rebuild at "
          << threads << " thread(s), lsn " << n;
    }
  }

  std::vector<Triple> base_;
  Thesaurus thesaurus_;
  std::vector<Triple> male_patterns_;
};

// The matrix: crash at every registered update-path failpoint × three
// seeded workloads. Phase A journals 3 ops healthily (so wal.replay has
// records to chew through), then reopens with the point armed to down
// the env — tiny 256-byte segments force rotation and checkpoint_every
// = 4 forces the checkpoint protocol mid-workload, so every point
// actually fires. Phase B recovers with a healthy env and runs the full
// byte-identical oracle.
TEST_F(WalTortureTest, CrashAtEveryUpdatePoint) {
  const uint64_t base_seed = TortureSeed();
  for (const std::string& point : SamaEngine::UpdateCrashPoints()) {
    for (uint64_t s = 0; s < 3; ++s) {
      const uint64_t seed = base_seed + s;
      SCOPED_TRACE(point + " seed " + std::to_string(seed));
      std::vector<TripleUpdate> ops = MakeWorkload(seed, 12);
      std::string dir =
          FreshDir("point_" + point + "_" + std::to_string(seed));
      uint64_t acked_lsn = 0;
      SeedIndexDir(dir, ops, 3, &acked_lsn);
      ASSERT_EQ(acked_lsn, 3u);

      {
        FaultyEnv env(nullptr, seed);
        DataGraph graph = DataGraph::FromTriples(base_);
        PathIndexOptions options;
        options.dir = dir;
        options.env = &env;
        PathIndex index;
        ASSERT_TRUE(index.Open(&graph, options).ok());
        FailPoints::Arm(point,
                        Status::IoError("simulated crash at " + point),
                        &env);
        SamaEngine engine(&graph, &index, &thesaurus_);
        UpdateOptions uo;
        uo.segment_bytes = 256;   // Rotate every couple of records.
        uo.checkpoint_every = 4;  // Checkpoint mid-workload.
        uo.env = &env;
        Status enabled = engine.EnableUpdates(&graph, &index, uo);
        if (enabled.ok()) {
          for (size_t i = 3; i < ops.size(); ++i) {
            auto lsn = engine.ApplyUpdate(ops[i]);
            if (!lsn.ok()) break;
            acked_lsn = *lsn;
          }
        }
        EXPECT_TRUE(env.crashed())
            << "armed point '" << point << "' never fired";
        FailPoints::ClearAll();
      }
      RecoverAndCheck(dir, ops, acked_lsn);
    }
  }
}

// Every registered update crash point is reached by one healthy
// journal → reopen → replay → rotate → checkpoint cycle, so the
// catalogue cannot rot.
TEST_F(WalTortureTest, UpdateCrashPointCatalogueIsLive) {
  std::string dir = FreshDir("catalogue");
  std::vector<TripleUpdate> ops = MakeWorkload(TortureSeed(), 10);
  uint64_t acked = 0;
  SeedIndexDir(dir, ops, 3, &acked);  // Journals records to replay.
  {
    DataGraph graph = DataGraph::FromTriples(base_);
    PathIndexOptions options;
    options.dir = dir;
    PathIndex index;
    ASSERT_TRUE(index.Open(&graph, options).ok());
    SamaEngine engine(&graph, &index, &thesaurus_);
    UpdateOptions uo;
    uo.segment_bytes = 256;
    uo.checkpoint_every = 4;
    ASSERT_TRUE(engine.EnableUpdates(&graph, &index, uo).ok());
    for (size_t i = 3; i < ops.size(); ++i) {
      ASSERT_TRUE(engine.ApplyUpdate(ops[i]).ok());
    }
    ASSERT_TRUE(engine.CheckpointUpdates().ok());
  }
  std::vector<std::string> seen = FailPoints::Seen();
  for (const std::string& point : SamaEngine::UpdateCrashPoints()) {
    EXPECT_TRUE(std::find(seen.begin(), seen.end(), point) != seen.end())
        << "registered update crash point '" << point
        << "' was not reached by a healthy update cycle";
  }
}

// `sama_cli verify` (VerifyIndexDir) flags a flipped byte inside a WAL
// record and a torn tail; recovery then truncates the tail and the
// store verifies clean again.
TEST_F(WalTortureTest, VerifyFlagsWalDamageAndRecoveryHealsTheTail) {
  std::string dir = FreshDir("verify_wal");
  std::vector<TripleUpdate> ops = MakeWorkload(TortureSeed(), 4);
  uint64_t acked = 0;
  SeedIndexDir(dir, ops, 4, &acked);
  ASSERT_EQ(acked, 4u);
  auto clean = VerifyIndexDir(dir);
  ASSERT_TRUE(clean.ok());
  ASSERT_TRUE(clean->clean()) << clean->ToString();

  // Torn tail: garbage appended to the last segment. Verify reports it;
  // recovery truncates it without losing the acked updates.
  auto segments = Wal::ScanDir(dir + "/wal", Env::Default());
  ASSERT_TRUE(segments.ok());
  ASSERT_FALSE(segments->empty());
  std::string last = dir + "/wal/" + segments->back().name;
  {
    std::ofstream out(last, std::ios::binary | std::ios::app);
    out << "garbage-that-is-not-a-record";
  }
  auto torn = VerifyIndexDir(dir);
  ASSERT_TRUE(torn.ok());
  EXPECT_FALSE(torn->clean()) << "torn tail went unreported";
  RecoverAndCheck(dir, ops, acked);
  auto healed = VerifyIndexDir(dir);
  ASSERT_TRUE(healed.ok());
  EXPECT_TRUE(healed->clean()) << healed->ToString();

  // Corruption: flip one payload byte of the FIRST record. That record
  // was already applied and checkpointed away by nothing (checkpoint
  // LSN 0), so verify must flag the damage loudly.
  std::string first = dir + "/wal/" + segments->front().name;
  {
    std::fstream f(first,
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(Wal::kRecordHeaderSize));
    char b;
    f.seekg(static_cast<std::streamoff>(Wal::kRecordHeaderSize));
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x01);
    f.seekp(static_cast<std::streamoff>(Wal::kRecordHeaderSize));
    f.write(&b, 1);
  }
  auto corrupt = VerifyIndexDir(dir);
  ASSERT_TRUE(corrupt.ok());
  EXPECT_FALSE(corrupt->clean()) << "flipped WAL byte went undetected";
}

// Deleting a WAL segment recovery still needs (records past the
// checkpoint) is detected as checkpoint inconsistency.
TEST_F(WalTortureTest, VerifyFlagsMissingReplayRecords) {
  std::string dir = FreshDir("verify_gap");
  std::vector<TripleUpdate> ops = MakeWorkload(TortureSeed() + 7, 8);
  uint64_t acked = 0;
  SeedIndexDir(dir, ops, 8, &acked);  // 256-byte segments: several files.
  auto segments = Wal::ScanDir(dir + "/wal", Env::Default());
  ASSERT_TRUE(segments.ok());
  ASSERT_GE(segments->size(), 2u) << "workload did not rotate";
  ASSERT_TRUE(Env::Default()
                  ->RemoveFile(dir + "/wal/" + segments->front().name)
                  .ok());
  auto report = VerifyIndexDir(dir);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->clean())
      << "deleted replay records went undetected";
}

}  // namespace
}  // namespace sama

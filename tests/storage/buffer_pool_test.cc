#include "storage/buffer_pool.h"

#include <gtest/gtest.h>

#include <cstring>

namespace sama {
namespace {

class BufferPoolTest : public testing::Test {
 protected:
  void SetUp() override {
    path_ = testing::TempDir() + "/bp_" +
            testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".dat";
    ASSERT_TRUE(file_.Open(path_, true).ok());
    for (int i = 0; i < 8; ++i) ASSERT_TRUE(file_.AllocatePage().ok());
  }

  std::string path_;
  PageFile file_;
};

TEST_F(BufferPoolTest, FetchCachesPages) {
  BufferPool pool(&file_, 4);
  uint64_t initial_reads = file_.reads();
  ASSERT_TRUE(pool.Fetch(0).ok());
  ASSERT_TRUE(pool.Fetch(0).ok());
  ASSERT_TRUE(pool.Fetch(0).ok());
  EXPECT_EQ(file_.reads(), initial_reads + 1);  // One physical read.
  EXPECT_EQ(pool.stats().hits, 2u);
  EXPECT_EQ(pool.stats().misses, 1u);
}

TEST_F(BufferPoolTest, EvictsLeastRecentlyUsed) {
  BufferPool pool(&file_, 2);
  ASSERT_TRUE(pool.Fetch(0).ok());
  ASSERT_TRUE(pool.Fetch(1).ok());
  ASSERT_TRUE(pool.Fetch(0).ok());  // Touch 0: now 1 is LRU.
  ASSERT_TRUE(pool.Fetch(2).ok());  // Evicts 1.
  EXPECT_EQ(pool.resident_pages(), 2u);
  pool.ResetStats();
  ASSERT_TRUE(pool.Fetch(0).ok());
  EXPECT_EQ(pool.stats().hits, 1u);  // 0 survived.
  ASSERT_TRUE(pool.Fetch(1).ok());
  EXPECT_EQ(pool.stats().misses, 1u);  // 1 was evicted.
}

TEST_F(BufferPoolTest, DirtyPagesWrittenBackOnEviction) {
  {
    BufferPool pool(&file_, 1);
    {
      auto page = pool.MutablePage(3);
      ASSERT_TRUE(page.ok());
      page->mutable_data()[0] = 0x77;
    }  // Guard released: page 3 is evictable again.
    ASSERT_TRUE(pool.Fetch(4).ok());  // Evicts dirty page 3.
  }
  std::vector<uint8_t> buf;
  ASSERT_TRUE(file_.ReadPage(3, &buf).ok());
  EXPECT_EQ(buf[0], 0x77);
}

TEST_F(BufferPoolTest, FlushPersistsDirtyPages) {
  BufferPool pool(&file_, 4);
  {
    auto page = pool.MutablePage(2);
    ASSERT_TRUE(page.ok());
    page->mutable_data()[10] = 0x42;
  }  // Release the write pin; Flush skips actively-written pages.
  ASSERT_TRUE(pool.Flush().ok());
  std::vector<uint8_t> buf;
  ASSERT_TRUE(file_.ReadPage(2, &buf).ok());
  EXPECT_EQ(buf[10], 0x42);
}

TEST_F(BufferPoolTest, DropAllColdCache) {
  BufferPool pool(&file_, 4);
  ASSERT_TRUE(pool.Fetch(0).ok());
  ASSERT_TRUE(pool.Fetch(1).ok());
  EXPECT_EQ(pool.resident_pages(), 2u);
  ASSERT_TRUE(pool.DropAll().ok());
  EXPECT_EQ(pool.resident_pages(), 0u);
  pool.ResetStats();
  ASSERT_TRUE(pool.Fetch(0).ok());
  EXPECT_EQ(pool.stats().misses, 1u);  // Cold again.
}

TEST_F(BufferPoolTest, DropAllPreservesDirtyData) {
  BufferPool pool(&file_, 4);
  {
    auto page = pool.MutablePage(5);
    ASSERT_TRUE(page.ok());
    page->mutable_data()[0] = 0x99;
  }
  ASSERT_TRUE(pool.DropAll().ok());
  auto reread = pool.Fetch(5);
  ASSERT_TRUE(reread.ok());
  EXPECT_EQ(reread->data()[0], 0x99);
}

TEST_F(BufferPoolTest, PinnedPagesSurviveEvictionPressure) {
  BufferPool pool(&file_, 1);
  auto pinned = pool.Fetch(0);
  ASSERT_TRUE(pinned.ok());
  const uint8_t* data = pinned->data();
  // Sweep every other page through the 1-frame pool; page 0 is pinned,
  // so the pool overflows capacity rather than evicting it.
  for (PageId p = 1; p < 8; ++p) ASSERT_TRUE(pool.Fetch(p).ok());
  EXPECT_EQ(pool.pinned_pages(), 1u);
  EXPECT_EQ(pinned->data(), data);  // Frame never moved.
  pinned->Release();
  ASSERT_TRUE(pool.Fetch(1).ok());  // Miss: now 0 can be evicted.
  EXPECT_EQ(pool.pinned_pages(), 0u);
}

TEST_F(BufferPoolTest, StatsAreConsistent) {
  BufferPool pool(&file_, 2);
  for (PageId p = 0; p < 8; ++p) ASSERT_TRUE(pool.Fetch(p % 4).ok());
  BufferPool::Stats s = pool.stats();
  EXPECT_EQ(s.hits + s.misses, s.fetches);
  EXPECT_EQ(s.fetches, 8u);
}

TEST_F(BufferPoolTest, HitRateComputation) {
  BufferPool::Stats stats;
  EXPECT_EQ(stats.HitRate(), 0.0);
  stats.hits = 3;
  stats.misses = 1;
  EXPECT_DOUBLE_EQ(stats.HitRate(), 0.75);
}

TEST_F(BufferPoolTest, CapacityZeroClampsToOne) {
  BufferPool pool(&file_, 0);
  EXPECT_EQ(pool.capacity(), 1u);
  ASSERT_TRUE(pool.Fetch(0).ok());
  ASSERT_TRUE(pool.Fetch(1).ok());
  EXPECT_EQ(pool.resident_pages(), 1u);
}

}  // namespace
}  // namespace sama

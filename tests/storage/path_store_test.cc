#include "storage/path_store.h"

#include <gtest/gtest.h>

namespace sama {
namespace {

Path MakePath(std::initializer_list<TermId> nodes,
              std::initializer_list<TermId> edges) {
  Path p;
  p.node_labels.assign(nodes);
  p.edge_labels.assign(edges);
  for (size_t i = 0; i < p.node_labels.size(); ++i) {
    p.nodes.push_back(static_cast<NodeId>(100 + i));
  }
  return p;
}

// Parameter: (on_disk, compress).
class PathStoreTest
    : public testing::TestWithParam<std::tuple<bool, bool>> {
 protected:
  PathStore::Options Opts() {
    PathStore::Options o;
    if (std::get<0>(GetParam())) {
      std::string name =
          testing::UnitTest::GetInstance()->current_test_info()->name();
      for (char& c : name) {
        if (c == '/') c = '-';
      }
      o.path = testing::TempDir() + "/ps_" + name + ".dat";
    }
    o.compress = std::get<1>(GetParam());
    return o;
  }
};

TEST_P(PathStoreTest, PutGetRoundTrip) {
  PathStore store;
  ASSERT_TRUE(store.Open(Opts()).ok());
  Path original = MakePath({1, 2, 3}, {10, 11});
  auto id = store.Put(original);
  ASSERT_TRUE(id.ok());
  Path loaded;
  ASSERT_TRUE(store.Get(*id, &loaded).ok());
  EXPECT_EQ(loaded, original);
  EXPECT_EQ(loaded.nodes, original.nodes);
}

TEST_P(PathStoreTest, DenseIdsInOrder) {
  PathStore store;
  ASSERT_TRUE(store.Open(Opts()).ok());
  for (TermId i = 0; i < 50; ++i) {
    auto id = store.Put(MakePath({i, i + 1}, {1000 + i}));
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(*id, i);
  }
  EXPECT_EQ(store.path_count(), 50u);
  Path p;
  ASSERT_TRUE(store.Get(25, &p).ok());
  EXPECT_EQ(p.node_labels[0], 25u);
}

TEST_P(PathStoreTest, SingleNodePathRejected) {
  PathStore store;
  ASSERT_TRUE(store.Open(Opts()).ok());
  Path empty;
  EXPECT_FALSE(store.Put(empty).ok());
}

TEST_P(PathStoreTest, OutOfRangeGet) {
  PathStore store;
  ASSERT_TRUE(store.Open(Opts()).ok());
  Path p;
  EXPECT_EQ(store.Get(0, &p).code(), Status::Code::kOutOfRange);
}

TEST_P(PathStoreTest, LongPathsSurvive) {
  PathStore store;
  ASSERT_TRUE(store.Open(Opts()).ok());
  Path p;
  for (TermId i = 0; i < 200; ++i) {
    p.node_labels.push_back(i * 3);
    p.nodes.push_back(i);
    if (i > 0) p.edge_labels.push_back(i * 7);
  }
  auto id = store.Put(p);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(store.DropCaches().ok());
  Path loaded;
  ASSERT_TRUE(store.Get(*id, &loaded).ok());
  EXPECT_EQ(loaded, p);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, PathStoreTest,
    testing::Combine(testing::Bool(), testing::Bool()),
    [](const testing::TestParamInfo<std::tuple<bool, bool>>& info) {
      std::string name = std::get<0>(info.param) ? "Disk" : "Memory";
      name += std::get<1>(info.param) ? "Varint" : "Fixed";
      return name;
    });

TEST(PathStoreEncodingTest, VarintSmallerThanFixed) {
  Path p = MakePath({1, 2, 3, 4}, {5, 6, 7});
  std::vector<uint8_t> varint, fixed;
  PathStore::Encode(p, /*compress=*/true, &varint);
  PathStore::Encode(p, /*compress=*/false, &fixed);
  EXPECT_LT(varint.size(), fixed.size());
}

TEST(PathStoreEncodingTest, DecodeRejectsCorruptBuffers) {
  Path p;
  EXPECT_FALSE(PathStore::Decode({}, true, &p).ok());
  std::vector<uint8_t> truncated;
  PathStore::Encode(MakePath({1, 2}, {3}), true, &truncated);
  truncated.resize(truncated.size() - 1);
  EXPECT_FALSE(PathStore::Decode(truncated, true, &p).ok());
}

}  // namespace
}  // namespace sama

// Backward-compat policy for pre-checksum (v0) index files: they are
// REJECTED, loudly, with kInvalidArgument naming the format version —
// never read as if their bytes were trustworthy. The fixtures under
// tests/data/v0_index/ are checked-in binaries in the PR-1 on-disk
// layout (raw 4096-byte pages, "SAMAREC1"/"SAMAIDS1"/"SAMABLB1"
// magics, no page headers or checksums).

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "graph/data_graph.h"
#include "index/path_index.h"
#include "storage/manifest.h"
#include "storage/page_file.h"

#ifndef SAMA_TEST_DATA_DIR
#error "SAMA_TEST_DATA_DIR must point at tests/data"
#endif

namespace sama {
namespace {

// The checked-in fixtures stay pristine: every test works on a copy.
std::string CopyFixtureDir() {
  std::string src = std::string(SAMA_TEST_DATA_DIR) + "/v0_index";
  std::string dst = testing::TempDir() + "/v0_compat";
  std::filesystem::remove_all(dst);
  std::filesystem::create_directories(dst);
  std::filesystem::copy(src, dst,
                        std::filesystem::copy_options::recursive |
                            std::filesystem::copy_options::overwrite_existing);
  return dst;
}

TEST(V0CompatTest, PageFileNamesTheUnsupportedVersion) {
  std::string dir = CopyFixtureDir();
  PageFile f;
  Status s = f.Open(dir + "/paths.dat", /*truncate=*/false);
  ASSERT_EQ(s.code(), Status::Code::kInvalidArgument) << s;
  // The v0 header has "SAMAREC1" at offset 0, so the v1 version byte
  // (offset 4) reads 'R' = 82; the error must name it and the remedy.
  EXPECT_NE(s.message().find("version 82"), std::string::npos) << s;
  EXPECT_NE(s.message().find("v0"), std::string::npos) << s;
  EXPECT_NE(s.message().find("rebuilt"), std::string::npos) << s;
}

TEST(V0CompatTest, ManifestAndBlobNameTheOldVersion) {
  std::string dir = CopyFixtureDir();
  auto ids = ReadIdManifest(dir + "/paths.dat.manifest");
  ASSERT_EQ(ids.status().code(), Status::Code::kInvalidArgument)
      << ids.status();
  EXPECT_NE(ids.status().message().find("version"), std::string::npos)
      << ids.status();

  auto blob = ReadBlobFile(dir + "/index.meta");
  ASSERT_EQ(blob.status().code(), Status::Code::kInvalidArgument)
      << blob.status();
  EXPECT_NE(blob.status().message().find("version"), std::string::npos)
      << blob.status();
}

TEST(V0CompatTest, IndexReopenRejectsV0WithClearError) {
  std::string dir = CopyFixtureDir();
  DataGraph graph;
  PathIndexOptions options;
  options.dir = dir;
  PathIndex index;
  Status s = index.Open(&graph, options);
  ASSERT_EQ(s.code(), Status::Code::kInvalidArgument) << s;
  EXPECT_NE(s.message().find("version"), std::string::npos) << s;
  // Rejection is not deletion: a v0 index is the user's data, and
  // "rebuild" must be their call, not a silent recovery sweep.
  EXPECT_TRUE(std::filesystem::exists(dir + "/paths.dat"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/index.meta"));
}

}  // namespace
}  // namespace sama

#include "storage/coding.h"

#include <gtest/gtest.h>

#include <limits>

namespace sama {
namespace {

TEST(CodingTest, Varint64RoundTrip) {
  const uint64_t values[] = {0,
                             1,
                             127,
                             128,
                             300,
                             16383,
                             16384,
                             uint64_t{1} << 32,
                             std::numeric_limits<uint64_t>::max()};
  std::vector<uint8_t> buf;
  for (uint64_t v : values) PutVarint64(&buf, v);
  size_t pos = 0;
  for (uint64_t expected : values) {
    uint64_t v = 0;
    ASSERT_TRUE(GetVarint64(buf, &pos, &v));
    EXPECT_EQ(v, expected);
  }
  EXPECT_EQ(pos, buf.size());
}

TEST(CodingTest, VarintEncodingSizes) {
  std::vector<uint8_t> buf;
  PutVarint64(&buf, 127);
  EXPECT_EQ(buf.size(), 1u);
  buf.clear();
  PutVarint64(&buf, 128);
  EXPECT_EQ(buf.size(), 2u);
  buf.clear();
  PutVarint64(&buf, std::numeric_limits<uint64_t>::max());
  EXPECT_EQ(buf.size(), 10u);
}

TEST(CodingTest, TruncatedVarintFails) {
  std::vector<uint8_t> buf;
  PutVarint64(&buf, 1'000'000);
  buf.pop_back();
  size_t pos = 0;
  uint64_t v = 0;
  EXPECT_FALSE(GetVarint64(buf, &pos, &v));
}

TEST(CodingTest, Varint32RejectsOversized) {
  std::vector<uint8_t> buf;
  PutVarint64(&buf, uint64_t{1} << 40);
  size_t pos = 0;
  uint32_t v = 0;
  EXPECT_FALSE(GetVarint32(buf, &pos, &v));
}

TEST(CodingTest, Fixed32RoundTrip) {
  std::vector<uint8_t> buf;
  PutFixed32(&buf, 0);
  PutFixed32(&buf, 0xdeadbeef);
  PutFixed32(&buf, 0xffffffff);
  EXPECT_EQ(buf.size(), 12u);
  size_t pos = 0;
  uint32_t v = 0;
  ASSERT_TRUE(GetFixed32(buf, &pos, &v));
  EXPECT_EQ(v, 0u);
  ASSERT_TRUE(GetFixed32(buf, &pos, &v));
  EXPECT_EQ(v, 0xdeadbeef);
  ASSERT_TRUE(GetFixed32(buf, &pos, &v));
  EXPECT_EQ(v, 0xffffffff);
  EXPECT_FALSE(GetFixed32(buf, &pos, &v));  // Exhausted.
}

TEST(CodingTest, VarintSmallerThanFixedForSmallValues) {
  std::vector<uint8_t> varint, fixed;
  for (uint32_t v = 0; v < 1000; ++v) {
    PutVarint32(&varint, v);
    PutFixed32(&fixed, v);
  }
  EXPECT_LT(varint.size(), fixed.size());
}

}  // namespace
}  // namespace sama

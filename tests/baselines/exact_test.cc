#include "baselines/exact.h"

#include <gtest/gtest.h>

#include <set>

#include "datasets/govtrack.h"

namespace sama {
namespace {

class ExactMatcherTest : public testing::Test {
 protected:
  ExactMatcherTest()
      : graph_(DataGraph::FromTriples(GovTrackFigure1Triples())),
        matcher_(&graph_) {}

  QueryGraph Query(const std::vector<Triple>& patterns) {
    return QueryGraph::FromPatterns(patterns, graph_.shared_dict());
  }

  DataGraph graph_;
  ExactMatcher matcher_;
};

TEST_F(ExactMatcherTest, Query1HasExactlyOneAnswer) {
  QueryGraph q = Query(GovTrackQuery1Patterns());
  auto matches = matcher_.Execute(q, 0);
  ASSERT_TRUE(matches.ok());
  ASSERT_EQ(matches->size(), 1u);
  const Match& m = (*matches)[0];
  EXPECT_EQ(m.binding.Lookup("v1")->value(),
            "http://gov.example.org/A0056");
  EXPECT_EQ(m.binding.Lookup("v2")->value(),
            "http://gov.example.org/B1432");
  EXPECT_EQ(m.binding.Lookup("v3")->value(),
            "http://gov.example.org/PierceDickes");
  EXPECT_DOUBLE_EQ(m.cost, 0.0);
}

TEST_F(ExactMatcherTest, RelaxedQuery2HasNoExactAnswer) {
  QueryGraph q = Query(GovTrackQuery2Patterns());
  auto matches = matcher_.Execute(q, 0);
  ASSERT_TRUE(matches.ok());
  EXPECT_TRUE(matches->empty());
}

TEST_F(ExactMatcherTest, SinglePatternEnumeratesAll) {
  QueryGraph q = Query({{Term::Variable("p"),
                         Term::Iri("http://gov.example.org/gender"),
                         Term::Literal("Male")}});
  auto matches = matcher_.Execute(q, 0);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches->size(), 4u);
}

TEST_F(ExactMatcherTest, VariablePredicateBinds) {
  QueryGraph q =
      Query({{Term::Iri("http://gov.example.org/CarlaBunes"),
              Term::Variable("rel"), Term::Variable("what")}});
  auto matches = matcher_.Execute(q, 0);
  ASSERT_TRUE(matches.ok());
  // CB: sponsor A0056, gender Female.
  ASSERT_EQ(matches->size(), 2u);
  std::set<std::string> rels;
  for (const Match& m : *matches) {
    rels.insert(m.binding.Lookup("rel")->DisplayLabel());
  }
  EXPECT_EQ(rels, (std::set<std::string>{"sponsor", "gender"}));
}

TEST_F(ExactMatcherTest, KLimitsResults) {
  QueryGraph q = Query({{Term::Variable("p"),
                         Term::Iri("http://gov.example.org/gender"),
                         Term::Variable("g")}});
  auto matches = matcher_.Execute(q, 2);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches->size(), 2u);
}

TEST_F(ExactMatcherTest, UnknownConstantMeansNoMatch) {
  QueryGraph q = Query({{Term::Iri("http://gov.example.org/Nobody"),
                         Term::Iri("http://gov.example.org/gender"),
                         Term::Variable("g")}});
  auto matches = matcher_.Execute(q, 0);
  ASSERT_TRUE(matches.ok());
  EXPECT_TRUE(matches->empty());
}

TEST_F(ExactMatcherTest, HomomorphismAllowsSharedTargets) {
  // ?a sponsor ?x . ?b sponsor ?x: ?a and ?b may bind to the same
  // person (SPARQL semantics).
  QueryGraph q = Query({
      {Term::Variable("a"), Term::Iri("http://gov.example.org/sponsor"),
       Term::Variable("x")},
      {Term::Variable("b"), Term::Iri("http://gov.example.org/sponsor"),
       Term::Variable("x")},
  });
  auto matches = matcher_.Execute(q, 0);
  ASSERT_TRUE(matches.ok());
  bool same_person = false;
  for (const Match& m : *matches) {
    if (m.binding.Lookup("a")->value() == m.binding.Lookup("b")->value()) {
      same_person = true;
    }
  }
  EXPECT_TRUE(same_person);
}

TEST_F(ExactMatcherTest, StepBudgetTerminatesSearch) {
  MatcherOptions limits;
  limits.max_steps = 5;
  ExactMatcher bounded(&graph_, limits);
  QueryGraph q = Query({{Term::Variable("a"), Term::Variable("p"),
                         Term::Variable("b")}});
  auto matches = bounded.Execute(q, 0);
  ASSERT_TRUE(matches.ok());
  EXPECT_LE(matches->size(), 5u);
}

}  // namespace
}  // namespace sama

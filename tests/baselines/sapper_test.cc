#include "baselines/sapper.h"

#include <gtest/gtest.h>

#include "baselines/exact.h"
#include "datasets/govtrack.h"

namespace sama {
namespace {

class SapperTest : public testing::Test {
 protected:
  SapperTest() : graph_(DataGraph::FromTriples(GovTrackFigure1Triples())) {}

  QueryGraph Query(const std::vector<Triple>& patterns) {
    return QueryGraph::FromPatterns(patterns, graph_.shared_dict());
  }

  DataGraph graph_;
};

TEST_F(SapperTest, FindsExactMatchesAtCostZero) {
  SapperMatcher sapper(&graph_);
  QueryGraph q = Query(GovTrackQuery1Patterns());
  auto matches = sapper.Execute(q, 0);
  ASSERT_TRUE(matches.ok());
  ASSERT_FALSE(matches->empty());
  // Matches are sorted by cost; the first is the exact one.
  EXPECT_DOUBLE_EQ((*matches)[0].cost, 0.0);
  EXPECT_EQ((*matches)[0].binding.Lookup("v3")->value(),
            "http://gov.example.org/PierceDickes");
}

TEST_F(SapperTest, ToleratesMissingEdges) {
  // ?p sponsors two bills directly; only PierceDickes sponsors both a
  // bill and an amendment... require an edge nobody has and let the
  // miss budget absorb it.
  SapperMatcher::Options options;
  options.max_missing_edges = 1;
  SapperMatcher sapper(&graph_, options);
  QueryGraph q = Query({
      {Term::Variable("p"), Term::Iri("http://gov.example.org/gender"),
       Term::Literal("Male")},
      {Term::Variable("p"), Term::Iri("http://gov.example.org/chairs"),
       Term::Variable("c")},
  });
  auto matches = sapper.Execute(q, 0);
  ASSERT_TRUE(matches.ok());
  // The exact matcher finds nothing; SAPPER returns the gender matches
  // with one missing edge each.
  ExactMatcher exact(&graph_);
  auto exact_matches = exact.Execute(q, 0);
  ASSERT_TRUE(exact_matches.ok());
  EXPECT_TRUE(exact_matches->empty());
  ASSERT_FALSE(matches->empty());
  for (const Match& m : *matches) {
    EXPECT_DOUBLE_EQ(m.cost, 1.0);
  }
}

TEST_F(SapperTest, FindsAtLeastAsManyAsExact) {
  QueryGraph q = Query(GovTrackQuery1Patterns());
  SapperMatcher sapper(&graph_);
  ExactMatcher exact(&graph_);
  auto approx = sapper.Execute(q, 0);
  auto strict = exact.Execute(q, 0);
  ASSERT_TRUE(approx.ok());
  ASSERT_TRUE(strict.ok());
  EXPECT_GE(approx->size(), strict->size());
}

TEST_F(SapperTest, DefaultDeltaScalesWithQuerySize) {
  // A 5-edge query gets Δ = 5/4 + 1 = 2 by default: two-edge misses
  // are admitted, so a query with two bogus edges still yields results.
  SapperMatcher sapper(&graph_);
  QueryGraph q = Query({
      {Term::Variable("p"), Term::Iri("http://gov.example.org/gender"),
       Term::Literal("Male")},
      {Term::Variable("p"), Term::Iri("http://gov.example.org/x1"),
       Term::Variable("a")},
      {Term::Variable("p"), Term::Iri("http://gov.example.org/sponsor"),
       Term::Variable("b")},
      {Term::Variable("b"), Term::Iri("http://gov.example.org/subject"),
       Term::Literal("Health Care")},
      {Term::Variable("p"), Term::Iri("http://gov.example.org/x2"),
       Term::Variable("c")},
  });
  auto matches = sapper.Execute(q, 0);
  ASSERT_TRUE(matches.ok());
  EXPECT_FALSE(matches->empty());
}

TEST_F(SapperTest, CostOrderingIsMonotone) {
  SapperMatcher::Options options;
  options.max_missing_edges = 2;
  SapperMatcher sapper(&graph_, options);
  QueryGraph q = Query(GovTrackQuery2Patterns());
  auto matches = sapper.Execute(q, 0);
  ASSERT_TRUE(matches.ok());
  for (size_t i = 1; i < matches->size(); ++i) {
    EXPECT_LE((*matches)[i - 1].cost, (*matches)[i].cost);
  }
}

}  // namespace
}  // namespace sama

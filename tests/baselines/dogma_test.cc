#include "baselines/dogma.h"

#include <gtest/gtest.h>

#include "baselines/exact.h"
#include "datasets/govtrack.h"

namespace sama {
namespace {

class DogmaTest : public testing::Test {
 protected:
  DogmaTest() : graph_(DataGraph::FromTriples(GovTrackFigure1Triples())) {}

  QueryGraph Query(const std::vector<Triple>& patterns) {
    return QueryGraph::FromPatterns(patterns, graph_.shared_dict());
  }

  DataGraph graph_;
};

TEST_F(DogmaTest, AgreesWithExactOnQuery1) {
  DogmaMatcher dogma(&graph_);
  ExactMatcher exact(&graph_);
  QueryGraph q = Query(GovTrackQuery1Patterns());
  auto d = dogma.Execute(q, 0);
  auto e = exact.Execute(q, 0);
  ASSERT_TRUE(d.ok());
  ASSERT_TRUE(e.ok());
  ASSERT_EQ(d->size(), e->size());
  EXPECT_EQ((*d)[0].binding.Lookup("v3")->value(),
            (*e)[0].binding.Lookup("v3")->value());
}

TEST_F(DogmaTest, NoAnswersForRelaxedQuery) {
  // DOGMA is exact: the paper's Figure 8/9 low recall on relaxed
  // queries.
  DogmaMatcher dogma(&graph_);
  QueryGraph q = Query(GovTrackQuery2Patterns());
  auto matches = dogma.Execute(q, 0);
  ASSERT_TRUE(matches.ok());
  EXPECT_TRUE(matches->empty());
}

TEST_F(DogmaTest, IndexIsBuiltOffline) {
  DogmaMatcher dogma(&graph_);
  EXPECT_GE(dogma.index_build_millis(), 0.0);
}

TEST_F(DogmaTest, DistancePruningPreservesCompleteness) {
  // Every exact match must survive pruning across assorted queries.
  DogmaMatcher dogma(&graph_);
  ExactMatcher exact(&graph_);
  const std::vector<std::vector<Triple>> queries = {
      {{Term::Variable("p"), Term::Iri("http://gov.example.org/gender"),
        Term::Literal("Male")}},
      {{Term::Variable("p"), Term::Iri("http://gov.example.org/sponsor"),
        Term::Variable("b")},
       {Term::Variable("b"), Term::Iri("http://gov.example.org/subject"),
        Term::Literal("Health Care")}},
      {{Term::Iri("http://gov.example.org/JeffRyser"),
        Term::Iri("http://gov.example.org/hasRole"), Term::Variable("t")},
       {Term::Variable("t"), Term::Iri("http://gov.example.org/forOffice"),
        Term::Variable("o")}},
  };
  for (const auto& patterns : queries) {
    QueryGraph q = Query(patterns);
    auto d = dogma.Execute(q, 0);
    auto e = exact.Execute(q, 0);
    ASSERT_TRUE(d.ok());
    ASSERT_TRUE(e.ok());
    EXPECT_EQ(d->size(), e->size());
  }
}

TEST_F(DogmaTest, MissingConstantShortCircuits) {
  DogmaMatcher dogma(&graph_);
  QueryGraph q = Query({{Term::Iri("http://gov.example.org/Nobody"),
                         Term::Variable("p"), Term::Variable("o")}});
  auto matches = dogma.Execute(q, 0);
  ASSERT_TRUE(matches.ok());
  EXPECT_TRUE(matches->empty());
}

TEST_F(DogmaTest, FewLandmarksStillCorrect) {
  DogmaMatcher::Options options;
  options.num_landmarks = 1;
  DogmaMatcher dogma(&graph_, options);
  QueryGraph q = Query(GovTrackQuery1Patterns());
  auto matches = dogma.Execute(q, 0);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches->size(), 1u);
}

}  // namespace
}  // namespace sama

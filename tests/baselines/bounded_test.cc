#include "baselines/bounded.h"

#include <gtest/gtest.h>

#include "baselines/exact.h"
#include "datasets/govtrack.h"

namespace sama {
namespace {

class BoundedTest : public testing::Test {
 protected:
  BoundedTest() : graph_(DataGraph::FromTriples(GovTrackFigure1Triples())) {}

  QueryGraph Query(const std::vector<Triple>& patterns) {
    return QueryGraph::FromPatterns(patterns, graph_.shared_dict());
  }

  DataGraph graph_;
};

TEST_F(BoundedTest, SingleEdgeBehavesLikeExactWithBoundOne) {
  BoundedMatcher::Options options;
  options.bound = 1;
  BoundedMatcher bounded(&graph_, options);
  ExactMatcher exact(&graph_);
  QueryGraph q = Query({{Term::Variable("p"),
                         Term::Iri("http://gov.example.org/gender"),
                         Term::Literal("Male")}});
  auto b = bounded.Execute(q, 0);
  auto e = exact.Execute(q, 0);
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(b->size(), e->size());
}

TEST_F(BoundedTest, TwoHopEdgeMatchesWithinBound) {
  // CB "sponsor" ?b: there is no direct sponsor edge from CB to a bill,
  // but CB-sponsor-A0056-aTo-B1432 connects within 2 hops and the path
  // carries a sponsor edge — the bounded semantics accept it.
  BoundedMatcher bounded(&graph_);  // bound = 2.
  QueryGraph q = Query({{Term::Iri("http://gov.example.org/CarlaBunes"),
                         Term::Iri("http://gov.example.org/sponsor"),
                         Term::Iri("http://gov.example.org/B1432")}});
  auto matches = bounded.Execute(q, 0);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches->size(), 1u);
  // The exact matcher rejects the same query.
  ExactMatcher exact(&graph_);
  auto e = exact.Execute(q, 0);
  ASSERT_TRUE(e.ok());
  EXPECT_TRUE(e->empty());
}

TEST_F(BoundedTest, LabelMustAppearOnPath) {
  // CB to B1432 within 2 hops exists, but no "gender" edge lies on the
  // connecting path.
  BoundedMatcher bounded(&graph_);
  QueryGraph q = Query({{Term::Iri("http://gov.example.org/CarlaBunes"),
                         Term::Iri("http://gov.example.org/gender"),
                         Term::Iri("http://gov.example.org/B1432")}});
  auto matches = bounded.Execute(q, 0);
  ASSERT_TRUE(matches.ok());
  EXPECT_TRUE(matches->empty());
}

TEST_F(BoundedTest, FindsMoreThanExactOnStructuralRelaxation) {
  // Q2's CB-?e1->?v2 pattern: exact fails, bounded bridges the
  // amendment hop.
  BoundedMatcher bounded(&graph_);
  ExactMatcher exact(&graph_);
  QueryGraph q = Query(GovTrackQuery2Patterns());
  auto b = bounded.Execute(q, 0);
  auto e = exact.Execute(q, 0);
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(e.ok());
  EXPECT_TRUE(e->empty());
  EXPECT_FALSE(b->empty());
}

TEST_F(BoundedTest, VariablePredicateAcceptsAnyPath) {
  BoundedMatcher bounded(&graph_);
  QueryGraph q = Query({{Term::Iri("http://gov.example.org/CarlaBunes"),
                         Term::Variable("rel"),
                         Term::Iri("http://gov.example.org/B1432")}});
  auto matches = bounded.Execute(q, 0);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches->size(), 1u);
}

TEST_F(BoundedTest, KLimitsResults) {
  BoundedMatcher bounded(&graph_);
  QueryGraph q = Query({{Term::Variable("p"),
                         Term::Iri("http://gov.example.org/sponsor"),
                         Term::Variable("x")}});
  auto all = bounded.Execute(q, 0);
  auto limited = bounded.Execute(q, 3);
  ASSERT_TRUE(all.ok());
  ASSERT_TRUE(limited.ok());
  EXPECT_EQ(limited->size(), 3u);
  EXPECT_GT(all->size(), limited->size());
  // Bounded connectivity yields strictly more sponsor pairs than the 10
  // direct edges (2-hop reach through amendments).
  EXPECT_GT(all->size(), 10u);
}

}  // namespace
}  // namespace sama

// The graph partitioner behind sharded index builds: deterministic,
// total (every node assigned), zero-cut on naturally disconnected
// graphs, and balanced when forced to split a giant component.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "datasets/lubm.h"
#include "graph/data_graph.h"
#include "shard/partition.h"

namespace sama {
namespace {

// `chains` disjoint s->a->b sink chains: one weak component each.
std::vector<Triple> DisjointChains(size_t chains) {
  std::vector<Triple> triples;
  for (size_t i = 0; i < chains; ++i) {
    std::string base = "http://x.example.org/c" + std::to_string(i) + "/";
    triples.push_back(Triple{Term::Iri(base + "s"), Term::Iri(base + "p1"),
                             Term::Iri(base + "a")});
    triples.push_back(Triple{Term::Iri(base + "a"), Term::Iri(base + "p2"),
                             Term::Literal("leaf" + std::to_string(i))});
  }
  return triples;
}

TEST(PartitionTest, AssignsEveryNodeWithinRange) {
  DataGraph graph = DataGraph::FromTriples(DisjointChains(8));
  for (size_t shards : {1u, 2u, 3u, 8u}) {
    GraphPartition p = PartitionGraph(graph, shards);
    ASSERT_EQ(p.shard_of_node.size(), graph.node_count());
    for (NodeId v = 0; v < graph.node_count(); ++v) {
      EXPECT_LT(p.ShardOfNode(v), shards);
    }
  }
}

TEST(PartitionTest, DeterministicAcrossCalls) {
  LubmConfig config;
  config.universities = 1;
  DataGraph graph = DataGraph::FromTriples(GenerateLubm(config));
  GraphPartition a = PartitionGraph(graph, 4);
  GraphPartition b = PartitionGraph(graph, 4);
  EXPECT_EQ(a.shard_of_node, b.shard_of_node);
  EXPECT_EQ(a.shard_weights, b.shard_weights);
  EXPECT_EQ(a.cut_edges, b.cut_edges);
  EXPECT_EQ(a.num_components, b.num_components);
}

TEST(PartitionTest, DisconnectedGraphCutsNothing) {
  DataGraph graph = DataGraph::FromTriples(DisjointChains(12));
  GraphPartition p = PartitionGraph(graph, 3);
  EXPECT_EQ(p.num_components, 12u);
  EXPECT_EQ(p.cut_edges, 0u);
  // LPT packing over 12 equal components: every shard gets some.
  for (uint64_t w : p.shard_weights) EXPECT_GT(w, 0u);
  // A whole component never straddles shards.
  for (EdgeId e = 0; e < graph.edge_count(); ++e) {
    EXPECT_EQ(p.ShardOfNode(graph.edge(e).from),
              p.ShardOfNode(graph.edge(e).to));
  }
}

TEST(PartitionTest, GiantComponentSplitsWithBalance) {
  // LUBM with cross-linked universities is (mostly) one big component;
  // splitting must still give every shard real weight.
  LubmConfig config;
  config.universities = 2;
  DataGraph graph = DataGraph::FromTriples(GenerateLubm(config));
  GraphPartition p = PartitionGraph(graph, 4);
  uint64_t total = 0, max_w = 0;
  for (uint64_t w : p.shard_weights) {
    EXPECT_GT(w, 0u);
    total += w;
    max_w = std::max(max_w, w);
  }
  // No shard hoards more than ~2 balance targets.
  EXPECT_LE(max_w, 2 * ((total + 3) / 4) + total / graph.node_count());
}

TEST(PartitionTest, SingleShardTakesEverything) {
  DataGraph graph = DataGraph::FromTriples(DisjointChains(5));
  GraphPartition p = PartitionGraph(graph, 1);
  EXPECT_EQ(p.cut_edges, 0u);
  for (NodeId v = 0; v < graph.node_count(); ++v) {
    EXPECT_EQ(p.ShardOfNode(v), 0u);
  }
}

}  // namespace
}  // namespace sama

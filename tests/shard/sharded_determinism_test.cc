// The sharded-search correctness contract (DESIGN.md §14): for every
// shard count and thread count, ShardedEngine returns answers
// byte-identical — same combinations, same score decomposition, same
// tie-break order, same global path ids — to a single-index serial
// SamaEngine run with the same options. Exercised over all three
// synthetic dataset generators at several k, because tie density is
// what breaks naive cross-shard top-k merges. Also covers the degraded
// path (a damaged shard must cost candidates, not correctness) and the
// freshness of the cross-shard bound (no leakage between queries).

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "core/engine.h"
#include "datasets/berlin.h"
#include "datasets/lubm.h"
#include "datasets/queries.h"
#include "datasets/scale_free.h"
#include "graph/data_graph.h"
#include "index/path_index.h"
#include "query/sparql.h"
#include "shard/sharded_engine.h"
#include "shard/sharded_index.h"
#include "text/thesaurus.h"

namespace sama {
namespace {

constexpr size_t kShardCounts[] = {2, 4, 8};
constexpr size_t kThreadCounts[] = {1, 4};
constexpr size_t kTopK[] = {1, 5, 20};

// Byte-identity is only contractual for untruncated searches: a
// truncated run's tie tail depends on how the anytime budget was spent,
// and each engine spends its own (see ShardedEngine's header). The
// suite uses a budget ample enough that every comparable query
// completes; the few that still truncate take the carve-out branch in
// CheckQuery instead.
constexpr uint64_t kAmpleExpansions = 200000;

// Same lossless signature as the parallel-determinism suite: %.17g
// scores, (query path slot, data path id) parts in answer order. The
// sharded engine reports GLOBAL path ids, so the ids must match the
// single index literally.
std::string Signature(const std::vector<Answer>& answers) {
  std::string out;
  char buf[96];
  for (const Answer& a : answers) {
    std::snprintf(buf, sizeof(buf), "%.17g|%.17g|%.17g|", a.score,
                  a.lambda_total, a.psi_total);
    out += buf;
    for (size_t i = 0; i < a.parts.size(); ++i) {
      out += std::to_string(a.query_path_index[i]);
      out += ':';
      out += std::to_string(a.parts[i].id);
      out += ',';
    }
    out += a.consistent ? ";ok\n" : ";inconsistent\n";
  }
  return out;
}

void RemoveTree(const std::string& base) {
  Env* env = Env::Default();
  auto entries = env->ListDir(base);
  if (!entries.ok()) return;
  for (const std::string& name : *entries) {
    std::string path = base + "/" + name;
    auto sub = env->ListDir(path);
    if (sub.ok()) {
      for (const std::string& inner : *sub) {
        env->RemoveFile(path + "/" + inner).ok();
      }
      env->RemoveDir(path).ok();
    } else {
      env->RemoveFile(path).ok();
    }
  }
  env->RemoveDir(base).ok();
}

// One dataset: the single-index serial reference plus one
// ShardedEngine per (shard count × thread count), all over one shared
// graph/dictionary/thesaurus.
class Env2 {
 public:
  Env2(const std::string& name, std::vector<Triple> triples)
      : graph_(std::make_unique<DataGraph>(
            DataGraph::FromTriples(std::move(triples)))) {
    single_index_ = std::make_unique<PathIndex>();
    Status s = single_index_->Build(*graph_, PathIndexOptions());
    EXPECT_TRUE(s.ok()) << s;
    thesaurus_ = Thesaurus::BuiltinEnglish();
    EngineOptions serial_options;
    serial_options.num_threads = 1;
    serial_options.search.max_expansions = kAmpleExpansions;
    serial_ = std::make_unique<SamaEngine>(graph_.get(), single_index_.get(),
                                           &thesaurus_, serial_options);
    for (size_t shards : kShardCounts) {
      std::string dir = testing::TempDir() + "/sdet_" + name + "_" +
                        std::to_string(shards);
      RemoveTree(dir);
      ShardedIndexOptions options;
      options.num_shards = shards;
      Status built = BuildShardedIndex(*graph_, dir, options);
      EXPECT_TRUE(built.ok()) << built;
      auto index = std::make_unique<ShardedIndex>();
      Status opened = index->Open(graph_.get(), dir, /*strict=*/true);
      EXPECT_TRUE(opened.ok()) << opened;
      for (size_t threads : kThreadCounts) {
        EngineOptions options2;
        options2.num_threads = threads;
        options2.obs.metrics = false;
        options2.search.max_expansions = kAmpleExpansions;
        engines_.push_back(std::make_unique<ShardedEngine>(
            graph_.get(), index.get(), &thesaurus_, options2));
        labels_.push_back(std::to_string(shards) + " shards, " +
                          std::to_string(threads) + " threads");
      }
      indexes_.push_back(std::move(index));
    }
  }

  QueryGraph Parse(const std::string& sparql) {
    auto parsed = ParseSparql(sparql);
    EXPECT_TRUE(parsed.ok()) << parsed.status() << "\n" << sparql;
    return parsed->ToQueryGraph(graph_->shared_dict());
  }

  // Sharded == single-index serial, at every k, for every shard/thread
  // combination. Accumulates the cross-shard pruning counter so the
  // suite can assert the bound exchange actually fires somewhere.
  void CheckQuery(const std::string& name, const QueryGraph& query) {
    for (size_t k : kTopK) {
      QueryStats serial_stats;
      auto serial = serial_->Execute(query, k, &serial_stats);
      ASSERT_TRUE(serial.ok()) << name << " k=" << k << ": "
                               << serial.status();
      if (serial_stats.search_truncated) {
        // Anytime carve-out: the reference itself ran out of budget, so
        // the tie tail is a budget artifact, not a contract. Sharded
        // execution must still return a well-formed ranked list (it may
        // legitimately finish — N shards have N budgets and the bound
        // exchange prunes across them).
        for (size_t i = 0; i < engines_.size(); ++i) {
          QueryStats stats;
          auto got = engines_[i]->Execute(query, k, &stats);
          ASSERT_TRUE(got.ok()) << name << " k=" << k << " (" << labels_[i]
                                << "): " << got.status();
          EXPECT_LE(got->size(), k);
          for (size_t j = 1; j < got->size(); ++j) {
            EXPECT_LE((*got)[j - 1].score, (*got)[j].score)
                << name << " k=" << k << " (" << labels_[i]
                << "): truncated answers out of order";
          }
          EXPECT_EQ(stats.shards_degraded, 0u);
        }
        continue;
      }
      std::string expected = Signature(*serial);
      for (size_t i = 0; i < engines_.size(); ++i) {
        QueryStats stats;
        auto got = engines_[i]->Execute(query, k, &stats);
        ASSERT_TRUE(got.ok()) << name << " k=" << k << " (" << labels_[i]
                              << "): " << got.status();
        EXPECT_EQ(Signature(*got), expected)
            << name << " diverges from the single index at k=" << k
            << " with " << labels_[i];
        EXPECT_EQ(stats.shards_degraded, 0u);
        total_shared_pruned_ += stats.search_shared_bound_pruned;
      }
    }
  }

  // Same check through the SPARQL front door (dedup/filter/limit).
  void CheckSparql(const std::string& name, const std::string& text) {
    auto parsed = ParseSparql(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << text;
    auto serial = serial_->ExecuteSparql(*parsed, /*k=*/10);
    ASSERT_TRUE(serial.ok()) << name << ": " << serial.status();
    std::string expected = Signature(*serial);
    for (size_t i = 0; i < engines_.size(); ++i) {
      auto got = engines_[i]->ExecuteSparql(*parsed, /*k=*/10);
      ASSERT_TRUE(got.ok()) << name << " (" << labels_[i]
                            << "): " << got.status();
      EXPECT_EQ(Signature(*got), expected)
          << name << " (SPARQL) diverges with " << labels_[i];
    }
  }

  uint64_t total_shared_pruned() const { return total_shared_pruned_; }
  SamaEngine& serial() { return *serial_; }
  ShardedEngine& sharded(size_t i) { return *engines_[i]; }

 private:
  std::unique_ptr<DataGraph> graph_;
  std::unique_ptr<PathIndex> single_index_;
  Thesaurus thesaurus_;
  std::unique_ptr<SamaEngine> serial_;
  std::vector<std::unique_ptr<ShardedIndex>> indexes_;
  std::vector<std::unique_ptr<ShardedEngine>> engines_;
  std::vector<std::string> labels_;
  uint64_t total_shared_pruned_ = 0;
};

TEST(ShardedDeterminismTest, LubmWorkloadMatchesSingleIndex) {
  LubmConfig config;
  config.universities = 1;
  Env2 env("lubm", GenerateLubm(config));
  std::vector<BenchmarkQuery> queries = MakeLubmQueries();
  for (size_t i = 0; i < queries.size(); i += 3) {
    env.CheckQuery(queries[i].name, env.Parse(queries[i].sparql));
  }
  // The cross-shard k-th-score exchange must have pruned something
  // over this workload — the tentpole's measurable win. (Searches run
  // sequentially per query, so the counter is deterministic.)
  EXPECT_GT(env.total_shared_pruned(), 0u);
}

TEST(ShardedDeterminismTest, LubmSparqlFrontDoorMatches) {
  LubmConfig config;
  config.universities = 1;
  Env2 env("lubm_sparql", GenerateLubm(config));
  std::vector<BenchmarkQuery> queries = MakeLubmQueries();
  env.CheckSparql(queries[1].name, queries[1].sparql);
  // DISTINCT exercises the dedup replay in the gather.
  env.CheckSparql("distinct",
                  "PREFIX ub: <http://lubm.example.org/univ-bench#> "
                  "SELECT DISTINCT ?t WHERE { ?p ub:teacherOf ?c . "
                  "?p ub:worksFor ?t }");
}

TEST(ShardedDeterminismTest, BerlinWorkloadMatchesSingleIndex) {
  BerlinConfig config;
  config.products = 100;
  Env2 env("berlin", GenerateBerlin(config));
  std::vector<BenchmarkQuery> queries = MakeBerlinQueries();
  for (size_t i = 0; i < queries.size(); i += 2) {
    env.CheckQuery(queries[i].name, env.Parse(queries[i].sparql));
  }
}

TEST(ShardedDeterminismTest, ScaleFreeMatchesSingleIndex) {
  ScaleFreeProfile profile;
  profile.num_entities = 600;
  profile.seed = 42;
  Env2 env("scalefree", GenerateScaleFree(profile));
  const std::string rel = "http://scale-free.example.org/rel#";
  const std::string ent = "http://scale-free.example.org/";
  env.CheckQuery(
      "chain",
      env.Parse("SELECT ?x WHERE { ?x <" + rel + "linksTo> ?y . ?y <" +
                rel + "linksTo> ?z . ?z <" + rel + "tag> \"red\" }"));
  env.CheckQuery(
      "hub-star",
      env.Parse("SELECT ?x WHERE { ?x <" + rel + "linksTo> <" + ent +
                "Entity0> . ?x <" + rel + "tag> ?t }"));
}

TEST(ShardedDeterminismTest, NoCandidatesStillMatches) {
  LubmConfig config;
  config.universities = 1;
  Env2 env("lubm_empty", GenerateLubm(config));
  // Nothing in LUBM matches this vocabulary: every cluster is empty,
  // which exercises the no-join-positions special case.
  env.CheckQuery(
      "no-match",
      env.Parse("SELECT ?x WHERE { ?x <http://nowhere.example.org/p> "
                "<http://nowhere.example.org/o> }"));
}

TEST(ShardedDeterminismTest, BoundDoesNotLeakAcrossQueries) {
  LubmConfig config;
  config.universities = 1;
  Env2 env("lubm_leak", GenerateLubm(config));
  std::vector<BenchmarkQuery> queries = MakeLubmQueries();
  // A selective query first (publishes a tight k-th score), then a
  // broad one: the broad query must match a fresh engine's output —
  // i.e. the first query's bound must not survive into the second.
  QueryGraph selective = env.Parse(queries[0].sparql);
  QueryGraph broad = env.Parse(queries[6].sparql);
  auto broad_serial = env.serial().Execute(broad, 20);
  ASSERT_TRUE(broad_serial.ok());
  std::string expected = Signature(*broad_serial);
  ASSERT_TRUE(env.sharded(0).Execute(selective, 1).ok());
  auto broad_after = env.sharded(0).Execute(broad, 20);
  ASSERT_TRUE(broad_after.ok());
  EXPECT_EQ(Signature(*broad_after), expected);
  // And byte-stability across repeated identical executions.
  auto again = env.sharded(0).Execute(broad, 20);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(Signature(*again), expected);
}

TEST(ShardedDeterminismTest, DegradedShardCostsCandidatesNotCorrectness) {
  LubmConfig config;
  config.universities = 1;
  DataGraph graph = DataGraph::FromTriples(GenerateLubm(config));
  Thesaurus thesaurus = Thesaurus::BuiltinEnglish();
  std::string dir = testing::TempDir() + "/sdet_degraded";
  RemoveTree(dir);
  ShardedIndexOptions options;
  options.num_shards = 2;
  ASSERT_TRUE(BuildShardedIndex(graph, dir, options).ok());
  ASSERT_TRUE(
      Env::Default()->RemoveFile(dir + "/shard-0001/index.meta").ok());

  ShardedIndex index;
  ASSERT_TRUE(index.Open(&graph, dir, /*strict=*/false).ok());
  ASSERT_EQ(index.degraded_shards(), 1u);
  EngineOptions engine_options;
  engine_options.obs.metrics = false;
  ShardedEngine engine(&graph, &index, &thesaurus, engine_options);

  std::vector<BenchmarkQuery> queries = MakeLubmQueries();
  for (size_t i = 0; i < queries.size(); i += 4) {
    auto parsed = ParseSparql(queries[i].sparql);
    ASSERT_TRUE(parsed.ok());
    QueryGraph qg = parsed->ToQueryGraph(graph.shared_dict());
    QueryStats stats;
    auto got = engine.Execute(qg, 10, &stats);
    // A degraded shard must never fail the query...
    ASSERT_TRUE(got.ok()) << queries[i].name << ": " << got.status();
    EXPECT_EQ(stats.shards_degraded, 1u);
    // ...and every returned answer must use only shard-0 paths.
    for (const Answer& a : *got) {
      for (const ScoredPath& sp : a.parts) {
        EXPECT_EQ(index.OwnerOf(sp.id), 0u);
      }
    }
    // Determinism holds among the survivors too.
    auto again = engine.Execute(qg, 10);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(Signature(*again), Signature(*got));
  }
}

}  // namespace
}  // namespace sama

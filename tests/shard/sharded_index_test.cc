// Sharded index build/open: the assembled global id space must be a
// bijection onto the single-index id space, sidecars must reject
// mismatched graphs, and damaged shards must degrade (non-strict) or
// fail (strict) — never silently mix.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "datasets/lubm.h"
#include "graph/data_graph.h"
#include "index/path_index.h"
#include "shard/sharded_index.h"

namespace sama {
namespace {

// Removes base/shard-*/files, base/shard-* and base/* — the fixed
// two-level shape of a sharded index dir.
void RemoveTree(const std::string& base) {
  Env* env = Env::Default();
  auto entries = env->ListDir(base);
  if (!entries.ok()) return;
  for (const std::string& name : *entries) {
    std::string path = base + "/" + name;
    auto sub = env->ListDir(path);
    if (sub.ok()) {
      for (const std::string& inner : *sub) {
        env->RemoveFile(path + "/" + inner).ok();
      }
      env->RemoveDir(path).ok();
    } else {
      env->RemoveFile(path).ok();
    }
  }
  env->RemoveDir(base).ok();
}

std::string FreshDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/sharded_" + name;
  RemoveTree(dir);
  return dir;
}

class ShardedIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LubmConfig config;
    config.universities = 1;
    graph_ = DataGraph::FromTriples(GenerateLubm(config));
  }
  DataGraph graph_;
};

TEST_F(ShardedIndexTest, GlobalIdsReproduceTheSingleIndexSpace) {
  PathIndex single;
  ASSERT_TRUE(single.Build(graph_, PathIndexOptions()).ok());

  std::string dir = FreshDir("ids");
  ShardedIndexOptions options;
  options.num_shards = 3;
  ShardBuildReport report;
  ASSERT_TRUE(BuildShardedIndex(graph_, dir, options, &report).ok());
  EXPECT_EQ(report.total_paths, single.path_count());
  EXPECT_TRUE(IsShardedIndexDir(dir));

  ShardedIndex sharded;
  ASSERT_TRUE(sharded.Open(&graph_, dir, /*strict=*/true).ok());
  ASSERT_EQ(sharded.num_shards(), 3u);
  EXPECT_EQ(sharded.degraded_shards(), 0u);
  EXPECT_EQ(sharded.total_paths(), single.path_count());

  // Every global id owned exactly once, and the local→global map is
  // strictly increasing (the monotone-enumeration property).
  std::vector<int> owned(sharded.total_paths(), 0);
  for (size_t s = 0; s < sharded.num_shards(); ++s) {
    ASSERT_NE(sharded.shard(s), nullptr);
    uint64_t count = sharded.shard(s)->path_count();
    for (uint64_t local = 0; local < count; ++local) {
      PathId g = sharded.GlobalId(s, local);
      ASSERT_LT(g, sharded.total_paths());
      ++owned[g];
      EXPECT_EQ(sharded.OwnerOf(g), s);
      if (local > 0) {
        EXPECT_GT(g, sharded.GlobalId(s, local - 1));
      }
    }
  }
  for (uint64_t g = 0; g < sharded.total_paths(); ++g) {
    EXPECT_EQ(owned[g], 1) << "global id " << g;
  }

  // A shard's path `local` must be byte-identical to the single
  // index's path GlobalId(s, local).
  for (size_t s = 0; s < sharded.num_shards(); ++s) {
    uint64_t count = sharded.shard(s)->path_count();
    for (uint64_t local = 0; local < count; local += 7) {
      Path from_shard, from_single;
      ASSERT_TRUE(sharded.shard(s)->GetPath(local, &from_shard).ok());
      ASSERT_TRUE(
          single.GetPath(sharded.GlobalId(s, local), &from_single).ok());
      EXPECT_EQ(from_shard.ToString(graph_.dict()),
                from_single.ToString(graph_.dict()));
    }
  }
}

TEST_F(ShardedIndexTest, OpenRejectsTheWrongGraph) {
  std::string dir = FreshDir("wrong_graph");
  ShardedIndexOptions options;
  options.num_shards = 2;
  ASSERT_TRUE(BuildShardedIndex(graph_, dir, options).ok());

  LubmConfig other_config;
  other_config.universities = 1;
  other_config.seed = 99;
  DataGraph other = DataGraph::FromTriples(GenerateLubm(other_config));
  ShardedIndex sharded;
  Status st = sharded.Open(&other, dir, /*strict=*/false);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), Status::Code::kInvalidArgument);
}

TEST_F(ShardedIndexTest, MissingMetaIsNotFound) {
  ShardedIndex sharded;
  Status st =
      sharded.Open(&graph_, FreshDir("missing"), /*strict=*/false);
  EXPECT_EQ(st.code(), Status::Code::kNotFound);
  EXPECT_FALSE(IsShardedIndexDir(FreshDir("missing")));
}

TEST_F(ShardedIndexTest, DamagedShardMapDegradesOrFails) {
  std::string dir = FreshDir("damaged_map");
  ShardedIndexOptions options;
  options.num_shards = 2;
  ASSERT_TRUE(BuildShardedIndex(graph_, dir, options).ok());
  // Garbage over shard 1's id map: the shard index itself still opens,
  // but its ids can no longer be trusted.
  std::vector<uint8_t> garbage = {0xde, 0xad, 0xbe, 0xef};
  ASSERT_TRUE(Env::Default()
                  ->WriteFileBytes(dir + "/shard-0001/shard.map", garbage)
                  .ok());

  ShardedIndex strict;
  EXPECT_FALSE(strict.Open(&graph_, dir, /*strict=*/true).ok());

  ShardedIndex lax;
  ASSERT_TRUE(lax.Open(&graph_, dir, /*strict=*/false).ok());
  EXPECT_EQ(lax.degraded_shards(), 1u);
  EXPECT_TRUE(lax.shard_degraded(1));
  EXPECT_EQ(lax.shard(1), nullptr);
  ASSERT_NE(lax.shard(0), nullptr);
  // Shard 0's ids resolve; the degraded shard's ids resolve to the
  // "unowned" sentinel.
  EXPECT_EQ(lax.OwnerOf(lax.GlobalId(0, 0)), 0u);
  size_t unowned = 0;
  for (uint64_t g = 0; g < lax.total_paths(); ++g) {
    if (lax.OwnerOf(g) == lax.num_shards()) ++unowned;
  }
  EXPECT_EQ(unowned, lax.total_paths() - lax.shard(0)->path_count());
}

TEST_F(ShardedIndexTest, DamagedShardIndexDegrades) {
  std::string dir = FreshDir("damaged_index");
  ShardedIndexOptions options;
  options.num_shards = 2;
  ASSERT_TRUE(BuildShardedIndex(graph_, dir, options).ok());
  ASSERT_TRUE(Env::Default()->RemoveFile(dir + "/shard-0000/index.meta").ok());

  ShardedIndex strict;
  EXPECT_FALSE(strict.Open(&graph_, dir, /*strict=*/true).ok());

  ShardedIndex lax;
  ASSERT_TRUE(lax.Open(&graph_, dir, /*strict=*/false).ok());
  EXPECT_EQ(lax.degraded_shards(), 1u);
  EXPECT_TRUE(lax.shard_degraded(0));
}

TEST_F(ShardedIndexTest, EveryShardDamagedFailsOutright) {
  std::string dir = FreshDir("all_damaged");
  ShardedIndexOptions options;
  options.num_shards = 2;
  ASSERT_TRUE(BuildShardedIndex(graph_, dir, options).ok());
  ASSERT_TRUE(Env::Default()->RemoveFile(dir + "/shard-0000/index.meta").ok());
  ASSERT_TRUE(Env::Default()->RemoveFile(dir + "/shard-0001/index.meta").ok());
  ShardedIndex lax;
  EXPECT_FALSE(lax.Open(&graph_, dir, /*strict=*/false).ok());
}

TEST_F(ShardedIndexTest, MaxPathsCapIsRejected) {
  ShardedIndexOptions options;
  options.num_shards = 2;
  options.enumerate.max_paths = 100;
  Status st = BuildShardedIndex(graph_, FreshDir("cap"), options);
  EXPECT_EQ(st.code(), Status::Code::kInvalidArgument);
}

}  // namespace
}  // namespace sama

// The engine's durable update path (DESIGN.md §12): WAL-journalled
// insert/delete visible to queries immediately and byte-identical to an
// offline rebuild, journal replay on reopen, sealing on durability
// failures (store stays queryable), retryable append failures, deferred
// fsync + FlushUpdates, and checkpoint truncation.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "core/engine.h"
#include "datasets/govtrack.h"
#include "index/index_verify.h"
#include "index/path_index.h"
#include "obs/metrics.h"
#include "text/thesaurus.h"

namespace sama {
namespace {

Term Gov(const std::string& local) {
  return Term::Iri("http://gov.example.org/" + local);
}

std::string FreshDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/engine_update_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// Order-sensitive digest over scores and bindings. Deliberately does
// NOT include path ids: the incremental index assigns different slots
// than an offline rebuild, and the byte-identical contract is about the
// ANSWERS, not internal ids.
std::string AnswerDigest(const std::vector<Answer>& answers,
                         const TermDictionary& dict) {
  std::string d;
  for (const Answer& a : answers) {
    d += std::to_string(a.score) + "|";
    std::vector<std::string> bound;
    for (const Triple& t : a.ToTriples(dict)) {
      bound.push_back(t.subject.ToString() + " " + t.predicate.ToString() +
                      " " + t.object.ToString());
    }
    std::sort(bound.begin(), bound.end());
    for (const std::string& b : bound) d += b + ";";
    d += "#";
  }
  return d;
}

class EngineUpdateTest : public testing::Test {
 protected:
  void SetUp() override {
    FailPoints::ClearAll();
    base_ = GovTrackFigure1Triples();
    thesaurus_ = Thesaurus::BuiltinEnglish();
    male_patterns_ = {
        {Term::Variable("p"), Gov("gender"), Term::Literal("Male")}};
  }
  void TearDown() override { FailPoints::ClearAll(); }

  // The byte-identical oracle: a fresh offline build over the logical
  // triple set, queried with the same patterns.
  std::string OracleDigest(const std::vector<Triple>& triples,
                           const std::vector<Triple>& patterns, size_t k) {
    DataGraph graph = DataGraph::FromTriples(triples);
    PathIndex index;
    EXPECT_TRUE(index.Build(graph, PathIndexOptions()).ok());
    SamaEngine engine(&graph, &index, &thesaurus_);
    auto answers = engine.Execute(engine.BuildQueryGraph(patterns), k);
    EXPECT_TRUE(answers.ok()) << answers.status();
    return AnswerDigest(*answers, graph.dict());
  }

  // Logical triple set after applying `updates` to the base in order.
  std::vector<Triple> Applied(const std::vector<TripleUpdate>& updates) {
    std::vector<Triple> triples = base_;
    for (const TripleUpdate& u : updates) {
      if (u.op == TripleUpdate::Op::kInsert) {
        triples.push_back(u.triple);
      } else {
        for (auto it = triples.begin(); it != triples.end(); ++it) {
          if (it->subject == u.triple.subject &&
              it->predicate == u.triple.predicate &&
              it->object == u.triple.object) {
            triples.erase(it);
            break;
          }
        }
      }
    }
    return triples;
  }

  std::vector<Triple> base_;
  Thesaurus thesaurus_;
  std::vector<Triple> male_patterns_;
};

TEST_F(EngineUpdateTest, InsertAndDeleteMatchOfflineRebuild) {
  std::string dir = FreshDir("visible");
  DataGraph graph = DataGraph::FromTriples(base_);
  PathIndexOptions options;
  options.dir = dir;
  PathIndex index;
  ASSERT_TRUE(index.Build(graph, options).ok());
  SamaEngine engine(&graph, &index, &thesaurus_);
  UpdateOptions uo;
  uo.checkpoint_every = 0;
  ASSERT_TRUE(engine.EnableUpdates(&graph, &index, uo).ok());
  EXPECT_TRUE(engine.updates_enabled());
  EXPECT_TRUE(engine.updates_durable());

  std::vector<TripleUpdate> updates = {
      {TripleUpdate::Op::kInsert,
       {Gov("NewSenator"), Gov("gender"), Term::Literal("Male")}},
  };
  auto lsn = engine.InsertTriple(updates[0].triple);
  ASSERT_TRUE(lsn.ok()) << lsn.status();
  EXPECT_EQ(*lsn, 1u);
  auto after_insert =
      engine.Execute(engine.BuildQueryGraph(male_patterns_), 10);
  ASSERT_TRUE(after_insert.ok());
  EXPECT_EQ(after_insert->size(), 5u);
  EXPECT_EQ(AnswerDigest(*after_insert, graph.dict()),
            OracleDigest(Applied(updates), male_patterns_, 10));

  updates.push_back({TripleUpdate::Op::kDelete,
                     {Gov("JeffRyser"), Gov("gender"),
                      Term::Literal("Male")}});
  auto lsn2 = engine.DeleteTriple(updates[1].triple);
  ASSERT_TRUE(lsn2.ok()) << lsn2.status();
  EXPECT_EQ(*lsn2, 2u);
  auto after_delete =
      engine.Execute(engine.BuildQueryGraph(male_patterns_), 10);
  ASSERT_TRUE(after_delete.ok());
  EXPECT_EQ(after_delete->size(), 4u);
  EXPECT_EQ(AnswerDigest(*after_delete, graph.dict()),
            OracleDigest(Applied(updates), male_patterns_, 10));
  EXPECT_EQ(engine.last_update_lsn(), 2u);
}

TEST_F(EngineUpdateTest, ReopenReplaysTheJournal) {
  std::string dir = FreshDir("replay");
  std::vector<TripleUpdate> updates = {
      {TripleUpdate::Op::kInsert,
       {Gov("NewSenator"), Gov("gender"), Term::Literal("Male")}},
      {TripleUpdate::Op::kDelete,
       {Gov("JeffRyser"), Gov("gender"), Term::Literal("Male")}},
  };
  {
    DataGraph graph = DataGraph::FromTriples(base_);
    PathIndexOptions options;
    options.dir = dir;
    PathIndex index;
    ASSERT_TRUE(index.Build(graph, options).ok());
    SamaEngine engine(&graph, &index, &thesaurus_);
    UpdateOptions uo;
    uo.checkpoint_every = 0;  // Leave everything in the WAL.
    ASSERT_TRUE(engine.EnableUpdates(&graph, &index, uo).ok());
    for (const TripleUpdate& u : updates) {
      ASSERT_TRUE(engine.ApplyUpdate(u).ok());
    }
    // No checkpoint: the reopen below must recover from the WAL alone.
  }
  {
    DataGraph graph = DataGraph::FromTriples(base_);
    PathIndexOptions options;
    options.dir = dir;
    PathIndex index;
    ASSERT_TRUE(index.Open(&graph, options).ok());
    SamaEngine engine(&graph, &index, &thesaurus_);
    ASSERT_TRUE(engine.EnableUpdates(&graph, &index).ok());
    EXPECT_EQ(engine.last_update_lsn(), 2u);
    ASSERT_NE(engine.recovery_trace(), nullptr);
    auto answers =
        engine.Execute(engine.BuildQueryGraph(male_patterns_), 10);
    ASSERT_TRUE(answers.ok());
    EXPECT_EQ(AnswerDigest(*answers, graph.dict()),
              OracleDigest(Applied(updates), male_patterns_, 10));
  }
}

TEST_F(EngineUpdateTest, SyncFailureSealsUpdatesButNotQueries) {
  std::string dir = FreshDir("sealed");
  DataGraph graph = DataGraph::FromTriples(base_);
  PathIndexOptions options;
  options.dir = dir;
  PathIndex index;
  ASSERT_TRUE(index.Build(graph, options).ok());

  FaultyEnv env;  // Healthy base env, faults armed below.
  MetricsRegistry registry;
  SamaEngine engine(&graph, &index, &thesaurus_);
  UpdateOptions uo;
  uo.checkpoint_every = 0;
  uo.env = &env;
  uo.registry = &registry;
  ASSERT_TRUE(engine.EnableUpdates(&graph, &index, uo).ok());

  // Every fsync fails from now on (ENOSPC-style, no crash).
  FaultSpec spec;
  spec.fail_after = 0;
  env.Arm(IoOp::kSync, spec);
  Triple t{Gov("NewSenator"), Gov("gender"), Term::Literal("Male")};
  auto lsn = engine.InsertTriple(t);
  ASSERT_FALSE(lsn.ok()) << "fsync failure must fail the update";
  EXPECT_EQ(lsn.status().code(), Status::Code::kIoError);

  // The updater is sealed: further writes are refused...
  env.Disarm(IoOp::kSync);
  auto retry = engine.InsertTriple(t);
  ASSERT_FALSE(retry.ok());
  EXPECT_EQ(retry.status().code(), Status::Code::kIoError);

  // ...but reads keep working on the pre-failure state.
  auto answers = engine.Execute(engine.BuildQueryGraph(male_patterns_), 10);
  ASSERT_TRUE(answers.ok()) << answers.status();
  EXPECT_EQ(answers->size(), 4u);
  Counter* io_errors = registry.GetCounter("sama_io_errors_total", "");
  EXPECT_GE(io_errors->Value(), 1u);

  // A reopen with a healthy env heals: the failed update was never
  // acked and is NOT part of the recovered state.
  DataGraph graph2 = DataGraph::FromTriples(base_);
  PathIndex index2;
  ASSERT_TRUE(index2.Open(&graph2, options).ok());
  SamaEngine engine2(&graph2, &index2, &thesaurus_);
  ASSERT_TRUE(engine2.EnableUpdates(&graph2, &index2).ok());
  auto healed = engine2.InsertTriple(t);
  ASSERT_TRUE(healed.ok()) << healed.status();
  auto after = engine2.Execute(engine2.BuildQueryGraph(male_patterns_), 10);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->size(), 5u);
}

TEST_F(EngineUpdateTest, AppendFailureIsRetryableWithoutSealing) {
  std::string dir = FreshDir("retry");
  DataGraph graph = DataGraph::FromTriples(base_);
  PathIndexOptions options;
  options.dir = dir;
  PathIndex index;
  ASSERT_TRUE(index.Build(graph, options).ok());
  SamaEngine engine(&graph, &index, &thesaurus_);
  UpdateOptions uo;
  uo.checkpoint_every = 0;
  ASSERT_TRUE(engine.EnableUpdates(&graph, &index, uo).ok());

  // A failed append never reached the journal, so nothing is lost and
  // nothing needs sealing — the SAME LSN is reissued on retry.
  FailPoints::Arm("wal.append", Status::IoError("simulated ENOSPC"));
  Triple t{Gov("NewSenator"), Gov("gender"), Term::Literal("Male")};
  auto failed = engine.InsertTriple(t);
  ASSERT_FALSE(failed.ok());
  FailPoints::ClearAll();
  auto retried = engine.InsertTriple(t);
  ASSERT_TRUE(retried.ok()) << retried.status();
  EXPECT_EQ(*retried, 1u);
  auto answers = engine.Execute(engine.BuildQueryGraph(male_patterns_), 10);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->size(), 5u);
}

TEST_F(EngineUpdateTest, NonDurableUpdatesDeferTheFsync) {
  std::string dir = FreshDir("deferred");
  DataGraph graph = DataGraph::FromTriples(base_);
  PathIndexOptions options;
  options.dir = dir;
  PathIndex index;
  ASSERT_TRUE(index.Build(graph, options).ok());

  FaultyEnv env;  // Unarmed: used only to count fsyncs.
  SamaEngine engine(&graph, &index, &thesaurus_);
  UpdateOptions uo;
  uo.checkpoint_every = 0;
  uo.env = &env;
  ASSERT_TRUE(engine.EnableUpdates(&graph, &index, uo).ok());

  uint64_t syncs_before = env.op_count(IoOp::kSync);
  TripleUpdate lazy;
  lazy.op = TripleUpdate::Op::kInsert;
  lazy.triple = {Gov("NewSenator"), Gov("gender"), Term::Literal("Male")};
  lazy.durable = false;
  ASSERT_TRUE(engine.ApplyUpdate(lazy).ok());
  EXPECT_EQ(env.op_count(IoOp::kSync), syncs_before)
      << "a durable=false update paid an fsync";

  // The update is applied (visible) even though not yet synced.
  auto answers = engine.Execute(engine.BuildQueryGraph(male_patterns_), 10);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->size(), 5u);

  // FlushUpdates makes it durable (at least one fsync happens).
  ASSERT_TRUE(engine.FlushUpdates().ok());
  EXPECT_GT(env.op_count(IoOp::kSync), syncs_before);
}

TEST_F(EngineUpdateTest, CheckpointTruncatesAndSurvivesReopen) {
  std::string dir = FreshDir("checkpoint");
  std::vector<TripleUpdate> updates = {
      {TripleUpdate::Op::kInsert,
       {Gov("NewSenator"), Gov("gender"), Term::Literal("Male")}},
      {TripleUpdate::Op::kInsert,
       {Gov("NewSenator"), Gov("sponsor"), Gov("B1432")}},
      {TripleUpdate::Op::kDelete,
       {Gov("JeffRyser"), Gov("gender"), Term::Literal("Male")}},
  };
  {
    DataGraph graph = DataGraph::FromTriples(base_);
    PathIndexOptions options;
    options.dir = dir;
    PathIndex index;
    ASSERT_TRUE(index.Build(graph, options).ok());
    SamaEngine engine(&graph, &index, &thesaurus_);
    UpdateOptions uo;
    uo.checkpoint_every = 0;
    ASSERT_TRUE(engine.EnableUpdates(&graph, &index, uo).ok());
    for (const TripleUpdate& u : updates) {
      ASSERT_TRUE(engine.ApplyUpdate(u).ok());
    }
    ASSERT_TRUE(engine.CheckpointUpdates().ok());
  }
  // The checkpointed directory verifies clean (WAL included).
  auto report = VerifyIndexDir(dir);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->clean()) << report->ToString();
  {
    // Reopen sees the checkpointed state without needing the journal.
    DataGraph graph = DataGraph::FromTriples(base_);
    PathIndexOptions options;
    options.dir = dir;
    PathIndex index;
    ASSERT_TRUE(index.Open(&graph, options).ok());
    SamaEngine engine(&graph, &index, &thesaurus_);
    ASSERT_TRUE(engine.EnableUpdates(&graph, &index).ok());
    auto answers =
        engine.Execute(engine.BuildQueryGraph(male_patterns_), 10);
    ASSERT_TRUE(answers.ok());
    EXPECT_EQ(AnswerDigest(*answers, graph.dict()),
              OracleDigest(Applied(updates), male_patterns_, 10));
  }
}

TEST_F(EngineUpdateTest, UnrelatedCacheEntriesSurviveAnUpdate) {
  std::string dir = FreshDir("invalidation");
  DataGraph graph = DataGraph::FromTriples(base_);
  PathIndexOptions options;
  options.dir = dir;
  PathIndex index;
  ASSERT_TRUE(index.Build(graph, options).ok());
  SamaEngine engine(&graph, &index, &thesaurus_);
  UpdateOptions uo;
  uo.checkpoint_every = 0;
  ASSERT_TRUE(engine.EnableUpdates(&graph, &index, uo).ok());

  std::vector<Triple> health_patterns = {
      {Term::Variable("b"), Gov("subject"), Term::Literal("Health Care")}};
  QueryGraph health = engine.BuildQueryGraph(health_patterns);
  ASSERT_TRUE(engine.Execute(health, 10).ok());  // Prime the caches.
  QueryStats warm;
  ASSERT_TRUE(engine.Execute(health, 10, &warm).ok());
  ASSERT_GT(warm.path_lookup_cache.hits, 0u) << "cache never primed";

  // An update touching only the Male/gender cluster must not evict the
  // Health Care candidate lists (precise per-touched-cluster sweep).
  ASSERT_TRUE(
      engine
          .InsertTriple(
              {Gov("NewSenator"), Gov("gender"), Term::Literal("Male")})
          .ok());
  QueryStats after;
  ASSERT_TRUE(engine.Execute(health, 10, &after).ok());
  EXPECT_GT(after.path_lookup_cache.hits, 0u)
      << "an unrelated update flushed the lookup cache";

  // And the touched cluster serves fresh answers, not a stale memo.
  auto male = engine.Execute(engine.BuildQueryGraph(male_patterns_), 10);
  ASSERT_TRUE(male.ok());
  EXPECT_EQ(male->size(), 5u);
}

}  // namespace
}  // namespace sama

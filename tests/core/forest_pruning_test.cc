// The determinism contract of score-bounded forest search
// (ScoreParams::prune_search): for every dataset, k and thread count,
// the pruned search returns bit-identical answers — same scores, same
// tie-break order — as the exhaustive combination enumeration. The
// bound is admissible, so pruning may only skip combinations that
// cannot enter the top k; any divergence here means the bound
// over-estimated and discarded a winner.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "datasets/berlin.h"
#include "datasets/lubm.h"
#include "datasets/queries.h"
#include "datasets/scale_free.h"
#include "graph/data_graph.h"
#include "index/path_index.h"
#include "query/sparql.h"
#include "text/thesaurus.h"

namespace sama {
namespace {

constexpr size_t kTopK[] = {1, 5, 20};
constexpr size_t kThreadCounts[] = {1, 3};
// Generous budget: the exhaustive reference must terminate without
// tripping the anytime limit, or the comparison would be meaningless.
constexpr size_t kMaxExpansions = 5000000;

// Lossless textual signature (scores via %.17g round-trip exactly);
// answer order is preserved so tie-break divergence changes it.
std::string Signature(const std::vector<Answer>& answers) {
  std::string out;
  char buf[96];
  for (const Answer& a : answers) {
    std::snprintf(buf, sizeof(buf), "%.17g|%.17g|%.17g|", a.score,
                  a.lambda_total, a.psi_total);
    out += buf;
    for (size_t i = 0; i < a.parts.size(); ++i) {
      out += std::to_string(a.query_path_index[i]);
      out += ':';
      out += std::to_string(a.parts[i].id);
      out += ',';
    }
    out += a.consistent ? ";ok\n" : ";inconsistent\n";
  }
  return out;
}

class PruningEnv {
 public:
  explicit PruningEnv(std::vector<Triple> triples)
      : graph_(std::make_unique<DataGraph>(
            DataGraph::FromTriples(std::move(triples)))),
        index_(std::make_unique<PathIndex>()) {
    Status s = index_->Build(*graph_, PathIndexOptions());
    EXPECT_TRUE(s.ok()) << s.ToString();
    thesaurus_ = Thesaurus::BuiltinEnglish();
    for (size_t threads : kThreadCounts) {
      pruned_.push_back(MakeEngine(threads, /*prune=*/true));
      exhaustive_.push_back(MakeEngine(threads, /*prune=*/false));
    }
  }

  QueryGraph Parse(const std::string& sparql) {
    auto parsed = ParseSparql(sparql);
    EXPECT_TRUE(parsed.ok()) << parsed.status() << "\n" << sparql;
    return parsed->ToQueryGraph(graph_->shared_dict());
  }

  // Runs `query` at every (k, thread count) with pruning on and off and
  // asserts identical signatures. Accumulates the pruning counters so
  // callers can assert the bound actually fired somewhere.
  void CheckQuery(const std::string& name, const QueryGraph& query) {
    for (size_t k : kTopK) {
      for (size_t i = 0; i < pruned_.size(); ++i) {
        QueryStats exhaustive_stats;
        auto reference = exhaustive_[i]->Execute(query, k, &exhaustive_stats);
        ASSERT_TRUE(reference.ok())
            << name << " k=" << k << ": " << reference.status();
        // An exhaustive run that trips the anytime budget is not a
        // valid reference (the budget, not the enumeration order,
        // decided its answers). Expansion counts are deterministic and
        // grow with k, so the whole query is too heavy: skip it, the
        // remaining queries cover the contract.
        if (exhaustive_stats.search_truncated) {
          std::printf("  [skipped] %s from k=%zu: exhaustive run truncated "
                      "by the %zu-expansion budget\n",
                      name.c_str(), k, kMaxExpansions);
          return;
        }
        EXPECT_EQ(exhaustive_stats.search_bound_pruned, 0u);
        EXPECT_EQ(exhaustive_stats.search_roots_pruned, 0u);

        QueryStats pruned_stats;
        auto got = pruned_[i]->Execute(query, k, &pruned_stats);
        ASSERT_TRUE(got.ok()) << name << " k=" << k << ": " << got.status();
        // The exhaustive run completed, so the pruned one (which only
        // skips bound-refuted work) must complete too.
        EXPECT_FALSE(pruned_stats.search_truncated) << name << " k=" << k;
        EXPECT_EQ(Signature(*got), Signature(*reference))
            << name << " diverges from exhaustive search at k=" << k
            << " with " << kThreadCounts[i] << " thread(s)";
        // Pruning can only ever reduce the work done.
        EXPECT_LE(pruned_stats.search_expansions,
                  exhaustive_stats.search_expansions)
            << name << " k=" << k;
        total_pruned_ += pruned_stats.search_bound_pruned +
                         pruned_stats.search_roots_pruned;
      }
    }
  }

  uint64_t total_pruned() const { return total_pruned_; }

 private:
  std::unique_ptr<SamaEngine> MakeEngine(size_t threads, bool prune) {
    EngineOptions options;
    options.num_threads = threads;
    options.params.prune_search = prune;
    options.search.max_expansions = kMaxExpansions;
    return std::make_unique<SamaEngine>(graph_.get(), index_.get(),
                                        &thesaurus_, options);
  }

  std::unique_ptr<DataGraph> graph_;
  std::unique_ptr<PathIndex> index_;
  Thesaurus thesaurus_;
  std::vector<std::unique_ptr<SamaEngine>> pruned_;
  std::vector<std::unique_ptr<SamaEngine>> exhaustive_;
  uint64_t total_pruned_ = 0;
};

TEST(ForestPruningTest, LubmPrunedMatchesExhaustive) {
  LubmConfig config;
  config.universities = 1;
  PruningEnv env(GenerateLubm(config));
  // Every third benchmark query keeps the sweep minutes-safe while
  // covering each |Q| complexity group.
  std::vector<BenchmarkQuery> queries = MakeLubmQueries();
  for (size_t i = 0; i < queries.size(); i += 3) {
    env.CheckQuery(queries[i].name, env.Parse(queries[i].sparql));
  }
  // The workload is rich enough that the bound must fire somewhere;
  // otherwise the "optimization" is dead code.
  EXPECT_GT(env.total_pruned(), 0u);
}

TEST(ForestPruningTest, BerlinPrunedMatchesExhaustive) {
  BerlinConfig config;
  config.products = 100;
  PruningEnv env(GenerateBerlin(config));
  std::vector<BenchmarkQuery> queries = MakeBerlinQueries();
  for (size_t i = 0; i < queries.size(); i += 2) {
    env.CheckQuery(queries[i].name, env.Parse(queries[i].sparql));
  }
}

TEST(ForestPruningTest, ScaleFreePrunedMatchesExhaustive) {
  ScaleFreeProfile profile;
  profile.num_entities = 600;
  profile.seed = 42;
  PruningEnv env(GenerateScaleFree(profile));
  const std::string rel = "http://scale-free.example.org/rel#";
  const std::string ent = "http://scale-free.example.org/";
  env.CheckQuery(
      "chain",
      env.Parse("SELECT ?x WHERE { ?x <" + rel + "linksTo> ?y . ?y <" +
                rel + "linksTo> ?z . ?z <" + rel + "tag> \"red\" }"));
  env.CheckQuery(
      "hub-star",
      env.Parse("SELECT ?x WHERE { ?x <" + rel + "linksTo> <" + ent +
                "Entity0> . ?x <" + rel + "tag> ?t }"));
}

}  // namespace
}  // namespace sama

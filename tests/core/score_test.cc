#include "core/score.h"

#include <gtest/gtest.h>

namespace sama {
namespace {

Path PathWithNodes(std::initializer_list<NodeId> nodes) {
  Path p;
  p.nodes.assign(nodes);
  // Labels are irrelevant for χ; fill with node ids.
  for (NodeId n : p.nodes) p.node_labels.push_back(n);
  for (size_t i = 0; i + 1 < p.nodes.size(); ++i) p.edge_labels.push_back(0);
  return p;
}

TEST(ChiTest, CommonNodes) {
  Path a = PathWithNodes({1, 2, 3, 4});
  Path b = PathWithNodes({9, 3, 4});
  EXPECT_EQ(ChiCommonNodes(a, b), (std::vector<NodeId>{3, 4}));
  EXPECT_EQ(ChiSize(a, b), 2u);
}

TEST(ChiTest, DisjointPaths) {
  Path a = PathWithNodes({1, 2});
  Path b = PathWithNodes({3, 4});
  EXPECT_TRUE(ChiCommonNodes(a, b).empty());
}

TEST(ChiTest, IsSymmetric) {
  Path a = PathWithNodes({5, 6, 7});
  Path b = PathWithNodes({7, 8, 5});
  EXPECT_EQ(ChiSize(a, b), ChiSize(b, a));
  EXPECT_EQ(ChiSize(a, b), 2u);
}

TEST(ChiTest, SelfIntersectionIsAllNodes) {
  Path a = PathWithNodes({1, 2, 3});
  EXPECT_EQ(ChiSize(a, a), 3u);
}

TEST(PsiTest, PreservedIntersectionsCostE) {
  ScoreParams params;
  // Figure 4 example: χ(q2,q1) = 2 (?v2, Health Care).
  // (p10, p1) share {B1432, HC}: χp = 2 → cost e·2/2 = 1.
  EXPECT_DOUBLE_EQ(PsiCost(2, 2, params), 1.0);
}

TEST(PsiTest, LostIntersectionsCostMore) {
  ScoreParams params;
  // (p7, p1) share only HC: χp = 1 → cost e·2/1 = 2.
  EXPECT_DOUBLE_EQ(PsiCost(2, 1, params), 2.0);
  // Entirely lost: cost e·|χq| = 2.
  EXPECT_DOUBLE_EQ(PsiCost(2, 0, params), 2.0);
}

TEST(PsiTest, NoQueryIntersectionNoCost) {
  ScoreParams params;
  EXPECT_DOUBLE_EQ(PsiCost(0, 0, params), 0.0);
  EXPECT_DOUBLE_EQ(PsiCost(0, 5, params), 0.0);
}

TEST(PsiTest, ScalesWithE) {
  ScoreParams params;
  params.e = 3.0;
  EXPECT_DOUBLE_EQ(PsiCost(2, 1, params), 6.0);
  EXPECT_DOUBLE_EQ(PsiCost(2, 0, params), 6.0);
}

TEST(PsiTest, ExtraIntersectionsReduceCost) {
  ScoreParams params;
  // The answer shares more nodes than the query requires: cost < e.
  EXPECT_LT(PsiCost(1, 3, params), params.e);
}

TEST(ConformityRatioTest, MatchesFigure4Labels) {
  // Edge (p10, p1) is labelled [1]; edge (p7, p1) is labelled [0.5].
  EXPECT_DOUBLE_EQ(ConformityRatio(2, 2), 1.0);
  EXPECT_DOUBLE_EQ(ConformityRatio(2, 1), 0.5);
  EXPECT_DOUBLE_EQ(ConformityRatio(0, 0), 1.0);  // Nothing required.
}

TEST(LambdaTotalTest, SumsAlignments) {
  PathAlignment a1, a2;
  a1.lambda = 1.5;
  a2.lambda = 2.0;
  EXPECT_DOUBLE_EQ(LambdaTotal({a1, a2}), 3.5);
  EXPECT_DOUBLE_EQ(LambdaTotal({}), 0.0);
}

// Monotonicity of ψ in the preserved-intersection count: keeping more
// of the query's intersections never costs more.
class PsiMonotoneTest : public testing::TestWithParam<size_t> {};

TEST_P(PsiMonotoneTest, MorePreservedNeverWorse) {
  ScoreParams params;
  size_t chi_q = GetParam();
  for (size_t chi_p = 1; chi_p < 6; ++chi_p) {
    EXPECT_LE(PsiCost(chi_q, chi_p + 1, params),
              PsiCost(chi_q, chi_p, params));
  }
  if (chi_q > 0) {
    EXPECT_GE(PsiCost(chi_q, 0, params), PsiCost(chi_q, chi_q, params));
  }
}

INSTANTIATE_TEST_SUITE_P(ChiQ, PsiMonotoneTest, testing::Values(0, 1, 2, 5));

}  // namespace
}  // namespace sama

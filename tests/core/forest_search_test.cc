#include "core/forest_search.h"

#include <gtest/gtest.h>

#include <chrono>
#include <set>

#include "testing/fixtures.h"

namespace sama {
namespace {

class ForestSearchTest : public testing::Test {
 protected:
  std::vector<Answer> Search(const QueryGraph& query,
                             ForestSearchOptions options = {}) {
    IntersectionQueryGraph ig(query);
    auto clusters = BuildClusters(query, env_.index(), &env_.thesaurus(),
                                  params_, ClusteringOptions());
    EXPECT_TRUE(clusters.ok());
    auto answers = ForestSearch(query, ig, *clusters, params_, options);
    EXPECT_TRUE(answers.ok());
    return std::move(answers).value();
  }

  std::set<std::string> AnswerPathSet(const Answer& a) {
    std::set<std::string> out;
    for (const ScoredPath& part : a.parts) {
      out.insert(env_.Render(part.path));
    }
    return out;
  }

  testing_util::GovTrackEnv env_;
  ScoreParams params_;
};

TEST_F(ForestSearchTest, FirstSolutionIsP1P10P20) {
  // §5: "the first solution is obtained by combining the paths p1, p10
  // and p20".
  QueryGraph query = env_.Query1();
  std::vector<Answer> answers = Search(query, {});
  ASSERT_FALSE(answers.empty());
  EXPECT_EQ(AnswerPathSet(answers[0]),
            (std::set<std::string>{
                "CarlaBunes-sponsor-A0056-aTo-B1432-subject-Health Care",
                "PierceDickes-sponsor-B1432-subject-Health Care",
                "PierceDickes-gender-Male"}));
  EXPECT_DOUBLE_EQ(answers[0].lambda_total, 0.0);
  EXPECT_TRUE(answers[0].consistent);
  // Bindings of the exact answer.
  EXPECT_EQ(answers[0].binding.Lookup("v1")->DisplayLabel(), "A0056");
  EXPECT_EQ(answers[0].binding.Lookup("v2")->DisplayLabel(), "B1432");
  EXPECT_EQ(answers[0].binding.Lookup("v3")->DisplayLabel(), "PierceDickes");
}

TEST_F(ForestSearchTest, AnswersSortedByScore) {
  QueryGraph query = env_.Query1();
  std::vector<Answer> answers = Search(query, {});
  for (size_t i = 1; i < answers.size(); ++i) {
    EXPECT_LE(answers[i - 1].score, answers[i].score);
  }
}

TEST_F(ForestSearchTest, KLimitsAnswerCount) {
  QueryGraph query = env_.Query1();
  ForestSearchOptions options;
  options.k = 2;
  EXPECT_LE(Search(query, options).size(), 2u);
  options.k = 1;
  EXPECT_EQ(Search(query, options).size(), 1u);
}

TEST_F(ForestSearchTest, DashedForestEdgeRanksSecond) {
  // Figure 4: the (p7, p1) combination (ψ = 0.5 conformity) is a valid
  // but worse solution than (p10, p1).
  QueryGraph query = env_.Query1();
  ForestSearchOptions options;
  options.k = 5;
  std::vector<Answer> answers = Search(query, options);
  ASSERT_GE(answers.size(), 2u);
  EXPECT_EQ(AnswerPathSet(answers[1]),
            (std::set<std::string>{
                "CarlaBunes-sponsor-A0056-aTo-B1432-subject-Health Care",
                "JeffRyser-sponsor-B0045-subject-Health Care",
                "JeffRyser-gender-Male"}));
  EXPECT_GT(answers[1].score, answers[0].score);
  // The dashed combination does not bind ?v2 consistently.
  EXPECT_FALSE(answers[1].consistent);
}

TEST_F(ForestSearchTest, RequireConsistentBindingsFilters) {
  QueryGraph query = env_.Query1();
  ForestSearchOptions options;
  options.k = 50;
  std::vector<Answer> all = Search(query, options);
  options.require_consistent_bindings = true;
  std::vector<Answer> consistent_only = Search(query, options);
  EXPECT_LT(consistent_only.size(), all.size());
  for (const Answer& a : consistent_only) {
    EXPECT_TRUE(a.consistent);
  }
}

TEST_F(ForestSearchTest, RequireConnectedRejectsDisjointCombos) {
  QueryGraph query = env_.Query1();
  ForestSearchOptions options;
  options.k = 0;  // Everything.
  options.max_expansions = 10000;
  std::vector<Answer> connected = Search(query, options);
  // Among exact-alignment answers (Λ = 0), the AliceNimber chain can
  // only stand for q2 — and Alice has no gender-Male path to connect to
  // q3's cluster, so such combinations must have been rejected.
  for (const Answer& a : connected) {
    if (a.lambda_total != 0.0) continue;
    EXPECT_EQ(AnswerPathSet(a).count(
                  "AliceNimber-sponsor-B1432-subject-Health Care"),
              0u);
  }
  options.require_connected = false;
  std::vector<Answer> all = Search(query, options);
  EXPECT_GT(all.size(), connected.size());
}

TEST_F(ForestSearchTest, EmptyClusterWithPartialDisallowedMeansNoAnswers) {
  QueryGraph query = env_.engine().BuildQueryGraph(
      {{Term::Variable("x"), Term::Iri("http://gov.example.org/gender"),
        Term::Literal("Robot")},
       {Term::Variable("x"), Term::Iri("http://gov.example.org/gender"),
        Term::Literal("Male")}});
  ForestSearchOptions options;
  options.allow_partial = false;
  EXPECT_TRUE(Search(query, options).empty());
}

TEST_F(ForestSearchTest, EmptyClusterPenalisedWhenPartialAllowed) {
  QueryGraph query = env_.engine().BuildQueryGraph(
      {{Term::Variable("x"), Term::Iri("http://gov.example.org/gender"),
        Term::Literal("Robot")},
       {Term::Variable("x"), Term::Iri("http://gov.example.org/gender"),
        Term::Literal("Male")}});
  ForestSearchOptions options;
  options.allow_partial = true;
  std::vector<Answer> answers = Search(query, options);
  ASSERT_FALSE(answers.empty());
  // The unmatched path ?x-gender-Robot costs a·2 + c·1 = 4.
  EXPECT_DOUBLE_EQ(answers[0].lambda_total, 4.0);
}

TEST_F(ForestSearchTest, ToTriplesMaterialisesSubgraph) {
  QueryGraph query = env_.Query1();
  std::vector<Answer> answers = Search(query, {});
  ASSERT_FALSE(answers.empty());
  std::vector<Triple> triples = answers[0].ToTriples(env_.graph().dict());
  // p1 (3 edges) + p10 (2 edges) + p20 (1 edge), with the shared
  // B1432-subject-HC triple deduplicated = 5 distinct triples.
  EXPECT_EQ(triples.size(), 5u);
}

TEST_F(ForestSearchTest, BindingTupleExtractsSelectedVars) {
  QueryGraph query = env_.Query1();
  std::vector<Answer> answers = Search(query, {});
  ASSERT_FALSE(answers.empty());
  std::vector<Term> tuple = answers[0].BindingTuple({"v1", "v3", "nope"});
  ASSERT_EQ(tuple.size(), 3u);
  EXPECT_EQ(tuple[0].DisplayLabel(), "A0056");
  EXPECT_EQ(tuple[1].DisplayLabel(), "PierceDickes");
  EXPECT_EQ(tuple[2], Term::Literal(""));
}

TEST_F(ForestSearchTest, ExpansionBudgetBoundsWork) {
  QueryGraph query = env_.Query1();
  ForestSearchOptions options;
  options.k = 0;
  options.max_expansions = 3;
  EXPECT_LE(Search(query, options).size(), 3u);
}

// The sharded scatter injects a k-th-score bound into each per-shard
// search, and the server injects a per-request deadline; both can be
// set on the SAME options struct. The composition contract: a tight
// injected bound may only cut strictly-worse work (the leading tie
// group always survives, byte-identical), an expired deadline under an
// injected bound still returns Ok with a well-formed truncated list,
// and neither run mutates anything that could leak into a later search
// that does not inject the bound.
TEST_F(ForestSearchTest, DeadlineComposesWithInjectedBound) {
  QueryGraph query = env_.Query1();
  IntersectionQueryGraph ig(query);
  auto clusters = BuildClusters(query, env_.index(), &env_.thesaurus(),
                                params_, ClusteringOptions());
  ASSERT_TRUE(clusters.ok());

  ForestSearchOptions base;
  base.k = 5;
  auto reference = ForestSearch(query, ig, *clusters, params_, base);
  ASSERT_TRUE(reference.ok());
  ASSERT_FALSE(reference->empty());
  const double best = (*reference)[0].score;
  size_t tie_group = 0;
  while (tie_group < reference->size() &&
         (*reference)[tie_group].score == best) {
    ++tie_group;
  }

  // A sibling shard already published the global best score: pruning is
  // strictly-worse-loses, so every answer tied with it must still be
  // enumerated and rank first in canonical order.
  SharedScoreBound bound;
  bound.Offer(best);
  ForestSearchOptions tight = base;
  tight.shared_bound = &bound;
  ForestSearchStats fs;
  auto got = ForestSearch(query, ig, *clusters, params_, tight, nullptr,
                          nullptr, &fs);
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(fs.truncated);
  ASSERT_GE(got->size(), tie_group);
  for (size_t i = 0; i < tie_group; ++i) {
    EXPECT_EQ((*got)[i].score, (*reference)[i].score) << i;
    EXPECT_EQ((*got)[i].enum_key, (*reference)[i].enum_key) << i;
  }

  // Same injected bound with an already-expired deadline: still Ok, the
  // (possibly empty) answers stay sorted and k-capped, and the cut is
  // reported as truncation exactly like budget exhaustion.
  ForestSearchOptions dead = tight;
  dead.deadline =
      std::chrono::steady_clock::now() - std::chrono::seconds(1);
  ForestSearchStats cut_stats;
  auto cut = ForestSearch(query, ig, *clusters, params_, dead, nullptr,
                          nullptr, &cut_stats);
  ASSERT_TRUE(cut.ok());
  EXPECT_TRUE(cut_stats.truncated);
  EXPECT_LE(cut->size(), 5u);
  for (size_t i = 1; i < cut->size(); ++i) {
    EXPECT_LE((*cut)[i - 1].score, (*cut)[i].score);
  }

  // The bound lives in the caller-owned SharedScoreBound, not in any
  // search-side state: a fresh run without the injection reproduces the
  // reference bit for bit.
  auto again = ForestSearch(query, ig, *clusters, params_, base);
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again->size(), reference->size());
  for (size_t i = 0; i < again->size(); ++i) {
    EXPECT_EQ((*again)[i].score, (*reference)[i].score) << i;
    EXPECT_EQ((*again)[i].enum_key, (*reference)[i].enum_key) << i;
  }
}

}  // namespace
}  // namespace sama

#include "core/engine.h"

#include <gtest/gtest.h>

#include <set>

#include "query/sparql.h"
#include "testing/fixtures.h"

namespace sama {
namespace {

class EngineTest : public testing::Test {
 protected:
  testing_util::GovTrackEnv env_;
};

TEST_F(EngineTest, Query1TopAnswerIsExact) {
  QueryGraph q1 = env_.Query1();
  QueryStats stats;
  auto answers = env_.engine().Execute(q1, 10, &stats);
  ASSERT_TRUE(answers.ok()) << answers.status();
  ASSERT_FALSE(answers->empty());
  const Answer& best = (*answers)[0];
  EXPECT_DOUBLE_EQ(best.lambda_total, 0.0);
  EXPECT_EQ(best.binding.Lookup("v1")->DisplayLabel(), "A0056");
  EXPECT_EQ(best.binding.Lookup("v2")->DisplayLabel(), "B1432");
  EXPECT_EQ(best.binding.Lookup("v3")->DisplayLabel(), "PierceDickes");
  EXPECT_EQ(stats.num_query_paths, 3u);
  EXPECT_GT(stats.num_candidate_paths, 0u);
  EXPECT_EQ(stats.num_answers, answers->size());
}

TEST_F(EngineTest, RelaxedQuery2ReturnsQuery1Answer) {
  // §1: "the same answer of Q1 can be returned to the query Q2, for
  // which there is indeed no exact answer".
  QueryGraph q2 = env_.Query2();
  auto answers = env_.engine().Execute(q2, 10);
  ASSERT_TRUE(answers.ok()) << answers.status();
  ASSERT_FALSE(answers->empty());
  // No exact answer exists: every returned combination needed a
  // non-empty transformation.
  for (const Answer& a : *answers) {
    EXPECT_GT(a.lambda_total, 0.0);
  }
  // The Q1 answer entities appear among the top answers' bindings.
  bool found_b1432 = false;
  for (const Answer& a : *answers) {
    const Term* v2 = a.binding.Lookup("v2");
    if (v2 != nullptr && v2->DisplayLabel() == "B1432") found_b1432 = true;
  }
  EXPECT_TRUE(found_b1432);
}

TEST_F(EngineTest, ExecuteSparqlEndToEnd) {
  auto parsed = ParseSparql(
      "PREFIX gov: <http://gov.example.org/>\n"
      "SELECT ?v1 ?v2 ?v3 WHERE {\n"
      "  gov:CarlaBunes gov:sponsor ?v1 .\n"
      "  ?v1 gov:aTo ?v2 .\n"
      "  ?v2 gov:subject \"Health Care\" .\n"
      "  ?v3 gov:sponsor ?v2 .\n"
      "  ?v3 gov:gender \"Male\" .\n"
      "} LIMIT 3");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  auto answers = env_.engine().ExecuteSparql(*parsed);
  ASSERT_TRUE(answers.ok()) << answers.status();
  EXPECT_LE(answers->size(), 3u);
  ASSERT_FALSE(answers->empty());
  EXPECT_EQ((*answers)[0].binding.Lookup("v3")->DisplayLabel(), "PierceDickes");
}

TEST_F(EngineTest, ExplicitKOverridesLimit) {
  auto parsed = ParseSparql(
      "PREFIX gov: <http://gov.example.org/>\n"
      "SELECT ?p WHERE { ?p gov:gender \"Male\" } LIMIT 1");
  ASSERT_TRUE(parsed.ok());
  auto one = env_.engine().ExecuteSparql(*parsed);
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one->size(), 1u);
  auto three = env_.engine().ExecuteSparql(*parsed, 3);
  ASSERT_TRUE(three.ok());
  EXPECT_EQ(three->size(), 3u);
}

TEST_F(EngineTest, SynonymQueryFindsAnswers) {
  // "Man" instead of "Male": the thesaurus bridges the labels, so the
  // four Male sponsors still come back with λ = 0 (free relabel).
  auto answers = env_.engine().Execute(
      env_.engine().BuildQueryGraph(
          {{Term::Variable("x"), Term::Iri("http://gov.example.org/gender"),
            Term::Literal("Man")}}),
      10);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->size(), 4u);
  for (const Answer& a : *answers) {
    EXPECT_DOUBLE_EQ(a.lambda_total, 0.0);
  }
}

TEST_F(EngineTest, StatsTimingsArepopulated) {
  QueryStats stats;
  auto answers = env_.engine().Execute(env_.Query1(), 10, &stats);
  ASSERT_TRUE(answers.ok());
  EXPECT_GE(stats.total_millis, 0.0);
  EXPECT_GE(stats.total_millis, stats.search_millis);
}

TEST_F(EngineTest, ScoreParamsAffectRanking) {
  // With the edge-insertion weight cranked up, longer chains sink in
  // cl2's ordering but the exact answer still wins.
  EngineOptions options;
  options.params.weights.edge_insert = 50.0;
  SamaEngine heavy(&env_.graph(), &env_.index(), &env_.thesaurus(),
                   options);
  auto answers = heavy.Execute(env_.Query1(), 5);
  ASSERT_TRUE(answers.ok());
  ASSERT_FALSE(answers->empty());
  EXPECT_DOUBLE_EQ((*answers)[0].lambda_total, 0.0);
}

TEST_F(EngineTest, FiltersRestrictAnswers) {
  auto parsed = ParseSparql(
      "PREFIX gov: <http://gov.example.org/>\n"
      "SELECT ?p WHERE { ?p gov:gender \"Male\" . "
      "FILTER(?p != gov:PierceDickes) }");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  auto answers = env_.engine().ExecuteSparql(*parsed, 10);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->size(), 3u);  // 4 male sponsors minus Pierce.
  for (const Answer& a : *answers) {
    EXPECT_NE(a.binding.Lookup("p")->DisplayLabel(), "PierceDickes");
  }
}

TEST_F(EngineTest, RegexFilterMatchesSubstring) {
  auto parsed = ParseSparql(
      "PREFIX gov: <http://gov.example.org/>\n"
      "SELECT ?p WHERE { ?p gov:gender \"Male\" . "
      "FILTER regex(?p, \"ryser\") }");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  auto answers = env_.engine().ExecuteSparql(*parsed, 10);
  ASSERT_TRUE(answers.ok());
  ASSERT_EQ(answers->size(), 1u);
  EXPECT_EQ((*answers)[0].binding.Lookup("p")->DisplayLabel(),
            "JeffRyser");
}

TEST_F(EngineTest, UnrelatedQueryReturnsPartialOrNothing) {
  auto answers = env_.engine().Execute(
      env_.engine().BuildQueryGraph(
          {{Term::Variable("x"), Term::Iri("http://gov.example.org/owns"),
            Term::Literal("Spaceship")}}),
      10);
  ASSERT_TRUE(answers.ok());
  // Either nothing or heavily penalised partial answers.
  for (const Answer& a : *answers) {
    EXPECT_GT(a.score, 0.0);
  }
}

}  // namespace
}  // namespace sama

#include "core/alignment.h"

#include <gtest/gtest.h>

#include <memory>

#include "text/thesaurus.h"

namespace sama {
namespace {

// Builds a path whose labels alternate node, edge, node, ... Variables
// are written "?name", literals "label", IRIs "<label>".
class AlignmentTest : public testing::Test {
 protected:
  AlignmentTest() : dict_(std::make_shared<TermDictionary>()) {}

  Term ParseLabel(const std::string& s) {
    if (!s.empty() && s[0] == '?') return Term::Variable(s.substr(1));
    if (s.size() > 2 && s.front() == '<') {
      return Term::Iri(s.substr(1, s.size() - 2));
    }
    return Term::Literal(s);
  }

  Path MakePath(const std::vector<std::string>& elements) {
    Path p;
    for (size_t i = 0; i < elements.size(); ++i) {
      TermId id = dict_->Intern(ParseLabel(elements[i]));
      if (i % 2 == 0) {
        p.node_labels.push_back(id);
        p.nodes.push_back(static_cast<NodeId>(i));
      } else {
        p.edge_labels.push_back(id);
      }
    }
    return p;
  }

  PathAlignment Align(const Path& p, const Path& q,
                      const Thesaurus* thesaurus = nullptr) {
    LabelComparator cmp(dict_.get(), thesaurus);
    return AlignPaths(p, q, cmp, params_);
  }

  std::shared_ptr<TermDictionary> dict_;
  ScoreParams params_;  // Paper defaults a=1, b=0.5, c=2, d=1.
};

TEST_F(AlignmentTest, ExactAnswerHasLambdaZero) {
  // §4.3: p aligned with q1 needs only the substitution φ.
  Path p = MakePath({"CB", "sponsor", "A0056", "aTo", "B1432", "subject",
                     "HC"});
  Path q1 = MakePath({"CB", "sponsor", "?v1", "aTo", "?v2", "subject",
                      "HC"});
  PathAlignment a = Align(p, q1);
  EXPECT_DOUBLE_EQ(a.lambda, 0.0);
  EXPECT_TRUE(a.exact());
  EXPECT_EQ(a.phi.size(), 2u);
  EXPECT_EQ(a.phi.Lookup("v1")->value(), "A0056");
  EXPECT_EQ(a.phi.Lookup("v2")->value(), "B1432");
}

TEST_F(AlignmentTest, InsertionCostsBPlusD) {
  // §4.3: aligning p with q2 inserts one node and one edge into q2:
  // λ = (0 + b) + (0 + d) = 1.5.
  Path p = MakePath({"CB", "sponsor", "A0056", "aTo", "B1432", "subject",
                     "HC"});
  Path q2 = MakePath({"?v3", "sponsor", "?v2", "subject", "HC"});
  PathAlignment a = Align(p, q2);
  EXPECT_DOUBLE_EQ(a.lambda, 1.5);
  EXPECT_EQ(a.nodes_inserted_in_q, 1u);
  EXPECT_EQ(a.edges_inserted_in_q, 1u);
  EXPECT_EQ(a.nodes_of_p_not_in_q, 0u);
  // The scan binds ?v2 to the bill-side node and ?v3 to the sponsor.
  EXPECT_EQ(a.phi.Lookup("v3")->value(), "CB");
}

TEST_F(AlignmentTest, NodeMismatchCostsA) {
  // §4.3: λ(p', q1) = a = 1 due to the CB/JR mismatch.
  Path p_prime = MakePath({"JR", "sponsor", "A1589", "aTo", "B0532",
                           "subject", "HC"});
  Path q1 = MakePath({"CB", "sponsor", "?v1", "aTo", "?v2", "subject",
                      "HC"});
  PathAlignment a = Align(p_prime, q1);
  EXPECT_DOUBLE_EQ(a.lambda, 1.0);
  EXPECT_EQ(a.nodes_of_p_not_in_q, 1u);
  EXPECT_EQ(a.tau.Count(BasicOp::kNodeDelete), 1u);
}

TEST_F(AlignmentTest, EdgeMismatchCostsC) {
  Path p = MakePath({"X", "wrongEdge", "Y"});
  Path q = MakePath({"X", "rightEdge", "Y"});
  PathAlignment a = Align(p, q);
  EXPECT_DOUBLE_EQ(a.lambda, 2.0);  // c = 2.
  EXPECT_EQ(a.edges_of_p_not_in_q, 1u);
}

TEST_F(AlignmentTest, DeletionFromLongerQueryCostsAPlusC) {
  // q has one pair more than p: τ deletes a node (a) and an edge (c).
  Path p = MakePath({"?ignored", "e", "Y"});
  Path q = MakePath({"A", "e", "B", "e", "Y"});
  // p must be constants; rebuild properly.
  p = MakePath({"A", "e", "Y"});
  PathAlignment a = Align(p, q);
  EXPECT_DOUBLE_EQ(a.lambda, 3.0);  // a + c = 1 + 2.
  EXPECT_EQ(a.nodes_deleted_from_q, 1u);
  EXPECT_EQ(a.edges_deleted_from_q, 1u);
}

TEST_F(AlignmentTest, VariableEdgeBinds) {
  // Q2 of Figure 1(c) has the edge variable ?e1.
  Path p = MakePath({"CB", "sponsor", "B1432"});
  Path q = MakePath({"CB", "?e1", "?v2"});
  PathAlignment a = Align(p, q);
  EXPECT_DOUBLE_EQ(a.lambda, 0.0);
  ASSERT_NE(a.phi.Lookup("e1"), nullptr);
  EXPECT_EQ(a.phi.Lookup("e1")->value(), "sponsor");
}

TEST_F(AlignmentTest, SynonymIsFreeRelabel) {
  Thesaurus t;
  t.AddSynonyms({"male", "man"});
  Path p = MakePath({"JR", "gender", "Man"});
  Path q = MakePath({"?v3", "gender", "Male"});
  PathAlignment with = Align(p, q, &t);
  EXPECT_DOUBLE_EQ(with.lambda, 0.0);
  EXPECT_EQ(with.tau.Count(BasicOp::kNodeRelabel), 1u);
  // Without the thesaurus the same pair is a mismatch.
  PathAlignment without = Align(p, q, nullptr);
  EXPECT_DOUBLE_EQ(without.lambda, 1.0);
}

TEST_F(AlignmentTest, CaseInsensitiveLabelsMatchExactly) {
  Path p = MakePath({"x", "SPONSOR", "y"});
  Path q = MakePath({"x", "sponsor", "y"});
  EXPECT_DOUBLE_EQ(Align(p, q).lambda, 0.0);
}

TEST_F(AlignmentTest, ConflictingVariableRebindCosts) {
  // ?v repeated in q must bind to one value; p offers two.
  Path p = MakePath({"A", "e", "B", "e", "A2"});
  Path q = MakePath({"?v", "e", "B", "e", "?v"});
  PathAlignment a = Align(p, q);
  // Scanning backwards binds ?v -> A2 first; A then conflicts: cost a.
  EXPECT_DOUBLE_EQ(a.lambda, 1.0);
}

TEST_F(AlignmentTest, SelfAlignmentIsZeroForConstantPaths) {
  Path p = MakePath({"n0", "e0", "n1", "e1", "n2", "e2", "n3"});
  PathAlignment a = Align(p, p);
  EXPECT_DOUBLE_EQ(a.lambda, 0.0);
  EXPECT_TRUE(a.tau.empty());
}

TEST_F(AlignmentTest, MuchLongerDataPathInsertsAllExtraPairs) {
  Path p = MakePath({"A", "e", "x1", "e", "x2", "e", "x3", "e", "Z"});
  Path q = MakePath({"?s", "e", "Z"});
  PathAlignment a = Align(p, q);
  // 3 pairs inserted: 3·(b + d) = 4.5.
  EXPECT_DOUBLE_EQ(a.lambda, 4.5);
  EXPECT_EQ(a.nodes_inserted_in_q, 3u);
  EXPECT_EQ(a.edges_inserted_in_q, 3u);
}

TEST_F(AlignmentTest, PreferredInsertPositionFollowsCompatibility) {
  // The greedy scan matches compatible pairs in place and inserts the
  // incompatible middle pair (the §4.3 behaviour).
  Path p = MakePath({"CB", "sponsor", "A0056", "aTo", "B1432", "subject",
                     "HC"});
  Path q2 = MakePath({"?v3", "sponsor", "?v2", "subject", "HC"});
  PathAlignment a = Align(p, q2);
  // ?v2 must take the value adjacent to subject-HC, i.e. B1432.
  EXPECT_EQ(a.phi.Lookup("v2")->value(), "B1432");
}

// Property sweep: alignment cost is symmetric-free and bounded by the
// cost of rebuilding the whole query (delete everything + insert
// everything).
class AlignmentBoundTest : public AlignmentTest,
                           public testing::WithParamInterface<int> {};

TEST_P(AlignmentBoundTest, LambdaIsBoundedByFullRebuild) {
  int variant = GetParam();
  Path p = MakePath({"A" + std::to_string(variant), "e1", "B", "e2",
                     "C" + std::to_string(variant % 3)});
  Path q = MakePath({"?x", "e1", "B" + std::to_string(variant % 2), "e3",
                     "C"});
  PathAlignment a = Align(p, q);
  double rebuild =
      params_.a() * static_cast<double>(q.node_labels.size()) +
      params_.c() * static_cast<double>(q.edge_labels.size()) +
      params_.b() * static_cast<double>(p.node_labels.size()) +
      params_.d() * static_cast<double>(p.edge_labels.size());
  EXPECT_GE(a.lambda, 0.0);
  EXPECT_LE(a.lambda, rebuild);
}

INSTANTIATE_TEST_SUITE_P(Variants, AlignmentBoundTest,
                         testing::Range(0, 20));

}  // namespace
}  // namespace sama

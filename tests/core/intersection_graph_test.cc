#include "core/intersection_graph.h"

#include <gtest/gtest.h>

#include <set>

#include "datasets/govtrack.h"

namespace sama {
namespace {

// Index of the query path with the given rendering.
size_t IndexOf(const QueryGraph& q, const std::string& rendered) {
  for (size_t i = 0; i < q.paths().size(); ++i) {
    if (q.paths()[i].ToString(q.dict()) == rendered) return i;
  }
  ADD_FAILURE() << "path not found: " << rendered;
  return 0;
}

TEST(IntersectionGraphTest, Figure2Shape) {
  QueryGraph q = QueryGraph::FromPatterns(GovTrackQuery1Patterns());
  IntersectionQueryGraph ig(q);
  size_t q1 = IndexOf(q, "CarlaBunes-sponsor-?v1-aTo-?v2-subject-Health Care");
  size_t q2 = IndexOf(q, "?v3-sponsor-?v2-subject-Health Care");
  size_t q3 = IndexOf(q, "?v3-gender-Male");
  // Figure 2: q1–q2 share {?v2, Health Care}; q2–q3 share {?v3};
  // q1–q3 share nothing.
  EXPECT_EQ(ig.ChiQ(q1, q2), 2u);
  EXPECT_EQ(ig.ChiQ(q2, q3), 1u);
  EXPECT_EQ(ig.ChiQ(q1, q3), 0u);
  EXPECT_EQ(ig.edges().size(), 2u);
}

TEST(IntersectionGraphTest, ChiIsSymmetric) {
  QueryGraph q = QueryGraph::FromPatterns(GovTrackQuery1Patterns());
  IntersectionQueryGraph ig(q);
  for (size_t i = 0; i < ig.path_count(); ++i) {
    for (size_t j = 0; j < ig.path_count(); ++j) {
      EXPECT_EQ(ig.ChiQ(i, j), ig.ChiQ(j, i));
    }
  }
}

TEST(IntersectionGraphTest, NeighborsMatchEdges) {
  QueryGraph q = QueryGraph::FromPatterns(GovTrackQuery1Patterns());
  IntersectionQueryGraph ig(q);
  size_t q2 = IndexOf(q, "?v3-sponsor-?v2-subject-Health Care");
  // q2 intersects both q1 and q3.
  EXPECT_EQ(ig.Neighbors(q2).size(), 2u);
}

TEST(IntersectionGraphTest, SingotonQueryHasNoEdges) {
  std::vector<Triple> patterns = {
      {Term::Variable("a"), Term::Iri("p"), Term::Variable("b")}};
  QueryGraph q = QueryGraph::FromPatterns(patterns);
  IntersectionQueryGraph ig(q);
  EXPECT_TRUE(ig.edges().empty());
  EXPECT_EQ(ig.path_count(), 1u);
}

TEST(IntersectionGraphTest, SharedNodeIdsAreReported) {
  QueryGraph q = QueryGraph::FromPatterns(GovTrackQuery1Patterns());
  IntersectionQueryGraph ig(q);
  bool found_v2_hc_edge = false;
  for (const auto& edge : ig.edges()) {
    if (edge.shared.size() == 2) {
      found_v2_hc_edge = true;
      // The shared nodes are ?v2 and Health Care.
      std::set<std::string> labels;
      for (NodeId n : edge.shared) {
        labels.insert(q.graph().node_term(n).DisplayLabel());
      }
      EXPECT_EQ(labels, (std::set<std::string>{"?v2", "Health Care"}));
    }
  }
  EXPECT_TRUE(found_v2_hc_edge);
}

TEST(IntersectionGraphTest, OutOfRangeChiIsZero) {
  QueryGraph q = QueryGraph::FromPatterns(GovTrackQuery1Patterns());
  IntersectionQueryGraph ig(q);
  EXPECT_EQ(ig.ChiQ(99, 0), 0u);
}

}  // namespace
}  // namespace sama

#include "core/clustering.h"

#include <gtest/gtest.h>

#include <set>

#include <map>

#include "testing/fixtures.h"

namespace sama {
namespace {

class ClusteringTest : public testing::Test {
 protected:
  // Builds the Figure-3 clusters for Q1.
  std::vector<Cluster> BuildQ1Clusters(
      const ClusteringOptions& options = {}) {
    query_ = env_.Query1();
    auto clusters = BuildClusters(query_, env_.index(), &env_.thesaurus(),
                                  ScoreParams(), options);
    EXPECT_TRUE(clusters.ok()) << clusters.status();
    return std::move(clusters).value();
  }

  // The cluster whose query path renders as `rendered`.
  const Cluster& ClusterFor(const std::vector<Cluster>& clusters,
                            const std::string& rendered) {
    for (const Cluster& c : clusters) {
      if (query_.paths()[c.query_path_index].ToString(query_.dict()) ==
          rendered) {
        return c;
      }
    }
    ADD_FAILURE() << "no cluster for " << rendered;
    return clusters.front();
  }

  testing_util::GovTrackEnv env_;
  QueryGraph query_;
};

TEST_F(ClusteringTest, OneClusterPerQueryPath) {
  std::vector<Cluster> clusters = BuildQ1Clusters();
  EXPECT_EQ(clusters.size(), 3u);
}

TEST_F(ClusteringTest, Cl1MatchesFigure3) {
  std::vector<Cluster> clusters = BuildQ1Clusters();
  const Cluster& cl1 = ClusterFor(
      clusters, "CarlaBunes-sponsor-?v1-aTo-?v2-subject-Health Care");
  ASSERT_GE(cl1.size(), 6u);
  // Figure 3: p1 = CB-sponsor-A0056-aTo-B1432-subject-HC scores [0],
  // the other five length-4 chains score [1].
  EXPECT_EQ(env_.Render(cl1.paths[0].path),
            "CarlaBunes-sponsor-A0056-aTo-B1432-subject-Health Care");
  EXPECT_DOUBLE_EQ(cl1.paths[0].lambda(), 0.0);
  for (size_t i = 1; i < 6; ++i) {
    EXPECT_DOUBLE_EQ(cl1.paths[i].lambda(), 1.0) << i;
    EXPECT_EQ(cl1.paths[i].path.length(), 4u);
  }
}

TEST_F(ClusteringTest, Cl2MatchesFigure3) {
  std::vector<Cluster> clusters = BuildQ1Clusters();
  const Cluster& cl2 =
      ClusterFor(clusters, "?v3-sponsor-?v2-subject-Health Care");
  // Figure 3: four direct sponsorships at [0] then six longer chains at
  // [1.5].
  ASSERT_EQ(cl2.size(), 10u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(cl2.paths[i].lambda(), 0.0) << i;
    EXPECT_EQ(cl2.paths[i].path.length(), 3u);
  }
  for (size_t i = 4; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(cl2.paths[i].lambda(), 1.5) << i;
    EXPECT_EQ(cl2.paths[i].path.length(), 4u);
  }
}

TEST_F(ClusteringTest, Cl3MatchesFigure3) {
  std::vector<Cluster> clusters = BuildQ1Clusters();
  const Cluster& cl3 = ClusterFor(clusters, "?v3-gender-Male");
  // Figure 3: exactly the four Male sponsors, all at [0].
  ASSERT_EQ(cl3.size(), 4u);
  std::set<std::string> rendered;
  for (const ScoredPath& sp : cl3.paths) {
    EXPECT_DOUBLE_EQ(sp.lambda(), 0.0);
    rendered.insert(env_.Render(sp.path));
  }
  EXPECT_EQ(rendered, (std::set<std::string>{
                          "JeffRyser-gender-Male", "KeithFarmer-gender-Male",
                          "JohnMcRie-gender-Male",
                          "PierceDickes-gender-Male"}));
}

TEST_F(ClusteringTest, SamePathDifferentScoresAcrossClusters) {
  // The paper highlights p1 occurring in both cl1 (score 0) and cl2
  // (score 1.5).
  std::vector<Cluster> clusters = BuildQ1Clusters();
  const Cluster& cl1 = ClusterFor(
      clusters, "CarlaBunes-sponsor-?v1-aTo-?v2-subject-Health Care");
  const Cluster& cl2 =
      ClusterFor(clusters, "?v3-sponsor-?v2-subject-Health Care");
  std::map<std::string, double> cl2_scores;
  for (const ScoredPath& sp : cl2.paths) {
    cl2_scores[env_.Render(sp.path)] = sp.lambda();
  }
  std::string p1 = env_.Render(cl1.paths[0].path);
  ASSERT_TRUE(cl2_scores.count(p1));
  EXPECT_DOUBLE_EQ(cl1.paths[0].lambda(), 0.0);
  EXPECT_DOUBLE_EQ(cl2_scores[p1], 1.5);
}

TEST_F(ClusteringTest, ClustersAreSortedAscending) {
  std::vector<Cluster> clusters = BuildQ1Clusters();
  for (const Cluster& c : clusters) {
    for (size_t i = 1; i < c.size(); ++i) {
      EXPECT_LE(c.paths[i - 1].lambda(), c.paths[i].lambda());
    }
  }
}

TEST_F(ClusteringTest, MaxCandidatesTruncatesKeepingBest) {
  ClusteringOptions options;
  options.max_candidates_per_cluster = 2;
  std::vector<Cluster> clusters = BuildQ1Clusters(options);
  for (const Cluster& c : clusters) {
    EXPECT_LE(c.size(), 2u);
  }
  const Cluster& cl2 =
      ClusterFor(clusters, "?v3-sponsor-?v2-subject-Health Care");
  EXPECT_DOUBLE_EQ(cl2.paths[0].lambda(), 0.0);
}

TEST_F(ClusteringTest, VariableSinkFallsBackToLastConstant) {
  // ?x sponsor ?y: sink is a variable; the last constant is the edge
  // label "sponsor", so candidates are paths containing it.
  query_ = env_.engine().BuildQueryGraph(
      {{Term::Variable("x"), Term::Iri("http://gov.example.org/sponsor"),
        Term::Variable("y")}});
  auto clusters = BuildClusters(query_, env_.index(), &env_.thesaurus(),
                                ScoreParams(), ClusteringOptions());
  ASSERT_TRUE(clusters.ok());
  ASSERT_EQ(clusters->size(), 1u);
  // All 10 sponsor chains contain "sponsor".
  EXPECT_GE((*clusters)[0].size(), 10u);
}

TEST_F(ClusteringTest, ParallelClusteringMatchesSequential) {
  query_ = env_.Query1();
  ClusteringOptions sequential;
  ClusteringOptions parallel;
  parallel.num_threads = 4;
  auto a = BuildClusters(query_, env_.index(), &env_.thesaurus(),
                         ScoreParams(), sequential);
  auto b = BuildClusters(query_, env_.index(), &env_.thesaurus(),
                         ScoreParams(), parallel);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    ASSERT_EQ((*a)[i].size(), (*b)[i].size()) << i;
    EXPECT_EQ((*a)[i].query_path_index, (*b)[i].query_path_index);
    for (size_t j = 0; j < (*a)[i].size(); ++j) {
      EXPECT_EQ((*a)[i].paths[j].id, (*b)[i].paths[j].id);
      EXPECT_DOUBLE_EQ((*a)[i].paths[j].lambda(),
                       (*b)[i].paths[j].lambda());
    }
  }
}

TEST_F(ClusteringTest, EarlyExitMatchesExactComputation) {
  ClusteringOptions exact_options;
  exact_options.max_candidates_per_cluster = 3;
  exact_options.early_exit_alignment = false;
  ClusteringOptions early_options = exact_options;
  early_options.early_exit_alignment = true;
  std::vector<Cluster> exact = BuildQ1Clusters(exact_options);
  std::vector<Cluster> early = BuildQ1Clusters(early_options);
  ASSERT_EQ(exact.size(), early.size());
  for (size_t i = 0; i < exact.size(); ++i) {
    ASSERT_EQ(exact[i].size(), early[i].size()) << i;
    for (size_t j = 0; j < exact[i].size(); ++j) {
      EXPECT_EQ(exact[i].paths[j].id, early[i].paths[j].id) << i;
      EXPECT_DOUBLE_EQ(exact[i].paths[j].lambda(),
                       early[i].paths[j].lambda());
    }
  }
}

TEST_F(ClusteringTest, UnmatchableSinkYieldsEmptyCluster) {
  query_ = env_.engine().BuildQueryGraph(
      {{Term::Variable("x"), Term::Iri("http://gov.example.org/gender"),
        Term::Literal("Robot")}});
  auto clusters = BuildClusters(query_, env_.index(), &env_.thesaurus(),
                                ScoreParams(), ClusteringOptions());
  ASSERT_TRUE(clusters.ok());
  EXPECT_TRUE((*clusters)[0].empty());
}

}  // namespace
}  // namespace sama

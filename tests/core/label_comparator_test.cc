#include "core/label_comparator.h"

#include <gtest/gtest.h>

namespace sama {
namespace {

class LabelComparatorTest : public testing::Test {
 protected:
  TermId Id(const Term& t) { return dict_.Intern(t); }

  TermDictionary dict_;
};

TEST_F(LabelComparatorTest, SameIdIsExact) {
  LabelComparator cmp(&dict_, nullptr);
  TermId x = Id(Term::Iri("x"));
  EXPECT_EQ(cmp.Compare(x, x), LabelMatch::kExact);
}

TEST_F(LabelComparatorTest, VariableMatchesAnything) {
  LabelComparator cmp(&dict_, nullptr);
  TermId data = Id(Term::Literal("anything"));
  TermId var = Id(Term::Variable("v"));
  EXPECT_EQ(cmp.Compare(data, var), LabelMatch::kVariable);
}

TEST_F(LabelComparatorTest, CaseInsensitiveDisplayEqualIsExact) {
  LabelComparator cmp(&dict_, nullptr);
  TermId a = Id(Term::Literal("Male"));
  TermId b = Id(Term::Literal("MALE"));
  EXPECT_EQ(cmp.Compare(a, b), LabelMatch::kExact);
}

TEST_F(LabelComparatorTest, IriAndLiteralWithSameDisplayMatch) {
  LabelComparator cmp(&dict_, nullptr);
  // An IRI ...#Male displays as "Male" and matches the literal "Male" —
  // the element-to-element mapping works on labels, not term kinds.
  TermId iri = Id(Term::Iri("http://x.org/vocab#Male"));
  TermId lit = Id(Term::Literal("Male"));
  EXPECT_EQ(cmp.Compare(iri, lit), LabelMatch::kExact);
}

TEST_F(LabelComparatorTest, ThesaurusGivesSynonym) {
  Thesaurus t;
  t.AddSynonyms({"male", "man"});
  LabelComparator cmp(&dict_, &t);
  TermId man = Id(Term::Literal("Man"));
  TermId male = Id(Term::Literal("Male"));
  EXPECT_EQ(cmp.Compare(man, male), LabelMatch::kSynonym);
}

TEST_F(LabelComparatorTest, NoThesaurusMeansMismatch) {
  LabelComparator cmp(&dict_, nullptr);
  TermId man = Id(Term::Literal("Man"));
  TermId male = Id(Term::Literal("Male"));
  EXPECT_EQ(cmp.Compare(man, male), LabelMatch::kMismatch);
}

TEST_F(LabelComparatorTest, CacheReturnsConsistentResults) {
  Thesaurus t;
  t.AddSynonyms({"a", "b"});
  LabelComparator cmp(&dict_, &t);
  TermId a = Id(Term::Literal("a"));
  TermId b = Id(Term::Literal("b"));
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(cmp.Compare(a, b), LabelMatch::kSynonym);
  }
}

TEST_F(LabelComparatorTest, HypernymsWithinOneHopAreSynonymMatches) {
  Thesaurus t;
  t.AddHypernym("professor", "teacher");
  LabelComparator cmp(&dict_, &t);
  TermId prof = Id(Term::Literal("Professor"));
  TermId teacher = Id(Term::Literal("Teacher"));
  EXPECT_EQ(cmp.Compare(prof, teacher), LabelMatch::kSynonym);
}

}  // namespace
}  // namespace sama

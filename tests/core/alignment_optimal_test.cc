// The optimal (DP) alignment mode: never worse than the greedy scan,
// identical on clean instances, and strictly better on the adversarial
// shapes where the greedy scanner settles early.

#include <gtest/gtest.h>

#include <memory>

#include "common/random.h"
#include "core/alignment.h"

namespace sama {
namespace {

class AlignmentOptimalTest : public testing::Test {
 protected:
  AlignmentOptimalTest() : dict_(std::make_shared<TermDictionary>()) {}

  Term ParseLabel(const std::string& s) {
    if (!s.empty() && s[0] == '?') return Term::Variable(s.substr(1));
    return Term::Literal(s);
  }

  Path MakePath(const std::vector<std::string>& elements) {
    Path p;
    for (size_t i = 0; i < elements.size(); ++i) {
      TermId id = dict_->Intern(ParseLabel(elements[i]));
      if (i % 2 == 0) {
        p.node_labels.push_back(id);
        p.nodes.push_back(static_cast<NodeId>(i));
      } else {
        p.edge_labels.push_back(id);
      }
    }
    return p;
  }

  std::shared_ptr<TermDictionary> dict_;
  ScoreParams params_;
};

TEST_F(AlignmentOptimalTest, MatchesGreedyOnPaperExamples) {
  LabelComparator cmp(dict_.get(), nullptr);
  Path p = MakePath({"CB", "sponsor", "A0056", "aTo", "B1432", "subject",
                     "HC"});
  Path q1 = MakePath({"CB", "sponsor", "?v1", "aTo", "?v2", "subject",
                      "HC"});
  Path q2 = MakePath({"?v3", "sponsor", "?v2", "subject", "HC"});
  EXPECT_DOUBLE_EQ(AlignPathsOptimal(p, q1, cmp, params_).lambda, 0.0);
  EXPECT_DOUBLE_EQ(AlignPathsOptimal(p, q2, cmp, params_).lambda, 1.5);
  Path p_prime = MakePath({"JR", "sponsor", "A1589", "aTo", "B0532",
                           "subject", "HC"});
  EXPECT_DOUBLE_EQ(AlignPathsOptimal(p_prime, q1, cmp, params_).lambda,
                   1.0);
}

TEST_F(AlignmentOptimalTest, BeatsGreedyOnAdversarialShape) {
  // p's extra pair is edge-compatible with q's pair, luring the greedy
  // scanner into a mismatching in-place match; the DP inserts instead.
  //   q:  A  -e-> ?v
  //   p:  A  -e->  B  -e->  Z
  // Greedy: matches (e,B)/(e,?v) binding ?v→B? Backward: Z/?v bind;
  // then ip>jq with compatible (e,B)… match leaves A vs nothing —
  // inserted. Either way both find 1.5 here; the adversarial case needs
  // a constant mismatch lure:
  //   q:  A -e-> C
  //   p:  A -e-> X -e-> C
  // Greedy backward: C/C; pair (e,X)/(e,A): edge ok node X≠A mismatch →
  // insert (1.5); then (e,A)/(e,A) wait lengths… Let the numbers speak.
  LabelComparator cmp(dict_.get(), nullptr);
  Path q = MakePath({"A", "e", "C"});
  Path p = MakePath({"A", "e", "X", "e", "C"});
  double greedy = AlignPaths(p, q, cmp, params_).lambda;
  double optimal = AlignPathsOptimal(p, q, cmp, params_).lambda;
  EXPECT_LE(optimal, greedy);
  EXPECT_DOUBLE_EQ(optimal, 1.5);  // Insert (e,X); match A and C.
}

TEST_F(AlignmentOptimalTest, NeverWorseThanGreedyOnRandomPairs) {
  LabelComparator cmp(dict_.get(), nullptr);
  Random rng(4242);
  for (int round = 0; round < 200; ++round) {
    auto random_path = [&](bool vars) {
      std::vector<std::string> elements;
      size_t nodes = 2 + rng.Uniform(5);
      for (size_t i = 0; i < nodes; ++i) {
        if (i > 0) elements.push_back("e" + std::to_string(rng.Uniform(3)));
        bool variable = vars && rng.Bernoulli(0.3) && i + 1 < nodes;
        elements.push_back(variable ? "?v" + std::to_string(i)
                                    : "N" + std::to_string(rng.Uniform(5)));
      }
      return MakePath(elements);
    };
    Path p = random_path(false);
    Path q = random_path(true);
    double greedy = AlignPaths(p, q, cmp, params_).lambda;
    double optimal = AlignPathsOptimal(p, q, cmp, params_).lambda;
    EXPECT_LE(optimal, greedy + 1e-9)
        << p.ToString(*dict_) << " vs " << q.ToString(*dict_);
  }
}

TEST_F(AlignmentOptimalTest, RecordsBindingsAndOps) {
  LabelComparator cmp(dict_.get(), nullptr);
  Path p = MakePath({"CB", "sponsor", "A0056", "aTo", "B1432", "subject",
                     "HC"});
  Path q2 = MakePath({"?v3", "sponsor", "?v2", "subject", "HC"});
  PathAlignment a = AlignPathsOptimal(p, q2, cmp, params_);
  EXPECT_EQ(a.phi.Lookup("v3")->value(), "CB");
  EXPECT_EQ(a.tau.Count(BasicOp::kNodeInsert), 1u);
  EXPECT_EQ(a.tau.Count(BasicOp::kEdgeInsert), 1u);
  EXPECT_DOUBLE_EQ(a.lambda, a.tau.Cost(params_.weights));
}

TEST_F(AlignmentOptimalTest, DispatchThroughAlign) {
  LabelComparator cmp(dict_.get(), nullptr);
  Path q = MakePath({"A", "e", "C"});
  Path p = MakePath({"A", "e", "X", "e", "C"});
  ScoreParams dp_params;
  dp_params.alignment_mode = AlignmentMode::kOptimalDp;
  EXPECT_DOUBLE_EQ(Align(p, q, cmp, dp_params).lambda, 1.5);
  ScoreParams greedy_params;
  EXPECT_DOUBLE_EQ(Align(p, q, cmp, greedy_params).lambda,
                   AlignPaths(p, q, cmp, greedy_params).lambda);
}

}  // namespace
}  // namespace sama

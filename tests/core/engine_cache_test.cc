// The engine's query-side cache layer (QueryCacheOptions): warm runs
// must hit every layer, answers must be byte-identical with caching on,
// off, warm or cold, incremental updates must invalidate exactly the
// stale entries, and a record that fails its read is NEVER cached —
// the PR-2 degraded-read semantics survive the cache.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "core/engine.h"
#include "datasets/govtrack.h"
#include "datasets/lubm.h"
#include "datasets/queries.h"
#include "graph/data_graph.h"
#include "index/path_index.h"
#include "query/sparql.h"
#include "text/thesaurus.h"

namespace sama {
namespace {

std::string Signature(const std::vector<Answer>& answers) {
  std::string out;
  char buf[96];
  for (const Answer& a : answers) {
    std::snprintf(buf, sizeof(buf), "%.17g|%.17g|%.17g|", a.score,
                  a.lambda_total, a.psi_total);
    out += buf;
    for (size_t i = 0; i < a.parts.size(); ++i) {
      out += std::to_string(a.query_path_index[i]);
      out += ':';
      out += std::to_string(a.parts[i].id);
      out += ',';
    }
    out += a.consistent ? ";ok\n" : ";inconsistent\n";
  }
  return out;
}

// A self-contained graph + index + engine; each engine gets its OWN
// index because ConfigureQueryCache installs the index-side caches
// per index, not per engine.
struct CacheEnv {
  std::unique_ptr<DataGraph> graph;
  std::unique_ptr<PathIndex> index;
  Thesaurus thesaurus;
  std::unique_ptr<SamaEngine> engine;

  CacheEnv(std::vector<Triple> triples, bool cache_enabled,
           const PathIndexOptions& index_options = {}) {
    graph = std::make_unique<DataGraph>(
        DataGraph::FromTriples(std::move(triples)));
    index = std::make_unique<PathIndex>();
    Status s = index->Build(*graph, index_options);
    EXPECT_TRUE(s.ok()) << s.ToString();
    thesaurus = Thesaurus::BuiltinEnglish();
    EngineOptions options;
    options.cache.enabled = cache_enabled;
    engine = std::make_unique<SamaEngine>(graph.get(), index.get(),
                                          &thesaurus, options);
  }

  QueryGraph Parse(const std::string& sparql) {
    auto parsed = ParseSparql(sparql);
    EXPECT_TRUE(parsed.ok()) << parsed.status() << "\n" << sparql;
    return parsed->ToQueryGraph(graph->shared_dict());
  }
};

// The first benchmark query with a non-empty answer set (so warm-path
// and recovery assertions compare something real).
std::string FirstNonEmptyQuery(CacheEnv& env) {
  for (const BenchmarkQuery& bq : MakeLubmQueries()) {
    auto parsed = ParseSparql(bq.sparql);
    if (!parsed.ok()) continue;
    QueryGraph qg = parsed->ToQueryGraph(env.graph->shared_dict());
    auto answers = env.engine->Execute(qg, 10);
    if (answers.ok() && !answers->empty()) return bq.sparql;
  }
  ADD_FAILURE() << "no LUBM benchmark query returned answers";
  return MakeLubmQueries().front().sparql;
}

TEST(EngineCacheTest, WarmRunHitsEveryCacheLayer) {
  LubmConfig config;
  config.universities = 1;
  CacheEnv env(GenerateLubm(config), /*cache_enabled=*/true);
  QueryGraph qg = env.Parse(FirstNonEmptyQuery(env));
  env.engine->DropQueryCaches();  // Probing above warmed the caches.

  QueryStats cold;
  auto first = env.engine->Execute(qg, 10, &cold);
  ASSERT_TRUE(first.ok()) << first.status();
  QueryStats warm;
  auto second = env.engine->Execute(qg, 10, &warm);
  ASSERT_TRUE(second.ok()) << second.status();

  EXPECT_EQ(Signature(*second), Signature(*first));
  // The repeat query must be served from the caches: candidate-list
  // lookups, path records and full alignments all repeat verbatim.
  EXPECT_GT(warm.path_lookup_cache.hits, 0u);
  EXPECT_GT(warm.path_record_cache.hits, 0u);
  EXPECT_GT(warm.alignment_memo.hits, 0u);
  // And the cold run populated rather than hit the lookup memo.
  EXPECT_GT(cold.path_lookup_cache.insertions, 0u);
}

TEST(EngineCacheTest, DisabledCachesReportNoActivity) {
  LubmConfig config;
  config.universities = 1;
  CacheEnv env(GenerateLubm(config), /*cache_enabled=*/false);
  QueryGraph qg = env.Parse(MakeLubmQueries().front().sparql);
  QueryStats stats;
  for (int run = 0; run < 2; ++run) {
    auto answers = env.engine->Execute(qg, 10, &stats);
    ASSERT_TRUE(answers.ok()) << answers.status();
  }
  EXPECT_EQ(stats.posting_cache.lookups(), 0u);
  EXPECT_EQ(stats.path_lookup_cache.lookups(), 0u);
  EXPECT_EQ(stats.path_record_cache.lookups(), 0u);
  EXPECT_EQ(stats.label_match_cache.lookups(), 0u);
  EXPECT_EQ(stats.alignment_memo.lookups(), 0u);
  // (The thesaurus relatedness memo is internal to Thesaurus and not
  // governed by QueryCacheOptions.)
}

TEST(EngineCacheTest, AnswersIdenticalWithCachesOnAndOff) {
  LubmConfig config;
  config.universities = 1;
  CacheEnv cached(GenerateLubm(config), /*cache_enabled=*/true);
  CacheEnv uncached(GenerateLubm(config), /*cache_enabled=*/false);
  for (const BenchmarkQuery& bq : MakeLubmQueries()) {
    QueryGraph qc = cached.Parse(bq.sparql);
    QueryGraph qu = uncached.Parse(bq.sparql);
    auto reference = uncached.engine->Execute(qu, 10);
    ASSERT_TRUE(reference.ok()) << bq.name << ": " << reference.status();
    // Cold then warm: both must match the uncached reference exactly.
    auto cold = cached.engine->Execute(qc, 10);
    ASSERT_TRUE(cold.ok()) << bq.name << ": " << cold.status();
    auto warm = cached.engine->Execute(qc, 10);
    ASSERT_TRUE(warm.ok()) << bq.name << ": " << warm.status();
    EXPECT_EQ(Signature(*cold), Signature(*reference))
        << bq.name << " (cold) diverges from the uncached engine";
    EXPECT_EQ(Signature(*warm), Signature(*reference))
        << bq.name << " (warm) diverges from the uncached engine";
  }
}

TEST(EngineCacheTest, AddTripleKeepsWarmCachesCorrect) {
  CacheEnv cached(GovTrackFigure1Triples(), /*cache_enabled=*/true);
  CacheEnv uncached(GovTrackFigure1Triples(), /*cache_enabled=*/false);
  QueryGraph qc = cached.engine->BuildQueryGraph(GovTrackQuery1Patterns());
  QueryGraph qu = uncached.engine->BuildQueryGraph(GovTrackQuery1Patterns());

  // Warm every cache layer before the update.
  for (int run = 0; run < 2; ++run) {
    ASSERT_TRUE(cached.engine->Execute(qc, 10).ok());
  }

  // A new sponsor edge: creates new source→sink paths through A0056.
  auto gov = [](const std::string& local) {
    return Term::Iri("http://gov.example.org/" + local);
  };
  Triple extension{gov("NewSenator"), gov("sponsor"), gov("A0056")};
  uint64_t before = cached.index->path_count();
  ASSERT_TRUE(cached.index->AddTriple(cached.graph.get(), extension).ok());
  ASSERT_TRUE(uncached.index->AddTriple(uncached.graph.get(), extension).ok());
  ASSERT_GT(cached.index->path_count(), before)
      << "extension created no paths; the invalidation test is vacuous";

  auto got = cached.engine->Execute(qc, 10);
  auto want = uncached.engine->Execute(qu, 10);
  ASSERT_TRUE(got.ok()) << got.status();
  ASSERT_TRUE(want.ok()) << want.status();
  EXPECT_EQ(Signature(*got), Signature(*want))
      << "warm caches served stale entries across AddTriple";
}

TEST(EngineCacheTest, FailedRecordReadsAreNeverCached) {
  std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "sama_engine_cache_io")
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  FaultyEnv fenv;
  PathIndexOptions index_options;
  index_options.dir = dir;
  index_options.env = &fenv;
  LubmConfig config;
  config.universities = 1;
  CacheEnv env(GenerateLubm(config), /*cache_enabled=*/true, index_options);
  QueryGraph qg = env.Parse(FirstNonEmptyQuery(env));

  auto clean = env.engine->Execute(qg, 10);
  ASSERT_TRUE(clean.ok()) << clean.status();
  ASSERT_FALSE(clean->empty());
  std::string expected = Signature(*clean);

  // Force disk reads (page cache + query caches emptied), then fail
  // every read: candidates are skipped, not cached, not answered.
  ASSERT_TRUE(env.index->DropCaches().ok());
  FaultSpec all_reads_fail;
  all_reads_fail.fail_after = 0;
  fenv.Arm(IoOp::kRead, all_reads_fail);
  CacheCounters records_before = env.index->query_cache_counters().records;
  QueryStats degraded_stats;
  auto degraded = env.engine->Execute(qg, 10, &degraded_stats);
  ASSERT_TRUE(degraded.ok()) << degraded.status();
  EXPECT_TRUE(degraded->empty());
  EXPECT_GT(degraded_stats.corrupt_records_skipped, 0u);
  CacheCounters records_after = env.index->query_cache_counters().records;
  EXPECT_EQ(records_after.insertions, records_before.insertions)
      << "a failed read was inserted into the record cache";

  // Heal the env: the full answer set must come back. A cached failure
  // anywhere would keep the query degraded.
  fenv.Reset(0x5a5aF417ULL);
  auto recovered = env.engine->Execute(qg, 10);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(Signature(*recovered), expected);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace sama

// The determinism contract of parallel query execution: for any thread
// count, SamaEngine::Execute returns bit-identical answers — same
// combinations, same scores, same tie-break order — as the serial run.
// Exercised over all three synthetic dataset generators and several k,
// since tie density (LUBM's regular structure produces many equal-λ
// candidates) is exactly what breaks naive parallel top-k merges.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "datasets/berlin.h"
#include "datasets/lubm.h"
#include "datasets/queries.h"
#include "datasets/scale_free.h"
#include "graph/data_graph.h"
#include "index/path_index.h"
#include "query/sparql.h"
#include "text/thesaurus.h"

namespace sama {
namespace {

constexpr size_t kThreadCounts[] = {2, 4, 8};
constexpr size_t kTopK[] = {1, 5, 20};

// A lossless textual signature of a result list. Scores are printed
// with %.17g (round-trip exact for double), parts by (query path slot,
// data path id); answer order is preserved, so any tie-break
// divergence between runs changes the signature.
std::string Signature(const std::vector<Answer>& answers) {
  std::string out;
  char buf[96];
  for (const Answer& a : answers) {
    std::snprintf(buf, sizeof(buf), "%.17g|%.17g|%.17g|", a.score,
                  a.lambda_total, a.psi_total);
    out += buf;
    for (size_t i = 0; i < a.parts.size(); ++i) {
      out += std::to_string(a.query_path_index[i]);
      out += ':';
      out += std::to_string(a.parts[i].id);
      out += ',';
    }
    out += a.consistent ? ";ok\n" : ";inconsistent\n";
  }
  return out;
}

// One dataset + the serial reference engine and one engine per thread
// count, all sharing the same graph/index/thesaurus.
class Env {
 public:
  explicit Env(std::vector<Triple> triples)
      : graph_(std::make_unique<DataGraph>(
            DataGraph::FromTriples(std::move(triples)))),
        index_(std::make_unique<PathIndex>()) {
    Status s = index_->Build(*graph_, PathIndexOptions());
    EXPECT_TRUE(s.ok()) << s.ToString();
    thesaurus_ = Thesaurus::BuiltinEnglish();
    serial_ = MakeEngine(1);
    for (size_t threads : kThreadCounts) {
      parallel_.push_back(MakeEngine(threads));
    }
  }

  QueryGraph Parse(const std::string& sparql) {
    auto parsed = ParseSparql(sparql);
    EXPECT_TRUE(parsed.ok()) << parsed.status() << "\n" << sparql;
    return parsed->ToQueryGraph(graph_->shared_dict());
  }

  const DataGraph& graph() const { return *graph_; }

  // Runs `query` at every k on the serial engine and on every parallel
  // engine and asserts identical signatures.
  void CheckQuery(const std::string& name, const QueryGraph& query) {
    for (size_t k : kTopK) {
      auto serial = serial_->Execute(query, k);
      ASSERT_TRUE(serial.ok()) << name << " k=" << k << ": "
                               << serial.status();
      std::string expected = Signature(*serial);
      for (size_t i = 0; i < parallel_.size(); ++i) {
        QueryStats stats;
        auto got = parallel_[i]->Execute(query, k, &stats);
        ASSERT_TRUE(got.ok()) << name << " k=" << k << ": " << got.status();
        EXPECT_EQ(stats.threads_used, kThreadCounts[i]);
        EXPECT_EQ(Signature(*got), expected)
            << name << " diverges from serial at k=" << k << " with "
            << kThreadCounts[i] << " threads";
      }
    }
  }

 private:
  std::unique_ptr<SamaEngine> MakeEngine(size_t threads) {
    EngineOptions options;
    options.num_threads = threads;
    return std::make_unique<SamaEngine>(graph_.get(), index_.get(),
                                        &thesaurus_, options);
  }

  std::unique_ptr<DataGraph> graph_;
  std::unique_ptr<PathIndex> index_;
  Thesaurus thesaurus_;
  std::unique_ptr<SamaEngine> serial_;
  std::vector<std::unique_ptr<SamaEngine>> parallel_;
};

TEST(ParallelDeterminismTest, LubmWorkloadMatchesSerial) {
  LubmConfig config;
  config.universities = 1;
  Env env(GenerateLubm(config));
  // Every third benchmark query: one from each |Q| complexity group,
  // exact and relaxed alike, keeps the test minutes-safe.
  std::vector<BenchmarkQuery> queries = MakeLubmQueries();
  for (size_t i = 0; i < queries.size(); i += 3) {
    env.CheckQuery(queries[i].name, env.Parse(queries[i].sparql));
  }
}

TEST(ParallelDeterminismTest, BerlinWorkloadMatchesSerial) {
  BerlinConfig config;
  config.products = 100;
  Env env(GenerateBerlin(config));
  std::vector<BenchmarkQuery> queries = MakeBerlinQueries();
  for (size_t i = 0; i < queries.size(); i += 2) {
    env.CheckQuery(queries[i].name, env.Parse(queries[i].sparql));
  }
}

TEST(ParallelDeterminismTest, ScaleFreeMatchesSerial) {
  ScaleFreeProfile profile;
  profile.num_entities = 600;
  profile.seed = 42;
  Env env(GenerateScaleFree(profile));
  const std::string rel = "http://scale-free.example.org/rel#";
  const std::string ent = "http://scale-free.example.org/";
  // A chain ending in an attribute and a star aimed at the oldest
  // (highest in-degree) hub entity.
  env.CheckQuery(
      "chain",
      env.Parse("SELECT ?x WHERE { ?x <" + rel + "linksTo> ?y . ?y <" +
                rel + "linksTo> ?z . ?z <" + rel + "tag> \"red\" }"));
  env.CheckQuery(
      "hub-star",
      env.Parse("SELECT ?x WHERE { ?x <" + rel + "linksTo> <" + ent +
                "Entity0> . ?x <" + rel + "tag> ?t }"));
}

}  // namespace
}  // namespace sama

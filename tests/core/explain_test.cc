#include "core/explain.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"

namespace sama {
namespace {

class ExplainTest : public testing::Test {
 protected:
  testing_util::GovTrackEnv env_;
};

TEST_F(ExplainTest, ExactAnswerExplainsSubstitutionsOnly) {
  QueryGraph q1 = env_.Query1();
  auto answers = env_.engine().Execute(q1, 1);
  ASSERT_TRUE(answers.ok());
  ASSERT_FALSE(answers->empty());
  std::string text = ExplainAnswer(q1, (*answers)[0]);
  EXPECT_NE(text.find("answer score 2.00"), std::string::npos) << text;
  EXPECT_NE(text.find("exact (substitution only)"), std::string::npos);
  EXPECT_NE(text.find("?v1 := A0056"), std::string::npos);
  EXPECT_NE(text.find("?v2 := B1432"), std::string::npos);
  EXPECT_NE(text.find("?v3 := PierceDickes"), std::string::npos);
  EXPECT_NE(
      text.find("CarlaBunes-sponsor-A0056-aTo-B1432-subject-Health Care"),
      std::string::npos);
  EXPECT_EQ(text.find("[relaxed bindings]"), std::string::npos);
}

TEST_F(ExplainTest, RelaxedAnswerShowsTransformation) {
  QueryGraph q2 = env_.Query2();
  auto answers = env_.engine().Execute(q2, 1);
  ASSERT_TRUE(answers.ok());
  ASSERT_FALSE(answers->empty());
  std::string text = ExplainAnswer(q2, (*answers)[0]);
  // The relaxed query requires at least one non-exact alignment.
  EXPECT_NE(text.find("cost"), std::string::npos) << text;
}

TEST_F(ExplainTest, UnmatchedPathsAreReported) {
  QueryGraph q = env_.engine().BuildQueryGraph(
      {{Term::Variable("x"), Term::Iri("http://gov.example.org/gender"),
        Term::Literal("Robot")},
       {Term::Variable("x"), Term::Iri("http://gov.example.org/gender"),
        Term::Literal("Male")}});
  auto answers = env_.engine().Execute(q, 1);
  ASSERT_TRUE(answers.ok());
  ASSERT_FALSE(answers->empty());
  std::string text = ExplainAnswer(q, (*answers)[0]);
  EXPECT_NE(text.find("unmatched (whole-path deletion penalty applied)"),
            std::string::npos)
      << text;
}

TEST(DescribeTransformationTest, GroupsAndPrices) {
  Transformation tau;
  tau.Add(BasicOp::kNodeInsert);
  tau.Add(BasicOp::kNodeInsert);
  tau.Add(BasicOp::kEdgeInsert);
  std::string text = DescribeTransformation(tau, OpWeights());
  EXPECT_NE(text.find("2×node-insert"), std::string::npos) << text;
  EXPECT_NE(text.find("edge-insert"), std::string::npos);
  EXPECT_NE(text.find("cost 2.00"), std::string::npos);  // 2·0.5 + 1.
}

TEST(DescribeTransformationTest, EmptyIsExact) {
  EXPECT_EQ(DescribeTransformation(Transformation(), OpWeights()),
            "exact (substitution only)");
}

}  // namespace
}  // namespace sama

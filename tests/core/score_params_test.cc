// Property sweeps over the score parameters a, b, c, d, e: Theorem 1's
// coherence must hold for any positive weight assignment, and each
// parameter must scale exactly the operation class it prices.

#include <gtest/gtest.h>

#include <memory>

#include "core/alignment.h"
#include "core/score.h"

namespace sama {
namespace {

struct WeightCase {
  double a, b, c, d, e;
};

class ScoreParamsTest : public testing::TestWithParam<WeightCase> {
 protected:
  ScoreParamsTest() : dict_(std::make_shared<TermDictionary>()) {}

  Path MakePath(const std::vector<std::string>& elements) {
    Path p;
    for (size_t i = 0; i < elements.size(); ++i) {
      const std::string& s = elements[i];
      TermId id = dict_->Intern(s[0] == '?' ? Term::Variable(s.substr(1))
                                            : Term::Literal(s));
      if (i % 2 == 0) {
        p.node_labels.push_back(id);
        p.nodes.push_back(static_cast<NodeId>(i));
      } else {
        p.edge_labels.push_back(id);
      }
    }
    return p;
  }

  ScoreParams Params() {
    WeightCase w = GetParam();
    ScoreParams params;
    params.weights.node_delete = w.a;
    params.weights.node_insert = w.b;
    params.weights.edge_delete = w.c;
    params.weights.edge_insert = w.d;
    params.e = w.e;
    return params;
  }

  std::shared_ptr<TermDictionary> dict_;
};

TEST_P(ScoreParamsTest, NodeMismatchCostsExactlyA) {
  LabelComparator cmp(dict_.get(), nullptr);
  Path q = MakePath({"X", "edge", "Sink"});
  Path p = MakePath({"Y", "edge", "Sink"});
  EXPECT_DOUBLE_EQ(AlignPaths(p, q, cmp, Params()).lambda, GetParam().a);
}

TEST_P(ScoreParamsTest, EdgeMismatchCostsExactlyC) {
  LabelComparator cmp(dict_.get(), nullptr);
  Path q = MakePath({"X", "e1", "Sink"});
  Path p = MakePath({"X", "e2", "Sink"});
  EXPECT_DOUBLE_EQ(AlignPaths(p, q, cmp, Params()).lambda, GetParam().c);
}

TEST_P(ScoreParamsTest, InsertionCostsExactlyBPlusD) {
  LabelComparator cmp(dict_.get(), nullptr);
  Path q = MakePath({"?s", "e", "Sink"});
  Path p = MakePath({"A", "e", "Mid", "e", "Sink"});
  EXPECT_DOUBLE_EQ(AlignPaths(p, q, cmp, Params()).lambda,
                   GetParam().b + GetParam().d);
}

TEST_P(ScoreParamsTest, DeletionCostsExactlyAPlusC) {
  LabelComparator cmp(dict_.get(), nullptr);
  Path q = MakePath({"A", "e", "Mid2", "e", "Sink"});
  Path p = MakePath({"A", "e", "Sink"});
  EXPECT_DOUBLE_EQ(AlignPaths(p, q, cmp, Params()).lambda,
                   GetParam().a + GetParam().c);
}

TEST_P(ScoreParamsTest, PsiScalesWithE) {
  ScoreParams params = Params();
  EXPECT_DOUBLE_EQ(PsiCost(3, 1, params), GetParam().e * 3.0);
  EXPECT_DOUBLE_EQ(PsiCost(2, 2, params), GetParam().e);
  EXPECT_DOUBLE_EQ(PsiCost(0, 1, params), 0.0);
}

TEST_P(ScoreParamsTest, Theorem1CoherenceForAnyWeights) {
  // An answer needing a strict superset of basic operations must score
  // strictly worse, whatever the (positive) weights are.
  LabelComparator cmp(dict_.get(), nullptr);
  ScoreParams params = Params();
  Path q = MakePath({"A", "e", "?v", "e", "Sink"});
  Path exact = MakePath({"A", "e", "B", "e", "Sink"});
  Path one_mismatch = MakePath({"Z", "e", "B", "e", "Sink"});
  Path mismatch_plus_insert =
      MakePath({"Z", "e", "B", "x", "Extra", "e", "Sink"});
  double l0 = AlignPaths(exact, q, cmp, params).lambda;
  double l1 = AlignPaths(one_mismatch, q, cmp, params).lambda;
  double l2 = AlignPaths(mismatch_plus_insert, q, cmp, params).lambda;
  EXPECT_DOUBLE_EQ(l0, 0.0);
  EXPECT_LT(l0, l1);
  EXPECT_LT(l1, l2);
}

TEST_P(ScoreParamsTest, GammaEqualsLambdaUnderTheseWeights) {
  LabelComparator cmp(dict_.get(), nullptr);
  ScoreParams params = Params();
  Path q = MakePath({"A", "e", "?v", "e", "Sink"});
  Path p = MakePath({"Z", "e", "B", "x", "Extra", "e", "Sink"});
  PathAlignment alignment = AlignPaths(p, q, cmp, params);
  EXPECT_DOUBLE_EQ(alignment.lambda, alignment.tau.Cost(params.weights));
}

INSTANTIATE_TEST_SUITE_P(
    Weights, ScoreParamsTest,
    testing::Values(WeightCase{1, 0.5, 2, 1, 1},      // Paper defaults.
                    WeightCase{1, 1, 1, 1, 1},        // Uniform.
                    WeightCase{5, 0.1, 0.1, 0.1, 2},  // Node-heavy.
                    WeightCase{0.1, 0.1, 9, 4, 0.5},  // Edge-heavy.
                    WeightCase{2, 3, 1, 7, 10}),      // Arbitrary.
    [](const testing::TestParamInfo<WeightCase>& info) {
      return "Case" + std::to_string(info.index);
    });

}  // namespace
}  // namespace sama

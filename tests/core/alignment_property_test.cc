// Property tests over randomly generated path pairs for the alignment
// hot path:
//   * the λ-cutoff early exit is exactly equivalent to computing the
//     full alignment and comparing (aborted ⟺ full λ ≥ cutoff);
//   * AlignmentMemo::AlignCached is indistinguishable from Align() in
//     both alignment modes, for any cutoff, whatever state the memo is
//     in (empty, primed with a full entry, primed with an aborted one);
//   * the DP alignment never costs more than the greedy scan on
//     conflict-free queries (its optimality claim).
// 1200+ seeded cases keep the sweep deterministic and minutes-safe.

#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "core/alignment.h"
#include "core/label_comparator.h"
#include "core/score_params.h"
#include "graph/path.h"
#include "rdf/dictionary.h"
#include "text/thesaurus.h"

namespace sama {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct PathPair {
  Path p;  // Data path: constants only.
  Path q;  // Query path: constants + variables (all distinct).
};

// Draws |p| in [1, 8], |q| in [1, 8], labels from a 6-term vocabulary
// (small enough that matches and mismatches both occur often), and
// turns ~1/4 of q's node labels into fresh variables.
PathPair MakePair(std::mt19937& rng, TermDictionary* dict, int case_id) {
  std::uniform_int_distribution<int> len_dist(1, 8);
  std::uniform_int_distribution<int> label_dist(0, 5);
  std::uniform_int_distribution<int> var_dist(0, 3);
  PathPair pair;
  int np = len_dist(rng);
  for (int i = 0; i < np; ++i) {
    pair.p.nodes.push_back(static_cast<NodeId>(i));
    pair.p.node_labels.push_back(
        dict->Intern(Term::Literal("L" + std::to_string(label_dist(rng)))));
    if (i + 1 < np) {
      pair.p.edge_labels.push_back(
          dict->Intern(Term::Literal("e" + std::to_string(label_dist(rng)))));
    }
  }
  int nq = len_dist(rng);
  for (int i = 0; i < nq; ++i) {
    pair.q.nodes.push_back(static_cast<NodeId>(i));
    if (var_dist(rng) == 0) {
      // Unique name — no binding conflicts, so the DP optimum is a true
      // lower bound on the greedy cost.
      pair.q.node_labels.push_back(dict->Intern(Term::Variable(
          "v" + std::to_string(case_id) + "_" + std::to_string(i))));
    } else {
      pair.q.node_labels.push_back(
          dict->Intern(Term::Literal("L" + std::to_string(label_dist(rng)))));
    }
    if (i + 1 < nq) {
      pair.q.edge_labels.push_back(
          dict->Intern(Term::Literal("e" + std::to_string(label_dist(rng)))));
    }
  }
  return pair;
}

// Full structural equality — any divergence between the memoized and
// the direct computation must change at least one of these fields.
void ExpectSameAlignment(const PathAlignment& got, const PathAlignment& want,
                         const std::string& context) {
  EXPECT_EQ(got.lambda, want.lambda) << context;
  EXPECT_EQ(got.aborted, want.aborted) << context;
  EXPECT_EQ(got.nodes_of_p_not_in_q, want.nodes_of_p_not_in_q) << context;
  EXPECT_EQ(got.edges_of_p_not_in_q, want.edges_of_p_not_in_q) << context;
  EXPECT_EQ(got.nodes_inserted_in_q, want.nodes_inserted_in_q) << context;
  EXPECT_EQ(got.edges_inserted_in_q, want.edges_inserted_in_q) << context;
  EXPECT_EQ(got.nodes_deleted_from_q, want.nodes_deleted_from_q) << context;
  EXPECT_EQ(got.edges_deleted_from_q, want.edges_deleted_from_q) << context;
  EXPECT_EQ(got.tau.ops(), want.tau.ops()) << context;
  EXPECT_EQ(got.phi.bindings(), want.phi.bindings()) << context;
}

class AlignmentPropertyTest : public ::testing::Test {
 protected:
  AlignmentPropertyTest()
      : dict_(std::make_unique<TermDictionary>()),
        thesaurus_(Thesaurus::BuiltinEnglish()),
        cmp_(dict_.get(), &thesaurus_) {}

  std::unique_ptr<TermDictionary> dict_;
  Thesaurus thesaurus_;
  LabelComparator cmp_;
};

TEST_F(AlignmentPropertyTest, CutoffAbortsIffFullLambdaReachesCutoff) {
  std::mt19937 rng(20260806);
  ScoreParams params;  // Greedy (the cutoff only applies there).
  for (int i = 0; i < 1200; ++i) {
    PathPair pair = MakePair(rng, dict_.get(), i);
    PathAlignment full = Align(pair.p, pair.q, cmp_, params);
    ASSERT_FALSE(full.aborted);
    const double cutoffs[] = {0.0,
                              0.5,
                              full.lambda * 0.5,
                              full.lambda,
                              full.lambda + 0.25,
                              3.0,
                              kInf};
    for (double cutoff : cutoffs) {
      PathAlignment under = Align(pair.p, pair.q, cmp_, params, cutoff);
      std::string context = "case " + std::to_string(i) + " cutoff " +
                            std::to_string(cutoff) + " full lambda " +
                            std::to_string(full.lambda);
      EXPECT_EQ(under.aborted, full.lambda >= cutoff) << context;
      if (!under.aborted) ExpectSameAlignment(under, full, context);
    }
  }
}

TEST_F(AlignmentPropertyTest, MemoizedEqualsDirectInBothModes) {
  std::mt19937 rng(123457);
  for (AlignmentMode mode :
       {AlignmentMode::kGreedyLinear, AlignmentMode::kOptimalDp}) {
    ScoreParams params;
    params.alignment_mode = mode;
    AlignmentMemo memo(/*capacity=*/4096);
    for (int i = 0; i < 600; ++i) {
      PathPair pair = MakePair(rng, dict_.get(), i);
      PathAlignment direct = Align(pair.p, pair.q, cmp_, params);
      std::string context =
          "mode " + std::to_string(static_cast<int>(mode)) + " case " +
          std::to_string(i);
      // Miss (computes + stores), then hit (served from the memo).
      PathAlignment first = memo.AlignCached(static_cast<uint64_t>(i), pair.p,
                                             pair.q, cmp_, params);
      PathAlignment second = memo.AlignCached(static_cast<uint64_t>(i), pair.p,
                                              pair.q, cmp_, params);
      ExpectSameAlignment(first, direct, context + " (miss)");
      ExpectSameAlignment(second, direct, context + " (hit)");
    }
    CacheCounters c = memo.counters();
    EXPECT_EQ(c.hits, 600u);
    EXPECT_EQ(c.misses, 600u);
  }
}

TEST_F(AlignmentPropertyTest, MemoizedFullEntryAnswersAnyCutoff) {
  std::mt19937 rng(77);
  ScoreParams params;
  AlignmentMemo memo(4096);
  for (int i = 0; i < 400; ++i) {
    PathPair pair = MakePair(rng, dict_.get(), i);
    uint64_t id = static_cast<uint64_t>(i);
    // Prime the memo with the FULL alignment, then ask under cutoffs.
    PathAlignment full = memo.AlignCached(id, pair.p, pair.q, cmp_, params);
    const double cutoffs[] = {0.0, full.lambda * 0.5, full.lambda,
                              full.lambda + 0.25, kInf};
    for (double cutoff : cutoffs) {
      PathAlignment direct = Align(pair.p, pair.q, cmp_, params, cutoff);
      PathAlignment cached =
          memo.AlignCached(id, pair.p, pair.q, cmp_, params, cutoff);
      std::string context = "case " + std::to_string(i) + " cutoff " +
                            std::to_string(cutoff);
      EXPECT_EQ(cached.aborted, direct.aborted) << context;
      // Callers never read φ/τ/λ of an aborted alignment (ScoreChunk
      // discards it), so equality is only required on survivors.
      if (!direct.aborted) ExpectSameAlignment(cached, direct, context);
    }
  }
}

TEST_F(AlignmentPropertyTest, MemoizedAbortedEntryHandlesLooserAndStricter) {
  std::mt19937 rng(991);
  ScoreParams params;
  for (int i = 0; i < 400; ++i) {
    PathPair pair = MakePair(rng, dict_.get(), i);
    PathAlignment full = Align(pair.p, pair.q, cmp_, params);
    if (full.lambda <= 0.0) continue;  // Exact match: no abort possible.
    uint64_t id = static_cast<uint64_t>(i);
    // Prime with an ABORTED entry (cutoff at half the full λ).
    AlignmentMemo memo(64);
    double strict = full.lambda * 0.5;
    PathAlignment primed =
        memo.AlignCached(id, pair.p, pair.q, cmp_, params, strict);
    ASSERT_TRUE(primed.aborted) << "case " << i;
    // A cutoff at or below the memoized partial λ would abort too:
    // served without recomputation.
    PathAlignment stricter = memo.AlignCached(id, pair.p, pair.q, cmp_, params,
                                              primed.lambda * 0.5);
    EXPECT_TRUE(stricter.aborted) << "case " << i;
    // A looser cutoff the partial λ cannot answer must recompute; the
    // oracle is the direct call.
    double loose = full.lambda + 1.0;
    PathAlignment direct = Align(pair.p, pair.q, cmp_, params, loose);
    PathAlignment cached =
        memo.AlignCached(id, pair.p, pair.q, cmp_, params, loose);
    ASSERT_FALSE(direct.aborted) << "case " << i;
    ExpectSameAlignment(cached, direct, "case " + std::to_string(i));
    // The recomputed (now full) entry upgrades the memo in place.
    PathAlignment again =
        memo.AlignCached(id, pair.p, pair.q, cmp_, params, loose);
    ExpectSameAlignment(again, direct, "case " + std::to_string(i) + " again");
  }
}

TEST_F(AlignmentPropertyTest, DpNeverCostsMoreThanGreedyWithoutConflicts) {
  std::mt19937 rng(31337);
  ScoreParams greedy;
  ScoreParams optimal;
  optimal.alignment_mode = AlignmentMode::kOptimalDp;
  for (int i = 0; i < 1200; ++i) {
    PathPair pair = MakePair(rng, dict_.get(), i);
    PathAlignment g = Align(pair.p, pair.q, cmp_, greedy);
    PathAlignment o = Align(pair.p, pair.q, cmp_, optimal);
    // Variables are all distinct, so no after-the-fact conflict charges:
    // the DP result is the true minimum.
    EXPECT_LE(o.lambda, g.lambda + 1e-9) << "case " << i;
  }
}

}  // namespace
}  // namespace sama

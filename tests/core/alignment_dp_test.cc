// Oracle test: the greedy linear-time alignment can never report a λ
// below the optimal alignment cost (computed here by an O(n·m) dynamic
// program over the same cost model). A greedy λ below the optimum would
// mean the cost accounting is broken; equality on clean instances
// checks the greedy finds the optimum when no realignment is needed.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/random.h"
#include "core/alignment.h"

namespace sama {
namespace {

// DP reference: end-anchored alignment over (edge, node) pair units
// after the mandatory sink-node match, with
//   match cost  = edge mismatch (c) + node mismatch (a),
//   insert cost = b + d  (pair of p inserted into q),
//   delete cost = a + c  (pair of q deleted).
// Variables match anything at cost 0 (binding consistency ignored, as
// an optimistic lower bound).
class DpReference {
 public:
  DpReference(const LabelComparator* cmp, const ScoreParams* params)
      : cmp_(cmp), w_(&params->weights) {}

  double Optimal(const Path& p, const Path& q) const {
    double sink = NodeCost(p.node_labels.back(), q.node_labels.back());
    size_t np = p.length() - 1;  // Pair counts.
    size_t nq = q.length() - 1;
    // dp[i][j]: cost of aligning the last i pairs of p with the last j
    // pairs of q.
    std::vector<std::vector<double>> dp(np + 1,
                                        std::vector<double>(nq + 1, 0));
    const double insert_cost = w_->node_insert + w_->edge_insert;
    const double delete_cost = w_->node_delete + w_->edge_delete;
    for (size_t i = 1; i <= np; ++i) {
      dp[i][0] = static_cast<double>(i) * insert_cost;
    }
    for (size_t j = 1; j <= nq; ++j) {
      dp[0][j] = static_cast<double>(j) * delete_cost;
    }
    for (size_t i = 1; i <= np; ++i) {
      for (size_t j = 1; j <= nq; ++j) {
        // Pair i from the end of p: index np - i.
        size_t pi = np - i;
        size_t qj = nq - j;
        double match = dp[i - 1][j - 1] +
                       EdgeCost(p.edge_labels[pi], q.edge_labels[qj]) +
                       NodeCost(p.node_labels[pi], q.node_labels[qj]);
        double insert = dp[i - 1][j] + insert_cost;
        double erase = dp[i][j - 1] + delete_cost;
        dp[i][j] = std::min({match, insert, erase});
      }
    }
    return sink + dp[np][nq];
  }

 private:
  double NodeCost(TermId data, TermId query) const {
    return cmp_->Compare(data, query) == LabelMatch::kMismatch
               ? w_->node_delete
               : 0.0;
  }
  double EdgeCost(TermId data, TermId query) const {
    return cmp_->Compare(data, query) == LabelMatch::kMismatch
               ? w_->edge_delete
               : 0.0;
  }

  const LabelComparator* cmp_;
  const OpWeights* w_;
};

class AlignmentDpTest : public testing::TestWithParam<uint64_t> {
 protected:
  AlignmentDpTest() : dict_(std::make_shared<TermDictionary>()) {}

  TermId Label(const std::string& s) {
    return dict_->Intern(s[0] == '?' ? Term::Variable(s.substr(1))
                                     : Term::Literal(s));
  }

  Path RandomPath(Random* rng, size_t length, bool allow_variables) {
    Path p;
    for (size_t i = 0; i < length; ++i) {
      bool variable = allow_variables && rng->Bernoulli(0.3) &&
                      i + 1 < length;
      p.node_labels.push_back(Label(
          variable ? "?v" + std::to_string(i)
                   : "N" + std::to_string(rng->Uniform(6))));
      p.nodes.push_back(static_cast<NodeId>(i));
      if (i + 1 < length) {
        p.edge_labels.push_back(
            Label("e" + std::to_string(rng->Uniform(3))));
      }
    }
    return p;
  }

  std::shared_ptr<TermDictionary> dict_;
  ScoreParams params_;
};

TEST_P(AlignmentDpTest, GreedyNeverBeatsOptimal) {
  Random rng(GetParam() * 7919 + 13);
  LabelComparator cmp(dict_.get(), nullptr);
  DpReference reference(&cmp, &params_);
  for (int round = 0; round < 20; ++round) {
    Path p = RandomPath(&rng, 2 + rng.Uniform(6), /*allow_variables=*/false);
    Path q = RandomPath(&rng, 2 + rng.Uniform(6), /*allow_variables=*/true);
    double greedy = AlignPaths(p, q, cmp, params_).lambda;
    double optimal = reference.Optimal(p, q);
    EXPECT_GE(greedy + 1e-9, optimal)
        << "greedy reported an impossible λ for\n  p=" << p.ToString(*dict_)
        << "\n  q=" << q.ToString(*dict_);
  }
}

TEST_P(AlignmentDpTest, GreedyIsOptimalOnCleanInstances) {
  // An exact instantiation plus pure suffix extension: no realignment
  // choice exists, so greedy must equal the DP optimum.
  Random rng(GetParam() * 104729 + 7);
  LabelComparator cmp(dict_.get(), nullptr);
  DpReference reference(&cmp, &params_);
  Path q = RandomPath(&rng, 3 + rng.Uniform(3), /*allow_variables=*/true);
  Path p = q;
  for (TermId& label : p.node_labels) {
    if (dict_->term(label).is_variable()) {
      label = Label("C" + std::to_string(rng.Uniform(100)));
    }
  }
  // Prepend extra pairs to p (data path longer toward the source).
  for (int extra = 0; extra < 3; ++extra) {
    p.node_labels.insert(p.node_labels.begin(),
                         Label("X" + std::to_string(extra)));
    p.edge_labels.insert(p.edge_labels.begin(),
                         Label("xe" + std::to_string(extra)));
    p.nodes.push_back(static_cast<NodeId>(100 + extra));
    double greedy = AlignPaths(p, q, cmp, params_).lambda;
    EXPECT_DOUBLE_EQ(greedy, reference.Optimal(p, q));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlignmentDpTest,
                         testing::Range<uint64_t>(1, 16));

}  // namespace
}  // namespace sama

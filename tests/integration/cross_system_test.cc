// Cross-system consistency properties, checked over randomly generated
// graphs and queries:
//   * DOGMA finds exactly the exact matcher's matches (it only prunes);
//   * SAPPER's and BOUNDED's results are supersets of the exact ones;
//   * whenever an exact answer exists, Sama's answer list contains a
//     combination with Λ = 0 whose bindings are an exact match.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "baselines/bounded.h"
#include "baselines/dogma.h"
#include "baselines/exact.h"
#include "baselines/sapper.h"
#include "common/random.h"
#include "core/engine.h"
#include "eval/metrics.h"
#include "index/path_index.h"

namespace sama {
namespace {

// A small random layered DAG: `layers` layers of `width` entities, with
// random edges between consecutive layers drawn from a small predicate
// vocabulary, plus literal attributes on the last layer.
DataGraph RandomGraph(uint64_t seed) {
  Random rng(seed);
  // Mostly 2 layers so the source→sink structure matches the query
  // family below; deeper graphs exercise the skip path.
  size_t layers = 2 + (rng.Uniform(4) == 0 ? 1 : 0);
  size_t width = 3 + rng.Uniform(4);
  std::vector<std::vector<Term>> nodes(layers);
  for (size_t l = 0; l < layers; ++l) {
    for (size_t w = 0; w < width; ++w) {
      nodes[l].push_back(Term::Iri("http://rnd.org/n" + std::to_string(l) +
                                   "_" + std::to_string(w)));
    }
  }
  static const char* kPredicates[] = {"p", "q", "r"};
  static const char* kValues[] = {"red", "green", "blue"};
  std::vector<Triple> triples;
  for (size_t l = 0; l + 1 < layers; ++l) {
    for (size_t w = 0; w < width; ++w) {
      size_t fanout = 1 + rng.Uniform(2);
      for (size_t f = 0; f < fanout; ++f) {
        triples.push_back(
            {nodes[l][w],
             Term::Iri("http://rnd.org/" +
                       std::string(kPredicates[rng.Uniform(3)])),
             nodes[l + 1][rng.Uniform(width)]});
      }
    }
  }
  for (size_t w = 0; w < width; ++w) {
    if (rng.Bernoulli(0.7)) {
      triples.push_back({nodes[layers - 1][w],
                         Term::Iri("http://rnd.org/tag"),
                         Term::Literal(kValues[rng.Uniform(3)])});
    }
  }
  return DataGraph::FromTriples(triples);
}

// A random 2-3 pattern query over the same vocabulary. Subjects are
// constants from the source layer and the object chain ends at a tag
// literal, so query endpoints coincide with data sources/sinks (the
// condition under which exact answers align at Λ = 0).
std::vector<Triple> RandomQuery(uint64_t seed) {
  Random rng(seed * 31 + 5);
  static const char* kPredicates[] = {"p", "q", "r"};
  static const char* kValues[] = {"red", "green", "blue"};
  auto source = [&rng] {
    return Term::Iri("http://rnd.org/n0_" +
                     std::to_string(rng.Uniform(3)));
  };
  std::vector<Triple> patterns;
  patterns.push_back({source(),
                      Term::Iri("http://rnd.org/" +
                                std::string(kPredicates[rng.Uniform(3)])),
                      Term::Variable("y")});
  patterns.push_back({Term::Variable("y"), Term::Iri("http://rnd.org/tag"),
                      Term::Literal(kValues[rng.Uniform(3)])});
  if (rng.Bernoulli(0.5)) {
    // A second source constant sharing ?y.
    patterns.push_back(
        {source(),
         Term::Iri("http://rnd.org/" +
                   std::string(kPredicates[rng.Uniform(3)])),
         Term::Variable("y")});
  }
  return patterns;
}

std::set<std::string> TupleSet(const std::vector<Match>& matches,
                               const std::vector<std::string>& vars) {
  std::set<std::string> out;
  for (const Match& m : matches) {
    out.insert(TupleKey(m.BindingTuple(vars)));
  }
  return out;
}

class CrossSystemTest : public testing::TestWithParam<uint64_t> {};

TEST_P(CrossSystemTest, DogmaEqualsExact) {
  DataGraph graph = RandomGraph(GetParam());
  QueryGraph q = QueryGraph::FromPatterns(RandomQuery(GetParam()),
                                          graph.shared_dict());
  ExactMatcher exact(&graph);
  DogmaMatcher dogma(&graph);
  auto e = exact.Execute(q, 0);
  auto d = dogma.Execute(q, 0);
  ASSERT_TRUE(e.ok());
  ASSERT_TRUE(d.ok());
  std::vector<std::string> vars = {"y"};
  EXPECT_EQ(TupleSet(*e, vars), TupleSet(*d, vars));
}

TEST_P(CrossSystemTest, SapperIsSupersetOfExact) {
  DataGraph graph = RandomGraph(GetParam());
  QueryGraph q = QueryGraph::FromPatterns(RandomQuery(GetParam()),
                                          graph.shared_dict());
  ExactMatcher exact(&graph);
  SapperMatcher sapper(&graph);
  auto e = exact.Execute(q, 0);
  auto s = sapper.Execute(q, 0);
  ASSERT_TRUE(e.ok());
  ASSERT_TRUE(s.ok());
  std::vector<std::string> vars = {"y"};
  std::set<std::string> exact_set = TupleSet(*e, vars);
  std::set<std::string> sapper_set = TupleSet(*s, vars);
  for (const std::string& tuple : exact_set) {
    EXPECT_TRUE(sapper_set.count(tuple)) << "missing exact tuple";
  }
}

TEST_P(CrossSystemTest, BoundedIsSupersetOfExact) {
  DataGraph graph = RandomGraph(GetParam());
  QueryGraph q = QueryGraph::FromPatterns(RandomQuery(GetParam()),
                                          graph.shared_dict());
  ExactMatcher exact(&graph);
  BoundedMatcher bounded(&graph);
  auto e = exact.Execute(q, 0);
  auto b = bounded.Execute(q, 0);
  ASSERT_TRUE(e.ok());
  ASSERT_TRUE(b.ok());
  std::vector<std::string> vars = {"y"};
  std::set<std::string> exact_set = TupleSet(*e, vars);
  std::set<std::string> bounded_set = TupleSet(*b, vars);
  for (const std::string& tuple : exact_set) {
    EXPECT_TRUE(bounded_set.count(tuple)) << "missing exact tuple";
  }
}

TEST_P(CrossSystemTest, SamaFindsExactAnswersAtLambdaZero) {
  DataGraph graph = RandomGraph(GetParam());
  std::vector<Triple> patterns = RandomQuery(GetParam());
  QueryGraph q = QueryGraph::FromPatterns(patterns, graph.shared_dict());
  ExactMatcher exact(&graph);
  auto e = exact.Execute(q, 0);
  ASSERT_TRUE(e.ok());
  if (e->empty()) GTEST_SKIP() << "no exact answer for this seed";

  PathIndex index;
  ASSERT_TRUE(index.Build(graph, PathIndexOptions()).ok());
  SamaEngine engine(&graph, &index, nullptr);
  auto answers = engine.Execute(q, 0);
  ASSERT_TRUE(answers.ok());
  ASSERT_FALSE(answers->empty());

  // The query family starts at source constants and ends at tag
  // literals (data sinks), so whenever an exact homomorphism exists
  // some combination must align at Λ = 0.
  bool has_exact = false;
  for (const Answer& a : *answers) {
    if (a.lambda_total == 0.0) has_exact = true;
  }
  EXPECT_TRUE(has_exact);
}

TEST_P(CrossSystemTest, SamaScoresAreFiniteAndSorted) {
  DataGraph graph = RandomGraph(GetParam());
  QueryGraph q = QueryGraph::FromPatterns(RandomQuery(GetParam()),
                                          graph.shared_dict());
  PathIndex index;
  ASSERT_TRUE(index.Build(graph, PathIndexOptions()).ok());
  SamaEngine engine(&graph, &index, nullptr);
  auto answers = engine.Execute(q, 20);
  ASSERT_TRUE(answers.ok());
  for (size_t i = 0; i < answers->size(); ++i) {
    const Answer& a = (*answers)[i];
    EXPECT_GE(a.score, 0.0);
    EXPECT_EQ(a.score, a.lambda_total + a.psi_total);
    if (i > 0) {
      EXPECT_LE((*answers)[i - 1].score, a.score);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossSystemTest,
                         testing::Range<uint64_t>(1, 26));

}  // namespace
}  // namespace sama

// Robustness: the parsers and decoders must reject (never crash on)
// mutated and truncated inputs.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/random.h"
#include "datasets/govtrack.h"
#include "query/sparql.h"
#include "rdf/ntriples.h"
#include "rdf/turtle.h"
#include "storage/path_store.h"

namespace sama {
namespace {

std::string MutateBytes(std::string text, Random* rng, int mutations) {
  for (int i = 0; i < mutations && !text.empty(); ++i) {
    size_t pos = rng->Uniform(text.size());
    switch (rng->Uniform(3)) {
      case 0:
        text[pos] = static_cast<char>(rng->Uniform(256));
        break;
      case 1:
        text.erase(pos, 1);
        break;
      default:
        text.insert(pos, 1, static_cast<char>(rng->Uniform(128)));
    }
  }
  return text;
}

class RobustnessTest : public testing::TestWithParam<uint64_t> {};

TEST_P(RobustnessTest, NTriplesParserNeverCrashes) {
  Random rng(GetParam());
  std::string base = WriteNTriples(GovTrackFigure1Triples());
  for (int round = 0; round < 30; ++round) {
    std::string mutated = MutateBytes(base, &rng, 1 + round);
    auto result = NTriplesParser::ParseDocument(mutated);
    // Either parses (the mutation was benign) or reports ParseError.
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), Status::Code::kParseError);
    }
  }
}

TEST_P(RobustnessTest, TurtleParserNeverCrashes) {
  Random rng(GetParam() * 31 + 1);
  std::string base = WriteTurtle(GovTrackFigure1Triples());
  for (int round = 0; round < 30; ++round) {
    std::string mutated = MutateBytes(base, &rng, 1 + round);
    auto result = ParseTurtle(mutated);
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), Status::Code::kParseError);
    }
  }
}

TEST_P(RobustnessTest, SparqlParserNeverCrashes) {
  Random rng(GetParam() * 131 + 7);
  std::string base =
      "PREFIX gov: <http://gov.example.org/>\n"
      "SELECT DISTINCT ?v1 ?v2 WHERE {\n"
      "  gov:CarlaBunes gov:sponsor ?v1 . ?v1 gov:aTo ?v2 .\n"
      "  FILTER(?v1 != ?v2) . FILTER regex(?v2, \"b\")\n"
      "} LIMIT 10";
  for (int round = 0; round < 30; ++round) {
    std::string mutated = MutateBytes(base, &rng, 1 + round);
    auto result = ParseSparql(mutated);
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), Status::Code::kParseError);
    }
  }
}

TEST_P(RobustnessTest, PathDecoderNeverCrashes) {
  Random rng(GetParam() * 977 + 3);
  Path original;
  original.node_labels = {5, 10, 15};
  original.edge_labels = {100, 200};
  original.nodes = {1, 2, 3};
  std::vector<uint8_t> encoded;
  PathStore::Encode(original, /*compress=*/true, &encoded);
  for (int round = 0; round < 50; ++round) {
    std::vector<uint8_t> mutated = encoded;
    if (!mutated.empty()) {
      size_t pos = rng.Uniform(mutated.size());
      mutated[pos] = static_cast<uint8_t>(rng.Next());
      if (rng.Bernoulli(0.5)) mutated.resize(pos);
    }
    Path decoded;
    // Must either decode or fail cleanly; never crash.
    (void)PathStore::Decode(mutated, true, &decoded);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RobustnessTest,
                         testing::Range<uint64_t>(1, 9));

TEST(ConcurrencyTest, ParallelReadsThroughBufferPool) {
  std::string path = testing::TempDir() + "/concurrent_reads.dat";
  PathStore store;
  PathStore::Options options;
  options.path = path;
  options.buffer_pool_pages = 2;  // Force constant eviction churn.
  ASSERT_TRUE(store.Open(options).ok());
  for (TermId i = 0; i < 500; ++i) {
    Path p;
    p.node_labels = {i, i + 1};
    p.edge_labels = {i + 2};
    p.nodes = {0, 1};
    ASSERT_TRUE(store.Put(p).ok());
  }
  std::atomic<int> errors{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&store, &errors, t] {
      Random rng(static_cast<uint64_t>(t) + 1);
      Path p;
      for (int i = 0; i < 2000; ++i) {
        PathId id = rng.Uniform(500);
        if (!store.Get(id, &p).ok() || p.node_labels[0] != id) {
          ++errors;
        }
      }
    });
  }
  for (auto& r : readers) r.join();
  EXPECT_EQ(errors.load(), 0);
}

}  // namespace
}  // namespace sama

#include <gtest/gtest.h>

#include <memory>

#include "common/random.h"
#include "core/alignment.h"
#include "core/score.h"
#include "text/thesaurus.h"

namespace sama {
namespace {

// Property tests for Theorem 1: if answer a1 is more relevant than a2
// (its transformation is a sub-sequence of a2's, i.e. strictly fewer
// weighted operations), then score(a1, Q) < score(a2, Q).
class MonotonicityTest : public testing::TestWithParam<uint64_t> {
 protected:
  MonotonicityTest() : dict_(std::make_shared<TermDictionary>()) {}

  TermId Node(const std::string& s) {
    return dict_->Intern(s[0] == '?' ? Term::Variable(s.substr(1))
                                     : Term::Literal(s));
  }

  Path RandomQueryPath(Random* rng, size_t length) {
    Path q;
    for (size_t i = 0; i < length; ++i) {
      bool variable = rng->Bernoulli(0.5) && i + 1 < length;
      q.node_labels.push_back(
          Node(variable ? "?v" + std::to_string(i)
                        : "N" + std::to_string(rng->Uniform(20))));
      q.nodes.push_back(static_cast<NodeId>(i));
      if (i + 1 < length) {
        q.edge_labels.push_back(Node("e" + std::to_string(rng->Uniform(5))));
      }
    }
    return q;
  }

  // Instantiates q's variables with fresh constants: an exact answer
  // path.
  Path Instantiate(const Path& q, Random* rng) {
    Path p = q;
    for (TermId& label : p.node_labels) {
      if (dict_->term(label).is_variable()) {
        label = Node("C" + std::to_string(rng->Uniform(1000)));
      }
    }
    return p;
  }

  std::shared_ptr<TermDictionary> dict_;
  ScoreParams params_;
};

TEST_P(MonotonicityTest, ExactInstantiationScoresZero) {
  Random rng(GetParam());
  Path q = RandomQueryPath(&rng, 2 + rng.Uniform(5));
  Path p = Instantiate(q, &rng);
  LabelComparator cmp(dict_.get(), nullptr);
  EXPECT_DOUBLE_EQ(AlignPaths(p, q, cmp, params_).lambda, 0.0);
}

TEST_P(MonotonicityTest, EachMismatchStrictlyWorsens) {
  Random rng(GetParam() * 977 + 1);
  Path q = RandomQueryPath(&rng, 3 + rng.Uniform(4));
  Path p = Instantiate(q, &rng);
  LabelComparator cmp(dict_.get(), nullptr);
  double previous = AlignPaths(p, q, cmp, params_).lambda;
  // Corrupt constant node labels one at a time; λ must strictly grow.
  for (size_t i = 0; i < p.node_labels.size(); ++i) {
    if (dict_->term(q.node_labels[i]).is_variable()) continue;
    p.node_labels[i] = Node("corrupt" + std::to_string(i));
    double lambda = AlignPaths(p, q, cmp, params_).lambda;
    EXPECT_GT(lambda, previous);
    previous = lambda;
  }
}

TEST_P(MonotonicityTest, InsertionsAccumulate) {
  Random rng(GetParam() * 31 + 7);
  Path q = RandomQueryPath(&rng, 3);
  Path p = Instantiate(q, &rng);
  LabelComparator cmp(dict_.get(), nullptr);
  double previous = AlignPaths(p, q, cmp, params_).lambda;
  // Splice extra (edge, node) hops before the sink; each adds b + d.
  for (int extra = 0; extra < 4; ++extra) {
    Path longer = p;
    size_t pos = p.node_labels.size() - 1;
    for (int k = 0; k <= extra; ++k) {
      longer.node_labels.insert(
          longer.node_labels.begin() + static_cast<long>(pos),
          Node("hop" + std::to_string(k)));
      longer.edge_labels.insert(
          longer.edge_labels.begin() + static_cast<long>(pos - 1),
          Node("ehop" + std::to_string(k)));
      longer.nodes.push_back(static_cast<NodeId>(100 + k));
    }
    double lambda = AlignPaths(longer, q, cmp, params_).lambda;
    EXPECT_GT(lambda, previous);
    previous = lambda;
  }
}

TEST_P(MonotonicityTest, LambdaEqualsGammaOfRecordedTau) {
  // The Theorem-1 proof rests on γ(τ) = λ(p, q) for the recorded
  // transformation.
  Random rng(GetParam() * 131 + 3);
  Path q = RandomQueryPath(&rng, 2 + rng.Uniform(5));
  Path p = Instantiate(q, &rng);
  // Random corruption.
  if (!p.node_labels.empty() && rng.Bernoulli(0.7)) {
    p.node_labels[rng.Uniform(p.node_labels.size())] = Node("X");
  }
  LabelComparator cmp(dict_.get(), nullptr);
  PathAlignment a = AlignPaths(p, q, cmp, params_);
  EXPECT_DOUBLE_EQ(a.lambda, a.tau.Cost(params_.weights));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MonotonicityTest,
                         testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace sama

#include <gtest/gtest.h>

#include <memory>

#include "baselines/bounded.h"
#include "baselines/dogma.h"
#include "baselines/exact.h"
#include "baselines/sapper.h"
#include "core/engine.h"
#include "datasets/lubm.h"
#include "datasets/queries.h"
#include "eval/metrics.h"
#include "index/path_index.h"
#include "query/sparql.h"
#include "text/thesaurus.h"

namespace sama {
namespace {

// A small LUBM instance shared by the whole-pipeline tests.
class EndToEndTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    LubmConfig config;
    config.universities = 1;
    config.departments_per_university = 2;
    graph_ = new DataGraph(DataGraph::FromTriples(GenerateLubm(config)));
    index_ = new PathIndex();
    PathIndexOptions options;
    ASSERT_TRUE(index_->Build(*graph_, options).ok());
    thesaurus_ = new Thesaurus(Thesaurus::BuiltinEnglish());
    engine_ = new SamaEngine(graph_, index_, thesaurus_);
  }

  static void TearDownTestSuite() {
    delete engine_;
    delete thesaurus_;
    delete index_;
    delete graph_;
    engine_ = nullptr;
    thesaurus_ = nullptr;
    index_ = nullptr;
    graph_ = nullptr;
  }

  static std::vector<std::vector<Term>> SamaTuples(
      const SparqlQuery& query, size_t k) {
    auto answers = engine_->ExecuteSparql(query, k);
    EXPECT_TRUE(answers.ok()) << answers.status();
    std::vector<std::vector<Term>> tuples;
    for (const Answer& a : *answers) {
      tuples.push_back(a.BindingTuple(query.select_vars));
    }
    return tuples;
  }

  static RelevantSet ExactTruth(const SparqlQuery& query) {
    ExactMatcher exact(graph_);
    QueryGraph qg = query.ToQueryGraph(graph_->shared_dict());
    auto matches = exact.Execute(qg, 0);
    EXPECT_TRUE(matches.ok());
    RelevantSet truth;
    for (const Match& m : *matches) {
      truth.Add(m.BindingTuple(query.select_vars));
    }
    return truth;
  }

  static DataGraph* graph_;
  static PathIndex* index_;
  static Thesaurus* thesaurus_;
  static SamaEngine* engine_;
};

DataGraph* EndToEndTest::graph_ = nullptr;
PathIndex* EndToEndTest::index_ = nullptr;
Thesaurus* EndToEndTest::thesaurus_ = nullptr;
SamaEngine* EndToEndTest::engine_ = nullptr;

TEST_F(EndToEndTest, AllTwelveQueriesReturnAnswers) {
  for (const BenchmarkQuery& bq : MakeLubmQueries()) {
    auto parsed = ParseSparql(bq.sparql);
    ASSERT_TRUE(parsed.ok()) << bq.name;
    auto answers = engine_->ExecuteSparql(*parsed, 10);
    ASSERT_TRUE(answers.ok()) << bq.name << ": " << answers.status();
    EXPECT_FALSE(answers->empty()) << bq.name;
  }
}

TEST_F(EndToEndTest, AnswersAreRankedByScore) {
  for (const BenchmarkQuery& bq : MakeLubmQueries()) {
    auto parsed = ParseSparql(bq.sparql);
    ASSERT_TRUE(parsed.ok());
    auto answers = engine_->ExecuteSparql(*parsed, 10);
    ASSERT_TRUE(answers.ok());
    for (size_t i = 1; i < answers->size(); ++i) {
      EXPECT_LE((*answers)[i - 1].score, (*answers)[i].score) << bq.name;
    }
  }
}

TEST_F(EndToEndTest, ReciprocalRankIsOneOnExactQueries) {
  // §6.3: "In any dataset, for all 12 queries we obtained RR = 1."
  // Checked on the exact (non-relaxed) queries that have answers.
  for (const BenchmarkQuery& bq : MakeLubmQueries()) {
    if (bq.relaxed) continue;
    auto parsed = ParseSparql(bq.sparql);
    ASSERT_TRUE(parsed.ok());
    RelevantSet truth = ExactTruth(*parsed);
    if (truth.empty()) continue;  // No exact answer in this instance.
    std::vector<std::vector<Term>> ranked = SamaTuples(*parsed, 10);
    EXPECT_DOUBLE_EQ(ReciprocalRank(ranked, truth), 1.0) << bq.name;
  }
}

TEST_F(EndToEndTest, SynonymQueryMatchesExactOfStrictForm) {
  // Q6 uses ub:instructs / ub:employedBy; its strict twin uses
  // ub:teacherOf / ub:worksFor. Sama on the relaxed form must recover
  // answers of the strict form.
  std::vector<BenchmarkQuery> queries = MakeLubmQueries();
  const BenchmarkQuery& q6 = queries[5];
  ASSERT_TRUE(q6.relaxed);
  std::string strict_sparql = q6.sparql;
  auto replace = [&strict_sparql](const std::string& from,
                                  const std::string& to) {
    size_t pos;
    while ((pos = strict_sparql.find(from)) != std::string::npos) {
      strict_sparql.replace(pos, from.size(), to);
    }
  };
  replace("ub:instructs", "ub:teacherOf");
  replace("ub:employedBy", "ub:worksFor");
  auto strict = ParseSparql(strict_sparql);
  auto relaxed = ParseSparql(q6.sparql);
  ASSERT_TRUE(strict.ok());
  ASSERT_TRUE(relaxed.ok());
  RelevantSet truth = ExactTruth(*strict);
  if (truth.empty()) GTEST_SKIP() << "no exact answers at this scale";
  std::vector<std::vector<Term>> ranked = SamaTuples(*relaxed, 20);
  EXPECT_GT(Recall(ranked, truth), 0.0);
}

TEST_F(EndToEndTest, ApproximateSystemsFindMoreThanExactOnes) {
  // Figure 8's shape: Sama and Sapper identify more matches than
  // Bounded and Dogma on relaxed queries.
  std::vector<BenchmarkQuery> queries = MakeLubmQueries();
  const BenchmarkQuery& q7 = queries[6];  // Structure-relaxed.
  auto parsed = ParseSparql(q7.sparql);
  ASSERT_TRUE(parsed.ok());

  size_t sama_count = SamaTuples(*parsed, 200).size();

  QueryGraph qg = parsed->ToQueryGraph(graph_->shared_dict());
  DogmaMatcher dogma(graph_);
  auto dogma_matches = dogma.Execute(qg, 0);
  ASSERT_TRUE(dogma_matches.ok());

  EXPECT_GT(sama_count, dogma_matches->size());
}

TEST_F(EndToEndTest, ColdCacheStillAnswers) {
  ASSERT_TRUE(index_->DropCaches().ok());
  auto parsed = ParseSparql(MakeLubmQueries()[0].sparql);
  ASSERT_TRUE(parsed.ok());
  auto answers = engine_->ExecuteSparql(*parsed, 5);
  ASSERT_TRUE(answers.ok());
  EXPECT_FALSE(answers->empty());
}

TEST_F(EndToEndTest, StatsCountCandidatePaths) {
  auto parsed = ParseSparql(MakeLubmQueries()[3].sparql);  // Q4.
  ASSERT_TRUE(parsed.ok());
  QueryStats stats;
  auto answers = engine_->ExecuteSparql(*parsed, 10, &stats);
  ASSERT_TRUE(answers.ok());
  EXPECT_GT(stats.num_candidate_paths, 0u);
  EXPECT_EQ(stats.num_query_paths, 3u);
}

}  // namespace
}  // namespace sama

// End-to-end behaviour over cyclic and scale-free graphs: UOBM's
// student friendships create cycles, and the Barabási–Albert generator
// produces deep skewed DAGs — both must index and answer queries
// without path blow-ups or hangs.

#include <gtest/gtest.h>

#include <set>

#include "core/engine.h"
#include "datasets/lubm.h"
#include "datasets/scale_free.h"
#include "index/path_index.h"
#include "text/thesaurus.h"

namespace sama {
namespace {

TEST(CyclicGraphTest, UobmIndexesAndAnswers) {
  LubmConfig config;
  config.universities = 1;
  config.departments_per_university = 2;
  DataGraph graph = DataGraph::FromTriples(GenerateUobm(config));

  PathIndexOptions options;
  options.enumerate.max_length = 8;  // Friendships lengthen paths.
  options.enumerate.max_paths = 100000;
  PathIndex index;
  ASSERT_TRUE(index.Build(graph, options).ok());
  ASSERT_GT(index.path_count(), 0u);

  Thesaurus thesaurus = Thesaurus::BuiltinEnglish();
  SamaEngine engine(&graph, &index, &thesaurus);

  // Friend-of-friend taking a course: traverses the cyclic friendship
  // edges.
  auto answers = engine.Execute(
      engine.BuildQueryGraph(
          {{Term::Variable("s1"),
            Term::Iri(std::string(kLubmNamespace) + "isFriendOf"),
            Term::Variable("s2")},
           {Term::Variable("s2"),
            Term::Iri(std::string(kLubmNamespace) + "takesCourse"),
            Term::Variable("c")}}),
      10);
  ASSERT_TRUE(answers.ok()) << answers.status();
  EXPECT_FALSE(answers->empty());
  for (const Answer& a : *answers) {
    EXPECT_GE(a.score, 0.0);
  }
}

TEST(CyclicGraphTest, UobmPathsStaySimple) {
  LubmConfig config;
  config.universities = 1;
  DataGraph graph = DataGraph::FromTriples(GenerateUobm(config)); 
  PathIndexOptions options;
  options.enumerate.max_length = 8;
  options.enumerate.max_paths = 100000;
  PathIndex index;
  ASSERT_TRUE(index.Build(graph, options).ok());
  // Every stored path visits each node at most once.
  Path p;
  for (PathId id = 0; id < index.path_count(); ++id) {
    ASSERT_TRUE(index.GetPath(id, &p).ok());
    std::set<NodeId> distinct(p.nodes.begin(), p.nodes.end());
    ASSERT_EQ(distinct.size(), p.nodes.size()) << id;
    ASSERT_LE(p.length(), 8u);
  }
}

TEST(CyclicGraphTest, ScaleFreeGraphAnswersAttributeQueries) {
  ScaleFreeProfile profile = PBlogProfile(0.01);
  DataGraph graph = DataGraph::FromTriples(GenerateScaleFree(profile));
  PathIndexOptions options;
  options.enumerate.max_length = 6;
  options.enumerate.max_paths = 100000;
  PathIndex index;
  ASSERT_TRUE(index.Build(graph, options).ok());
  Thesaurus thesaurus = Thesaurus::BuiltinEnglish();
  SamaEngine engine(&graph, &index, &thesaurus);
  auto answers = engine.Execute(
      engine.BuildQueryGraph(
          {{Term::Variable("b"),
            Term::Iri("http://pblog.example.org/rel#topic"),
            Term::Literal("politics")}}),
      10);
  ASSERT_TRUE(answers.ok()) << answers.status();
  EXPECT_FALSE(answers->empty());
  // Exact matches rank first.
  EXPECT_DOUBLE_EQ((*answers)[0].lambda_total, 0.0);
}

}  // namespace
}  // namespace sama

// The umbrella header must pull in the whole public API.

#include "sama.h"

#include <gtest/gtest.h>

namespace sama {
namespace {

TEST(UmbrellaHeaderTest, FullPipelineCompilesAndRuns) {
  auto triples = NTriplesParser::ParseDocument(
      "<http://e/alice> <http://e/knows> <http://e/bob> .\n"
      "<http://e/bob> <http://e/likes> \"opera\" .\n");
  ASSERT_TRUE(triples.ok());
  DataGraph graph = DataGraph::FromTriples(*triples);
  EXPECT_EQ(ComputeGraphStats(graph).nodes, 3u);

  PathIndex index;
  ASSERT_TRUE(index.Build(graph, PathIndexOptions()).ok());
  Thesaurus thesaurus = Thesaurus::BuiltinEnglish();
  SamaEngine engine(&graph, &index, &thesaurus);
  auto query = ParseSparql("SELECT ?x WHERE { ?x <http://e/likes> \"opera\" }");
  ASSERT_TRUE(query.ok());
  auto answers = engine.ExecuteSparql(*query, 5);
  ASSERT_TRUE(answers.ok());
  ASSERT_FALSE(answers->empty());
  EXPECT_FALSE(
      ExplainAnswer(engine.BuildQueryGraph(query->patterns), (*answers)[0])
          .empty());
}

}  // namespace
}  // namespace sama

#include "graph/path_enumerator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "datasets/govtrack.h"

namespace sama {
namespace {

std::set<std::string> PathStrings(const DataGraph& g,
                                  const PathEnumeratorOptions& options = {}) {
  std::set<std::string> out;
  for (const Path& p : AllPaths(g, options)) {
    out.insert(p.ToString(g.dict()));
  }
  return out;
}

TEST(PathEnumeratorTest, DiamondYieldsTwoPaths) {
  DataGraph g;
  NodeId a = g.AddNode(Term::Iri("a"));
  NodeId b = g.AddNode(Term::Iri("b"));
  NodeId c = g.AddNode(Term::Iri("c"));
  NodeId d = g.AddNode(Term::Iri("d"));
  g.AddEdge(a, b, Term::Iri("p"));
  g.AddEdge(a, c, Term::Iri("q"));
  g.AddEdge(b, d, Term::Iri("p"));
  g.AddEdge(c, d, Term::Iri("q"));
  std::set<std::string> paths = PathStrings(g);
  EXPECT_EQ(paths, (std::set<std::string>{"a-p-b-p-d", "a-q-c-q-d"}));
}

TEST(PathEnumeratorTest, Figure1PathCount) {
  DataGraph g = DataGraph::FromTriples(GovTrackFigure1Triples());
  std::set<std::string> paths = PathStrings(g);
  // From the people sources: 6 amendment chains, 4 direct bill chains,
  // 7 gender paths, 2 role chains = 19 paths.
  EXPECT_EQ(paths.size(), 19u);
  // The paper's example path pz (§3.2).
  EXPECT_TRUE(
      paths.count("JeffRyser-sponsor-A1589-aTo-B0532-subject-Health Care"));
  // The clustering example's p1.
  EXPECT_TRUE(paths.count(
      "CarlaBunes-sponsor-A0056-aTo-B1432-subject-Health Care"));
  EXPECT_TRUE(paths.count("PierceDickes-gender-Male"));
}

TEST(PathEnumeratorTest, AllPathsStartAtSourcesAndEndAtSinks) {
  DataGraph g = DataGraph::FromTriples(GovTrackFigure1Triples());
  for (const Path& p : AllPaths(g)) {
    ASSERT_GE(p.length(), 2u);
    EXPECT_EQ(g.in_degree(p.nodes.front()), 0u);
    EXPECT_EQ(g.out_degree(p.nodes.back()), 0u);
  }
}

TEST(PathEnumeratorTest, MaxLengthCapsPaths) {
  DataGraph g = DataGraph::FromTriples(GovTrackFigure1Triples());
  PathEnumeratorOptions options;
  options.max_length = 2;
  for (const Path& p : AllPaths(g, options)) {
    EXPECT_LE(p.length(), 2u);
  }
  // Only the gender edges are 2-node source→sink paths.
  EXPECT_EQ(PathStrings(g, options).size(), 7u);
}

TEST(PathEnumeratorTest, MaxPathsStopsEarly) {
  DataGraph g = DataGraph::FromTriples(GovTrackFigure1Triples());
  PathEnumeratorOptions options;
  options.max_paths = 5;
  EXPECT_EQ(AllPaths(g, options).size(), 5u);
}

TEST(PathEnumeratorTest, EmitReturningFalseStops) {
  DataGraph g = DataGraph::FromTriples(GovTrackFigure1Triples());
  size_t seen = 0;
  EnumeratePaths(g, {}, [&seen](const Path&) {
    ++seen;
    return seen < 3;
  });
  EXPECT_EQ(seen, 3u);
}

TEST(PathEnumeratorTest, CycleWithoutSinksUsesHubAndTerminates) {
  // Pure cycle: a -> b -> c -> a.
  DataGraph g;
  NodeId a = g.AddNode(Term::Iri("a"));
  NodeId b = g.AddNode(Term::Iri("b"));
  NodeId c = g.AddNode(Term::Iri("c"));
  g.AddEdge(a, b, Term::Iri("p"));
  g.AddEdge(b, c, Term::Iri("p"));
  g.AddEdge(c, a, Term::Iri("p"));
  std::vector<Path> paths = AllPaths(g);
  // All nodes tie as hubs; walks end where the cycle closes.
  ASSERT_FALSE(paths.empty());
  for (const Path& p : paths) {
    // Simple paths: no node repeats.
    std::set<NodeId> distinct(p.nodes.begin(), p.nodes.end());
    EXPECT_EQ(distinct.size(), p.nodes.size());
  }
}

TEST(PathEnumeratorTest, StrictSinksSuppressesCyclePaths) {
  DataGraph g;
  NodeId a = g.AddNode(Term::Iri("a"));
  NodeId b = g.AddNode(Term::Iri("b"));
  g.AddEdge(a, b, Term::Iri("p"));
  g.AddEdge(b, a, Term::Iri("p"));
  PathEnumeratorOptions options;
  options.strict_sinks = true;
  EXPECT_TRUE(AllPaths(g, options).empty());
  options.strict_sinks = false;
  EXPECT_FALSE(AllPaths(g, options).empty());
}

TEST(PathEnumeratorTest, BranchingFanoutEnumeratesAllCombinations) {
  // A 3-level tree: root -> 3 mids -> 2 leaves each = 6 paths.
  DataGraph g;
  NodeId root = g.AddNode(Term::Iri("root"));
  Term p = Term::Iri("p");
  for (int m = 0; m < 3; ++m) {
    NodeId mid = g.AddNode(Term::Iri("m" + std::to_string(m)));
    g.AddEdge(root, mid, p);
    for (int l = 0; l < 2; ++l) {
      NodeId leaf = g.AddNode(
          Term::Iri("leaf" + std::to_string(m) + "_" + std::to_string(l)));
      g.AddEdge(mid, leaf, p);
    }
  }
  EXPECT_EQ(AllPaths(g).size(), 6u);
}

TEST(PathEnumeratorTest, EnumerateFromSingleStart) {
  DataGraph g = DataGraph::FromTriples(GovTrackFigure1Triples());
  NodeId cb = g.FindNode(Term::Iri("http://gov.example.org/CarlaBunes"));
  ASSERT_NE(cb, kInvalidNodeId);
  std::vector<std::string> paths;
  EnumeratePathsFrom(g, cb, {}, [&](const Path& p) {
    paths.push_back(p.ToString(g.dict()));
    return true;
  });
  // CB: one amendment chain + one gender path.
  EXPECT_EQ(paths.size(), 2u);
}

}  // namespace
}  // namespace sama

#include "graph/data_graph.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "datasets/govtrack.h"

namespace sama {
namespace {

DataGraph Diamond() {
  // a -p-> b -p-> d, a -p-> c -p-> d.
  DataGraph g;
  NodeId a = g.AddNode(Term::Iri("a"));
  NodeId b = g.AddNode(Term::Iri("b"));
  NodeId c = g.AddNode(Term::Iri("c"));
  NodeId d = g.AddNode(Term::Iri("d"));
  Term p = Term::Iri("p");
  g.AddEdge(a, b, p);
  g.AddEdge(a, c, p);
  g.AddEdge(b, d, p);
  g.AddEdge(c, d, p);
  return g;
}

TEST(DataGraphTest, NodesAreDedupedByTerm) {
  DataGraph g;
  NodeId a1 = g.AddNode(Term::Iri("a"));
  NodeId a2 = g.AddNode(Term::Iri("a"));
  EXPECT_EQ(a1, a2);
  EXPECT_EQ(g.node_count(), 1u);
}

TEST(DataGraphTest, DuplicateEdgesCollapse) {
  DataGraph g;
  NodeId a = g.AddNode(Term::Iri("a"));
  NodeId b = g.AddNode(Term::Iri("b"));
  EdgeId e1 = g.AddEdge(a, b, Term::Iri("p"));
  EdgeId e2 = g.AddEdge(a, b, Term::Iri("p"));
  EdgeId e3 = g.AddEdge(a, b, Term::Iri("q"));  // Different label: kept.
  EXPECT_EQ(e1, e2);
  EXPECT_NE(e1, e3);
  EXPECT_EQ(g.edge_count(), 2u);
}

TEST(DataGraphTest, AdjacencyListsAreConsistent) {
  DataGraph g = Diamond();
  NodeId a = g.FindNode(Term::Iri("a"));
  NodeId d = g.FindNode(Term::Iri("d"));
  EXPECT_EQ(g.out_degree(a), 2u);
  EXPECT_EQ(g.in_degree(a), 0u);
  EXPECT_EQ(g.out_degree(d), 0u);
  EXPECT_EQ(g.in_degree(d), 2u);
  for (EdgeId e : g.out_edges(a)) EXPECT_EQ(g.edge(e).from, a);
  for (EdgeId e : g.in_edges(d)) EXPECT_EQ(g.edge(e).to, d);
}

TEST(DataGraphTest, SourcesAndSinks) {
  DataGraph g = Diamond();
  std::vector<NodeId> sources = g.Sources();
  std::vector<NodeId> sinks = g.Sinks();
  ASSERT_EQ(sources.size(), 1u);
  ASSERT_EQ(sinks.size(), 1u);
  EXPECT_EQ(g.node_term(sources[0]).value(), "a");
  EXPECT_EQ(g.node_term(sinks[0]).value(), "d");
}

TEST(DataGraphTest, IsolatedNodesAreNeitherSourceNorSink) {
  DataGraph g;
  g.AddNode(Term::Iri("lonely"));
  EXPECT_TRUE(g.Sources().empty());
  EXPECT_TRUE(g.Sinks().empty());
}

TEST(DataGraphTest, HubPromotionOnCycle) {
  // Cycle a->b->c->a plus a->d: no sources; 'a' has out 2 / in 1.
  DataGraph g;
  NodeId a = g.AddNode(Term::Iri("a"));
  NodeId b = g.AddNode(Term::Iri("b"));
  NodeId c = g.AddNode(Term::Iri("c"));
  NodeId d = g.AddNode(Term::Iri("d"));
  Term p = Term::Iri("p");
  g.AddEdge(a, b, p);
  g.AddEdge(b, c, p);
  g.AddEdge(c, a, p);
  g.AddEdge(a, d, p);
  EXPECT_TRUE(g.Sources().empty());
  std::vector<NodeId> starts = g.StartNodes();
  ASSERT_EQ(starts.size(), 1u);
  EXPECT_EQ(starts[0], a);
}

TEST(DataGraphTest, StartNodesPrefersSources) {
  DataGraph g = Diamond();
  EXPECT_EQ(g.StartNodes(), g.Sources());
}

TEST(DataGraphTest, FromTriplesBuildsFigure1Graph) {
  DataGraph g = DataGraph::FromTriples(GovTrackFigure1Triples());
  // 7 people + 5 amendments + 3 bills + HC + Male + Female + 2 terms +
  // SenateNY = 21 nodes.
  EXPECT_EQ(g.node_count(), 21u);
  // The paper's Figure 1 has seven people as sources.
  EXPECT_EQ(g.Sources().size(), 7u);
  // Sinks: Health Care, Male, Female, SenateNY.
  EXPECT_EQ(g.Sinks().size(), 4u);
  NodeId hc = g.FindNode(Term::Literal("Health Care"));
  ASSERT_NE(hc, kInvalidNodeId);
  EXPECT_EQ(g.in_degree(hc), 3u);  // Three bills.
}

TEST(DataGraphTest, FindNodeMissing) {
  DataGraph g = Diamond();
  EXPECT_EQ(g.FindNode(Term::Iri("nope")), kInvalidNodeId);
  EXPECT_EQ(g.FindNode(Term::Literal("a")), kInvalidNodeId);  // Wrong kind.
}

TEST(DataGraphTest, MemoryBytesGrowsWithContent) {
  DataGraph small = Diamond();
  DataGraph big = DataGraph::FromTriples(GovTrackFigure1Triples());
  EXPECT_GT(big.MemoryBytes(), small.MemoryBytes());
}

}  // namespace
}  // namespace sama

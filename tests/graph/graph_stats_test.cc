#include "graph/graph_stats.h"

#include <gtest/gtest.h>

#include "datasets/govtrack.h"
#include "datasets/lubm.h"

namespace sama {
namespace {

TEST(GraphStatsTest, EmptyGraph) {
  DataGraph g;
  GraphStats stats = ComputeGraphStats(g);
  EXPECT_EQ(stats.nodes, 0u);
  EXPECT_EQ(stats.edges, 0u);
  EXPECT_EQ(stats.weakly_connected_components, 0u);
  EXPECT_DOUBLE_EQ(stats.avg_out_degree, 0.0);
}

TEST(GraphStatsTest, Figure1Shape) {
  DataGraph g = DataGraph::FromTriples(GovTrackFigure1Triples());
  GraphStats stats = ComputeGraphStats(g);
  EXPECT_EQ(stats.nodes, 21u);
  EXPECT_EQ(stats.edges, 29u);
  EXPECT_EQ(stats.sources, 7u);
  EXPECT_EQ(stats.sinks, 4u);
  EXPECT_EQ(stats.isolated, 0u);
  // sponsor, aTo, subject, gender, hasRole, forOffice.
  EXPECT_EQ(stats.distinct_predicates, 6u);
  // Health Care, Male, Female are literals.
  EXPECT_EQ(stats.literal_nodes, 3u);
  EXPECT_EQ(stats.iri_nodes, 18u);
  // The example graph is one connected blob.
  EXPECT_EQ(stats.weakly_connected_components, 1u);
  EXPECT_NEAR(stats.avg_out_degree, 29.0 / 21.0, 1e-9);
}

TEST(GraphStatsTest, ComponentsCounted) {
  DataGraph g;
  NodeId a = g.AddNode(Term::Iri("a"));
  NodeId b = g.AddNode(Term::Iri("b"));
  NodeId c = g.AddNode(Term::Iri("c"));
  NodeId d = g.AddNode(Term::Iri("d"));
  g.AddNode(Term::Iri("lonely"));
  g.AddEdge(a, b, Term::Iri("p"));
  g.AddEdge(c, d, Term::Iri("p"));
  GraphStats stats = ComputeGraphStats(g);
  // {a,b}, {c,d}, {lonely}.
  EXPECT_EQ(stats.weakly_connected_components, 3u);
  EXPECT_EQ(stats.isolated, 1u);
  EXPECT_EQ(stats.distinct_predicates, 1u);
}

TEST(GraphStatsTest, DirectionIgnoredForComponents) {
  DataGraph g;
  NodeId a = g.AddNode(Term::Iri("a"));
  NodeId b = g.AddNode(Term::Iri("b"));
  NodeId c = g.AddNode(Term::Iri("c"));
  // a -> b <- c: weakly connected despite opposing directions.
  g.AddEdge(a, b, Term::Iri("p"));
  g.AddEdge(c, b, Term::Iri("p"));
  EXPECT_EQ(ComputeGraphStats(g).weakly_connected_components, 1u);
}

TEST(GraphStatsTest, LubmIsOneComponent) {
  LubmConfig config;
  DataGraph g = DataGraph::FromTriples(GenerateLubm(config));
  GraphStats stats = ComputeGraphStats(g);
  // Everything hangs off University0.
  EXPECT_EQ(stats.weakly_connected_components, 1u);
  EXPECT_GT(stats.sources, 0u);
  EXPECT_GT(stats.max_in_degree, 5u);  // The university node.
}

TEST(GraphStatsTest, FormatIncludesAllQuantities) {
  DataGraph g = DataGraph::FromTriples(GovTrackFigure1Triples());
  std::string text = FormatGraphStats(ComputeGraphStats(g));
  EXPECT_NE(text.find("nodes: 21"), std::string::npos) << text;
  EXPECT_NE(text.find("edges: 29"), std::string::npos);
  EXPECT_NE(text.find("sources: 7"), std::string::npos);
  EXPECT_NE(text.find("components: 1"), std::string::npos);
}

}  // namespace
}  // namespace sama

#include "graph/path.h"

#include <gtest/gtest.h>

namespace sama {
namespace {

Path MakePath(TermDictionary* dict, const std::vector<std::string>& nodes,
              const std::vector<std::string>& edges) {
  Path p;
  for (size_t i = 0; i < nodes.size(); ++i) {
    p.node_labels.push_back(dict->Intern(Term::Iri(nodes[i])));
    p.nodes.push_back(static_cast<NodeId>(i));
  }
  for (const std::string& e : edges) {
    p.edge_labels.push_back(dict->Intern(Term::Iri(e)));
  }
  return p;
}

TEST(PathTest, LengthCountsNodes) {
  TermDictionary dict;
  // The paper's pz = JR-sponsor-A1589-aTo-B0532-subject-HC has length 4.
  Path pz = MakePath(&dict, {"JR", "A1589", "B0532", "HC"},
                     {"sponsor", "aTo", "subject"});
  EXPECT_EQ(pz.length(), 4u);
  EXPECT_EQ(pz.size(), 7u);  // 4 nodes + 3 edges.
}

TEST(PathTest, PositionIsOneBased) {
  TermDictionary dict;
  Path pz = MakePath(&dict, {"JR", "A1589", "B0532", "HC"},
                     {"sponsor", "aTo", "subject"});
  // The paper: "the node A1589 has position 2".
  EXPECT_EQ(pz.PositionOf(dict.Intern(Term::Iri("A1589"))), 2u);
  EXPECT_EQ(pz.PositionOf(dict.Intern(Term::Iri("JR"))), 1u);
  EXPECT_EQ(pz.PositionOf(dict.Intern(Term::Iri("HC"))), 4u);
  EXPECT_EQ(pz.PositionOf(dict.Intern(Term::Iri("absent"))), 0u);
}

TEST(PathTest, SourceAndSinkLabels) {
  TermDictionary dict;
  Path p = MakePath(&dict, {"a", "b"}, {"e"});
  EXPECT_EQ(p.source_label(), dict.Intern(Term::Iri("a")));
  EXPECT_EQ(p.sink_label(), dict.Intern(Term::Iri("b")));
}

TEST(PathTest, ToStringRendersAlternating) {
  TermDictionary dict;
  Path p = MakePath(&dict, {"a", "b", "c"}, {"p", "q"});
  EXPECT_EQ(p.ToString(dict), "a-p-b-q-c");
}

TEST(PathTest, EqualityIgnoresNodeIds) {
  TermDictionary dict;
  Path a = MakePath(&dict, {"a", "b"}, {"e"});
  Path b = a;
  b.nodes = {7, 9};  // Different concrete nodes, same labels.
  EXPECT_EQ(a, b);
}

TEST(PathTest, LabelHashDistinguishesNodeVsEdgePlacement) {
  TermDictionary dict;
  Path a = MakePath(&dict, {"x", "y", "z"}, {"p", "q"});
  Path b = MakePath(&dict, {"x", "q", "z"}, {"p", "y"});  // Swapped.
  EXPECT_NE(PathLabelHash(a), PathLabelHash(b));
  EXPECT_EQ(PathLabelHash(a), PathLabelHash(a));
}

}  // namespace
}  // namespace sama

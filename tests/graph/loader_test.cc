#include "graph/loader.h"

#include <gtest/gtest.h>

#include <fstream>

#include "datasets/govtrack.h"
#include "rdf/ntriples.h"
#include "rdf/turtle.h"

namespace sama {
namespace {

std::string WriteTempFile(const std::string& name,
                          const std::string& contents) {
  std::string path = testing::TempDir() + "/" + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << contents;
  return path;
}

TEST(LoaderTest, StreamsNTriples) {
  std::string path = WriteTempFile(
      "loader.nt", WriteNTriples(GovTrackFigure1Triples()));
  DataGraph graph;
  auto stats = LoadGraphFromFile(path, &graph);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->triples, 29u);
  EXPECT_EQ(graph.edge_count(), 29u);
  EXPECT_EQ(graph.node_count(), 21u);
  EXPECT_GT(stats->bytes, 0u);
}

TEST(LoaderTest, LoadsTurtle) {
  std::string path = WriteTempFile(
      "loader.ttl", WriteTurtle(GovTrackFigure1Triples()));
  DataGraph graph;
  auto stats = LoadGraphFromFile(path, &graph);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->triples, 29u);
  EXPECT_EQ(graph.node_count(), 21u);
}

TEST(LoaderTest, ProgressCallbackFires) {
  std::string text;
  for (int i = 0; i < 250; ++i) {
    text += "<http://e/s" + std::to_string(i) + "> <http://e/p> \"v\" .\n";
  }
  std::string path = WriteTempFile("loader_progress.nt", text);
  DataGraph graph;
  int calls = 0;
  auto stats = LoadGraphFromFile(
      path, &graph, [&calls](const LoadStats&) { ++calls; },
      /*progress_every_lines=*/100);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(calls, 2);  // At 100 and 200 triples.
  EXPECT_EQ(stats->triples, 250u);
}

TEST(LoaderTest, ReportsLineNumbersOnErrors) {
  std::string path = WriteTempFile(
      "loader_bad.nt",
      "<http://a> <http://p> <http://b> .\nbroken\n");
  DataGraph graph;
  auto stats = LoadGraphFromFile(path, &graph);
  ASSERT_FALSE(stats.ok());
  EXPECT_NE(stats.status().message().find("line 2"), std::string::npos);
}

TEST(LoaderTest, MissingFile) {
  DataGraph graph;
  EXPECT_EQ(LoadGraphFromFile("/no/such/file.nt", &graph).status().code(),
            Status::Code::kIoError);
}

TEST(LoaderTest, SkipsCommentsAndBlankLines) {
  std::string path = WriteTempFile(
      "loader_comments.nt",
      "# header\n\n<http://a> <http://p> \"x\" .\n# done\n");
  DataGraph graph;
  auto stats = LoadGraphFromFile(path, &graph);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->triples, 1u);
  EXPECT_EQ(stats->lines, 4u);
}

}  // namespace
}  // namespace sama


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/storage/buffer_pool_test.cc" "tests/CMakeFiles/storage_test.dir/storage/buffer_pool_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/buffer_pool_test.cc.o.d"
  "/root/repo/tests/storage/coding_test.cc" "tests/CMakeFiles/storage_test.dir/storage/coding_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/coding_test.cc.o.d"
  "/root/repo/tests/storage/fault_injection_test.cc" "tests/CMakeFiles/storage_test.dir/storage/fault_injection_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/fault_injection_test.cc.o.d"
  "/root/repo/tests/storage/hypergraph_store_test.cc" "tests/CMakeFiles/storage_test.dir/storage/hypergraph_store_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/hypergraph_store_test.cc.o.d"
  "/root/repo/tests/storage/manifest_test.cc" "tests/CMakeFiles/storage_test.dir/storage/manifest_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/manifest_test.cc.o.d"
  "/root/repo/tests/storage/page_file_test.cc" "tests/CMakeFiles/storage_test.dir/storage/page_file_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/page_file_test.cc.o.d"
  "/root/repo/tests/storage/path_store_test.cc" "tests/CMakeFiles/storage_test.dir/storage/path_store_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/path_store_test.cc.o.d"
  "/root/repo/tests/storage/record_store_test.cc" "tests/CMakeFiles/storage_test.dir/storage/record_store_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/record_store_test.cc.o.d"
  "/root/repo/tests/storage/reopen_test.cc" "tests/CMakeFiles/storage_test.dir/storage/reopen_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/reopen_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/sama_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/sama_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/sama_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sama_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/storage_test.dir/storage/buffer_pool_test.cc.o"
  "CMakeFiles/storage_test.dir/storage/buffer_pool_test.cc.o.d"
  "CMakeFiles/storage_test.dir/storage/coding_test.cc.o"
  "CMakeFiles/storage_test.dir/storage/coding_test.cc.o.d"
  "CMakeFiles/storage_test.dir/storage/fault_injection_test.cc.o"
  "CMakeFiles/storage_test.dir/storage/fault_injection_test.cc.o.d"
  "CMakeFiles/storage_test.dir/storage/hypergraph_store_test.cc.o"
  "CMakeFiles/storage_test.dir/storage/hypergraph_store_test.cc.o.d"
  "CMakeFiles/storage_test.dir/storage/manifest_test.cc.o"
  "CMakeFiles/storage_test.dir/storage/manifest_test.cc.o.d"
  "CMakeFiles/storage_test.dir/storage/page_file_test.cc.o"
  "CMakeFiles/storage_test.dir/storage/page_file_test.cc.o.d"
  "CMakeFiles/storage_test.dir/storage/path_store_test.cc.o"
  "CMakeFiles/storage_test.dir/storage/path_store_test.cc.o.d"
  "CMakeFiles/storage_test.dir/storage/record_store_test.cc.o"
  "CMakeFiles/storage_test.dir/storage/record_store_test.cc.o.d"
  "CMakeFiles/storage_test.dir/storage/reopen_test.cc.o"
  "CMakeFiles/storage_test.dir/storage/reopen_test.cc.o.d"
  "storage_test"
  "storage_test.pdb"
  "storage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for rdf_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/rdf_test.dir/rdf/dictionary_test.cc.o"
  "CMakeFiles/rdf_test.dir/rdf/dictionary_test.cc.o.d"
  "CMakeFiles/rdf_test.dir/rdf/ntriples_test.cc.o"
  "CMakeFiles/rdf_test.dir/rdf/ntriples_test.cc.o.d"
  "CMakeFiles/rdf_test.dir/rdf/term_test.cc.o"
  "CMakeFiles/rdf_test.dir/rdf/term_test.cc.o.d"
  "CMakeFiles/rdf_test.dir/rdf/turtle_test.cc.o"
  "CMakeFiles/rdf_test.dir/rdf/turtle_test.cc.o.d"
  "CMakeFiles/rdf_test.dir/rdf/turtle_writer_test.cc.o"
  "CMakeFiles/rdf_test.dir/rdf/turtle_writer_test.cc.o.d"
  "rdf_test"
  "rdf_test.pdb"
  "rdf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

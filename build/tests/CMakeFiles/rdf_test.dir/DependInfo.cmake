
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/rdf/dictionary_test.cc" "tests/CMakeFiles/rdf_test.dir/rdf/dictionary_test.cc.o" "gcc" "tests/CMakeFiles/rdf_test.dir/rdf/dictionary_test.cc.o.d"
  "/root/repo/tests/rdf/ntriples_test.cc" "tests/CMakeFiles/rdf_test.dir/rdf/ntriples_test.cc.o" "gcc" "tests/CMakeFiles/rdf_test.dir/rdf/ntriples_test.cc.o.d"
  "/root/repo/tests/rdf/term_test.cc" "tests/CMakeFiles/rdf_test.dir/rdf/term_test.cc.o" "gcc" "tests/CMakeFiles/rdf_test.dir/rdf/term_test.cc.o.d"
  "/root/repo/tests/rdf/turtle_test.cc" "tests/CMakeFiles/rdf_test.dir/rdf/turtle_test.cc.o" "gcc" "tests/CMakeFiles/rdf_test.dir/rdf/turtle_test.cc.o.d"
  "/root/repo/tests/rdf/turtle_writer_test.cc" "tests/CMakeFiles/rdf_test.dir/rdf/turtle_writer_test.cc.o" "gcc" "tests/CMakeFiles/rdf_test.dir/rdf/turtle_writer_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rdf/CMakeFiles/sama_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/datasets/CMakeFiles/sama_datasets.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sama_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

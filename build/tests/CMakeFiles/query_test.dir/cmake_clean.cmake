file(REMOVE_RECURSE
  "CMakeFiles/query_test.dir/query/filter_test.cc.o"
  "CMakeFiles/query_test.dir/query/filter_test.cc.o.d"
  "CMakeFiles/query_test.dir/query/query_graph_test.cc.o"
  "CMakeFiles/query_test.dir/query/query_graph_test.cc.o.d"
  "CMakeFiles/query_test.dir/query/sparql_test.cc.o"
  "CMakeFiles/query_test.dir/query/sparql_test.cc.o.d"
  "CMakeFiles/query_test.dir/query/transformation_test.cc.o"
  "CMakeFiles/query_test.dir/query/transformation_test.cc.o.d"
  "query_test"
  "query_test.pdb"
  "query_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

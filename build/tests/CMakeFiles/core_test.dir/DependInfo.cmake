
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/alignment_dp_test.cc" "tests/CMakeFiles/core_test.dir/core/alignment_dp_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/alignment_dp_test.cc.o.d"
  "/root/repo/tests/core/alignment_optimal_test.cc" "tests/CMakeFiles/core_test.dir/core/alignment_optimal_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/alignment_optimal_test.cc.o.d"
  "/root/repo/tests/core/alignment_test.cc" "tests/CMakeFiles/core_test.dir/core/alignment_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/alignment_test.cc.o.d"
  "/root/repo/tests/core/clustering_test.cc" "tests/CMakeFiles/core_test.dir/core/clustering_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/clustering_test.cc.o.d"
  "/root/repo/tests/core/engine_test.cc" "tests/CMakeFiles/core_test.dir/core/engine_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/engine_test.cc.o.d"
  "/root/repo/tests/core/explain_test.cc" "tests/CMakeFiles/core_test.dir/core/explain_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/explain_test.cc.o.d"
  "/root/repo/tests/core/forest_search_test.cc" "tests/CMakeFiles/core_test.dir/core/forest_search_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/forest_search_test.cc.o.d"
  "/root/repo/tests/core/intersection_graph_test.cc" "tests/CMakeFiles/core_test.dir/core/intersection_graph_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/intersection_graph_test.cc.o.d"
  "/root/repo/tests/core/label_comparator_test.cc" "tests/CMakeFiles/core_test.dir/core/label_comparator_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/label_comparator_test.cc.o.d"
  "/root/repo/tests/core/score_params_test.cc" "tests/CMakeFiles/core_test.dir/core/score_params_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/score_params_test.cc.o.d"
  "/root/repo/tests/core/score_test.cc" "tests/CMakeFiles/core_test.dir/core/score_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/score_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sama_core.dir/DependInfo.cmake"
  "/root/repo/build/src/datasets/CMakeFiles/sama_datasets.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/sama_query.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/sama_index.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/sama_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/sama_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/sama_text.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/sama_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sama_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/alignment_dp_test.cc.o"
  "CMakeFiles/core_test.dir/core/alignment_dp_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/alignment_optimal_test.cc.o"
  "CMakeFiles/core_test.dir/core/alignment_optimal_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/alignment_test.cc.o"
  "CMakeFiles/core_test.dir/core/alignment_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/clustering_test.cc.o"
  "CMakeFiles/core_test.dir/core/clustering_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/engine_test.cc.o"
  "CMakeFiles/core_test.dir/core/engine_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/explain_test.cc.o"
  "CMakeFiles/core_test.dir/core/explain_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/forest_search_test.cc.o"
  "CMakeFiles/core_test.dir/core/forest_search_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/intersection_graph_test.cc.o"
  "CMakeFiles/core_test.dir/core/intersection_graph_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/label_comparator_test.cc.o"
  "CMakeFiles/core_test.dir/core/label_comparator_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/score_params_test.cc.o"
  "CMakeFiles/core_test.dir/core/score_params_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/score_test.cc.o"
  "CMakeFiles/core_test.dir/core/score_test.cc.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

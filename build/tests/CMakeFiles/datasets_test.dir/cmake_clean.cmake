file(REMOVE_RECURSE
  "CMakeFiles/datasets_test.dir/datasets/berlin_test.cc.o"
  "CMakeFiles/datasets_test.dir/datasets/berlin_test.cc.o.d"
  "CMakeFiles/datasets_test.dir/datasets/govtrack_test.cc.o"
  "CMakeFiles/datasets_test.dir/datasets/govtrack_test.cc.o.d"
  "CMakeFiles/datasets_test.dir/datasets/lubm_test.cc.o"
  "CMakeFiles/datasets_test.dir/datasets/lubm_test.cc.o.d"
  "CMakeFiles/datasets_test.dir/datasets/queries_test.cc.o"
  "CMakeFiles/datasets_test.dir/datasets/queries_test.cc.o.d"
  "CMakeFiles/datasets_test.dir/datasets/scale_free_test.cc.o"
  "CMakeFiles/datasets_test.dir/datasets/scale_free_test.cc.o.d"
  "datasets_test"
  "datasets_test.pdb"
  "datasets_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datasets_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/datasets/berlin_test.cc" "tests/CMakeFiles/datasets_test.dir/datasets/berlin_test.cc.o" "gcc" "tests/CMakeFiles/datasets_test.dir/datasets/berlin_test.cc.o.d"
  "/root/repo/tests/datasets/govtrack_test.cc" "tests/CMakeFiles/datasets_test.dir/datasets/govtrack_test.cc.o" "gcc" "tests/CMakeFiles/datasets_test.dir/datasets/govtrack_test.cc.o.d"
  "/root/repo/tests/datasets/lubm_test.cc" "tests/CMakeFiles/datasets_test.dir/datasets/lubm_test.cc.o" "gcc" "tests/CMakeFiles/datasets_test.dir/datasets/lubm_test.cc.o.d"
  "/root/repo/tests/datasets/queries_test.cc" "tests/CMakeFiles/datasets_test.dir/datasets/queries_test.cc.o" "gcc" "tests/CMakeFiles/datasets_test.dir/datasets/queries_test.cc.o.d"
  "/root/repo/tests/datasets/scale_free_test.cc" "tests/CMakeFiles/datasets_test.dir/datasets/scale_free_test.cc.o" "gcc" "tests/CMakeFiles/datasets_test.dir/datasets/scale_free_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/datasets/CMakeFiles/sama_datasets.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/sama_query.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/sama_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/sama_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/sama_text.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sama_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/graph/data_graph_test.cc" "tests/CMakeFiles/graph_test.dir/graph/data_graph_test.cc.o" "gcc" "tests/CMakeFiles/graph_test.dir/graph/data_graph_test.cc.o.d"
  "/root/repo/tests/graph/graph_stats_test.cc" "tests/CMakeFiles/graph_test.dir/graph/graph_stats_test.cc.o" "gcc" "tests/CMakeFiles/graph_test.dir/graph/graph_stats_test.cc.o.d"
  "/root/repo/tests/graph/loader_test.cc" "tests/CMakeFiles/graph_test.dir/graph/loader_test.cc.o" "gcc" "tests/CMakeFiles/graph_test.dir/graph/loader_test.cc.o.d"
  "/root/repo/tests/graph/path_enumerator_test.cc" "tests/CMakeFiles/graph_test.dir/graph/path_enumerator_test.cc.o" "gcc" "tests/CMakeFiles/graph_test.dir/graph/path_enumerator_test.cc.o.d"
  "/root/repo/tests/graph/path_test.cc" "tests/CMakeFiles/graph_test.dir/graph/path_test.cc.o" "gcc" "tests/CMakeFiles/graph_test.dir/graph/path_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/sama_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/datasets/CMakeFiles/sama_datasets.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/sama_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sama_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/university_search.dir/university_search.cpp.o"
  "CMakeFiles/university_search.dir/university_search.cpp.o.d"
  "university_search"
  "university_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/university_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

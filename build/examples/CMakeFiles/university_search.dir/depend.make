# Empty dependencies file for university_search.
# This may be replaced when dependencies are built.

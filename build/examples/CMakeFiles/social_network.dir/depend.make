# Empty dependencies file for social_network.
# This may be replaced when dependencies are built.

# Empty dependencies file for index_explorer.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/index_explorer.dir/index_explorer.cpp.o"
  "CMakeFiles/index_explorer.dir/index_explorer.cpp.o.d"
  "index_explorer"
  "index_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

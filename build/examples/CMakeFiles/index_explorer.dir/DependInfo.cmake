
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/index_explorer.cpp" "examples/CMakeFiles/index_explorer.dir/index_explorer.cpp.o" "gcc" "examples/CMakeFiles/index_explorer.dir/index_explorer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sama_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/sama_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/datasets/CMakeFiles/sama_datasets.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/sama_index.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/sama_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/sama_query.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/sama_text.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/sama_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/sama_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sama_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

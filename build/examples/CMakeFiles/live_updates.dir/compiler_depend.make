# Empty compiler generated dependencies file for live_updates.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/live_updates.dir/live_updates.cpp.o"
  "CMakeFiles/live_updates.dir/live_updates.cpp.o.d"
  "live_updates"
  "live_updates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/bench_fig8_effectiveness"
  "../bench/bench_fig8_effectiveness.pdb"
  "CMakeFiles/bench_fig8_effectiveness.dir/bench_fig8_effectiveness.cpp.o"
  "CMakeFiles/bench_fig8_effectiveness.dir/bench_fig8_effectiveness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_effectiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

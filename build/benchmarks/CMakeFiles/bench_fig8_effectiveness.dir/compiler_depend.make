# Empty compiler generated dependencies file for bench_fig8_effectiveness.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_table1_indexing"
  "../bench/bench_table1_indexing.pdb"
  "CMakeFiles/bench_table1_indexing.dir/bench_table1_indexing.cpp.o"
  "CMakeFiles/bench_table1_indexing.dir/bench_table1_indexing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_indexing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

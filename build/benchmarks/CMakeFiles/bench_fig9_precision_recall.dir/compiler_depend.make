# Empty compiler generated dependencies file for bench_fig9_precision_recall.
# This may be replaced when dependencies are built.

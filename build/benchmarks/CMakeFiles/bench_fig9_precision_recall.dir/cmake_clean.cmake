file(REMOVE_RECURSE
  "../bench/bench_fig9_precision_recall"
  "../bench/bench_fig9_precision_recall.pdb"
  "CMakeFiles/bench_fig9_precision_recall.dir/bench_fig9_precision_recall.cpp.o"
  "CMakeFiles/bench_fig9_precision_recall.dir/bench_fig9_precision_recall.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_precision_recall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/bench_fig7_scalability"
  "../bench/bench_fig7_scalability.pdb"
  "CMakeFiles/bench_fig7_scalability.dir/bench_fig7_scalability.cpp.o"
  "CMakeFiles/bench_fig7_scalability.dir/bench_fig7_scalability.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

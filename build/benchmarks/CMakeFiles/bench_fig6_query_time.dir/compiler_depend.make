# Empty compiler generated dependencies file for bench_fig6_query_time.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/benchmarks
# Build directory: /root/repo/build/benchmarks
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.

# Empty compiler generated dependencies file for sama_cli.
# This may be replaced when dependencies are built.

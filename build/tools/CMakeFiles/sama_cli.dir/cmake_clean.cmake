file(REMOVE_RECURSE
  "CMakeFiles/sama_cli.dir/sama_cli.cc.o"
  "CMakeFiles/sama_cli.dir/sama_cli.cc.o.d"
  "sama_cli"
  "sama_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sama_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

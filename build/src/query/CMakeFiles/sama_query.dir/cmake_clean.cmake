file(REMOVE_RECURSE
  "CMakeFiles/sama_query.dir/filter.cc.o"
  "CMakeFiles/sama_query.dir/filter.cc.o.d"
  "CMakeFiles/sama_query.dir/query_graph.cc.o"
  "CMakeFiles/sama_query.dir/query_graph.cc.o.d"
  "CMakeFiles/sama_query.dir/sparql.cc.o"
  "CMakeFiles/sama_query.dir/sparql.cc.o.d"
  "CMakeFiles/sama_query.dir/transformation.cc.o"
  "CMakeFiles/sama_query.dir/transformation.cc.o.d"
  "libsama_query.a"
  "libsama_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sama_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for sama_query.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/filter.cc" "src/query/CMakeFiles/sama_query.dir/filter.cc.o" "gcc" "src/query/CMakeFiles/sama_query.dir/filter.cc.o.d"
  "/root/repo/src/query/query_graph.cc" "src/query/CMakeFiles/sama_query.dir/query_graph.cc.o" "gcc" "src/query/CMakeFiles/sama_query.dir/query_graph.cc.o.d"
  "/root/repo/src/query/sparql.cc" "src/query/CMakeFiles/sama_query.dir/sparql.cc.o" "gcc" "src/query/CMakeFiles/sama_query.dir/sparql.cc.o.d"
  "/root/repo/src/query/transformation.cc" "src/query/CMakeFiles/sama_query.dir/transformation.cc.o" "gcc" "src/query/CMakeFiles/sama_query.dir/transformation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/sama_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/sama_text.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/sama_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sama_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

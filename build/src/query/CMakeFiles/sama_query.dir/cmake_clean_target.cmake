file(REMOVE_RECURSE
  "libsama_query.a"
)

# Empty compiler generated dependencies file for sama_index.
# This may be replaced when dependencies are built.

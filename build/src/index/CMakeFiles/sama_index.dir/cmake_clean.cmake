file(REMOVE_RECURSE
  "CMakeFiles/sama_index.dir/path_index.cc.o"
  "CMakeFiles/sama_index.dir/path_index.cc.o.d"
  "libsama_index.a"
  "libsama_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sama_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libsama_index.a"
)

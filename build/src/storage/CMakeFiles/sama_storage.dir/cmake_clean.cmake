file(REMOVE_RECURSE
  "CMakeFiles/sama_storage.dir/buffer_pool.cc.o"
  "CMakeFiles/sama_storage.dir/buffer_pool.cc.o.d"
  "CMakeFiles/sama_storage.dir/hypergraph_store.cc.o"
  "CMakeFiles/sama_storage.dir/hypergraph_store.cc.o.d"
  "CMakeFiles/sama_storage.dir/manifest.cc.o"
  "CMakeFiles/sama_storage.dir/manifest.cc.o.d"
  "CMakeFiles/sama_storage.dir/page_file.cc.o"
  "CMakeFiles/sama_storage.dir/page_file.cc.o.d"
  "CMakeFiles/sama_storage.dir/path_store.cc.o"
  "CMakeFiles/sama_storage.dir/path_store.cc.o.d"
  "CMakeFiles/sama_storage.dir/record_store.cc.o"
  "CMakeFiles/sama_storage.dir/record_store.cc.o.d"
  "libsama_storage.a"
  "libsama_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sama_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

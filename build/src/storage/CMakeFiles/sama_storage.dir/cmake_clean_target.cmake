file(REMOVE_RECURSE
  "libsama_storage.a"
)

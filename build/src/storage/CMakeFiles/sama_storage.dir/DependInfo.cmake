
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/buffer_pool.cc" "src/storage/CMakeFiles/sama_storage.dir/buffer_pool.cc.o" "gcc" "src/storage/CMakeFiles/sama_storage.dir/buffer_pool.cc.o.d"
  "/root/repo/src/storage/hypergraph_store.cc" "src/storage/CMakeFiles/sama_storage.dir/hypergraph_store.cc.o" "gcc" "src/storage/CMakeFiles/sama_storage.dir/hypergraph_store.cc.o.d"
  "/root/repo/src/storage/manifest.cc" "src/storage/CMakeFiles/sama_storage.dir/manifest.cc.o" "gcc" "src/storage/CMakeFiles/sama_storage.dir/manifest.cc.o.d"
  "/root/repo/src/storage/page_file.cc" "src/storage/CMakeFiles/sama_storage.dir/page_file.cc.o" "gcc" "src/storage/CMakeFiles/sama_storage.dir/page_file.cc.o.d"
  "/root/repo/src/storage/path_store.cc" "src/storage/CMakeFiles/sama_storage.dir/path_store.cc.o" "gcc" "src/storage/CMakeFiles/sama_storage.dir/path_store.cc.o.d"
  "/root/repo/src/storage/record_store.cc" "src/storage/CMakeFiles/sama_storage.dir/record_store.cc.o" "gcc" "src/storage/CMakeFiles/sama_storage.dir/record_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/sama_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/sama_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sama_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for sama_storage.
# This may be replaced when dependencies are built.

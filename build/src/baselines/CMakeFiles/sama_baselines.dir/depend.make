# Empty dependencies file for sama_baselines.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libsama_baselines.a"
)

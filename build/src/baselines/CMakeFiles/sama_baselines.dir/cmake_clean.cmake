file(REMOVE_RECURSE
  "CMakeFiles/sama_baselines.dir/backtrack.cc.o"
  "CMakeFiles/sama_baselines.dir/backtrack.cc.o.d"
  "CMakeFiles/sama_baselines.dir/bounded.cc.o"
  "CMakeFiles/sama_baselines.dir/bounded.cc.o.d"
  "CMakeFiles/sama_baselines.dir/dogma.cc.o"
  "CMakeFiles/sama_baselines.dir/dogma.cc.o.d"
  "libsama_baselines.a"
  "libsama_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sama_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

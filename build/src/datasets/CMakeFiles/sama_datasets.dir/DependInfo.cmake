
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datasets/berlin.cc" "src/datasets/CMakeFiles/sama_datasets.dir/berlin.cc.o" "gcc" "src/datasets/CMakeFiles/sama_datasets.dir/berlin.cc.o.d"
  "/root/repo/src/datasets/govtrack.cc" "src/datasets/CMakeFiles/sama_datasets.dir/govtrack.cc.o" "gcc" "src/datasets/CMakeFiles/sama_datasets.dir/govtrack.cc.o.d"
  "/root/repo/src/datasets/lubm.cc" "src/datasets/CMakeFiles/sama_datasets.dir/lubm.cc.o" "gcc" "src/datasets/CMakeFiles/sama_datasets.dir/lubm.cc.o.d"
  "/root/repo/src/datasets/queries.cc" "src/datasets/CMakeFiles/sama_datasets.dir/queries.cc.o" "gcc" "src/datasets/CMakeFiles/sama_datasets.dir/queries.cc.o.d"
  "/root/repo/src/datasets/scale_free.cc" "src/datasets/CMakeFiles/sama_datasets.dir/scale_free.cc.o" "gcc" "src/datasets/CMakeFiles/sama_datasets.dir/scale_free.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rdf/CMakeFiles/sama_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sama_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libsama_datasets.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/sama_datasets.dir/berlin.cc.o"
  "CMakeFiles/sama_datasets.dir/berlin.cc.o.d"
  "CMakeFiles/sama_datasets.dir/govtrack.cc.o"
  "CMakeFiles/sama_datasets.dir/govtrack.cc.o.d"
  "CMakeFiles/sama_datasets.dir/lubm.cc.o"
  "CMakeFiles/sama_datasets.dir/lubm.cc.o.d"
  "CMakeFiles/sama_datasets.dir/queries.cc.o"
  "CMakeFiles/sama_datasets.dir/queries.cc.o.d"
  "CMakeFiles/sama_datasets.dir/scale_free.cc.o"
  "CMakeFiles/sama_datasets.dir/scale_free.cc.o.d"
  "libsama_datasets.a"
  "libsama_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sama_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

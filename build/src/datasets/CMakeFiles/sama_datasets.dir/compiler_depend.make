# Empty compiler generated dependencies file for sama_datasets.
# This may be replaced when dependencies are built.

# Empty dependencies file for sama_common.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libsama_common.a"
)

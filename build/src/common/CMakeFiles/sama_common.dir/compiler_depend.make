# Empty compiler generated dependencies file for sama_common.
# This may be replaced when dependencies are built.

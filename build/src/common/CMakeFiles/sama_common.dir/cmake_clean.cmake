file(REMOVE_RECURSE
  "CMakeFiles/sama_common.dir/status.cc.o"
  "CMakeFiles/sama_common.dir/status.cc.o.d"
  "CMakeFiles/sama_common.dir/string_util.cc.o"
  "CMakeFiles/sama_common.dir/string_util.cc.o.d"
  "libsama_common.a"
  "libsama_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sama_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

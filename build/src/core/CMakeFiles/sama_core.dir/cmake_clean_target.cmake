file(REMOVE_RECURSE
  "libsama_core.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/alignment.cc" "src/core/CMakeFiles/sama_core.dir/alignment.cc.o" "gcc" "src/core/CMakeFiles/sama_core.dir/alignment.cc.o.d"
  "/root/repo/src/core/clustering.cc" "src/core/CMakeFiles/sama_core.dir/clustering.cc.o" "gcc" "src/core/CMakeFiles/sama_core.dir/clustering.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/core/CMakeFiles/sama_core.dir/engine.cc.o" "gcc" "src/core/CMakeFiles/sama_core.dir/engine.cc.o.d"
  "/root/repo/src/core/explain.cc" "src/core/CMakeFiles/sama_core.dir/explain.cc.o" "gcc" "src/core/CMakeFiles/sama_core.dir/explain.cc.o.d"
  "/root/repo/src/core/forest_search.cc" "src/core/CMakeFiles/sama_core.dir/forest_search.cc.o" "gcc" "src/core/CMakeFiles/sama_core.dir/forest_search.cc.o.d"
  "/root/repo/src/core/intersection_graph.cc" "src/core/CMakeFiles/sama_core.dir/intersection_graph.cc.o" "gcc" "src/core/CMakeFiles/sama_core.dir/intersection_graph.cc.o.d"
  "/root/repo/src/core/label_comparator.cc" "src/core/CMakeFiles/sama_core.dir/label_comparator.cc.o" "gcc" "src/core/CMakeFiles/sama_core.dir/label_comparator.cc.o.d"
  "/root/repo/src/core/score.cc" "src/core/CMakeFiles/sama_core.dir/score.cc.o" "gcc" "src/core/CMakeFiles/sama_core.dir/score.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/query/CMakeFiles/sama_query.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/sama_index.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/sama_text.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/sama_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/sama_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/sama_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sama_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for sama_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sama_core.dir/alignment.cc.o"
  "CMakeFiles/sama_core.dir/alignment.cc.o.d"
  "CMakeFiles/sama_core.dir/clustering.cc.o"
  "CMakeFiles/sama_core.dir/clustering.cc.o.d"
  "CMakeFiles/sama_core.dir/engine.cc.o"
  "CMakeFiles/sama_core.dir/engine.cc.o.d"
  "CMakeFiles/sama_core.dir/explain.cc.o"
  "CMakeFiles/sama_core.dir/explain.cc.o.d"
  "CMakeFiles/sama_core.dir/forest_search.cc.o"
  "CMakeFiles/sama_core.dir/forest_search.cc.o.d"
  "CMakeFiles/sama_core.dir/intersection_graph.cc.o"
  "CMakeFiles/sama_core.dir/intersection_graph.cc.o.d"
  "CMakeFiles/sama_core.dir/label_comparator.cc.o"
  "CMakeFiles/sama_core.dir/label_comparator.cc.o.d"
  "CMakeFiles/sama_core.dir/score.cc.o"
  "CMakeFiles/sama_core.dir/score.cc.o.d"
  "libsama_core.a"
  "libsama_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sama_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rdf/ntriples.cc" "src/rdf/CMakeFiles/sama_rdf.dir/ntriples.cc.o" "gcc" "src/rdf/CMakeFiles/sama_rdf.dir/ntriples.cc.o.d"
  "/root/repo/src/rdf/term.cc" "src/rdf/CMakeFiles/sama_rdf.dir/term.cc.o" "gcc" "src/rdf/CMakeFiles/sama_rdf.dir/term.cc.o.d"
  "/root/repo/src/rdf/turtle.cc" "src/rdf/CMakeFiles/sama_rdf.dir/turtle.cc.o" "gcc" "src/rdf/CMakeFiles/sama_rdf.dir/turtle.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sama_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

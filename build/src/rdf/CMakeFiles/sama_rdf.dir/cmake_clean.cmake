file(REMOVE_RECURSE
  "CMakeFiles/sama_rdf.dir/ntriples.cc.o"
  "CMakeFiles/sama_rdf.dir/ntriples.cc.o.d"
  "CMakeFiles/sama_rdf.dir/term.cc.o"
  "CMakeFiles/sama_rdf.dir/term.cc.o.d"
  "CMakeFiles/sama_rdf.dir/turtle.cc.o"
  "CMakeFiles/sama_rdf.dir/turtle.cc.o.d"
  "libsama_rdf.a"
  "libsama_rdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sama_rdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for sama_rdf.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libsama_rdf.a"
)

# Empty compiler generated dependencies file for sama_text.
# This may be replaced when dependencies are built.

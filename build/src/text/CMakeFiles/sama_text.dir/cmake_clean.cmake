file(REMOVE_RECURSE
  "CMakeFiles/sama_text.dir/inverted_index.cc.o"
  "CMakeFiles/sama_text.dir/inverted_index.cc.o.d"
  "CMakeFiles/sama_text.dir/thesaurus.cc.o"
  "CMakeFiles/sama_text.dir/thesaurus.cc.o.d"
  "CMakeFiles/sama_text.dir/tokenizer.cc.o"
  "CMakeFiles/sama_text.dir/tokenizer.cc.o.d"
  "libsama_text.a"
  "libsama_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sama_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libsama_text.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/inverted_index.cc" "src/text/CMakeFiles/sama_text.dir/inverted_index.cc.o" "gcc" "src/text/CMakeFiles/sama_text.dir/inverted_index.cc.o.d"
  "/root/repo/src/text/thesaurus.cc" "src/text/CMakeFiles/sama_text.dir/thesaurus.cc.o" "gcc" "src/text/CMakeFiles/sama_text.dir/thesaurus.cc.o.d"
  "/root/repo/src/text/tokenizer.cc" "src/text/CMakeFiles/sama_text.dir/tokenizer.cc.o" "gcc" "src/text/CMakeFiles/sama_text.dir/tokenizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sama_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for sama_eval.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libsama_eval.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/sama_eval.dir/metrics.cc.o"
  "CMakeFiles/sama_eval.dir/metrics.cc.o.d"
  "libsama_eval.a"
  "libsama_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sama_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/sama_graph.dir/data_graph.cc.o"
  "CMakeFiles/sama_graph.dir/data_graph.cc.o.d"
  "CMakeFiles/sama_graph.dir/graph_stats.cc.o"
  "CMakeFiles/sama_graph.dir/graph_stats.cc.o.d"
  "CMakeFiles/sama_graph.dir/loader.cc.o"
  "CMakeFiles/sama_graph.dir/loader.cc.o.d"
  "CMakeFiles/sama_graph.dir/path.cc.o"
  "CMakeFiles/sama_graph.dir/path.cc.o.d"
  "CMakeFiles/sama_graph.dir/path_enumerator.cc.o"
  "CMakeFiles/sama_graph.dir/path_enumerator.cc.o.d"
  "libsama_graph.a"
  "libsama_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sama_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

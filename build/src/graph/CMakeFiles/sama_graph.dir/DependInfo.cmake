
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/data_graph.cc" "src/graph/CMakeFiles/sama_graph.dir/data_graph.cc.o" "gcc" "src/graph/CMakeFiles/sama_graph.dir/data_graph.cc.o.d"
  "/root/repo/src/graph/graph_stats.cc" "src/graph/CMakeFiles/sama_graph.dir/graph_stats.cc.o" "gcc" "src/graph/CMakeFiles/sama_graph.dir/graph_stats.cc.o.d"
  "/root/repo/src/graph/loader.cc" "src/graph/CMakeFiles/sama_graph.dir/loader.cc.o" "gcc" "src/graph/CMakeFiles/sama_graph.dir/loader.cc.o.d"
  "/root/repo/src/graph/path.cc" "src/graph/CMakeFiles/sama_graph.dir/path.cc.o" "gcc" "src/graph/CMakeFiles/sama_graph.dir/path.cc.o.d"
  "/root/repo/src/graph/path_enumerator.cc" "src/graph/CMakeFiles/sama_graph.dir/path_enumerator.cc.o" "gcc" "src/graph/CMakeFiles/sama_graph.dir/path_enumerator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rdf/CMakeFiles/sama_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sama_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libsama_graph.a"
)

# Empty dependencies file for sama_graph.
# This may be replaced when dependencies are built.

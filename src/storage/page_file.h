#ifndef SAMA_STORAGE_PAGE_FILE_H_
#define SAMA_STORAGE_PAGE_FILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "common/result.h"
#include "common/status.h"

namespace sama {

using PageId = uint32_t;

// Validates a raw physical page image — version byte and checksum —
// without an open PageFile. `page` must hold kPageSize bytes; `path`
// only labels error messages. Used by the read path and by the
// standalone index verifier (sama_cli verify).
Status VerifyPageBytes(const uint8_t* page, PageId id,
                       const std::string& path);

// Physical page size on disk.
inline constexpr size_t kPageSize = 4096;
// Every physical page starts with an 8-byte header:
//   [0..4)  CRC32C over bytes [4..kPageSize) plus the page id
//   [4]     format version (kPageFormatVersion)
//   [5..8)  reserved (zero)
// Folding the page id into the checksum catches misdirected writes (a
// valid page persisted at the wrong offset) as well as bit rot.
inline constexpr size_t kPageHeaderSize = 8;
inline constexpr size_t kPageDataSize = kPageSize - kPageHeaderSize;
inline constexpr uint8_t kPageFormatVersion = 1;

// A file of fixed-size 4 KiB pages — the disk layer under the
// hypergraph/path stores. The paper's premise (§6.1) is that the data
// graph "cannot fit in memory and can only be stored on disk"; every
// index byte flows through this file and the BufferPool above it.
//
// Callers see kPageDataSize-byte payloads; the per-page checksum header
// is stamped on write and verified on every read, so a torn write, a
// truncated file or flipped bits surface as kCorruption instead of
// silent garbage. All I/O goes through an Env, the seam fault-injection
// tests use to simulate failing disks (see common/fault_injection.h).
class PageFile {
 public:
  PageFile() = default;
  ~PageFile();

  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  // Opens (creating if needed) the page file at `path`. Truncates when
  // `truncate` is set. Reopening an existing file validates page 0's
  // header: a pre-checksum (v0) file is rejected with kInvalidArgument
  // naming the format version. `env` = nullptr uses Env::Default().
  Status Open(const std::string& path, bool truncate, Env* env = nullptr);
  Status Close();
  bool is_open() const { return fd_ >= 0; }

  // Appends a zeroed page and returns its id.
  Result<PageId> AllocatePage();

  // Reads page `id`'s payload into `out` (resized to kPageDataSize)
  // after verifying the checksum. A short read (truncated file) and a
  // checksum mismatch are kCorruption with byte counts in the message;
  // an I/O error stays kIoError.
  Status ReadPage(PageId id, std::vector<uint8_t>* out) const;

  // Writes exactly kPageDataSize payload bytes from `data` to page
  // `id`, stamping a fresh header.
  Status WritePage(PageId id, const uint8_t* data);

  // Flushes OS buffers to stable storage.
  Status Sync();

  uint32_t page_count() const { return page_count_; }
  uint64_t size_bytes() const {
    return static_cast<uint64_t>(page_count_) * kPageSize;
  }

  // I/O counters (page granularity), used by cache experiments.
  uint64_t reads() const { return reads_; }
  uint64_t writes() const { return writes_; }

 private:
  // Stamps the header into `page` (kPageSize bytes) and writes it.
  Status WritePhysical(PageId id, uint8_t* page);
  // Reads the raw physical page and verifies header + checksum.
  Status ReadPhysical(PageId id, uint8_t* page) const;

  Env* env_ = nullptr;
  int fd_ = -1;
  std::string path_;
  uint32_t page_count_ = 0;
  mutable uint64_t reads_ = 0;
  uint64_t writes_ = 0;
};

}  // namespace sama

#endif  // SAMA_STORAGE_PAGE_FILE_H_

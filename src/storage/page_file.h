#ifndef SAMA_STORAGE_PAGE_FILE_H_
#define SAMA_STORAGE_PAGE_FILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace sama {

using PageId = uint32_t;

inline constexpr size_t kPageSize = 4096;

// A file of fixed-size 4 KiB pages — the disk layer under the
// hypergraph/path stores. The paper's premise (§6.1) is that the data
// graph "cannot fit in memory and can only be stored on disk"; every
// index byte flows through this file and the BufferPool above it.
class PageFile {
 public:
  PageFile() = default;
  ~PageFile();

  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  // Opens (creating if needed) the page file at `path`. Truncates when
  // `truncate` is set.
  Status Open(const std::string& path, bool truncate);
  Status Close();
  bool is_open() const { return fd_ >= 0; }

  // Appends a zeroed page and returns its id.
  Result<PageId> AllocatePage();

  // Reads page `id` into `out` (resized to kPageSize).
  Status ReadPage(PageId id, std::vector<uint8_t>* out) const;

  // Writes exactly kPageSize bytes from `data` to page `id`.
  Status WritePage(PageId id, const uint8_t* data);

  // Flushes OS buffers to stable storage.
  Status Sync();

  uint32_t page_count() const { return page_count_; }
  uint64_t size_bytes() const {
    return static_cast<uint64_t>(page_count_) * kPageSize;
  }

  // I/O counters (page granularity), used by cache experiments.
  uint64_t reads() const { return reads_; }
  uint64_t writes() const { return writes_; }

  // Test hook: after `writes` further successful page writes, every
  // write fails with IoError until the injection is cleared (pass
  // UINT64_MAX). Lets tests exercise the write-back error paths without
  // filling the disk.
  void InjectWriteFailureAfter(uint64_t writes) {
    writes_until_failure_ = writes;
  }

 private:
  int fd_ = -1;
  std::string path_;
  uint32_t page_count_ = 0;
  mutable uint64_t reads_ = 0;
  uint64_t writes_ = 0;
  uint64_t writes_until_failure_ = UINT64_MAX;
};

}  // namespace sama

#endif  // SAMA_STORAGE_PAGE_FILE_H_

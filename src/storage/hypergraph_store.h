#ifndef SAMA_STORAGE_HYPERGRAPH_STORE_H_
#define SAMA_STORAGE_HYPERGRAPH_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/record_store.h"

namespace sama {

using VertexId = uint64_t;
using HyperedgeId = uint64_t;

// The HyperGraphDB substitute (§6.1, Figure 5): a disk store modelling
// H = (X, E) where X is a vertex set and E ⊆ 2^X is a set of
// hyperedges. The index layer stores one vertex per RDF term, one
// binary hyperedge per triple, and one wide hyperedge per indexed path
// (Figure 5 groups each path's elements into a hyperedge), so the
// Table-1 quantities are |HV| = vertex_count() and
// |HE| = hyperedge_count().
//
// Thread safety: GetVertex/GetHyperedge are safe to call concurrently
// once building has finished — the record-id tables are immutable at
// query time and the RecordStore read path is lock-free over the
// buffer pool's pin protocol. AddVertex/AddHyperedge are single-writer
// and must not overlap with readers.
class HypergraphStore {
 public:
  struct Options {
    std::string path;  // Empty = in-memory.
    // truncate=false reopens an existing store from its manifests.
    bool truncate = true;
    size_t buffer_pool_pages = 1024;
    // I/O seam for fault-injection tests; nullptr = Env::Default().
    Env* env = nullptr;
  };

  HypergraphStore() = default;
  HypergraphStore(const HypergraphStore&) = delete;
  HypergraphStore& operator=(const HypergraphStore&) = delete;

  Status Open(const Options& options);
  Status Close();

  // Adds a vertex carrying `label`; returns its dense id.
  Result<VertexId> AddVertex(const std::string& label);

  // Adds a hyperedge over existing vertices. Requires non-empty
  // `vertices` with every id previously returned by AddVertex.
  Result<HyperedgeId> AddHyperedge(const std::vector<VertexId>& vertices);

  // Reads back a vertex label.
  Status GetVertex(VertexId id, std::string* label) const;
  // Reads back a hyperedge's member vertices.
  Status GetHyperedge(HyperedgeId id, std::vector<VertexId>* out) const;

  uint64_t vertex_count() const { return vertex_records_.size(); }
  uint64_t hyperedge_count() const { return edge_records_.size(); }
  uint64_t size_bytes() const { return store_.size_bytes(); }

  Status Flush();
  Status DropCaches();

 private:
  Status WriteManifests();

  RecordStore store_;
  std::vector<RecordId> vertex_records_;
  std::vector<RecordId> edge_records_;
  std::string manifest_base_;
  Env* env_ = nullptr;
};

}  // namespace sama

#endif  // SAMA_STORAGE_HYPERGRAPH_STORE_H_

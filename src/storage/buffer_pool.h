#ifndef SAMA_STORAGE_BUFFER_POOL_H_
#define SAMA_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/epoch.h"
#include "common/result.h"
#include "storage/page_file.h"

namespace sama {

// LRU page cache over a PageFile. Reads go through Fetch(); writes
// through MutablePage() + write-back on eviction/Flush(). DropAll()
// empties the cache, which is how the benchmarks produce the paper's
// cold-cache condition (Figure 6a) without rebooting.
//
// Thread safety: every method is safe to call concurrently. The read
// path is LOCK-FREE (DESIGN.md §13): a cache hit pins the epoch, probes
// an open-addressing page table of atomic frame pointers, and takes the
// pin through a seqlock validation — no pool-wide latch, so concurrent
// hits share nothing but the frames they touch:
//   * each frame carries a sequence word (even = stable, odd = being
//     evicted). A reader pins with: read seq (must be even) → increment
//     pins → re-read seq; if it changed, the reader backs out and
//     retries (the frame was being evicted underneath it). The evictor
//     mirrors this: bump seq odd → check pins == 0 → tombstone + retire
//     or abort. Under seq_cst either the reader sees the odd seq or the
//     evictor sees the pin — never both blind;
//   * evicted frames and superseded tables are retired through the
//     epoch manager, so a reader still probing old memory finishes
//     safely before anything is freed;
//   * misses, eviction, flush and MutablePage serialize on a plain
//     write mutex. MutablePage deliberately takes the slow path even on
//     a hit: write pins must be mutually ordered with Flush's
//     "skip mid-mutation frames" check, and writes are not the hot
//     path this pool optimises.
// A pinned frame is never evicted and its bytes never move, so a
// PageGuard's pointer stays valid without any lock. Byte-level access
// to one page is NOT serialised by the pool — concurrent writers of the
// same page must coordinate above it, as in any database buffer
// manager.
class BufferPool {
 public:
  // `capacity` is the maximum number of resident pages (>=1). When
  // every frame is pinned the pool temporarily overflows capacity
  // rather than failing the fetch.
  BufferPool(PageFile* file, size_t capacity,
             EpochManager* epochs = EpochManager::Global());
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

 private:
  struct Frame {
    PageId page = 0;  // Immutable after construction; frames are never
                      // re-used for another page (eviction retires them).
    // Seqlock word: even = stable, odd = eviction in progress. Bumped
    // and checked with seq_cst on both sides (Dekker pattern with
    // `pins`, see class comment).
    std::atomic<uint32_t> seq{0};
    std::atomic<int> pins{0};
    std::atomic<int> write_pins{0};
    std::atomic<bool> dirty{false};
    std::atomic<uint64_t> last_used{0};
    std::vector<uint8_t> data;  // Allocated once at load; never moves.
  };

 public:
  // RAII pin on one cached page. While a guard is live its frame stays
  // resident and its data pointer stays valid; destruction unpins.
  // Movable, not copyable.
  class PageGuard {
   public:
    PageGuard() = default;
    PageGuard(PageGuard&& o) noexcept
        : frame_(o.frame_), writable_(o.writable_) {
      o.frame_ = nullptr;
    }
    PageGuard& operator=(PageGuard&& o) noexcept {
      if (this != &o) {
        Release();
        frame_ = o.frame_;
        writable_ = o.writable_;
        o.frame_ = nullptr;
      }
      return *this;
    }
    ~PageGuard() { Release(); }

    bool valid() const { return frame_ != nullptr; }
    PageId page() const { return frame_->page; }

    // The page's kPageDataSize payload bytes.
    const uint8_t* data() const { return frame_->data.data(); }
    // Requires a guard obtained through MutablePage().
    uint8_t* mutable_data() {
      assert(writable_);
      return frame_->data.data();
    }

    // Unpins early (idempotent).
    void Release() {
      if (frame_ == nullptr) return;
      if (writable_) {
        frame_->write_pins.fetch_sub(1, std::memory_order_release);
      }
      frame_->pins.fetch_sub(1, std::memory_order_release);
      frame_ = nullptr;
    }

   private:
    friend class BufferPool;
    PageGuard(Frame* frame, bool writable)
        : frame_(frame), writable_(writable) {}

    Frame* frame_ = nullptr;
    bool writable_ = false;
  };

  // Returns a read pin on `page`'s cached content (kPageDataSize
  // payload bytes; the checksum header stays inside PageFile).
  // Lock-free on a cache hit.
  Result<PageGuard> Fetch(PageId page);

  // Like Fetch but marks the page dirty and allows mutation through the
  // guard; mutations are written back on eviction or Flush(). Always
  // serializes on the write mutex (see class comment).
  Result<PageGuard> MutablePage(PageId page);

  // Writes all dirty pages back to the file. Pages with a live write
  // pin are skipped (still mid-mutation; they stay dirty and flush
  // later).
  Status Flush();

  // Flushes, then evicts every unpinned page (cold cache).
  Status DropAll();

  struct Stats {
    uint64_t fetches = 0;  // Fetch + MutablePage calls.
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t bytes_read = 0;  // Payload bytes loaded from disk (misses).
    double HitRate() const {
      uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / total;
    }
    // Counter delta `after - before`, the profiler's per-phase page
    // attribution (both snapshots must come from the same pool; the
    // counters are monotonic, so the delta never underflows).
    static Stats Delta(const Stats& before, const Stats& after) {
      Stats d;
      d.fetches = after.fetches - before.fetches;
      d.hits = after.hits - before.hits;
      d.misses = after.misses - before.misses;
      d.evictions = after.evictions - before.evictions;
      d.bytes_read = after.bytes_read - before.bytes_read;
      return d;
    }
  };
  // Snapshot of the atomic counters.
  Stats stats() const {
    Stats s;
    s.fetches = fetches_.load(std::memory_order_relaxed);
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.evictions = evictions_.load(std::memory_order_relaxed);
    s.bytes_read = bytes_read_.load(std::memory_order_relaxed);
    return s;
  }
  void ResetStats() {
    fetches_.store(0, std::memory_order_relaxed);
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
    evictions_.store(0, std::memory_order_relaxed);
    bytes_read_.store(0, std::memory_order_relaxed);
  }

  // Pin attempts that lost the seqlock race with an eviction and had
  // to back out — the read path's contention signal (also exported as
  // sama_buffer_pool_pin_retries_total). Not part of Stats: it is a
  // concurrency diagnostic, not page traffic.
  uint64_t pin_retries() const {
    return pin_retries_.load(std::memory_order_relaxed);
  }

  size_t resident_pages() const;
  size_t pinned_pages() const;
  size_t capacity() const { return capacity_; }

 private:
  // Open-addressing page table: power-of-two array of frame pointers.
  // nullptr = never used (probes stop), kTombstone = evicted (probes
  // continue). Insertions reuse tombstones; the table is rebuilt (and
  // the old one epoch-retired) when live + tombstone load grows past
  // 3/4.
  struct Table {
    size_t slot_count;  // Power of two.
    size_t mask;
    std::atomic<Frame*>* slots;

    static Table* Make(size_t count);
    static void Free(Table* t);
  };
  static Frame* Tombstone() { return reinterpret_cast<Frame*>(1); }

  // Lock-free probe for `page` in `table`; returns the frame or null.
  // Caller must hold an epoch guard.
  Frame* ProbeTable(const Table* table, PageId page) const;

  // Slow path: miss handling and writable fetches, under write_mu_.
  Result<PageGuard> FetchLocked(PageId page, bool writable);
  // Pins `frame` (no seqlock validation — caller holds write_mu_, which
  // excludes eviction) and stamps recency.
  PageGuard PinLocked(Frame* frame, bool writable);
  // Inserts `frame` under write_mu_, reusing the first tombstone on the
  // probe path; rebuilds the table first when too loaded.
  void InsertLocked(Frame* frame);
  // Evicts the least-recently-used unpinned frame; requires write_mu_.
  // Sets *evicted=false when every frame is pinned (or kept losing the
  // pin race).
  Status EvictOneLocked(bool* evicted);
  // Seqlock-evicts the frame in `slot`; *evicted=false on a lost pin
  // race. `count=false` suppresses the eviction counters (DropAll is
  // not capacity pressure). Requires write_mu_.
  Status EvictFrameLocked(size_t slot, bool count, bool* evicted);
  Status FlushLocked();

  PageFile* file_;
  size_t capacity_;
  EpochManager* epochs_;
  RetireList retired_;  // Evicted frames + superseded tables.

  // Serialises misses, eviction, flush, DropAll and writable fetches.
  // Never taken by the read-hit path.
  mutable std::mutex write_mu_;
  std::atomic<Table*> table_{nullptr};
  size_t live_frames_ = 0;  // Under write_mu_.
  size_t tombstones_ = 0;   // Under write_mu_.

  std::atomic<uint64_t> clock_{0};  // Logical time for LRU recency.
  std::atomic<uint64_t> fetches_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> bytes_read_{0};
  std::atomic<uint64_t> pin_retries_{0};

  // Process-wide registry series (sama_buffer_pool_*), summed over all
  // pools; resolved once in the constructor. Local Stats stay the
  // per-pool view (ResetStats does not touch the registry).
  struct Instruments;
  std::shared_ptr<const Instruments> instruments_;
};

}  // namespace sama

#endif  // SAMA_STORAGE_BUFFER_POOL_H_

#ifndef SAMA_STORAGE_BUFFER_POOL_H_
#define SAMA_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/page_file.h"

namespace sama {

// LRU page cache over a PageFile. Reads go through Fetch(); writes
// through MutablePage() + write-back on eviction/Flush(). DropAll()
// empties the cache, which is how the benchmarks produce the paper's
// cold-cache condition (Figure 6a) without rebooting.
class BufferPool {
 public:
  // `capacity` is the maximum number of resident pages (>=1).
  BufferPool(PageFile* file, size_t capacity);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Returns a pointer to the cached content of `page` (kPageSize bytes).
  // The pointer is invalidated by any subsequent pool call.
  Result<const uint8_t*> Fetch(PageId page);

  // Like Fetch but marks the page dirty; mutations are written back on
  // eviction or Flush().
  Result<uint8_t*> MutablePage(PageId page);

  // Writes all dirty pages back to the file.
  Status Flush();

  // Flushes, then evicts everything (cold cache).
  Status DropAll();

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    double HitRate() const {
      uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / total;
    }
  };
  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats(); }

  size_t resident_pages() const { return frames_.size(); }
  size_t capacity() const { return capacity_; }

 private:
  struct Frame {
    PageId page;
    bool dirty;
    std::vector<uint8_t> data;
  };

  // Moves `it` to the MRU position and returns its frame.
  Frame& Touch(std::list<Frame>::iterator it);
  Result<std::list<Frame>::iterator> Load(PageId page);
  Status EvictOne();

  PageFile* file_;
  size_t capacity_;
  std::list<Frame> frames_;  // Front = MRU, back = LRU.
  std::unordered_map<PageId, std::list<Frame>::iterator> frame_of_;
  Stats stats_;
};

}  // namespace sama

#endif  // SAMA_STORAGE_BUFFER_POOL_H_

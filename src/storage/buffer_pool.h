#ifndef SAMA_STORAGE_BUFFER_POOL_H_
#define SAMA_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/page_file.h"

namespace sama {

// LRU page cache over a PageFile. Reads go through Fetch(); writes
// through MutablePage() + write-back on eviction/Flush(). DropAll()
// empties the cache, which is how the benchmarks produce the paper's
// cold-cache condition (Figure 6a) without rebooting.
//
// Thread safety: every method is safe to call concurrently. The pool
// follows the classic latch-then-pin protocol:
//   * a shared_mutex latch guards the page table; cache hits take the
//     shared side (reads scale across threads), misses/eviction/flush
//     take the exclusive side;
//   * Fetch/MutablePage return a PageGuard that pins the frame — a
//     pinned frame is never evicted and its bytes never move, so the
//     guard's pointer stays valid without holding the latch;
//   * hit/miss counters are atomics, updated outside any critical
//     section.
// Latch order (see DESIGN.md "Threading model"): pool latch strictly
// before frame pin; guards never re-enter the pool while the latch is
// held. Byte-level access to one page is NOT serialised by the pool —
// concurrent writers of the same page must coordinate above it, as in
// any database buffer manager.
class BufferPool {
 public:
  // `capacity` is the maximum number of resident pages (>=1). When
  // every frame is pinned the pool temporarily overflows capacity
  // rather than failing the fetch.
  BufferPool(PageFile* file, size_t capacity);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

 private:
  struct Frame {
    PageId page = 0;
    std::atomic<int> pins{0};
    std::atomic<int> write_pins{0};
    std::atomic<bool> dirty{false};
    std::atomic<uint64_t> last_used{0};
    std::vector<uint8_t> data;  // Allocated once at load; never moves.
  };

 public:
  // RAII pin on one cached page. While a guard is live its frame stays
  // resident and its data pointer stays valid; destruction unpins.
  // Movable, not copyable.
  class PageGuard {
   public:
    PageGuard() = default;
    PageGuard(PageGuard&& o) noexcept
        : frame_(o.frame_), writable_(o.writable_) {
      o.frame_ = nullptr;
    }
    PageGuard& operator=(PageGuard&& o) noexcept {
      if (this != &o) {
        Release();
        frame_ = o.frame_;
        writable_ = o.writable_;
        o.frame_ = nullptr;
      }
      return *this;
    }
    ~PageGuard() { Release(); }

    bool valid() const { return frame_ != nullptr; }
    PageId page() const { return frame_->page; }

    // The page's kPageDataSize payload bytes.
    const uint8_t* data() const { return frame_->data.data(); }
    // Requires a guard obtained through MutablePage().
    uint8_t* mutable_data() {
      assert(writable_);
      return frame_->data.data();
    }

    // Unpins early (idempotent).
    void Release() {
      if (frame_ == nullptr) return;
      if (writable_) {
        frame_->write_pins.fetch_sub(1, std::memory_order_release);
      }
      frame_->pins.fetch_sub(1, std::memory_order_release);
      frame_ = nullptr;
    }

   private:
    friend class BufferPool;
    PageGuard(Frame* frame, bool writable)
        : frame_(frame), writable_(writable) {}

    Frame* frame_ = nullptr;
    bool writable_ = false;
  };

  // Returns a read pin on `page`'s cached content (kPageDataSize
  // payload bytes; the checksum header stays inside PageFile).
  Result<PageGuard> Fetch(PageId page);

  // Like Fetch but marks the page dirty and allows mutation through the
  // guard; mutations are written back on eviction or Flush().
  Result<PageGuard> MutablePage(PageId page);

  // Writes all dirty pages back to the file. Pages with a live write
  // pin are skipped (still mid-mutation; they stay dirty and flush
  // later).
  Status Flush();

  // Flushes, then evicts every unpinned page (cold cache).
  Status DropAll();

  struct Stats {
    uint64_t fetches = 0;  // Fetch + MutablePage calls.
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t bytes_read = 0;  // Payload bytes loaded from disk (misses).
    double HitRate() const {
      uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / total;
    }
    // Counter delta `after - before`, the profiler's per-phase page
    // attribution (both snapshots must come from the same pool; the
    // counters are monotonic, so the delta never underflows).
    static Stats Delta(const Stats& before, const Stats& after) {
      Stats d;
      d.fetches = after.fetches - before.fetches;
      d.hits = after.hits - before.hits;
      d.misses = after.misses - before.misses;
      d.evictions = after.evictions - before.evictions;
      d.bytes_read = after.bytes_read - before.bytes_read;
      return d;
    }
  };
  // Snapshot of the atomic counters.
  Stats stats() const {
    Stats s;
    s.fetches = fetches_.load(std::memory_order_relaxed);
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.evictions = evictions_.load(std::memory_order_relaxed);
    s.bytes_read = bytes_read_.load(std::memory_order_relaxed);
    return s;
  }
  void ResetStats() {
    fetches_.store(0, std::memory_order_relaxed);
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
    evictions_.store(0, std::memory_order_relaxed);
    bytes_read_.store(0, std::memory_order_relaxed);
  }

  size_t resident_pages() const {
    std::shared_lock<std::shared_mutex> lock(latch_);
    return frames_.size();
  }
  size_t pinned_pages() const;
  size_t capacity() const { return capacity_; }

 private:
  Result<PageGuard> FetchInternal(PageId page, bool writable);
  // Pins `frame` and stamps recency; caller holds the latch (either
  // side).
  PageGuard PinLocked(Frame* frame, bool writable);
  // Evicts the least-recently-used unpinned frame; requires the
  // exclusive latch. Sets *evicted=false when every frame is pinned.
  Status EvictOneLocked(bool* evicted);
  Status FlushLocked();

  PageFile* file_;
  size_t capacity_;

  mutable std::shared_mutex latch_;
  std::unordered_map<PageId, std::unique_ptr<Frame>> frames_;

  std::atomic<uint64_t> clock_{0};  // Logical time for LRU recency.
  std::atomic<uint64_t> fetches_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> bytes_read_{0};

  // Process-wide registry series (sama_buffer_pool_*), summed over all
  // pools; resolved once in the constructor. Local Stats stay the
  // per-pool view (ResetStats does not touch the registry).
  struct Instruments;
  std::shared_ptr<const Instruments> instruments_;
};

}  // namespace sama

#endif  // SAMA_STORAGE_BUFFER_POOL_H_

#ifndef SAMA_STORAGE_TRIPLE_CODEC_H_
#define SAMA_STORAGE_TRIPLE_CODEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "rdf/triple.h"

namespace sama {

// Compact binary codec for terms and triples, shared by the index
// metadata blob and the WAL record payloads so both sides round-trip
// the exact same byte layout. Varint-framed; Get* return false on a
// truncated or malformed buffer without advancing past the damage.

void PutLengthPrefixedString(std::vector<uint8_t>* blob,
                             const std::string& s);
bool GetLengthPrefixedString(const std::vector<uint8_t>& blob, size_t* pos,
                             std::string* out);

void PutTerm(std::vector<uint8_t>* blob, const Term& t);
bool GetTerm(const std::vector<uint8_t>& blob, size_t* pos, Term* out);

void PutTriple(std::vector<uint8_t>* blob, const Triple& t);
bool GetTriple(const std::vector<uint8_t>& blob, size_t* pos, Triple* out);

}  // namespace sama

#endif  // SAMA_STORAGE_TRIPLE_CODEC_H_

#include "storage/path_store.h"

#include "storage/coding.h"
#include "storage/manifest.h"

namespace sama {

Status PathStore::Open(const Options& options) {
  compress_ = options.compress;
  env_ = options.env;
  RecordStore::Options ro;
  ro.path = options.path;
  ro.truncate = options.truncate;
  ro.buffer_pool_pages = options.buffer_pool_pages;
  ro.env = options.env;
  SAMA_RETURN_IF_ERROR(store_.Open(ro));
  if (!options.path.empty()) {
    manifest_path_ = options.path + ".manifest";
    if (!options.truncate) {
      auto ids = ReadIdManifest(manifest_path_, env_);
      if (!ids.ok()) return ids.status();
      record_ids_ = std::move(*ids);
      if (record_ids_.size() != store_.record_count()) {
        return Status::Corruption(
            "path manifest out of sync with record store");
      }
    }
  }
  return Status::Ok();
}

Status PathStore::WriteManifest() {
  if (manifest_path_.empty()) return Status::Ok();
  return WriteIdManifest(manifest_path_, record_ids_, env_);
}

Status PathStore::Close() {
  SAMA_RETURN_IF_ERROR(WriteManifest());
  return store_.Close();
}

void PathStore::Encode(const Path& p, bool compress,
                       std::vector<uint8_t>* out) {
  out->clear();
  if (compress) {
    PutVarint64(out, p.node_labels.size());
    for (TermId t : p.node_labels) PutVarint32(out, t);
    for (TermId t : p.edge_labels) PutVarint32(out, t);
    for (NodeId n : p.nodes) PutVarint32(out, n);
  } else {
    PutFixed32(out, static_cast<uint32_t>(p.node_labels.size()));
    for (TermId t : p.node_labels) PutFixed32(out, t);
    for (TermId t : p.edge_labels) PutFixed32(out, t);
    for (NodeId n : p.nodes) PutFixed32(out, n);
  }
}

Status PathStore::Decode(const std::vector<uint8_t>& buf, bool compress,
                         Path* out) {
  size_t pos = 0;
  uint64_t k64 = 0;
  uint32_t k32 = 0;
  size_t k = 0;
  if (compress) {
    if (!GetVarint64(buf, &pos, &k64)) {
      return Status::Corruption("path header");
    }
    k = static_cast<size_t>(k64);
  } else {
    if (!GetFixed32(buf, &pos, &k32)) {
      return Status::Corruption("path header");
    }
    k = k32;
  }
  if (k == 0) return Status::Corruption("empty path record");
  out->node_labels.resize(k);
  out->edge_labels.resize(k - 1);
  out->nodes.resize(k);
  auto read_u32 = [&](uint32_t* v) {
    return compress ? GetVarint32(buf, &pos, v) : GetFixed32(buf, &pos, v);
  };
  for (size_t i = 0; i < k; ++i) {
    if (!read_u32(&out->node_labels[i])) {
      return Status::Corruption("path node labels");
    }
  }
  for (size_t i = 0; i + 1 < k; ++i) {
    if (!read_u32(&out->edge_labels[i])) {
      return Status::Corruption("path edge labels");
    }
  }
  for (size_t i = 0; i < k; ++i) {
    if (!read_u32(&out->nodes[i])) {
      return Status::Corruption("path node ids");
    }
  }
  return Status::Ok();
}

Result<PathId> PathStore::Put(const Path& p) {
  if (p.empty()) return Status::InvalidArgument("empty path");
  std::vector<uint8_t> buf;
  Encode(p, compress_, &buf);
  auto rid = store_.Append(buf);
  if (!rid.ok()) return rid.status();
  PathId id = record_ids_.size();
  record_ids_.push_back(*rid);
  return id;
}

Status PathStore::Get(PathId id, Path* out) const {
  if (id >= record_ids_.size()) {
    return Status::OutOfRange("path " + std::to_string(id));
  }
  std::vector<uint8_t> buf;
  SAMA_RETURN_IF_ERROR(store_.Read(record_ids_[id], &buf));
  return Decode(buf, compress_, out);
}

Status PathStore::Flush() {
  SAMA_RETURN_IF_ERROR(WriteManifest());
  return store_.Flush();
}

Status PathStore::DropCaches() { return store_.DropCaches(); }

}  // namespace sama

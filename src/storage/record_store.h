#ifndef SAMA_STORAGE_RECORD_STORE_H_
#define SAMA_STORAGE_RECORD_STORE_H_

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"

namespace sama {

using RecordId = uint64_t;

// Append-only record log. Two backends share the API:
//  * disk: records packed into 4 KiB pages behind an LRU BufferPool —
//    the configuration every experiment uses ("the graph can only be
//    stored on disk", §6.1);
//  * memory: a plain heap vector, for unit tests and small examples.
//
// Records never span pages, so one record is limited to
// kPageDataSize - kMaxHeader bytes in the disk backend.
//
// Thread safety: writers (Append/Flush/DropCaches) serialise on the
// exclusive side of an internal shared_mutex. Disk-backend reads take
// no store-level lock at all — they ride the BufferPool's lock-free
// probe-and-pin protocol, so parallel query workers (clustering,
// forest search) fetch pages concurrently; memory-backend reads take
// the shared side only (the backing vector reallocates on Append, so
// they must exclude writers — but never each other).
class RecordStore {
 public:
  struct Options {
    // Empty path selects the in-memory backend.
    std::string path;
    // truncate=false reopens an existing store: the header page
    // (record count, tail position) is recovered and appends continue
    // where the last Flush() left off.
    bool truncate = true;
    size_t buffer_pool_pages = 1024;  // 4 MiB default cache.
    // I/O seam for fault-injection tests; nullptr = Env::Default().
    Env* env = nullptr;
  };

  RecordStore() = default;
  RecordStore(const RecordStore&) = delete;
  RecordStore& operator=(const RecordStore&) = delete;

  Status Open(const Options& options);
  Status Close();

  // Appends `data`; returns the record's id.
  Result<RecordId> Append(const std::vector<uint8_t>& data);

  // Reads record `id` into `out`.
  Status Read(RecordId id, std::vector<uint8_t>* out) const;

  // Persists buffered pages (no-op in memory).
  Status Flush();
  // Empties the page cache — the cold-cache lever (no-op in memory).
  Status DropCaches();

  uint64_t record_count() const { return record_count_; }
  // Bytes on disk (or heap bytes in the memory backend).
  uint64_t size_bytes() const;
  bool on_disk() const { return file_ != nullptr; }

  // Buffer pool statistics (zeros in the memory backend).
  BufferPool::Stats cache_stats() const;

 private:
  Status WriteStoreHeader();
  Status ReadStoreHeader();

  // Disk backend.
  std::unique_ptr<PageFile> file_;
  std::unique_ptr<BufferPool> pool_;
  PageId tail_page_ = 0;
  size_t tail_offset_ = 0;

  // Memory backend.
  std::vector<std::vector<uint8_t>> mem_records_;

  // Writers exclusive; memory-backend readers shared.
  mutable std::shared_mutex mu_;
  uint64_t record_count_ = 0;
};

}  // namespace sama

#endif  // SAMA_STORAGE_RECORD_STORE_H_

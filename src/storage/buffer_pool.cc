#include "storage/buffer_pool.h"

#include <cassert>
#include <mutex>

#include "obs/metrics.h"

namespace sama {
namespace {

// Finalizer-style mix: sequential PageIds must spread over the table.
inline uint64_t MixPage(PageId page) {
  uint64_t h = page;
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return h;
}

inline size_t NextPow2(size_t n) {
  size_t p = 16;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

// Registry-side mirror of the pool counters, summed across every pool
// in the process (each pool's constructor resolves the same series).
struct BufferPool::Instruments {
  Counter* hits = nullptr;
  Counter* misses = nullptr;
  Counter* evictions = nullptr;
  Counter* pin_retries = nullptr;

  static std::shared_ptr<const Instruments> Resolve() {
    MetricsRegistry* reg = MetricsRegistry::Global();
    auto ins = std::make_shared<Instruments>();
    ins->hits = reg->GetCounter("sama_buffer_pool_hits_total",
                                "Buffer pool page fetches served from cache.");
    ins->misses = reg->GetCounter("sama_buffer_pool_misses_total",
                                  "Buffer pool page fetches that read disk.");
    ins->evictions =
        reg->GetCounter("sama_buffer_pool_evictions_total",
                        "Buffer pool frames evicted to make room.");
    ins->pin_retries = reg->GetCounter(
        "sama_buffer_pool_pin_retries_total",
        "Lock-free page pins that lost the seqlock race with an eviction "
        "and retried.");
    return ins;
  }
};

BufferPool::Table* BufferPool::Table::Make(size_t count) {
  auto* t = new Table();
  t->slot_count = count;
  t->mask = count - 1;
  t->slots = new std::atomic<Frame*>[count]();
  return t;
}

void BufferPool::Table::Free(Table* t) {
  delete[] t->slots;
  delete t;
}

BufferPool::BufferPool(PageFile* file, size_t capacity, EpochManager* epochs)
    : file_(file),
      capacity_(capacity == 0 ? 1 : capacity),
      epochs_(epochs),
      retired_(epochs),
      instruments_(Instruments::Resolve()) {
  table_.store(Table::Make(NextPow2(capacity_ * 2)),
               std::memory_order_release);
}

BufferPool::~BufferPool() {
  // Best effort: persist whatever is dirty. Errors are unreportable in a
  // destructor; callers that care must Flush() explicitly.
  (void)Flush();
  // No readers may be pinned inside a pool being destroyed; live frames
  // are freed here, retired ones by the RetireList.
  Table* table = table_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < table->slot_count; ++i) {
    Frame* f = table->slots[i].load(std::memory_order_relaxed);
    if (f != nullptr && f != Tombstone()) delete f;
  }
  Table::Free(table);
}

BufferPool::Frame* BufferPool::ProbeTable(const Table* table,
                                          PageId page) const {
  for (size_t i = MixPage(page) & table->mask;; i = (i + 1) & table->mask) {
    Frame* f = table->slots[i].load(std::memory_order_acquire);
    if (f == nullptr) return nullptr;
    if (f == Tombstone()) continue;
    if (f->page == page) return f;
  }
}

BufferPool::PageGuard BufferPool::PinLocked(Frame* frame, bool writable) {
  frame->pins.fetch_add(1, std::memory_order_seq_cst);
  if (writable) {
    frame->write_pins.fetch_add(1, std::memory_order_acquire);
    frame->dirty.store(true, std::memory_order_release);
  }
  frame->last_used.store(clock_.fetch_add(1, std::memory_order_relaxed) + 1,
                         std::memory_order_relaxed);
  return PageGuard(frame, writable);
}

Result<BufferPool::PageGuard> BufferPool::Fetch(PageId page) {
  fetches_.fetch_add(1, std::memory_order_relaxed);
  // Fast path: lock-free hit. The seqlock dance with eviction (class
  // comment) either lands the pin on a stable frame or detects the race
  // and retries; after a few lost races we fall through to the slow
  // path, which excludes evictors entirely.
  for (int attempt = 0; attempt < 16; ++attempt) {
    EpochGuard guard(epochs_);
    Frame* f = ProbeTable(table_.load(std::memory_order_acquire), page);
    if (f == nullptr) break;  // Miss: load under the write mutex.
    uint32_t s1 = f->seq.load(std::memory_order_seq_cst);
    if ((s1 & 1u) == 0) {
      f->pins.fetch_add(1, std::memory_order_seq_cst);
      if (f->seq.load(std::memory_order_seq_cst) == s1) {
        // Pinned a stable frame: it can no longer be evicted, and the
        // epoch guard may drop — the pin itself keeps the frame alive.
        f->last_used.store(
            clock_.fetch_add(1, std::memory_order_relaxed) + 1,
            std::memory_order_relaxed);
        hits_.fetch_add(1, std::memory_order_relaxed);
        instruments_->hits->Increment();
        return PageGuard(f, /*writable=*/false);
      }
      // An eviction started underneath us; back out. The frame memory
      // stays valid until our epoch guard drops (eviction retires, not
      // frees), so the stray fetch_sub is safe even if it lost.
      f->pins.fetch_sub(1, std::memory_order_release);
    }
    pin_retries_.fetch_add(1, std::memory_order_relaxed);
    instruments_->pin_retries->Increment();
  }
  std::lock_guard<std::mutex> lock(write_mu_);
  return FetchLocked(page, /*writable=*/false);
}

Result<BufferPool::PageGuard> BufferPool::MutablePage(PageId page) {
  fetches_.fetch_add(1, std::memory_order_relaxed);
  // Writable fetches always serialize: Flush's "skip frames with a live
  // write pin" check is only sound when write pins cannot appear
  // concurrently with it.
  std::lock_guard<std::mutex> lock(write_mu_);
  return FetchLocked(page, /*writable=*/true);
}

Result<BufferPool::PageGuard> BufferPool::FetchLocked(PageId page,
                                                      bool writable) {
  // Re-probe under the mutex: the page may have been loaded since the
  // fast path gave up, and with evictors excluded no seqlock validation
  // is needed.
  Table* table = table_.load(std::memory_order_relaxed);
  Frame* f = ProbeTable(table, page);
  if (f != nullptr) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    instruments_->hits->Increment();
    return PinLocked(f, writable);
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  instruments_->misses->Increment();
  while (live_frames_ >= capacity_) {
    bool evicted = false;
    SAMA_RETURN_IF_ERROR(EvictOneLocked(&evicted));
    // Every frame pinned: overflow capacity rather than fail; residency
    // returns below capacity as guards release and later misses evict.
    if (!evicted) break;
  }
  auto frame = std::make_unique<Frame>();
  frame->page = page;
  SAMA_RETURN_IF_ERROR(file_->ReadPage(page, &frame->data));
  bytes_read_.fetch_add(frame->data.size(), std::memory_order_relaxed);
  Frame* raw = frame.release();
  InsertLocked(raw);
  return PinLocked(raw, writable);
}

void BufferPool::InsertLocked(Frame* frame) {
  Table* table = table_.load(std::memory_order_relaxed);
  // Rebuild when live + tombstone load passes 3/4: copy live frames
  // into a fresh table sized for the live set, publish it, and retire
  // the old one — a reader mid-probe in the old table still finds
  // every live frame there (eviction is excluded while we hold
  // write_mu_).
  if ((live_frames_ + tombstones_ + 1) * 4 > table->slot_count * 3) {
    size_t want = NextPow2((live_frames_ + 1) * 2);
    Table* bigger = Table::Make(want);
    for (size_t i = 0; i < table->slot_count; ++i) {
      Frame* f = table->slots[i].load(std::memory_order_relaxed);
      if (f == nullptr || f == Tombstone()) continue;
      for (size_t j = MixPage(f->page) & bigger->mask;;
           j = (j + 1) & bigger->mask) {
        if (bigger->slots[j].load(std::memory_order_relaxed) == nullptr) {
          bigger->slots[j].store(f, std::memory_order_release);
          break;
        }
      }
    }
    table_.store(bigger, std::memory_order_release);
    retired_.RetireRaw(table,
                       [](void* p) { Table::Free(static_cast<Table*>(p)); });
    tombstones_ = 0;
    table = bigger;
  }
  // First tombstone on the probe path is reusable: absence has been
  // established, and the slot sits before any nullptr a reader could
  // stop at.
  for (size_t i = MixPage(frame->page) & table->mask;;
       i = (i + 1) & table->mask) {
    Frame* f = table->slots[i].load(std::memory_order_relaxed);
    if (f == nullptr || f == Tombstone()) {
      if (f == Tombstone()) --tombstones_;
      table->slots[i].store(frame, std::memory_order_release);
      ++live_frames_;
      return;
    }
  }
}

Status BufferPool::EvictOneLocked(bool* evicted) {
  *evicted = false;
  Table* table = table_.load(std::memory_order_relaxed);
  // A victim can be pinned between our scan and the seqlock bump (the
  // lock-free hit path does not take write_mu_); on a lost race, rescan
  // for the next-best victim a few times before overflowing capacity.
  for (int attempt = 0; attempt < 8; ++attempt) {
    size_t victim_slot = 0;
    Frame* victim = nullptr;
    uint64_t oldest = UINT64_MAX;
    for (size_t i = 0; i < table->slot_count; ++i) {
      Frame* f = table->slots[i].load(std::memory_order_relaxed);
      if (f == nullptr || f == Tombstone()) continue;
      if (f->pins.load(std::memory_order_seq_cst) > 0) continue;
      uint64_t used = f->last_used.load(std::memory_order_relaxed);
      if (used < oldest) {
        oldest = used;
        victim = f;
        victim_slot = i;
      }
    }
    if (victim == nullptr) return Status::Ok();  // Everything pinned.
    SAMA_RETURN_IF_ERROR(EvictFrameLocked(victim_slot, /*count=*/true,
                                          evicted));
    if (*evicted) return Status::Ok();
  }
  return Status::Ok();
}

Status BufferPool::EvictFrameLocked(size_t slot, bool count, bool* evicted) {
  *evicted = false;
  Table* table = table_.load(std::memory_order_relaxed);
  Frame* f = table->slots[slot].load(std::memory_order_relaxed);
  assert(f != nullptr && f != Tombstone());
  // Announce the eviction (seq odd), then look for pins: a reader that
  // pinned before the bump is seen here and aborts us; one that pins
  // after it fails its seq re-check and backs out (class comment).
  f->seq.fetch_add(1, std::memory_order_seq_cst);
  if (f->pins.load(std::memory_order_seq_cst) > 0) {
    f->seq.fetch_add(1, std::memory_order_seq_cst);  // Back to stable.
    return Status::Ok();
  }
  if (f->dirty.load(std::memory_order_acquire)) {
    Status s = file_->WritePage(f->page, f->data.data());
    if (!s.ok()) {
      f->seq.fetch_add(1, std::memory_order_seq_cst);  // Back to stable.
      return s;
    }
  }
  table->slots[slot].store(Tombstone(), std::memory_order_release);
  ++tombstones_;
  --live_frames_;
  retired_.Retire(f);
  if (count) {
    evictions_.fetch_add(1, std::memory_order_relaxed);
    instruments_->evictions->Increment();
  }
  *evicted = true;
  return Status::Ok();
}

Status BufferPool::FlushLocked() {
  Table* table = table_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < table->slot_count; ++i) {
    Frame* f = table->slots[i].load(std::memory_order_relaxed);
    if (f == nullptr || f == Tombstone()) continue;
    if (!f->dirty.load(std::memory_order_acquire)) continue;
    // A live write pin means another thread may be mutating the bytes
    // right now; skip — the page stays dirty and flushes once released.
    // Sound because new write pins only appear under write_mu_, which
    // we hold.
    if (f->write_pins.load(std::memory_order_acquire) > 0) continue;
    SAMA_RETURN_IF_ERROR(file_->WritePage(f->page, f->data.data()));
    f->dirty.store(false, std::memory_order_release);
  }
  return Status::Ok();
}

Status BufferPool::Flush() {
  std::lock_guard<std::mutex> lock(write_mu_);
  return FlushLocked();
}

Status BufferPool::DropAll() {
  std::lock_guard<std::mutex> lock(write_mu_);
  SAMA_RETURN_IF_ERROR(FlushLocked());
  Table* table = table_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < table->slot_count; ++i) {
    Frame* f = table->slots[i].load(std::memory_order_relaxed);
    if (f == nullptr || f == Tombstone()) continue;
    if (f->pins.load(std::memory_order_seq_cst) > 0) continue;
    bool evicted = false;
    // DropAll is not capacity pressure; the eviction counters keep
    // meaning "evicted to make room", as before.
    SAMA_RETURN_IF_ERROR(EvictFrameLocked(i, /*count=*/false, &evicted));
    (void)evicted;
  }
  return Status::Ok();
}

size_t BufferPool::resident_pages() const {
  std::lock_guard<std::mutex> lock(write_mu_);
  return live_frames_;
}

size_t BufferPool::pinned_pages() const {
  std::lock_guard<std::mutex> lock(write_mu_);
  const Table* table = table_.load(std::memory_order_relaxed);
  size_t pinned = 0;
  for (size_t i = 0; i < table->slot_count; ++i) {
    Frame* f = table->slots[i].load(std::memory_order_relaxed);
    if (f == nullptr || f == Tombstone()) continue;
    if (f->pins.load(std::memory_order_seq_cst) > 0) ++pinned;
  }
  return pinned;
}

}  // namespace sama

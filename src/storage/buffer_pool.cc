#include "storage/buffer_pool.h"

#include <cassert>

namespace sama {

BufferPool::BufferPool(PageFile* file, size_t capacity)
    : file_(file), capacity_(capacity == 0 ? 1 : capacity) {}

BufferPool::~BufferPool() {
  // Best effort: persist whatever is dirty. Errors are unreportable in a
  // destructor; callers that care must Flush() explicitly.
  (void)Flush();
}

BufferPool::Frame& BufferPool::Touch(std::list<Frame>::iterator it) {
  frames_.splice(frames_.begin(), frames_, it);
  return frames_.front();
}

Result<std::list<BufferPool::Frame>::iterator> BufferPool::Load(PageId page) {
  auto it = frame_of_.find(page);
  if (it != frame_of_.end()) {
    ++stats_.hits;
    Touch(it->second);
    return frames_.begin();
  }
  ++stats_.misses;
  while (frames_.size() >= capacity_) {
    SAMA_RETURN_IF_ERROR(EvictOne());
  }
  Frame frame;
  frame.page = page;
  frame.dirty = false;
  SAMA_RETURN_IF_ERROR(file_->ReadPage(page, &frame.data));
  frames_.push_front(std::move(frame));
  frame_of_[page] = frames_.begin();
  return frames_.begin();
}

Status BufferPool::EvictOne() {
  assert(!frames_.empty());
  Frame& victim = frames_.back();
  if (victim.dirty) {
    SAMA_RETURN_IF_ERROR(file_->WritePage(victim.page, victim.data.data()));
  }
  frame_of_.erase(victim.page);
  frames_.pop_back();
  return Status::Ok();
}

Result<const uint8_t*> BufferPool::Fetch(PageId page) {
  auto it_or = Load(page);
  if (!it_or.ok()) return it_or.status();
  return static_cast<const uint8_t*>((*it_or)->data.data());
}

Result<uint8_t*> BufferPool::MutablePage(PageId page) {
  auto it_or = Load(page);
  if (!it_or.ok()) return it_or.status();
  (*it_or)->dirty = true;
  return (*it_or)->data.data();
}

Status BufferPool::Flush() {
  for (Frame& f : frames_) {
    if (!f.dirty) continue;
    SAMA_RETURN_IF_ERROR(file_->WritePage(f.page, f.data.data()));
    f.dirty = false;
  }
  return Status::Ok();
}

Status BufferPool::DropAll() {
  SAMA_RETURN_IF_ERROR(Flush());
  frames_.clear();
  frame_of_.clear();
  return Status::Ok();
}

}  // namespace sama

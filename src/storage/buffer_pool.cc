#include "storage/buffer_pool.h"

#include <cassert>
#include <mutex>

#include "obs/metrics.h"

namespace sama {

// Registry-side mirror of the pool counters, summed across every pool
// in the process (each pool's constructor resolves the same series).
struct BufferPool::Instruments {
  Counter* hits = nullptr;
  Counter* misses = nullptr;
  Counter* evictions = nullptr;

  static std::shared_ptr<const Instruments> Resolve() {
    MetricsRegistry* reg = MetricsRegistry::Global();
    auto ins = std::make_shared<Instruments>();
    ins->hits = reg->GetCounter("sama_buffer_pool_hits_total",
                                "Buffer pool page fetches served from cache.");
    ins->misses = reg->GetCounter("sama_buffer_pool_misses_total",
                                  "Buffer pool page fetches that read disk.");
    ins->evictions =
        reg->GetCounter("sama_buffer_pool_evictions_total",
                        "Buffer pool frames evicted to make room.");
    return ins;
  }
};

BufferPool::BufferPool(PageFile* file, size_t capacity)
    : file_(file),
      capacity_(capacity == 0 ? 1 : capacity),
      instruments_(Instruments::Resolve()) {}

BufferPool::~BufferPool() {
  // Best effort: persist whatever is dirty. Errors are unreportable in a
  // destructor; callers that care must Flush() explicitly.
  (void)Flush();
}

BufferPool::PageGuard BufferPool::PinLocked(Frame* frame, bool writable) {
  frame->pins.fetch_add(1, std::memory_order_acquire);
  if (writable) {
    frame->write_pins.fetch_add(1, std::memory_order_acquire);
    frame->dirty.store(true, std::memory_order_release);
  }
  frame->last_used.store(clock_.fetch_add(1, std::memory_order_relaxed) + 1,
                         std::memory_order_relaxed);
  return PageGuard(frame, writable);
}

Result<BufferPool::PageGuard> BufferPool::Fetch(PageId page) {
  return FetchInternal(page, /*writable=*/false);
}

Result<BufferPool::PageGuard> BufferPool::MutablePage(PageId page) {
  return FetchInternal(page, /*writable=*/true);
}

Result<BufferPool::PageGuard> BufferPool::FetchInternal(PageId page,
                                                        bool writable) {
  fetches_.fetch_add(1, std::memory_order_relaxed);
  {
    // Fast path: cache hit under the shared latch. Pinning and recency
    // stamping are atomic, so concurrent hits never serialise on the
    // exclusive side.
    std::shared_lock<std::shared_mutex> lock(latch_);
    auto it = frames_.find(page);
    if (it != frames_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      instruments_->hits->Increment();
      return PinLocked(it->second.get(), writable);
    }
  }
  // Miss: exclusive latch, re-check (another thread may have loaded the
  // page between our unlock and here), evict, read from disk.
  std::unique_lock<std::shared_mutex> lock(latch_);
  auto it = frames_.find(page);
  if (it != frames_.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    instruments_->hits->Increment();
    return PinLocked(it->second.get(), writable);
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  instruments_->misses->Increment();
  while (frames_.size() >= capacity_) {
    bool evicted = false;
    SAMA_RETURN_IF_ERROR(EvictOneLocked(&evicted));
    // Every frame pinned: overflow capacity rather than fail; residency
    // returns below capacity as guards release and later misses evict.
    if (!evicted) break;
  }
  auto frame = std::make_unique<Frame>();
  frame->page = page;
  SAMA_RETURN_IF_ERROR(file_->ReadPage(page, &frame->data));
  bytes_read_.fetch_add(frame->data.size(), std::memory_order_relaxed);
  Frame* raw = frame.get();
  frames_.emplace(page, std::move(frame));
  return PinLocked(raw, writable);
}

Status BufferPool::EvictOneLocked(bool* evicted) {
  *evicted = false;
  Frame* victim = nullptr;
  uint64_t oldest = UINT64_MAX;
  for (auto& [id, frame] : frames_) {
    if (frame->pins.load(std::memory_order_acquire) > 0) continue;
    uint64_t used = frame->last_used.load(std::memory_order_relaxed);
    if (used < oldest) {
      oldest = used;
      victim = frame.get();
    }
  }
  if (victim == nullptr) return Status::Ok();
  if (victim->dirty.load(std::memory_order_acquire)) {
    SAMA_RETURN_IF_ERROR(file_->WritePage(victim->page, victim->data.data()));
  }
  frames_.erase(victim->page);
  evictions_.fetch_add(1, std::memory_order_relaxed);
  instruments_->evictions->Increment();
  *evicted = true;
  return Status::Ok();
}

Status BufferPool::FlushLocked() {
  for (auto& [id, frame] : frames_) {
    if (!frame->dirty.load(std::memory_order_acquire)) continue;
    // A live write pin means another thread may be mutating the bytes
    // right now; skip — the page stays dirty and flushes once released.
    if (frame->write_pins.load(std::memory_order_acquire) > 0) continue;
    SAMA_RETURN_IF_ERROR(file_->WritePage(id, frame->data.data()));
    frame->dirty.store(false, std::memory_order_release);
  }
  return Status::Ok();
}

Status BufferPool::Flush() {
  std::unique_lock<std::shared_mutex> lock(latch_);
  return FlushLocked();
}

Status BufferPool::DropAll() {
  std::unique_lock<std::shared_mutex> lock(latch_);
  SAMA_RETURN_IF_ERROR(FlushLocked());
  for (auto it = frames_.begin(); it != frames_.end();) {
    if (it->second->pins.load(std::memory_order_acquire) > 0) {
      ++it;
    } else {
      it = frames_.erase(it);
    }
  }
  return Status::Ok();
}

size_t BufferPool::pinned_pages() const {
  std::shared_lock<std::shared_mutex> lock(latch_);
  size_t pinned = 0;
  for (const auto& [id, frame] : frames_) {
    if (frame->pins.load(std::memory_order_acquire) > 0) ++pinned;
  }
  return pinned;
}

}  // namespace sama

#ifndef SAMA_STORAGE_PATH_STORE_H_
#define SAMA_STORAGE_PATH_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "graph/path.h"
#include "storage/record_store.h"

namespace sama {

using PathId = uint64_t;

// Persists enumerated source→sink paths (§6.1 step iii: "the paths
// ending into sinks ... bring information that might match the query").
// Each path serialises its node labels, edge labels and node ids.
// PathIds are dense (0..n-1); a translation table maps them to record
// ids in the underlying store.
class PathStore {
 public:
  struct Options {
    // Empty path = in-memory.
    std::string path;
    // truncate=false reopens an existing store (record table recovered
    // from the sidecar manifest written by Flush/Close).
    bool truncate = true;
    size_t buffer_pool_pages = 1024;
    // Varint encoding (on) vs fixed 4-byte ids (off); ablated in
    // bench_ablation. Must match the value the store was created with
    // when reopening.
    bool compress = true;
    // I/O seam for fault-injection tests; nullptr = Env::Default().
    Env* env = nullptr;
  };

  PathStore() = default;
  PathStore(const PathStore&) = delete;
  PathStore& operator=(const PathStore&) = delete;

  Status Open(const Options& options);
  Status Close();

  // Appends `p`, returning its dense PathId.
  Result<PathId> Put(const Path& p);

  // Loads path `id`.
  Status Get(PathId id, Path* out) const;

  Status Flush();
  Status DropCaches();

  uint64_t path_count() const { return record_ids_.size(); }
  uint64_t size_bytes() const { return store_.size_bytes(); }
  BufferPool::Stats cache_stats() const { return store_.cache_stats(); }

  // Serialization, exposed for tests and the ablation bench.
  static void Encode(const Path& p, bool compress,
                     std::vector<uint8_t>* out);
  static Status Decode(const std::vector<uint8_t>& buf, bool compress,
                       Path* out);

 private:
  Status WriteManifest();

  RecordStore store_;
  std::vector<RecordId> record_ids_;  // PathId -> RecordId.
  std::string manifest_path_;
  bool compress_ = true;
  Env* env_ = nullptr;
};

}  // namespace sama

#endif  // SAMA_STORAGE_PATH_STORE_H_

#include "storage/manifest.h"

#include <algorithm>

#include "common/crc32c.h"
#include "storage/coding.h"

namespace sama {
namespace {

constexpr char kIdMagic[8] = {'S', 'A', 'M', 'A', 'I', 'D', 'S', '2'};
constexpr char kBlobMagic[8] = {'S', 'A', 'M', 'A', 'B', 'L', 'B', '2'};

Env* OrDefault(Env* env) { return env == nullptr ? Env::Default() : env; }

Status WriteFileAtomically(const std::string& path,
                           const std::vector<uint8_t>& bytes, Env* env) {
  std::string tmp = path + ".tmp";
  SAMA_RETURN_IF_ERROR(env->WriteFileBytes(tmp, bytes));
  return env->RenameFile(tmp, path);
}

// Appends the envelope checksum: CRC32C of everything after the magic.
void SealEnvelope(std::vector<uint8_t>* bytes) {
  uint32_t crc = Crc32c(bytes->data() + 8, bytes->size() - 8);
  PutFixed32(bytes, crc);
}

// Validates magic + trailing checksum; returns the payload range
// [8, size-4) via *payload_end. A pre-checksum (v1) magic is
// kInvalidArgument; anything else malformed is kCorruption.
Status OpenEnvelope(const std::vector<uint8_t>& bytes,
                    const char (&magic)[8], const std::string& path,
                    size_t* payload_end) {
  if (bytes.size() < sizeof(magic) + 4 ||
      !std::equal(magic, magic + 7, bytes.begin())) {
    return Status::Corruption("manifest magic mismatch: '" + path + "' (" +
                              std::to_string(bytes.size()) + " bytes)");
  }
  if (bytes[7] != static_cast<uint8_t>(magic[7])) {
    return Status::InvalidArgument(
        "manifest '" + path + "' has format version '" +
        std::string(1, static_cast<char>(bytes[7])) + "' (expected '" +
        std::string(1, magic[7]) +
        "'); a pre-checksum v0/v1 index must be rebuilt");
  }
  size_t crc_pos = bytes.size() - 4;
  uint32_t stored = 0;
  GetFixed32(bytes, &crc_pos, &stored);
  uint32_t computed = Crc32c(bytes.data() + 8, bytes.size() - 12);
  if (stored != computed) {
    return Status::Corruption("manifest checksum mismatch: '" + path +
                              "': stored " + std::to_string(stored) +
                              ", computed " + std::to_string(computed));
  }
  *payload_end = bytes.size() - 4;
  return Status::Ok();
}

}  // namespace

Status WriteIdManifest(const std::string& path,
                       const std::vector<uint64_t>& ids, Env* env) {
  std::vector<uint8_t> bytes(kIdMagic, kIdMagic + sizeof(kIdMagic));
  PutVarint64(&bytes, ids.size());
  for (uint64_t id : ids) PutVarint64(&bytes, id);
  SealEnvelope(&bytes);
  return WriteFileAtomically(path, bytes, OrDefault(env));
}

Result<std::vector<uint64_t>> ReadIdManifest(const std::string& path,
                                             Env* env) {
  auto bytes_or = OrDefault(env)->ReadFileBytes(path);
  if (!bytes_or.ok()) return bytes_or.status();
  const std::vector<uint8_t>& bytes = *bytes_or;
  size_t end = 0;
  SAMA_RETURN_IF_ERROR(OpenEnvelope(bytes, kIdMagic, path, &end));
  size_t pos = sizeof(kIdMagic);
  uint64_t count = 0;
  if (!GetVarint64(bytes, &pos, &count)) {
    return Status::Corruption("id manifest header: " + path);
  }
  std::vector<uint64_t> ids(count);
  for (uint64_t i = 0; i < count; ++i) {
    if (!GetVarint64(bytes, &pos, &ids[i]) || pos > end) {
      return Status::Corruption("id manifest truncated: '" + path +
                                "': entry " + std::to_string(i) + " of " +
                                std::to_string(count) + " ends past byte " +
                                std::to_string(end));
    }
  }
  return ids;
}

Status WriteBlobFile(const std::string& path,
                     const std::vector<uint8_t>& blob, Env* env) {
  std::vector<uint8_t> bytes(kBlobMagic, kBlobMagic + sizeof(kBlobMagic));
  PutVarint64(&bytes, blob.size());
  bytes.insert(bytes.end(), blob.begin(), blob.end());
  SealEnvelope(&bytes);
  return WriteFileAtomically(path, bytes, OrDefault(env));
}

Result<std::vector<uint8_t>> ReadBlobFile(const std::string& path,
                                          Env* env) {
  auto bytes_or = OrDefault(env)->ReadFileBytes(path);
  if (!bytes_or.ok()) return bytes_or.status();
  const std::vector<uint8_t>& bytes = *bytes_or;
  size_t end = 0;
  SAMA_RETURN_IF_ERROR(OpenEnvelope(bytes, kBlobMagic, path, &end));
  size_t pos = sizeof(kBlobMagic);
  uint64_t size = 0;
  if (!GetVarint64(bytes, &pos, &size)) {
    return Status::Corruption("blob file header: " + path);
  }
  if (end - pos < size) {
    return Status::Corruption("blob file truncated: '" + path + "' holds " +
                              std::to_string(end - pos) +
                              " payload bytes, header claims " +
                              std::to_string(size));
  }
  return std::vector<uint8_t>(bytes.begin() + static_cast<long>(pos),
                              bytes.begin() + static_cast<long>(pos + size));
}

}  // namespace sama

#include "storage/manifest.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iterator>

#include "storage/coding.h"

namespace sama {
namespace {

constexpr char kIdMagic[8] = {'S', 'A', 'M', 'A', 'I', 'D', 'S', '1'};
constexpr char kBlobMagic[8] = {'S', 'A', 'M', 'A', 'B', 'L', 'B', '1'};

Status WriteFileAtomically(const std::string& path,
                           const std::vector<uint8_t>& bytes) {
  std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("cannot create " + tmp);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) return Status::IoError("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError("rename to " + path + " failed");
  }
  return Status::Ok();
}

Result<std::vector<uint8_t>> ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  return bytes;
}

}  // namespace

Status WriteIdManifest(const std::string& path,
                       const std::vector<uint64_t>& ids) {
  std::vector<uint8_t> bytes(kIdMagic, kIdMagic + sizeof(kIdMagic));
  PutVarint64(&bytes, ids.size());
  for (uint64_t id : ids) PutVarint64(&bytes, id);
  return WriteFileAtomically(path, bytes);
}

Result<std::vector<uint64_t>> ReadIdManifest(const std::string& path) {
  auto bytes_or = ReadWholeFile(path);
  if (!bytes_or.ok()) return bytes_or.status();
  const std::vector<uint8_t>& bytes = *bytes_or;
  if (bytes.size() < sizeof(kIdMagic) ||
      !std::equal(kIdMagic, kIdMagic + sizeof(kIdMagic), bytes.begin())) {
    return Status::Corruption("id manifest magic mismatch: " + path);
  }
  size_t pos = sizeof(kIdMagic);
  uint64_t count = 0;
  if (!GetVarint64(bytes, &pos, &count)) {
    return Status::Corruption("id manifest header: " + path);
  }
  std::vector<uint64_t> ids(count);
  for (uint64_t i = 0; i < count; ++i) {
    if (!GetVarint64(bytes, &pos, &ids[i])) {
      return Status::Corruption("id manifest truncated: " + path);
    }
  }
  return ids;
}

Status WriteBlobFile(const std::string& path,
                     const std::vector<uint8_t>& blob) {
  std::vector<uint8_t> bytes(kBlobMagic, kBlobMagic + sizeof(kBlobMagic));
  PutVarint64(&bytes, blob.size());
  bytes.insert(bytes.end(), blob.begin(), blob.end());
  return WriteFileAtomically(path, bytes);
}

Result<std::vector<uint8_t>> ReadBlobFile(const std::string& path) {
  auto bytes_or = ReadWholeFile(path);
  if (!bytes_or.ok()) return bytes_or.status();
  const std::vector<uint8_t>& bytes = *bytes_or;
  if (bytes.size() < sizeof(kBlobMagic) ||
      !std::equal(kBlobMagic, kBlobMagic + sizeof(kBlobMagic),
                  bytes.begin())) {
    return Status::Corruption("blob file magic mismatch: " + path);
  }
  size_t pos = sizeof(kBlobMagic);
  uint64_t size = 0;
  if (!GetVarint64(bytes, &pos, &size)) {
    return Status::Corruption("blob file header: " + path);
  }
  if (bytes.size() - pos < size) {
    return Status::Corruption("blob file truncated: " + path);
  }
  return std::vector<uint8_t>(bytes.begin() + static_cast<long>(pos),
                              bytes.begin() + static_cast<long>(pos + size));
}

}  // namespace sama

#include "storage/page_file.h"

#include <cstring>

#include "common/crc32c.h"

namespace sama {
namespace {

uint32_t PageChecksum(const uint8_t* page, PageId id) {
  uint8_t id_bytes[4] = {static_cast<uint8_t>(id),
                         static_cast<uint8_t>(id >> 8),
                         static_cast<uint8_t>(id >> 16),
                         static_cast<uint8_t>(id >> 24)};
  uint32_t crc = Crc32c(page + 4, kPageSize - 4);
  return Crc32cExtend(crc, id_bytes, sizeof(id_bytes));
}

void PutU32(uint8_t* buf, uint32_t v) {
  buf[0] = static_cast<uint8_t>(v);
  buf[1] = static_cast<uint8_t>(v >> 8);
  buf[2] = static_cast<uint8_t>(v >> 16);
  buf[3] = static_cast<uint8_t>(v >> 24);
}

uint32_t GetU32(const uint8_t* buf) {
  return static_cast<uint32_t>(buf[0]) | static_cast<uint32_t>(buf[1]) << 8 |
         static_cast<uint32_t>(buf[2]) << 16 |
         static_cast<uint32_t>(buf[3]) << 24;
}

}  // namespace

Status VerifyPageBytes(const uint8_t* page, PageId id,
                       const std::string& path) {
  if (page[4] != kPageFormatVersion) {
    return Status::InvalidArgument(
        "page file '" + path + "' page " + std::to_string(id) +
        " has unsupported format version " +
        std::to_string(static_cast<int>(page[4])) + " (expected " +
        std::to_string(static_cast<int>(kPageFormatVersion)) +
        "); a pre-checksum v0 index must be rebuilt");
  }
  uint32_t stored = GetU32(page);
  uint32_t computed = PageChecksum(page, id);
  if (stored != computed) {
    return Status::Corruption(
        "checksum mismatch on page " + std::to_string(id) + " of '" + path +
        "': stored " + std::to_string(stored) + ", computed " +
        std::to_string(computed));
  }
  return Status::Ok();
}

PageFile::~PageFile() {
  if (fd_ >= 0) (void)env_->CloseFile(fd_, path_);
}

Status PageFile::Open(const std::string& path, bool truncate, Env* env) {
  if (fd_ >= 0) return Status::Internal("page file already open");
  env_ = env == nullptr ? Env::Default() : env;
  auto fd = env_->OpenFile(path, truncate);
  if (!fd.ok()) return fd.status();
  auto size = env_->FileSizeFd(*fd, path);
  if (!size.ok()) {
    (void)env_->CloseFile(*fd, path);
    return size.status();
  }
  if (*size % kPageSize != 0) {
    (void)env_->CloseFile(*fd, path);
    return Status::Corruption("page file size not page-aligned: '" + path +
                              "' is " + std::to_string(*size) + " bytes");
  }
  fd_ = *fd;
  path_ = path;
  page_count_ = static_cast<uint32_t>(*size / kPageSize);
  if (page_count_ > 0) {
    // Validate page 0 eagerly so a pre-checksum (v0) file or a torn
    // header page is rejected at open, not at first use.
    uint8_t page[kPageSize];
    Status s = ReadPhysical(0, page);
    if (!s.ok()) {
      (void)Close();
      return s;
    }
  }
  return Status::Ok();
}

Status PageFile::Close() {
  if (fd_ < 0) return Status::Ok();
  Status s = env_->CloseFile(fd_, path_);
  fd_ = -1;
  return s;
}

Status PageFile::WritePhysical(PageId id, uint8_t* page) {
  page[4] = kPageFormatVersion;
  page[5] = page[6] = page[7] = 0;
  PutU32(page, PageChecksum(page, id));
  uint64_t offset = static_cast<uint64_t>(id) * kPageSize;
  SAMA_RETURN_IF_ERROR(env_->PWrite(fd_, path_, offset, page, kPageSize));
  ++writes_;
  return Status::Ok();
}

Status PageFile::ReadPhysical(PageId id, uint8_t* page) const {
  uint64_t offset = static_cast<uint64_t>(id) * kPageSize;
  auto got = env_->PRead(fd_, path_, offset, page, kPageSize);
  if (!got.ok()) return got.status();
  if (*got != kPageSize) {
    return Status::Corruption(
        "short read: page " + std::to_string(id) + " of '" + path_ +
        "': got " + std::to_string(*got) + " of " +
        std::to_string(kPageSize) + " bytes (truncated file)");
  }
  return VerifyPageBytes(page, id, path_);
}

Result<PageId> PageFile::AllocatePage() {
  if (fd_ < 0) return Status::Internal("page file not open");
  uint8_t page[kPageSize] = {};
  PageId id = page_count_;
  SAMA_RETURN_IF_ERROR(WritePhysical(id, page));
  ++page_count_;
  return id;
}

Status PageFile::ReadPage(PageId id, std::vector<uint8_t>* out) const {
  if (fd_ < 0) return Status::Internal("page file not open");
  if (id >= page_count_) {
    return Status::OutOfRange("page " + std::to_string(id) + " of " +
                              std::to_string(page_count_));
  }
  uint8_t page[kPageSize];
  SAMA_RETURN_IF_ERROR(ReadPhysical(id, page));
  out->assign(page + kPageHeaderSize, page + kPageSize);
  ++reads_;
  return Status::Ok();
}

Status PageFile::WritePage(PageId id, const uint8_t* data) {
  if (fd_ < 0) return Status::Internal("page file not open");
  if (id >= page_count_) {
    return Status::OutOfRange("page " + std::to_string(id) + " of " +
                              std::to_string(page_count_));
  }
  uint8_t page[kPageSize];
  std::memcpy(page + kPageHeaderSize, data, kPageDataSize);
  return WritePhysical(id, page);
}

Status PageFile::Sync() {
  if (fd_ < 0) return Status::Internal("page file not open");
  return env_->SyncFile(fd_, path_);
}

}  // namespace sama

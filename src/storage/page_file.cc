#include "storage/page_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace sama {
namespace {

std::string Errno(const std::string& op, const std::string& path) {
  return op + " '" + path + "': " + std::strerror(errno);
}

}  // namespace

PageFile::~PageFile() {
  if (fd_ >= 0) ::close(fd_);
}

Status PageFile::Open(const std::string& path, bool truncate) {
  if (fd_ >= 0) return Status::Internal("page file already open");
  int flags = O_RDWR | O_CREAT | (truncate ? O_TRUNC : 0);
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) return Status::IoError(Errno("open", path));
  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    ::close(fd);
    return Status::IoError(Errno("lseek", path));
  }
  if (size % kPageSize != 0) {
    ::close(fd);
    return Status::Corruption("page file size not page-aligned: " + path);
  }
  fd_ = fd;
  path_ = path;
  page_count_ = static_cast<uint32_t>(size / kPageSize);
  return Status::Ok();
}

Status PageFile::Close() {
  if (fd_ < 0) return Status::Ok();
  int rc = ::close(fd_);
  fd_ = -1;
  if (rc != 0) return Status::IoError(Errno("close", path_));
  return Status::Ok();
}

Result<PageId> PageFile::AllocatePage() {
  if (fd_ < 0) return Status::Internal("page file not open");
  if (writes_until_failure_ == 0) {
    return Status::IoError("injected write failure (AllocatePage)");
  }
  static const uint8_t kZeros[kPageSize] = {};
  PageId id = page_count_;
  off_t offset = static_cast<off_t>(id) * kPageSize;
  ssize_t n = ::pwrite(fd_, kZeros, kPageSize, offset);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IoError(Errno("pwrite", path_));
  }
  ++page_count_;
  ++writes_;
  if (writes_until_failure_ != UINT64_MAX) --writes_until_failure_;
  return id;
}

Status PageFile::ReadPage(PageId id, std::vector<uint8_t>* out) const {
  if (fd_ < 0) return Status::Internal("page file not open");
  if (id >= page_count_) {
    return Status::OutOfRange("page " + std::to_string(id) + " of " +
                              std::to_string(page_count_));
  }
  out->resize(kPageSize);
  off_t offset = static_cast<off_t>(id) * kPageSize;
  ssize_t n = ::pread(fd_, out->data(), kPageSize, offset);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IoError(Errno("pread", path_));
  }
  ++reads_;
  return Status::Ok();
}

Status PageFile::WritePage(PageId id, const uint8_t* data) {
  if (fd_ < 0) return Status::Internal("page file not open");
  if (writes_until_failure_ == 0) {
    return Status::IoError("injected write failure (WritePage)");
  }
  if (id >= page_count_) {
    return Status::OutOfRange("page " + std::to_string(id) + " of " +
                              std::to_string(page_count_));
  }
  off_t offset = static_cast<off_t>(id) * kPageSize;
  ssize_t n = ::pwrite(fd_, data, kPageSize, offset);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IoError(Errno("pwrite", path_));
  }
  ++writes_;
  if (writes_until_failure_ != UINT64_MAX) --writes_until_failure_;
  return Status::Ok();
}

Status PageFile::Sync() {
  if (fd_ < 0) return Status::Internal("page file not open");
  if (::fsync(fd_) != 0) return Status::IoError(Errno("fsync", path_));
  return Status::Ok();
}

}  // namespace sama

#ifndef SAMA_STORAGE_MANIFEST_H_
#define SAMA_STORAGE_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace sama {

// Sidecar manifest files: small varint-encoded id tables that map the
// dense ids of a PathStore / HypergraphStore back to record ids after a
// reopen, and arbitrary serialized blobs (the PathIndex metadata).

// Writes `ids` to `path` atomically (write + rename).
Status WriteIdManifest(const std::string& path,
                       const std::vector<uint64_t>& ids);

Result<std::vector<uint64_t>> ReadIdManifest(const std::string& path);

// Writes an opaque blob with a magic/size envelope.
Status WriteBlobFile(const std::string& path,
                     const std::vector<uint8_t>& blob);

Result<std::vector<uint8_t>> ReadBlobFile(const std::string& path);

}  // namespace sama

#endif  // SAMA_STORAGE_MANIFEST_H_
